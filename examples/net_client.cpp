// net_client — drive a running net_server end to end and self-verify:
//
//   phase 1 (TCP): remote-encode a stripe, byte-compare the returned parity
//     against a local encode of the same data; then erase m fragments and
//     remote-reconstruct them (a degraded read served over the wire),
//     byte-comparing the rebuilt fragments against the originals.
//   phase 2 (UDP): stream stripes as strip-packet groups through a seeded
//     loss policy and require every group to be ACKed complete with ZERO
//     retransmissions — lost strips are rebuilt server-side by degraded
//     reads, which the receipt counts.
//
//   ./net_client --port-file ports.txt                  # as written by net_server
//   ./net_client --tcp-port P --udp-port P [--spec S] [--loss 0.15]
//
// Exits 0 only when every byte compared equal and every group was delivered.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "example_util.hpp"
#include "net/client.hpp"
#include "net/datagram.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;

  std::string host = "127.0.0.1";
  std::string spec = "rs(6,4)";
  std::string port_file;
  int tcp_port = 0, udp_port = 0;
  double loss = 0.15;
  int stripes = 20;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) host = next("--host");
    else if (std::strcmp(argv[i], "--tcp-port") == 0) tcp_port = std::atoi(next("--tcp-port"));
    else if (std::strcmp(argv[i], "--udp-port") == 0) udp_port = std::atoi(next("--udp-port"));
    else if (std::strcmp(argv[i], "--port-file") == 0) port_file = next("--port-file");
    else if (std::strcmp(argv[i], "--spec") == 0) spec = next("--spec");
    else if (std::strcmp(argv[i], "--loss") == 0) loss = std::atof(next("--loss"));
    else if (std::strcmp(argv[i], "--stripes") == 0) stripes = std::atoi(next("--stripes"));
    else if (std::strcmp(argv[i], "--seed") == 0) seed = std::strtoull(next("--seed"), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: net_client (--port-file PATH | --tcp-port P --udp-port P)\n"
                   "                  [--host H] [--spec S] [--loss R] [--stripes N] [--seed S]\n");
      return 2;
    }
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (!f || std::fscanf(f, "%d %d", &tcp_port, &udp_port) != 2) {
      std::fprintf(stderr, "net_client: cannot read ports from %s\n", port_file.c_str());
      return 2;
    }
    std::fclose(f);
  }
  if (tcp_port <= 0 || udp_port <= 0) {
    std::fprintf(stderr, "net_client: need --port-file or --tcp-port/--udp-port\n");
    return 2;
  }

  const auto codec = xorec::make_codec(spec);
  const uint32_t k = codec->data_fragments();
  const uint32_t m = codec->parity_fragments();
  const size_t frag_len = 4096;  // multiple of every family's fragment_multiple

  std::mt19937_64 rng(seed);
  std::vector<std::vector<uint8_t>> data(k);
  std::vector<const uint8_t*> data_ptrs(k);
  for (uint32_t i = 0; i < k; ++i) {
    data[i].resize(frag_len);
    for (auto& b : data[i]) b = static_cast<uint8_t>(rng());
    data_ptrs[i] = data[i].data();
  }

  std::printf("net_client: %s over tcp %s:%d + udp %s:%d\n", spec.c_str(),
              host.c_str(), tcp_port, host.c_str(), udp_port);

  // ---- phase 1: TCP encode + degraded read ---------------------------------
  std::printf("phase 1: TCP encode + remote degraded read\n");
  xorec::net::Client client(host, static_cast<uint16_t>(tcp_port));
  client.ping();
  check(true, "ping round-trip");

  std::vector<std::vector<uint8_t>> parity(m, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> parity_ptrs(m);
  for (uint32_t i = 0; i < m; ++i) parity_ptrs[i] = parity[i].data();
  client.encode(spec, data_ptrs.data(), k, parity_ptrs.data(), m, frag_len);

  std::vector<std::vector<uint8_t>> local_parity(m, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> local_parity_ptrs(m);
  for (uint32_t i = 0; i < m; ++i) local_parity_ptrs[i] = local_parity[i].data();
  codec->encode(data_ptrs.data(), local_parity_ptrs.data(), frag_len);
  bool parity_ok = true;
  for (uint32_t i = 0; i < m; ++i)
    parity_ok = parity_ok && parity[i] == local_parity[i];
  check(parity_ok, "remote parity byte-identical to local encode");

  // Erase the first m fragments and ask the server to rebuild them from the
  // survivors — the wire-served degraded read.
  std::vector<uint32_t> erased, available;
  for (uint32_t i = 0; i < m; ++i) erased.push_back(i);
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t i = m; i < k; ++i) {
    available.push_back(i);
    avail_ptrs.push_back(data[i].data());
  }
  for (uint32_t i = 0; i < m; ++i) {
    available.push_back(k + i);
    avail_ptrs.push_back(parity[i].data());
  }
  std::vector<std::vector<uint8_t>> rebuilt(erased.size(), std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> rebuilt_ptrs(erased.size());
  for (size_t i = 0; i < erased.size(); ++i) rebuilt_ptrs[i] = rebuilt[i].data();
  client.reconstruct(spec, available, avail_ptrs.data(), erased, rebuilt_ptrs.data(),
                     frag_len);
  bool rebuilt_ok = true;
  for (size_t i = 0; i < erased.size(); ++i)
    rebuilt_ok = rebuilt_ok && rebuilt[i] == data[erased[i]];
  check(rebuilt_ok, "remotely rebuilt fragments byte-identical to originals");

  bool graceful = false;
  try {
    client.ping();  // connection still usable
    xorec::net::Client bad(host, static_cast<uint16_t>(tcp_port));
    std::vector<uint8_t> junk(frag_len);
    const uint8_t* junk_ptr = junk.data();
    uint8_t* out_ptr = junk.data();
    bad.encode("bogus(3,2)", &junk_ptr, 1, &out_ptr, 0, frag_len);
  } catch (const std::exception&) {
    graceful = true;
  }
  check(graceful, "bad spec answered with a clean Error frame");

  // ---- phase 2: UDP stripes under seeded loss ------------------------------
  std::printf("phase 2: UDP stripe groups, %.0f%% injected loss, seed %llu\n",
              loss * 100.0, static_cast<unsigned long long>(seed));
  xorec::CodecService local_service;  // only for the sender's parity encodes
  const int fd = xorec::net::open_udp_socket("0.0.0.0", 0);
  xorec::net::DatagramSender sender(
      fd, xorec::net::udp_address(host, static_cast<uint16_t>(udp_port)),
      local_service.acquire(spec), xorec::net::LossPolicy{loss, seed});

  int complete = 0, degraded = 0;
  for (int s = 0; s < stripes; ++s) {
    const uint64_t group = sender.send_stripe(data_ptrs.data(), frag_len);
    const auto ack = xorec::net::recv_ack(fd, 2000);
    if (ack && ack->group == group && ack->status == xorec::net::GroupAck::kComplete) {
      ++complete;
      if (ack->strips_reconstructed > 0) ++degraded;
    }
  }
  const auto& st = sender.stats();
  std::printf("  stripes %d: delivered %d, degraded reads %d, strips dropped %zu\n",
              stripes, complete, degraded, st.packets_dropped);
  check(complete == stripes, "every group delivered despite injected loss");
  check(st.retransmissions == 0, "zero retransmissions (EC recovery only)");
  if (loss > 0.0)
    check(st.packets_dropped > 0 && degraded > 0,
          "loss actually injected and recovered by degraded reads");
  xorec::net::close_socket(fd);

  if (g_failures) {
    std::printf("net_client: %d FAILURE(S)\n", g_failures);
    return 1;
  }
  std::printf("net_client: all checks passed\n");
  return 0;
}
