// storage_cluster: a miniature HDFS-style object store — the workload §1
// motivates — served through xorec::CodecService, the sharded multi-codec
// façade. n+p simulated nodes hold one fragment each; two tenants lease the
// SAME pooled codec through equivalent (key-reordered) spec spellings;
// objects are written through the pool's shard session (stripe-parallel
// ingest); then several failure rounds hit the cluster, and each repair
// solves its erasure pattern ONCE (plan_reconstruct), executing it per
// object — the degraded-read fast path.
//
// With a profile path, the run becomes the warmup experiment: the first run
// compiles every repair pattern cold and persists the plan-cache key set at
// exit; the second run replays the profile at startup and serves the same
// patterns at ~100% plan-cache hits (the ServiceStats line at the end
// reports the measured rate).
//
//   ./build/examples/storage_cluster [objects] [object_mib] [spec] [profile]
//   ./build/examples/storage_cluster 16 8 "evenodd(11)"
//   ./build/examples/storage_cluster 8 2 "rs(10,4)@block=1024" /tmp/plans.profile
//   ./build/examples/storage_cluster 8 2 "piggyback(10,4,2)"   # reduced-read repair
//   ./build/examples/storage_cluster 8 2 "sparse(10,4,90,7)"   # seeded sparse draw
//   ./build/examples/storage_cluster --list-codecs
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "api/xorec.hpp"
#include "example_util.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Object {
  std::vector<std::vector<uint8_t>> fragments;  // by node id; empty = lost
  size_t frag_len = 0;
};

/// An equivalent spelling of `spec` (reordered/extended with a default-value
/// key) — the second tenant's request, which canonicalization must resolve
/// to the same pool entry.
std::string reordered_spelling(const std::string& spec) {
  if (spec.find("@") != std::string::npos) {
    // "fam(...)@k1=v1,k2=v2" -> "fam(...)@k2=v2,k1=v1"
    const size_t at = spec.find('@');
    const std::string opts = spec.substr(at + 1);
    const size_t comma = opts.find(',');
    if (comma != std::string::npos)
      return spec.substr(0, at + 1) + opts.substr(comma + 1) + "," +
             opts.substr(0, comma);
    return spec;  // single option: nothing to reorder
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;
  const size_t n_objects = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const size_t object_mib = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::string spec = argc > 3 ? argv[3] : "rs(10,4)@block=1024,threads=1";
  const std::string profile = argc > 4 ? argv[4] : "";

  // The service owns the shard sessions and the codec pools; tenants only
  // hold leases.
  xorec::CodecService service({.shards = 2, .workers_per_shard = 2});

  // Warm start when a previous run saved its profile.
  if (!profile.empty() && std::ifstream(profile).good()) {
    const auto t0 = Clock::now();
    const auto rep = service.warmup(profile);
    std::printf("warmup(%s): %zu codecs, %zu patterns replayed (%zu compiled, "
                "%zu already cached, %zu skipped) in %.1f ms\n",
                profile.c_str(), rep.codecs, rep.patterns, rep.compiled,
                rep.already_cached, rep.skipped, seconds_since(t0) * 1e3);
  }

  // Two tenants, two spellings, ONE pooled codec.
  std::vector<xorec::ServiceHandle> tenants;
  try {
    tenants.push_back(service.acquire(spec));
    tenants.push_back(service.acquire(reordered_spelling(spec)));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const xorec::ServiceHandle& tenant_a = tenants[0];
  const xorec::ServiceHandle& tenant_b = tenants[1];
  const xorec::Codec& codec = tenant_a.codec();
  if (&codec != &tenant_b.codec()) {
    std::fprintf(stderr, "pooling FAILED: equivalent specs got distinct codecs\n");
    return 1;
  }

  const size_t k_data = codec.data_fragments();
  const size_t k_parity = codec.parity_fragments();
  const size_t k_nodes = k_data + k_parity;
  const size_t unit = codec.fragment_multiple() * 8;
  const size_t frag_len =
      std::max(unit, object_mib * (1u << 20) / k_data / unit * unit);

  std::printf("cluster: %zu nodes, pool \"%s\" (2 clients), %zu-byte fragments, "
              "%zu shards x %zu workers\n",
              k_nodes, tenant_a.spec().c_str(), frag_len, service.shard_count(),
              service.stats().shards[0].workers);
  std::mt19937_64 rng(7);

  // ---- ingest: tenants alternate; one encode job per object ----------------
  std::vector<Object> store(n_objects);
  auto t0 = Clock::now();
  {
    std::vector<std::vector<const uint8_t*>> data(n_objects);
    std::vector<std::vector<uint8_t*>> parity(n_objects);
    std::vector<std::future<void>> jobs;  // the futures are the error channel
    for (size_t o = 0; o < n_objects; ++o) {
      Object& obj = store[o];
      obj.frag_len = frag_len;
      obj.fragments.assign(k_nodes, std::vector<uint8_t>(frag_len));
      for (size_t i = 0; i < k_data; ++i)
        for (auto& b : obj.fragments[i]) b = static_cast<uint8_t>(rng());
      for (size_t i = 0; i < k_data; ++i) data[o].push_back(obj.fragments[i].data());
      for (size_t i = 0; i < k_parity; ++i)
        parity[o].push_back(obj.fragments[k_data + i].data());
      const xorec::ServiceHandle& tenant = (o % 2 == 0) ? tenant_a : tenant_b;
      jobs.push_back(tenant.encode(data[o].data(), parity[o].data(), frag_len));
    }
    service.flush();
    for (auto& j : jobs) j.get();  // all ready; rethrows any job failure
  }
  const double ingest_s = seconds_since(t0);
  const double ingest_gb = n_objects * k_data * frag_len / 1e9;
  std::printf("ingested %zu objects (%.2f GB data) in %.3f s  ->  %.2f GB/s encode\n",
              n_objects, ingest_gb, ingest_s, ingest_gb / ingest_s);

  // ---- failure rounds: distinct patterns, one plan per round ----------------
  const size_t rounds = 3;
  size_t repaired = 0;
  t0 = Clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    // Pick a failure pattern the codec can survive (a non-MDS family like
    // lrc may refuse the worst case — back off one node at a time), and
    // solve it ONCE before any fragment is dropped.
    std::vector<uint32_t> failed, available;
    std::shared_ptr<const xorec::ReconstructPlan> plan;
    for (size_t fail_count = k_parity; fail_count > 0 && !plan; --fail_count) {
      failed.clear();
      while (failed.size() < fail_count) {
        const uint32_t node = static_cast<uint32_t>(rng() % k_nodes);
        if (std::find(failed.begin(), failed.end(), node) == failed.end())
          failed.push_back(node);
      }
      std::sort(failed.begin(), failed.end());
      available.clear();
      for (uint32_t id = 0; id < k_nodes; ++id)
        if (std::find(failed.begin(), failed.end(), id) == failed.end())
          available.push_back(id);
      try {
        plan = tenant_a.plan_reconstruct(available, failed);
      } catch (const std::invalid_argument&) {
        continue;  // pattern exceeds this code's tolerance — fail fewer nodes
      }
    }
    if (!plan) {
      std::fprintf(stderr, "no recoverable failure pattern found\n");
      return 1;
    }
    for (Object& obj : store)
      for (uint32_t f : failed) obj.fragments[f].clear();
    std::printf("round %zu: nodes", round + 1);
    for (uint32_t f : failed) std::printf(" %u", f);
    std::printf(" failed; repair plan: %zu XORs over %zu survivors\n",
                plan->xor_count(), plan->available().size());

    std::vector<std::vector<const uint8_t*>> avail_ptrs(store.size());
    std::vector<std::vector<std::vector<uint8_t>>> rebuilt(store.size());
    std::vector<std::vector<uint8_t*>> out_ptrs(store.size());
    std::vector<std::future<void>> jobs;
    for (size_t o = 0; o < store.size(); ++o) {
      Object& obj = store[o];
      for (uint32_t id : available) avail_ptrs[o].push_back(obj.fragments[id].data());
      rebuilt[o].assign(failed.size(), std::vector<uint8_t>(obj.frag_len));
      for (auto& r : rebuilt[o]) out_ptrs[o].push_back(r.data());
      const xorec::ServiceHandle& tenant = (o % 2 == 0) ? tenant_a : tenant_b;
      jobs.push_back(tenant.reconstruct(plan, avail_ptrs[o].data(), out_ptrs[o].data(),
                                        obj.frag_len));
    }
    service.flush();
    for (auto& j : jobs) j.get();
    for (size_t o = 0; o < store.size(); ++o) {
      for (size_t i = 0; i < failed.size(); ++i)
        store[o].fragments[failed[i]] = std::move(rebuilt[o][i]);
      repaired += failed.size();
    }
  }
  const double repair_s = seconds_since(t0);
  const double repair_gb = repaired * frag_len / 1e9;
  std::printf("repaired %zu fragments over %zu rounds (%.2f GB written) in %.3f s  ->  "
              "%.2f GB/s reconstruction output\n",
              repaired, rounds, repair_gb, repair_s, repair_gb / repair_s);

  // ---- verify: re-encode parity from data and compare every fragment --------
  size_t verified = 0;
  for (const Object& obj : store) {
    std::vector<const uint8_t*> data;
    for (size_t i = 0; i < k_data; ++i) data.push_back(obj.fragments[i].data());
    std::vector<std::vector<uint8_t>> parity(k_parity,
                                             std::vector<uint8_t>(obj.frag_len));
    std::vector<uint8_t*> pptr;
    for (auto& p : parity) pptr.push_back(p.data());
    codec.encode(data.data(), pptr.data(), obj.frag_len);
    for (size_t i = 0; i < k_parity; ++i) {
      if (parity[i] != obj.fragments[k_data + i]) {
        std::printf("VERIFY FAILED on parity %zu\n", i);
        return 1;
      }
    }
    ++verified;
  }
  std::printf("verified %zu objects end-to-end. cluster healthy again.\n", verified);

  // Persist the hot patterns so the next process starts warm.
  if (!profile.empty()) {
    const size_t saved = service.save_profile(profile);
    std::printf("saved %zu plan patterns to %s\n", saved, profile.c_str());
  }

  // ---- the service's own view of all of the above ---------------------------
  const xorec::ServiceStats stats = service.stats();
  for (const xorec::ShardStats& s : stats.shards)
    std::printf("shard %zu: %zu workers, %zu jobs, depth %zu, %.2f GB coded "
                "(%.2f GB/s avg)\n",
                s.shard, s.workers, s.submitted, s.queue_depth, s.bytes_coded / 1e9,
                s.throughput_gbps);
  for (const xorec::PoolStats& p : stats.pools)
    std::printf("pool \"%s\" (shard %zu): %zu clients, %zu encodes, %zu plans, "
                "%zu reconstructs, %zu cached programs\n",
                p.spec.c_str(), p.shard, p.clients, p.encodes, p.plans, p.reconstructs,
                p.cached_programs);
  std::printf("plan cache: %zu entries, %zu hits, %zu misses, %.2f ms compiling\n",
              stats.cache.entries, stats.cache.hits, stats.cache.misses,
              stats.cache.compile_ns / 1e6);
  std::printf("serving-window plan lookups: %zu hits, %zu misses  ->  %.0f%% hit "
              "rate%s\n",
              stats.warm_hits, stats.warm_misses, stats.warm_hit_rate() * 100,
              stats.warm_misses == 0 && stats.warm_hits > 0 ? " (warmed start)" : "");
  return 0;
}
