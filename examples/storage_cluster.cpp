// storage_cluster: a miniature HDFS-style object store — the workload §1
// motivates — over ANY registered codec. n+p simulated nodes hold one
// fragment each; objects are written, up to p nodes fail at random, and a
// repair process reconstructs the lost fragments, tracking bandwidth.
//
//   ./build/examples/storage_cluster [objects] [object_mib] [spec]
//   ./build/examples/storage_cluster 16 8 "evenodd(11)"
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <cstdlib>
#include <random>
#include <vector>

#include "api/xorec.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Object {
  std::vector<std::vector<uint8_t>> fragments;  // by node id; empty = lost
  size_t frag_len = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t n_objects = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const size_t object_mib = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const char* spec = argc > 3 ? argv[3] : "rs(10,4)@block=1024";

  std::unique_ptr<xorec::Codec> codec;
  try {
    codec = xorec::make_codec(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const size_t k_data = codec->data_fragments();
  const size_t k_parity = codec->parity_fragments();
  const size_t k_nodes = k_data + k_parity;
  const size_t unit = codec->fragment_multiple() * 8;
  const size_t frag_len =
      std::max(unit, object_mib * (1u << 20) / k_data / unit * unit);

  std::printf("cluster: %zu nodes, codec %s, %zu-byte fragments\n", k_nodes,
              codec->name().c_str(), frag_len);
  std::mt19937_64 rng(7);

  // ---- ingest ---------------------------------------------------------------
  std::vector<Object> store(n_objects);
  auto t0 = Clock::now();
  for (Object& obj : store) {
    obj.frag_len = frag_len;
    obj.fragments.assign(k_nodes, std::vector<uint8_t>(frag_len));
    for (size_t i = 0; i < k_data; ++i)
      for (auto& b : obj.fragments[i]) b = static_cast<uint8_t>(rng());
    std::vector<const uint8_t*> data;
    std::vector<uint8_t*> parity;
    for (size_t i = 0; i < k_data; ++i) data.push_back(obj.fragments[i].data());
    for (size_t i = 0; i < k_parity; ++i)
      parity.push_back(obj.fragments[k_data + i].data());
    codec->encode(data.data(), parity.data(), frag_len);
  }
  const double ingest_s = seconds_since(t0);
  const double ingest_gb = n_objects * k_data * frag_len / 1e9;
  std::printf("ingested %zu objects (%.2f GB data) in %.3f s  ->  %.2f GB/s encode\n",
              n_objects, ingest_gb, ingest_s, ingest_gb / ingest_s);

  // ---- fail up to p random nodes --------------------------------------------
  std::vector<uint32_t> failed;
  while (failed.size() < k_parity) {
    const uint32_t node = static_cast<uint32_t>(rng() % k_nodes);
    if (std::find(failed.begin(), failed.end(), node) == failed.end())
      failed.push_back(node);
  }
  std::sort(failed.begin(), failed.end());
  std::printf("nodes failed:");
  for (uint32_t f : failed) std::printf(" %u", f);
  std::printf("  (every object lost %zu fragments)\n", failed.size());
  for (Object& obj : store)
    for (uint32_t f : failed) obj.fragments[f].clear();

  // ---- repair ---------------------------------------------------------------
  t0 = Clock::now();
  size_t repaired = 0;
  for (Object& obj : store) {
    std::vector<uint32_t> available;
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id = 0; id < k_nodes; ++id) {
      if (!obj.fragments[id].empty()) {
        available.push_back(id);
        avail_ptrs.push_back(obj.fragments[id].data());
      }
    }
    std::vector<std::vector<uint8_t>> rebuilt(failed.size(),
                                              std::vector<uint8_t>(obj.frag_len));
    std::vector<uint8_t*> out_ptrs;
    for (auto& r : rebuilt) out_ptrs.push_back(r.data());
    codec->reconstruct(available, avail_ptrs.data(), failed, out_ptrs.data(),
                       obj.frag_len);
    for (size_t i = 0; i < failed.size(); ++i)
      obj.fragments[failed[i]] = std::move(rebuilt[i]);
    repaired += failed.size();
  }
  const double repair_s = seconds_since(t0);
  const double repair_gb = repaired * frag_len / 1e9;
  std::printf("repaired %zu fragments (%.2f GB written) in %.3f s  ->  %.2f GB/s "
              "reconstruction output\n",
              repaired, repair_gb, repair_s, repair_gb / repair_s);

  // ---- verify: re-encode parity from data and compare every fragment --------
  size_t verified = 0;
  for (const Object& obj : store) {
    std::vector<const uint8_t*> data;
    for (size_t i = 0; i < k_data; ++i) data.push_back(obj.fragments[i].data());
    std::vector<std::vector<uint8_t>> parity(k_parity,
                                             std::vector<uint8_t>(obj.frag_len));
    std::vector<uint8_t*> pptr;
    for (auto& p : parity) pptr.push_back(p.data());
    codec->encode(data.data(), pptr.data(), obj.frag_len);
    for (size_t i = 0; i < k_parity; ++i) {
      if (parity[i] != obj.fragments[k_data + i]) {
        std::printf("VERIFY FAILED on parity %zu\n", i);
        return 1;
      }
    }
    ++verified;
  }
  std::printf("verified %zu objects end-to-end. cluster healthy again.\n", verified);
  return 0;
}
