// storage_cluster: the fleet-scale repair experiment — a simulated
// racks × nodes × disks cluster (src/cluster/) holding erasure-coded stripes
// under a rack-aware placement, hit by a node failure and a correlated rack
// failure, repaired by the RepairOrchestrator through one shared
// xorec::CodecService. The SAME failure trace runs against three codec
// families of equal stripe width (k + m = 10):
//
//   rs(6,4)            plain Reed-Solomon — reads k full fragments per repair
//   lrc(6,2,2)         local reconstruction — single losses repair in-group
//   piggyback(6,4,2)   sub-stripe piggybacks — reduced single-block reads
//
// and the printed traffic table is the XORing-Elephants comparison: the
// locality families must move strictly fewer cross-rack bytes than rs for
// the identical failures. The example verifies that (and that every lost
// chunk was repaired and byte-verified) and exits non-zero otherwise, so CI
// can use it as the cluster smoke. All output is a pure function of the
// arguments — run it twice and diff to check determinism.
//
//   ./build/examples/storage_cluster [stripes] [racks] [seed]
//   ./build/examples/storage_cluster            # 64 stripes, 12 racks
//   ./build/examples/storage_cluster 256 16 7
//   ./build/examples/storage_cluster --list-codecs
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "cluster/failure.hpp"
#include "cluster/placement.hpp"
#include "cluster/repair.hpp"
#include "cluster/topology.hpp"
#include "example_util.hpp"

namespace {

double mib(uint64_t bytes) { return static_cast<double>(bytes) / (1ull << 20); }

}  // namespace

int main(int argc, char** argv) {
  using namespace xorec::cluster;

  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;
  const size_t stripes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  uint32_t racks = argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 12;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  // A stripe is 10 chunks wide; with racks >= 10 the rack-aware placement
  // puts one chunk per rack, so a whole-rack failure costs each stripe at
  // most one chunk — every family below recovers that.
  if (racks < 10) racks = 10;

  const Topology topo(racks, /*nodes_per_rack=*/2, /*disks_per_node=*/2);
  const std::vector<std::string> specs{"rs(6,4)", "lrc(6,2,2)", "piggyback(6,4,2)"};

  // One node failure, then a correlated whole-rack failure two virtual
  // seconds later (targets drawn from the seed, away from each other).
  const uint32_t dead_node = static_cast<uint32_t>(seed % topo.node_count());
  const uint32_t dead_rack = (topo.rack_of_node(dead_node) + 1 + static_cast<uint32_t>(seed % (racks - 1))) % racks;
  FailureTrace trace;
  trace.add_node(0.0, dead_node).add_rack(2.0, dead_rack);

  RepairOptions base;
  base.chunk_bytes = 4ull << 20;       // virtual 4 MiB chunks
  base.node_bandwidth = 64ull << 20;   // 64 MiB per node per virtual second
  base.execute_stripes = 4;            // first 4 repairs carry real payload
  base.exec_frag_len = 4096;
  base.seed = seed;

  std::printf("fleet: %u racks x %u nodes x %u disks  (%u nodes, %u disks)\n",
              topo.racks, topo.nodes_per_rack, topo.disks_per_node, topo.node_count(),
              topo.disk_count());
  std::printf("load:  %zu stripes x 10 chunks, rack-aware placement, seed %llu\n",
              stripes, static_cast<unsigned long long>(seed));
  std::printf("trace: node %u fails at t=0, rack %u fails at t=2  (fingerprint %llx)\n\n",
              dead_node, dead_rack,
              static_cast<unsigned long long>(trace.fingerprint()));

  xorec::CodecService service({.shards = 2, .workers_per_shard = 2});
  const std::vector<RepairReport> reports = compare_families(
      topo, PlacementPolicy::RackAware, stripes, specs, trace, service, base, seed);

  std::printf("%-18s %6s %6s %8s %12s %12s %8s %6s\n", "family", "lost", "jobs",
              "strips", "x-rack MiB", "in-rack MiB", "x-frac", "ticks");
  for (const RepairReport& r : reports)
    std::printf("%-18s %6zu %6zu %8zu %12.1f %12.1f %8.3f %6llu\n", r.spec.c_str(),
                r.chunks_lost, r.repair_jobs, r.strips_read, mib(r.cross_rack_bytes),
                mib(r.intra_rack_bytes), r.cross_rack_fraction(),
                static_cast<unsigned long long>(r.time_to_safe_ticks));
  std::printf("\n");

  // Self-verification — this example doubles as the CI cluster smoke.
  bool ok = true;
  const auto check = [&](bool cond, const char* what, const std::string& who) {
    if (!cond) {
      std::printf("FAIL: %s (%s)\n", what, who.c_str());
      ok = false;
    }
  };
  for (const RepairReport& r : reports) {
    check(r.stripes_unrecoverable == 0, "stripes lost", r.spec);
    check(r.chunks_unplaced == 0, "chunks had no replacement target", r.spec);
    check(r.chunks_repaired == r.chunks_lost, "not every lost chunk repaired", r.spec);
    check(r.verify_failures == 0, "payload verification failed", r.spec);
    check(r.executed_stripes > 0 && r.verified_stripes == r.executed_stripes,
          "no payload-verified repairs", r.spec);
  }
  const RepairReport& rs = reports[0];
  for (size_t i = 1; i < reports.size(); ++i) {
    check(reports[i].cross_rack_bytes < rs.cross_rack_bytes,
          "locality family moved >= rs cross-rack bytes", reports[i].spec);
    check(reports[i].bytes_read < rs.bytes_read,
          "locality family read >= rs bytes", reports[i].spec);
  }
  if (!ok) return 1;

  std::printf("ok: every lost chunk repaired and byte-verified; lrc and piggyback both\n"
              "    moved fewer cross-rack bytes than rs on the identical trace\n");
  std::printf("decision fingerprints:");
  for (const RepairReport& r : reports)
    std::printf(" %s=%llx", r.spec.c_str(),
                static_cast<unsigned long long>(r.decision_fingerprint));
  std::printf("\n");
  return 0;
}
