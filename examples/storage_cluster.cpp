// storage_cluster: a miniature HDFS-style object store — the workload §1
// motivates — over ANY registered codec, driven through the plan/execute
// batch data plane. n+p simulated nodes hold one fragment each; objects are
// written through a BatchCoder session (stripe-parallel ingest), up to p
// nodes fail at random, and the repair process solves the erasure pattern
// ONCE (Codec::plan_reconstruct), then submits one plan-execute job per
// object — the degraded-read fast path.
//
//   ./build/examples/storage_cluster [objects] [object_mib] [spec]
//   ./build/examples/storage_cluster 16 8 "evenodd(11)@batch=4"
//   ./build/examples/storage_cluster --list-codecs
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <vector>

#include "api/xorec.hpp"
#include "example_util.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Object {
  std::vector<std::vector<uint8_t>> fragments;  // by node id; empty = lost
  size_t frag_len = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;
  const size_t n_objects = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const size_t object_mib = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const char* spec = argc > 3 ? argv[3] : "rs(10,4)@block=1024";

  // The session owns the codec and the worker group; batch= in the spec
  // sizes it (default: hardware concurrency).
  std::unique_ptr<xorec::BatchCoder> batch;
  try {
    batch = std::make_unique<xorec::BatchCoder>(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const xorec::Codec& codec = batch->codec();
  const size_t k_data = codec.data_fragments();
  const size_t k_parity = codec.parity_fragments();
  const size_t k_nodes = k_data + k_parity;
  const size_t unit = codec.fragment_multiple() * 8;
  const size_t frag_len =
      std::max(unit, object_mib * (1u << 20) / k_data / unit * unit);

  std::printf("cluster: %zu nodes, codec %s, %zu-byte fragments, %zu session workers\n",
              k_nodes, codec.name().c_str(), frag_len, batch->threads());
  std::mt19937_64 rng(7);

  // ---- ingest: one encode job per object, flush() is the barrier -----------
  std::vector<Object> store(n_objects);
  auto t0 = Clock::now();
  {
    std::vector<std::vector<const uint8_t*>> data(n_objects);
    std::vector<std::vector<uint8_t*>> parity(n_objects);
    std::vector<std::future<void>> jobs;  // the futures are the error channel
    for (size_t o = 0; o < n_objects; ++o) {
      Object& obj = store[o];
      obj.frag_len = frag_len;
      obj.fragments.assign(k_nodes, std::vector<uint8_t>(frag_len));
      for (size_t i = 0; i < k_data; ++i)
        for (auto& b : obj.fragments[i]) b = static_cast<uint8_t>(rng());
      for (size_t i = 0; i < k_data; ++i) data[o].push_back(obj.fragments[i].data());
      for (size_t i = 0; i < k_parity; ++i)
        parity[o].push_back(obj.fragments[k_data + i].data());
      jobs.push_back(batch->submit_encode(data[o].data(), parity[o].data(), frag_len));
    }
    batch->flush();
    for (auto& j : jobs) j.get();  // all ready; rethrows any job failure
  }
  const double ingest_s = seconds_since(t0);
  const double ingest_gb = n_objects * k_data * frag_len / 1e9;
  std::printf("ingested %zu objects (%.2f GB data) in %.3f s  ->  %.2f GB/s encode\n",
              n_objects, ingest_gb, ingest_s, ingest_gb / ingest_s);

  // ---- fail up to p random nodes --------------------------------------------
  std::vector<uint32_t> failed;
  while (failed.size() < k_parity) {
    const uint32_t node = static_cast<uint32_t>(rng() % k_nodes);
    if (std::find(failed.begin(), failed.end(), node) == failed.end())
      failed.push_back(node);
  }
  std::sort(failed.begin(), failed.end());
  std::printf("nodes failed:");
  for (uint32_t f : failed) std::printf(" %u", f);
  std::printf("  (every object lost %zu fragments)\n", failed.size());
  for (Object& obj : store)
    for (uint32_t f : failed) obj.fragments[f].clear();

  // ---- repair: solve the pattern once, execute it per object ----------------
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < k_nodes; ++id)
    if (std::find(failed.begin(), failed.end(), id) == failed.end())
      available.push_back(id);

  t0 = Clock::now();
  const auto plan = codec.plan_reconstruct(available, failed);
  if (plan->xor_count() > 0)
    std::printf("repair plan: %zu XORs over %zu survivors (compiled once)\n",
                plan->xor_count(), plan->available().size());

  size_t repaired = 0;
  {
    std::vector<std::vector<const uint8_t*>> avail_ptrs(store.size());
    std::vector<std::vector<std::vector<uint8_t>>> rebuilt(store.size());
    std::vector<std::vector<uint8_t*>> out_ptrs(store.size());
    std::vector<std::future<void>> jobs;
    for (size_t o = 0; o < store.size(); ++o) {
      Object& obj = store[o];
      for (uint32_t id : available) avail_ptrs[o].push_back(obj.fragments[id].data());
      rebuilt[o].assign(failed.size(), std::vector<uint8_t>(obj.frag_len));
      for (auto& r : rebuilt[o]) out_ptrs[o].push_back(r.data());
      jobs.push_back(batch->submit_reconstruct(plan, avail_ptrs[o].data(),
                                               out_ptrs[o].data(), obj.frag_len));
    }
    batch->flush();
    for (auto& j : jobs) j.get();
    for (size_t o = 0; o < store.size(); ++o) {
      for (size_t i = 0; i < failed.size(); ++i)
        store[o].fragments[failed[i]] = std::move(rebuilt[o][i]);
      repaired += failed.size();
    }
  }
  const double repair_s = seconds_since(t0);
  const double repair_gb = repaired * frag_len / 1e9;
  std::printf("repaired %zu fragments (%.2f GB written) in %.3f s  ->  %.2f GB/s "
              "reconstruction output\n",
              repaired, repair_gb, repair_s, repair_gb / repair_s);

  // ---- verify: re-encode parity from data and compare every fragment --------
  size_t verified = 0;
  for (const Object& obj : store) {
    std::vector<const uint8_t*> data;
    for (size_t i = 0; i < k_data; ++i) data.push_back(obj.fragments[i].data());
    std::vector<std::vector<uint8_t>> parity(k_parity,
                                             std::vector<uint8_t>(obj.frag_len));
    std::vector<uint8_t*> pptr;
    for (auto& p : parity) pptr.push_back(p.data());
    codec.encode(data.data(), pptr.data(), obj.frag_len);
    for (size_t i = 0; i < k_parity; ++i) {
      if (parity[i] != obj.fragments[k_data + i]) {
        std::printf("VERIFY FAILED on parity %zu\n", i);
        return 1;
      }
    }
    ++verified;
  }
  std::printf("verified %zu objects end-to-end. cluster healthy again.\n", verified);

  // The plan-compilation service behind all of the above: every codec built
  // with cache=shared (the default) feeds these process-wide counters.
  const xorec::CacheStats cs = xorec::plan_cache_stats();
  std::printf("plan cache (process-shared): %zu entries, %zu hits, %zu misses, "
              "%zu evictions, %.2f ms compiling\n",
              cs.entries, cs.hits, cs.misses, cs.evictions, cs.compile_ns / 1e6);
  return 0;
}
