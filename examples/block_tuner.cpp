// block_tuner: §7.4 as a utility — measure encode throughput for a range of
// block sizes on *this* machine and report the best spec string. The paper
// picked B=1K on its intel box and B=2K on amd; your hardware may differ.
//
//   ./build/examples/block_tuner [n] [p] [family]      (or --list-codecs)
//   ./build/examples/block_tuner 11 2 evenodd
#include <chrono>
#include <cstdio>
#include <memory>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "api/xorec.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;

  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const size_t p = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::string family = argc > 3 ? argv[3] : "rs";
  const std::string dims =
      family + "(" + std::to_string(n) + "," + std::to_string(p) + ")";

  // Geometry probe (block size does not change the layout).
  std::unique_ptr<xorec::Codec> probe;
  try {
    probe = xorec::make_codec(dims);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const size_t unit = probe->fragment_multiple() * 8;
  const size_t frag_len = (10u << 20) / n / unit * unit;

  std::mt19937_64 rng(1);
  std::vector<std::vector<uint8_t>> frags(n + p, std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < n; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < n; ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < p; ++i) parity.push_back(frags[n + i].data());

  std::printf("tuning %s, %zu-byte fragments\n", probe->name().c_str(), frag_len);
  std::printf("%8s  %10s\n", "block", "GB/s");

  size_t best_block = 0;
  double best_gbps = 0;
  for (size_t block : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const auto codec = xorec::make_codec(dims + "@block=" + std::to_string(block));

    // Warm up, then time enough repetitions for ~0.5 s.
    codec->encode(data.data(), parity.data(), frag_len);
    size_t reps = 1;
    double elapsed = 0;
    for (;;) {
      const auto t0 = Clock::now();
      for (size_t r = 0; r < reps; ++r)
        codec->encode(data.data(), parity.data(), frag_len);
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
      if (elapsed > 0.4) break;
      reps *= 2;
    }
    const double gbps = reps * double(n * frag_len) / elapsed / 1e9;
    std::printf("%8zu  %10.2f\n", block, gbps);
    if (gbps > best_gbps) {
      best_gbps = gbps;
      best_block = block;
    }
  }
  std::printf("\nbest block size on this machine: %zu (%.2f GB/s)\n", best_block, best_gbps);
  std::printf("use: xorec::make_codec(\"%s@block=%zu\")\n", dims.c_str(), best_block);
  return 0;
}
