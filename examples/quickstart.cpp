// Quickstart: lease any codec from a CodecService by spec string, encode an
// object through its shard session, lose fragments, reconstruct. Try
// "evenodd(6,2)", "star(9)", "cauchy(12,3)", ... — the flow is identical
// for every family. (make_codec builds a bare, unpooled codec when you do
// not want the serving façade.)
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [spec | --list-codecs]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "api/xorec.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;
  // The service pools codecs by canonical spec: a second acquire of an
  // equivalent spelling would lease the SAME instance (and, through the
  // shared plan cache, the same compiled programs).
  xorec::CodecService service;
  std::unique_ptr<xorec::ServiceHandle> lease;
  try {
    lease = std::make_unique<xorec::ServiceHandle>(
        service.acquire(argc > 1 ? argv[1] : "rs(10,4)"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const xorec::Codec* codec = &lease->codec();
  const size_t n = codec->data_fragments();
  const size_t p = codec->parity_fragments();
  // Fragment lengths must be multiples of the codec's strip count.
  const size_t frag_len = codec->fragment_multiple() * (1 << 14);

  // The object: n data fragments of random bytes.
  std::mt19937_64 rng(42);
  std::vector<std::vector<uint8_t>> frags(n + p, std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < n; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());

  // Encode: one routed job on the lease's shard fills the p parity
  // fragments (.get() waits and rethrows job failures).
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < n; ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < p; ++i) parity.push_back(frags[n + i].data());
  lease->encode(data.data(), parity.data(), frag_len).get();
  std::printf("%s: encoded %zu KiB into %zu data + %zu parity fragments\n",
              codec->name().c_str(), n * frag_len >> 10, n, p);

  // Disaster: lose up to p fragments (the last parity plus the lowest data
  // ids). MDS codecs take the full loss; a non-MDS family (e.g. lrc) may
  // refuse the worst case — the codec is the authority, so back off one
  // data loss at a time until the pattern is recoverable.
  std::vector<uint32_t> erased;
  std::vector<std::vector<uint8_t>> rebuilt;
  std::vector<uint8_t*> out_ptrs;
  size_t data_losses = std::min(p - 1, n);
  for (;;) {
    erased.clear();
    for (uint32_t i = 0; i < data_losses; ++i) erased.push_back(i);
    erased.push_back(static_cast<uint32_t>(n + p - 1));
    std::vector<uint32_t> available;
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id = 0; id < n + p; ++id) {
      if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
        available.push_back(id);
        avail_ptrs.push_back(frags[id].data());
      }
    }
    rebuilt.assign(erased.size(), std::vector<uint8_t>(frag_len));
    out_ptrs.clear();
    for (auto& r : rebuilt) out_ptrs.push_back(r.data());
    try {
      // Reconstruct the lost fragments into fresh buffers: a routed repair
      // job (the plan lookup is memoized inside it).
      lease->rebuild(available, avail_ptrs.data(), erased, out_ptrs.data(), frag_len)
          .get();
      break;
    } catch (const std::invalid_argument& e) {
      if (data_losses == 0) {
        std::fprintf(stderr, "%s: reconstruct failed: %s\n", codec->name().c_str(),
                     e.what());
        return 2;
      }
      std::printf("%zu data losses refused (%s) — retrying with %zu\n", data_losses,
                  e.what(), data_losses - 1);
      --data_losses;
    }
  }

  for (size_t i = 0; i < erased.size(); ++i) {
    if (rebuilt[i] != frags[erased[i]]) {
      std::printf("FAILED: fragment %u mismatch\n", erased[i]);
      return 1;
    }
  }
  std::printf("reconstructed");
  for (uint32_t id : erased) std::printf(" %u", id);
  std::printf(" — byte-identical. OK\n");

  const xorec::ServiceStats stats = service.stats();
  std::printf("service: pool \"%s\" on shard %zu, %zu jobs routed, plan cache "
              "%zu hits / %zu misses\n",
              lease->spec().c_str(), lease->shard(),
              stats.shards[lease->shard()].submitted, stats.cache.hits,
              stats.cache.misses);
  return 0;
}
