// Quickstart: RS(10,4) — encode an object, lose 4 fragments, reconstruct.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <random>
#include <vector>

#include "ec/rs_codec.hpp"

int main() {
  using namespace xorec;

  constexpr size_t kData = 10, kParity = 4;
  constexpr size_t kFragLen = 1 << 20;  // 1 MiB per fragment -> 10 MiB object

  // A codec object compiles the optimized encode SLP once; reuse it.
  ec::RsCodec codec(kData, kParity);

  // The object: 10 data fragments of random bytes.
  std::mt19937_64 rng(42);
  std::vector<std::vector<uint8_t>> frags(kData + kParity,
                                          std::vector<uint8_t>(kFragLen));
  for (size_t i = 0; i < kData; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());

  // Encode: fills the 4 parity fragments.
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < kData; ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < kParity; ++i) parity.push_back(frags[kData + i].data());
  codec.encode(data.data(), parity.data(), kFragLen);
  std::printf("encoded %zu MiB into %zu data + %zu parity fragments\n",
              kData * kFragLen >> 20, kData, kParity);

  // Disaster: fragments 2, 4, 5 and 12 are gone.
  const std::vector<uint32_t> erased{2, 4, 5, 12};
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id = 0; id < kData + kParity; ++id) {
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available.push_back(id);
      avail_ptrs.push_back(frags[id].data());
    }
  }

  // Reconstruct the lost fragments into fresh buffers.
  std::vector<std::vector<uint8_t>> rebuilt(erased.size(),
                                            std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> out_ptrs;
  for (auto& r : rebuilt) out_ptrs.push_back(r.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, out_ptrs.data(), kFragLen);

  for (size_t i = 0; i < erased.size(); ++i) {
    if (rebuilt[i] != frags[erased[i]]) {
      std::printf("FAILED: fragment %u mismatch\n", erased[i]);
      return 1;
    }
  }
  std::printf("reconstructed fragments 2, 4, 5, 12 — byte-identical. OK\n");
  return 0;
}
