// custom_code: the library as a *compiler* for user-defined XOR codes.
//
// Defines a tiny custom code (a 3+2 flat XOR code), pushes it through every
// optimizer stage, and prints the SLPs and their cost measures at each stage
// — the paper's §2 walkthrough, live. Then does the same for EVENODD(5) to
// show a real array code shrinking.
//
//   ./build/examples/custom_code
#include <cstdio>

#include "altcodes/evenodd.hpp"
#include "slp/cache_model.hpp"
#include "slp/fusion.hpp"
#include "slp/metrics.hpp"
#include "slp/pipeline.hpp"
#include "slp/repair.hpp"
#include "slp/schedule_dfs.hpp"

using namespace xorec;

namespace {

void show(const char* title, const slp::Program& p, slp::ExecForm form) {
  const auto m = slp::measure(p, form);
  std::printf("---- %s: #xor=%zu #M=%zu NVar=%zu CCap=%zu\n", title, m.xor_ops,
              m.mem_accesses, m.nvar, m.ccap);
  std::printf("%s", p.to_string().c_str());
}

}  // namespace

int main() {
  // A hand-written parity scheme over 5 inputs: three overlapping parities.
  //   out0 = a^b^c^d,  out1 = b^c^d^e,  out2 = a^b^c^d^e
  bitmatrix::BitMatrix code(3, 5);
  for (int j = 0; j < 4; ++j) code.set(0, j, true);
  for (int j = 1; j < 5; ++j) code.set(1, j, true);
  for (int j = 0; j < 5; ++j) code.set(2, j, true);

  std::printf("== custom 3x5 parity code through the optimizer ==\n");
  const slp::Program base = slp::from_bitmatrix(code, "custom");
  show("Base (straight from the matrix)", base, slp::ExecForm::Binary);

  const slp::Program co = slp::xor_repair_compress(base);
  show("XorRePair (shared subexpressions + cancellation)", co, slp::ExecForm::Binary);

  const slp::Program fu = slp::fuse(co);
  show("Fused (deforestation: multi-input XORs)", fu, slp::ExecForm::Fused);

  const slp::Program sched = slp::schedule_dfs(fu);
  show("Scheduled (pebble game: buffer reuse + locality)", sched, slp::ExecForm::Fused);

  // The same flow on a real array code, summary only.
  std::printf("\n== EVENODD(p=5) encode SLP, stage summary ==\n");
  const auto spec = altcodes::evenodd_spec(5);
  bitmatrix::BitMatrix parity(2 * 4, 5 * 4);
  for (size_t r = 0; r < 8; ++r) parity.row(r) = spec.code.row(5 * 4 + r);
  slp::PipelineOptions opt;  // defaults: XorRePair + fuse + DFS
  const auto pipe = slp::optimize(parity, opt, "evenodd5");
  const auto pb = slp::measure(pipe.base, slp::ExecForm::Binary);
  const auto pc = slp::measure(*pipe.compressed, slp::ExecForm::Binary);
  const auto pf = slp::measure(*pipe.fused, slp::ExecForm::Fused);
  const auto ps = slp::measure(*pipe.scheduled, slp::ExecForm::Fused);
  std::printf("stage      #xor   #M  NVar  CCap\n");
  std::printf("base       %4zu %4zu  %4zu  %4zu\n", pb.xor_ops, pb.mem_accesses, pb.nvar, pb.ccap);
  std::printf("compressed %4zu %4zu  %4zu  %4zu\n", pc.xor_ops, pc.mem_accesses, pc.nvar, pc.ccap);
  std::printf("fused      %4zu %4zu  %4zu  %4zu\n", pf.xor_ops, pf.mem_accesses, pf.nvar, pf.ccap);
  std::printf("scheduled  %4zu %4zu  %4zu  %4zu\n", ps.xor_ops, ps.mem_accesses, ps.nvar, ps.ccap);
  return 0;
}
