// custom_code: the library as a *compiler* for user-defined XOR codes.
//
// Part 1 defines a tiny custom code (a 3+2 flat XOR code) and pushes it
// through every optimizer stage by hand, printing the SLPs and their cost
// measures — the paper's §2 walkthrough, live. Then the same for EVENODD(5)
// to show a real array code shrinking.
//
// Part 2 plugs the same custom code into the public registry: wrap the
// matrix in an altcodes::XorCodeSpec, register a family, and it gains
// encode/reconstruct, the decode cache and blob storage for free — exactly
// what every built-in family does.
//
//   ./build/examples/custom_code [--list-codecs]
#include <cstdio>
#include <random>
#include <vector>

#include "altcodes/xor_code.hpp"
#include "api/xorec.hpp"
#include "example_util.hpp"
#include "slp/metrics.hpp"
#include "slp/pipeline.hpp"

using namespace xorec;

namespace {

void show(const char* title, const slp::Program& p, slp::ExecForm form) {
  const auto m = slp::measure(p, form);
  std::printf("---- %s: #xor=%zu #M=%zu NVar=%zu CCap=%zu\n", title, m.xor_ops,
              m.mem_accesses, m.nvar, m.ccap);
  std::printf("%s", p.to_string().c_str());
}

/// The hand-written parity scheme over 5 inputs: three overlapping parities.
///   out0 = a^b^c^d,  out1 = b^c^d^e,  out2 = a^b^c^d^e
bitmatrix::BitMatrix custom_parity() {
  bitmatrix::BitMatrix code(3, 5);
  for (int j = 0; j < 4; ++j) code.set(0, j, true);
  for (int j = 1; j < 5; ++j) code.set(1, j, true);
  for (int j = 0; j < 5; ++j) code.set(2, j, true);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (examples::handle_list_codecs(argc, argv)) return 0;
  const bitmatrix::BitMatrix code = custom_parity();

  std::printf("== part 1: the custom 3x5 parity code through the optimizer ==\n");
  slp::PipelineOptions opt;  // defaults: XorRePair + fuse + DFS
  const auto pipe = slp::optimize(code, opt, "custom");
  show("Base (straight from the matrix)", pipe.base, slp::ExecForm::Binary);
  show("XorRePair (shared subexpressions + cancellation)", *pipe.compressed,
       slp::ExecForm::Binary);
  show("Fused (deforestation: multi-input XORs)", *pipe.fused, slp::ExecForm::Fused);
  show("Scheduled (pebble game: buffer reuse + locality)", *pipe.scheduled,
       slp::ExecForm::Fused);

  // The same flow on a real array code, summary only, via the registry.
  std::printf("\n== EVENODD(p=5) encode SLP, stage summary ==\n");
  const auto evenodd = make_codec("evenodd(5)");
  const slp::PipelineResult& ep = *evenodd->encode_pipeline();
  const auto pb = slp::measure(ep.base, slp::ExecForm::Binary);
  const auto pc = slp::measure(*ep.compressed, slp::ExecForm::Binary);
  const auto pf = slp::measure(*ep.fused, slp::ExecForm::Fused);
  const auto ps = slp::measure(*ep.scheduled, slp::ExecForm::Fused);
  std::printf("stage      #xor   #M  NVar  CCap\n");
  std::printf("base       %4zu %4zu  %4zu  %4zu\n", pb.xor_ops, pb.mem_accesses, pb.nvar, pb.ccap);
  std::printf("compressed %4zu %4zu  %4zu  %4zu\n", pc.xor_ops, pc.mem_accesses, pc.nvar, pc.ccap);
  std::printf("fused      %4zu %4zu  %4zu  %4zu\n", pf.xor_ops, pf.mem_accesses, pf.nvar, pf.ccap);
  std::printf("scheduled  %4zu %4zu  %4zu  %4zu\n", ps.xor_ops, ps.mem_accesses, ps.nvar, ps.ccap);

  // == part 2: the custom code as a first-class registry family ==
  std::printf("\n== part 2: register the custom code, use it like any codec ==\n");
  register_codec_family("flat35", [](const CodecSpec& cs) -> std::unique_ptr<Codec> {
    if (!cs.args.empty())
      throw std::invalid_argument("make_codec: flat35 takes no arguments in spec \"" +
                                  cs.spec + "\"");
    altcodes::XorCodeSpec spec;
    spec.name = "flat35";
    spec.data_blocks = 5;
    spec.parity_blocks = 3;
    spec.strips_per_block = 1;  // flat code: one strip per block
    const bitmatrix::BitMatrix parity = custom_parity();
    spec.code = bitmatrix::BitMatrix(8, 5);
    for (size_t r = 0; r < 5; ++r) spec.code.set(r, r, true);
    for (size_t r = 0; r < 3; ++r) spec.code.row(5 + r) = parity.row(r);
    return std::make_unique<altcodes::XorCodec>(std::move(spec), cs.options);
  });

  const auto codec = make_codec("flat35()@block=1024");
  const size_t n = codec->data_fragments(), p = codec->parity_fragments();
  const size_t frag_len = 4096;
  std::mt19937_64 rng(3);
  std::vector<std::vector<uint8_t>> frags(n + p, std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < n; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < n; ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < p; ++i) parity.push_back(frags[n + i].data());
  codec->encode(data.data(), parity.data(), frag_len);

  // This code tolerates the single-data-block erasure {1}: out0 = a^b^c^d
  // survives, so b = out0 ^ a ^ c ^ d — reconstruct and verify.
  const std::vector<uint32_t> erased{1};
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id = 0; id < n + p; ++id)
    if (id != 1) {
      available.push_back(id);
      avail_ptrs.push_back(frags[id].data());
    }
  std::vector<uint8_t> rebuilt(frag_len, 0xEE);
  uint8_t* out = rebuilt.data();
  codec->reconstruct(available, avail_ptrs.data(), erased, &out, frag_len);
  std::printf("flat35 reconstruct block 1: %s\n",
              rebuilt == frags[1] ? "byte-identical. OK" : "MISMATCH");
  return rebuilt == frags[1] ? 0 : 1;
}
