// Shared flag handling for the example binaries: every example answers
// `--list-codecs` by printing the registered families and the spec grammar
// pointer, then exiting (ROADMAP "Registry ergonomics" — the registry is
// runtime-extensible, so the list is computed, not hard-coded).
#pragma once

#include <cstdio>
#include <cstring>

#include "api/registry.hpp"

namespace xorec::examples {

/// True when --list-codecs was given (caller should return 0 immediately).
inline bool handle_list_codecs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-codecs") != 0) continue;
    std::printf("registered codec families:\n");
    for (const auto& family : registered_families())
      std::printf("  %s\n", family.c_str());
    std::printf("spec grammar: family(args)[@key=value,...] — options:");
    for (const auto& key : spec_option_keys()) std::printf(" %s", key.c_str());
    std::printf(" (see api/registry.hpp)\n");
    return true;
  }
  return false;
}

}  // namespace xorec::examples
