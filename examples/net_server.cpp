// net_server — stand up the network serving front-end over a CodecService.
//
//   ./net_server                          # ephemeral ports, printed on stdout
//   ./net_server --tcp-port 9901 --udp-port 9902
//   ./net_server --monitor-port 9903      # HTTP /metrics + /stats.json
//   ./net_server --monitor-port 0        # monitor on an ephemeral port
//   ./net_server --sample-ms 100 --sample-window 64   # sampler ring knobs
//   ./net_server --port-file ports.txt    # write "tcp udp [monitor]\n"
//   ./net_server --seconds 30             # serve for N seconds, then report
//
// --monitor-port (even 0) enables the observability stack: a
// MetricsRegistry over the service and server, a Sampler ring for windowed
// rates (which also drives depth-based shard placement of new pools), and
// the HTTP MonitorServer. Without the flag none of it runs.
//
// Serves until --seconds elapse (default: forever, SIGINT/SIGTERM to stop),
// then prints the serving report: requests, degraded reads, backpressure
// stalls and the per-pool net counters from ServiceStats.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "api/service.hpp"
#include "example_util.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/sampler.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;

  xorec::net::ServerOptions opt;
  xorec::obs::MonitorOptions mon_opt;
  xorec::obs::SamplerOptions sam_opt;
  bool monitor = false;
  std::string port_file;
  int seconds = 0;  // 0 = run until signaled
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tcp-port") == 0)
      opt.tcp_port = static_cast<uint16_t>(std::atoi(next("--tcp-port")));
    else if (std::strcmp(argv[i], "--udp-port") == 0)
      opt.udp_port = static_cast<uint16_t>(std::atoi(next("--udp-port")));
    else if (std::strcmp(argv[i], "--host") == 0)
      opt.host = next("--host");
    else if (std::strcmp(argv[i], "--monitor-port") == 0) {
      monitor = true;
      mon_opt.port = static_cast<uint16_t>(std::atoi(next("--monitor-port")));
    } else if (std::strcmp(argv[i], "--sample-ms") == 0)
      sam_opt.interval = std::chrono::milliseconds(std::atoi(next("--sample-ms")));
    else if (std::strcmp(argv[i], "--sample-window") == 0)
      sam_opt.capacity = static_cast<size_t>(std::atoi(next("--sample-window")));
    else if (std::strcmp(argv[i], "--port-file") == 0)
      port_file = next("--port-file");
    else if (std::strcmp(argv[i], "--seconds") == 0)
      seconds = std::atoi(next("--seconds"));
    else {
      std::fprintf(stderr,
                   "usage: net_server [--host H] [--tcp-port P] [--udp-port P]\n"
                   "                  [--monitor-port P] [--sample-ms N] [--sample-window N]\n"
                   "                  [--port-file PATH] [--seconds N]\n");
      return 2;
    }
  }

  xorec::CodecService service;
  xorec::net::NetServer server(service, opt);

  // The observability stack (only with --monitor-port): registry over both
  // counter surfaces, sampler ring for windowed rates + depth-driven pool
  // placement, HTTP endpoint. Declared in this order so teardown runs
  // monitor -> sampler -> registry.
  xorec::obs::MetricsRegistry registry;
  std::unique_ptr<xorec::obs::Sampler> sampler;
  std::unique_ptr<xorec::obs::MonitorServer> monitor_server;
  if (monitor) {
    registry.attach(service);
    registry.attach(server);
    sampler = std::make_unique<xorec::obs::Sampler>(registry, sam_opt);
    sampler->drive_placement(service);
    sampler->start();
    mon_opt.host = opt.host;
    monitor_server = std::make_unique<xorec::obs::MonitorServer>(registry, mon_opt);
    monitor_server->start();
  }

  server.start();
  std::printf("net_server: tcp %s:%u  udp %s:%u\n", opt.host.c_str(),
              server.tcp_port(), opt.host.c_str(), server.udp_port());
  if (monitor_server)
    std::printf("net_server: monitor http://%s:%u  (/metrics, /stats.json)\n",
                opt.host.c_str(), monitor_server->port());
  std::fflush(stdout);

  if (!port_file.empty()) {
    // Written after start(): the ports are live by the time the file exists,
    // so a script can poll for the file and connect immediately. The third
    // field is the monitor port (net_client's "%d %d" scan ignores it).
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "net_server: cannot write %s\n", port_file.c_str());
      return 1;
    }
    if (monitor_server)
      std::fprintf(f, "%u %u %u\n", server.tcp_port(), server.udp_port(),
                   monitor_server->port());
    else
      std::fprintf(f, "%u %u\n", server.tcp_port(), server.udp_port());
    std::fclose(f);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (!g_stop && (seconds == 0 || std::chrono::steady_clock::now() < deadline))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  if (monitor_server) monitor_server->stop();
  if (sampler) sampler->stop();

  const xorec::net::NetServerStats s = server.stats();
  std::printf("\nserving report\n");
  std::printf("  connections accepted   %zu\n", s.connections_accepted);
  std::printf("  tcp requests/responses %zu / %zu (errors %zu)\n", s.requests,
              s.responses, s.errors);
  std::printf("  tcp bytes in/out       %llu / %llu\n",
              static_cast<unsigned long long>(s.tcp_bytes_in),
              static_cast<unsigned long long>(s.tcp_bytes_out));
  std::printf("  backpressure stalls    %zu\n", s.backpressure_stalls);
  std::printf("  udp groups             %zu (degraded reads %zu, unrecoverable %zu)\n",
              s.udp_groups, s.udp_degraded_reads, s.udp_unrecoverable);
  if (monitor_server) {
    const xorec::obs::MonitorStats ms = monitor_server->stats();
    std::printf("  monitor scrapes        %zu (bad requests %zu)\n", ms.requests,
                ms.bad_requests);
  }
  std::printf("\nper-pool net traffic\n");
  for (const auto& pool : service.stats().pools)
    std::printf("  %-40s net_requests %zu  in %llu  out %llu\n", pool.spec.c_str(),
                pool.net_requests, static_cast<unsigned long long>(pool.net_bytes_in),
                static_cast<unsigned long long>(pool.net_bytes_out));
  return 0;
}
