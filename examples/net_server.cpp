// net_server — stand up the network serving front-end over a CodecService.
//
//   ./net_server                          # ephemeral ports, printed on stdout
//   ./net_server --tcp-port 9901 --udp-port 9902
//   ./net_server --port-file ports.txt    # write "tcp udp\n" for scripts/CI
//   ./net_server --seconds 30             # serve for N seconds, then report
//
// Serves until --seconds elapse (default: forever, SIGINT/SIGTERM to stop),
// then prints the serving report: requests, degraded reads, backpressure
// stalls and the per-pool net counters from ServiceStats.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "api/service.hpp"
#include "example_util.hpp"
#include "net/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (xorec::examples::handle_list_codecs(argc, argv)) return 0;

  xorec::net::ServerOptions opt;
  std::string port_file;
  int seconds = 0;  // 0 = run until signaled
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tcp-port") == 0)
      opt.tcp_port = static_cast<uint16_t>(std::atoi(next("--tcp-port")));
    else if (std::strcmp(argv[i], "--udp-port") == 0)
      opt.udp_port = static_cast<uint16_t>(std::atoi(next("--udp-port")));
    else if (std::strcmp(argv[i], "--host") == 0)
      opt.host = next("--host");
    else if (std::strcmp(argv[i], "--port-file") == 0)
      port_file = next("--port-file");
    else if (std::strcmp(argv[i], "--seconds") == 0)
      seconds = std::atoi(next("--seconds"));
    else {
      std::fprintf(stderr,
                   "usage: net_server [--host H] [--tcp-port P] [--udp-port P]\n"
                   "                  [--port-file PATH] [--seconds N]\n");
      return 2;
    }
  }

  xorec::CodecService service;
  xorec::net::NetServer server(service, opt);
  server.start();
  std::printf("net_server: tcp %s:%u  udp %s:%u\n", opt.host.c_str(),
              server.tcp_port(), opt.host.c_str(), server.udp_port());
  std::fflush(stdout);

  if (!port_file.empty()) {
    // Written after start(): the ports are live by the time the file exists,
    // so a script can poll for the file and connect immediately.
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "net_server: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u %u\n", server.tcp_port(), server.udp_port());
    std::fclose(f);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (!g_stop && (seconds == 0 || std::chrono::steady_clock::now() < deadline))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();

  const xorec::net::NetServerStats s = server.stats();
  std::printf("\nserving report\n");
  std::printf("  connections accepted   %zu\n", s.connections_accepted);
  std::printf("  tcp requests/responses %zu / %zu (errors %zu)\n", s.requests,
              s.responses, s.errors);
  std::printf("  tcp bytes in/out       %llu / %llu\n",
              static_cast<unsigned long long>(s.tcp_bytes_in),
              static_cast<unsigned long long>(s.tcp_bytes_out));
  std::printf("  backpressure stalls    %zu\n", s.backpressure_stalls);
  std::printf("  udp groups             %zu (degraded reads %zu, unrecoverable %zu)\n",
              s.udp_groups, s.udp_degraded_reads, s.udp_unrecoverable);
  std::printf("\nper-pool net traffic\n");
  for (const auto& pool : service.stats().pools)
    std::printf("  %-40s net_requests %zu  in %llu  out %llu\n", pool.spec.c_str(),
                pool.net_requests, static_cast<unsigned long long>(pool.net_bytes_in),
                static_cast<unsigned long long>(pool.net_bytes_out));
  return 0;
}
