// A4 — thread scaling, both parallelism axes:
//  - threads_encode/tN: the blocked executor's §8 intra-stripe direction
//    (strip ranges split across fork-join workers, private scratch), and
//  - batch_encode/tN:   BatchCoder's stripe-level direction (N session
//    workers, 8 independent stripes per flush, codec single-threaded).
// Shape target: batch_encode/tN >= threads_encode/t1 for N >= 2 — whole
// stripes parallelize at least as well as split strips.
#include "bench_common.hpp"

#include <thread>

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4, block = 1024;
  // Larger object so per-thread spans stay meaningful.
  const size_t frag_len = (64u << 20) / n / 64 * 64;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len);

  const size_t hw = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > 2 * hw) break;
    ec::CodecOptions opt = full_options(block);
    opt.exec.threads = threads;
    auto codec = std::make_shared<ec::RsCodec>(n, p, opt);
    register_encode("threads_encode/t" + std::to_string(threads), codec, cluster);
  }

  // Stripe-level scaling: same total bytes per flush across 8 stripes of
  // 10 MB objects, sessions of 1/2/4/8 workers over a 1-thread codec.
  auto batch_codec = std::make_shared<ec::RsCodec>(n, p, full_options(block));
  auto enc_set = make_cluster_set(*batch_codec, 8);
  auto dec_set = make_decode_set(*batch_codec, 8, {2, 4, 5, 6});
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > 2 * hw) break;
    register_encode_batch("batch_encode/t" + std::to_string(threads), batch_codec,
                          enc_set, threads);
    register_decode_batch("batch_decode/t" + std::to_string(threads), batch_codec,
                          dec_set, threads);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
