// A4 — thread scaling of the blocked executor (the §8 parallelism
// direction): RS(10,4) full pipeline, strip ranges split across workers,
// each with private staggered scratch.
#include "bench_common.hpp"

#include <thread>

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4, block = 1024;
  // Larger object so per-thread spans stay meaningful.
  const size_t frag_len = (64u << 20) / n / 64 * 64;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len);

  const size_t hw = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > 2 * hw) break;
    ec::CodecOptions opt = full_options(block);
    opt.exec.threads = threads;
    auto codec = std::make_shared<ec::RsCodec>(n, p, opt);
    register_encode("threads_encode/t" + std::to_string(threads), codec, cluster);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
