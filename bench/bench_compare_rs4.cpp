// E11 — §7.6 four-parity comparison: our fully optimized XOR-SLP codec vs
// the ISA-L-style GF-table baseline vs the unoptimized XOR base, RS(d,4)
// encode and decode for d = 8, 9, 10.
//
// Paper (intel, B=1K, GB/s):            Ours Enc/Dec   ISA-L Enc/Dec
//   RS(8,4)                             8.86 / 6.78     7.18 / 7.04
//   RS(9,4)                             8.83 / 6.71     6.91 / 6.58
//   RS(10,4)                            8.92 / 6.67     6.79 / 4.88
// Shape target: ours beats the table-based baseline on encode and is
// comparable on decode; the naive XOR base trails both.
#include "bench_common.hpp"

using namespace xorec;
using namespace xorec::bench;

namespace {

void register_isal(const std::string& name, std::shared_ptr<baseline::IsalStyleCodec> codec,
                   std::shared_ptr<RsCluster> cluster) {
  benchmark::RegisterBenchmark(name.c_str(), [codec, cluster](benchmark::State& state) {
    for (auto _ : state) {
      codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(),
                    cluster->frag_len);
      benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(cluster->n * cluster->frag_len));
  });
}

void register_isal_decode(const std::string& name,
                          std::shared_ptr<baseline::IsalStyleCodec> codec,
                          std::shared_ptr<RsCluster> cluster, std::vector<uint32_t> erased) {
  codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(), cluster->frag_len);
  auto available = std::make_shared<std::vector<uint32_t>>();
  auto avail_ptrs = std::make_shared<std::vector<const uint8_t*>>();
  for (uint32_t id = 0; id < cluster->n + cluster->p; ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available->push_back(id);
      avail_ptrs->push_back(cluster->frags[id].data());
    }
  auto out = std::make_shared<std::vector<std::vector<uint8_t>>>(
      erased.size(), std::vector<uint8_t>(cluster->frag_len));
  auto out_ptrs = std::make_shared<std::vector<uint8_t*>>();
  for (auto& o : *out) out_ptrs->push_back(o.data());
  auto er = std::make_shared<std::vector<uint32_t>>(std::move(erased));
  benchmark::RegisterBenchmark(
      name.c_str(), [codec, cluster, available, avail_ptrs, er, out, out_ptrs](
                        benchmark::State& state) {
        for (auto _ : state) {
          codec->reconstruct(*available, avail_ptrs->data(), *er, out_ptrs->data(),
                             cluster->frag_len);
          benchmark::ClobberMemory();
        }
        state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                static_cast<int64_t>(cluster->n * cluster->frag_len));
      });
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t block = 1024;
  const std::vector<uint32_t> erased{2, 4, 5, 6};

  for (size_t d : {8, 9, 10}) {
    const std::string tag = "rs" + std::to_string(d) + "_4";
    auto cluster = std::make_shared<RsCluster>(d, 4, frag_len_for(d));

    auto ours = std::make_shared<ec::RsCodec>(d, 4, full_options(block));
    register_encode("ours_encode/" + tag, ours, cluster);
    register_decode("ours_decode/" + tag, ours, cluster, erased);

    auto isal = std::make_shared<baseline::IsalStyleCodec>(d, 4);
    register_isal("isal_style_encode/" + tag, isal, cluster);
    register_isal_decode("isal_style_decode/" + tag, isal, cluster, erased);

    auto naive = std::make_shared<ec::RsCodec>(d, 4, base_options(block));
    register_encode("naive_xor_encode/" + tag, naive, cluster);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
