// E11 — §7.6 four-parity comparison: our fully optimized XOR-SLP codec vs
// the ISA-L-style GF-table baseline vs the unoptimized XOR base, RS(d,4)
// encode and decode for d = 8, 9, 10. All three engines are selected from
// the codec registry by spec string and run through the same generic
// harness.
//
// Paper (intel, B=1K, GB/s):            Ours Enc/Dec   ISA-L Enc/Dec
//   RS(8,4)                             8.86 / 6.78     7.18 / 7.04
//   RS(9,4)                             8.83 / 6.71     6.91 / 6.58
//   RS(10,4)                            8.92 / 6.67     6.79 / 4.88
// Shape target: ours beats the table-based baseline on encode and is
// comparable on decode; the naive XOR base trails both.
#include "bench_common.hpp"

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const std::string tuning = "@block=1024";
  const std::vector<uint32_t> erased{2, 4, 5, 6};

  for (size_t d : {8, 9, 10}) {
    const std::string dims = "(" + std::to_string(d) + ",4)";
    const std::string tag = "rs" + std::to_string(d) + "_4";
    // One cluster per engine (same seed, same data): the engines' parity
    // layouts differ, so sharing buffers would leave a decode bench running
    // against the other engine's parity bytes.
    const auto fresh_cluster = [&] {
      return std::make_shared<Cluster>(d, 4, frag_len_for(d));
    };

    auto ours = codec_for("rs" + dims + tuning + ",passes=full");
    register_encode("ours_encode/" + tag, ours, fresh_cluster());
    register_decode("ours_decode/" + tag, ours, fresh_cluster(), erased);
    // The plan path: pattern solved once at registration, the loop is pure
    // execute — what a degraded-read-heavy deployment amortizes to.
    register_decode_plan("ours_decode_plan/" + tag, ours, fresh_cluster(), erased);

    auto isal = codec_for("isal" + dims);
    register_encode("isal_style_encode/" + tag, isal, fresh_cluster());
    register_decode("isal_style_decode/" + tag, isal, fresh_cluster(), erased);

    auto naive = codec_for("naive_xor" + dims + tuning);
    register_encode("naive_xor_encode/" + tag, naive, fresh_cluster());
  }

  // The batch path at the paper's flagship geometry: 8 stripes per flush,
  // single-call (batch=1) vs stripe-parallel sessions.
  {
    auto ours = codec_for("rs(10,4)" + tuning + ",passes=full");
    auto enc_set = make_cluster_set(*ours, 8);
    auto dec_set = make_decode_set(*ours, 8, erased);
    for (size_t t : {1u, 4u}) {
      const std::string suffix = "/rs10_4/t" + std::to_string(t);
      register_encode_batch("ours_encode_batch" + suffix, ours, enc_set, t);
      register_decode_batch("ours_decode_batch" + suffix, ours, dec_set, t);
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
