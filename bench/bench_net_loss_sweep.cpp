// Streaming EC over a real loopback wire, swept across loss rates: stripes
// travel as one-UDP-packet-per-strip groups through a seeded deterministic
// loss policy, and every lost strip is recovered by a DEGRADED READ —
// plan_reconstruct on the surviving strips — never by a retransmission.
// That is the claim this bench quantifies across codec families:
//
//   loss {0, 5, 10, 20, 30}%  x  {rs(6,4), lrc(6,2,2), piggyback(6,4,2)}
//
// all three families are 10 strips wide, and the loss policy draws from one
// (seed, packet-index) stream, so the SAME packets drop for every family —
// delivery differences are purely code-tolerance differences. Every
// delivered group is byte-compared against the sent payload; the binary
// exits 1 if, at 10% loss, any family fails to deliver every group with
// zero retransmissions and byte-identical data.
//
// For scale, each cell also models classic selective-repeat ARQ under the
// identical loss process (a data-only strip is re-sent until one attempt
// survives): `sr_retransmissions` against EC's structural zero, the
// latency-free-vs-feedback-loop tradeoff in one record pair.
//
// After the timed runs the sweep writes BENCH_net_loss_sweep.json (override
// with XOREC_NET_JSON) in the shared bench record schema; fixed seeds end to
// end, so reruns are byte-identical.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "bench_json.hpp"
#include "net/datagram.hpp"

using namespace xorec;
using namespace xorec::net;

namespace {

// Seed 13 is the verified acceptance seed: at 10% loss no group of the 40
// drops more than 2 of its 10 strips, so every family's tolerance covers
// every loss pattern — delivery at 10% is complete by construction, not by
// luck. Higher rates are allowed to exceed tolerance; those cells report
// honest unrecoverable counts (the code's operating envelope is the data).
constexpr uint64_t kSeed = 13;
constexpr size_t kFragLen = 4096;
constexpr int kStripes = 40;

const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs{"rs(6,4)", "lrc(6,2,2)",
                                              "piggyback(6,4,2)"};
  return specs;
}

CodecService& shared_service() {
  static CodecService service({.shards = 2, .workers_per_shard = 1});
  return service;
}

/// Deterministic stripe payload for byte verification on the receive side.
std::vector<std::vector<uint8_t>> make_data(uint32_t k) {
  std::vector<std::vector<uint8_t>> data(k, std::vector<uint8_t>(kFragLen));
  uint64_t x = kSeed;
  for (auto& frag : data)
    for (auto& b : frag) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<uint8_t>(x);
    }
  return data;
}

struct CellResult {
  int groups_sent = 0;
  int groups_delivered = 0;
  int groups_unrecoverable = 0;
  int degraded_reads = 0;
  size_t strips_reconstructed = 0;
  size_t packets_sent = 0;
  size_t packets_dropped = 0;
  size_t retransmissions = 0;
  uint64_t bytes_sent = 0;
  bool byte_identical = true;
  size_t sr_retransmissions = 0;  // modeled ARQ baseline, same loss stream
};

/// One sweep cell: `stripes` groups of `spec` through loopback UDP under
/// `loss`, every delivered group byte-verified in place.
CellResult run_cell(const std::string& spec, double loss, int stripes) {
  const ServiceHandle handle = shared_service().acquire(spec);
  const uint32_t k = static_cast<uint32_t>(handle.codec().data_fragments());
  const auto data = make_data(k);
  std::vector<const uint8_t*> data_ptrs(k);
  for (uint32_t i = 0; i < k; ++i) data_ptrs[i] = data[i].data();

  const int rx = open_udp_socket("127.0.0.1", 0);
  const int tx = open_udp_socket("127.0.0.1", 0);
  DatagramSender sender(tx, udp_address("127.0.0.1", local_udp_port(rx)), handle,
                        LossPolicy{loss, kSeed});
  DatagramReceiver receiver(rx, shared_service());

  CellResult cell;
  for (int s = 0; s < stripes; ++s) {
    sender.send_stripe(data_ptrs.data(), kFragLen);
    ++cell.groups_sent;
    const auto result = receiver.receive_group(2000);
    if (!result) continue;  // marker lost cannot happen; arena timeout = bug
    if (!result->recovery.complete) {
      ++cell.groups_unrecoverable;
      continue;
    }
    ++cell.groups_delivered;
    if (result->recovery.degraded) ++cell.degraded_reads;
    cell.strips_reconstructed += result->recovery.reconstructed;
    for (uint32_t i = 0; i < k; ++i)
      if (std::memcmp(result->group.slot(i), data[i].data(), kFragLen) != 0)
        cell.byte_identical = false;
  }

  const SenderStats& st = sender.stats();
  cell.packets_sent = st.packets_sent;
  cell.packets_dropped = st.packets_dropped;
  cell.retransmissions = st.retransmissions;
  cell.bytes_sent = st.bytes_sent;

  // The ARQ baseline, modeled on the identical i.i.d. loss process: each of
  // the k data strips is attempted until one copy survives; every extra
  // attempt is a retransmission (and a full feedback round-trip EC never
  // pays). No parity overhead, but the tail grows with the loss rate.
  const LossPolicy sr_loss{loss, kSeed};
  uint64_t index = 0;
  for (int s = 0; s < stripes; ++s)
    for (uint32_t i = 0; i < k; ++i)
      while (sr_loss.drop(index++)) ++cell.sr_retransmissions;

  close_socket(tx);
  close_socket(rx);
  return cell;
}

void bench_net_family(benchmark::State& state, const std::string& spec) {
  // Timed body: one stripe sent + received (and recovered when strips drop)
  // per iteration at the acceptance loss rate — stripes/s through the whole
  // encode -> packetize -> lose -> reassemble -> degraded-read path.
  const ServiceHandle handle = shared_service().acquire(spec);
  const uint32_t k = static_cast<uint32_t>(handle.codec().data_fragments());
  const auto data = make_data(k);
  std::vector<const uint8_t*> data_ptrs(k);
  for (uint32_t i = 0; i < k; ++i) data_ptrs[i] = data[i].data();

  const int rx = open_udp_socket("127.0.0.1", 0);
  const int tx = open_udp_socket("127.0.0.1", 0);
  DatagramSender sender(tx, udp_address("127.0.0.1", local_udp_port(rx)), handle,
                        LossPolicy{0.10, kSeed});
  DatagramReceiver receiver(rx, shared_service());

  size_t delivered = 0;
  for (auto _ : state) {
    sender.send_stripe(data_ptrs.data(), kFragLen);
    const auto result = receiver.receive_group(2000);
    if (result && result->recovery.complete) ++delivered;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
  state.SetBytesProcessed(static_cast<int64_t>(delivered) * k * kFragLen);
  state.counters["degraded_reads"] =
      static_cast<double>(receiver.stats().degraded_reads);
  close_socket(tx);
  close_socket(rx);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const std::string& spec : family_specs())
    benchmark::RegisterBenchmark(("net_loss_sweep/" + spec + "/loss=10%").c_str(),
                                 [spec](benchmark::State& state) {
                                   bench_net_family(state, spec);
                                 })
        ->Unit(benchmark::kMicrosecond);
  benchmark::RunSpecifiedBenchmarks();

  // The artifact + the acceptance gate.
  const std::vector<double> losses{0.0, 0.05, 0.10, 0.20, 0.30};
  std::vector<bench::BenchRecord> records;
  bool gate_ok = true;
  std::string gate_why;

  for (const std::string& spec : family_specs()) {
    for (double loss : losses) {
      const CellResult cell = run_cell(spec, loss, kStripes);
      char cfg[64];
      std::snprintf(cfg, sizeof cfg, "%s/loss=%.0f%%", spec.c_str(), loss * 100.0);
      const auto rec = [&](const char* metric, double value) {
        records.push_back({"net_loss_sweep", cfg, metric, value});
      };
      rec("groups_sent", cell.groups_sent);
      rec("groups_delivered", cell.groups_delivered);
      rec("groups_unrecoverable", cell.groups_unrecoverable);
      rec("degraded_reads", cell.degraded_reads);
      rec("strips_reconstructed", static_cast<double>(cell.strips_reconstructed));
      rec("packets_sent", static_cast<double>(cell.packets_sent));
      rec("packets_dropped", static_cast<double>(cell.packets_dropped));
      rec("retransmissions", static_cast<double>(cell.retransmissions));
      rec("bytes_sent", static_cast<double>(cell.bytes_sent));
      rec("byte_identical", cell.byte_identical ? 1 : 0);
      rec("sr_retransmissions_modeled", static_cast<double>(cell.sr_retransmissions));

      // EC mode never retransmits, at ANY loss rate — structural, not lucky.
      if (cell.retransmissions != 0) {
        gate_ok = false;
        gate_why = std::string(cfg) + " retransmitted";
      }
      if (!cell.byte_identical) {
        gate_ok = false;
        gate_why = std::string(cfg) + " delivered corrupt data";
      }
      // The headline acceptance: at 10% injected loss every family delivers
      // every group purely via degraded reads.
      if (loss == 0.10 &&
          (cell.groups_delivered != cell.groups_sent || cell.degraded_reads == 0)) {
        gate_ok = false;
        gate_why = std::string(cfg) + " did not deliver every group degraded-only";
      }
      std::printf("%-28s delivered %2d/%2d  degraded %2d  dropped %3zu  retx %zu  "
                  "(sr would retx %zu)\n",
                  cfg, cell.groups_delivered, cell.groups_sent, cell.degraded_reads,
                  cell.packets_dropped, cell.retransmissions, cell.sr_retransmissions);
    }
  }

  const char* env = std::getenv("XOREC_NET_JSON");
  const std::string path = env && *env ? env : "BENCH_net_loss_sweep.json";
  {
    std::ofstream out(path);
    bench::write_bench_json(out, "net_loss_sweep",
                            {{"families", "rs(6,4) lrc(6,2,2) piggyback(6,4,2)"},
                             {"losses", "0% 5% 10% 20% 30%"},
                             {"stripes_per_cell", std::to_string(kStripes)},
                             {"frag_len", std::to_string(kFragLen)},
                             {"seed", std::to_string(kSeed)}},
                            records);
  }
  std::printf("wrote %s [%s]\n", path.c_str(),
              gate_ok ? "EC degraded reads hold" : gate_why.c_str());

  benchmark::Shutdown();
  return gate_ok ? 0 : 1;
}
