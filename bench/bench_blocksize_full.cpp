// E7 — §7.4 case 2: fully optimized P_Full_enc (XorRePair + fusion +
// scheduling) across block sizes, greedy vs DFS schedulers (RS(10,4), AVX2).
//
// Paper's intel rows (GB/s):
//   greedy: 2.29 4.00 6.02 7.61 8.68 8.37 7.24
//   dfs:    2.32 3.97 6.09 7.37 8.92 8.55 7.64
// with NVar ~ 90 and CCap ~ 170 at every block size.
// Shape target: peak near 1K-2K, both schedulers within a few percent.
//
// Each (scheduler, block) point runs twice: plain and with prefetch=1 (§8's
// software-prefetch direction — next block's input lines pulled while the
// current block computes), so the experiment is driveable from a spec
// string and the on/off delta is a single table away.
#include "bench_common.hpp"

#include <cstdio>

#include "slp/metrics.hpp"

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len_for(n));

  for (auto sched : {slp::ScheduleKind::Greedy, slp::ScheduleKind::Dfs}) {
    const char* sched_name = sched == slp::ScheduleKind::Greedy ? "greedy" : "dfs";
    bool printed = false;
    for (size_t block : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
      for (bool prefetch : {false, true}) {
        ec::CodecOptions opt = full_options(block, sched);
        opt.exec.prefetch_next_block = prefetch;  // the spec string's prefetch=1
        auto codec = std::make_shared<ec::RsCodec>(n, p, opt);
        if (!printed) {
          const auto m = slp::measure(codec->encode_pipeline()->final_program(),
                                      slp::ExecForm::Fused);
          std::printf("P_Full_enc (%s) static measures: NVar=%zu CCap=%zu "
                      "(paper: NVar~90 CCap~170)\n",
                      sched_name, m.nvar, m.ccap);
          printed = true;
        }
        register_encode(std::string("full_encode/") + sched_name + "/B" +
                            std::to_string(block) + (prefetch ? "/prefetch" : "/plain"),
                        codec, cluster);
      }
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
