// E3 / E4 / E5 — §7.3: average reduction ratios over the 1002 coding SLPs of
// RS(10,4) (1 encode + 1001 four-row-removal decode programs).
//
// Deterministic static analysis (no timing). Paper targets:
//   #⊕ ratio:   RePair 42.1%, XorRePair 40.8%, non-SLP heuristics [103] ~65%
//   #M ratio:   Co/P 40.8%, Fu/P 35.1%, Fu(Co)/Co 59.2%, Fu(Co)/P 24.1%
//   NVar ratio: Co/P 1552%, Fu/P 100%, Fu(Co)/Co 38.9%, Dfs(Fu(Co))/Co 24.5%
//   CCap ratio: Co/P 498%,  Fu/P 98.7%, Fu(Co)/Co 51.2%, Dfs(Fu(Co))/Co 40.0%
//
// Decode SLPs recover only the lost data strips (the §7.5 P_dec convention);
// the one removal pattern that erases all four parities has nothing to
// decode and is skipped.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/zhou_tian.hpp"
#include "bitmatrix/bitmatrix.hpp"
#include "gf/gfmat.hpp"
#include "slp/cache_model.hpp"
#include "slp/fusion.hpp"
#include "slp/metrics.hpp"
#include "slp/repair.hpp"
#include "slp/schedule_dfs.hpp"

using namespace xorec;

namespace {

struct Accum {
  double repair_xor = 0, xorrepair_xor = 0, zhou_xor = 0;
  double m_co = 0, m_fu = 0, m_fuco_over_co = 0, m_fuco = 0;
  double nv_co = 0, nv_fu = 0, nv_fuco_over_co = 0, nv_dfs_over_co = 0;
  double cc_co = 0, cc_fu = 0, cc_fuco_over_co = 0, cc_dfs_over_co = 0;
  size_t count = 0;

  void add(const Accum& o) {
    repair_xor += o.repair_xor;
    xorrepair_xor += o.xorrepair_xor;
    zhou_xor += o.zhou_xor;
    m_co += o.m_co;
    m_fu += o.m_fu;
    m_fuco_over_co += o.m_fuco_over_co;
    m_fuco += o.m_fuco;
    nv_co += o.nv_co;
    nv_fu += o.nv_fu;
    nv_fuco_over_co += o.nv_fuco_over_co;
    nv_dfs_over_co += o.nv_dfs_over_co;
    cc_co += o.cc_co;
    cc_fu += o.cc_fu;
    cc_fuco_over_co += o.cc_fuco_over_co;
    cc_dfs_over_co += o.cc_dfs_over_co;
    count += o.count;
  }
};

void analyze(const bitmatrix::BitMatrix& m, Accum& a) {
  using namespace xorec::slp;
  const Program base = from_bitmatrix(m);
  const Program repair = repair_compress(base);
  const Program co = xor_repair_compress(base);
  const Program fu_direct = fuse(base);
  const Program fuco = fuse(co);
  const Program dfs = schedule_dfs(fuco);
  const Program zhou = baseline::incremental_schedule(m);

  const auto bm = measure(base, ExecForm::Binary);
  const auto com = measure(co, ExecForm::Binary);
  const auto fum = measure(fu_direct, ExecForm::Fused);
  const auto fucom = measure(fuco, ExecForm::Fused);
  const auto dfsm = measure(dfs, ExecForm::Fused);

  const auto r = [](size_t num, size_t den) {
    return static_cast<double>(num) / static_cast<double>(den);
  };

  a.repair_xor += r(xor_ops(repair), bm.xor_ops);
  a.xorrepair_xor += r(com.xor_ops, bm.xor_ops);
  a.zhou_xor += r(xor_ops(zhou), bm.xor_ops);

  a.m_co += r(com.mem_accesses, bm.mem_accesses);
  a.m_fu += r(fum.mem_accesses, bm.mem_accesses);
  a.m_fuco_over_co += r(fucom.mem_accesses, com.mem_accesses);
  a.m_fuco += r(fucom.mem_accesses, bm.mem_accesses);

  a.nv_co += r(com.nvar, bm.nvar);
  a.nv_fu += r(fum.nvar, bm.nvar);
  a.nv_fuco_over_co += r(fucom.nvar, com.nvar);
  a.nv_dfs_over_co += r(dfsm.nvar, com.nvar);

  a.cc_co += r(com.ccap, bm.ccap);
  a.cc_fu += r(fum.ccap, bm.ccap);
  a.cc_fuco_over_co += r(fucom.ccap, com.ccap);
  a.cc_dfs_over_co += r(dfsm.ccap, com.ccap);

  ++a.count;
}

}  // namespace

int main() {
  const size_t n = 10, p = 4;
  const gf::Matrix code = gf::rs_isal_matrix(n, p);

  // All four-row removal patterns; decode SLP recovers the lost data rows.
  std::vector<std::vector<size_t>> jobs;  // each: lost rows
  for (size_t a = 0; a < 14; ++a)
    for (size_t b = a + 1; b < 14; ++b)
      for (size_t c = b + 1; c < 14; ++c)
        for (size_t d = c + 1; d < 14; ++d) jobs.push_back({a, b, c, d});
  std::printf("analyzing %zu decode SLPs + 1 encode SLP of RS(10,4)...\n", jobs.size());

  Accum total;
  {
    // The encode SLP.
    std::vector<size_t> bottom{10, 11, 12, 13};
    analyze(bitmatrix::expand(code.select_rows(bottom)), total);
  }

  const size_t n_threads = std::min<size_t>(std::thread::hardware_concurrency(), 16);
  std::vector<Accum> per_thread(n_threads);
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < n_threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= jobs.size()) return;
        const auto& lost = jobs[i];
        std::vector<size_t> lost_data;
        for (size_t r : lost)
          if (r < n) lost_data.push_back(r);
        if (lost_data.empty()) continue;  // only parities lost: nothing to decode
        std::vector<size_t> survivors;
        for (size_t r = 0; r < n + p; ++r)
          if (std::find(lost.begin(), lost.end(), r) == lost.end()) survivors.push_back(r);
        const auto minv = gf::decode_matrix(code, survivors);
        if (!minv) continue;  // cannot happen for this grid (MDS-verified)
        analyze(bitmatrix::expand(minv->select_rows(lost_data)), per_thread[t]);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& a : per_thread) total.add(a);

  const double k = static_cast<double>(total.count);
  std::printf("\naveraged over %zu SLPs\n", total.count);
  std::printf("\n-- #xor reduction ratio (smaller is better) --\n");
  std::printf("  RePair     : %5.1f%%   (paper 42.1%%)\n", 100 * total.repair_xor / k);
  std::printf("  XorRePair  : %5.1f%%   (paper 40.8%%)\n", 100 * total.xorrepair_xor / k);
  std::printf("  ZhouTian-ish (non-SLP incremental): %5.1f%%   (paper reports ~65%% "
              "for [103])\n",
              100 * total.zhou_xor / k);
  std::printf("\n-- #M ratios --\n");
  std::printf("  Co(P)/P        : %5.1f%%   (paper 40.8%%)\n", 100 * total.m_co / k);
  std::printf("  Fu(P)/P        : %5.1f%%   (paper 35.1%%)\n", 100 * total.m_fu / k);
  std::printf("  Fu(Co(P))/Co(P): %5.1f%%   (paper 59.2%%)\n",
              100 * total.m_fuco_over_co / k);
  std::printf("  Fu(Co(P))/P    : %5.1f%%   (paper 24.1%%)\n", 100 * total.m_fuco / k);
  std::printf("\n-- NVar ratios --\n");
  std::printf("  Co(P)/P            : %6.1f%%  (paper 1552%%)\n", 100 * total.nv_co / k);
  std::printf("  Fu(P)/P            : %6.1f%%  (paper 100%%)\n", 100 * total.nv_fu / k);
  std::printf("  Fu(Co(P))/Co(P)    : %6.1f%%  (paper 38.9%%)\n",
              100 * total.nv_fuco_over_co / k);
  std::printf("  Dfs(Fu(Co))/Co(P)  : %6.1f%%  (paper 24.5%%)\n",
              100 * total.nv_dfs_over_co / k);
  std::printf("\n-- CCap ratios --\n");
  std::printf("  Co(P)/P            : %6.1f%%  (paper 498%%)\n", 100 * total.cc_co / k);
  std::printf("  Fu(P)/P            : %6.1f%%  (paper 98.7%%)\n", 100 * total.cc_fu / k);
  std::printf("  Fu(Co(P))/Co(P)    : %6.1f%%  (paper 51.2%%)\n",
              100 * total.cc_fuco_over_co / k);
  std::printf("  Dfs(Fu(Co))/Co(P)  : %6.1f%%  (paper 40.0%%)\n",
              100 * total.cc_dfs_over_co / k);
  return 0;
}
