// The plan-compilation service under the microscope: cold compile vs warm
// lookup latency for RS(10,4) decode programs (the acceptance bar: warm
// lookup >= 10x faster than cold compile), and shared-vs-private cache
// behaviour under concurrent planners.
//
// Printed before the timed benchmarks: a direct cold/warm measurement with
// the ratio, plus the process-shared cache counters at exit.
//
// Warmup persistence experiment: with XOREC_PLAN_PROFILE=<path> in the
// environment this binary becomes a two-run experiment. Run 1 finds no
// profile, plans all 45 two-erasure RS(10,4) patterns cold, and saves the
// plan-cache key set at exit; run 2 replays the profile through
// CodecService::warmup first and serves the same sweep at ~100% plan-cache
// hits — the printed per-pattern latency and hit rate quantify the warmup
// benefit (CI uploads both runs' JSON side by side).
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ec/plan_cache.hpp"

using namespace xorec;
using namespace xorec::bench;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<uint32_t> all_but(const Codec& codec, const std::vector<uint32_t>& erased) {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end())
      available.push_back(id);
  return available;
}

/// A pool of distinct erasure patterns (data-only) for RS(10,4).
std::vector<std::vector<uint32_t>> pattern_pool() {
  std::vector<std::vector<uint32_t>> pool;
  for (uint32_t a = 0; a < 10; ++a)
    for (uint32_t b = a + 1; b < 10; ++b) pool.push_back({a, b});
  return pool;  // 45 distinct two-erasure patterns
}

/// Codec with an injected private cache we can clear for cold timings.
struct ColdFixture {
  std::shared_ptr<ec::PlanCache> cache;
  ec::RsCodec codec;
  ColdFixture()
      : cache(std::make_shared<ec::PlanCache>(0, 1)), codec(10, 4, [&] {
          ec::CodecOptions o;
          o.plan_cache = cache;
          return o;
        }()) {}
};

void print_cold_warm_summary() {
  ColdFixture fix;
  const std::vector<uint32_t> erased{2, 4, 5, 6};
  const auto available = all_but(fix.codec, erased);

  fix.cache->clear();
  const auto t0 = Clock::now();
  (void)fix.codec.plan_reconstruct(available, erased);
  const double cold_us = std::chrono::duration<double, std::micro>(Clock::now() - t0).count();

  constexpr int kWarm = 1000;
  const auto t1 = Clock::now();
  for (int i = 0; i < kWarm; ++i) (void)fix.codec.plan_reconstruct(available, erased);
  const double warm_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t1).count() / kWarm;

  std::printf("plan_cache cold-vs-warm, rs(10,4) erased {2,4,5,6}:\n");
  std::printf("  cold compile: %10.1f us   (solve + RePair + fuse + schedule + executor)\n",
              cold_us);
  std::printf("  warm lookup:  %10.3f us   (shared-cache hit + plan assembly)\n", warm_us);
  std::printf("  speedup:      %10.1fx %s\n", cold_us / warm_us,
              cold_us / warm_us >= 10.0 ? "(>= 10x: PASS)" : "(< 10x!)");
}

/// The XOREC_PLAN_PROFILE experiment (see file header).
void run_warmup_experiment(const char* path) {
  CodecService service;
  const bool have_profile = std::ifstream(path).good();
  if (have_profile) {
    const auto t0 = Clock::now();
    const auto rep = service.warmup(path);
    std::printf("warmup(%s): %zu patterns replayed (%zu compiled, %zu already "
                "cached) in %.1f ms\n",
                path, rep.patterns, rep.compiled, rep.already_cached,
                std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  } else {
    std::printf("warmup profile %s not found — this is the COLD run (profile "
                "saved at exit)\n",
                path);
  }

  const ServiceHandle lease = service.acquire("rs(10,4)");
  const auto pool = pattern_pool();
  const auto t0 = Clock::now();
  for (const auto& erased : pool)
    (void)lease.plan_reconstruct(all_but(lease.codec(), erased), erased);
  const double us_per_pattern =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
      static_cast<double>(pool.size());

  const ServiceStats stats = service.stats();
  std::printf("planned %zu patterns at %.1f us/pattern — serving-window hit rate "
              "%.0f%% (%zu hits, %zu misses)%s\n",
              pool.size(), us_per_pattern, stats.warm_hit_rate() * 100,
              stats.warm_hits, stats.warm_misses,
              have_profile ? " [warmed]" : " [cold]");
  const size_t saved = service.save_profile(path);
  std::printf("saved %zu plan patterns to %s\n", saved, path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  if (const char* profile = std::getenv("XOREC_PLAN_PROFILE")) run_warmup_experiment(profile);

  print_cold_warm_summary();

  // Cold: every iteration clears the injected cache, so plan_reconstruct
  // re-runs the full compile.
  {
    auto fix = std::make_shared<ColdFixture>();
    const std::vector<uint32_t> erased{2, 4, 5, 6};
    const auto available = all_but(fix->codec, erased);
    benchmark::RegisterBenchmark("plan/cold_compile", [fix, available,
                                                       erased](benchmark::State& state) {
      for (auto _ : state) {
        fix->cache->clear();
        benchmark::DoNotOptimize(fix->codec.plan_reconstruct(available, erased));
      }
    });
    auto warm = std::make_shared<ColdFixture>();
    benchmark::RegisterBenchmark("plan/warm_lookup", [warm, available,
                                                      erased](benchmark::State& state) {
      (void)warm->codec.plan_reconstruct(available, erased);  // prime
      for (auto _ : state)
        benchmark::DoNotOptimize(warm->codec.plan_reconstruct(available, erased));
    });
  }

  // Shared vs private under threads: every benchmark thread cycles through
  // the 45 two-erasure patterns. With cache=shared all threads feed one
  // PlanCache (compile once per pattern, process-wide); with cache=private
  // each codec instance would recompile — we model a sharded service by
  // giving every thread its own private-cache codec instance.
  {
    auto shared_codec = codec_for("rs(10,4)");  // cache=shared default
    const auto pool = std::make_shared<std::vector<std::vector<uint32_t>>>(pattern_pool());
    for (int threads : {1, 4}) {
      benchmark::RegisterBenchmark(
          "plan/shared_cache_lookup",
          [shared_codec, pool](benchmark::State& state) {
            size_t i = static_cast<size_t>(state.thread_index());
            for (auto _ : state) {
              const auto& erased = (*pool)[i++ % pool->size()];
              benchmark::DoNotOptimize(
                  shared_codec->plan_reconstruct(all_but(*shared_codec, erased), erased));
            }
          })
          ->Threads(threads)
          ->UseRealTime();
      benchmark::RegisterBenchmark(
          "plan/private_cache_lookup",
          [pool](benchmark::State& state) {
            // One private-cache codec per thread: the sharded-service shape
            // the shared PlanCache replaces.
            ec::RsCodec codec(10, 4, [] {
              ec::CodecOptions o;
              o.shared_cache = false;
              return o;
            }());
            size_t i = static_cast<size_t>(state.thread_index());
            for (auto _ : state) {
              const auto& erased = (*pool)[i++ % pool->size()];
              benchmark::DoNotOptimize(
                  codec.plan_reconstruct(all_but(codec, erased), erased));
            }
          })
          ->Threads(threads)
          ->UseRealTime();
    }
  }

  benchmark::RunSpecifiedBenchmarks();

  const CacheStats s = plan_cache_stats();
  std::printf("plan caches (all live instances): %zu entries, %zu hits, %zu misses, "
              "%zu evictions, %.2f ms compiling\n",
              s.entries, s.hits, s.misses, s.evictions, s.compile_ns / 1e6);
  benchmark::Shutdown();
  return 0;
}
