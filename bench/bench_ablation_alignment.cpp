// A1 — ablation of §7.4's anti-conflict allocation: the staggered scratch
// layout (A(buf_i) ≡ i·B mod 4K) versus plain 4K-aligned scratch buffers
// (the adversarial layout where every block maps to the same cache sets).
#include "bench_common.hpp"

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len_for(n));

  for (size_t block : {512u, 1024u, 2048u, 4096u}) {
    for (bool stagger : {true, false}) {
      ec::CodecOptions opt = full_options(block);
      opt.exec.stagger_scratch = stagger;
      auto codec = std::make_shared<ec::RsCodec>(n, p, opt);
      register_encode(std::string("alignment_encode/") +
                          (stagger ? "stagger" : "aligned4k") + "/B" +
                          std::to_string(block),
                      codec, cluster);
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
