// E12 — §7.6 low-parity comparison: RS(d,3) and RS(d,2) (ours vs ISA-L
// style), plus the specialized array codes the paper's table cites — STAR
// (3 parities), EVENODD and RDP (2 parities) — all selected from the codec
// registry by spec string and run through the same SLP pipeline.
//
// Paper (intel, B=1K, GB/s, ours enc/dec):
//   RS(8,3) 12.32/8.82   RS(9,3) 11.97/8.27   RS(10,3) 11.78/8.89
//   RS(8,2) 18.79/14.59  RS(9,2) 18.93/14.27  RS(10,2) 18.98/14.66
// Shape target: ours above the table baseline; fewer parities -> higher
// throughput; generic RS competitive with the specialized codes.
#include "bench_common.hpp"

using namespace xorec;
using namespace xorec::bench;

namespace {

/// Codec by spec; cluster sized from its geometry; encode + decode benches.
void register_spec(const std::string& spec, const std::string& tag,
                   std::vector<uint32_t> erased, uint32_t seed) {
  auto codec = codec_for(spec);
  auto cluster = std::make_shared<Cluster>(*codec, seed);
  const std::string geo =
      "/k" + std::to_string(cluster->n) + "_p" + std::to_string(cluster->p);
  register_encode(tag + "_encode" + geo, codec, cluster);
  register_decode(tag + "_decode" + geo, codec, cluster, erased);
  // Same pattern through a pre-solved plan (zero re-solving per call).
  register_decode_plan(tag + "_decode_plan" + geo, codec,
                       std::make_shared<Cluster>(*codec, seed + 1), std::move(erased));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const std::string tuning = "@block=1024,passes=full";

  for (size_t p : {3, 2}) {
    for (size_t d : {8, 9, 10}) {
      std::vector<uint32_t> erased{2, 4, 5, 6};
      erased.resize(p);
      register_spec(
          "rs(" + std::to_string(d) + "," + std::to_string(p) + ")" + tuning,
          "ours_rs" + std::to_string(d) + "_" + std::to_string(p), erased,
          static_cast<uint32_t>(d * 10 + p));
    }
  }

  // Specialized array codes through the same pipeline (native prime layouts).
  register_spec("evenodd(11)" + tuning, "evenodd11", {2, 4}, 3);
  register_spec("rdp(10)" + tuning, "rdp11", {2, 4}, 4);
  register_spec("star(11)" + tuning, "star11", {2, 4, 5}, 5);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
