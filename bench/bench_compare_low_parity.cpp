// E12 — §7.6 low-parity comparison: RS(d,3) and RS(d,2) (ours vs ISA-L
// style), plus the specialized array codes the paper's table cites — STAR
// (3 parities), EVENODD and RDP (2 parities) — all running through the same
// SLP pipeline via the generic XorCodec.
//
// Paper (intel, B=1K, GB/s, ours enc/dec):
//   RS(8,3) 12.32/8.82   RS(9,3) 11.97/8.27   RS(10,3) 11.78/8.89
//   RS(8,2) 18.79/14.59  RS(9,2) 18.93/14.27  RS(10,2) 18.98/14.66
// Shape target: ours above the table baseline; fewer parities -> higher
// throughput; generic RS competitive with the specialized codes.
#include "bench_common.hpp"

#include "altcodes/evenodd.hpp"
#include "altcodes/rdp.hpp"
#include "altcodes/star.hpp"

using namespace xorec;
using namespace xorec::bench;

namespace {

/// Array-code cluster (w strips per block instead of 8).
struct ArrayCluster {
  size_t k, m, frag_len;
  std::vector<std::vector<uint8_t>> frags;
  std::vector<const uint8_t*> data_ptrs;
  std::vector<uint8_t*> parity_ptrs;

  ArrayCluster(const altcodes::XorCodec& codec, uint32_t seed)
      : k(codec.data_blocks()), m(codec.parity_blocks()) {
    const size_t w = codec.fragment_multiple();
    const size_t raw = kDataBytes / k;
    frag_len = raw - raw % (w * 64);
    std::mt19937_64 rng(seed);
    frags.assign(k + m, std::vector<uint8_t>(frag_len));
    for (size_t i = 0; i < k; ++i)
      for (size_t b = 0; b + 8 <= frag_len; b += 8) {
        const uint64_t v = rng();
        std::memcpy(frags[i].data() + b, &v, 8);
      }
    for (size_t i = 0; i < k; ++i) data_ptrs.push_back(frags[i].data());
    for (size_t i = 0; i < m; ++i) parity_ptrs.push_back(frags[k + i].data());
  }
};

void register_array_encode(const std::string& name,
                           std::shared_ptr<altcodes::XorCodec> codec,
                           std::shared_ptr<ArrayCluster> cluster) {
  benchmark::RegisterBenchmark(name.c_str(), [codec, cluster](benchmark::State& state) {
    for (auto _ : state) {
      codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(),
                    cluster->frag_len);
      benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(cluster->k * cluster->frag_len));
  });
}

void register_array_decode(const std::string& name,
                           std::shared_ptr<altcodes::XorCodec> codec,
                           std::shared_ptr<ArrayCluster> cluster,
                           std::vector<uint32_t> erased) {
  codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(), cluster->frag_len);
  auto available = std::make_shared<std::vector<uint32_t>>();
  auto avail_ptrs = std::make_shared<std::vector<const uint8_t*>>();
  for (uint32_t id = 0; id < cluster->k + cluster->m; ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available->push_back(id);
      avail_ptrs->push_back(cluster->frags[id].data());
    }
  auto out = std::make_shared<std::vector<std::vector<uint8_t>>>(
      erased.size(), std::vector<uint8_t>(cluster->frag_len));
  auto out_ptrs = std::make_shared<std::vector<uint8_t*>>();
  for (auto& o : *out) out_ptrs->push_back(o.data());
  auto er = std::make_shared<std::vector<uint32_t>>(std::move(erased));
  benchmark::RegisterBenchmark(
      name.c_str(), [codec, cluster, available, avail_ptrs, er, out, out_ptrs](
                        benchmark::State& state) {
        codec->reconstruct(*available, avail_ptrs->data(), *er, out_ptrs->data(),
                           cluster->frag_len);  // warm program cache
        for (auto _ : state) {
          codec->reconstruct(*available, avail_ptrs->data(), *er, out_ptrs->data(),
                             cluster->frag_len);
          benchmark::ClobberMemory();
        }
        state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                static_cast<int64_t>(cluster->k * cluster->frag_len));
      });
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t block = 1024;

  for (size_t p : {3, 2}) {
    for (size_t d : {8, 9, 10}) {
      const std::string tag = "rs" + std::to_string(d) + "_" + std::to_string(p);
      auto cluster = std::make_shared<RsCluster>(d, p, frag_len_for(d));
      std::vector<uint32_t> erased{2, 4, 5, 6};
      erased.resize(p);

      auto ours = std::make_shared<ec::RsCodec>(d, p, full_options(block));
      register_encode("ours_encode/" + tag, ours, cluster);
      register_decode("ours_decode/" + tag, ours, cluster, erased);
    }
  }

  // Specialized array codes through the same pipeline.
  ec::CodecOptions array_opt;
  array_opt.pipeline.compress = slp::CompressKind::XorRePair;
  array_opt.pipeline.fuse = true;
  array_opt.pipeline.schedule = slp::ScheduleKind::Dfs;
  array_opt.exec.block_size = block;

  {
    auto codec = std::make_shared<altcodes::XorCodec>(altcodes::evenodd_spec(11), array_opt);
    auto cluster = std::make_shared<ArrayCluster>(*codec, 3);
    register_array_encode("evenodd11_encode/k11_p2", codec, cluster);
    register_array_decode("evenodd11_decode/k11_p2", codec, cluster, {2, 4});
  }
  {
    auto codec = std::make_shared<altcodes::XorCodec>(altcodes::rdp_spec(11), array_opt);
    auto cluster = std::make_shared<ArrayCluster>(*codec, 4);
    register_array_encode("rdp11_encode/k10_p2", codec, cluster);
    register_array_decode("rdp11_decode/k10_p2", codec, cluster, {2, 4});
  }
  {
    auto codec = std::make_shared<altcodes::XorCodec>(altcodes::star_spec(11), array_opt);
    auto cluster = std::make_shared<ArrayCluster>(*codec, 5);
    register_array_encode("star11_encode/k11_p3", codec, cluster);
    register_array_decode("star11_decode/k11_p3", codec, cluster, {2, 4, 5});
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
