// Machine-readable benchmark artifacts: every BENCH_*.json the bench
// binaries leave at the repo root shares one stable record schema so CI (or
// a plotting script) can consume any of them without per-bench parsing:
//
//   {
//     "bench": "<binary name>",
//     "config": { "<key>": "<value>", ... },        // the fixed parameters
//     "records": [
//       {"name": "...", "config": "...", "metric": "...", "value": N},
//       ...
//     ]
//   }
//
// `name` is the benchmark family, `config` one cell of its sweep (e.g.
// "rs(6,4)/loss=10%"), `metric` the measured quantity. Values that are
// whole numbers print without a decimal point so byte-identical reruns stay
// byte-identical. Header-only; benches fill a vector and call
// write_bench_json on an ofstream.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace xorec::bench {

struct BenchRecord {
  std::string name;
  std::string config;
  std::string metric;
  double value = 0;
};

inline void write_bench_value(std::ostream& os, double value) {
  if (std::floor(value) == value && std::fabs(value) < 9.0e15)
    os << static_cast<long long>(value);
  else
    os << value;
}

inline void write_bench_json(
    std::ostream& os, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& config,
    const std::vector<BenchRecord>& records) {
  os << "{\n";
  os << "  \"bench\": \"" << bench << "\",\n";
  os << "  \"config\": {";
  for (size_t i = 0; i < config.size(); ++i)
    os << (i ? ", " : "") << "\"" << config[i].first << "\": \"" << config[i].second
       << "\"";
  os << "},\n";
  os << "  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    os << "    {\"name\": \"" << r.name << "\", \"config\": \"" << r.config
       << "\", \"metric\": \"" << r.metric << "\", \"value\": ";
    write_bench_value(os, r.value);
    os << "}" << (i + 1 < records.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace xorec::bench
