// E1 / E8 / E9 — §2's performance strip and §7.5's stage tables.
//
// Static part (printed before timing): the P_enc and P_dec stage tables
//   P_enc  paper: #⊕ 755/385/146, #M 2265/1155/677, NVar 32/385/146/88,
//                 CCap 92/447/224/167
//   P_dec  paper ({2,4,5,6} erased): #⊕ 1368/511/206, #M 4104/1533/923,
//                 NVar 32/511/206/125, CCap 89/585/283/205
// Dynamic part: encode/decode throughput for Base -> Comp -> Fuse -> Sched
// (paper intel B=1K: 4.03 / 4.36 / 7.50 / 8.92 GB/s encode,
//                    2.35 / 3.32 / 5.51 / 6.67 GB/s decode).
#include "bench_common.hpp"
#include "bench_json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "slp/metrics.hpp"

using namespace xorec;
using namespace xorec::bench;

namespace {

/// The static cost tables are deterministic, so they double as the
/// machine-readable artifact (BENCH_stage_summary.json).
std::vector<BenchRecord> g_records;

void print_stage_table(const char* title, const char* key, const slp::PipelineResult& r) {
  const auto base = slp::measure(r.base, slp::ExecForm::Binary);
  const auto co = slp::measure(*r.compressed, slp::ExecForm::Binary);
  const auto fu = slp::measure(*r.fused, slp::ExecForm::Fused);
  const auto sc = slp::measure(*r.scheduled, slp::ExecForm::Fused);
  std::printf("%s stage table (Base / Co / Fu(Co) / Dfs(Fu(Co))):\n", title);
  std::printf("  #xor  %5zu %5zu %5zu %5zu\n", base.xor_ops, co.xor_ops, fu.instructions,
              sc.instructions);
  std::printf("  #M    %5zu %5zu %5zu %5zu\n", base.mem_accesses, co.mem_accesses,
              fu.mem_accesses, sc.mem_accesses);
  std::printf("  NVar  %5zu %5zu %5zu %5zu\n", base.nvar, co.nvar, fu.nvar, sc.nvar);
  std::printf("  CCap  %5zu %5zu %5zu %5zu\n", base.ccap, co.ccap, fu.ccap, sc.ccap);
  const auto add = [&](const char* stage, size_t xors, size_t mem, size_t nvar,
                       size_t ccap) {
    const std::string cfg = std::string(key) + "/" + stage;
    g_records.push_back({"stage_table", cfg, "xor_ops", static_cast<double>(xors)});
    g_records.push_back({"stage_table", cfg, "mem_accesses", static_cast<double>(mem)});
    g_records.push_back({"stage_table", cfg, "nvar", static_cast<double>(nvar)});
    g_records.push_back({"stage_table", cfg, "ccap", static_cast<double>(ccap)});
  };
  add("base", base.xor_ops, base.mem_accesses, base.nvar, base.ccap);
  add("compressed", co.xor_ops, co.mem_accesses, co.nvar, co.ccap);
  add("fused", fu.instructions, fu.mem_accesses, fu.nvar, fu.ccap);
  add("scheduled", sc.instructions, sc.mem_accesses, sc.nvar, sc.ccap);
}

/// The multilevel scheduling pass: per-level simulated misses of the chosen
/// schedule against its configured hierarchy (PipelineResult::multilevel).
void print_multilevel_line(const char* title, const slp::PipelineResult& r) {
  if (!r.multilevel) return;
  std::printf("%s sched=multilevel levels=", title);
  for (size_t i = 0; i < r.level_capacities.size(); ++i)
    std::printf("%s%zu", i ? ":" : "", r.level_capacities[i]);
  std::printf("  misses/level =");
  for (const auto& l : r.multilevel->levels) std::printf(" %zu", l.misses);
  std::printf("  memory loads = %zu\n", r.multilevel->memory_loads);
}

void print_cache_column(const char* what, const Codec& codec) {
  const CacheStats s = codec.cache_stats();
  std::printf("  cache[%s]%s: %zu entries, %zu hits, %zu misses, %zu evictions, "
              "%.2f ms compiling\n",
              what, s.shared ? " (shared)" : "", s.entries, s.hits, s.misses, s.evictions,
              s.compile_ns / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4;
  const size_t block = 1024;  // the paper's chosen intel block size

  // Every stage codec is leased from ONE CodecService by spec string — the
  // serving shape: pooled instances, canonical-spec dedup, shared compiled
  // programs. (Before the service existed this bench hand-assembled
  // ec::RsCodec per stage.)
  CodecService service({.shards = 2, .workers_per_shard = 1});
  const std::string dims = "rs(" + std::to_string(n) + "," + std::to_string(p) + ")";
  const std::string opts = "@block=" + std::to_string(block) + ",isa=avx2";
  const auto lease = [&](const std::string& extra) {
    return service.acquire(dims + opts + extra);
  };

  // --- static tables -------------------------------------------------------
  {
    const ServiceHandle full = lease("");
    print_stage_table("P_enc (paper: 755/385/146; 2265/1155/677; 32/385/146/88; "
                      "92/447/224/167)",
                      "P_enc", *full.codec().encode_pipeline());
    // The generic plan API: every codec (not just RsCodec) exposes the
    // decode pipeline + cost measures of a solved erasure pattern this way.
    const std::vector<uint32_t> erased{2, 4, 5, 6};
    std::vector<uint32_t> available;
    for (uint32_t id = 0; id < n + p; ++id)
      if (std::find(erased.begin(), erased.end(), id) == erased.end())
        available.push_back(id);
    const auto plan = full.plan_reconstruct(available, erased);
    print_stage_table("P_dec (paper: 1368/511/206; 4104/1533/923; 32/511/206/125; "
                      "89/585/283/205)",
                      "P_dec", *plan->decode_pipeline());
    std::printf("P_dec plan totals: #xor=%zu #M=%zu (xor_count/schedule_stats)\n",
                plan->xor_count(), plan->schedule_stats().mem_accesses);
    print_cache_column("rs(10,4) full", full.codec());

    // The multilevel scheduling pass on the same matrices: the schedule is
    // pebbled against an L1/L2 hierarchy — levels= unset means the REAL
    // topology of this machine (sysfs-calibrated) — and reports its
    // per-level misses.
    const ServiceHandle ml = lease(",sched=multilevel");
    print_multilevel_line("P_enc", *ml.codec().encode_pipeline());
    const auto ml_plan = ml.plan_reconstruct(available, erased);
    print_multilevel_line("P_dec", *ml_plan->decode_pipeline());
    print_cache_column("rs(10,4) multilevel", ml.codec());
  }

  // --- throughput per stage ------------------------------------------------
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len_for(n));
  struct Stage {
    const char* name;
    const char* extra;  // appended to the shared dims@block,isa spec
  };
  const Stage stages[] = {
      {"base", ",passes=base"},
      {"compressed", ",passes=compress"},
      {"fused", ",passes=fuse"},
      {"scheduled", ""},
      {"multilevel", ",sched=multilevel"},
      // The execution-backend axis on the fully scheduled program:
      // "scheduled" runs exec=auto (lowered straight-line kernels); this row
      // pins the interpreting executor on the SAME compiled plan.
      {"interp", ",exec=interp"},
  };
  for (const Stage& s : stages) {
    auto codec = lease(s.extra).codec_ptr();
    register_encode(std::string("stage_encode/") + s.name, codec, cluster);
    register_decode(std::string("stage_decode/") + s.name, codec, cluster, {2, 4, 5, 6});
  }

  // The fully scheduled stage through batch sessions over the POOLED codec
  // (8 stripes/flush): t1 isolates session overhead, t4 shows stripe-level
  // scaling.
  {
    auto codec = lease("").codec_ptr();
    auto enc_set = make_cluster_set(*codec, 8);
    auto dec_set = make_decode_set(*codec, 8, {2, 4, 5, 6});
    for (size_t t : {1u, 4u}) {
      register_encode_batch("stage_encode_batch/scheduled/t" + std::to_string(t), codec,
                            enc_set, t);
      register_decode_batch("stage_decode_batch/scheduled/t" + std::to_string(t), codec,
                            dec_set, t);
    }
  }

  benchmark::RunSpecifiedBenchmarks();

  // The service's aggregated view: the "scheduled" pool was leased three
  // times (tables + throughput + batch) but built ONCE.
  const ServiceStats stats = service.stats();
  for (const PoolStats& pool : stats.pools)
    std::printf("pool \"%s\": %zu clients, %zu plans, %zu cached programs, exec=%s/%s\n",
                pool.spec.c_str(), pool.clients, pool.plans, pool.cached_programs,
                pool.exec_backend.c_str(), pool.exec_isa.c_str());

  const char* env = std::getenv("XOREC_STAGE_JSON");
  const std::string path = env && *env ? env : "BENCH_stage_summary.json";
  {
    std::ofstream out(path);
    write_bench_json(out, "bench_stage_summary",
                     {{"code", dims}, {"block", std::to_string(block)},
                      {"erased", "2,4,5,6"}},
                     g_records);
  }
  std::printf("wrote %s (%zu records)\n", path.c_str(), g_records.size());
  benchmark::Shutdown();
  return 0;
}
