// A3 — pass ablation on RS(10,4) encode (B = 1K):
//   - compression: none vs RePair vs XorRePair (fused + scheduled on top),
//   - scheduling: none vs DFS vs greedy (on XorRePair + fusion),
//   - fusion alone (no compression) vs the full pipeline.
// Complements §7.5 by isolating each design decision end to end.
#include "bench_common.hpp"

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4, block = 1024;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len_for(n));

  struct Config {
    const char* name;
    slp::CompressKind compress;
    bool fuse;
    slp::ScheduleKind sched;
  };
  const Config configs[] = {
      {"compress_none_fuse_dfs", slp::CompressKind::None, true, slp::ScheduleKind::Dfs},
      {"compress_repair_fuse_dfs", slp::CompressKind::RePair, true, slp::ScheduleKind::Dfs},
      {"compress_xorrepair_fuse_dfs", slp::CompressKind::XorRePair, true,
       slp::ScheduleKind::Dfs},
      {"xorrepair_fuse_sched_none", slp::CompressKind::XorRePair, true,
       slp::ScheduleKind::None},
      {"xorrepair_fuse_sched_greedy", slp::CompressKind::XorRePair, true,
       slp::ScheduleKind::Greedy},
      {"fuse_only", slp::CompressKind::None, true, slp::ScheduleKind::None},
      {"nothing", slp::CompressKind::None, false, slp::ScheduleKind::None},
  };
  for (const Config& c : configs) {
    auto codec =
        std::make_shared<ec::RsCodec>(n, p, stage_options(c.compress, c.fuse, c.sched, block));
    register_encode(std::string("passes_encode/") + c.name, codec, cluster);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
