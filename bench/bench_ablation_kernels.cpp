// A2 — kernel ablation: the n-ary single-pass XOR kernels by ISA flavor
// (scalar xor1 / word64 / AVX2 xor32 / AVX-512 xor64 / NEON xor16) and
// arity, on L1-resident blocks. Shows the #M = k+1 single-pass advantage
// and SIMD speedup that motivate §5 and §7.2, plus the lowered-backend
// kernel forms: fixed-arity specializations vs the variadic dispatcher,
// fused accumulate (dst ^= srcs), and streaming stores on LLC-sized blocks.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "kernel/xor_kernel.hpp"

using namespace xorec;

namespace {

void bench_xor_many(benchmark::State& state, kernel::Isa isa, size_t arity, size_t len) {
  std::mt19937_64 rng(1);
  std::vector<std::vector<uint8_t>> bufs(arity + 1, std::vector<uint8_t>(len));
  for (auto& b : bufs)
    for (auto& x : b) x = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> srcs;
  for (size_t j = 1; j <= arity; ++j) srcs.push_back(bufs[j].data());
  const kernel::XorManyFn fn = kernel::resolve(isa);
  for (auto _ : state) {
    fn(bufs[0].data(), srcs.data(), arity, len);
    benchmark::ClobberMemory();
  }
  // Bytes moved: k source streams + 1 destination stream.
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((arity + 1) * len));
}

/// The equivalent work done as a chain of binary XORs (the pre-fusion
/// execution shape): same result, (k-1) passes instead of one.
void bench_xor_chain(benchmark::State& state, kernel::Isa isa, size_t arity, size_t len) {
  std::mt19937_64 rng(2);
  std::vector<std::vector<uint8_t>> bufs(arity + 1, std::vector<uint8_t>(len));
  for (auto& b : bufs)
    for (auto& x : b) x = static_cast<uint8_t>(rng());
  const kernel::XorManyFn fn = kernel::resolve(isa);
  for (auto _ : state) {
    const uint8_t* first2[2] = {bufs[1].data(), bufs[2].data()};
    fn(bufs[0].data(), first2, 2, len);
    for (size_t j = 3; j <= arity; ++j) {
      const uint8_t* acc2[2] = {bufs[0].data(), bufs[j].data()};
      fn(bufs[0].data(), acc2, 2, len);
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((arity + 1) * len));
}

/// The lowered backend's call forms, straight off the KernelTable:
/// fixed[k] (arity baked into the symbol), accum[k] (dst ^= srcs, one
/// fewer source stream than the equivalent fixed[k+1]), and many_nt
/// (streaming stores — only sensible on blocks past the cache).
enum class Form { Fixed, Accum, ManyNt };

void bench_table_form(benchmark::State& state, kernel::Isa isa, Form form, size_t arity,
                      size_t len) {
  const kernel::KernelTable& kt = kernel::kernel_table(isa);
  std::mt19937_64 rng(3);
  std::vector<std::vector<uint8_t>> bufs(arity + 1, std::vector<uint8_t>(len));
  for (auto& b : bufs)
    for (auto& x : b) x = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> srcs;
  for (size_t j = 1; j <= arity; ++j) srcs.push_back(bufs[j].data());
  for (auto _ : state) {
    switch (form) {
      case Form::Fixed: kt.fixed[arity](bufs[0].data(), srcs.data(), len); break;
      case Form::Accum: kt.accum[arity](bufs[0].data(), srcs.data(), len); break;
      case Form::ManyNt: kt.many_nt(bufs[0].data(), srcs.data(), arity, len); break;
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((arity + 1) * len));
}

/// ISAs worth benching on THIS host (kernel_table degrades unsupported
/// requests, so registering them would silently re-measure the fallback).
std::vector<kernel::Isa> host_isas() {
  std::vector<kernel::Isa> isas = {kernel::Isa::Scalar, kernel::Isa::Word64};
  if (kernel::cpu_has_avx2()) isas.push_back(kernel::Isa::Avx2);
  if (kernel::cpu_has_avx512()) isas.push_back(kernel::Isa::Avx512);
  if (kernel::cpu_has_neon()) isas.push_back(kernel::Isa::Neon);
  return isas;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t len = 4096;
  for (kernel::Isa isa : host_isas()) {
    for (size_t arity : {2u, 3u, 4u, 8u, 16u}) {
      const std::string name =
          std::string("xor_many/") + kernel::isa_name(isa) + "/k" + std::to_string(arity);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [isa, arity, len](benchmark::State& s) { bench_xor_many(s, isa, arity, len); });
    }
  }
  // Fused vs chain at the same arity (the §5 deforestation claim).
  for (size_t arity : {4u, 8u, 16u}) {
    const std::string chain_name = "xor_chain_vs_fused/chain/k" + std::to_string(arity);
    benchmark::RegisterBenchmark(
        chain_name.c_str(),
        [arity, len](benchmark::State& s) { bench_xor_chain(s, kernel::Isa::Avx2, arity, len); });
    const std::string fused_name = "xor_chain_vs_fused/fused/k" + std::to_string(arity);
    benchmark::RegisterBenchmark(
        fused_name.c_str(),
        [arity, len](benchmark::State& s) { bench_xor_many(s, kernel::Isa::Avx2, arity, len); });
  }

  // Lowered-backend call forms: fixed-arity and accumulate specializations
  // against the variadic dispatcher above, on the same L1-resident blocks.
  for (kernel::Isa isa : host_isas()) {
    const char* iname = kernel::isa_name(isa);
    for (size_t arity : {2u, 4u, 8u}) {
      benchmark::RegisterBenchmark(
          (std::string("xor_fixed/") + iname + "/k" + std::to_string(arity)).c_str(),
          [isa, arity, len](benchmark::State& s) {
            bench_table_form(s, isa, Form::Fixed, arity, len);
          });
      benchmark::RegisterBenchmark(
          (std::string("xor_accum/") + iname + "/k" + std::to_string(arity)).c_str(),
          [isa, arity, len](benchmark::State& s) {
            bench_table_form(s, isa, Form::Accum, arity, len);
          });
    }
  }

  // Streaming stores only pay off once the destination stops fitting in
  // cache: regular vs non-temporal many at 4 KB (L1) and 8 MB (past LLC).
  for (kernel::Isa isa : host_isas()) {
    if (kernel::kernel_table(isa).many_nt == kernel::kernel_table(isa).many)
      continue;  // no dedicated NT kernel for this family
    const char* iname = kernel::isa_name(isa);
    for (size_t nt_len : {4096u, 8u << 20}) {
      const std::string suffix =
          std::string(iname) + "/k4/len" + std::to_string(nt_len);
      benchmark::RegisterBenchmark(("xor_nt/regular/" + suffix).c_str(),
                                   [isa, nt_len](benchmark::State& s) {
                                     bench_xor_many(s, isa, 4, nt_len);
                                   });
      benchmark::RegisterBenchmark(("xor_nt/stream/" + suffix).c_str(),
                                   [isa, nt_len](benchmark::State& s) {
                                     bench_table_form(s, isa, Form::ManyNt, 4, nt_len);
                                   });
    }
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
