// A2 — kernel ablation: the n-ary single-pass XOR kernels by ISA flavor
// (scalar xor1 / word64 / AVX2 xor32) and arity, on L1-resident blocks.
// Shows the #M = k+1 single-pass advantage and SIMD speedup that motivate
// §5 and §7.2.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "kernel/xor_kernel.hpp"

using namespace xorec;

namespace {

void bench_xor_many(benchmark::State& state, kernel::Isa isa, size_t arity, size_t len) {
  std::mt19937_64 rng(1);
  std::vector<std::vector<uint8_t>> bufs(arity + 1, std::vector<uint8_t>(len));
  for (auto& b : bufs)
    for (auto& x : b) x = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> srcs;
  for (size_t j = 1; j <= arity; ++j) srcs.push_back(bufs[j].data());
  const kernel::XorManyFn fn = kernel::resolve(isa);
  for (auto _ : state) {
    fn(bufs[0].data(), srcs.data(), arity, len);
    benchmark::ClobberMemory();
  }
  // Bytes moved: k source streams + 1 destination stream.
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((arity + 1) * len));
}

/// The equivalent work done as a chain of binary XORs (the pre-fusion
/// execution shape): same result, (k-1) passes instead of one.
void bench_xor_chain(benchmark::State& state, kernel::Isa isa, size_t arity, size_t len) {
  std::mt19937_64 rng(2);
  std::vector<std::vector<uint8_t>> bufs(arity + 1, std::vector<uint8_t>(len));
  for (auto& b : bufs)
    for (auto& x : b) x = static_cast<uint8_t>(rng());
  const kernel::XorManyFn fn = kernel::resolve(isa);
  for (auto _ : state) {
    const uint8_t* first2[2] = {bufs[1].data(), bufs[2].data()};
    fn(bufs[0].data(), first2, 2, len);
    for (size_t j = 3; j <= arity; ++j) {
      const uint8_t* acc2[2] = {bufs[0].data(), bufs[j].data()};
      fn(bufs[0].data(), acc2, 2, len);
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>((arity + 1) * len));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t len = 4096;
  for (kernel::Isa isa : {kernel::Isa::Scalar, kernel::Isa::Word64, kernel::Isa::Avx2}) {
    for (size_t arity : {2u, 3u, 4u, 8u, 16u}) {
      const std::string name =
          std::string("xor_many/") + kernel::isa_name(isa) + "/k" + std::to_string(arity);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [isa, arity, len](benchmark::State& s) { bench_xor_many(s, isa, arity, len); });
    }
  }
  // Fused vs chain at the same arity (the §5 deforestation claim).
  for (size_t arity : {4u, 8u, 16u}) {
    const std::string chain_name = "xor_chain_vs_fused/chain/k" + std::to_string(arity);
    benchmark::RegisterBenchmark(
        chain_name.c_str(),
        [arity, len](benchmark::State& s) { bench_xor_chain(s, kernel::Isa::Avx2, arity, len); });
    const std::string fused_name = "xor_chain_vs_fused/fused/k" + std::to_string(arity);
    benchmark::RegisterBenchmark(
        fused_name.c_str(),
        [arity, len](benchmark::State& s) { bench_xor_many(s, kernel::Isa::Avx2, arity, len); });
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
