// Cluster repair traffic, quantified per codec family: the SAME rack-aware
// placement and the SAME seeded failure trace (one node + one correlated
// rack) repaired with rs(6,4), lrc(6,2,2) and piggyback(6,4,2) — equal
// stripe width, so the byte counts are directly comparable. The timed
// benchmark reports chunks repaired per second of orchestrator wall time
// (scheduling + plan lookup + traffic accounting; the first few repairs
// carry real payload through a shared CodecService); counters carry the
// XORing-Elephants numbers: cross-rack bytes, total read bytes, strips.
//
// After the timed runs the binary re-runs the comparison once and writes
// the full report document to BENCH_repair_traffic.json (override the path
// with XOREC_REPAIR_JSON) — CI uploads it as an artifact and asserts the
// locality families beat rs on cross-rack bytes. Everything is fixed-seed:
// two runs of this binary produce byte-identical JSON.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "cluster/failure.hpp"
#include "cluster/placement.hpp"
#include "cluster/repair.hpp"
#include "cluster/topology.hpp"

using namespace xorec;
using namespace xorec::cluster;

namespace {

constexpr uint64_t kSeed = 2021;            // fixed: the SC'21 vintage
constexpr size_t kStripes = 256;
const Topology kTopo(12, 2, 2);             // 24 nodes, 48 disks

FailureTrace bench_trace() {
  FailureTrace trace;
  trace.add_node(0.0, 5).add_rack(2.0, 8);  // node in rack 2, then rack 8
  return trace;
}

RepairOptions base_options(const std::string& spec) {
  RepairOptions opt;
  opt.spec = spec;
  opt.chunk_bytes = 4ull << 20;
  opt.node_bandwidth = 256ull << 20;
  opt.execute_stripes = 2;  // a taste of real payload, not the bench body
  opt.exec_frag_len = 4096;
  opt.seed = kSeed;
  return opt;
}

const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs{"rs(6,4)", "lrc(6,2,2)",
                                              "piggyback(6,4,2)"};
  return specs;
}

/// One shared service across all timed runs: plans compile once (the cold
/// pattern compiles land in the first iteration, then the PlanCache serves
/// every later run — the compile-once thesis at fleet scale).
CodecService& shared_service() {
  static CodecService service({.shards = 2, .workers_per_shard = 1});
  return service;
}

void bench_repair_family(benchmark::State& state, const std::string& spec) {
  const FailureTrace trace = bench_trace();
  RepairReport last;
  size_t chunks = 0;
  for (auto _ : state) {
    state.PauseTiming();  // placement setup is not repair work
    PlacementRegistry placement(kTopo, 10, PlacementPolicy::RackAware, kSeed);
    placement.add_stripes(kStripes);
    RepairOrchestrator orch(placement, shared_service(), base_options(spec));
    state.ResumeTiming();
    last = orch.run(trace);
    chunks += last.chunks_repaired;
    benchmark::DoNotOptimize(last.decision_fingerprint);
  }
  state.SetItemsProcessed(static_cast<int64_t>(chunks));  // chunks repaired/s
  state.counters["chunks_lost"] = static_cast<double>(last.chunks_lost);
  state.counters["repair_jobs"] = static_cast<double>(last.repair_jobs);
  state.counters["strips_read"] = static_cast<double>(last.strips_read);
  state.counters["bytes_read"] = static_cast<double>(last.bytes_read);
  state.counters["cross_rack_bytes"] = static_cast<double>(last.cross_rack_bytes);
  state.counters["cross_rack_fraction"] = last.cross_rack_fraction();
  state.counters["time_to_safe_ticks"] = static_cast<double>(last.time_to_safe_ticks);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  for (const std::string& spec : family_specs())
    benchmark::RegisterBenchmark(("repair_traffic/" + spec).c_str(),
                                 [spec](benchmark::State& state) {
                                   bench_repair_family(state, spec);
                                 })
        ->Unit(benchmark::kMillisecond);

  benchmark::RunSpecifiedBenchmarks();

  // The artifact: one definitive comparison on the fixed seed, written as
  // JSON. Byte-identical across runs (fixed seeds end to end).
  const char* env = std::getenv("XOREC_REPAIR_JSON");
  const std::string path = env && *env ? env : "BENCH_repair_traffic.json";
  const FailureTrace trace = bench_trace();
  const std::vector<RepairReport> reports =
      compare_families(kTopo, PlacementPolicy::RackAware, kStripes, family_specs(),
                       trace, shared_service(), base_options("rs(6,4)"), kSeed);
  {
    std::ofstream out(path);
    write_comparison_json(out, kTopo, PlacementPolicy::RackAware, kStripes, trace,
                          reports);
  }

  const RepairReport& rs = reports[0];
  bool locality_wins = true;
  for (size_t i = 1; i < reports.size(); ++i)
    locality_wins = locality_wins && reports[i].cross_rack_bytes < rs.cross_rack_bytes;
  std::printf("wrote %s: ", path.c_str());
  for (const RepairReport& r : reports)
    std::printf("%s=%.1f MiB x-rack  ", r.spec.c_str(),
                static_cast<double>(r.cross_rack_bytes) / (1 << 20));
  std::printf("[%s]\n", locality_wins ? "locality wins" : "LOCALITY REGRESSION");

  benchmark::Shutdown();
  return locality_wins ? 0 : 1;
}
