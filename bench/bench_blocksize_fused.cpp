// E6 — §7.4 case 1: the fused-but-uncompressed SLP P+F_enc across block
// sizes (RS(10,4) encode, AVX2).
//
// Paper's intel row (GB/s): 0.87 1.73 2.85 4.08 5.29 5.78 4.36 for
// B = 64..4K, with NVar(P+F) = 32 and CCap(P+F) = 88.
// Shape target: rises with B, peaks around 1K-2K, dips at 4K.
#include "bench_common.hpp"

#include <cstdio>

#include "slp/metrics.hpp"

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len_for(n));

  bool printed = false;
  for (size_t block : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    auto codec = std::make_shared<ec::RsCodec>(n, p, fused_uncompressed_options(block));
    if (!printed) {
      const auto& pipe = *codec->encode_pipeline();
      const auto m = slp::measure(pipe.final_program(), slp::ExecForm::Fused);
      std::printf("P+F_enc static measures: NVar=%zu CCap=%zu #xor=%zu #M=%zu "
                  "(paper: NVar=32 CCap=88)\n",
                  m.nvar, m.ccap, m.xor_ops, m.mem_accesses);
      printed = true;
    }
    register_encode("fused_uncompressed_encode/B" + std::to_string(block), codec, cluster);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
