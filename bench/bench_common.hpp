// Shared machinery for the paper-table benchmarks, written against the
// unified xorec::Codec interface: any registered codec — selected by spec
// string or constructed directly — benches through the same helpers.
//
// Conventions (matching §7): data size is 10 MB per coding call (n fragments
// of 10MB/n each, rounded to the codec's strip geometry); throughput is data
// bytes per second of coding time, reported through google-benchmark's bytes
// counter (console column "bytes_per_second", GB/s = value / 1e9...
// benchmark prints human units).
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "api/xorec.hpp"
#include "baseline/naive_xor.hpp"
#include "ec/rs_codec.hpp"

namespace xorec::bench {

inline constexpr size_t kDataBytes = 10u << 20;  // the paper's 10 MB objects

/// Fragment length for an n-way split of the 10 MB object, rounded down to
/// whole 8-byte words per strip. `fragment_multiple` is the codec's strip
/// count (Codec::fragment_multiple()); the historical `% 64` was the w = 8
/// special case.
inline size_t frag_len_for(size_t n, size_t fragment_multiple = 8) {
  const size_t unit = fragment_multiple * 8;
  const size_t raw = kDataBytes / n;
  return std::max(unit, raw - raw % unit);
}

/// One encoded fragment cluster with owned buffers, for any codec geometry.
struct Cluster {
  size_t n, p, frag_len;
  std::vector<std::vector<uint8_t>> frags;
  std::vector<const uint8_t*> data_ptrs;
  std::vector<uint8_t*> parity_ptrs;

  Cluster(size_t n_, size_t p_, size_t frag_len_, uint32_t seed = 1)
      : n(n_), p(p_), frag_len(frag_len_) {
    std::mt19937_64 rng(seed);
    frags.assign(n + p, std::vector<uint8_t>(frag_len));
    for (size_t i = 0; i < n; ++i) {
      for (size_t w = 0; w + 8 <= frag_len; w += 8) {
        const uint64_t v = rng();
        std::memcpy(frags[i].data() + w, &v, 8);
      }
    }
    for (size_t i = 0; i < n; ++i) data_ptrs.push_back(frags[i].data());
    for (size_t i = 0; i < p; ++i) parity_ptrs.push_back(frags[n + i].data());
  }

  /// Geometry (n, p, frag_len) straight from a codec.
  Cluster(const Codec& codec, uint32_t seed = 1)
      : Cluster(codec.data_fragments(), codec.parity_fragments(),
                frag_len_for(codec.data_fragments(), codec.fragment_multiple()), seed) {}
};

/// Historical name (all paper benches started as RS); same struct.
using RsCluster = Cluster;

/// Registry spec -> shared codec, the way benches select codecs.
inline std::shared_ptr<const Codec> codec_for(const std::string& spec) {
  return std::shared_ptr<const Codec>(make_codec(spec));
}

/// Pipeline presets for the paper's four stages.
inline ec::CodecOptions stage_options(slp::CompressKind compress, bool fuse,
                                      slp::ScheduleKind sched, size_t block_size,
                                      kernel::Isa isa = kernel::Isa::Avx2) {
  ec::CodecOptions o;
  o.pipeline.compress = compress;
  o.pipeline.fuse = fuse;
  o.pipeline.schedule = sched;
  o.pipeline.greedy_capacity = (32u << 10) / block_size;  // 32 KB L1 / B
  o.exec.block_size = block_size;
  o.exec.isa = isa;
  return o;
}

inline ec::CodecOptions base_options(size_t block, kernel::Isa isa = kernel::Isa::Avx2) {
  return stage_options(slp::CompressKind::None, false, slp::ScheduleKind::None, block, isa);
}
inline ec::CodecOptions compressed_options(size_t block) {
  return stage_options(slp::CompressKind::XorRePair, false, slp::ScheduleKind::None, block);
}
inline ec::CodecOptions fused_options(size_t block) {
  return stage_options(slp::CompressKind::XorRePair, true, slp::ScheduleKind::None, block);
}
inline ec::CodecOptions fused_uncompressed_options(size_t block) {
  return stage_options(slp::CompressKind::None, true, slp::ScheduleKind::None, block);
}
inline ec::CodecOptions full_options(size_t block,
                                     slp::ScheduleKind sched = slp::ScheduleKind::Dfs) {
  return stage_options(slp::CompressKind::XorRePair, true, sched, block);
}

/// Registers an encode-throughput benchmark over a shared codec/cluster.
inline void register_encode(const std::string& name, std::shared_ptr<const Codec> codec,
                            std::shared_ptr<Cluster> cluster) {
  benchmark::RegisterBenchmark(name.c_str(), [codec, cluster](benchmark::State& state) {
    for (auto _ : state) {
      codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(),
                    cluster->frag_len);
      benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(cluster->n * cluster->frag_len));
  });
}

/// One stripe's decode fixture: pre-encoded cluster, survivor pointers and
/// output buffers for a fixed erasure pattern.
struct DecodeFixture {
  std::shared_ptr<Cluster> cluster;
  std::vector<uint32_t> erased;
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  std::vector<std::vector<uint8_t>> rebuilt;
  std::vector<uint8_t*> out_ptrs;

  DecodeFixture(const Codec& codec, std::shared_ptr<Cluster> c,
                std::vector<uint32_t> erased_ids)
      : cluster(std::move(c)), erased(std::move(erased_ids)) {
    codec.encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(),
                 cluster->frag_len);
    for (uint32_t id = 0; id < cluster->n + cluster->p; ++id) {
      if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
        available.push_back(id);
        avail_ptrs.push_back(cluster->frags[id].data());
      }
    }
    rebuilt.assign(erased.size(), std::vector<uint8_t>(cluster->frag_len));
    for (auto& r : rebuilt) out_ptrs.push_back(r.data());
  }
};

/// Shared multi-stripe fixtures, so several batch benches (e.g. a thread
/// sweep) reuse one allocation instead of one per registration.
using ClusterSet = std::vector<Cluster>;
using DecodeSet = std::vector<DecodeFixture>;

inline std::shared_ptr<ClusterSet> make_cluster_set(const Codec& codec, size_t stripes,
                                                    size_t frag_len = 0,
                                                    uint32_t seed0 = 100) {
  const size_t fl = frag_len ? frag_len
                             : frag_len_for(codec.data_fragments(),
                                            codec.fragment_multiple());
  auto set = std::make_shared<ClusterSet>();
  for (size_t s = 0; s < stripes; ++s)
    set->emplace_back(codec.data_fragments(), codec.parity_fragments(), fl,
                      static_cast<uint32_t>(seed0 + s));
  return set;
}

inline std::shared_ptr<DecodeSet> make_decode_set(const Codec& codec, size_t stripes,
                                                  std::vector<uint32_t> erased,
                                                  size_t frag_len = 0,
                                                  uint32_t seed0 = 200) {
  const size_t fl = frag_len ? frag_len
                             : frag_len_for(codec.data_fragments(),
                                            codec.fragment_multiple());
  auto set = std::make_shared<DecodeSet>();
  for (size_t s = 0; s < stripes; ++s)
    set->emplace_back(codec,
                      std::make_shared<Cluster>(codec.data_fragments(),
                                                codec.parity_fragments(), fl,
                                                static_cast<uint32_t>(seed0 + s)),
                      erased);
  return set;
}

/// Plan-execute decode benchmark: the erasure pattern is solved ONCE at
/// registration (Codec::plan_reconstruct); the timed loop only runs
/// ReconstructPlan::execute — the degraded-read fast path.
inline void register_decode_plan(const std::string& name,
                                 std::shared_ptr<const Codec> codec,
                                 std::shared_ptr<Cluster> cluster,
                                 std::vector<uint32_t> erased) {
  auto fix = std::make_shared<DecodeFixture>(*codec, std::move(cluster), erased);
  auto plan = codec->plan_reconstruct(fix->available, erased);
  benchmark::RegisterBenchmark(name.c_str(), [codec, fix, plan](benchmark::State& state) {
    for (auto _ : state) {
      plan->execute(fix->avail_ptrs.data(), fix->out_ptrs.data(), fix->cluster->frag_len);
      benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(fix->cluster->n * fix->cluster->frag_len));
  });
}

/// Batched encode benchmark: every cluster of the (shared) set is submitted
/// through one BatchCoder session per iteration; flush() is the barrier.
/// Register with threads = 1 for the session-overhead baseline, >= 2 for
/// stripe-level speedup (the session codec should keep threads=1 —
/// parallelism comes from stripes, not intra-stripe splitting).
inline void register_encode_batch(const std::string& name,
                                  std::shared_ptr<const Codec> codec,
                                  std::shared_ptr<ClusterSet> clusters, size_t threads) {
  auto batch = std::make_shared<BatchCoder>(codec, threads);
  benchmark::RegisterBenchmark(
      name.c_str(), [codec, clusters, batch](benchmark::State& state) {
        for (auto _ : state) {
          for (Cluster& c : *clusters)
            batch->submit_encode(c.data_ptrs.data(), c.parity_ptrs.data(), c.frag_len);
          batch->flush();
          benchmark::ClobberMemory();
        }
        const Cluster& c0 = clusters->front();
        state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                static_cast<int64_t>(clusters->size() * c0.n * c0.frag_len));
      })
      // The work happens on session workers; the calling thread mostly
      // waits in flush() — only wall time is meaningful.
      ->UseRealTime();
}

/// Batched decode benchmark: one plan shared by every stripe of the set,
/// one submit_reconstruct per stripe per iteration.
inline void register_decode_batch(const std::string& name,
                                  std::shared_ptr<const Codec> codec,
                                  std::shared_ptr<DecodeSet> fixtures, size_t threads) {
  auto plan =
      codec->plan_reconstruct(fixtures->front().available, fixtures->front().erased);
  auto batch = std::make_shared<BatchCoder>(codec, threads);
  benchmark::RegisterBenchmark(
      name.c_str(), [codec, fixtures, plan, batch](benchmark::State& state) {
        for (auto _ : state) {
          for (DecodeFixture& f : *fixtures)
            batch->submit_reconstruct(plan, f.avail_ptrs.data(), f.out_ptrs.data(),
                                      f.cluster->frag_len);
          batch->flush();
          benchmark::ClobberMemory();
        }
        const Cluster& c0 = *fixtures->front().cluster;
        state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                static_cast<int64_t>(fixtures->size() * c0.n * c0.frag_len));
      })
      ->UseRealTime();
}

/// Decode benchmark: reconstruct `erased` (pre-encoded cluster required).
inline void register_decode(const std::string& name, std::shared_ptr<const Codec> codec,
                            std::shared_ptr<Cluster> cluster,
                            std::vector<uint32_t> erased) {
  // Pre-encode once so the survivors are valid.
  codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(), cluster->frag_len);
  auto available = std::make_shared<std::vector<uint32_t>>();
  auto avail_ptrs = std::make_shared<std::vector<const uint8_t*>>();
  for (uint32_t id = 0; id < cluster->n + cluster->p; ++id) {
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available->push_back(id);
      avail_ptrs->push_back(cluster->frags[id].data());
    }
  }
  auto out = std::make_shared<std::vector<std::vector<uint8_t>>>(
      erased.size(), std::vector<uint8_t>(cluster->frag_len));
  auto out_ptrs = std::make_shared<std::vector<uint8_t*>>();
  for (auto& o : *out) out_ptrs->push_back(o.data());
  auto erased_copy = std::make_shared<std::vector<uint32_t>>(std::move(erased));

  benchmark::RegisterBenchmark(
      name.c_str(),
      [codec, cluster, available, avail_ptrs, erased_copy, out, out_ptrs](
          benchmark::State& state) {
        // Warm the decode-program cache outside the timed region.
        codec->reconstruct(*available, avail_ptrs->data(), *erased_copy, out_ptrs->data(),
                           cluster->frag_len);
        for (auto _ : state) {
          codec->reconstruct(*available, avail_ptrs->data(), *erased_copy, out_ptrs->data(),
                             cluster->frag_len);
          benchmark::ClobberMemory();
        }
        state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                                static_cast<int64_t>(cluster->n * cluster->frag_len));
      });
}

}  // namespace xorec::bench
