// E2 — §7.2: throughput of the unoptimized P_enc across block sizes, with
// the byte-wise xor1 kernel vs the 32-byte SIMD xor32 kernel.
//
// Paper's intel row (GB/s):
//   xor1:  B=64 -> 0.16
//   xor32: 64/128/256/512/1K/2K/4K -> 0.62 1.12 2.05 3.02 4.03 4.78 4.72
// The reproduction target is the *shape*: xor32 >> xor1, throughput rising
// with block size and flattening/peaking near 2K-4K.
#include "bench_common.hpp"

using namespace xorec;
using namespace xorec::bench;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  const size_t n = 10, p = 4;
  auto cluster = std::make_shared<RsCluster>(n, p, frag_len_for(n));

  // xor1 at B=64 only (the paper's table has a single xor1 column; the
  // scalar kernel is uniformly slow).
  {
    auto codec =
        std::make_shared<ec::RsCodec>(n, p, base_options(64, kernel::Isa::Scalar));
    register_encode("unopt_encode/xor1/B64", codec, cluster);
  }
  for (size_t block : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    auto codec =
        std::make_shared<ec::RsCodec>(n, p, base_options(block, kernel::Isa::Avx2));
    register_encode("unopt_encode/xor32/B" + std::to_string(block), codec, cluster);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
