// E10 — Figure 1: #⊕, #M, NVar, CCap of the *optimized* coding SLPs
// (Dfs(Fu(Co(P)))) for RS(8..10, 2..4), encode and decode sides.
//
// Decode uses the paper's P_dec convention: data fragments {2,4,5,6} erased,
// truncated to the codec's parity count (p=3 -> {2,4,5}, p=2 -> {2,4}).
//
// Paper values (Enc #⊕/#M/NVar/CCap | Dec #⊕/#M/NVar/CCap):
//   RS(8,4):  121/543/79/143  | 170/747/102/166
//   RS(9,4):  132/611/83/155  | 182/829/117/189
//   RS(10,4): 146/677/88/167  | 206/923/125/205
//   RS(8,3):   75/364/45/109  | 129/561/77/141
//   RS(9,3):   87/417/58/128  | 144/641/91/163
//   RS(10,3):  96/471/69/148  | 145/661/85/165
//   RS(8,2):   26/180/17/80   |  65/286/38/102
//   RS(9,2):   29/202/19/90   |  73/322/42/113
//   RS(10,2):  30/222/19/98   |  77/352/50/130
#include <cstdio>
#include <memory>
#include <vector>

#include "api/xorec.hpp"
#include "ec/rs_codec.hpp"
#include "slp/metrics.hpp"

using namespace xorec;

namespace {

/// The same measures for the registry's non-RS families, through the
/// generic plan interface: encode SLP from encode_pipeline(), decode SLP
/// from the single-block repair plan (data block 0 lost, everything else
/// available) — the repair shape the locality/piggyback families optimize.
void print_family_stats(const char* spec) {
  const auto codec = make_codec(spec);
  const auto& enc = *codec->encode_pipeline();
  const auto em = slp::measure(enc.final_program(), enc.final_form());

  std::vector<uint32_t> available;
  for (uint32_t id = 1; id < codec->total_fragments(); ++id) available.push_back(id);
  const auto plan = codec->plan_reconstruct(available, {0});
  const auto& dec = *plan->decode_pipeline();
  const auto dm = slp::measure(dec.final_program(), dec.final_form());

  std::printf("%-18s | %5zu %5zu %5zu %5zu | %5zu %5zu %5zu %5zu\n", spec,
              em.instructions, em.mem_accesses, em.nvar, em.ccap, dm.instructions,
              dm.mem_accesses, dm.nvar, dm.ccap);
}

}  // namespace

int main() {
  std::printf("Figure 1: optimized coding SLP measures (Dfs(Fu(XorRePair(P))))\n");
  std::printf("%-9s | %5s %5s %5s %5s | %5s %5s %5s %5s\n", "codec", "E#x", "E#M", "ENV",
              "ECC", "D#x", "D#M", "DNV", "DCC");
  for (size_t p : {4, 3, 2}) {
    for (size_t d : {8, 9, 10}) {
      ec::CodecOptions opt;
      opt.exec.block_size = 1024;
      ec::RsCodec codec(d, p, opt);
      const auto& enc = *codec.encode_pipeline();
      const auto em = slp::measure(*enc.scheduled, slp::ExecForm::Fused);

      std::vector<uint32_t> erased{2, 4, 5, 6};
      erased.resize(p);
      const auto dec = codec.decode_program(erased);
      const auto dm = slp::measure(*dec->pipeline.scheduled, slp::ExecForm::Fused);

      std::printf("RS(%2zu,%zu)  | %5zu %5zu %5zu %5zu | %5zu %5zu %5zu %5zu\n", d, p,
                  em.instructions, em.mem_accesses, em.nvar, em.ccap, dm.instructions,
                  dm.mem_accesses, dm.nvar, dm.ccap);
    }
  }
  std::printf("\nregistry families beyond RS (single-block repair as the decode "
              "side):\n");
  std::printf("%-18s | %5s %5s %5s %5s | %5s %5s %5s %5s\n", "codec", "E#x", "E#M",
              "ENV", "ECC", "D#x", "D#M", "DNV", "DCC");
  for (const char* spec : {"evenodd(8)", "rdp(8)", "star(8)", "rs16(8,2)",
                           "lrc(8,2,2)", "piggyback(8,3,2)", "sparse(8,3,45,1)"})
    print_family_stats(spec);

  std::printf("\n(#x follows the paper's fused-instruction count; see DESIGN.md "
              "metric conventions.)\n");
  return 0;
}
