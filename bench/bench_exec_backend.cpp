// Execution-backend comparison: the lowered straight-line programs
// (exec=lowered — pre-resolved fixed-arity kernels, accumulate fusion,
// optional streaming stores) against the interpreting executor
// (exec=interp) on the same compiled plans, for rs/cauchy/lrc at the
// default block size, with the isal-style baseline as the yardstick the
// paper measures against.
//
// Artifact: BENCH_exec_backend.json (override with XOREC_EXEC_JSON) in the
// shared bench_json.hpp schema — one encode and one reconstruct throughput
// record per family x backend, plus the isal baseline.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace xorec;
using namespace xorec::bench;

namespace {

const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs = {"rs(6,3)", "cauchy(6,3)", "lrc(6,2,2)"};
  return specs;
}

const char* backend_extras[] = {"@exec=interp", "@exec=lowered"};
const char* backend_names[] = {"interp", "lowered"};

/// One ~20 ms throughput sample of `fn` over `bytes_per_call`, in GB/s.
/// The caller interleaves samples across the arms under comparison; one
/// sample is deliberately short so clock/thermal drift lands on both arms.
template <typename Fn>
double sample_gbps(size_t bytes_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    if (sec >= 0.02 || iters >= (1u << 20))
      return static_cast<double>(bytes_per_call) * static_cast<double>(iters) / sec / 1e9;
    iters = sec > 0 ? std::max(iters * 2, static_cast<size_t>(0.025 * iters / sec))
                    : iters * 2;
  }
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One backend arm of a family: codec, pre-encoded cluster, and a
/// single-data-fragment-erasure reconstruct plan (recoverable in every
/// family). Sampling is split out so arms can be measured interleaved.
struct Arm {
  std::string label;
  std::shared_ptr<const Codec> codec;
  std::shared_ptr<Cluster> cluster;
  std::shared_ptr<DecodeFixture> fix;
  std::shared_ptr<const ReconstructPlan> plan;
  size_t bytes = 0;

  Arm(const std::string& spec, std::string lbl)
      : label(std::move(lbl)),
        codec(codec_for(spec)),
        cluster(std::make_shared<Cluster>(*codec)),
        fix(std::make_shared<DecodeFixture>(*codec, cluster, std::vector<uint32_t>{0})),
        plan(codec->plan_reconstruct(fix->available, fix->erased)),
        bytes(cluster->n * cluster->frag_len) {}

  double sample_encode() const {
    return sample_gbps(bytes, [&] {
      codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(),
                    cluster->frag_len);
      benchmark::ClobberMemory();
    });
  }
  double sample_reconstruct() const {
    return sample_gbps(bytes, [&] {
      plan->execute(fix->avail_ptrs.data(), fix->out_ptrs.data(), cluster->frag_len);
      benchmark::ClobberMemory();
    });
  }
};

constexpr int kSamples = 15;

/// Measure a set of arms interleaved (round-robin per sample) and append a
/// median encode + reconstruct record per arm. Interleaving is what makes
/// the interp/lowered ratio trustworthy on a busy host: sequential
/// measurement charges any slowdown over the run to whichever arm ran last.
/// For two arms it also records the median of the PER-SAMPLE arm1/arm0
/// ratios — adjacent samples share drift state, so the paired ratio cancels
/// it where a ratio of independent medians would not.
void measure_interleaved(const std::string& family, const std::vector<const Arm*>& arms,
                         std::vector<BenchRecord>& records) {
  for (const Arm* a : arms) {  // warm: plans compiled, caches primed
    a->sample_encode();
    a->sample_reconstruct();
  }
  std::vector<std::vector<double>> enc(arms.size()), dec(arms.size());
  for (int s = 0; s < kSamples; ++s)
    for (size_t i = 0; i < arms.size(); ++i) {
      enc[i].push_back(arms[i]->sample_encode());
      dec[i].push_back(arms[i]->sample_reconstruct());
    }
  for (size_t i = 0; i < arms.size(); ++i) {
    records.push_back({"exec_backend/encode", arms[i]->label, "GBps", median(enc[i])});
    records.push_back(
        {"exec_backend/reconstruct", arms[i]->label, "GBps", median(dec[i])});
  }
  if (arms.size() == 2) {
    std::vector<double> enc_r, dec_r;
    for (int s = 0; s < kSamples; ++s) {
      enc_r.push_back(enc[1][s] / enc[0][s]);
      dec_r.push_back(dec[1][s] / dec[0][s]);
    }
    records.push_back(
        {"exec_backend/encode_speedup", family + "/lowered_over_interp", "x", median(enc_r)});
    records.push_back({"exec_backend/reconstruct_speedup", family + "/lowered_over_interp",
                       "x", median(dec_r)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  // Console view: google-benchmark entries per family x backend + baseline.
  for (const std::string& spec : family_specs()) {
    for (int b = 0; b < 2; ++b) {
      auto codec = codec_for(spec + backend_extras[b]);
      auto cluster = std::make_shared<Cluster>(*codec);
      const std::string tag = spec + "/" + backend_names[b];
      register_encode("exec_encode/" + tag, codec, cluster);
      register_decode_plan("exec_reconstruct/" + tag, codec, cluster, {0});
    }
  }
  {
    auto isal = codec_for("isal(6,3)");
    auto cluster = std::make_shared<Cluster>(*isal);
    register_encode("exec_encode/isal(6,3)/baseline", isal, cluster);
    register_decode_plan("exec_reconstruct/isal(6,3)/baseline", isal, cluster, {0});
  }

  benchmark::RunSpecifiedBenchmarks();

  // Artifact: hand-timed so the JSON does not depend on benchmark's
  // reporter; same codecs, same single-erasure reconstruct. Per family the
  // two backends are sampled interleaved (see measure_interleaved).
  std::vector<BenchRecord> records;
  for (const std::string& spec : family_specs()) {
    Arm interp(spec + backend_extras[0], spec + "/" + backend_names[0]);
    Arm lowered(spec + backend_extras[1], spec + "/" + backend_names[1]);
    measure_interleaved(spec, {&interp, &lowered}, records);
  }
  {
    Arm isal("isal(6,3)", "isal(6,3)/baseline");
    measure_interleaved("isal(6,3)", {&isal}, records);
  }

  const char* env = std::getenv("XOREC_EXEC_JSON");
  const std::string path = env && *env ? env : "BENCH_exec_backend.json";
  std::ofstream out(path);
  write_bench_json(out, "bench_exec_backend",
                   {{"families", "rs(6,3) cauchy(6,3) lrc(6,2,2)"},
                    {"baseline", "isal(6,3)"},
                    {"erasure", "fragment 0"},
                    {"object_bytes", std::to_string(kDataBytes)}},
                   records);
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());

  // The headline claim, spelled out on the console: lowered >= interp.
  for (size_t i = 0; i + 1 < records.size(); ++i)
    if (records[i].name == "exec_backend/encode_speedup")
      std::printf("%-12s lowered/interp: encode %.2fx  reconstruct %.2fx\n",
                  records[i].config.substr(0, records[i].config.find('/')).c_str(),
                  records[i].value, records[i + 1].value);

  benchmark::Shutdown();
  return 0;
}
