// Execution-backend comparison: the lowered straight-line programs
// (exec=lowered — pre-resolved fixed-arity kernels, accumulate fusion,
// optional streaming stores) and the runtime-compiled native plans
// (exec=jit — runtime/codegen_c -> cc -O2 -shared -> dlopen, served from
// the cross-process artifact cache) against the interpreting executor
// (exec=interp) on the same compiled plans, for rs/cauchy/lrc at the
// default block size, with the isal-style baseline as the yardstick the
// paper measures against.
//
// Artifact: BENCH_exec_backend.json (override with XOREC_EXEC_JSON) in the
// shared bench_json.hpp schema — one encode and one reconstruct throughput
// record per family x backend, pairwise speedup ratios, the isal baseline,
// and per-family jit activation rows: compiler wall time on a cold artifact
// cache vs dlopen wall time on a warm one (the "second process pays only a
// load" claim, measured).
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "runtime/jit_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace xorec;
using namespace xorec::bench;

namespace {

const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs = {"rs(6,3)", "cauchy(6,3)", "lrc(6,2,2)"};
  return specs;
}

/// Backends under comparison. jit joins only when a host compiler is
/// available — without one the arm would silently measure the lowered
/// fallback and report it as jit.
const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n = {"interp", "lowered"};
    if (runtime::JitCache::available()) n.push_back("jit");
    return n;
  }();
  return names;
}

/// One ~20 ms throughput sample of `fn` over `bytes_per_call`, in GB/s.
/// The caller interleaves samples across the arms under comparison; one
/// sample is deliberately short so clock/thermal drift lands on both arms.
template <typename Fn>
double sample_gbps(size_t bytes_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    if (sec >= 0.02 || iters >= (1u << 20))
      return static_cast<double>(bytes_per_call) * static_cast<double>(iters) / sec / 1e9;
    iters = sec > 0 ? std::max(iters * 2, static_cast<size_t>(0.025 * iters / sec))
                    : iters * 2;
  }
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One backend arm of a family: codec, pre-encoded cluster, and a
/// single-data-fragment-erasure reconstruct plan (recoverable in every
/// family). Sampling is split out so arms can be measured interleaved.
struct Arm {
  std::string backend;  // "interp" | "lowered" | "jit" | "baseline"
  std::string label;    // "<family>/<backend>"
  std::shared_ptr<const Codec> codec;
  std::shared_ptr<Cluster> cluster;
  std::shared_ptr<DecodeFixture> fix;
  std::shared_ptr<const ReconstructPlan> plan;
  size_t bytes = 0;

  Arm(const std::string& spec, const std::string& family, std::string backend_name)
      : backend(std::move(backend_name)),
        label(family + "/" + backend),
        codec(codec_for(spec)),
        cluster(std::make_shared<Cluster>(*codec)),
        fix(std::make_shared<DecodeFixture>(*codec, cluster, std::vector<uint32_t>{0})),
        plan(codec->plan_reconstruct(fix->available, fix->erased)),
        bytes(cluster->n * cluster->frag_len) {}

  double sample_encode() const {
    return sample_gbps(bytes, [&] {
      codec->encode(cluster->data_ptrs.data(), cluster->parity_ptrs.data(),
                    cluster->frag_len);
      benchmark::ClobberMemory();
    });
  }
  double sample_reconstruct() const {
    return sample_gbps(bytes, [&] {
      plan->execute(fix->avail_ptrs.data(), fix->out_ptrs.data(), cluster->frag_len);
      benchmark::ClobberMemory();
    });
  }
};

constexpr int kSamples = 15;

/// Measure a set of arms interleaved (round-robin per sample) and append a
/// median encode + reconstruct record per arm. Interleaving is what makes
/// the backend ratios trustworthy on a busy host: sequential measurement
/// charges any slowdown over the run to whichever arm ran last. For every
/// arm pair it also records the median of the PER-SAMPLE ratios — adjacent
/// samples share drift state, so the paired ratio cancels it where a ratio
/// of independent medians would not.
void measure_interleaved(const std::string& family, const std::vector<const Arm*>& arms,
                         std::vector<BenchRecord>& records) {
  for (const Arm* a : arms) {  // warm: plans compiled, caches primed
    a->sample_encode();
    a->sample_reconstruct();
  }
  std::vector<std::vector<double>> enc(arms.size()), dec(arms.size());
  for (int s = 0; s < kSamples; ++s)
    for (size_t i = 0; i < arms.size(); ++i) {
      enc[i].push_back(arms[i]->sample_encode());
      dec[i].push_back(arms[i]->sample_reconstruct());
    }
  for (size_t i = 0; i < arms.size(); ++i) {
    records.push_back({"exec_backend/encode", arms[i]->label, "GBps", median(enc[i])});
    records.push_back(
        {"exec_backend/reconstruct", arms[i]->label, "GBps", median(dec[i])});
  }
  for (size_t i = 0; i < arms.size(); ++i)
    for (size_t j = i + 1; j < arms.size(); ++j) {
      const std::string pair = family + "/" + arms[j]->backend + "_over_" + arms[i]->backend;
      std::vector<double> enc_r, dec_r;
      for (int s = 0; s < kSamples; ++s) {
        enc_r.push_back(enc[j][s] / enc[i][s]);
        dec_r.push_back(dec[j][s] / dec[i][s]);
      }
      records.push_back({"exec_backend/encode_speedup", pair, "x", median(enc_r)});
      records.push_back({"exec_backend/reconstruct_speedup", pair, "x", median(dec_r)});
    }
}

/// Per-family warm-vs-cold jit activation: against a FRESH artifact cache
/// dir, building the codec invokes the host compiler (cold row = compiler
/// wall time); clearing only the in-process memo and rebuilding activates
/// the same plan by dlopen alone (warm row = load wall time, the cost a
/// second process pays against a populated cache — the < 5 ms claim).
/// `cache=private` keeps the shared plan cache from short-circuiting the
/// rebuild with the already-jitted Executor.
void measure_jit_activation(const std::string& spec, std::vector<BenchRecord>& records) {
  using runtime::JitCache;
  if (!JitCache::available()) return;

  char dir[] = "/tmp/xorec_bench_jit_XXXXXX";
  if (!mkdtemp(dir)) return;
  const char* prev = std::getenv("XOREC_JIT_CACHE_DIR");
  const std::string saved = prev ? prev : "";
  setenv("XOREC_JIT_CACHE_DIR", dir, 1);

  auto& jc = JitCache::instance();
  const std::string jit_spec = spec + "@exec=jit,cache=private";

  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();
  auto cold = codec_for(jit_spec);  // encode plan jit-compiled at construction
  const auto s1 = runtime::jit_cache_stats();

  jc.clear_memory_cache();
  const auto s2 = runtime::jit_cache_stats();
  auto warm = codec_for(jit_spec);  // same fingerprint: dlopen, no compiler
  const auto s3 = runtime::jit_cache_stats();

  if (prev)
    setenv("XOREC_JIT_CACHE_DIR", saved.c_str(), 1);
  else
    unsetenv("XOREC_JIT_CACHE_DIR");

  if (s1.compiles == s0.compiles) return;  // fell back; nothing to report
  const double compile_ms = static_cast<double>(s1.compile_ns - s0.compile_ns) / 1e6;
  const double warm_ms = static_cast<double>(s3.load_ns - s2.load_ns) / 1e6;
  records.push_back({"exec_backend/jit_compile", spec, "ms", compile_ms});
  records.push_back({"exec_backend/jit_activation", spec + "/cold", "ms", compile_ms});
  records.push_back({"exec_backend/jit_activation", spec + "/warm", "ms", warm_ms});
  records.push_back({"exec_backend/jit_warm_compiles", spec, "count",
                     static_cast<double>(s3.compiles - s2.compiles)});
  std::printf("%-12s jit activation: cold %.2f ms (compile)  warm %.3f ms (load)%s\n",
              spec.c_str(), compile_ms, warm_ms,
              s3.compiles == s2.compiles ? "" : "  [UNEXPECTED recompile]");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  // Console view: google-benchmark entries per family x backend + baseline.
  for (const std::string& spec : family_specs()) {
    for (const std::string& name : backend_names()) {
      auto codec = codec_for(spec + "@exec=" + name);
      auto cluster = std::make_shared<Cluster>(*codec);
      const std::string tag = spec + "/" + name;
      register_encode("exec_encode/" + tag, codec, cluster);
      register_decode_plan("exec_reconstruct/" + tag, codec, cluster, {0});
    }
  }
  {
    auto isal = codec_for("isal(6,3)");
    auto cluster = std::make_shared<Cluster>(*isal);
    register_encode("exec_encode/isal(6,3)/baseline", isal, cluster);
    register_decode_plan("exec_reconstruct/isal(6,3)/baseline", isal, cluster, {0});
  }

  benchmark::RunSpecifiedBenchmarks();

  // Artifact: hand-timed so the JSON does not depend on benchmark's
  // reporter; same codecs, same single-erasure reconstruct. Per family the
  // backends are sampled interleaved (see measure_interleaved).
  std::vector<BenchRecord> records;
  for (const std::string& spec : family_specs()) {
    std::vector<Arm> arms;
    arms.reserve(backend_names().size());
    for (const std::string& name : backend_names())
      arms.emplace_back(spec + "@exec=" + name, spec, name);
    std::vector<const Arm*> ptrs;
    for (const Arm& a : arms) ptrs.push_back(&a);
    measure_interleaved(spec, ptrs, records);
    measure_jit_activation(spec, records);
  }
  {
    Arm isal("isal(6,3)", "isal(6,3)", "baseline");
    measure_interleaved("isal(6,3)", {&isal}, records);
  }

  const char* env = std::getenv("XOREC_EXEC_JSON");
  const std::string path = env && *env ? env : "BENCH_exec_backend.json";
  std::ofstream out(path);
  write_bench_json(out, "bench_exec_backend",
                   {{"families", "rs(6,3) cauchy(6,3) lrc(6,2,2)"},
                    {"baseline", "isal(6,3)"},
                    {"erasure", "fragment 0"},
                    {"object_bytes", std::to_string(kDataBytes)},
                    {"jit_available", runtime::JitCache::available() ? "1" : "0"}},
                   records);
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());

  // The headline claims, spelled out on the console: lowered >= interp and
  // jit >= lowered. Speedup records are pushed enc/dec adjacent per pair.
  for (size_t i = 0; i + 1 < records.size(); ++i)
    if (records[i].name == "exec_backend/encode_speedup")
      std::printf("%-28s encode %.2fx  reconstruct %.2fx\n", records[i].config.c_str(),
                  records[i].value, records[i + 1].value);

  benchmark::Shutdown();
  return 0;
}
