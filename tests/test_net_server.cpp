// NetServer + net::Client over real loopback TCP (plus the server's shared
// UDP socket): remote encode matches local encode byte for byte, remote
// reconstruct is a wire-served degraded read, malformed and unsatisfiable
// requests come back as clean Error frames on a connection that stays
// usable, and the per-pool ServiceStats net counters see the traffic.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/service.hpp"
#include "net/client.hpp"
#include "net/datagram.hpp"
#include "net/server.hpp"

using namespace xorec;
using namespace xorec::net;

namespace {

constexpr uint32_t kK = 6, kM = 4;
constexpr size_t kFragLen = 1024;
const char* kSpec = "rs(6,4)";

std::vector<std::vector<uint8_t>> make_data() {
  std::vector<std::vector<uint8_t>> data(kK, std::vector<uint8_t>(kFragLen));
  uint64_t x = 0xBEEF;
  for (auto& frag : data)
    for (auto& b : frag) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<uint8_t>(x);
    }
  return data;
}

/// Server + started lifetime for one test.
struct ServerFixture {
  CodecService service;
  NetServer server;
  ServerFixture() : server(service, {}) { server.start(); }
  ~ServerFixture() { server.stop(); }
};

}  // namespace

TEST(NetServer, PortsAreBoundBeforeStart) {
  CodecService service;
  NetServer server(service, {});
  // Ephemeral ports are resolved at construction — known before serving.
  EXPECT_GT(server.tcp_port(), 0);
  EXPECT_GT(server.udp_port(), 0);
  server.start();
  server.stop();
  server.stop();  // idempotent
}

TEST(NetServer, RestartedServerStillDeliversResponses) {
  // Regression: stop() latches the completion-thread stop flag; before
  // start() learned to reset it, a restarted server's completion thread
  // exited immediately and encode responses were never delivered. Ping is
  // answered inline by the event loop, so only a codec request (whose
  // response rides the completion thread) can detect this — run it with a
  // timeout so a regressed build fails instead of hanging forever.
  CodecService service;
  NetServer server(service, {});
  server.start();
  server.stop();
  server.start();  // the restart under test

  struct EncodeState {
    std::vector<std::vector<uint8_t>> data = make_data();
    std::vector<const uint8_t*> data_ptrs;
    std::vector<std::vector<uint8_t>> out{kM, std::vector<uint8_t>(kFragLen)};
    std::vector<uint8_t*> out_ptrs;
  };
  auto st = std::make_shared<EncodeState>();
  for (uint32_t i = 0; i < kK; ++i) st->data_ptrs.push_back(st->data[i].data());
  for (uint32_t i = 0; i < kM; ++i) st->out_ptrs.push_back(st->out[i].data());

  auto done = std::make_shared<std::promise<bool>>();
  std::future<bool> fut = done->get_future();
  const uint16_t port = server.tcp_port();
  // Detached + shared state: if the encode wedges (the pre-fix behavior),
  // the thread must not dangle into destroyed stack frames while we report
  // the failure; server.stop() below closes the connection, the client
  // throws, and the thread finishes against its shared copy.
  std::thread([st, done, port] {
    try {
      Client client("127.0.0.1", port);
      client.encode(kSpec, st->data_ptrs.data(), kK, st->out_ptrs.data(), kM, kFragLen);
      done->set_value(true);
    } catch (...) {
      done->set_value(false);
    }
  }).detach();

  if (fut.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
    ADD_FAILURE() << "encode against a restarted server never completed "
                     "(completion thread dead?)";
    server.stop();  // closes the connection; the client throws and the thread ends
    (void)fut.wait_for(std::chrono::seconds(10));
    return;
  }
  EXPECT_TRUE(fut.get()) << "encode against a restarted server failed";

  // The restarted server computed real parity, not garbage.
  const auto codec = make_codec(kSpec);
  std::vector<std::vector<uint8_t>> local(kM, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> local_ptrs(kM);
  for (uint32_t i = 0; i < kM; ++i) local_ptrs[i] = local[i].data();
  codec->encode(st->data_ptrs.data(), local_ptrs.data(), kFragLen);
  for (uint32_t i = 0; i < kM; ++i) EXPECT_EQ(st->out[i], local[i]) << "parity " << i;
  server.stop();
}

TEST(NetServer, PingAndRemoteEncodeMatchLocal) {
  ServerFixture fx;
  Client client("127.0.0.1", fx.server.tcp_port());
  client.ping();

  const auto data = make_data();
  std::vector<const uint8_t*> data_ptrs(kK);
  for (uint32_t i = 0; i < kK; ++i) data_ptrs[i] = data[i].data();

  std::vector<std::vector<uint8_t>> remote(kM, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> remote_ptrs(kM);
  for (uint32_t i = 0; i < kM; ++i) remote_ptrs[i] = remote[i].data();
  client.encode(kSpec, data_ptrs.data(), kK, remote_ptrs.data(), kM, kFragLen);

  const auto codec = make_codec(kSpec);
  std::vector<std::vector<uint8_t>> local(kM, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> local_ptrs(kM);
  for (uint32_t i = 0; i < kM; ++i) local_ptrs[i] = local[i].data();
  codec->encode(data_ptrs.data(), local_ptrs.data(), kFragLen);

  for (uint32_t i = 0; i < kM; ++i) EXPECT_EQ(remote[i], local[i]) << "parity " << i;

  const NetServerStats stats = fx.server.stats();
  EXPECT_GE(stats.requests, 1u);
  EXPECT_GE(stats.responses, 2u);  // pong + encode response
  EXPECT_GT(stats.tcp_bytes_in, 0u);
  EXPECT_GT(stats.tcp_bytes_out, 0u);

  // The per-pool net counters saw exactly this pool's traffic.
  bool seen = false;
  for (const auto& pool : fx.service.stats().pools)
    if (pool.spec == kSpec) {
      seen = true;
      EXPECT_GE(pool.net_requests, 1u);
      EXPECT_GT(pool.net_bytes_in, 0u);
      EXPECT_GT(pool.net_bytes_out, 0u);
    }
  EXPECT_TRUE(seen);
}

TEST(NetServer, RemoteReconstructIsAWireServedDegradedRead) {
  ServerFixture fx;
  Client client("127.0.0.1", fx.server.tcp_port());

  const auto data = make_data();
  std::vector<const uint8_t*> data_ptrs(kK);
  for (uint32_t i = 0; i < kK; ++i) data_ptrs[i] = data[i].data();
  const auto codec = make_codec(kSpec);
  std::vector<std::vector<uint8_t>> parity(kM, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> parity_ptrs(kM);
  for (uint32_t i = 0; i < kM; ++i) parity_ptrs[i] = parity[i].data();
  codec->encode(data_ptrs.data(), parity_ptrs.data(), kFragLen);

  // Erase data strips 0 and 3; ship everything else as survivors.
  const std::vector<uint32_t> erased{0, 3};
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t i = 0; i < kK; ++i)
    if (i != 0 && i != 3) {
      available.push_back(i);
      avail_ptrs.push_back(data[i].data());
    }
  for (uint32_t i = 0; i < kM; ++i) {
    available.push_back(kK + i);
    avail_ptrs.push_back(parity[i].data());
  }

  std::vector<std::vector<uint8_t>> rebuilt(2, std::vector<uint8_t>(kFragLen, 0xEE));
  std::vector<uint8_t*> out_ptrs{rebuilt[0].data(), rebuilt[1].data()};
  client.reconstruct(kSpec, available, avail_ptrs.data(), erased, out_ptrs.data(),
                     kFragLen);
  EXPECT_EQ(rebuilt[0], data[0]);
  EXPECT_EQ(rebuilt[1], data[3]);
}

TEST(NetServer, ErrorsAreCleanAndTheConnectionSurvives) {
  ServerFixture fx;
  Client client("127.0.0.1", fx.server.tcp_port());
  const auto data = make_data();
  std::vector<const uint8_t*> data_ptrs(kK);
  for (uint32_t i = 0; i < kK; ++i) data_ptrs[i] = data[i].data();
  std::vector<std::vector<uint8_t>> out(kM, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> out_ptrs(kM);
  for (uint32_t i = 0; i < kM; ++i) out_ptrs[i] = out[i].data();

  // Unknown spec: the server's Error frame becomes the exception text.
  EXPECT_THROW(
      client.encode("bogus(3,2)", data_ptrs.data(), kK, out_ptrs.data(), kM, kFragLen),
      std::runtime_error);

  // frag_len violating the codec's geometry: rejected, not crashed.
  EXPECT_THROW(client.encode(kSpec, data_ptrs.data(), kK, out_ptrs.data(), kM, 100),
               std::runtime_error);

  // More erasures than the code tolerates: plan_reconstruct's refusal
  // travels back as an Error frame.
  std::vector<uint32_t> available{5};
  const uint8_t* avail_ptrs[] = {data[5].data()};
  std::vector<uint32_t> erased{0, 1, 2, 3, 4};
  std::vector<std::vector<uint8_t>> rebuilt(5, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> rebuilt_ptrs(5);
  for (size_t i = 0; i < 5; ++i) rebuilt_ptrs[i] = rebuilt[i].data();
  EXPECT_THROW(client.reconstruct(kSpec, available, avail_ptrs, erased,
                                  rebuilt_ptrs.data(), kFragLen),
               std::runtime_error);

  // After three rejected requests the connection is still serving.
  client.ping();
  client.encode(kSpec, data_ptrs.data(), kK, out_ptrs.data(), kM, kFragLen);
  EXPECT_GE(fx.server.stats().errors, 3u);
}

TEST(NetServer, ManySequentialRequestsAndSecondClient) {
  ServerFixture fx;
  Client a("127.0.0.1", fx.server.tcp_port());
  Client b("127.0.0.1", fx.server.tcp_port());
  const auto data = make_data();
  std::vector<const uint8_t*> data_ptrs(kK);
  for (uint32_t i = 0; i < kK; ++i) data_ptrs[i] = data[i].data();
  std::vector<std::vector<uint8_t>> out(kM, std::vector<uint8_t>(kFragLen));
  std::vector<uint8_t*> out_ptrs(kM);
  for (uint32_t i = 0; i < kM; ++i) out_ptrs[i] = out[i].data();

  for (int round = 0; round < 16; ++round) {
    Client& c = round & 1 ? b : a;
    c.encode(kSpec, data_ptrs.data(), kK, out_ptrs.data(), kM, kFragLen);
  }
  const NetServerStats stats = fx.server.stats();
  EXPECT_GE(stats.connections_accepted, 2u);
  EXPECT_GE(stats.requests, 16u);
}

TEST(NetServer, UdpGroupsAreServedOnTheSharedSocket) {
  ServerFixture fx;
  const auto data = make_data();
  std::vector<const uint8_t*> data_ptrs(kK);
  for (uint32_t i = 0; i < kK; ++i) data_ptrs[i] = data[i].data();

  CodecService sender_service;  // sender-side parity encodes only
  const int fd = open_udp_socket("127.0.0.1", 0);
  DatagramSender sender(fd, udp_address("127.0.0.1", fx.server.udp_port()),
                        sender_service.acquire(kSpec), LossPolicy{0.15, 42});

  const int kStripes = 10;
  int complete = 0, degraded = 0;
  for (int s = 0; s < kStripes; ++s) {
    const uint64_t group = sender.send_stripe(data_ptrs.data(), kFragLen);
    const auto ack = recv_ack(fd, 2000);
    ASSERT_TRUE(ack.has_value()) << "stripe " << s;
    EXPECT_EQ(ack->group, group);
    if (ack->status == GroupAck::kComplete) {
      ++complete;
      if (ack->strips_reconstructed > 0) ++degraded;
    }
  }
  close_socket(fd);

  EXPECT_EQ(complete, kStripes);
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(sender.stats().retransmissions, 0u);
  const NetServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.udp_groups, static_cast<size_t>(kStripes));
  EXPECT_EQ(stats.udp_unrecoverable, 0u);
  EXPECT_GE(stats.udp_degraded_reads, static_cast<size_t>(degraded));
}
