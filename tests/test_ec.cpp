// RsCodec end-to-end: encode/reconstruct round-trips across codecs, every
// erasure pattern up to p failures for RS(10,4)-sized codes, pipeline
// configuration sweeps, and API error handling.
#include <gtest/gtest.h>

#include <random>

#include "ec/layout.hpp"
#include "ec/rs_codec.hpp"

using namespace xorec;

namespace {

struct Cluster {
  std::vector<std::vector<uint8_t>> frags;  // n data + p parity
  size_t n, p, frag_len;

  Cluster(const ec::RsCodec& codec, size_t frag_len_, uint32_t seed)
      : n(codec.data_fragments()), p(codec.parity_fragments()), frag_len(frag_len_) {
    std::mt19937 rng(seed);
    frags.assign(n + p, std::vector<uint8_t>(frag_len));
    for (size_t i = 0; i < n; ++i)
      for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
    std::vector<const uint8_t*> data;
    std::vector<uint8_t*> parity;
    for (size_t i = 0; i < n; ++i) data.push_back(frags[i].data());
    for (size_t i = 0; i < p; ++i) parity.push_back(frags[n + i].data());
    codec.encode(data.data(), parity.data(), frag_len);
  }

  /// Erase `erased`, reconstruct through the codec, compare to the originals.
  void check_reconstruct(const ec::RsCodec& codec, const std::vector<uint32_t>& erased) const {
    std::vector<uint32_t> available;
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id = 0; id < n + p; ++id) {
      if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
        available.push_back(id);
        avail_ptrs.push_back(frags[id].data());
      }
    }
    std::vector<std::vector<uint8_t>> rebuilt(erased.size(),
                                              std::vector<uint8_t>(frag_len, 0xCD));
    std::vector<uint8_t*> out_ptrs;
    for (auto& r : rebuilt) out_ptrs.push_back(r.data());
    codec.reconstruct(available, avail_ptrs.data(), erased, out_ptrs.data(), frag_len);
    for (size_t i = 0; i < erased.size(); ++i)
      ASSERT_EQ(rebuilt[i], frags[erased[i]]) << "fragment " << erased[i];
  }
};

void all_patterns(size_t total, size_t k, const std::function<void(std::vector<uint32_t>&)>& f) {
  std::vector<uint32_t> pattern(k);
  std::function<void(size_t, size_t)> rec = [&](size_t start, size_t depth) {
    if (depth == k) {
      f(pattern);
      return;
    }
    for (size_t v = start; v < total; ++v) {
      pattern[depth] = static_cast<uint32_t>(v);
      rec(v + 1, depth + 1);
    }
  };
  rec(0, 0);
}

}  // namespace

TEST(RsCodec, ConstructionValidation) {
  EXPECT_THROW(ec::RsCodec(0, 4), std::invalid_argument);
  EXPECT_THROW(ec::RsCodec(10, 0), std::invalid_argument);
  EXPECT_THROW(ec::RsCodec(200, 100), std::invalid_argument);
  EXPECT_NO_THROW(ec::RsCodec(10, 4));
}

TEST(RsCodec, FragLenValidation) {
  ec::RsCodec codec(4, 2);
  std::vector<std::vector<uint8_t>> bufs(6, std::vector<uint8_t>(64));
  std::vector<const uint8_t*> data{bufs[0].data(), bufs[1].data(), bufs[2].data(),
                                   bufs[3].data()};
  std::vector<uint8_t*> parity{bufs[4].data(), bufs[5].data()};
  EXPECT_THROW(codec.encode(data.data(), parity.data(), 0), std::invalid_argument);
  EXPECT_THROW(codec.encode(data.data(), parity.data(), 13), std::invalid_argument);
  EXPECT_NO_THROW(codec.encode(data.data(), parity.data(), 64));
}

TEST(RsCodec, EncodeMatchesGfMatrixOracleInSymbolDomain) {
  // Fragments live in bit-plane layout (ec/layout.hpp): GF symbol t is
  // spread across the 8 strips. Per symbol, parity must equal the plain
  // GF(2^8) matrix application.
  const size_t n = 6, p = 3, frag_len = 40;
  ec::RsCodec codec(n, p);
  Cluster c(codec, frag_len, 42);
  const gf::Matrix parity = codec.code_matrix().select_rows({6, 7, 8});
  std::vector<std::vector<uint8_t>> sym(n + p);
  for (size_t i = 0; i < n + p; ++i)
    sym[i] = ec::fragment_to_symbols(c.frags[i].data(), frag_len);
  for (size_t t = 0; t < frag_len; ++t) {
    std::vector<uint8_t> col(n);
    for (size_t i = 0; i < n; ++i) col[i] = sym[i][t];
    const auto want = parity.apply(col);
    for (size_t i = 0; i < p; ++i)
      ASSERT_EQ(sym[n + i][t], want[i]) << "parity " << i << " symbol " << t;
  }
}

TEST(RsCodec, LayoutTransformRoundTrips) {
  std::mt19937 rng(5);
  std::vector<uint8_t> frag(128);
  for (auto& b : frag) b = static_cast<uint8_t>(rng());
  const auto sym = ec::fragment_to_symbols(frag.data(), frag.size());
  EXPECT_EQ(ec::symbols_to_fragment(sym), frag);
  EXPECT_THROW(ec::fragment_to_symbols(frag.data(), 13), std::invalid_argument);
}

TEST(RsCodec, Rs10_4AllSingleAndDoubleErasures) {
  ec::RsCodec codec(10, 4);
  Cluster c(codec, 800, 7);
  all_patterns(14, 1, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
  all_patterns(14, 2, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
}

TEST(RsCodec, Rs10_4SampledQuadErasures) {
  ec::RsCodec codec(10, 4);
  Cluster c(codec, 400, 8);
  // All-data, mixed, all-parity quads, incl. the paper's P_dec pattern
  // {2,4,5,6} (§7.5 — its SLP has 1368 XORs, the most of any decode).
  for (const std::vector<uint32_t>& e :
       {std::vector<uint32_t>{2, 4, 5, 6}, {0, 1, 2, 3}, {6, 7, 8, 9}, {0, 5, 10, 13},
        {10, 11, 12, 13}, {9, 10, 11, 12}, {0, 1, 12, 13}}) {
    c.check_reconstruct(codec, e);
  }
}

class RsCodecParams : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RsCodecParams, AllMaxErasurePatterns) {
  const auto [n, p] = GetParam();
  ec::RsCodec codec(n, p);
  Cluster c(codec, 240, static_cast<uint32_t>(n * 100 + p));
  all_patterns(n + p, p, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
}

std::string rs_param_name(const ::testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
  return "rs" + std::to_string(std::get<0>(info.param)) + "_" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Grid, RsCodecParams,
                         ::testing::Values(std::make_tuple<size_t, size_t>(4, 2),
                                           std::make_tuple<size_t, size_t>(5, 2),
                                           std::make_tuple<size_t, size_t>(6, 3),
                                           std::make_tuple<size_t, size_t>(8, 2),
                                           std::make_tuple<size_t, size_t>(8, 3),
                                           std::make_tuple<size_t, size_t>(3, 3),
                                           std::make_tuple<size_t, size_t>(2, 2),
                                           std::make_tuple<size_t, size_t>(1, 1),
                                           std::make_tuple<size_t, size_t>(7, 1)),
                         rs_param_name);

TEST(RsCodec, PipelineConfigurationsAllDecode) {
  // Every optimizer configuration must produce identical bytes.
  std::vector<ec::CodecOptions> configs;
  for (auto compress :
       {slp::CompressKind::None, slp::CompressKind::RePair, slp::CompressKind::XorRePair}) {
    for (bool fuse : {false, true}) {
      for (auto sched : {slp::ScheduleKind::None, slp::ScheduleKind::Dfs,
                         slp::ScheduleKind::Greedy}) {
        if (sched != slp::ScheduleKind::None && !fuse) continue;  // schedule needs SSA fused
        ec::CodecOptions o;
        o.pipeline = {compress, fuse, sched, 32};
        o.exec.block_size = 1024;
        configs.push_back(o);
      }
    }
  }
  ASSERT_GE(configs.size(), 9u);

  std::vector<std::vector<uint8_t>> golden;
  for (const auto& cfg : configs) {
    ec::RsCodec codec(6, 3, cfg);
    Cluster c(codec, 480, 99);  // same seed => same data
    if (golden.empty()) {
      golden = c.frags;
    } else {
      ASSERT_EQ(c.frags, golden) << "parity differs across pipeline configs";
    }
    c.check_reconstruct(codec, {0, 7, 8});
    c.check_reconstruct(codec, {1, 2, 3});
  }
}

TEST(RsCodec, CauchyFamilyWorks) {
  ec::CodecOptions opt;
  opt.family = ec::MatrixFamily::Cauchy;
  ec::RsCodec codec(8, 3, opt);
  Cluster c(codec, 320, 5);
  c.check_reconstruct(codec, {0, 4, 10});
  c.check_reconstruct(codec, {8, 9, 10});
}

TEST(RsCodec, ReconstructValidation) {
  ec::RsCodec codec(4, 2);
  Cluster c(codec, 80, 3);
  std::vector<const uint8_t*> few{c.frags[0].data(), c.frags[1].data(),
                                  c.frags[2].data()};
  std::vector<uint8_t> out(80);
  uint8_t* outp = out.data();
  // Not enough survivors.
  EXPECT_THROW(codec.reconstruct({0, 1, 2}, few.data(), {3}, &outp, 80),
               std::invalid_argument);
  // Id out of range.
  EXPECT_THROW(codec.reconstruct({0, 1, 2}, few.data(), {99}, &outp, 80), std::out_of_range);
  // Fragment both available and erased.
  std::vector<const uint8_t*> four{c.frags[0].data(), c.frags[1].data(), c.frags[2].data(),
                                   c.frags[3].data()};
  EXPECT_THROW(codec.reconstruct({0, 1, 2, 3}, four.data(), {3}, &outp, 80),
               std::invalid_argument);
}

TEST(RsCodec, DecodeProgramIsCached) {
  ec::RsCodec codec(10, 4);
  const auto a = codec.decode_program({2, 4, 5, 6});
  const auto b = codec.decode_program({2, 4, 5, 6});
  EXPECT_EQ(a.get(), b.get()) << "second lookup must hit the cache";
  const auto other = codec.decode_program({0, 1, 2, 3});
  EXPECT_NE(a.get(), other.get());
}

TEST(RsCodec, ChooseSurvivorsPrefersDataRows) {
  ec::RsCodec codec(6, 3);
  const auto s = codec.choose_survivors({0, 1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(s, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
  const auto s2 = codec.choose_survivors({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(s2, (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
}

TEST(RsCodec, MultiThreadedEncodeMatchesSingle) {
  ec::CodecOptions st, mt;
  mt.exec.threads = 4;
  ec::RsCodec a(10, 4, st), b(10, 4, mt);
  Cluster ca(a, 8000, 11), cb(b, 8000, 11);
  EXPECT_EQ(ca.frags, cb.frags);
}
