// Direct unit tests for ec::RepairLayout — the one shared id -> buffer-index
// resolution both plan builders (SLP bitmatrix core, GF-table baseline)
// freeze their repair index maps from. The conformance harness exercises it
// end to end; these tests pin the split/lookup contract itself.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "ec/repair_layout.hpp"

using xorec::ec::RepairLayout;

namespace {

// Geometry used throughout: k = 4 data (ids 0..3), 2 parity (ids 4..5).
constexpr size_t kData = 4;
constexpr size_t kTotal = 6;

}  // namespace

TEST(RepairLayout, ResolvesAvailableAndMarksAbsent) {
  // Survivors listed out of id order: positions must follow SUBMISSION
  // order (the caller's buffer order), not id order.
  const std::vector<uint32_t> available{3, 0, 5};
  const std::vector<uint32_t> erased{1, 4};
  const RepairLayout layout(kData, kTotal, available, erased);

  ASSERT_EQ(layout.pos_of_id.size(), kTotal);
  EXPECT_EQ(layout.pos_of_id[3], 0u);
  EXPECT_EQ(layout.pos_of_id[0], 1u);
  EXPECT_EQ(layout.pos_of_id[5], 2u);
  EXPECT_EQ(layout.pos_of_id[1], RepairLayout::kAbsent);
  EXPECT_EQ(layout.pos_of_id[2], RepairLayout::kAbsent);
  EXPECT_EQ(layout.pos_of_id[4], RepairLayout::kAbsent);
}

TEST(RepairLayout, SplitsErasedIntoDataAndParityKeepingOutPositions) {
  // Mixed erasures, deliberately interleaved: parity, data, parity, data.
  const std::vector<uint32_t> available{0, 2};
  const std::vector<uint32_t> erased{5, 1, 4, 3};
  const RepairLayout layout(kData, kTotal, available, erased);

  const std::vector<uint32_t> want_data{1, 3};
  const std::vector<uint32_t> want_parity{5, 4};
  EXPECT_EQ(layout.erased_data, want_data);
  EXPECT_EQ(layout.erased_parity, want_parity);
  // out_pos_* index into the caller's `out` array, which is parallel to the
  // ORIGINAL erased list — the split must remember where each id came from.
  const std::vector<size_t> want_data_pos{1, 3};
  const std::vector<size_t> want_parity_pos{0, 2};
  EXPECT_EQ(layout.out_pos_data, want_data_pos);
  EXPECT_EQ(layout.out_pos_parity, want_parity_pos);
}

TEST(RepairLayout, DataSourceReadsSurvivorBuffers) {
  const std::vector<uint32_t> available{2, 0, 4, 5};
  const std::vector<uint32_t> erased{1, 3};
  const RepairLayout layout(kData, kTotal, available, erased);

  const auto src = layout.data_source(0, layout.erased_data, layout.out_pos_data, "t");
  EXPECT_FALSE(src.from_out);
  EXPECT_EQ(src.pos, 1u);  // id 0 sits at submission position 1
}

TEST(RepairLayout, DataSourceReadsThePlansOwnOutputs) {
  // The parity step may consume data fragments the SAME plan rebuilds. The
  // (erased_order, out_pos_order) indirection lets each engine keep its own
  // decode-output ordering; resolution must land on the right `out` slot.
  const std::vector<uint32_t> available{0, 2, 4, 5};
  const std::vector<uint32_t> erased{3, 1};  // submission order
  const RepairLayout layout(kData, kTotal, available, erased);

  // Submission-order engine (GF-table): outputs parallel to `erased`.
  auto src = layout.data_source(1, layout.erased_data, layout.out_pos_data, "t");
  EXPECT_TRUE(src.from_out);
  EXPECT_EQ(src.pos, 1u);

  // Sorted-row engine (SLP codecs): decode emits ids in sorted order {1, 3}
  // but each still writes its submission slot — id 1 -> out[1], id 3 -> out[0].
  const std::vector<uint32_t> sorted_order{1, 3};
  const std::vector<size_t> sorted_out_pos{1, 0};
  src = layout.data_source(1, sorted_order, sorted_out_pos, "t");
  EXPECT_TRUE(src.from_out);
  EXPECT_EQ(src.pos, 1u);
  src = layout.data_source(3, sorted_order, sorted_out_pos, "t");
  EXPECT_TRUE(src.from_out);
  EXPECT_EQ(src.pos, 0u);
}

TEST(RepairLayout, DataSourceThrowsWhenNeitherAvailableNorErased) {
  // The documented out-of-contract case: a parity repair needs data id 1,
  // but the caller neither supplied it nor asked for it to be rebuilt.
  const std::vector<uint32_t> available{0, 2, 3, 5};
  const std::vector<uint32_t> erased{4};
  const RepairLayout layout(kData, kTotal, available, erased);

  try {
    layout.data_source(1, layout.erased_data, layout.out_pos_data, "mycodec");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mycodec"), std::string::npos);
    EXPECT_NE(what.find("list it in erased"), std::string::npos);
  }
}

TEST(RepairLayout, EmptyErasedYieldsEmptySplits) {
  const std::vector<uint32_t> available{0, 1, 2, 3};
  const RepairLayout layout(kData, kTotal, available, {});
  EXPECT_TRUE(layout.erased_data.empty());
  EXPECT_TRUE(layout.erased_parity.empty());
  EXPECT_TRUE(layout.out_pos_data.empty());
  EXPECT_TRUE(layout.out_pos_parity.empty());
}
