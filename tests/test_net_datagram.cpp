// UDP stripe transport under loss: the EC-reliability contract is that any
// group losing AT MOST m strips is delivered byte-identical via a degraded
// read (plan_reconstruct on the survivors — never a retransmission), and a
// group losing more than m strips reports "unrecoverable" cleanly instead
// of delivering wrong bytes. Exercised two ways: forced drop patterns fed
// straight into the GroupAssembler (every loss count from 0 through m+1,
// exact), and real loopback sockets with seeded random loss end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/service.hpp"
#include "net/datagram.hpp"

using namespace xorec;
using namespace xorec::net;

namespace {

constexpr uint32_t kK = 6, kM = 4;
constexpr size_t kFragLen = 512;
const char* kSpec = "rs(6,4)";

/// Deterministic stripe: k seeded data fragments + locally encoded parity.
std::vector<std::vector<uint8_t>> make_stripe() {
  std::vector<std::vector<uint8_t>> frags(kK + kM, std::vector<uint8_t>(kFragLen));
  uint64_t x = 0xD16A;
  for (uint32_t f = 0; f < kK; ++f)
    for (auto& b : frags[f]) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<uint8_t>(x);
    }
  const auto codec = make_codec(kSpec);
  std::vector<const uint8_t*> data(kK);
  std::vector<uint8_t*> parity(kM);
  for (uint32_t f = 0; f < kK; ++f) data[f] = frags[f].data();
  for (uint32_t f = 0; f < kM; ++f) parity[f] = frags[kK + f].data();
  codec->encode(data.data(), parity.data(), kFragLen);
  return frags;
}

std::vector<uint8_t> strip_packet(uint64_t group, uint32_t strip,
                                  const std::vector<uint8_t>& payload) {
  PacketHeader h;
  h.flags = strip >= kK ? kPacketFlagParity : 0;
  h.group = group;
  h.strip = strip;
  h.k = kK;
  h.m = kM;
  return build_packet(h, kSpec, payload);
}

std::vector<uint8_t> marker_packet(uint64_t group, uint32_t strips_sent) {
  PacketHeader h;
  h.flags = kPacketFlagGroupEnd;
  h.group = group;
  h.strip = strips_sent;
  h.k = kK;
  h.m = kM;
  return build_packet(h, kSpec, {});
}

/// Feed a group into a fresh assembler with `dropped` strip ids missing,
/// then run the degraded read.
std::pair<StripeGroup, RecoveryResult> transfer_with_drops(
    const std::vector<std::vector<uint8_t>>& frags, const std::vector<uint32_t>& dropped,
    CodecService& service) {
  GroupAssembler assembler;
  uint32_t sent = 0;
  for (uint32_t s = 0; s < kK + kM; ++s) {
    ++sent;  // the sender sent it; the wire ate it
    if (std::find(dropped.begin(), dropped.end(), s) != dropped.end()) continue;
    const auto pkt = strip_packet(1, s, frags[s]);
    EXPECT_FALSE(assembler.feed(pkt.data(), pkt.size()).has_value());
  }
  const auto marker = marker_packet(1, sent);
  auto group = assembler.feed(marker.data(), marker.size());
  EXPECT_TRUE(group.has_value());
  const ServiceHandle handle = service.acquire(kSpec);
  RecoveryResult recovery = recover_group(*group, handle);
  return {std::move(*group), recovery};
}

}  // namespace

// ---- forced loss patterns ----------------------------------------------------

TEST(NetDatagram, RecoversByteIdenticalUpToMLostStrips) {
  const auto frags = make_stripe();
  CodecService service;
  // Every loss count 0..m, dropping a leading run of data strips (the
  // hardest case: all losses must be rebuilt, none are parity we can shrug
  // off): complete, degraded iff data was rebuilt, bytes identical.
  for (uint32_t lost = 0; lost <= kM; ++lost) {
    std::vector<uint32_t> dropped;
    for (uint32_t s = 0; s < lost; ++s) dropped.push_back(s);
    auto [group, recovery] = transfer_with_drops(frags, dropped, service);
    EXPECT_TRUE(recovery.complete) << lost << " lost: " << recovery.error;
    EXPECT_EQ(recovery.degraded, lost > 0) << lost;
    EXPECT_EQ(recovery.reconstructed, lost) << lost;
    for (uint32_t d = 0; d < kK; ++d)
      EXPECT_EQ(std::memcmp(group.slot(d), frags[d].data(), kFragLen), 0)
          << "data strip " << d << " with " << lost << " lost";
  }
  // Mixed data + parity losses at exactly m: only the data strips need
  // rebuilding, parity losses cost nothing.
  auto [group, recovery] = transfer_with_drops(frags, {1, 4, kK, kK + 2}, service);
  EXPECT_TRUE(recovery.complete);
  EXPECT_EQ(recovery.reconstructed, 2u);  // strips 1 and 4
  for (uint32_t d = 0; d < kK; ++d)
    EXPECT_EQ(std::memcmp(group.slot(d), frags[d].data(), kFragLen), 0);
}

TEST(NetDatagram, BeyondToleranceIsCleanlyUnrecoverable) {
  const auto frags = make_stripe();
  CodecService service;
  // m + 1 = 5 lost strips: rs(6,4) cannot solve this. The group must come
  // back complete=false with a reason — and the data strips that DID arrive
  // must be untouched (no partial garbage delivery).
  auto [group, recovery] = transfer_with_drops(frags, {0, 1, 2, 3, 4}, service);
  EXPECT_FALSE(recovery.complete);
  EXPECT_FALSE(recovery.error.empty());
  EXPECT_EQ(recovery.reconstructed, 0u);
  EXPECT_EQ(std::memcmp(group.slot(5), frags[5].data(), kFragLen), 0);

  // Losing every strip (only the marker arrives) is the degenerate case.
  auto [g2, r2] = transfer_with_drops(
      frags, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, service);
  EXPECT_FALSE(r2.complete);
  EXPECT_FALSE(r2.error.empty());
}

TEST(NetDatagram, AssemblerSurvivesGarbageDuplicatesAndMixups) {
  const auto frags = make_stripe();
  GroupAssembler assembler;

  // Garbage datagrams of every length: counted, never fatal, no group.
  std::vector<uint8_t> junk(100, 0x5A);
  for (size_t len = 0; len <= junk.size(); len += 7)
    EXPECT_FALSE(assembler.feed(junk.data(), len).has_value());
  EXPECT_GT(assembler.stats().crc_drops, 0u);

  // A strip, its duplicate, and a strip whose geometry disagrees.
  const auto p0 = strip_packet(9, 0, frags[0]);
  EXPECT_FALSE(assembler.feed(p0.data(), p0.size()).has_value());
  EXPECT_FALSE(assembler.feed(p0.data(), p0.size()).has_value());
  EXPECT_EQ(assembler.stats().duplicate_strips, 1u);

  PacketHeader wrong;
  wrong.group = 9;
  wrong.strip = 1;
  wrong.k = kK + 1;  // disagrees with the group's geometry
  wrong.m = kM;
  const auto pw = build_packet(wrong, kSpec, frags[1]);
  EXPECT_FALSE(assembler.feed(pw.data(), pw.size()).has_value());
  EXPECT_EQ(assembler.stats().mismatch_drops, 1u);

  // The group still completes from the legitimate strips.
  for (uint32_t s = 1; s < kK + kM; ++s) {
    const auto p = strip_packet(9, s, frags[s]);
    assembler.feed(p.data(), p.size());
  }
  const auto marker = marker_packet(9, kK + kM);
  const auto group = assembler.feed(marker.data(), marker.size());
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->strips_received, kK + kM);
  EXPECT_EQ(assembler.stats().groups_completed, 1u);
  EXPECT_EQ(assembler.pending_groups(), 0u);
}

TEST(NetDatagram, LossPolicyIsDeterministicAndRateish) {
  const LossPolicy none{0.0, 7};
  const LossPolicy some{0.2, 7};
  const LossPolicy same{0.2, 7};
  const LossPolicy other{0.2, 8};
  size_t drops = 0, agree = 0, differ = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_FALSE(none.drop(i));
    drops += some.drop(i);
    agree += some.drop(i) == same.drop(i);
    differ += some.drop(i) != other.drop(i);
  }
  EXPECT_EQ(agree, 10000u);           // pure function of (seed, index)
  EXPECT_GT(differ, 0u);              // the seed matters
  EXPECT_NEAR(static_cast<double>(drops) / 10000.0, 0.2, 0.02);
}

// ---- real loopback sockets ---------------------------------------------------

TEST(NetDatagram, LoopbackSeededLossEndToEnd) {
  const auto frags = make_stripe();
  std::vector<const uint8_t*> data_ptrs(kK);
  for (uint32_t f = 0; f < kK; ++f) data_ptrs[f] = frags[f].data();

  CodecService service;
  const int rx = open_udp_socket("127.0.0.1", 0);
  const int tx = open_udp_socket("127.0.0.1", 0);
  // Seed 42 at 15% is the verified-safe CI seed: no group of this run loses
  // more than m strips (checked here — delivery below depends on it).
  DatagramSender sender(tx, udp_address("127.0.0.1", local_udp_port(rx)),
                        service.acquire(kSpec), LossPolicy{0.15, 42});
  DatagramReceiver receiver(rx, service);

  const int kStripes = 20;
  int delivered = 0, degraded = 0;
  for (int s = 0; s < kStripes; ++s) {
    sender.send_stripe(data_ptrs.data(), kFragLen);
    const auto result = receiver.receive_group(2000);
    ASSERT_TRUE(result.has_value()) << "stripe " << s;
    ASSERT_TRUE(result->recovery.complete)
        << "stripe " << s << ": " << result->recovery.error;
    ++delivered;
    if (result->recovery.degraded) ++degraded;
    EXPECT_EQ(result->group.group, static_cast<uint64_t>(s));
    for (uint32_t d = 0; d < kK; ++d)
      EXPECT_EQ(std::memcmp(result->group.slot(d), frags[d].data(), kFragLen), 0);
  }

  const SenderStats& st = sender.stats();
  EXPECT_EQ(delivered, kStripes);
  EXPECT_GT(st.packets_dropped, 0u);   // loss really was injected
  EXPECT_GT(degraded, 0);              // and recovered by degraded reads
  EXPECT_EQ(st.retransmissions, 0u);   // never by retransmission
  EXPECT_EQ(receiver.stats().groups_unrecoverable, 0u);
  EXPECT_EQ(st.stripes_sent, static_cast<size_t>(kStripes));
  EXPECT_EQ(st.markers_sent, static_cast<size_t>(kStripes));

  close_socket(tx);
  close_socket(rx);
}

TEST(NetDatagram, AckPacketsRoundTrip) {
  GroupAck ack;
  ack.group = 77;
  ack.strips_received = 8;
  ack.strips_reconstructed = 2;
  ack.status = GroupAck::kComplete;
  const auto pkt = build_ack_packet(ack, kK, kM);

  PacketView view;
  ASSERT_EQ(decode_packet(pkt.data(), pkt.size(), view), FrameError::Ok);
  EXPECT_TRUE(view.header.flags & kPacketFlagAck);
  GroupAck out;
  ASSERT_TRUE(parse_ack(view, out));
  EXPECT_EQ(out.group, 77u);
  EXPECT_EQ(out.strips_received, 8u);
  EXPECT_EQ(out.strips_reconstructed, 2u);
  EXPECT_EQ(out.status, GroupAck::kComplete);

  // A non-ack packet is not an ack.
  const auto strip = strip_packet(1, 0, std::vector<uint8_t>(kFragLen, 1));
  ASSERT_EQ(decode_packet(strip.data(), strip.size(), view), FrameError::Ok);
  EXPECT_FALSE(parse_ack(view, out));
}
