// The abstract LRU cache model (§6.2): CCap and IOcost, validated against
// the paper's fully worked P_eg / P_reg traces and LRU stack properties.
#include <gtest/gtest.h>

#include "slp/cache_model.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(CacheModel, PegCCapIs10) {
  // §6.2: "We can confirm CCap(P_eg) = 10."
  EXPECT_EQ(ccap(make_peg(), ExecForm::Fused), 10u);
}

TEST(CacheModel, PegIoCostAtCapacity10Is9) {
  // §6.2: 7 loads + 2 evictions.
  const CacheSimResult r = simulate_lru(make_peg(), 10, ExecForm::Fused);
  EXPECT_EQ(r.loads, 7u);
  EXPECT_EQ(r.evictions, 2u);
  EXPECT_EQ(r.io_cost(), 9u);
  EXPECT_EQ(r.reloads, 0u);
}

TEST(CacheModel, PegIoCostAtCapacity8Is13) {
  // §6.2: "We can easily check IOcost(P_eg, 8) = 13."
  EXPECT_EQ(io_cost(make_peg(), 8, ExecForm::Fused), 13u);
}

TEST(CacheModel, PregRegisterAssignmentReducesIoCostTo12) {
  // §6.3: IOcost(P_reg, 8) = 12 but CCap unchanged at 10.
  EXPECT_EQ(io_cost(make_preg(), 8, ExecForm::Fused), 12u);
  EXPECT_EQ(ccap(make_preg(), ExecForm::Fused), 10u);
}

TEST(CacheModel, ReloadHappensBelowCCap) {
  const Program p = make_peg();
  const size_t cc = ccap(p, ExecForm::Fused);
  EXPECT_EQ(simulate_lru(p, cc, ExecForm::Fused).reloads, 0u);
  EXPECT_GT(simulate_lru(p, cc - 1, ExecForm::Fused).reloads, 0u);
}

TEST(CacheModel, CCapIsMinimalReloadFreeCapacityOnRandomPrograms) {
  // Cross-check the stack-distance CCap against direct simulation.
  for (uint32_t seed = 0; seed < 8; ++seed) {
    const Program p = random_flat(24, 10, seed);
    for (ExecForm form : {ExecForm::Binary, ExecForm::Fused}) {
      const size_t cc = ccap(p, form);
      EXPECT_EQ(simulate_lru(p, cc, form).reloads, 0u) << "seed " << seed;
      if (cc > 1) {
        EXPECT_GT(simulate_lru(p, cc - 1, form).reloads, 0u) << "seed " << seed;
      }
    }
  }
}

TEST(CacheModel, IoCostIsMonotoneInCapacity) {
  // LRU's stack-inclusion property: more cache never hurts.
  for (uint32_t seed = 0; seed < 6; ++seed) {
    const Program p = random_flat(30, 12, 100 + seed);
    size_t prev = SIZE_MAX;
    for (size_t cap = 4; cap <= 48; ++cap) {
      const size_t cost = io_cost(p, cap, ExecForm::Fused);
      EXPECT_LE(cost, prev) << "seed " << seed << " cap " << cap;
      prev = cost;
    }
  }
}

TEST(CacheModel, LargeCapacityCostIsColdMissesOnly) {
  // With capacity >= CCap there are no reloads and no evictions of blocks
  // that are touched again, so IOcost = distinct constants + evictions; at
  // capacity >= total blocks, IOcost = distinct constants exactly.
  const Program p = make_peg();
  const CacheSimResult r = simulate_lru(p, 1000, ExecForm::Fused);
  EXPECT_EQ(r.loads, 7u);  // A..G
  EXPECT_EQ(r.evictions, 0u);
}

TEST(CacheModel, BinaryFormTouchesMoreThanFused) {
  const Program p = make_peg();
  EXPECT_GT(touch_sequence(p, ExecForm::Binary).size(),
            touch_sequence(p, ExecForm::Fused).size());
}

TEST(CacheModel, TouchSequenceOrderIsArgsThenTarget) {
  Program p;
  p.num_consts = 3;
  p.num_vars = 1;
  p.body = {{0, {Term::constant(2), Term::constant(0), Term::constant(1)}}};
  p.outputs = {0};
  const auto seq = touch_sequence(p, ExecForm::Fused);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0], Term::constant(2));
  EXPECT_EQ(seq[1], Term::constant(0));
  EXPECT_EQ(seq[2], Term::constant(1));
  EXPECT_EQ(seq[3], Term::var(0));
}

TEST(CacheModel, CCapAtLeastInstructionFootprint) {
  // One wide instruction: needs all args + target cached at once.
  Program p;
  p.num_consts = 9;
  p.num_vars = 1;
  Instruction ins;
  ins.target = 0;
  for (uint32_t c = 0; c < 9; ++c) ins.args.push_back(Term::constant(c));
  p.body = {ins};
  p.outputs = {0};
  EXPECT_EQ(ccap(p, ExecForm::Fused), 10u);
}

TEST(CacheModel, EvictionsCountEvenForCleanConstants) {
  // Tiny capacity: constants get evicted and each eviction is one transfer.
  const CacheSimResult r = simulate_lru(make_peg(), 3, ExecForm::Fused);
  EXPECT_GT(r.evictions, 0u);
  EXPECT_GT(r.reloads, 0u);
}
