// ObjectCodec: blob-level encode/decode with headers, padding, arbitrary
// sizes, shuffled/partial fragment sets, and corruption rejection — the
// geometry-specific suites run over the default RS engine, the parameterized
// suite at the bottom over EVERY registered family.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <random>

#include "api/xorec.hpp"
#include "ec/object_codec.hpp"

using namespace xorec;

namespace {

std::vector<uint8_t> random_blob(size_t size, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint8_t> b(size);
  for (auto& x : b) x = static_cast<uint8_t>(rng());
  return b;
}

}  // namespace

class ObjectCodecSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(ObjectCodecSizes, RoundTripsWithNoLoss) {
  const size_t size = GetParam();
  ec::ObjectCodec codec(10, 4);
  const auto blob = random_blob(size, static_cast<uint32_t>(size));
  const auto enc = codec.encode(blob.data(), blob.size());
  ASSERT_EQ(enc.fragments.size(), 14u);
  const auto dec = codec.decode(enc.fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ObjectCodecSizes,
                         ::testing::Values<size_t>(0, 1, 7, 8, 79, 80, 81, 1000, 4096,
                                                   65536, 1 << 20, (1 << 20) + 13),
                         [](const auto& info) { return "s" + std::to_string(info.param); });

TEST(ObjectCodec, SurvivesMaximumErasures) {
  ec::ObjectCodec codec(6, 3);
  const auto blob = random_blob(100000, 9);
  auto enc = codec.encode(blob.data(), blob.size());

  // Keep only 6 of 9 fragments: drop two data + one parity.
  std::vector<std::vector<uint8_t>> survivors;
  for (size_t id : {1, 3, 4, 5, 7, 8}) survivors.push_back(enc.fragments[id]);
  const auto dec = codec.decode(survivors);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

TEST(ObjectCodec, ParityOnlySurvivorsStillDecode) {
  ec::ObjectCodec codec(4, 4);
  const auto blob = random_blob(5000, 11);
  auto enc = codec.encode(blob.data(), blob.size());
  std::vector<std::vector<uint8_t>> survivors(enc.fragments.begin() + 4,
                                              enc.fragments.end());
  const auto dec = codec.decode(survivors);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

TEST(ObjectCodec, FragmentOrderDoesNotMatter) {
  ec::ObjectCodec codec(5, 2);
  const auto blob = random_blob(12345, 3);
  auto enc = codec.encode(blob.data(), blob.size());
  std::mt19937 rng(5);
  std::shuffle(enc.fragments.begin(), enc.fragments.end(), rng);
  const auto dec = codec.decode(enc.fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

TEST(ObjectCodec, TooFewFragmentsFails) {
  ec::ObjectCodec codec(8, 2);
  const auto blob = random_blob(999, 4);
  auto enc = codec.encode(blob.data(), blob.size());
  enc.fragments.resize(7);  // below n = 8
  EXPECT_EQ(codec.decode(enc.fragments), std::nullopt);
}

TEST(ObjectCodec, CorruptHeadersAreSkipped) {
  ec::ObjectCodec codec(4, 2);
  const auto blob = random_blob(777, 8);
  auto enc = codec.encode(blob.data(), blob.size());
  enc.fragments[0][0] ^= 0xFF;  // break magic of one fragment
  const auto dec = codec.decode(enc.fragments);  // still 5 healthy fragments
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

TEST(ObjectCodec, MixedObjectsRejected) {
  ec::ObjectCodec codec(4, 2);
  const auto blob_a = random_blob(1000, 1);
  const auto blob_b = random_blob(2000, 2);
  auto enc_a = codec.encode(blob_a.data(), blob_a.size());
  auto enc_b = codec.encode(blob_b.data(), blob_b.size());
  std::vector<std::vector<uint8_t>> mixed;
  for (size_t i = 0; i < 3; ++i) mixed.push_back(enc_a.fragments[i]);
  for (size_t i = 3; i < 6; ++i) mixed.push_back(enc_b.fragments[i]);
  EXPECT_EQ(codec.decode(mixed), std::nullopt);
}

TEST(ObjectCodec, TruncatedFragmentIsIgnored) {
  ec::ObjectCodec codec(4, 2);
  const auto blob = random_blob(888, 6);
  auto enc = codec.encode(blob.data(), blob.size());
  enc.fragments[2].resize(enc.fragments[2].size() / 2);
  const auto dec = codec.decode(enc.fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

TEST(ObjectCodec, RebuildAllRegeneratesIdenticalFragments) {
  ec::ObjectCodec codec(6, 2);
  const auto blob = random_blob(50000, 13);
  auto enc = codec.encode(blob.data(), blob.size());
  // Lose two fragments, rebuild the full set.
  std::vector<std::vector<uint8_t>> partial;
  for (size_t id = 0; id < 8; ++id)
    if (id != 1 && id != 6) partial.push_back(enc.fragments[id]);
  const auto rebuilt = codec.rebuild_all(partial);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->fragments, enc.fragments);
}

TEST(ObjectCodec, HeaderGeometryIsSelfDescribing) {
  ec::ObjectCodec codec(10, 4);
  const auto blob = random_blob(10000, 21);
  const auto enc = codec.encode(blob.data(), blob.size());
  // Each fragment carries "XSLP" + geometry.
  for (const auto& f : enc.fragments) {
    ASSERT_GE(f.size(), ec::ObjectCodec::kHeaderSize);
    EXPECT_EQ(f[0], 'X');
    EXPECT_EQ(f[1], 'S');
    EXPECT_EQ(f[2], 'L');
    EXPECT_EQ(f[3], 'P');
  }
}

// ---- every registered family through the blob layer ------------------------

class ObjectCodecEveryFamily : public ::testing::TestWithParam<const char*> {
 protected:
  ec::ObjectCodec make() const {
    return ec::ObjectCodec{std::shared_ptr<const Codec>(make_codec(GetParam()))};
  }
};

TEST_P(ObjectCodecEveryFamily, RoundTripsThroughMaximumLoss) {
  const auto blobs = make();
  const size_t n = blobs.data_fragments(), p = blobs.parity_fragments();
  for (size_t size : {0u, 1u, 500u, 40000u}) {
    const auto blob = random_blob(size, static_cast<uint32_t>(size + 3));
    auto enc = blobs.encode(blob.data(), blob.size());
    ASSERT_EQ(enc.fragments.size(), n + p);

    // Lossless, and through one-data + one-parity loss.
    auto dec = blobs.decode(enc.fragments);
    ASSERT_TRUE(dec.has_value()) << "size " << size;
    EXPECT_EQ(*dec, blob);
    std::vector<std::vector<uint8_t>> survivors;
    for (size_t id = 0; id < n + p; ++id)
      if (id != 0 && id != n) survivors.push_back(enc.fragments[id]);
    dec = blobs.decode(survivors);
    ASSERT_TRUE(dec.has_value()) << "size " << size;
    EXPECT_EQ(*dec, blob);
  }
}

TEST_P(ObjectCodecEveryFamily, CorruptHeadersAreSkippedNotTrusted) {
  const auto blobs = make();
  const size_t n = blobs.data_fragments(), p = blobs.parity_fragments();
  const auto blob = random_blob(20000, 77);
  auto enc = blobs.encode(blob.data(), blob.size());

  // Bad magic on one fragment: skipped, the rest still decode.
  enc.fragments[0][0] ^= 0xFF;
  auto dec = blobs.decode(enc.fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
  enc.fragments[0][0] ^= 0xFF;

  // Unknown version: skipped likewise.
  enc.fragments[1][4] ^= 0x40;
  dec = blobs.decode(enc.fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
  enc.fragments[1][4] ^= 0x40;

  // Truncation (header claims more payload than present): skipped.
  auto clipped = enc.fragments;
  clipped[2].resize(clipped[2].size() / 2);
  dec = blobs.decode(clipped);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);

  // Every header's object_size inflated past what fragments hold: nullopt,
  // never a throw or an over-allocation.
  auto poisoned = enc.fragments;
  const uint64_t huge = uint64_t(1) << 40;
  for (auto& f : poisoned) std::memcpy(f.data() + 12, &huge, 8);
  std::optional<std::vector<uint8_t>> out;
  EXPECT_NO_THROW(out = blobs.decode(poisoned));
  EXPECT_FALSE(out.has_value());

  // More corrupt fragments than the code tolerates: nullopt.
  auto mangled = enc.fragments;
  for (size_t i = 0; i <= p && i < mangled.size(); ++i) mangled[i][0] ^= 0xFF;
  EXPECT_EQ(blobs.decode(mangled), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ObjectCodecEveryFamily,
    ::testing::Values("rs(6,3)", "vand(5,2)", "cauchy(6,2)", "rs16(5,2)", "evenodd(6,2)",
                      "rdp(6)", "star(7)", "naive_xor(5,2)", "isal(6,3)"),
    [](const auto& info) {
      std::string name;
      for (char c : std::string(info.param))
        name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return name;
    });
