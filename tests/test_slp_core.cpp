// SLP representation, set-based semantics (§4.1) and the static metrics
// (#⊕, #M, NVar) with the paper's §7.5 accounting.
#include <gtest/gtest.h>

#include "slp/metrics.hpp"
#include "slp/semantics.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;
namespace bm = xorec::bitmatrix;

TEST(SlpProgram, ValidateAcceptsPaperExamples) {
  EXPECT_NO_THROW(make_peg().validate());
  EXPECT_NO_THROW(make_preg().validate());
  EXPECT_NO_THROW(make_p0().validate());
}

TEST(SlpProgram, ValidateRejectsUseBeforeDef) {
  Program p;
  p.num_consts = 2;
  p.num_vars = 2;
  p.body = {{0, {V(1), C(0)}}};  // v1 never assigned yet
  p.outputs = {0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SlpProgram, ValidateRejectsEmptyArgsAndBadIds) {
  Program p;
  p.num_consts = 1;
  p.num_vars = 1;
  p.body = {{0, {}}};
  p.outputs = {0};
  EXPECT_THROW(p.validate(), std::invalid_argument);

  Program q;
  q.num_consts = 1;
  q.num_vars = 1;
  q.body = {{0, {C(5)}}};
  q.outputs = {0};
  EXPECT_THROW(q.validate(), std::invalid_argument);

  Program r;
  r.num_consts = 1;
  r.num_vars = 2;
  r.body = {{0, {C(0)}}};
  r.outputs = {1};  // never assigned
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(SlpProgram, SsaAndFlatPredicates) {
  EXPECT_TRUE(make_peg().is_ssa());
  EXPECT_FALSE(make_peg().is_flat());
  EXPECT_TRUE(make_p0().is_flat());
  EXPECT_FALSE(make_preg().is_ssa());  // v0 assigned twice
}

TEST(SlpSemantics, PaperSection41Example) {
  // v0 <- a^b; v1 <- b^c^d; v2 <- v0^v1; ret(v1, v2, v0)
  Program p;
  p.num_consts = 4;
  p.num_vars = 3;
  p.body = {{0, {C(0), C(1)}}, {1, {C(1), C(2), C(3)}}, {2, {V(0), V(1)}}};
  p.outputs = {1, 2, 0};
  const auto out = denotation(p);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].ones(), (std::vector<uint32_t>{1, 2, 3}));  // {b,c,d}
  EXPECT_EQ(out[1].ones(), (std::vector<uint32_t>{0, 2, 3}));  // {a,c,d}
  EXPECT_EQ(out[2].ones(), (std::vector<uint32_t>{0, 1}));     // {a,b}
}

TEST(SlpSemantics, InPlaceAccumulateReadsOldValue) {
  // v0 <- a^b; v0 <- v0^c  ==> {a,b,c}
  Program p;
  p.num_consts = 3;
  p.num_vars = 1;
  p.body = {{0, {C(0), C(1)}}, {0, {V(0), C(2)}}};
  p.outputs = {0};
  EXPECT_EQ(denotation(p)[0].ones(), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(SlpSemantics, CancellativityHolds) {
  // v0 <- a^b; v1 <- v0^a  ==> {b}
  Program p;
  p.num_consts = 2;
  p.num_vars = 2;
  p.body = {{0, {C(0), C(1)}}, {1, {V(0), C(0)}}};
  p.outputs = {1};
  EXPECT_EQ(denotation(p)[0].ones(), (std::vector<uint32_t>{1}));
}

TEST(SlpSemantics, EquivalenceIsOrderInsensitiveToArgPermutation) {
  Program p = make_peg();
  Program q = make_peg();
  std::swap(q.body[2].args[0], q.body[2].args[2]);  // commutativity
  EXPECT_TRUE(equivalent(p, q));
}

TEST(SlpSemantics, DenotationMatrixRoundTripsFromBitmatrix) {
  const Program p = random_flat(40, 16, 5);
  const bm::BitMatrix m = denotation_matrix(p);
  const Program q = from_bitmatrix(m);
  EXPECT_TRUE(equivalent(p, q));
}

TEST(SlpFromBitmatrix, RejectsZeroRows) {
  bm::BitMatrix m(2, 4);
  m.set(0, 1, true);  // row 1 stays zero
  EXPECT_THROW(from_bitmatrix(m), std::invalid_argument);
}

TEST(SlpFromBitmatrix, UnaryRowBecomesCopy) {
  bm::BitMatrix m(1, 4);
  m.set(0, 2, true);
  const Program p = from_bitmatrix(m);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0].args.size(), 1u);
  EXPECT_EQ(xor_ops(p), 0u);
}

TEST(SlpBinaryExpand, PreservesSemanticsAndXorCount) {
  const Program p = make_peg();
  const Program b = p.binary_expanded();
  EXPECT_TRUE(equivalent(p, b));
  EXPECT_EQ(xor_ops(p), xor_ops(b));
  for (const Instruction& ins : b.body) EXPECT_LE(ins.args.size(), 2u);
}

TEST(SlpMetrics, XorOpsAndMemAccesses) {
  const Program p = make_peg();  // arities 2,2,3,3,3
  EXPECT_EQ(xor_ops(p), 8u);     // 1+1+2+2+2
  // Fused: sum(arity+1) = 3+3+4+4+4 = 18. Binary: 3 per XOR = 24.
  EXPECT_EQ(mem_accesses(p, ExecForm::Fused), 18u);
  EXPECT_EQ(mem_accesses(p, ExecForm::Binary), 24u);
}

TEST(SlpMetrics, Section5MemAccessExample) {
  // §5: ((a^b)^c)^d as 3 binary XORs = 9N accesses; fused Xor4 = 5N.
  Program chain;
  chain.num_consts = 4;
  chain.num_vars = 3;
  chain.body = {{0, {C(0), C(1)}}, {1, {V(0), C(2)}}, {2, {V(1), C(3)}}};
  chain.outputs = {2};
  EXPECT_EQ(mem_accesses(chain, ExecForm::Binary), 9u);

  Program fused;
  fused.num_consts = 4;
  fused.num_vars = 1;
  fused.body = {{0, {C(0), C(1), C(2), C(3)}}};
  fused.outputs = {0};
  EXPECT_EQ(mem_accesses(fused, ExecForm::Fused), 5u);
}

TEST(SlpMetrics, Section52FusionTradeoffExample) {
  // §5.2: A (two 6-term rows, binary) vs B (compressed+fused) vs C (fused).
  Program a;
  a.num_consts = 7;  // a..g
  a.num_vars = 2;
  a.body = {{0, {C(0), C(1), C(2), C(3), C(4), C(5)}},
            {1, {C(0), C(1), C(2), C(3), C(4), C(6)}}};
  a.outputs = {0, 1};
  EXPECT_EQ(mem_accesses(a, ExecForm::Binary), 30u);

  Program b;
  b.num_consts = 7;
  b.num_vars = 3;
  b.body = {{0, {C(0), C(1), C(2), C(3), C(4)}}, {1, {V(0), C(5)}}, {2, {V(0), C(6)}}};
  b.outputs = {1, 2};
  EXPECT_EQ(mem_accesses(b, ExecForm::Fused), 12u);

  Program c;
  c.num_consts = 7;
  c.num_vars = 2;
  c.body = {{0, {C(0), C(1), C(2), C(3), C(4), C(5)}},
            {1, {C(0), C(1), C(2), C(3), C(4), C(6)}}};
  c.outputs = {0, 1};
  EXPECT_EQ(mem_accesses(c, ExecForm::Fused), 14u);
}

TEST(SlpMetrics, NVarCountsDistinctTargets) {
  EXPECT_EQ(nvar(make_peg()), 5u);
  EXPECT_EQ(nvar(make_preg()), 4u);  // v0 reused
}

TEST(SlpMetrics, MeasureBundlesAllStats) {
  const StageMetrics m = measure(make_peg(), ExecForm::Fused);
  EXPECT_EQ(m.xor_ops, 8u);
  EXPECT_EQ(m.instructions, 5u);
  EXPECT_EQ(m.mem_accesses, 18u);
  EXPECT_EQ(m.nvar, 5u);
  EXPECT_GT(m.ccap, 0u);
}

TEST(SlpProgram, ToStringIsReadable) {
  const std::string s = make_p0().to_string();
  EXPECT_NE(s.find("v0 <- c0 ^ c1;"), std::string::npos);
  EXPECT_NE(s.find("ret(v0, v1, v2, v3)"), std::string::npos);
}
