// Error paths of the plan-profile text format (ec/plan_cache_io) and of
// CodecService::warmup on hostile files: truncated, garbled, empty and
// binary-garbage profiles must fail cleanly (std::runtime_error, no crash),
// and a failed or partially-applicable warmup must never poison the plan
// cache — the service keeps compiling and serving afterwards.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/xorec.hpp"
#include "conformance/codec_conformance.hpp"
#include "ec/bitmatrix_codec_core.hpp"
#include "ec/plan_cache.hpp"
#include "ec/plan_cache_io.hpp"

using namespace xorec;
using xorec::conformance::all_but;

namespace {

std::string write_profile(const std::string& tag, const std::string& contents) {
  const std::string path = ::testing::TempDir() + "xorec_io_" + tag + ".profile";
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << contents;
  out.close();
  return path;
}

constexpr char kHeader[] = "xorec-plan-profile v1\n";

CodecService::Options isolated() {
  CodecService::Options opt;
  opt.shards = 2;
  opt.plan_cache = std::make_shared<ec::PlanCache>(0, 2);
  return opt;
}

}  // namespace

TEST(PlanCacheIo, MissingEmptyAndHeaderlessFilesFailCleanly) {
  EXPECT_THROW((void)ec::load_plan_profile(::testing::TempDir() + "xorec_io_nope"),
               std::runtime_error);
  EXPECT_THROW((void)ec::load_plan_profile(write_profile("empty", "")),
               std::runtime_error);
  EXPECT_THROW((void)ec::load_plan_profile(write_profile("noheader", "codec rs(6,3)\n")),
               std::runtime_error);
  EXPECT_THROW((void)ec::load_plan_profile(write_profile("wrongver",
                                                         "xorec-plan-profile v9\n")),
               std::runtime_error);
}

TEST(PlanCacheIo, GarbledRecordsFailCleanly) {
  const std::vector<std::pair<std::string, std::string>> cases{
      {"truncated-codec", std::string(kHeader) + "codec rs(6,3) fp 1 2\n"},
      {"missing-fp-tag", std::string(kHeader) + "codec rs(6,3) xp 1 2 3\n"},
      {"bad-fp-number", std::string(kHeader) + "codec rs(6,3) fp one 2 3\n"},
      {"unknown-record", std::string(kHeader) + "frobnicate 1 2 3\n"},
      {"orphan-pattern", std::string(kHeader) + "pattern 1 2 | 3\n"},
      {"pattern-junk-token",
       std::string(kHeader) + "codec rs(6,3) fp 1 2 3\npattern 1 x | 2\n"},
      {"pattern-negative",
       std::string(kHeader) + "codec rs(6,3) fp 1 2 3\npattern -1 | 2\n"},
      {"pattern-id-too-big",
       std::string(kHeader) + "codec rs(6,3) fp 1 2 3\npattern 4294967295 | 2\n"},
      {"pattern-id-overflow",
       std::string(kHeader) + "codec rs(6,3) fp 1 2 3\npattern 99999999999999999999 | 2\n"},
      {"binary-garbage", std::string(kHeader) + std::string("\x01\xff\x7f garbage \x00", 12)},
  };
  for (const auto& [tag, contents] : cases) {
    SCOPED_TRACE(tag);
    EXPECT_THROW((void)ec::load_plan_profile(write_profile(tag, contents)),
                 std::runtime_error);
  }
}

TEST(PlanCacheIo, HeaderOnlyAndCommentsLoadAsEmpty) {
  const ec::PlanProfile p = ec::load_plan_profile(
      write_profile("header-only", std::string(kHeader) + "# a comment\n\n"));
  EXPECT_TRUE(p.entries.empty());
  EXPECT_EQ(p.pattern_count(), 0u);
}

TEST(PlanCacheIo, SaveToUnwritablePathFailsCleanly) {
  ec::PlanProfile profile;
  profile.entries.push_back({"rs(6,3)", 1, 2, 3, {{0, UINT32_MAX, 1, 2}}});
  EXPECT_THROW(ec::save_plan_profile("/nonexistent-dir/xorec.profile", profile),
               std::runtime_error);
}

TEST(PlanCacheIo, RoundTripPreservesSeparatorsAndIds) {
  ec::PlanProfile profile;
  profile.entries.push_back(
      {"piggyback(6,3,2)", 7, 8, 9, {{0, UINT32_MAX, 1, 2, 3}, {6, UINT32_MAX, UINT32_MAX}}});
  const std::string path =
      write_profile("roundtrip", "");  // placeholder; save overwrites
  ec::save_plan_profile(path, profile);
  const ec::PlanProfile loaded = ec::load_plan_profile(path);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].spec, "piggyback(6,3,2)");
  EXPECT_EQ(loaded.entries[0].matrix_fp, 7u);
  EXPECT_EQ(loaded.entries[0].patterns, profile.entries[0].patterns);
  EXPECT_EQ(loaded.pattern_count(), 2u);
}

// A corrupt profile must throw out of warmup() WITHOUT poisoning anything:
// the same service keeps compiling, serving and saving profiles afterwards,
// and the warm-rate window is not reset by the failed replay.
TEST(PlanCacheIo, FailedWarmupDoesNotPoisonTheService) {
  CodecService service(isolated());
  const ServiceHandle h = service.acquire("rs(6,3)");
  (void)h.plan_reconstruct(all_but(h.codec(), {0}), {0});
  const ServiceStats before = service.stats();

  EXPECT_THROW((void)service.warmup(write_profile(
                   "corrupt", std::string(kHeader) + "codec rs(6,3) fp bad\n")),
               std::runtime_error);

  // Window not reset: the pre-failure traffic is still in it.
  const ServiceStats after = service.stats();
  EXPECT_GE(after.warm_hits + after.warm_misses, before.warm_hits + before.warm_misses);
  EXPECT_GT(after.warm_hits + after.warm_misses, 0u);

  // The cache still compiles and serves new patterns.
  EXPECT_NO_THROW((void)h.plan_reconstruct(all_but(h.codec(), {1}), {1}));
  EXPECT_GT(h.codec().cached_program_count(), 0u);

  // And a save -> warmup round trip still works end to end.
  const std::string good = ::testing::TempDir() + "xorec_io_good.profile";
  EXPECT_GT(service.save_profile(good), 0u);
  CodecService fresh(isolated());
  const auto report = fresh.warmup(good);
  EXPECT_EQ(report.codecs, 1u);
  EXPECT_GT(report.patterns, 0u);
  std::remove(good.c_str());
}

// Regression: acquire("...@warmup=PATH") claims the path in warmed_paths_
// BEFORE running the replay, so a corrupt profile used to poison the path
// forever — acquire threw once, and every later acquire skipped the replay
// even after the file was fixed. The failed claim must be released.
TEST(PlanCacheIo, FailedInlineWarmupIsRetriedOnceTheProfileIsFixed) {
  const std::string path = write_profile(
      "poison", std::string(kHeader) + "codec rs(6,3) fp bad\n");
  CodecService service(isolated());
  const std::string spec = "rs(6,3)@warmup=" + path;

  // First acquire: the corrupt profile throws out of the inline replay.
  EXPECT_THROW((void)service.acquire(spec), std::runtime_error);

  // Fix the file in place. Before the fix, the path stayed claimed and this
  // replay never ran — the warm window showed zero replayed traffic.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << kHeader << "codec rs(6,3) fp 1 2 3\npattern 0 | 1 2 3 4 5 6\n";
  }
  ServiceHandle h = service.acquire(spec);

  // The replay really happened: its pattern now serves warm.
  (void)h.plan_reconstruct({1, 2, 3, 4, 5, 6}, {0});
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.warm_hits, 0u);
  EXPECT_EQ(stats.warm_misses, 0u);

  // And the path is claimed now — a third acquire must not replay again
  // (the warm window keeps accumulating instead of resetting).
  (void)service.acquire(spec);
  EXPECT_GE(service.stats().warm_hits, stats.warm_hits);
  std::remove(path.c_str());
}

// Records that parse but no longer apply — unknown families, stale options,
// geometry-breaking pattern ids — are skipped, not fatal, and must not
// abort the rest of the replay.
TEST(PlanCacheIo, InapplicableRecordsAreSkippedNotFatal) {
  const std::string path = write_profile(
      "drift",
      std::string(kHeader) +
          "codec futurecode(9,9) fp 1 2 3\n"    // unknown family: skipped
          "pattern 1 | 0 2\n"
          "codec rs(6,3)@frob=1 fp 1 2 3\n"     // unknown option: skipped
          "pattern 1 | 0 2\n"
          "codec rs(6,3) fp 1 2 3\n"
          "pattern 42 | 0 1\n"                  // id beyond geometry: skipped
          "pattern 0 | 1 2 3 4 5 6\n"           // replayable
          "pattern 6 | |\n");                   // parity subset: replayable
  CodecService service(isolated());
  CodecService::WarmupReport report;
  ASSERT_NO_THROW(report = service.warmup(path));
  EXPECT_EQ(report.codecs, 1u);       // only the real rs(6,3) pool
  EXPECT_GE(report.skipped, 3u);      // two drifted entries + the bad id
  EXPECT_GE(report.patterns, 2u);
  EXPECT_GT(report.compiled, 0u);

  // The replayed patterns serve warm.
  const ServiceHandle h = service.acquire("rs(6,3)");
  (void)h.plan_reconstruct({1, 2, 3, 4, 5, 6}, {0});
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.warm_hits, 0u);
  EXPECT_EQ(stats.warm_misses, 0u);
}

// Warmup with a pattern that names a pathological but parseable codec spec
// must not attempt an absurd allocation or crash; the registry bounds every
// family's geometry.
TEST(PlanCacheIo, OversizedSpecsInProfilesAreRejectedNotFatal) {
  const std::string path = write_profile(
      "oversized", std::string(kHeader) +
                       "codec rs(1000000,4) fp 1 2 3\npattern 1 | 0 2\n"
                       "codec evenodd(100000) fp 1 2 3\npattern 1 | 0 2\n"
                       "codec sparse(6,3,101,1) fp 1 2 3\npattern 1 | 0 2\n"
                       "codec piggyback(6,9,9) fp 1 2 3\npattern 1 | 0 2\n");
  CodecService service(isolated());
  CodecService::WarmupReport report;
  ASSERT_NO_THROW(report = service.warmup(path));
  EXPECT_EQ(report.codecs, 0u);
  EXPECT_EQ(report.skipped, 4u);
  EXPECT_EQ(report.patterns, 0u);
}
