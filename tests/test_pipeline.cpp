// Pipeline driver, IOcost at hardware parameters (§6.2's "optimize
// IOcost(P, 512)" remark), and thread-pool error handling.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/thread_pool.hpp"
#include "slp/cache_model.hpp"
#include "slp/pipeline.hpp"
#include "slp/semantics.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec;
using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(Pipeline, FinalProgramTracksConfiguredStages) {
  const Program base = random_flat(24, 8, 1);

  PipelineOptions none;
  none.compress = CompressKind::None;
  none.fuse = false;
  none.schedule = ScheduleKind::None;
  auto r0 = optimize_program(base, none);
  EXPECT_EQ(&r0.final_program(), &r0.base);
  EXPECT_EQ(r0.final_form(), ExecForm::Binary);

  PipelineOptions co_only = none;
  co_only.compress = CompressKind::XorRePair;
  auto r1 = optimize_program(base, co_only);
  ASSERT_TRUE(r1.compressed);
  EXPECT_EQ(&r1.final_program(), &*r1.compressed);
  EXPECT_EQ(r1.final_form(), ExecForm::Binary);

  PipelineOptions fuse_only = none;
  fuse_only.fuse = true;
  auto r2 = optimize_program(base, fuse_only);
  ASSERT_TRUE(r2.fused);
  EXPECT_EQ(&r2.final_program(), &*r2.fused);
  EXPECT_EQ(r2.final_form(), ExecForm::Fused);

  PipelineOptions full;  // defaults: XorRePair + fuse + DFS
  auto r3 = optimize_program(base, full);
  ASSERT_TRUE(r3.scheduled);
  EXPECT_EQ(&r3.final_program(), &*r3.scheduled);
  EXPECT_EQ(r3.final_form(), ExecForm::Fused);
}

TEST(Pipeline, GreedyCapacityDefaultsAndPropagates) {
  const Program base = random_flat(24, 8, 2);
  PipelineOptions opt;
  opt.schedule = ScheduleKind::Greedy;
  opt.greedy_capacity = 16;
  auto r = optimize_program(base, opt);
  ASSERT_TRUE(r.scheduled);
  EXPECT_TRUE(equivalent(base, *r.scheduled));
}

TEST(Pipeline, AllStagesKeepDenotationOnPaperMatrix) {
  const auto m = bitmatrix::expand(gf::rs_isal_matrix(9, 3).select_rows({9, 10, 11}));
  PipelineOptions opt;
  opt.schedule = ScheduleKind::Greedy;
  opt.greedy_capacity = 32;
  auto r = optimize(m, opt, "rs93");
  EXPECT_TRUE(equivalent(r.base, *r.compressed));
  EXPECT_TRUE(equivalent(r.base, *r.fused));
  EXPECT_TRUE(equivalent(r.base, *r.scheduled));
  EXPECT_EQ(r.base.name, "rs93");
}

TEST(IoCostHardwareScale, SchedulingHelpsAt512Blocks) {
  // §6.2: "cache size is 32KB and cache block size is 64B ... we optimize
  // IOcost(P, 512)". At 512-block capacity the whole working set of
  // RS(10,4) fits, so IOcost reduces to cold misses for every stage; at the
  // tight L1-per-iteration scale (~64 blocks for 512 B strips... modelled
  // here as 64 and 128) the scheduled program must not lose to the fused.
  const auto m = bitmatrix::expand(gf::rs_isal_matrix(10, 4).select_rows({10, 11, 12, 13}));
  PipelineOptions opt;
  auto r = optimize(m, opt);
  for (size_t cap : {64u, 128u, 512u}) {
    const size_t fused = io_cost(*r.fused, cap, ExecForm::Fused);
    const size_t sched = io_cost(*r.scheduled, cap, ExecForm::Fused);
    EXPECT_LE(sched, fused) << "capacity " << cap;
  }
  // At 512 both are pure cold misses: exactly the 80 input strips.
  EXPECT_EQ(io_cost(*r.scheduled, 512, ExecForm::Fused), 80u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](size_t w) { ++hits[w]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable across invocations.
  pool.run_on_all([&](size_t w) { ++hits[w]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  runtime::ThreadPool pool(3);
  EXPECT_THROW(pool.run_on_all([](size_t w) {
                 if (w == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> ok{0};
  pool.run_on_all([&](size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  runtime::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run_on_all([&](size_t w) {
    EXPECT_EQ(w, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

// ---- multilevel scheduling through the pipeline ----------------------------

TEST(Pipeline, MultilevelSchedulesAndReportsPerLevelMisses) {
  const Program base = random_flat(32, 12, 3);
  PipelineOptions opt;
  opt.schedule = ScheduleKind::Multilevel;
  opt.cache_levels = {8, 64};
  auto r = optimize_program(base, opt);
  ASSERT_TRUE(r.scheduled);
  EXPECT_TRUE(equivalent(base, *r.scheduled));
  EXPECT_EQ(r.final_form(), ExecForm::Fused);

  // The chosen schedule was simulated against the configured hierarchy.
  EXPECT_EQ(r.level_capacities, (std::vector<size_t>{8, 64}));
  ASSERT_TRUE(r.multilevel.has_value());
  ASSERT_EQ(r.multilevel->levels.size(), 2u);
  EXPECT_GT(r.multilevel->levels[0].hits + r.multilevel->levels[0].misses, 0u);
  EXPECT_GE(r.multilevel->levels[0].misses, r.multilevel->memory_loads);

  // The StageMetrics overload reports the same per-level misses.
  const StageMetrics sm = measure(*r.scheduled, ExecForm::Fused, r.level_capacities);
  ASSERT_EQ(sm.level_misses.size(), 2u);
  EXPECT_EQ(sm.level_misses[0], r.multilevel->levels[0].misses);
  EXPECT_EQ(sm.level_misses[1], r.multilevel->levels[1].misses);
  EXPECT_TRUE(measure(*r.scheduled, ExecForm::Fused).level_misses.empty());
}

TEST(Pipeline, NonMultilevelSchedulesCarryNoLevelStats) {
  auto r = optimize_program(random_flat(24, 8, 4), PipelineOptions{});
  EXPECT_TRUE(r.level_capacities.empty());
  EXPECT_FALSE(r.multilevel.has_value());
}

TEST(Pipeline, EffectiveCacheLevelsDerivation) {
  PipelineOptions opt;
  EXPECT_EQ(effective_cache_levels(opt), (std::vector<size_t>{32, 512}));
  opt.greedy_capacity = 64;
  EXPECT_EQ(effective_cache_levels(opt), (std::vector<size_t>{64, 1024}));
  opt.cache_levels = {16, 128, 1024};
  EXPECT_EQ(effective_cache_levels(opt), (std::vector<size_t>{16, 128, 1024}));
}

TEST(Pipeline, MultilevelDefaultsDeriveFromCap) {
  const Program base = random_flat(24, 8, 5);
  PipelineOptions opt;
  opt.schedule = ScheduleKind::Multilevel;  // no explicit levels
  opt.greedy_capacity = 8;
  auto r = optimize_program(base, opt);
  ASSERT_TRUE(r.scheduled);
  EXPECT_TRUE(equivalent(base, *r.scheduled));
  EXPECT_EQ(r.level_capacities, (std::vector<size_t>{8, 512}));
}
