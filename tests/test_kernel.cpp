// XOR kernels: every ISA flavor against a byte-wise oracle, across arity,
// length (including ragged tails), misalignment and exact-alias dst==src.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "kernel/xor_kernel.hpp"

namespace k = xorec::kernel;

namespace {

std::vector<uint8_t> random_bytes(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = static_cast<uint8_t>(rng());
  return v;
}

std::vector<uint8_t> oracle(const std::vector<std::vector<uint8_t>>& srcs, size_t len) {
  std::vector<uint8_t> out(len, 0);
  for (const auto& s : srcs)
    for (size_t i = 0; i < len; ++i) out[i] ^= s[i];
  return out;
}

}  // namespace

class KernelSweep : public ::testing::TestWithParam<std::tuple<k::Isa, size_t, size_t>> {};

TEST_P(KernelSweep, MatchesOracle) {
  const auto [isa, arity, len] = GetParam();
  std::vector<std::vector<uint8_t>> srcs;
  std::vector<const uint8_t*> ptrs;
  for (size_t j = 0; j < arity; ++j) {
    srcs.push_back(random_bytes(len, static_cast<uint32_t>(1000 + j)));
    ptrs.push_back(srcs.back().data());
  }
  std::vector<uint8_t> dst(len, 0xEE);
  k::xor_many(dst.data(), ptrs.data(), arity, len, isa);
  EXPECT_EQ(dst, oracle(srcs, len));
}

std::string kernel_sweep_name(
    const ::testing::TestParamInfo<std::tuple<k::Isa, size_t, size_t>>& info) {
  return std::string(k::isa_name(std::get<0>(info.param))) + "_k" +
         std::to_string(std::get<1>(info.param)) + "_len" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, KernelSweep,
    ::testing::Combine(::testing::Values(k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2,
                                         k::Isa::Avx512, k::Isa::Neon),
                       ::testing::Values<size_t>(1, 2, 3, 4, 5, 7, 8, 9, 13, 24),
                       ::testing::Values<size_t>(1, 7, 31, 32, 33, 63, 64, 65, 127, 128,
                                                 129, 255, 1024, 4096, 10000)),
    kernel_sweep_name);

// ---- KernelTable: fixed-arity, accumulate and non-temporal forms -----------

class KernelTableSweep : public ::testing::TestWithParam<std::tuple<k::Isa, size_t, size_t>> {
};

TEST_P(KernelTableSweep, FixedAccumNtMatchOracle) {
  const auto [isa, arity, len] = GetParam();
  const k::KernelTable& kt = k::kernel_table(isa);
  std::vector<std::vector<uint8_t>> srcs;
  std::vector<const uint8_t*> ptrs;
  for (size_t j = 0; j < arity; ++j) {
    srcs.push_back(random_bytes(len, static_cast<uint32_t>(2000 + j)));
    ptrs.push_back(srcs.back().data());
  }
  const auto expected = oracle(srcs, len);

  ASSERT_NE(kt.fixed[arity], nullptr) << k::isa_name(kt.isa);
  std::vector<uint8_t> dst(len, 0xEE);
  kt.fixed[arity](dst.data(), ptrs.data(), len);
  EXPECT_EQ(dst, expected) << "fixed[" << arity << "] " << k::isa_name(kt.isa);

  // accum[arity]: dst ^= srcs...  (dst pre-seeded, folded into the oracle).
  ASSERT_NE(kt.accum[arity], nullptr) << k::isa_name(kt.isa);
  auto acc = random_bytes(len, 999);
  std::vector<uint8_t> acc_expected(len);
  for (size_t i = 0; i < len; ++i) acc_expected[i] = static_cast<uint8_t>(acc[i] ^ expected[i]);
  kt.accum[arity](acc.data(), ptrs.data(), len);
  EXPECT_EQ(acc, acc_expected) << "accum[" << arity << "] " << k::isa_name(kt.isa);

  // many_nt: same contract as many minus dst/src aliasing (none here).
  ASSERT_NE(kt.many_nt, nullptr) << k::isa_name(kt.isa);
  std::vector<uint8_t> nt(len, 0xEE);
  kt.many_nt(nt.data(), ptrs.data(), arity, len);
  EXPECT_EQ(nt, expected) << "many_nt " << k::isa_name(kt.isa);
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, KernelTableSweep,
    ::testing::Combine(::testing::Values(k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2,
                                         k::Isa::Avx512, k::Isa::Neon, k::Isa::Auto),
                       ::testing::Values<size_t>(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values<size_t>(1, 31, 63, 64, 65, 96, 127, 129, 1000,
                                                 4096)),
    kernel_sweep_name);

TEST(KernelTable, NtStoresHandleMisalignedDst) {
  // The streaming-store kernels align dst internally; every misalignment of
  // a destination inside a larger buffer must still match the oracle.
  const size_t len = 4096;
  for (k::Isa isa : {k::Isa::Avx2, k::Isa::Avx512, k::Isa::Auto}) {
    const k::KernelTable& kt = k::kernel_table(isa);
    const auto a = random_bytes(len + 128, 50);
    const auto b = random_bytes(len + 128, 51);
    for (size_t shift : {0, 1, 17, 31, 32, 33, 63}) {
      const uint8_t* srcs[2] = {a.data(), b.data()};
      std::vector<uint8_t> dst(len + 128, 0);
      kt.many_nt(dst.data() + shift, srcs, 2, len);
      for (size_t i = 0; i < len; ++i)
        ASSERT_EQ(dst[shift + i], static_cast<uint8_t>(a[i] ^ b[i]))
            << k::isa_name(kt.isa) << " shift " << shift << " i " << i;
    }
  }
}

TEST(KernelTable, DegradesToHostSupport) {
  // Requesting a family the host lacks lands on a runnable fallback, and
  // the table says which one it picked.
  for (k::Isa isa : {k::Isa::Avx2, k::Isa::Avx512, k::Isa::Neon, k::Isa::Auto}) {
    const k::KernelTable& kt = k::kernel_table(isa);
    EXPECT_NE(kt.many, nullptr);
    switch (kt.isa) {
      case k::Isa::Avx2: EXPECT_TRUE(k::cpu_has_avx2()); break;
      case k::Isa::Avx512: EXPECT_TRUE(k::cpu_has_avx512()); break;
      case k::Isa::Neon: EXPECT_TRUE(k::cpu_has_neon()); break;
      case k::Isa::Scalar:
      case k::Isa::Word64: break;
      case k::Isa::Auto: FAIL() << "kernel_table returned unresolved Auto";
    }
  }
}

TEST(Kernel, InPlaceAccumulationIsSafe) {
  // dst aliases srcs[0] exactly: v ^= x ^ y.
  for (k::Isa isa :
       {k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2, k::Isa::Avx512, k::Isa::Neon}) {
    auto a = random_bytes(777, 1);
    const auto a_copy = a;
    const auto b = random_bytes(777, 2);
    const auto c = random_bytes(777, 3);
    const uint8_t* srcs[3] = {a.data(), b.data(), c.data()};
    k::xor_many(a.data(), srcs, 3, 777, isa);
    for (size_t i = 0; i < 777; ++i)
      ASSERT_EQ(a[i], static_cast<uint8_t>(a_copy[i] ^ b[i] ^ c[i])) << k::isa_name(isa);
  }
}

TEST(Kernel, InPlaceAliasingLastSource) {
  for (k::Isa isa :
       {k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2, k::Isa::Avx512, k::Isa::Neon}) {
    const auto a = random_bytes(321, 4);
    auto b = random_bytes(321, 5);
    const auto b_copy = b;
    const uint8_t* srcs[2] = {a.data(), b.data()};
    k::xor_many(b.data(), srcs, 2, 321, isa);
    for (size_t i = 0; i < 321; ++i)
      ASSERT_EQ(b[i], static_cast<uint8_t>(a[i] ^ b_copy[i])) << k::isa_name(isa);
  }
}

TEST(Kernel, MisalignedPointers) {
  // Strips in real fragments land at arbitrary offsets; all ISAs use
  // unaligned loads.
  const size_t len = 512;
  for (k::Isa isa :
       {k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2, k::Isa::Avx512, k::Isa::Neon}) {
    for (size_t shift : {1, 3, 7, 17}) {
      auto a = random_bytes(len + 64, 10);
      auto b = random_bytes(len + 64, 11);
      std::vector<uint8_t> dst(len + 64, 0);
      const uint8_t* srcs[2] = {a.data() + shift, b.data() + 2 * shift};
      k::xor_many(dst.data() + shift, srcs, 2, len, isa);
      for (size_t i = 0; i < len; ++i)
        ASSERT_EQ(dst[shift + i], static_cast<uint8_t>(a[shift + i] ^ b[2 * shift + i]));
    }
  }
}

TEST(Kernel, SingleSourceIsCopy) {
  const auto a = random_bytes(100, 20);
  std::vector<uint8_t> dst(100, 0);
  const uint8_t* srcs[1] = {a.data()};
  k::xor_many(dst.data(), srcs, 1, 100, k::Isa::Auto);
  EXPECT_EQ(dst, a);
}

TEST(Kernel, ZeroLengthIsNoop) {
  std::vector<uint8_t> dst{42};
  const uint8_t* srcs[2] = {dst.data(), dst.data()};
  k::xor_many(dst.data(), srcs, 2, 0, k::Isa::Auto);
  EXPECT_EQ(dst[0], 42);
}

TEST(Kernel, ResolveNeverReturnsNull) {
  for (k::Isa isa : {k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2, k::Isa::Avx512,
                     k::Isa::Neon, k::Isa::Auto})
    EXPECT_NE(k::resolve(isa), nullptr);
}

TEST(Kernel, IsaNamesRoundTrip) {
  for (k::Isa isa : {k::Isa::Scalar, k::Isa::Word64, k::Isa::Avx2, k::Isa::Avx512,
                     k::Isa::Neon, k::Isa::Auto}) {
    const auto parsed = k::parse_isa(k::isa_name(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(k::parse_isa("sse2").has_value());
  EXPECT_FALSE(k::parse_isa("").has_value());
  EXPECT_FALSE(k::parse_isa(nullptr).has_value());
}

TEST(Kernel, SelfXorEvenTimesIsZero) {
  // Property: x ^ x ^ x ^ x = 0 regardless of kernel.
  const auto a = random_bytes(2048, 30);
  const uint8_t* srcs[4] = {a.data(), a.data(), a.data(), a.data()};
  std::vector<uint8_t> dst(2048, 0xFF);
  k::xor_many(dst.data(), srcs, 4, 2048, k::Isa::Auto);
  for (uint8_t b : dst) ASSERT_EQ(b, 0);
}
