// The plan-compilation service (ec::PlanCache): process-shared reuse across
// codec instances, private-cache isolation, LRU eviction order and stats,
// and concurrent get_or_build consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "api/xorec.hpp"
#include "ec/plan_cache.hpp"

using namespace xorec;

namespace {

/// Smallest compilable artifact: a 1x1 copy SLP.
std::shared_ptr<ec::CompiledProgram> tiny_program() {
  bitmatrix::BitMatrix m(1, 1);
  m.set(0, 0, true);
  return std::make_shared<ec::CompiledProgram>(slp::optimize(m, {}, "tiny"),
                                               runtime::ExecOptions{});
}

ec::PlanKey key_of(uint32_t i, uint64_t matrix_fp = 1, uint64_t config_fp = 2) {
  return {matrix_fp, ~matrix_fp, config_fp, {i}};
}

std::vector<uint32_t> all_but(const Codec& codec, const std::vector<uint32_t>& erased) {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end())
      available.push_back(id);
  return available;
}

}  // namespace

// ---- the acceptance shape: one compile serves every codec instance ---------

TEST(PlanCache, SharedAcrossCodecInstances) {
  const CacheStats s0 = plan_cache_stats();
  EXPECT_TRUE(s0.shared);

  const auto a = make_codec("rs(9,3)");
  const CacheStats s1 = plan_cache_stats();
  EXPECT_GE(s1.misses, s0.misses + 1);  // encoder compiled once

  const auto b = make_codec("rs(9,3)");
  const CacheStats s2 = plan_cache_stats();
  EXPECT_EQ(s2.misses, s1.misses);      // second instance: encoder is a hit
  EXPECT_GE(s2.hits, s1.hits + 1);

  const std::vector<uint32_t> erased{2};
  const auto available = all_but(*a, erased);
  const auto plan_a = a->plan_reconstruct(available, erased);
  const CacheStats s3 = plan_cache_stats();
  EXPECT_GT(s3.misses, s2.misses);      // decode program compiled once...

  const auto plan_b = b->plan_reconstruct(available, erased);
  const CacheStats s4 = plan_cache_stats();
  EXPECT_EQ(s4.misses, s3.misses);      // ...and reused by the other instance
  EXPECT_GE(s4.hits, s3.hits + 1);
  EXPECT_GT(s4.compile_ns, 0u);
  EXPECT_GT(s4.entries, 0u);

  // The codec's view is the shared instance's own counters; the global
  // accessor aggregates every live cache, so it can only report more.
  const CacheStats via_codec = a->cache_stats();
  EXPECT_TRUE(via_codec.shared);
  const CacheStats shared_view = ec::PlanCache::process_shared()->stats();
  EXPECT_EQ(via_codec.hits, shared_view.hits);
  EXPECT_EQ(via_codec.misses, shared_view.misses);
  EXPECT_GE(s4.hits, shared_view.hits);
  EXPECT_GE(s4.misses, shared_view.misses);

  // The shared programs decode correctly through either plan.
  const size_t frag_len = a->fragment_multiple() * 16;
  std::mt19937 rng(41);
  std::vector<std::vector<uint8_t>> frags(a->total_fragments(),
                                          std::vector<uint8_t>(frag_len));
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < a->data_fragments(); ++i) {
    for (auto& v : frags[i]) v = static_cast<uint8_t>(rng());
    data.push_back(frags[i].data());
  }
  for (size_t i = a->data_fragments(); i < a->total_fragments(); ++i)
    parity.push_back(frags[i].data());
  a->encode(data.data(), parity.data(), frag_len);

  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());
  for (const auto& plan : {plan_a, plan_b}) {
    std::vector<uint8_t> out(frag_len, 0xEE);
    uint8_t* outp = out.data();
    plan->execute(avail_ptrs.data(), &outp, frag_len);
    EXPECT_EQ(out, frags[2]);
  }
}

TEST(PlanCache, PrivateCountersAreScopedButAggregated) {
  // Counters are per PlanCache instance: a private codec's compiles must
  // not pollute the shared service's hit-rate view...
  const CacheStats shared_before = ec::PlanCache::process_shared()->stats();
  const CacheStats all_before = plan_cache_stats();
  const auto codec = make_codec("rs(8,2)@cache=private");
  const std::vector<uint32_t> erased{1};
  (void)codec->plan_reconstruct(all_but(*codec, erased), erased);
  const CacheStats shared_after = ec::PlanCache::process_shared()->stats();
  EXPECT_EQ(shared_after.misses, shared_before.misses);
  EXPECT_EQ(shared_after.hits, shared_before.hits);

  const CacheStats own = codec->cache_stats();
  EXPECT_FALSE(own.shared);
  EXPECT_GE(own.misses, 2u);  // encoder + decode program

  // ...while the global accessor sums every live instance, private included.
  const CacheStats all_after = plan_cache_stats();
  EXPECT_TRUE(all_after.shared);
  EXPECT_GE(all_after.misses, all_before.misses + own.misses);
}

TEST(PlanCache, ExplicitCapacityImpliesPrivate) {
  const auto codec = make_codec("rs(6,2)@cache=8");
  EXPECT_FALSE(codec->cache_stats().shared);
}

// ---- LRU eviction order and counters ---------------------------------------

TEST(PlanCache, EvictionFollowsLruOrder) {
  ec::PlanCache cache(2, /*shards=*/1);
  size_t builds = 0;
  const auto build = [&] {
    ++builds;
    return tiny_program();
  };

  cache.get_or_build(key_of(0), build);  // miss
  cache.get_or_build(key_of(1), build);  // miss
  cache.get_or_build(key_of(0), build);  // hit — 0 becomes MRU, 1 is LRU
  cache.get_or_build(key_of(2), build);  // miss — evicts 1, not 0
  EXPECT_EQ(builds, 3u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.get_or_build(key_of(0), build);  // survived
  EXPECT_EQ(builds, 3u);
  cache.get_or_build(key_of(1), build);  // was evicted: rebuilt
  EXPECT_EQ(builds, 4u);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_FALSE(s.shared);
}

TEST(PlanCache, EvictedProgramsStayAliveWhileReferenced) {
  ec::PlanCache cache(1, 1);
  const auto held = cache.get_or_build(key_of(7), tiny_program);
  cache.get_or_build(key_of(8), tiny_program);  // evicts key 7
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(held, nullptr);  // shared ownership keeps the program valid
  EXPECT_GE(held->pipeline.base.body.size(), 1u);
}

TEST(PlanCache, SizeForScopesToOneCodecIdentity) {
  ec::PlanCache cache(0, 4);
  cache.get_or_build(key_of(0, /*matrix_fp=*/10, /*config_fp=*/1), tiny_program);
  cache.get_or_build(key_of(1, 10, 1), tiny_program);
  cache.get_or_build(key_of(0, 20, 1), tiny_program);  // other codec identity
  cache.get_or_build(key_of(0, 10, 2), tiny_program);  // other config
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.size_for(10, 1), 2u);
  EXPECT_EQ(cache.size_for(20, 1), 1u);
  EXPECT_EQ(cache.size_for(10, 2), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ---- concurrency ------------------------------------------------------------

TEST(PlanCache, ConcurrentGetOrBuildIsConsistent) {
  ec::PlanCache cache(0, ec::PlanCache::kDefaultShards);
  constexpr size_t kThreads = 8, kKeys = 24, kRounds = 40;
  std::atomic<size_t> builds{0};
  std::atomic<bool> null_seen{false};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<uint32_t>(t));
      for (size_t r = 0; r < kRounds; ++r) {
        const uint32_t k = static_cast<uint32_t>(rng() % kKeys);
        const auto p = cache.get_or_build(key_of(k), [&] {
          ++builds;
          return tiny_program();
        });
        if (!p) null_seen = true;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(null_seen.load());
  EXPECT_EQ(cache.size(), kKeys);  // racing builders still insert once
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kRounds);
  EXPECT_EQ(s.misses, builds.load());
  EXPECT_GE(s.misses, kKeys);
}
