// Registry-wide codec conformance harness.
//
// Three pieces, shared by test_conformance.cpp and the fuzz/stress suites:
//
//  - ReferenceModel: a naive, SLP-free, executor-free reference decoder
//    derived EMPIRICALLY by probing Codec::encode with basis payloads. Every
//    codec in the library is F2-linear; the model discovers the linear map
//    (strip-granular XOR incidence for the bitmatrix codecs, bit-granular
//    companion columns for byte-oriented GF codecs like isal) and re-derives
//    repairs by plain Gauss-Jordan over bytes — no bitmatrix/, no slp/, no
//    runtime/. Disagreement between a compiled plan and this model is a bug
//    in the optimizer/executor stack by construction.
//
//  - conformance_table(): small representative shapes for every registered
//    family, each with the erasure tolerance the family GUARANTEES at that
//    shape (parity count for MDS families, the certified tolerance for
//    sparse, 1 for lrc), plus the locality claims (group repair sets,
//    strip-read bounds) for the families that make them. The suites iterate
//    xorec::registered_families() and look shapes up here, so registering a
//    new family without adding conformance shapes fails the suite loudly.
//
//  - Pattern drivers: enumerate every C(k+m, <= m) erasure pattern, check
//    codec and reference agree on solvability, and byte-compare compiled
//    plan output against both the original payload and the reference
//    decode.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "altcodes/lrc.hpp"
#include "altcodes/piggyback.hpp"
#include "altcodes/sparse.hpp"
#include "api/xorec.hpp"
#include "slp/pipeline.hpp"

namespace xorec::conformance {

// ---- naive reference model -------------------------------------------------

class ReferenceModel {
 public:
  /// Probes `codec` with basis payloads to learn its linear map. The codec
  /// must be systematic (fragments 0..k-1 store the data verbatim — every
  /// family here is).
  explicit ReferenceModel(const Codec& codec)
      : k_(codec.data_fragments()),
        n_(codec.total_fragments()),
        w_(codec.fragment_multiple()) {
    if (!probe_strip_model(codec)) {
      strip_model_ = false;
      probe_bit_model(codec);
    }
  }

  bool strip_model() const { return strip_model_; }
  /// F2 symbols per fragment (strips, or bits of a byte).
  size_t symbols() const { return strip_model_ ? w_ : 8; }

  /// Can `erased` be rebuilt from exactly `available`? (Ids outside both
  /// sets are treated as unread don't-cares, like the plan path does.)
  bool solvable(const std::vector<uint32_t>& available,
                const std::vector<uint32_t>& erased) const {
    return solve(available, erased, nullptr, nullptr, 0);
  }

  /// Naive reference repair: Gauss-Jordan over the learned map, then plain
  /// byte XORs. `available_frags` parallel to `available`. Returns one
  /// buffer per erased id, or nullopt when the pattern is unsolvable.
  std::optional<std::vector<std::vector<uint8_t>>> reconstruct(
      const std::vector<uint32_t>& available,
      const std::vector<const uint8_t*>& available_frags,
      const std::vector<uint32_t>& erased, size_t frag_len) const {
    std::vector<std::vector<uint8_t>> out;
    if (!solve(available, erased, &available_frags, &out, frag_len)) return std::nullopt;
    return out;
  }

 private:
  // incidence over data symbols: inc_[output symbol] = 0/1 row of length
  // k_*symbols(); output symbol s of fragment f is inc_[f*symbols() + s].
  size_t k_, n_, w_;
  bool strip_model_ = true;
  std::vector<std::vector<uint8_t>> inc_;

  struct Probe {
    std::vector<std::vector<uint8_t>> frags;
    std::vector<const uint8_t*> data;
    std::vector<uint8_t*> parity;
    Probe(size_t k, size_t n, size_t len) : frags(n, std::vector<uint8_t>(len, 0)) {
      for (size_t f = 0; f < k; ++f) data.push_back(frags[f].data());
      for (size_t f = k; f < n; ++f) parity.push_back(frags[f].data());
    }
    void clear(size_t len) {
      for (auto& f : frags) std::fill(f.begin(), f.begin() + len, 0);
    }
  };

  /// Strip-XOR model: output strip = XOR of selected input strips. Probe
  /// one input strip at a time with the byte 1; a non-{0,1} response means
  /// the byte map is a real GF multiplication, not an XOR — bail out.
  bool probe_strip_model(const Codec& codec) {
    const size_t S = w_;
    inc_.assign(n_ * S, std::vector<uint8_t>(k_ * S, 0));
    for (size_t f = 0; f < n_ && f < k_; ++f)
      for (size_t s = 0; s < S; ++s) inc_[f * S + s][f * S + s] = 1;  // systematic top
    Probe p(k_, n_, w_);  // frag_len = w: one byte per strip
    for (size_t f = 0; f < k_; ++f) {
      for (size_t s = 0; s < S; ++s) {
        p.clear(w_);
        p.frags[f][s] = 1;
        codec.encode(p.data.data(), p.parity.data(), w_);
        for (size_t pf = k_; pf < n_; ++pf) {
          for (size_t t = 0; t < S; ++t) {
            const uint8_t v = p.frags[pf][t];
            if (v > 1) return false;
            inc_[pf * S + t][f * S + s] = v;
          }
        }
      }
    }
    return true;
  }

  /// Bit model for byte-oriented GF codecs (w == 1): the same F2-linear map
  /// acts on the 8 bits of every byte position independently. Probe each
  /// input bit; the response bytes are the companion columns.
  void probe_bit_model(const Codec& codec) {
    ASSERT_EQ(w_, 1u) << "non-XOR strip response from a multi-strip codec";
    inc_.assign(n_ * 8, std::vector<uint8_t>(k_ * 8, 0));
    for (size_t f = 0; f < k_; ++f)
      for (size_t b = 0; b < 8; ++b) inc_[f * 8 + b][f * 8 + b] = 1;
    Probe p(k_, n_, 1);
    for (size_t f = 0; f < k_; ++f) {
      for (size_t b = 0; b < 8; ++b) {
        p.clear(1);
        p.frags[f][0] = static_cast<uint8_t>(1u << b);
        codec.encode(p.data.data(), p.parity.data(), 1);
        for (size_t pf = k_; pf < n_; ++pf)
          for (size_t r = 0; r < 8; ++r)
            inc_[pf * 8 + r][f * 8 + b] = (p.frags[pf][0] >> r) & 1;
      }
    }
  }

  /// Symbol value of `sym` within a fragment buffer, as a byte array the
  /// elimination can XOR: the strip's bytes (strip model) or the bit plane
  /// as one 0/1 byte per position (bit model).
  std::vector<uint8_t> symbol_value(const uint8_t* frag, size_t sym,
                                    size_t frag_len) const {
    if (strip_model_) {
      const size_t sl = frag_len / w_;
      return std::vector<uint8_t>(frag + sym * sl, frag + (sym + 1) * sl);
    }
    std::vector<uint8_t> v(frag_len);
    for (size_t t = 0; t < frag_len; ++t) v[t] = (frag[t] >> sym) & 1;
    return v;
  }

  static void xor_into(std::vector<uint8_t>& acc, const std::vector<uint8_t>& v) {
    for (size_t i = 0; i < acc.size(); ++i) acc[i] ^= v[i];
  }

  /// The solver both entry points share. With `frags`/`out` null it only
  /// decides solvability; otherwise it carries right-hand-side byte arrays
  /// through the elimination and assembles the erased fragments.
  bool solve(const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased,
             const std::vector<const uint8_t*>* frags,
             std::vector<std::vector<uint8_t>>* out, size_t frag_len) const {
    const size_t S = symbols();
    std::vector<int> pos_of(n_, -1);  // fragment id -> index into available
    for (size_t i = 0; i < available.size(); ++i) pos_of[available[i]] = static_cast<int>(i);

    // Unknowns: every data symbol not directly readable.
    std::vector<int> unknown_of(k_ * S, -1);
    size_t n_unknown = 0;
    for (size_t f = 0; f < k_; ++f)
      if (pos_of[f] < 0)
        for (size_t s = 0; s < S; ++s) unknown_of[f * S + s] = static_cast<int>(n_unknown++);

    const bool values = frags != nullptr;
    const size_t empty_len = values ? (strip_model_ ? frag_len / w_ : frag_len) : 0;

    // Equations: every available PARITY symbol, rewritten over the unknowns
    // (known data contributions fold into the right-hand side).
    std::vector<std::vector<uint8_t>> eq;     // 0/1 rows over unknowns
    std::vector<std::vector<uint8_t>> rhs;    // parallel byte arrays
    for (uint32_t a : available) {
      if (a < k_) continue;
      for (size_t s = 0; s < S; ++s) {
        const std::vector<uint8_t>& row = inc_[a * S + s];
        std::vector<uint8_t> e(n_unknown, 0);
        std::vector<uint8_t> r;
        if (values) r = symbol_value((*frags)[pos_of[a]], s, frag_len);
        bool usable = true;
        for (size_t c = 0; c < k_ * S && usable; ++c) {
          if (!row[c]) continue;
          if (unknown_of[c] >= 0) {
            e[unknown_of[c]] = 1;
          } else if (values) {
            xor_into(r, symbol_value((*frags)[pos_of[c / S]], c % S, frag_len));
          }
        }
        eq.push_back(std::move(e));
        if (values) rhs.push_back(std::move(r));
      }
    }

    // Gauss-Jordan to reduced row-echelon form.
    std::vector<int> pivot_row(n_unknown, -1);
    size_t rank = 0;
    for (size_t col = 0; col < n_unknown && rank < eq.size(); ++col) {
      size_t sel = rank;
      while (sel < eq.size() && !eq[sel][col]) ++sel;
      if (sel == eq.size()) continue;
      std::swap(eq[sel], eq[rank]);
      if (values) std::swap(rhs[sel], rhs[rank]);
      for (size_t r = 0; r < eq.size(); ++r) {
        if (r == rank || !eq[r][col]) continue;
        for (size_t c = 0; c < n_unknown; ++c) eq[r][c] ^= eq[rank][c];
        if (values) xor_into(rhs[r], rhs[rank]);
      }
      pivot_row[col] = static_cast<int>(rank);
      ++rank;
    }

    // An unknown is determined iff its pivot row involves no other unknown
    // (free variables are the don't-cares of unread fragments).
    const auto determined = [&](size_t u) {
      if (pivot_row[u] < 0) return false;
      const std::vector<uint8_t>& row = eq[static_cast<size_t>(pivot_row[u])];
      for (size_t c = 0; c < n_unknown; ++c)
        if (row[c] && c != u) return false;
      return true;
    };

    if (out) out->clear();
    for (uint32_t e : erased) {
      std::vector<std::vector<uint8_t>> syms;
      if (e < k_) {
        for (size_t s = 0; s < S; ++s) {
          const size_t u = static_cast<size_t>(unknown_of[e * S + s]);
          if (!determined(u)) return false;
          if (values) syms.push_back(rhs[static_cast<size_t>(pivot_row[u])]);
        }
      } else {
        // Erased parity: re-encode its row; every touched data symbol must
        // be readable or determined.
        for (size_t s = 0; s < S; ++s) {
          const std::vector<uint8_t>& row = inc_[e * S + s];
          std::vector<uint8_t> v(empty_len, 0);
          for (size_t c = 0; c < k_ * S; ++c) {
            if (!row[c]) continue;
            if (unknown_of[c] < 0) {
              if (values)
                xor_into(v, symbol_value((*frags)[pos_of[c / S]], c % S, frag_len));
            } else {
              const size_t u = static_cast<size_t>(unknown_of[c]);
              if (!determined(u)) return false;
              if (values) xor_into(v, rhs[static_cast<size_t>(pivot_row[u])]);
            }
          }
          if (values) syms.push_back(std::move(v));
        }
      }
      if (!values) continue;
      std::vector<uint8_t> frag(frag_len, 0);
      for (size_t s = 0; s < S; ++s) {
        if (strip_model_) {
          std::copy(syms[s].begin(), syms[s].end(), frag.begin() + s * (frag_len / w_));
        } else {
          for (size_t t = 0; t < frag_len; ++t)
            frag[t] |= static_cast<uint8_t>((syms[s][t] & 1) << s);
        }
      }
      out->push_back(std::move(frag));
    }
    return true;
  }
};

// ---- conformance table -----------------------------------------------------

struct ShapeCase {
  std::string spec;
  /// Erasure tolerance the family guarantees at this shape: every pattern
  /// of <= guaranteed erased fragments MUST reconstruct (parity count for
  /// MDS families; the certified tolerance for sparse; 1 for lrc).
  size_t guaranteed = 0;
};

struct FamilyConformance {
  std::vector<ShapeCase> shapes;
  /// Locality claim (block granularity): for data block b, a survivor set
  /// strictly smaller than data_fragments() that must suffice to repair b.
  /// Null for families without the claim.
  std::function<std::vector<uint32_t>(const Codec&, uint32_t)> local_group;
  /// Reduced-read claim (strip granularity): upper bound on the input
  /// strips a single-block repair plan may touch when every other fragment
  /// is available. Null for families without the claim.
  std::function<size_t(const Codec&, uint32_t)> repair_read_bound;
};

/// Families other suites register at runtime as fixtures (test_api's
/// "test_mirror") are exempt from the registry sweep: they exist only when
/// those tests ran first in the same process. Real families must never use
/// the prefix.
inline bool test_fixture_family(const std::string& family) {
  return family.rfind("test_", 0) == 0;
}

/// Small conformance shapes for every registered family. The suites iterate
/// xorec::registered_families() against this table, so a family missing
/// here fails the suite (the intended tripwire for new families).
inline const std::map<std::string, FamilyConformance>& conformance_table() {
  static const auto* table = [] {
    auto* t = new std::map<std::string, FamilyConformance>;
    const auto args_of = [](const Codec& c) { return parse_spec(c.name()).args; };
    // rs/naive_xor/isal share the ISA-L matrix, which is only VERIFIED MDS
    // on the paper's grid — stick to it. vand/cauchy/rs16 are provably MDS.
    (*t)["rs"] = {{{"rs(8,2)", 2}}, nullptr, nullptr};
    (*t)["naive_xor"] = {{{"naive_xor(8,2)", 2}}, nullptr, nullptr};
    (*t)["isal"] = {{{"isal(8,2)", 2}}, nullptr, nullptr};
    (*t)["vand"] = {{{"vand(5,2)", 2}}, nullptr, nullptr};
    (*t)["cauchy"] = {{{"cauchy(5,3)", 3}}, nullptr, nullptr};
    (*t)["rs16"] = {{{"rs16(4,2)", 2}}, nullptr, nullptr};
    (*t)["evenodd"] = {{{"evenodd(4)", 2}}, nullptr, nullptr};
    (*t)["rdp"] = {{{"rdp(4)", 2}}, nullptr, nullptr};
    (*t)["star"] = {{{"star(4)", 3}}, nullptr, nullptr};
    (*t)["lrc"] = {
        {{"lrc(6,2,2)", 1}},
        [args_of](const Codec& c, uint32_t b) {
          const auto a = args_of(c);
          const altcodes::LrcGroup g = altcodes::lrc_group_of(a[0], a[1], b);
          std::vector<uint32_t> ids;
          for (uint32_t m = static_cast<uint32_t>(g.first); m < g.first + g.count; ++m)
            if (m != b) ids.push_back(m);
          ids.push_back(static_cast<uint32_t>(g.local_parity));
          return ids;
        },
        nullptr};
    (*t)["piggyback"] = {
        {{"piggyback(6,3,2)", 3}},
        nullptr,
        [args_of](const Codec& c, uint32_t b) {
          const auto a = args_of(c);
          return altcodes::piggyback_repair_reads(a[0], a[1], a[2], b).size();
        }};
    // One near-dense MDS-certified draw, one genuinely sparse draw whose
    // certified tolerance is whatever the rank checks proved.
    (*t)["sparse"] = {{{"sparse(6,3,90,1)", altcodes::sparse_certified_tolerance(6, 3, 90, 1)},
                       {"sparse(8,3,45,1)", altcodes::sparse_certified_tolerance(8, 3, 45, 1)}},
                      nullptr,
                      nullptr};
    return t;
  }();
  return *table;
}

// ---- pattern drivers -------------------------------------------------------

/// The complement survivor set: every fragment id of `codec` not in
/// `erased`, ascending.
inline std::vector<uint32_t> all_but(const Codec& codec,
                                     const std::vector<uint32_t>& erased) {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end())
      available.push_back(id);
  return available;
}

/// All erasure patterns of 1..max_erased fragment ids out of n, ascending.
inline std::vector<std::vector<uint32_t>> erasure_patterns(size_t n, size_t max_erased) {
  std::vector<std::vector<uint32_t>> out;
  std::vector<uint32_t> cur;
  const std::function<void(uint32_t)> rec = [&](uint32_t first) {
    if (!cur.empty()) out.push_back(cur);
    if (cur.size() == max_erased) return;
    for (uint32_t i = first; i < n; ++i) {
      cur.push_back(i);
      rec(i + 1);
      cur.pop_back();
    }
  };
  rec(0);
  return out;
}

/// A random encoded stripe: data payload from `seed`, parities from the
/// codec under test.
struct Stripe {
  std::vector<std::vector<uint8_t>> frags;
  size_t frag_len = 0;
};

inline Stripe encoded_stripe(const Codec& codec, uint32_t seed, size_t stripes = 3) {
  Stripe st;
  st.frag_len = codec.fragment_multiple() * stripes;
  st.frags.assign(codec.total_fragments(), std::vector<uint8_t>(st.frag_len));
  std::mt19937 rng(seed);
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t f = 0; f < codec.data_fragments(); ++f) {
    for (auto& b : st.frags[f]) b = static_cast<uint8_t>(rng());
    data.push_back(st.frags[f].data());
  }
  for (size_t f = codec.data_fragments(); f < codec.total_fragments(); ++f)
    parity.push_back(st.frags[f].data());
  codec.encode(data.data(), parity.data(), st.frag_len);
  return st;
}

/// Distinct input strips the plan's compiled data-decode step reads — the
/// repair-read measure of the reduced-read families. The flat base SLP is a
/// safe superset of every optimized form (the optimizer never introduces
/// constants). 0 when the plan has no SLP decode step.
inline size_t plan_touched_input_strips(const ReconstructPlan& plan) {
  const slp::PipelineResult* pipe = plan.decode_pipeline();
  if (!pipe) return 0;
  std::vector<uint32_t> ids;
  for (const slp::Instruction& ins : pipe->base.body)
    for (const slp::Term& term : ins.args)
      if (term.is_const()) ids.push_back(term.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

/// Run ONE pattern differentially: solvability must agree between codec and
/// reference; when solvable, the compiled plan's output must byte-match
/// both the original fragments and the naive reference decode.
inline void check_pattern(const Codec& codec, const ReferenceModel& ref, const Stripe& st,
                          const std::vector<uint32_t>& erased, size_t guaranteed) {
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available.push_back(id);
      avail_ptrs.push_back(st.frags[id].data());
    }

  std::shared_ptr<const ReconstructPlan> plan;
  try {
    plan = codec.plan_reconstruct(available, erased);
  } catch (const std::invalid_argument&) {
    EXPECT_GT(erased.size(), guaranteed)
        << "codec rejected a pattern inside its guaranteed tolerance";
    EXPECT_FALSE(ref.solvable(available, erased))
        << "codec rejected a pattern the naive reference can solve";
    return;
  }
  const auto ref_out = ref.reconstruct(available, avail_ptrs, erased, st.frag_len);
  ASSERT_TRUE(ref_out.has_value())
      << "codec accepted a pattern the naive reference cannot solve";

  std::vector<std::vector<uint8_t>> out(erased.size(),
                                        std::vector<uint8_t>(st.frag_len, 0xCD));
  std::vector<uint8_t*> out_ptrs;
  for (auto& o : out) out_ptrs.push_back(o.data());
  plan->execute(avail_ptrs.data(), out_ptrs.data(), st.frag_len);
  for (size_t i = 0; i < erased.size(); ++i) {
    EXPECT_EQ(out[i], st.frags[erased[i]]) << "fragment " << erased[i] << " vs truth";
    EXPECT_EQ(out[i], (*ref_out)[i]) << "fragment " << erased[i] << " vs reference";
  }
}

/// Every C(n, <= m) erasure pattern of one codec, differentially.
inline void check_all_patterns(const Codec& codec, size_t guaranteed, uint32_t seed) {
  const ReferenceModel ref(codec);
  const Stripe st = encoded_stripe(codec, seed);
  for (const auto& erased :
       erasure_patterns(codec.total_fragments(), codec.parity_fragments())) {
    SCOPED_TRACE(::testing::Message() << codec.name() << " erased=" << erased.size()
                                      << " first=" << erased.front());
    check_pattern(codec, ref, st, erased, guaranteed);
  }
}

}  // namespace xorec::conformance
