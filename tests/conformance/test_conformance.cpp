// The registry-wide conformance suite (the [test] tentpole): every
// registered family is enumerated from the registry, every C(k+m, <= m)
// erasure pattern of its conformance shapes is checked differentially
// against the naive empirical reference, the locality/reduced-read claims
// (lrc, piggyback) are asserted on real compiled plans, and the new
// families are proven to serve warm plan-cache hits through CodecService.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "conformance/codec_conformance.hpp"
#include "ec/plan_cache.hpp"
#include "runtime/jit_cache.hpp"

using namespace xorec;
using namespace xorec::conformance;

namespace {

std::string tmp_path(const std::string& tag) {
  return ::testing::TempDir() + "xorec_conformance_" + tag + ".profile";
}

}  // namespace

// Every registered family must have conformance shapes, and every table
// entry must still name a registered family. Registering a new family
// without teaching the harness about it fails HERE, by name.
TEST(conformance, EveryRegisteredFamilyHasShapes) {
  const auto& table = conformance_table();
  for (const std::string& family : registered_families()) {
    if (test_fixture_family(family)) continue;  // runtime fixtures of other suites
    ASSERT_TRUE(table.count(family))
        << "family \"" << family << "\" is registered but has no conformance shapes — "
        << "add it to conformance_table() in tests/conformance/codec_conformance.hpp";
    ASSERT_FALSE(table.at(family).shapes.empty())
        << "family \"" << family << "\" has an empty shape list";
  }
  for (const auto& [family, fc] : table) {
    const auto families = registered_families();
    EXPECT_NE(std::find(families.begin(), families.end(), family), families.end())
        << "conformance_table() names unregistered family \"" << family << "\"";
    for (const ShapeCase& shape : fc.shapes)
      EXPECT_EQ(parse_spec(shape.spec).family, family)
          << "shape \"" << shape.spec << "\" filed under the wrong family";
  }
}

// The headline check: for every family the registry knows, every erasure
// pattern of up to m fragments either round-trips byte-identically (plan
// output == original payload == naive reference decode) or is rejected by
// BOTH the codec and the reference — and patterns within the family's
// guaranteed tolerance must round-trip unconditionally.
TEST(conformance, AllErasurePatternsRoundTripEveryFamily) {
  const auto& table = conformance_table();
  uint32_t seed = 0xC0FFEE;
  for (const std::string& family : registered_families()) {
    if (test_fixture_family(family)) continue;  // runtime fixtures of other suites
    ASSERT_TRUE(table.count(family)) << family;
    for (const ShapeCase& shape : table.at(family).shapes) {
      SCOPED_TRACE(shape.spec);
      const auto codec = make_codec(shape.spec);
      check_all_patterns(*codec, shape.guaranteed, seed++);
    }
  }
}

// The jit execution backend, registry-wide: for every family shape, the
// runtime-compiled native plans (exec=jit) must be byte-identical to the
// interpreter (exec=interp) on encode and on every C(k+m, <= m) erasure
// pattern — same recover/reject verdicts included. Families whose specs do
// not take exec= (the byte-GF isal baseline) are skipped in place; without a
// host compiler the whole suite SKIPs, because exec=jit would silently
// degrade to lowered and the test would no longer exercise generated code.
TEST(conformance, JitBackendByteIdenticalToInterpEveryFamily) {
  if (!runtime::JitCache::available())
    GTEST_SKIP() << "no host C compiler: exec=jit degrades to lowered here";
  const auto& table = conformance_table();
  uint32_t seed = 0x1A57;
  size_t swept = 0;
  for (const std::string& family : registered_families()) {
    if (test_fixture_family(family)) continue;
    ASSERT_TRUE(table.count(family)) << family;
    for (const ShapeCase& shape : table.at(family).shapes) {
      SCOPED_TRACE(shape.spec);
      std::unique_ptr<Codec> jit, interp;
      try {
        jit = make_codec(shape.spec + "@exec=jit");
        interp = make_codec(shape.spec + "@exec=interp");
      } catch (const std::invalid_argument&) {
        continue;  // family does not take exec= (byte-GF codecs)
      }
      ++swept;
      ++seed;
      const Stripe js = encoded_stripe(*jit, seed);
      const Stripe is = encoded_stripe(*interp, seed);
      ASSERT_EQ(js.frag_len, is.frag_len);
      for (size_t f = 0; f < jit->total_fragments(); ++f)
        ASSERT_EQ(js.frags[f], is.frags[f]) << "encode mismatch, fragment " << f;

      // Every jit reconstruct plan is a fresh compiler invocation (~0.3 s),
      // so the pattern set is stride-sampled to a fixed budget per shape.
      // The combination enumeration interleaves sizes, so the stride still
      // visits every erasure count 1..m; the full un-sampled matrix runs
      // under exec=interp/lowered in AllErasurePatternsRoundTripEveryFamily.
      const auto patterns =
          erasure_patterns(jit->total_fragments(), jit->parity_fragments());
      constexpr size_t kPatternBudget = 8;
      const size_t stride =
          std::max<size_t>(1, (patterns.size() + kPatternBudget - 1) / kPatternBudget);
      for (size_t pi = 0; pi < patterns.size(); pi += stride) {
        const auto& erased = patterns[pi];
        SCOPED_TRACE(::testing::Message()
                     << "erased n=" << erased.size() << " first=" << erased.front());
        const auto available = all_but(*jit, erased);
        std::vector<const uint8_t*> in_ptrs;
        for (uint32_t id : available) in_ptrs.push_back(is.frags[id].data());

        std::shared_ptr<const ReconstructPlan> ip, jp;
        try {
          ip = interp->plan_reconstruct(available, erased);
        } catch (const std::invalid_argument&) {
          EXPECT_THROW(jit->plan_reconstruct(available, erased), std::invalid_argument);
          continue;
        }
        ASSERT_NO_THROW(jp = jit->plan_reconstruct(available, erased));

        std::vector<std::vector<uint8_t>> i_out(erased.size()), j_out(erased.size());
        std::vector<uint8_t*> ip_ptrs, jp_ptrs;
        for (size_t e = 0; e < erased.size(); ++e) {
          i_out[e].assign(is.frag_len, 0xCD);
          j_out[e].assign(is.frag_len, 0xEE);  // distinct poison per backend
          ip_ptrs.push_back(i_out[e].data());
          jp_ptrs.push_back(j_out[e].data());
        }
        ip->execute(in_ptrs.data(), ip_ptrs.data(), is.frag_len);
        jp->execute(in_ptrs.data(), jp_ptrs.data(), is.frag_len);
        for (size_t e = 0; e < erased.size(); ++e)
          ASSERT_EQ(j_out[e], i_out[e]) << "reconstruct mismatch, fragment " << erased[e];
      }
    }
  }
  EXPECT_GE(swept, 8u) << "jit sweep covered suspiciously few families";
}

// MDS families guarantee tolerance == parity count; the harness data must
// say so, or the suite above would silently under-assert.
TEST(conformance, GuaranteedToleranceMatchesFamilyClaims) {
  const auto& table = conformance_table();
  for (const char* family : {"vand", "cauchy", "rs16", "evenodd", "rdp", "star",
                             "piggyback"}) {
    for (const ShapeCase& shape : table.at(family).shapes) {
      const auto codec = make_codec(shape.spec);
      EXPECT_EQ(shape.guaranteed, codec->parity_fragments())
          << shape.spec << " is MDS; the table must demand full tolerance";
    }
  }
  // The sparse shapes carry exactly what the rank checks certified.
  for (const ShapeCase& shape : table.at("sparse").shapes) {
    const auto args = parse_spec(shape.spec).args;
    EXPECT_EQ(shape.guaranteed,
              altcodes::sparse_certified_tolerance(args[0], args[1], args[2], args[3]))
        << shape.spec;
  }
}

// Locality claim (lrc): one lost data block repairs from its declared group
// alone — strictly fewer fragments than an MDS repair reads.
TEST(conformance, LocalityFamiliesRepairFromTheirGroup) {
  const auto& table = conformance_table();
  size_t claims = 0;
  for (const auto& [family, fc] : table) {
    if (!fc.local_group) continue;
    ++claims;
    for (const ShapeCase& shape : fc.shapes) {
      const auto codec = make_codec(shape.spec);
      const Stripe st = encoded_stripe(*codec, 0xBADA55);
      for (uint32_t b = 0; b < codec->data_fragments(); ++b) {
        SCOPED_TRACE(::testing::Message() << shape.spec << " block " << b);
        std::vector<uint32_t> group = fc.local_group(*codec, b);
        ASSERT_LT(group.size(), codec->data_fragments())
            << "locality group is not smaller than an MDS read";
        std::sort(group.begin(), group.end());
        std::vector<const uint8_t*> avail_ptrs;
        for (uint32_t id : group) avail_ptrs.push_back(st.frags[id].data());
        std::vector<uint8_t> out(st.frag_len, 0xCD);
        uint8_t* out_ptr = out.data();
        const auto plan = codec->plan_reconstruct(group, {b});
        plan->execute(avail_ptrs.data(), &out_ptr, st.frag_len);
        EXPECT_EQ(out, st.frags[b]);
      }
    }
  }
  EXPECT_GE(claims, 1u) << "lrc must carry a locality claim";
}

// Reduced-read claim (piggyback): with every other fragment available, the
// compiled single-block repair plan touches no more input strips than the
// design's read set — strictly fewer than the k*w a plain RS repair reads
// (the piggybacking win) whenever the shape has spare carrier parities.
TEST(conformance, ReducedReadFamiliesTouchFewerStrips) {
  const auto& table = conformance_table();
  size_t claims = 0;
  for (const auto& [family, fc] : table) {
    if (!fc.repair_read_bound) continue;
    ++claims;
    for (const ShapeCase& shape : fc.shapes) {
      const auto codec = make_codec(shape.spec);
      const size_t naive_reads = codec->data_fragments() * codec->fragment_multiple();
      for (uint32_t b = 0; b < codec->data_fragments(); ++b) {
        SCOPED_TRACE(::testing::Message() << shape.spec << " block " << b);
        const auto plan = codec->plan_reconstruct(all_but(*codec, {b}), {b});
        const size_t touched = plan_touched_input_strips(*plan);
        const size_t bound = fc.repair_read_bound(*codec, b);
        EXPECT_GT(touched, 0u);
        EXPECT_LE(touched, bound) << "plan reads beyond the designed repair set";
        EXPECT_LT(bound, naive_reads) << "designed repair set is not reduced-read";
      }
    }
  }
  EXPECT_GE(claims, 1u) << "piggyback must carry a reduced-read claim";
}

// Acceptance: both new families serve warm plan-cache hits through
// CodecService — profile save -> fresh service -> warmup replay -> every
// serving-window lookup is a hit.
TEST(conformance, NewFamiliesServeWarmPlanCacheHitsThroughService) {
  for (const std::string spec : {"piggyback(6,3,2)", "sparse(6,3,90,1)"}) {
    SCOPED_TRACE(spec);
    const std::string path = tmp_path(spec.substr(0, spec.find('(')));
    std::remove(path.c_str());

    const std::vector<std::vector<uint32_t>> patterns{{0}, {1, 2}, {0, 7}};
    {
      CodecService::Options opt;
      opt.shards = 2;
      opt.plan_cache = std::make_shared<ec::PlanCache>(0, 2);
      CodecService cold(opt);
      const ServiceHandle h = cold.acquire(spec);
      for (const auto& erased : patterns)
        EXPECT_NO_THROW((void)h.plan_reconstruct(all_but(h.codec(), erased), erased));
      EXPECT_GT(cold.save_profile(path), 0u);
      const ServiceStats s = cold.stats();
      EXPECT_GT(s.warm_misses, 0u) << "cold service should have compiled in-window";
    }
    {
      CodecService::Options opt;
      opt.shards = 2;
      opt.plan_cache = std::make_shared<ec::PlanCache>(0, 2);
      CodecService warmed(opt);
      const auto report = warmed.warmup(path);
      EXPECT_EQ(report.codecs, 1u);
      EXPECT_GE(report.patterns, patterns.size());
      EXPECT_GT(report.compiled, 0u) << "warmup should precompile the saved patterns";
      EXPECT_EQ(report.skipped, 0u);

      const ServiceHandle h = warmed.acquire(spec);
      for (const auto& erased : patterns)
        (void)h.plan_reconstruct(all_but(h.codec(), erased), erased);
      const ServiceStats s = warmed.stats();
      EXPECT_GT(s.warm_hits, 0u);
      EXPECT_EQ(s.warm_misses, 0u) << "a warmed service must not compile while serving";
      EXPECT_EQ(s.warm_hit_rate(), 1.0);
      EXPECT_GT(h.codec().cached_program_count(), 0u);
    }
    std::remove(path.c_str());
  }
}

// Canonical-spec normalization of the new families: default-able trailing
// args are filled, spellings pool together, names round-trip.
TEST(conformance, NewFamilySpecsNormalizeAndRoundTrip) {
  EXPECT_EQ(canonical_spec("piggyback(10,3)"), "piggyback(10,3,2)");
  EXPECT_EQ(canonical_spec("piggyback(6,3,2)@block=2048"), "piggyback(6,3,2)");
  EXPECT_EQ(canonical_spec("sparse(8,3,30)"), "sparse(8,3,30,1)");
  EXPECT_EQ(canonical_spec("sparse(6,3,90,1)@threads=1"), "sparse(6,3,90,1)");

  for (const char* spec : {"piggyback(6,3,2)", "sparse(6,3,90,1)"}) {
    const auto codec = make_codec(spec);
    EXPECT_EQ(codec->name(), spec);
    EXPECT_NO_THROW((void)make_codec(codec->name()));
  }

  EXPECT_THROW((void)make_codec("piggyback(6)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("piggyback(6,1,2)"), std::invalid_argument);  // m < 2
  EXPECT_THROW((void)make_codec("piggyback(6,3,4)"), std::invalid_argument);  // sub > m
  EXPECT_THROW((void)make_codec("piggyback(6,3,1)"), std::invalid_argument);  // sub < 2
  EXPECT_THROW((void)make_codec("piggyback(200,60,2)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("piggyback(6,3,2)@matrix=cauchy"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(6,3)"), std::invalid_argument);  // arity
  EXPECT_THROW((void)make_codec("sparse(6,3,0)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(6,3,101)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(0,3,50)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(6,3,50,1)@matrix=vand"), std::invalid_argument);
}

// The empirical reference model itself: it must detect the strip-XOR
// structure of the bitmatrix codecs and the byte-GF structure of isal.
TEST(conformance, ReferenceModelDetectsCodecStructure) {
  EXPECT_TRUE(ReferenceModel(*make_codec("rs(5,2)")).strip_model());
  EXPECT_TRUE(ReferenceModel(*make_codec("evenodd(4)")).strip_model());
  EXPECT_TRUE(ReferenceModel(*make_codec("piggyback(5,3,2)")).strip_model());
  EXPECT_FALSE(ReferenceModel(*make_codec("isal(5,2)")).strip_model());
}
