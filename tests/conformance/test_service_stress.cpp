// CodecService concurrency stress: N threads hammer encode/reconstruct
// through mixed equivalent and distinct specs (the two new families
// included), then ServiceStats invariants are asserted — ops conservation
// across shards and pools, queue depths back to 0 after flush, equivalent
// spellings pooled, every future completing cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "conformance/codec_conformance.hpp"
#include "ec/plan_cache.hpp"

using namespace xorec;
using namespace xorec::conformance;

namespace {

constexpr size_t kThreads = 8;
constexpr size_t kOpsPerThread = 24;

// Mixed traffic: distinct pools plus equivalent spellings of the same pool
// (whitespace / key order / trailing-default-arg variants must collapse).
const std::vector<std::string>& stress_specs() {
  static const std::vector<std::string> specs{
      "rs(6,3)",
      "rs(6, 3)",  // same pool as rs(6,3)
      "piggyback(6,3,2)",
      "piggyback(6,3)",  // same pool: sub defaults to 2
      "sparse(6,3,90,1)",
      "sparse(6,3,90,1)@block=2048",  // same pool: default block dropped
      "cauchy(5,2)",
      "lrc(6,2,2)",
  };
  return specs;
}

size_t distinct_canonical_count() {
  std::vector<std::string> keys;
  for (const std::string& s : stress_specs()) keys.push_back(canonical_spec(s));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys.size();
}

}  // namespace

TEST(ServiceStress, ConcurrentMixedSpecTrafficKeepsStatsConsistent) {
  CodecService::Options opt;
  opt.shards = 3;
  opt.workers_per_shard = 2;
  opt.plan_cache = std::make_shared<ec::PlanCache>(0, 4);
  CodecService service(opt);

  std::atomic<size_t> encodes{0}, reconstructs{0}, acquires{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(static_cast<uint32_t>(0x57E55 + tid));
      try {
        for (size_t op = 0; op < kOpsPerThread; ++op) {
          const std::string& spec = stress_specs()[rng() % stress_specs().size()];
          const ServiceHandle h = service.acquire(spec);
          acquires.fetch_add(1);
          const Codec& codec = h.codec();
          Stripe st = encoded_stripe(codec, static_cast<uint32_t>(rng()));

          // Re-encode the stripe through the shard session.
          std::vector<const uint8_t*> data;
          std::vector<uint8_t*> parity;
          for (size_t f = 0; f < codec.data_fragments(); ++f)
            data.push_back(st.frags[f].data());
          for (size_t f = codec.data_fragments(); f < codec.total_fragments(); ++f)
            parity.push_back(st.frags[f].data());
          h.encode(data.data(), parity.data(), st.frag_len).get();
          encodes.fetch_add(1);

          // Repair one lost data block (every family guarantees that much).
          const uint32_t lost = rng() % static_cast<uint32_t>(codec.data_fragments());
          std::vector<uint32_t> available;
          std::vector<const uint8_t*> avail_ptrs;
          for (uint32_t id = 0; id < codec.total_fragments(); ++id)
            if (id != lost) {
              available.push_back(id);
              avail_ptrs.push_back(st.frags[id].data());
            }
          std::vector<uint8_t> out(st.frag_len, 0xCD);
          uint8_t* out_ptr = out.data();
          if (op % 2 == 0) {
            const auto plan = h.plan_reconstruct(available, {lost});
            h.reconstruct(plan, avail_ptrs.data(), &out_ptr, st.frag_len).get();
          } else {
            h.rebuild(available, avail_ptrs.data(), {lost}, &out_ptr, st.frag_len).get();
          }
          reconstructs.fetch_add(1);
          if (out != st.frags[lost]) {
            ADD_FAILURE() << spec << ": repaired bytes differ (thread " << tid << ")";
            failed.store(true);
            return;
          }
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "thread " << tid << " threw: " << e.what();
        failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  service.flush();
  const ServiceStats stats = service.stats();

  // Ops conservation: every routed job is accounted to exactly one shard
  // and one pool; nothing lost, nothing double-counted.
  size_t shard_jobs = 0, shard_depth = 0;
  for (const ShardStats& s : stats.shards) {
    shard_jobs += s.submitted;
    shard_depth += s.queue_depth;
  }
  size_t pool_encodes = 0, pool_reconstructs = 0, pool_clients = 0;
  for (const PoolStats& p : stats.pools) {
    pool_encodes += p.encodes;
    pool_reconstructs += p.reconstructs;
    pool_clients += p.clients;
  }
  EXPECT_EQ(pool_encodes, encodes.load());
  EXPECT_EQ(pool_reconstructs, reconstructs.load());
  EXPECT_EQ(shard_jobs, encodes.load() + reconstructs.load());
  EXPECT_EQ(pool_clients, acquires.load());

  // Queue depth returns to 0 after the flush barrier.
  EXPECT_EQ(shard_depth, 0u);

  // Equivalent spellings collapsed: one pool per canonical spec, and the
  // new families pooled with their default-arg spellings.
  EXPECT_EQ(stats.pools.size(), distinct_canonical_count());
  EXPECT_LT(distinct_canonical_count(), stress_specs().size());

  // Traffic actually moved bytes, and the plan cache saw the serving load.
  uint64_t bytes = 0;
  for (const ShardStats& s : stats.shards) bytes += s.bytes_coded;
  EXPECT_GT(bytes, 0u);
  EXPECT_GT(stats.cache.hits + stats.cache.misses, 0u);
}

TEST(ServiceStress, FlushFromManyThreadsIsSafe) {
  CodecService::Options opt;
  opt.shards = 2;
  opt.workers_per_shard = 1;
  opt.plan_cache = std::make_shared<ec::PlanCache>(0, 2);
  CodecService service(opt);
  const ServiceHandle h = service.acquire("piggyback(6,3,2)");
  const Stripe st = encoded_stripe(h.codec(), 0xF10C);

  std::vector<std::thread> threads;
  for (size_t tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&] {
      std::vector<const uint8_t*> data;
      std::vector<std::vector<uint8_t>> parity_bufs(h.codec().parity_fragments(),
                                                    std::vector<uint8_t>(st.frag_len));
      std::vector<uint8_t*> parity;
      for (size_t f = 0; f < h.codec().data_fragments(); ++f)
        data.push_back(st.frags[f].data());
      for (auto& p : parity_bufs) parity.push_back(p.data());
      for (size_t i = 0; i < 8; ++i) {
        auto fut = h.encode(data.data(), parity.data(), st.frag_len);
        service.flush();  // must imply the job finished
        EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
        fut.get();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  size_t depth = 0;
  for (const ShardStats& s : service.stats().shards) depth += s.queue_depth;
  EXPECT_EQ(depth, 0u);
}
