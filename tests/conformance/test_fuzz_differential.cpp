// Differential fuzz: seeded random payloads x random erasure patterns x
// every registered family, compiled-plan decode vs the naive empirical
// reference, byte for byte. Iterations are bounded so ctest stays fast;
// the seeds are fixed so any failure replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "conformance/codec_conformance.hpp"

using namespace xorec;
using namespace xorec::conformance;

namespace {

constexpr size_t kRoundsPerShape = 12;

/// A random erasure pattern of 1..m fragments (uniform size, then ids).
std::vector<uint32_t> random_pattern(std::mt19937& rng, size_t n, size_t m) {
  const size_t count = 1 + rng() % m;
  std::vector<uint32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < count; ++i)
    std::swap(ids[i], ids[i + rng() % (n - i)]);
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

TEST(conformanceFuzz, RandomPayloadsRandomPatternsEveryFamily) {
  const auto& table = conformance_table();
  for (const std::string& family : registered_families()) {
    if (test_fixture_family(family)) continue;  // runtime fixtures of other suites
    ASSERT_TRUE(table.count(family)) << family;
    for (const ShapeCase& shape : table.at(family).shapes) {
      SCOPED_TRACE(shape.spec);
      const auto codec = make_codec(shape.spec);
      const ReferenceModel ref(*codec);
      std::mt19937 rng(0xF152 + std::hash<std::string>{}(shape.spec) % 0xFFFF);
      for (size_t round = 0; round < kRoundsPerShape; ++round) {
        // Vary both the payload and the stripe length (1..3 fragment
        // multiples) so strip slicing and executor blocking get exercised.
        const Stripe st =
            encoded_stripe(*codec, static_cast<uint32_t>(rng()), 1 + round % 3);
        const auto erased =
            random_pattern(rng, codec->total_fragments(), codec->parity_fragments());
        SCOPED_TRACE(::testing::Message()
                     << "round " << round << " erased n=" << erased.size()
                     << " first=" << erased.front());
        check_pattern(*codec, ref, st, erased, shape.guaranteed);
      }
    }
  }
}

// The one-shot reconstruct() path must agree with the plan path it wraps —
// fuzz a few rounds through the other API entry point.
TEST(conformanceFuzz, OneShotReconstructAgreesWithPlans) {
  for (const std::string spec : {"piggyback(6,3,2)", "sparse(6,3,90,1)", "lrc(6,2,2)"}) {
    SCOPED_TRACE(spec);
    const auto codec = make_codec(spec);
    std::mt19937 rng(0xD1FF);
    for (size_t round = 0; round < 6; ++round) {
      const Stripe st = encoded_stripe(*codec, static_cast<uint32_t>(rng()));
      const auto erased =
          random_pattern(rng, codec->total_fragments(), codec->parity_fragments());
      std::vector<uint32_t> available;
      std::vector<const uint8_t*> avail_ptrs;
      for (uint32_t id = 0; id < codec->total_fragments(); ++id)
        if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
          available.push_back(id);
          avail_ptrs.push_back(st.frags[id].data());
        }
      std::vector<std::vector<uint8_t>> plan_out(erased.size(),
                                                 std::vector<uint8_t>(st.frag_len, 0xAA));
      std::vector<std::vector<uint8_t>> oneshot_out(
          erased.size(), std::vector<uint8_t>(st.frag_len, 0xBB));
      std::vector<uint8_t*> plan_ptrs, oneshot_ptrs;
      for (auto& o : plan_out) plan_ptrs.push_back(o.data());
      for (auto& o : oneshot_out) oneshot_ptrs.push_back(o.data());

      bool plan_ok = true, oneshot_ok = true;
      try {
        codec->plan_reconstruct(available, erased)
            ->execute(avail_ptrs.data(), plan_ptrs.data(), st.frag_len);
      } catch (const std::invalid_argument&) {
        plan_ok = false;
      }
      try {
        codec->reconstruct(available, avail_ptrs.data(), erased, oneshot_ptrs.data(),
                           st.frag_len);
      } catch (const std::invalid_argument&) {
        oneshot_ok = false;
      }
      ASSERT_EQ(plan_ok, oneshot_ok);
      if (plan_ok)
        for (size_t i = 0; i < erased.size(); ++i) {
          EXPECT_EQ(plan_out[i], oneshot_out[i]);
          EXPECT_EQ(plan_out[i], st.frags[erased[i]]);
        }
    }
  }
}
