// The blocked executor: compiled programs over real byte strips must match
// the set-semantics oracle for every pipeline stage, block size, ISA, thread
// count and stagger setting; plus arena layout checks.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <thread>

#include "runtime/aligned_buffer.hpp"
#include "runtime/executor.hpp"
#include "slp/fusion.hpp"
#include "slp/repair.hpp"
#include "slp/schedule_dfs.hpp"
#include "slp/schedule_greedy.hpp"
#include "slp/semantics.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec;
using namespace xorec::slp::testing;

namespace {

std::vector<std::vector<uint8_t>> random_strips(size_t n, size_t len, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> s(n, std::vector<uint8_t>(len));
  for (auto& strip : s)
    for (auto& b : strip) b = static_cast<uint8_t>(rng());
  return s;
}

/// Reference: XOR together the input strips named by each output's value set.
std::vector<std::vector<uint8_t>> oracle_outputs(const slp::Program& p,
                                                 const std::vector<std::vector<uint8_t>>& in,
                                                 size_t len) {
  const auto values = slp::denotation(p);
  std::vector<std::vector<uint8_t>> out(values.size(), std::vector<uint8_t>(len, 0));
  for (size_t o = 0; o < values.size(); ++o)
    for (uint32_t c : values[o].ones())
      for (size_t i = 0; i < len; ++i) out[o][i] ^= in[c][i];
  return out;
}

void run_and_check(const slp::Program& p, const runtime::ExecOptions& opt, size_t len,
                   uint32_t seed) {
  const auto in = random_strips(p.num_consts, len, seed);
  std::vector<const uint8_t*> in_ptrs;
  for (const auto& s : in) in_ptrs.push_back(s.data());
  std::vector<std::vector<uint8_t>> out(p.outputs.size(), std::vector<uint8_t>(len, 0xAB));
  std::vector<uint8_t*> out_ptrs;
  for (auto& s : out) out_ptrs.push_back(s.data());

  runtime::Executor exec(runtime::compile(p), opt);
  exec.run(in_ptrs.data(), out_ptrs.data(), len);
  EXPECT_EQ(out, oracle_outputs(p, in, len));
}

}  // namespace

TEST(ExecCompile, SpacesAreResolved) {
  const auto e = runtime::compile(make_peg());
  EXPECT_EQ(e.num_inputs, 7u);
  EXPECT_EQ(e.num_outputs, 3u);
  // v0 and v2 are not returned -> scratch; v1, v3, v4 -> output strips.
  EXPECT_EQ(e.num_scratch, 2u);
  ASSERT_EQ(e.ops.size(), 5u);
  EXPECT_EQ(e.ops[0].dst.space, runtime::Space::Scratch);
  EXPECT_EQ(e.ops[1].dst.space, runtime::Space::Out);
}

TEST(ExecCompile, RejectsDuplicateOutputs) {
  slp::Program p = make_peg();
  p.outputs = {1, 1, 4};
  EXPECT_THROW(runtime::compile(p), std::invalid_argument);
}

TEST(Executor, PegMatchesOracle) {
  run_and_check(make_peg(), {.block_size = 64}, 1000, 1);
}

TEST(Executor, PebbleProgramInPlaceUpdates) {
  // P_reg reuses v0 in place; the executor must read old-value semantics.
  run_and_check(make_preg(), {.block_size = 128}, 777, 2);
}

class ExecutorSweep
    : public ::testing::TestWithParam<std::tuple<size_t /*block*/, kernel::Isa,
                                                 size_t /*threads*/, bool /*stagger*/>> {};

TEST_P(ExecutorSweep, FullPipelineMatchesOracle) {
  const auto [block, isa, threads, stagger] = GetParam();
  const slp::Program base = random_flat(40, 16, 99);
  const slp::Program sched = slp::schedule_dfs(slp::fuse(slp::xor_repair_compress(base)));
  for (auto backend : {runtime::ExecBackend::Interp, runtime::ExecBackend::Lowered}) {
    runtime::ExecOptions opt;
    opt.block_size = block;
    opt.isa = isa;
    opt.threads = threads;
    opt.stagger_scratch = stagger;
    opt.backend = backend;
    run_and_check(sched, opt, 10240, 7);
    run_and_check(sched, opt, 10000, 8);  // ragged tail (not a block multiple)
    run_and_check(sched, opt, 100, 9);    // shorter than one block
  }
}

std::string executor_sweep_name(
    const ::testing::TestParamInfo<std::tuple<size_t, kernel::Isa, size_t, bool>>& info) {
  return "B" + std::to_string(std::get<0>(info.param)) + "_" +
         kernel::isa_name(std::get<1>(info.param)) + "_t" +
         std::to_string(std::get<2>(info.param)) +
         (std::get<3>(info.param) ? "_stagger" : "_plain");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ExecutorSweep,
    ::testing::Combine(::testing::Values<size_t>(64, 1024, 4096),
                       ::testing::Values(kernel::Isa::Scalar, kernel::Isa::Avx2),
                       ::testing::Values<size_t>(1, 4), ::testing::Bool()),
    executor_sweep_name);

TEST(Executor, AllPipelineStagesAgree) {
  const slp::Program base = random_flat(48, 24, 123);
  const slp::Program co = slp::xor_repair_compress(base);
  const slp::Program fu = slp::fuse(co);
  const slp::Program dfs = slp::schedule_dfs(fu);
  const slp::Program greedy = slp::schedule_greedy(fu, 32);

  const size_t len = 4096;
  const auto in = random_strips(48, len, 5);
  std::vector<const uint8_t*> in_ptrs;
  for (const auto& s : in) in_ptrs.push_back(s.data());

  auto run = [&](const slp::Program& p) {
    std::vector<std::vector<uint8_t>> out(p.outputs.size(), std::vector<uint8_t>(len));
    std::vector<uint8_t*> out_ptrs;
    for (auto& s : out) out_ptrs.push_back(s.data());
    runtime::Executor exec(runtime::compile(p), {.block_size = 512});
    exec.run(in_ptrs.data(), out_ptrs.data(), len);
    return out;
  };

  const auto want = run(base);
  EXPECT_EQ(run(base.binary_expanded()), want);
  EXPECT_EQ(run(co.binary_expanded()), want);
  EXPECT_EQ(run(fu), want);
  EXPECT_EQ(run(dfs), want);
  EXPECT_EQ(run(greedy), want);
}

TEST(StripArena, StaggeredOffsetsFollowThePaperFormula) {
  const size_t B = 1024;
  runtime::StripArena arena(16, 8192, B, /*stagger=*/true);
  for (size_t i = 0; i < 16; ++i) {
    const uintptr_t addr = reinterpret_cast<uintptr_t>(arena.strip(i));
    EXPECT_EQ(addr % runtime::kCachePage, (i * B) % runtime::kCachePage) << "strip " << i;
  }
}

TEST(StripArena, UnstaggeredIs4KAligned) {
  runtime::StripArena arena(8, 5000, 2048, /*stagger=*/false);
  for (size_t i = 0; i < 8; ++i)
    EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.strip(i)) % runtime::kCachePage, 0u);
}

TEST(StripArena, StripsDoNotOverlap) {
  runtime::StripArena arena(10, 1000, 512, true);
  for (size_t i = 0; i < 10; ++i) {
    std::fill(arena.strip(i), arena.strip(i) + 1000, static_cast<uint8_t>(i + 1));
  }
  for (size_t i = 0; i < 10; ++i)
    for (size_t b = 0; b < 1000; ++b)
      ASSERT_EQ(arena.strip(i)[b], static_cast<uint8_t>(i + 1)) << i << ":" << b;
}

// ---- lowered backend -------------------------------------------------------

/// The LoweredProgram tests assert backend-resolution internals (which
/// backend an ExecOptions request lands on, lowered-program op mixes). A
/// process-wide XOREC_FORCE_EXEC override — the CI exec=jit leg — clamps
/// every Executor to another backend and would fail them for the wrong
/// reason, so neutralize the override for the test's scope and restore it.
struct NeutralizeExecForce {
  std::optional<runtime::ExecBackend> saved = runtime::forced_exec_backend();
  NeutralizeExecForce() { runtime::set_forced_exec_backend_for_testing(std::nullopt); }
  ~NeutralizeExecForce() { runtime::set_forced_exec_backend_for_testing(saved); }
};

TEST(LoweredProgram, ResolvesBackendAndIsa) {
  NeutralizeExecForce neutral;
  runtime::Executor auto_exec(runtime::compile(make_peg()), {});
  EXPECT_EQ(auto_exec.backend(), runtime::ExecBackend::Lowered);
  EXPECT_NE(auto_exec.lowered(), nullptr);
  EXPECT_NE(auto_exec.isa(), kernel::Isa::Auto);  // resolved to a real family

  runtime::Executor interp(runtime::compile(make_peg()),
                           {.backend = runtime::ExecBackend::Interp});
  EXPECT_EQ(interp.backend(), runtime::ExecBackend::Interp);
  EXPECT_EQ(interp.lowered(), nullptr);
}

TEST(LoweredProgram, FixedArityBindingAndOracle) {
  // A fused program's instructions all land on fixed-arity or accumulate
  // kernels (arity <= 8 after fusion of a small code) — the variadic
  // fallback should be the exception, not the rule.
  NeutralizeExecForce neutral;
  const slp::Program base = random_flat(24, 8, 42);
  const slp::Program fu = slp::fuse(slp::xor_repair_compress(base));
  runtime::Executor exec(runtime::compile(fu), {.block_size = 512});
  ASSERT_NE(exec.lowered(), nullptr);
  const auto& lp = *exec.lowered();
  EXPECT_GT(lp.fixed_ops() + lp.accum_ops(), 0u);
  EXPECT_LE(lp.fixed_ops() + lp.accum_ops() + lp.nt_ops(), lp.ops().size());
  run_and_check(fu, {.block_size = 512}, 10000, 11);
}

TEST(LoweredProgram, InPlacePebbleAccumulatesViaFusedKernels) {
  // P_reg updates registers in place (dst appears in its own sources); the
  // lowering must fold those into accumulate kernels and stay correct.
  NeutralizeExecForce neutral;
  runtime::Executor exec(runtime::compile(make_preg()), {.block_size = 256});
  ASSERT_NE(exec.lowered(), nullptr);
  run_and_check(make_preg(), {.block_size = 256}, 4096, 12);
}

TEST(LoweredProgram, NtThresholdGatesStreamingStores) {
  NeutralizeExecForce neutral;
  const slp::Program base = random_flat(24, 8, 77);
  const auto prog = runtime::compile(slp::fuse(slp::xor_repair_compress(base)));

  runtime::ExecOptions small;  // default nt_threshold >> block: no NT ops
  small.block_size = 2048;
  runtime::Executor cold(prog, small);
  ASSERT_NE(cold.lowered(), nullptr);
  EXPECT_EQ(cold.lowered()->nt_ops(), 0u);

  runtime::ExecOptions big;
  big.block_size = 1 << 20;
  big.nt_threshold = 1 << 20;
  runtime::Executor hot(prog, big);
  ASSERT_NE(hot.lowered(), nullptr);
  if (kernel::kernel_table(kernel::Isa::Auto).isa == kernel::Isa::Avx2 ||
      kernel::kernel_table(kernel::Isa::Auto).isa == kernel::Isa::Avx512) {
    // Every final output write with no later reader streams.
    EXPECT_GT(hot.lowered()->nt_ops(), 0u);
  }
  // Still byte-identical at a length spanning several huge blocks plus tail.
  runtime::ExecOptions run_opt = big;
  run_opt.block_size = 1 << 16;
  run_opt.nt_threshold = 1 << 16;
  run_and_check(slp::fuse(slp::xor_repair_compress(base)), run_opt, (1 << 17) + 333, 13);
}

TEST(Executor, ScratchFreelistStaysBounded) {
  const slp::Program p = random_flat(16, 6, 5);
  runtime::Executor exec(runtime::compile(p), {.block_size = 256});

  const auto in = random_strips(16, 1024, 6);
  std::vector<const uint8_t*> in_ptrs;
  for (const auto& s : in) in_ptrs.push_back(s.data());
  std::vector<std::vector<uint8_t>> out(p.outputs.size(), std::vector<uint8_t>(1024));
  std::vector<uint8_t*> out_ptrs;
  for (auto& s : out) out_ptrs.push_back(s.data());

  // Sequential callers never grow anything: one arena, round-tripped.
  for (int i = 0; i < 50; ++i) exec.run(in_ptrs.data(), out_ptrs.data(), 1024);
  auto st = exec.scratch_stats();
  EXPECT_EQ(st.high_water, 1u);
  EXPECT_EQ(st.free, 1u);
  EXPECT_EQ(st.allocated, 1u);
  EXPECT_EQ(st.dropped, 0u);

  // A concurrent burst may allocate up to burst-many arenas, but the
  // freelist afterwards holds at most the high-water count — the rest are
  // dropped, not pinned forever.
  constexpr size_t kBurst = 8;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kBurst; ++t)
    threads.emplace_back([&] {
      std::vector<std::vector<uint8_t>> my_out(p.outputs.size(),
                                               std::vector<uint8_t>(1024));
      std::vector<uint8_t*> my_ptrs;
      for (auto& s : my_out) my_ptrs.push_back(s.data());
      for (int i = 0; i < 20; ++i) exec.run(in_ptrs.data(), my_ptrs.data(), 1024);
    });
  for (auto& t : threads) t.join();

  st = exec.scratch_stats();
  EXPECT_GE(st.high_water, 1u);
  EXPECT_LE(st.high_water, kBurst);
  EXPECT_LE(st.free, st.high_water);
  EXPECT_EQ(st.free, st.allocated - st.dropped);  // nothing in use, none leaked
}

TEST(Executor, RejectsZeroBlockSize) {
  EXPECT_THROW(runtime::Executor(runtime::compile(make_peg()), {.block_size = 0}),
               std::invalid_argument);
}

TEST(Executor, ZeroLengthRunIsNoop) {
  runtime::Executor exec(runtime::compile(make_peg()), {});
  exec.run(nullptr, nullptr, 0);  // must not crash
}
