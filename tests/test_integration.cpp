// Cross-module integration: the paper's pipeline invariants on the real
// RS(10,4) matrices (§7.5 stage monotonicity), full encode->fail->decode
// flows, and agreement between every independent computation path.
#include <gtest/gtest.h>

#include <random>

#include "baseline/isal_style.hpp"
#include "ec/layout.hpp"
#include "ec/rs_codec.hpp"
#include "slp/cache_model.hpp"
#include "slp/metrics.hpp"
#include "slp/semantics.hpp"

using namespace xorec;

namespace {

slp::PipelineResult rs_encode_pipeline(size_t n, size_t p, slp::ScheduleKind sched) {
  slp::PipelineOptions opt;
  opt.compress = slp::CompressKind::XorRePair;
  opt.fuse = true;
  opt.schedule = sched;
  opt.greedy_capacity = 32;
  std::vector<size_t> parity_rows(p);
  for (size_t i = 0; i < p; ++i) parity_rows[i] = n + i;
  const gf::Matrix parity = gf::rs_isal_matrix(n, p).select_rows(parity_rows);
  return slp::optimize(bitmatrix::expand(parity), opt, "enc");
}

}  // namespace

TEST(Integration, Rs10_4EncodeStageInvariants) {
  // The §7.5 table's qualitative structure:
  //   #⊕:   base > compressed         (RePair reduces XORs)
  //   #M:   base > compressed > fused (each stage reduces accesses)
  //   NVar: compression explodes it, fusion shrinks it, scheduling shrinks
  //         it further; CCap follows the same arc.
  const auto r = rs_encode_pipeline(10, 4, slp::ScheduleKind::Dfs);
  ASSERT_TRUE(r.compressed && r.fused && r.scheduled);

  const auto base = slp::measure(r.base, slp::ExecForm::Binary);
  const auto co = slp::measure(*r.compressed, slp::ExecForm::Binary);
  const auto fu = slp::measure(*r.fused, slp::ExecForm::Fused);
  const auto sc = slp::measure(*r.scheduled, slp::ExecForm::Fused);

  EXPECT_EQ(base.nvar, 32u);  // 4 parities x 8 strips
  EXPECT_GT(base.xor_ops, co.xor_ops);
  EXPECT_EQ(co.xor_ops, fu.xor_ops);
  EXPECT_EQ(fu.xor_ops, sc.xor_ops);

  EXPECT_GT(base.mem_accesses, co.mem_accesses);
  EXPECT_GT(co.mem_accesses, fu.mem_accesses);
  EXPECT_EQ(fu.mem_accesses, sc.mem_accesses);

  EXPECT_GT(co.nvar, base.nvar);   // §7.3: compression costs ~15x NVar
  EXPECT_LT(fu.nvar, co.nvar);
  EXPECT_LT(sc.nvar, fu.nvar);
  EXPECT_LT(sc.ccap, fu.ccap);

  // Semantics preserved through the whole flow.
  EXPECT_TRUE(slp::equivalent(r.base, *r.scheduled));
}

TEST(Integration, Rs10_4DecodeStageReproducesPaperBaseNumbers) {
  // The paper's P_dec: fragments {2,4,5,6} erased. §7.5's base column:
  // #⊕ = 1368, #M = 4104, NVar = 32 — we reproduce all three exactly.
  ec::RsCodec codec(10, 4);
  const auto dec = codec.decode_program({2, 4, 5, 6});
  const auto& r = dec->pipeline;
  ASSERT_TRUE(r.compressed && r.fused && r.scheduled);

  const auto base = slp::measure(r.base, slp::ExecForm::Binary);
  EXPECT_EQ(base.xor_ops, 1368u);
  EXPECT_EQ(base.mem_accesses, 4104u);
  EXPECT_EQ(base.nvar, 32u);  // 4 lost fragments x 8 strips
  EXPECT_EQ(r.base.num_consts, 80u);

  const auto sc = slp::measure(*r.scheduled, slp::ExecForm::Fused);
  EXPECT_GT(base.xor_ops, sc.xor_ops);
  // Decode SLPs carry more XORs than encode (§7.5: inverse matrices are
  // denser).
  const auto enc = rs_encode_pipeline(10, 4, slp::ScheduleKind::Dfs);
  EXPECT_GT(base.xor_ops, slp::xor_ops(enc.base));
}

TEST(Integration, GreedyAndDfsBothValidOnAllRsCodecsOfFig1) {
  // Figure 1's grid: RS(8..10, 2..4) encode, both schedulers.
  for (size_t d : {8, 9, 10}) {
    for (size_t par : {2, 3, 4}) {
      for (auto sched : {slp::ScheduleKind::Dfs, slp::ScheduleKind::Greedy}) {
        const auto r = rs_encode_pipeline(d, par, sched);
        ASSERT_TRUE(r.scheduled);
        ASSERT_TRUE(slp::equivalent(r.base, *r.scheduled))
            << "RS(" << d << "," << par << ")";
      }
    }
  }
}

TEST(Integration, EncodeDecodeStorySurvivesMaxFailure) {
  // Full story: 10 MB object, RS(10,4), lose 4 nodes, recover, byte-compare.
  const size_t n = 10, p = 4;
  const size_t frag_len = 1 << 16;
  ec::RsCodec codec(n, p);

  std::mt19937 rng(2024);
  std::vector<std::vector<uint8_t>> frags(n + p, std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < n; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());

  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < n; ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < p; ++i) parity.push_back(frags[n + i].data());
  codec.encode(data.data(), parity.data(), frag_len);

  const std::vector<uint32_t> erased{0, 3, 11, 13};
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail;
  for (uint32_t id = 0; id < n + p; ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available.push_back(id);
      avail.push_back(frags[id].data());
    }
  std::vector<std::vector<uint8_t>> rebuilt(4, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> outs;
  for (auto& r : rebuilt) outs.push_back(r.data());
  codec.reconstruct(available, avail.data(), erased, outs.data(), frag_len);
  for (size_t i = 0; i < erased.size(); ++i) EXPECT_EQ(rebuilt[i], frags[erased[i]]);
}

TEST(Integration, XorSlpAndGfTableDecodersAgree) {
  // Decode the same failure through both engines. The ISA-L-style engine
  // sees the symbol view of every fragment (ec/layout.hpp); reconstruction
  // must commute with the layout transform.
  const size_t n = 8, p = 3, frag_len = 4096;
  ec::RsCodec slp_codec(n, p);
  baseline::IsalStyleCodec isal(n, p);

  std::mt19937 rng(7);
  std::vector<std::vector<uint8_t>> frags(n + p, std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < n; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < n; ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < p; ++i) parity.push_back(frags[n + i].data());
  slp_codec.encode(data.data(), parity.data(), frag_len);

  const std::vector<uint32_t> erased{2, 5, 9};
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail;
  std::vector<std::vector<uint8_t>> avail_sym;
  for (uint32_t id = 0; id < n + p; ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available.push_back(id);
      avail.push_back(frags[id].data());
      avail_sym.push_back(ec::fragment_to_symbols(frags[id].data(), frag_len));
    }
  std::vector<const uint8_t*> avail_sym_ptrs;
  for (const auto& s : avail_sym) avail_sym_ptrs.push_back(s.data());

  std::vector<std::vector<uint8_t>> out_a(3, std::vector<uint8_t>(frag_len)),
      out_b(3, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> pa, pb;
  for (auto& r : out_a) pa.push_back(r.data());
  for (auto& r : out_b) pb.push_back(r.data());
  slp_codec.reconstruct(available, avail.data(), erased, pa.data(), frag_len);
  isal.reconstruct(available, avail_sym_ptrs.data(), erased, pb.data(), frag_len);
  for (size_t i = 0; i < erased.size(); ++i) {
    EXPECT_EQ(out_a[i], frags[erased[i]]);
    EXPECT_EQ(ec::fragment_to_symbols(out_a[i].data(), frag_len), out_b[i])
        << "fragment " << erased[i];
  }
}

TEST(Integration, Rs10_4EncodeReproducesPaperBaseNumbers) {
  // §7.5's base column for P_enc: #⊕ = 755, #M = 2265, NVar = 32 — exact.
  // (Our CCap lands at 96 vs the paper's 92: a touch-order convention
  // difference in the abstract accumulate expansion; see EXPERIMENTS.md.)
  const auto r = rs_encode_pipeline(10, 4, slp::ScheduleKind::Dfs);
  const auto base = slp::measure(r.base, slp::ExecForm::Binary);
  EXPECT_EQ(base.xor_ops, 755u);
  EXPECT_EQ(base.mem_accesses, 2265u);
  EXPECT_EQ(base.nvar, 32u);
  EXPECT_NEAR(static_cast<double>(base.ccap), 92.0, 6.0);

  // Compressed stage: the paper reports 385 (51% of base); tie-breaking
  // details shift the exact count slightly — pin the regime.
  const size_t co_x = slp::xor_ops(*r.compressed);
  const double ratio = static_cast<double>(co_x) / static_cast<double>(base.xor_ops);
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.65);
  EXPECT_LT(slp::measure(*r.scheduled, slp::ExecForm::Fused).nvar, 140u);
}
