// Remaining extension surfaces: Graphviz export, the "good" Cauchy matrix,
// executor software prefetch, and the LRU inclusion property backing every
// cache argument in §6.
#include <gtest/gtest.h>

#include <random>

#include "ec/rs_codec.hpp"
#include "gf/gfmat.hpp"
#include "slp/cache_model.hpp"
#include "slp/dump.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec;
using namespace xorec::slp::testing;

TEST(Dot, ExportsPegGraph) {
  const auto g = slp::build_compgraph(make_peg());
  const std::string dot = slp::to_dot(g, "peg");
  EXPECT_NE(dot.find("digraph peg {"), std::string::npos);
  // Goals double-circled, inner nodes circles, constants boxes.
  EXPECT_NE(dot.find("v4 [shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("v0 [shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("c0 [shape=box"), std::string::npos);
  // Dependencies: c0 -> v0 and v0 -> v2 and v2 -> v4.
  EXPECT_NE(dot.find("c0 -> v0;"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v2;"), std::string::npos);
  EXPECT_NE(dot.find("v2 -> v4;"), std::string::npos);
}

TEST(CauchyGood, ReducesBitmatrixOnes) {
  for (auto [n, p] : {std::pair<size_t, size_t>{10, 4}, {8, 2}, {6, 3}}) {
    const auto plain = bitmatrix::expand(gf::rs_cauchy_matrix(n, p));
    const auto good = bitmatrix::expand(gf::rs_cauchy_good_matrix(n, p));
    EXPECT_LT(good.total_ones(), plain.total_ones()) << n << "," << p;
  }
}

TEST(CauchyGood, StaysMds) {
  const gf::Matrix m = gf::rs_cauchy_good_matrix(8, 3);
  for (size_t a = 0; a < 11; ++a)
    for (size_t b = a + 1; b < 11; ++b)
      for (size_t c = b + 1; c < 11; ++c) {
        std::vector<size_t> survivors;
        for (size_t r = 0; r < 11; ++r)
          if (r != a && r != b && r != c) survivors.push_back(r);
        ASSERT_TRUE(gf::decode_matrix(m, survivors).has_value())
            << a << "," << b << "," << c;
      }
}

TEST(CauchyGood, SystematicTopPreserved) {
  const gf::Matrix m = gf::rs_cauchy_good_matrix(6, 2);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j) EXPECT_EQ(m.at(i, j), i == j ? 1 : 0);
}

TEST(Prefetch, EncodeBytesUnchanged) {
  // Prefetching is purely a performance hint; outputs must be identical.
  const size_t n = 10, p = 4, frag_len = 1 << 16;
  ec::CodecOptions plain, pf;
  pf.exec.prefetch_next_block = true;
  ec::RsCodec a(n, p, plain), b(n, p, pf);

  std::mt19937_64 rng(3);
  std::vector<std::vector<uint8_t>> data(n, std::vector<uint8_t>(frag_len));
  for (auto& f : data)
    for (auto& x : f) x = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> dptr;
  for (const auto& f : data) dptr.push_back(f.data());
  std::vector<std::vector<uint8_t>> pa(p, std::vector<uint8_t>(frag_len)),
      pb(p, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> pap, pbp;
  for (auto& f : pa) pap.push_back(f.data());
  for (auto& f : pb) pbp.push_back(f.data());
  a.encode(dptr.data(), pap.data(), frag_len);
  b.encode(dptr.data(), pbp.data(), frag_len);
  EXPECT_EQ(pa, pb);
}

TEST(LruInclusion, CacheContentsNestAcrossCapacities) {
  // The stack property justifying the CCap-by-reuse-distance computation:
  // after any touch prefix, the capacity-c cache content is a subset of the
  // capacity-(c+1) content. Verify by replaying prefixes of a real program.
  const slp::Program p = random_flat(24, 10, 33);
  const auto seq = slp::touch_sequence(p, slp::ExecForm::Fused);

  auto contents_after = [&](size_t capacity, size_t prefix) {
    std::vector<uint64_t> lru;  // front = MRU
    for (size_t i = 0; i < prefix; ++i) {
      const uint64_t k = seq[i].key();
      auto it = std::find(lru.begin(), lru.end(), k);
      if (it != lru.end()) lru.erase(it);
      lru.insert(lru.begin(), k);
      if (lru.size() > capacity) lru.pop_back();
    }
    std::sort(lru.begin(), lru.end());
    return lru;
  };

  for (size_t prefix : {5u, 10u, 20u, static_cast<unsigned>(seq.size())}) {
    for (size_t cap = 2; cap < 12; ++cap) {
      const auto small = contents_after(cap, prefix);
      const auto big = contents_after(cap + 1, prefix);
      EXPECT_TRUE(std::includes(big.begin(), big.end(), small.begin(), small.end()))
          << "cap " << cap << " prefix " << prefix;
    }
  }
}

TEST(MatrixFamilies, XorDensityOrdering) {
  // The reason IsalVandermonde is the default: it is by far the bit-sparsest
  // family at the paper's parameters.
  const size_t n = 10, p = 4;
  std::vector<size_t> rows{10, 11, 12, 13};
  const auto isal = bitmatrix::expand(gf::rs_isal_matrix(n, p).select_rows(rows));
  const auto vand = bitmatrix::expand(gf::rs_systematic_matrix(n, p).select_rows(rows));
  const auto cauchy = bitmatrix::expand(gf::rs_cauchy_matrix(n, p).select_rows(rows));
  const auto good = bitmatrix::expand(gf::rs_cauchy_good_matrix(n, p).select_rows(rows));
  EXPECT_LT(isal.total_ones(), good.total_ones());
  EXPECT_LT(good.total_ones(), cauchy.total_ones());
  EXPECT_EQ(isal.xor_cost(), 755u);  // the paper's P_enc
}

TEST(MatrixFamilies, AllFamiliesDecodeIdenticalData) {
  for (auto family : {ec::MatrixFamily::IsalVandermonde, ec::MatrixFamily::ReducedVandermonde,
                      ec::MatrixFamily::Cauchy}) {
    ec::CodecOptions opt;
    opt.family = family;
    ec::RsCodec codec(6, 3, opt);
    const size_t frag_len = 480;
    std::mt19937_64 rng(11);
    std::vector<std::vector<uint8_t>> frags(9, std::vector<uint8_t>(frag_len));
    for (size_t i = 0; i < 6; ++i)
      for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
    std::vector<const uint8_t*> d;
    std::vector<uint8_t*> par;
    for (size_t i = 0; i < 6; ++i) d.push_back(frags[i].data());
    for (size_t i = 0; i < 3; ++i) par.push_back(frags[6 + i].data());
    codec.encode(d.data(), par.data(), frag_len);

    const std::vector<uint32_t> erased{0, 2, 5};
    std::vector<uint32_t> available;
    std::vector<const uint8_t*> avail;
    for (uint32_t id = 0; id < 9; ++id)
      if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
        available.push_back(id);
        avail.push_back(frags[id].data());
      }
    std::vector<std::vector<uint8_t>> out(3, std::vector<uint8_t>(frag_len));
    std::vector<uint8_t*> outs{out[0].data(), out[1].data(), out[2].data()};
    codec.reconstruct(available, avail.data(), erased, outs.data(), frag_len);
    for (size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], frags[erased[i]]);
  }
}
