// The live observability layer end to end: MetricsRegistry flattening every
// counter surface, Prometheus/bench-json rendering, the Sampler ring and its
// windowed rates, depth-driven shard placement, and the HTTP MonitorServer —
// scraped over real sockets under concurrent service traffic, with the same
// hostile-input discipline as test_net_frame.cpp for the parser.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "ec/plan_cache.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/sampler.hpp"

using namespace xorec;
using namespace xorec::obs;

namespace {

CodecService::Options isolated(size_t shards = 2, size_t workers = 1) {
  CodecService::Options opt;
  opt.shards = shards;
  opt.workers_per_shard = workers;
  opt.plan_cache = std::make_shared<ec::PlanCache>(0, 2);
  return opt;
}

/// Shared encode buffers: up to 10 data fragments and a per-use parity set,
/// all sized for the largest frag_len a test submits.
struct Buffers {
  static constexpr size_t kMaxFrag = 16384;
  std::vector<std::vector<uint8_t>> data;
  std::vector<const uint8_t*> data_ptrs;

  Buffers() : data(10, std::vector<uint8_t>(kMaxFrag)) {
    uint64_t x = 0x5EED;
    for (auto& frag : data)
      for (auto& b : frag) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        b = static_cast<uint8_t>(x);
      }
    for (auto& frag : data) data_ptrs.push_back(frag.data());
  }
};

/// One pool's parity destination (jobs on one shard run FIFO, so reusing it
/// across that pool's jobs is race-free).
struct ParitySet {
  std::vector<std::vector<uint8_t>> bufs;
  std::vector<uint8_t*> ptrs;
  explicit ParitySet(size_t m) : bufs(m, std::vector<uint8_t>(Buffers::kMaxFrag)) {
    for (auto& b : bufs) ptrs.push_back(b.data());
  }
};

// ---- Prometheus text parser (strict enough to catch format bugs) -----------

/// Parses the exposition text, EXPECTing the invariants the format requires:
/// every family has exactly one `# HELP` + `# TYPE` pair, all its samples
/// are consecutive, and every sample line is `name[{labels}] value` with a
/// fully-parseable value. Returns family -> sample values.
std::map<std::string, std::vector<double>> parse_prometheus(const std::string& text) {
  std::map<std::string, std::vector<double>> out;
  std::set<std::string> finished;
  std::string open;  // family whose samples we are inside
  bool type_seen = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        ADD_FAILURE() << "malformed HELP line: " << line;
        continue;
      }
      const std::string fam = line.substr(7, sp - 7);
      if (!open.empty()) finished.insert(open);
      EXPECT_EQ(finished.count(fam), 0u) << fam << " appears in two groups";
      open = fam;
      type_seen = false;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        ADD_FAILURE() << "malformed TYPE line: " << line;
        continue;
      }
      EXPECT_EQ(line.substr(7, sp - 7), open) << "TYPE not adjacent to its HELP";
      const std::string kind = line.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge") << line;
      EXPECT_FALSE(type_seen) << "duplicate TYPE for " << open;
      type_seen = true;
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment form: " << line;
    const size_t name_end = line.find_first_of("{ ");
    const size_t val_at = line.rfind(' ');
    if (name_end == std::string::npos || val_at == std::string::npos) {
      ADD_FAILURE() << "malformed sample line: " << line;
      continue;
    }
    const std::string fam = line.substr(0, name_end);
    EXPECT_EQ(fam, open) << "sample outside its family group: " << line;
    EXPECT_TRUE(type_seen) << "sample before TYPE: " << line;
    char* end = nullptr;
    const double v = std::strtod(line.c_str() + val_at + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value: " << line;
    out[fam].push_back(v);
  }
  return out;
}

// ---- raw HTTP client -------------------------------------------------------

struct HttpResult {
  std::string status;  // first line, e.g. "HTTP/1.0 200 OK"
  std::string headers;
  std::string body;
};

HttpResult http_raw(uint16_t port, const std::string& request) {
  HttpResult res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  timeval tv{5, 0};
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return res;
  }
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;  // peer may already have answered-and-closed; keep reading
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t line_end = raw.find("\r\n");
  res.status = line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    res.headers = raw.substr(0, split);
    res.body = raw.substr(split + 4);
  }
  return res;
}

HttpResult http_get(uint16_t port, const std::string& path) {
  return http_raw(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

}  // namespace

// ---- registry + rendering --------------------------------------------------

TEST(ObsRegistry, FlattensEveryCounterSurface) {
  Buffers bufs;
  CodecService service(isolated());
  net::NetServer server(service, {});
  server.start();

  ServiceHandle h = service.acquire("rs(6,3)");
  ParitySet parity(3);
  for (int i = 0; i < 4; ++i)
    (void)h.encode(bufs.data_ptrs.data(), parity.ptrs.data(), 1024);
  (void)h.plan_reconstruct({1, 2, 3, 4, 5, 6}, {0});
  service.flush();

  net::Client client("127.0.0.1", server.tcp_port());
  client.ping();

  MetricsRegistry registry;
  registry.attach(service);
  registry.attach(server);
  const MetricSnapshot snap = registry.collect();
  const ServiceStats st = service.stats();

  // Service + shard surface.
  EXPECT_EQ(snap.value_or("xorec_service_shards"), 2.0);
  EXPECT_EQ(snap.value_or("xorec_service_pools"), 1.0);
  double jobs = 0;
  for (const ShardStats& s : st.shards)
    jobs += snap.value_or("xorec_shard_jobs_total", {{"shard", std::to_string(s.shard)}});
  EXPECT_EQ(jobs, 4.0);
  EXPECT_NE(snap.find("xorec_shard_throughput_gBps", {{"shard", "0"}}), nullptr);

  // Pool surface, labelled by canonical spec.
  const std::vector<std::pair<std::string, std::string>> pool{{"pool", "rs(6,3)"}};
  EXPECT_EQ(snap.value_or("xorec_pool_encodes_total", pool), 4.0);
  EXPECT_EQ(snap.value_or("xorec_pool_plans_total", pool), 1.0);
  EXPECT_GT(snap.value_or("xorec_pool_cached_programs", pool), 0.0);

  // Plan-cache, warm-window, jit and net surfaces all present.
  EXPECT_GT(snap.value_or("xorec_plan_cache_entries"), 0.0);
  EXPECT_EQ(snap.value_or("xorec_plan_cache_hits_total"), double(st.cache.hits));
  EXPECT_EQ(snap.value_or("xorec_plan_cache_misses_total"), double(st.cache.misses));
  EXPECT_NE(snap.find("xorec_plan_cache_warm_hit_ratio"), nullptr);
  EXPECT_NE(snap.find("xorec_jit_compiles_total"), nullptr);
  EXPECT_NE(snap.find("xorec_jit_fallbacks_total"), nullptr);
  EXPECT_GE(snap.value_or("xorec_net_requests_total"), 1.0);  // the ping
  EXPECT_GE(snap.value_or("xorec_net_connections_accepted_total"), 1.0);

  server.stop();
}

TEST(ObsRegistry, PrometheusRenderingGroupsFamiliesAndEscapesLabels) {
  CodecService service(isolated());
  ServiceHandle h = service.acquire("rs(6,3)");
  (void)h.plan_reconstruct({1, 2, 3, 4, 5, 6}, {0});

  MetricsRegistry registry;
  registry.attach(service);
  registry.add_source([](std::vector<Metric>& out) {
    out.push_back({"xorec_test_hostile_label",
                   {{"tenant", "a\"b\\c\nd"}},
                   MetricKind::Gauge,
                   "test",
                   "Label escaping probe.",
                   1});
  });

  const std::string text = render_prometheus(registry.collect());
  const auto families = parse_prometheus(text);
  EXPECT_GT(families.size(), 10u);
  // Interleaved emission (shard 0's whole set, then shard 1's) must come out
  // grouped — parse_prometheus EXPECTs that; spot-check one family has both.
  ASSERT_EQ(families.count("xorec_shard_queue_depth"), 1u);
  EXPECT_EQ(families.at("xorec_shard_queue_depth").size(), 2u);
  // Escaped label value, one escape per hostile byte.
  EXPECT_NE(text.find("xorec_test_hostile_label{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
  // Counters render under their _total names with integral formatting.
  EXPECT_NE(text.find("# TYPE xorec_plan_cache_misses_total counter"),
            std::string::npos);
}

TEST(ObsRegistry, StatsJsonUsesTheBenchRecordSchema) {
  CodecService service(isolated());
  (void)service.acquire("rs(6,3)");
  MetricsRegistry registry;
  registry.attach(service);
  const std::string json = render_stats_json(registry.collect());
  EXPECT_NE(json.find("\"bench\": \"monitor\""), std::string::npos);
  EXPECT_NE(json.find("\"records\": ["), std::string::npos);
  // One spot-checked record row: group name, label-set config cell, metric.
  EXPECT_NE(json.find("{\"name\": \"shard\", \"config\": \"shard=0\", "
                      "\"metric\": \"xorec_shard_workers\", \"value\": 1}"),
            std::string::npos);
  // Unlabelled metrics get the "-" config cell.
  EXPECT_NE(json.find("{\"name\": \"service\", \"config\": \"-\", "
                      "\"metric\": \"xorec_service_shards\", \"value\": 2}"),
            std::string::npos);
}

// ---- sampler ----------------------------------------------------------------

TEST(ObsSampler, RingIsBoundedAndRatesAreWindowedNotLifetime) {
  MetricsRegistry registry;
  std::atomic<double> counter{0};
  std::atomic<double> gauge{0};
  registry.add_source([&](std::vector<Metric>& out) {
    out.push_back({"test_counter_total", {}, MetricKind::Counter, "test", "", counter.load()});
    out.push_back({"test_gauge", {}, MetricKind::Gauge, "test", "", gauge.load()});
  });

  SamplerOptions opt;
  opt.capacity = 4;
  Sampler sampler(registry, opt);
  for (int i = 1; i <= 10; ++i) {
    counter.store(counter.load() + 100);
    gauge.store(i);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.sample_now();
  }
  EXPECT_EQ(sampler.samples(), 4u);  // ring bounded, oldest evicted
  EXPECT_GT(sampler.window_seconds(), 0.0);
  // Mean over the surviving window = samples 7..10 only — a lifetime mean
  // over all 10 would be 5.5.
  EXPECT_DOUBLE_EQ(sampler.window_mean("test_gauge"), (7 + 8 + 9 + 10) / 4.0);
  // Rate over the window: 300 counted across the ring's timespan.
  const double rate = sampler.rate_per_second("test_counter_total");
  EXPECT_GT(rate, 0.0);
  EXPECT_NEAR(rate * sampler.window_seconds(), 300.0, 1e-6);
  // Absent metrics: zero, not a crash.
  EXPECT_EQ(sampler.rate_per_second("no_such_metric"), 0.0);
  EXPECT_EQ(sampler.window_mean("no_such_metric"), 0.0);
}

TEST(ObsSampler, WindowMetricsRideEveryScrape) {
  Buffers bufs;
  CodecService service(isolated());
  MetricsRegistry registry;
  registry.attach(service);
  Sampler sampler(registry);

  ServiceHandle h = service.acquire("rs(6,3)");
  ParitySet parity(3);
  sampler.sample_now();
  for (int i = 0; i < 8; ++i)
    (void)h.encode(bufs.data_ptrs.data(), parity.ptrs.data(), 1024);
  service.flush();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.sample_now();

  const MetricSnapshot snap = registry.collect();
  EXPECT_EQ(snap.value_or("xorec_window_samples"), 2.0);
  EXPECT_GT(snap.value_or("xorec_window_seconds"), 0.0);
  EXPECT_NE(snap.find("xorec_shard_queue_depth_window_mean", {{"shard", "0"}}), nullptr);
  EXPECT_NE(snap.find("xorec_shard_queue_depth_window_mean", {{"shard", "1"}}), nullptr);
  // The windowed throughput saw this window's bytes (8 jobs * 6 * 1024 in),
  // where the lifetime average would dilute them over uptime.
  double win_gBps = 0;
  for (const char* s : {"0", "1"})
    win_gBps += snap.value_or("xorec_shard_throughput_window_gBps", {{"shard", s}});
  EXPECT_GT(win_gBps, 0.0);
  EXPECT_NE(snap.find("xorec_plan_cache_hit_ratio_window"), nullptr);
}

// ---- plan-cache level misses ------------------------------------------------

TEST(ObsService, MultilevelMissTotalsSurfaceThroughStatsAndMetrics) {
  CodecService service(isolated());
  ServiceHandle h = service.acquire("rs(6,3)@sched=multilevel");
  (void)h.plan_reconstruct({1, 2, 3, 4, 5, 6}, {0});

  const ServiceStats st = service.stats();
  ASSERT_FALSE(st.cache_level_misses.empty());
  const size_t total = std::accumulate(st.cache_level_misses.begin(),
                                       st.cache_level_misses.end(), size_t{0});
  EXPECT_GT(total, 0u);  // at minimum the memory loads of the cached programs

  MetricsRegistry registry;
  registry.attach(service);
  const MetricSnapshot snap = registry.collect();
  for (size_t i = 0; i < st.cache_level_misses.size(); ++i)
    EXPECT_EQ(snap.value_or("xorec_plan_cache_level_misses",
                            {{"level", std::to_string(i)}}),
              double(st.cache_level_misses[i]))
        << "level " << i;
}

// ---- depth-driven placement -------------------------------------------------

namespace {

/// Submit `n` encode jobs for `h` (m parity strips into `parity`).
void submit_encodes(const ServiceHandle& h, const Buffers& bufs, ParitySet& parity,
                    size_t n, size_t frag_len) {
  for (size_t i = 0; i < n; ++i)
    (void)h.encode(bufs.data_ptrs.data(), parity.ptrs.data(), frag_len);
}

size_t shard_submitted_spread(const ServiceStats& st) {
  const size_t a = st.shards[0].submitted, b = st.shards[1].submitted;
  return a > b ? a - b : b - a;
}

const char* kNewSpecs[6] = {"rs(4,2)", "rs(5,2)", "rs(7,2)",
                            "rs(8,2)", "rs(9,2)", "rs(10,2)"};

}  // namespace

TEST(ObsService, DepthDrivenPlacementNarrowsTheShardSpread) {
  constexpr size_t kBacklog = 240, kTopup = 40, kMaxTopups = 4, kPerPool = 40;
  Buffers bufs;

  // --- measured-depth placement --------------------------------------------
  CodecService driven(isolated());
  MetricsRegistry registry;
  registry.attach(driven);
  Sampler sampler(registry);  // sampled manually: the test controls time
  sampler.drive_placement(driven);

  // With an empty ring the provider reports nothing: first pool falls back
  // to round-robin and lands on shard 0.
  ServiceHandle h0 = driven.acquire("rs(6,3)");
  ASSERT_EQ(h0.shard(), 0u);

  // Skew: pile a big-fragment backlog on shard 0, then sample until the
  // ring has seen it (the means are sticky — shard 1's mean stays exactly 0
  // until a job is ever routed there, so the skew cannot invert).
  ParitySet backlog_parity(3);
  size_t backlog = kBacklog;
  submit_encodes(h0, bufs, backlog_parity, kBacklog, Buffers::kMaxFrag);
  sampler.sample_now();
  std::vector<double> means = sampler.shard_depth_means();
  for (size_t t = 0; means.size() < 2 || means[0] <= means[1]; ++t) {
    ASSERT_LT(t, kMaxTopups) << "sampler never observed the shard-0 backlog";
    submit_encodes(h0, bufs, backlog_parity, kTopup, Buffers::kMaxFrag);
    backlog += kTopup;
    sampler.sample_now();
    means = sampler.shard_depth_means();
  }
  ASSERT_GT(means[0], 0.0);

  // Every new pool routes to the measured-least-loaded shard 1 — round-robin
  // would have alternated them onto the drowning shard 0.
  std::vector<ServiceHandle> pools;
  for (const char* spec : kNewSpecs) {
    pools.push_back(driven.acquire(spec));
    EXPECT_EQ(pools.back().shard(), 1u) << spec;
  }
  {
    const ServiceStats st = driven.stats();
    EXPECT_EQ(st.shards[0].pools, 1u);
    EXPECT_EQ(st.shards[1].pools, 6u);
  }

  std::vector<std::unique_ptr<ParitySet>> parity_sets;
  for (ServiceHandle& h : pools) {
    parity_sets.push_back(std::make_unique<ParitySet>(2));
    submit_encodes(h, bufs, *parity_sets.back(), kPerPool, 1024);
  }
  driven.flush();
  const size_t driven_spread = shard_submitted_spread(driven.stats());
  // shard0 = backlog (240..400), shard1 = 6 * 40 = 240.
  EXPECT_EQ(driven.stats().shards[1].submitted, 6 * kPerPool);

  // --- round-robin control ---------------------------------------------------
  CodecService control(isolated());
  ServiceHandle c0 = control.acquire("rs(6,3)");
  ASSERT_EQ(c0.shard(), 0u);
  ParitySet control_parity(3);
  submit_encodes(c0, bufs, control_parity, kBacklog, Buffers::kMaxFrag);
  std::vector<ServiceHandle> control_pools;
  for (const char* spec : kNewSpecs) control_pools.push_back(control.acquire(spec));
  std::vector<std::unique_ptr<ParitySet>> control_sets;
  for (ServiceHandle& h : control_pools) {
    control_sets.push_back(std::make_unique<ParitySet>(2));
    submit_encodes(h, bufs, *control_sets.back(), kPerPool, 1024);
  }
  control.flush();
  const size_t control_spread = shard_submitted_spread(control.stats());

  // Deterministically: control = |(240 + 3*40) - 3*40| = 240; driven is at
  // most |400 - 240| = 160. Depth-driven placement measurably narrowed it.
  EXPECT_EQ(control_spread, kBacklog);
  EXPECT_LT(driven_spread, control_spread)
      << "driven=" << driven_spread << " control=" << control_spread
      << " backlog=" << backlog;
}

TEST(ObsService, BrokenOrMissizedLoadProvidersFallBackToRoundRobin) {
  CodecService service(isolated());
  service.set_shard_load_provider(
      []() -> std::vector<double> { throw std::runtime_error("broken"); });
  EXPECT_EQ(service.acquire("rs(4,2)").shard(), 0u);  // round-robin, not a throw
  service.set_shard_load_provider([] { return std::vector<double>{1.0}; });  // wrong size
  EXPECT_EQ(service.acquire("rs(5,2)").shard(), 1u);
  service.set_shard_load_provider({});  // detached
  EXPECT_EQ(service.acquire("rs(7,2)").shard(), 0u);
}

// ---- monitor over real sockets ---------------------------------------------

TEST(ObsMonitor, ServesMetricsAndStatsJsonUnderConcurrentTraffic) {
  CodecService service(isolated());
  net::NetServer server(service, {});
  MetricsRegistry registry;
  registry.attach(service);
  registry.attach(server);
  SamplerOptions sopt;
  sopt.interval = std::chrono::milliseconds(5);
  Sampler sampler(registry, sopt);
  sampler.start();
  MonitorServer monitor(registry);
  EXPECT_GT(monitor.port(), 0);  // ephemeral port known before start()
  monitor.start();
  server.start();

  // Concurrent load on the serving path while we scrape.
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    Buffers bufs;
    ParitySet parity(4);
    net::Client client("127.0.0.1", server.tcp_port());
    while (!stop.load())
      client.encode("rs(6,4)", bufs.data_ptrs.data(), 6, parity.ptrs.data(), 4, 1024);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const HttpResult first = http_get(monitor.port(), "/metrics");
  ASSERT_EQ(first.status, "HTTP/1.0 200 OK");
  EXPECT_NE(first.headers.find("Content-Type: text/plain"), std::string::npos);
  const auto fam1 = parse_prometheus(first.body);
  for (const char* required :
       {"xorec_service_uptime_seconds", "xorec_shard_queue_depth",
        "xorec_plan_cache_hits_total", "xorec_plan_cache_misses_total",
        "xorec_jit_compiles_total", "xorec_net_requests_total",
        "xorec_net_tcp_bytes_in_total", "xorec_window_samples"})
    EXPECT_EQ(fam1.count(required), 1u) << required;

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const HttpResult second = http_get(monitor.port(), "/metrics?probe=1");
  ASSERT_EQ(second.status, "HTTP/1.0 200 OK");
  const auto fam2 = parse_prometheus(second.body);
  // Counters are monotonic across scrapes, and traffic moved between them.
  for (const char* counter :
       {"xorec_net_requests_total", "xorec_net_tcp_bytes_in_total",
        "xorec_plan_cache_hits_total"})
    EXPECT_GE(fam2.at(counter)[0], fam1.at(counter)[0]) << counter;
  EXPECT_GT(fam2.at("xorec_net_requests_total")[0],
            fam1.at("xorec_net_requests_total")[0]);

  const HttpResult json = http_get(monitor.port(), "/stats.json");
  ASSERT_EQ(json.status, "HTTP/1.0 200 OK");
  EXPECT_NE(json.headers.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(json.body.find("\"bench\": \"monitor\""), std::string::npos);
  EXPECT_NE(json.body.find("\"metric\": \"xorec_net_requests_total\""),
            std::string::npos);

  stop.store(true);
  traffic.join();
  server.stop();
  monitor.stop();
  sampler.stop();
  EXPECT_GE(monitor.stats().requests, 3u);
}

TEST(ObsMonitor, MalformedAndOversizedRequestsGetAClean4xx) {
  MetricsRegistry registry;  // empty registry: parsing is what's under test
  MonitorServer monitor(registry);
  monitor.start();
  const uint16_t port = monitor.port();

  // No-space request line: 400 from a static literal.
  EXPECT_EQ(http_raw(port, "GARBAGE\r\n\r\n").status, "HTTP/1.0 400 Bad Request");
  // Binary garbage (control bytes can never start a request line): 400
  // immediately, without waiting for a terminator that will never come.
  EXPECT_EQ(http_raw(port, std::string("\x01\xffZZ\x02", 5)).status,
            "HTTP/1.0 400 Bad Request");
  // Missing the HTTP/ version token: 400.
  EXPECT_EQ(http_raw(port, "GET /metrics\r\n\r\n").status, "HTTP/1.0 400 Bad Request");
  // Wrong method on a known path: 405.
  EXPECT_EQ(http_raw(port, "POST /metrics HTTP/1.0\r\n\r\n").status,
            "HTTP/1.0 405 Method Not Allowed");
  // Unknown path: 404.
  EXPECT_EQ(http_get(port, "/nope").status, "HTTP/1.0 404 Not Found");
  // Exactly fills the fixed request buffer with no terminator: 431 — request
  // size cannot drive allocation because there is nowhere bigger to read to.
  EXPECT_EQ(http_raw(port, std::string(1024, 'A')).status,
            "HTTP/1.0 431 Request Header Fields Too Large");

  // The server survived all of it and still serves (with an empty registry,
  // /metrics legitimately renders zero families).
  EXPECT_EQ(http_get(port, "/metrics").status, "HTTP/1.0 200 OK");

  const MonitorStats st = monitor.stats();
  EXPECT_GE(st.bad_requests, 6u);
  EXPECT_GE(st.requests, 1u);
  monitor.stop();
}
