// The wire protocol's attacker-facing boundary: every header field must
// round-trip bit-exactly, and every malformed input — truncated, garbled,
// oversized lengths, corrupt CRCs, wrong magic — must be REJECTED by
// decode_* without sizing any allocation from attacker-controlled bytes
// (decode is allocation-free by contract; these tests run under ASan+UBSan
// in the sanitizer CI job, so any over-read of the hostile buffers is
// caught, not just wrong answers). A seeded deterministic fuzz loop flips
// bytes at every position and accepts any verdict except a crash or a
// false Ok.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/frame.hpp"

using namespace xorec::net;

namespace {

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A fully-populated valid frame (2 payloads of 16 bytes) for mutation.
std::vector<uint8_t> sample_frame(FrameHeader* header_out = nullptr) {
  FrameHeader h;
  h.type = FrameType::ReconstructRequest;
  h.request_id = 0x0123456789abcdefull;
  h.k = 6;
  h.m = 4;
  h.frag_len = 16;
  h.present_bitmap = 0b0000110;  // ids 1, 2
  h.erased_bitmap = 0b0001000;   // id 3
  h.spec_len = 7;
  h.payload_count = 2;
  std::vector<uint8_t> a(16, 0xAA), b(16, 0xBB);
  const uint8_t* payloads[] = {a.data(), b.data()};
  if (header_out) *header_out = h;
  return build_frame(h, "rs(6,4)", payloads);
}

}  // namespace

// ---- round trips -------------------------------------------------------------

TEST(NetFrame, HeaderRoundTripsEveryField) {
  FrameHeader h;
  h.version = wire::kVersion;
  h.type = FrameType::Response;
  h.request_id = 0xfeedfacecafebeefull;
  h.k = 12;
  h.m = 4;
  h.frag_len = 4096;
  h.erased_bitmap = 0x8001;
  h.present_bitmap = 0x7ffe;
  h.spec_len = 9;
  h.payload_count = 14;
  h.body_crc = 0xdeadbeef;

  uint8_t buf[wire::kFrameHeaderSize];
  encode_frame_header(h, buf);
  FrameHeader d;
  ASSERT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::Ok);
  EXPECT_EQ(d.version, h.version);
  EXPECT_EQ(d.type, h.type);
  EXPECT_EQ(d.request_id, h.request_id);
  EXPECT_EQ(d.k, h.k);
  EXPECT_EQ(d.m, h.m);
  EXPECT_EQ(d.frag_len, h.frag_len);
  EXPECT_EQ(d.erased_bitmap, h.erased_bitmap);
  EXPECT_EQ(d.present_bitmap, h.present_bitmap);
  EXPECT_EQ(d.spec_len, h.spec_len);
  EXPECT_EQ(d.payload_count, h.payload_count);
  EXPECT_EQ(d.body_crc, h.body_crc);
  EXPECT_EQ(d.body_size(), 9u + 14u * 4096u);
}

TEST(NetFrame, FrameRoundTripsThroughView) {
  FrameHeader h;
  const std::vector<uint8_t> frame = sample_frame(&h);
  ASSERT_GT(frame.size(), wire::kFrameHeaderSize);

  FrameHeader d;
  ASSERT_EQ(decode_frame_header(frame.data(), frame.size(), d), FrameError::Ok);
  FrameView view;
  ASSERT_EQ(bind_frame_body(d, frame.data() + wire::kFrameHeaderSize,
                            frame.size() - wire::kFrameHeaderSize, view),
            FrameError::Ok);
  EXPECT_EQ(view.spec, "rs(6,4)");
  ASSERT_EQ(view.payloads.size(), 2u);
  ASSERT_EQ(view.present_ids, (std::vector<uint32_t>{1, 2}));
  ASSERT_EQ(view.erased_ids, (std::vector<uint32_t>{3}));
  EXPECT_EQ(view.payloads[0][0], 0xAA);
  EXPECT_EQ(view.payloads[1][15], 0xBB);
  // Zero-copy: the spans point INTO the frame buffer, no copies were made.
  EXPECT_EQ(view.payloads[0].data(),
            frame.data() + wire::kFrameHeaderSize + 7);
}

TEST(NetFrame, PacketRoundTripsEveryField) {
  PacketHeader h;
  h.flags = kPacketFlagParity;
  h.group = 0x1122334455667788ull;
  h.strip = 7;
  h.k = 6;
  h.m = 4;
  h.payload_len = 32;
  h.spec_len = 7;
  std::vector<uint8_t> payload(32, 0x5C);
  const std::vector<uint8_t> pkt = build_packet(h, "rs(6,4)", payload);
  ASSERT_EQ(pkt.size(), wire::kPacketHeaderSize + 7 + 32);

  PacketView view;
  ASSERT_EQ(decode_packet(pkt.data(), pkt.size(), view), FrameError::Ok);
  EXPECT_EQ(view.header.flags, kPacketFlagParity);
  EXPECT_EQ(view.header.group, h.group);
  EXPECT_EQ(view.header.strip, 7u);
  EXPECT_EQ(view.header.k, 6u);
  EXPECT_EQ(view.header.m, 4u);
  EXPECT_EQ(view.spec, "rs(6,4)");
  ASSERT_EQ(view.payload.size(), 32u);
  EXPECT_EQ(view.payload.data(), pkt.data() + wire::kPacketHeaderSize + 7);
}

// ---- rejection paths ---------------------------------------------------------

TEST(NetFrame, TruncatedInputsAreRejectedNotRead) {
  const std::vector<uint8_t> frame = sample_frame();
  FrameHeader d;
  // Every prefix shorter than the fixed header: Truncated, nothing else.
  for (size_t len = 0; len < wire::kFrameHeaderSize; ++len) {
    // Heap-allocate exactly `len` so ASan catches any read past the end.
    std::vector<uint8_t> prefix(frame.begin(), frame.begin() + len);
    EXPECT_EQ(decode_frame_header(prefix.data(), prefix.size(), d),
              FrameError::Truncated);
  }
  // A body shorter or longer than the header promises is Truncated too.
  ASSERT_EQ(decode_frame_header(frame.data(), frame.size(), d), FrameError::Ok);
  FrameView view;
  EXPECT_EQ(bind_frame_body(d, frame.data() + wire::kFrameHeaderSize,
                            d.body_size() - 1, view),
            FrameError::Truncated);
  EXPECT_EQ(bind_frame_body(d, frame.data() + wire::kFrameHeaderSize,
                            d.body_size() + 1, view),
            FrameError::Truncated);
}

TEST(NetFrame, BadMagicVersionTypeAndCrcAreDistinguished) {
  const std::vector<uint8_t> frame = sample_frame();
  FrameHeader d;

  std::vector<uint8_t> bad = frame;
  bad[0] ^= 0xFF;  // magic is the first field
  EXPECT_EQ(decode_frame_header(bad.data(), bad.size(), d), FrameError::BadMagic);

  // Any other corrupt header byte fails the header CRC before its field is
  // ever interpreted — version/type verdicts need a re-signed header.
  bad = frame;
  bad[4] ^= 0xFF;
  EXPECT_EQ(decode_frame_header(bad.data(), bad.size(), d), FrameError::BadCrc);

  FrameHeader h;
  sample_frame(&h);
  h.version = 9;
  uint8_t buf[wire::kFrameHeaderSize];
  encode_frame_header(h, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::BadVersion);

  sample_frame(&h);
  h.type = static_cast<FrameType>(99);
  encode_frame_header(h, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::BadType);

  // Body corruption: the header parses, the body CRC says no.
  bad = frame;
  bad.back() ^= 0x01;
  ASSERT_EQ(decode_frame_header(bad.data(), bad.size(), d), FrameError::Ok);
  FrameView view;
  EXPECT_EQ(bind_frame_body(d, bad.data() + wire::kFrameHeaderSize,
                            bad.size() - wire::kFrameHeaderSize, view),
            FrameError::BadCrc);
}

TEST(NetFrame, OversizedLengthFieldsNeverReachAllocation) {
  // Re-sign headers whose length fields exceed every cap: decode must fail
  // with LimitExceeded BEFORE any caller could size a buffer from them.
  FrameHeader h;
  sample_frame(&h);
  uint8_t buf[wire::kFrameHeaderSize];
  FrameHeader d;

  FrameHeader big = h;
  big.spec_len = wire::kMaxSpecLen + 1;
  encode_frame_header(big, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::LimitExceeded);

  big = h;
  big.frag_len = wire::kMaxFragLen + 1;
  encode_frame_header(big, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::LimitExceeded);

  big = h;  // payload_count past the fragment cap
  big.payload_count = wire::kMaxFragments + 1;
  big.present_bitmap = ~0ull;
  encode_frame_header(big, buf);
  EXPECT_NE(decode_frame_header(buf, sizeof buf, d), FrameError::Ok);

  big = h;  // individually legal, together past kMaxBody
  big.frag_len = wire::kMaxFragLen;
  big.payload_count = 16;
  big.present_bitmap = 0xFFFF;
  encode_frame_header(big, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::LimitExceeded);

  // build_frame refuses to construct what decode would reject.
  EXPECT_THROW(build_frame(big, "rs(6,4)", nullptr), std::invalid_argument);
}

TEST(NetFrame, InconsistentBitmapsAreRejected) {
  FrameHeader h;
  sample_frame(&h);
  uint8_t buf[wire::kFrameHeaderSize];
  FrameHeader d;

  FrameHeader bad = h;  // popcount(present) != payload_count
  bad.present_bitmap = 0b1;
  encode_frame_header(bad, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::Inconsistent);

  bad = h;  // a fragment both present and erased
  bad.erased_bitmap = bad.present_bitmap;
  encode_frame_header(bad, buf);
  EXPECT_EQ(decode_frame_header(buf, sizeof buf, d), FrameError::Inconsistent);
}

TEST(NetFrame, PacketRejectionPaths) {
  PacketHeader h;
  h.group = 3;
  h.strip = 0;
  h.k = 6;
  h.m = 4;
  h.payload_len = 16;
  h.spec_len = 7;
  std::vector<uint8_t> payload(16, 0x11);
  const std::vector<uint8_t> pkt = build_packet(h, "rs(6,4)", payload);
  PacketView view;

  for (size_t len = 0; len < pkt.size(); ++len) {
    std::vector<uint8_t> prefix(pkt.begin(), pkt.begin() + len);
    EXPECT_NE(decode_packet(prefix.data(), prefix.size(), view), FrameError::Ok);
  }

  std::vector<uint8_t> bad = pkt;
  bad[0] ^= 0xFF;
  EXPECT_EQ(decode_packet(bad.data(), bad.size(), view), FrameError::BadMagic);
  bad = pkt;
  bad[8] ^= 0xFF;  // header byte -> header CRC
  EXPECT_EQ(decode_packet(bad.data(), bad.size(), view), FrameError::BadCrc);
  bad = pkt;
  bad.back() ^= 0x01;  // payload byte -> body CRC
  EXPECT_EQ(decode_packet(bad.data(), bad.size(), view), FrameError::BadCrc);

  // A datagram longer than header + spec + payload is damage, not padding.
  bad = pkt;
  bad.push_back(0);
  EXPECT_EQ(decode_packet(bad.data(), bad.size(), view), FrameError::Truncated);

  // An oversized payload_len dies at the limit check, not at an allocation.
  PacketHeader big = h;
  big.payload_len = static_cast<uint32_t>(wire::kMaxDatagram);
  uint8_t hdr[wire::kPacketHeaderSize];
  encode_packet_header(big, hdr);
  std::vector<uint8_t> huge(hdr, hdr + sizeof hdr);
  huge.resize(wire::kPacketHeaderSize + 7 + big.payload_len, 0);
  EXPECT_EQ(decode_packet(huge.data(), huge.size(), view), FrameError::LimitExceeded);
  EXPECT_THROW(build_packet(big, "rs(6,4)", std::span<const uint8_t>(huge)),
               std::invalid_argument);
}

// ---- seeded fuzz -------------------------------------------------------------

TEST(NetFrame, SeededByteFlipFuzzNeverFalselyAccepts) {
  // Flip 1-3 bytes of a valid frame at seeded positions, 4000 rounds: decode
  // may say Ok only when header + body CRCs genuinely still pass (flips that
  // cancel are practically impossible in this budget), and must never read
  // out of bounds (ASan enforces) or crash. Same for packets.
  const std::vector<uint8_t> frame = sample_frame();
  PacketHeader ph;
  ph.group = 1;
  ph.strip = 2;
  ph.k = 6;
  ph.m = 4;
  ph.payload_len = 24;
  ph.spec_len = 7;
  std::vector<uint8_t> ppay(24, 0x3C);
  const std::vector<uint8_t> pkt = build_packet(ph, "rs(6,4)", ppay);

  uint64_t state = 0xF00DFEED;
  const auto next = [&] { return state = mix64(state); };
  for (int round = 0; round < 4000; ++round) {
    std::vector<uint8_t> mut = (round & 1) ? pkt : frame;
    const int flips = 1 + static_cast<int>(next() % 3);
    for (int f = 0; f < flips; ++f)
      mut[next() % mut.size()] ^= static_cast<uint8_t>(1 + next() % 255);
    // Also truncate to a random length every fourth round.
    if (round % 4 == 0) mut.resize(next() % (mut.size() + 1));

    if (round & 1) {
      PacketView view;
      const FrameError err = decode_packet(mut.data(), mut.size(), view);
      if (err == FrameError::Ok) EXPECT_EQ(mut, pkt);
    } else {
      FrameHeader d;
      const FrameError err = decode_frame_header(mut.data(), mut.size(), d);
      if (err != FrameError::Ok) continue;
      FrameView view;
      const FrameError berr =
          bind_frame_body(d, mut.data() + wire::kFrameHeaderSize,
                          mut.size() - wire::kFrameHeaderSize, view);
      if (berr == FrameError::Ok) EXPECT_EQ(mut, frame);
    }
  }
}

TEST(NetFrame, CrcChainsAcrossBuffers) {
  const uint8_t a[] = {1, 2, 3, 4};
  const uint8_t b[] = {5, 6, 7};
  const uint8_t ab[] = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(crc32(b, sizeof b, crc32(a, sizeof a)), crc32(ab, sizeof ab));
  EXPECT_NE(crc32(a, sizeof a), 0u);
  EXPECT_STREQ(frame_error_name(FrameError::BadCrc), "bad_crc");
}
