// Pebble-game schedulers (§6.4-6.6): computation-graph construction, DFS and
// greedy schedules preserve semantics, reuse pebbles soundly (goals
// immobile), and improve the cache measures on the paper's example graph.
#include <gtest/gtest.h>

#include "slp/cache_model.hpp"
#include "slp/compgraph.hpp"
#include "slp/fusion.hpp"
#include "slp/metrics.hpp"
#include "slp/repair.hpp"
#include "slp/multilevel_cache.hpp"
#include "slp/schedule_dfs.hpp"
#include "slp/schedule_greedy.hpp"
#include "slp/schedule_multilevel.hpp"
#include "slp/semantics.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(CompGraph, BuildsPegDag) {
  const CompGraph g = build_compgraph(make_peg());
  ASSERT_EQ(g.nodes.size(), 5u);
  EXPECT_EQ(g.goals, (std::vector<uint32_t>{1, 3, 4}));
  EXPECT_TRUE(g.nodes[1].is_goal);
  EXPECT_TRUE(g.nodes[3].is_goal);
  EXPECT_TRUE(g.nodes[4].is_goal);
  EXPECT_FALSE(g.nodes[0].is_goal);
  // v0 feeds v2 and v4; v2 feeds v3 and v4; v3 feeds v4.
  EXPECT_EQ(g.nodes[0].n_parents, 2u);
  EXPECT_EQ(g.nodes[2].n_parents, 2u);
  EXPECT_EQ(g.nodes[3].n_parents, 1u);
  EXPECT_EQ(g.nodes[4].n_parents, 0u);
}

TEST(CompGraph, RejectsNonSsa) {
  EXPECT_THROW(build_compgraph(make_preg()), std::invalid_argument);
}

TEST(ScheduleDfs, PegSemanticsPreserved) {
  const Program q = schedule_dfs(make_peg());
  q.validate();
  EXPECT_TRUE(equivalent(make_peg(), q));
}

TEST(ScheduleDfs, PegUsesFourPebbles) {
  // Matches the paper's NVar(Q_DFS) = 4 (§6.6; our pebble naming differs
  // from the paper's listing, which mis-moves a goal pebble — see
  // EXPERIMENTS.md note on the Q_DFS typo).
  const Program q = schedule_dfs(make_peg());
  EXPECT_EQ(nvar(q), 4u);
}

TEST(ScheduleDfs, GoalPebblesAreNeverOverwritten) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const Program fu = fuse(xor_repair_compress(random_flat(32, 12, 300 + seed)));
    const Program q = schedule_dfs(fu);
    q.validate();
    ASSERT_TRUE(equivalent(fu, q)) << "seed " << seed;
    // Each output pebble is assigned exactly once after its final value:
    // equivalence already guarantees values; also check distinct outputs.
    std::vector<uint32_t> outs = q.outputs;
    std::sort(outs.begin(), outs.end());
    EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end())
        << "two goals share a pebble";
  }
}

TEST(ScheduleDfs, PebbleCountNeverExceedsSsaVariables) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const Program fu = fuse(xor_repair_compress(random_flat(40, 16, 400 + seed)));
    const Program q = schedule_dfs(fu);
    EXPECT_LE(nvar(q), nvar(fu)) << "seed " << seed;
    EXPECT_EQ(q.body.size(), fu.body.size()) << "one instruction per node";
    EXPECT_EQ(xor_ops(q), xor_ops(fu));
  }
}

TEST(ScheduleGreedy, PegSemanticsPreserved) {
  const Program q = schedule_greedy(make_peg(), 8);
  q.validate();
  EXPECT_TRUE(equivalent(make_peg(), q));
}

TEST(ScheduleGreedy, PegImprovesCacheMeasures) {
  // The paper's Q_greedy achieves NVar 3-4, CCap ~7, IOcost(8) ~9 on G_eg
  // (exact pebble choices differ due to the goal-immobility fix); assert the
  // qualitative improvements over the unscheduled P_eg.
  const Program q = schedule_greedy(make_peg(), 8);
  EXPECT_LE(nvar(q), 4u);
  EXPECT_LE(ccap(q, ExecForm::Fused), 8u);          // P_eg: 10
  EXPECT_LE(io_cost(q, 8, ExecForm::Fused), 11u);   // P_eg: 13
}

TEST(ScheduleDfs, PegImprovesCacheMeasures) {
  const Program q = schedule_dfs(make_peg());
  EXPECT_LE(ccap(q, ExecForm::Fused), 8u);
  EXPECT_LE(io_cost(q, 8, ExecForm::Fused), 11u);
}

TEST(ScheduleGreedy, SemanticsPreservedAcrossCapacities) {
  const Program fu = fuse(xor_repair_compress(random_flat(40, 16, 555)));
  for (size_t cap : {2, 4, 8, 16, 64, 512}) {
    const Program q = schedule_greedy(fu, cap);
    q.validate();
    ASSERT_TRUE(equivalent(fu, q)) << "capacity " << cap;
    EXPECT_EQ(xor_ops(q), xor_ops(fu));
  }
}

TEST(ScheduleGreedy, RejectsDegenerateCapacity) {
  EXPECT_THROW(schedule_greedy(make_peg(), 1), std::invalid_argument);
}

TEST(Schedule, BothHeuristicsHandleUnaryCopies) {
  Program p;
  p.num_consts = 2;
  p.num_vars = 2;
  p.body = {{0, {C(1)}}, {1, {C(0), C(1)}}};
  p.outputs = {0, 1};
  for (const Program& q : {schedule_dfs(p), schedule_greedy(p, 8)}) {
    q.validate();
    EXPECT_TRUE(equivalent(p, q));
  }
}

TEST(Schedule, RealCodecEndToEnd) {
  // Full pipeline on the RS(10,4) encode matrix: scheduling preserves the
  // denotation and reduces NVar and CCap versus the fused stage (§7.5 rows).
  const auto m = xorec::bitmatrix::expand(xorec::gf::rs_parity_matrix(10, 4));
  const Program base = from_bitmatrix(m);
  const Program fu = fuse(xor_repair_compress(base));
  const Program dfs = schedule_dfs(fu);
  const Program greedy = schedule_greedy(fu, 32);
  EXPECT_TRUE(equivalent(base, dfs));
  EXPECT_TRUE(equivalent(base, greedy));
  EXPECT_LT(nvar(dfs), nvar(fu));
  EXPECT_LT(ccap(dfs, ExecForm::Fused), ccap(fu, ExecForm::Fused));
  EXPECT_LT(nvar(greedy), nvar(fu));
}

// ---- multilevel scheduling (§8 extension as a real pass) -------------------

TEST(ScheduleMultilevel, PegSemanticsPreserved) {
  const Program q = schedule_multilevel(make_peg(), {4, 16});
  q.validate();
  EXPECT_TRUE(equivalent(make_peg(), q));
}

TEST(ScheduleMultilevel, SemanticsPreservedAcrossHierarchies) {
  const Program fu = fuse(xor_repair_compress(random_flat(40, 16, 777)));
  for (const std::vector<size_t>& levels :
       {std::vector<size_t>{2, 8}, {4, 64}, {8, 64, 512}, {32, 512}}) {
    const Program q = schedule_multilevel(fu, levels);
    q.validate();
    ASSERT_TRUE(equivalent(fu, q)) << "levels " << levels.size();
    EXPECT_EQ(xor_ops(q), xor_ops(fu));
    // Pebble reuse: no more pebbles than SSA variables.
    EXPECT_LE(nvar(q), nvar(fu));
  }
}

TEST(ScheduleMultilevel, SingleLevelMatchesGreedy) {
  // With one level the graded hit values collapse to the greedy 0/1 policy:
  // the two passes must produce the identical schedule.
  for (uint32_t seed = 0; seed < 6; ++seed) {
    const Program fu = fuse(xor_repair_compress(random_flat(32, 12, 900 + seed)));
    const Program g = schedule_greedy(fu, 8);
    const Program m = schedule_multilevel(fu, {8});
    ASSERT_EQ(g.body.size(), m.body.size()) << "seed " << seed;
    for (size_t i = 0; i < g.body.size(); ++i) {
      EXPECT_EQ(g.body[i].target, m.body[i].target) << "seed " << seed << " ins " << i;
      EXPECT_EQ(g.body[i].args, m.body[i].args) << "seed " << seed << " ins " << i;
    }
  }
}

TEST(ScheduleMultilevel, ValidatesHierarchy) {
  EXPECT_THROW(schedule_multilevel(make_peg(), {}), std::invalid_argument);
  EXPECT_THROW(schedule_multilevel(make_peg(), {1, 8}), std::invalid_argument);
  EXPECT_THROW(schedule_multilevel(make_peg(), {8, 8}), std::invalid_argument);
  EXPECT_THROW(schedule_multilevel(make_peg(), {16, 8}), std::invalid_argument);
}

TEST(ScheduleMultilevel, RealCodecKeepsDenotationAndHelpsTheHierarchy) {
  // RS(10,4) encode matrix: the multilevel schedule preserves semantics and
  // does not move more data from memory than the unscheduled fused program
  // on the hierarchy it pebbled for.
  const auto m = xorec::bitmatrix::expand(xorec::gf::rs_parity_matrix(10, 4));
  const Program base = from_bitmatrix(m);
  const Program fu = fuse(xor_repair_compress(base));
  const std::vector<size_t> levels{32, 512};
  const Program q = schedule_multilevel(fu, levels);
  EXPECT_TRUE(equivalent(base, q));
  EXPECT_LT(nvar(q), nvar(fu));
  const auto before = simulate_multilevel(fu, levels, ExecForm::Fused);
  const auto after = simulate_multilevel(q, levels, ExecForm::Fused);
  EXPECT_LE(after.memory_loads, before.memory_loads);
}
