// The plan/execute data plane: Codec::plan_reconstruct over every
// registered family — byte-identity with one-shot reconstruct() across
// multiple erasure patterns, plan reuse across >= 100 stripes,
// introspection (xor_count / schedule_stats / decode_pipeline), plan-time
// validation, and codec-independent plan lifetime.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "api/xorec.hpp"
#include "slp/pipeline.hpp"

using namespace xorec;

namespace {

std::vector<std::vector<uint8_t>> random_cluster(const Codec& codec, size_t frag_len,
                                                 uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> frags(codec.total_fragments(),
                                          std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < codec.data_fragments(); ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < codec.data_fragments(); ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < codec.parity_fragments(); ++i)
    parity.push_back(frags[codec.data_fragments() + i].data());
  codec.encode(data.data(), parity.data(), frag_len);
  return frags;
}

std::vector<uint32_t> survivors_of(const Codec& codec, const std::vector<uint32_t>& erased) {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end())
      available.push_back(id);
  return available;
}

/// One-shot reconstruct and plan execute must both rebuild `erased`
/// byte-identically from the same survivors.
void check_plan_matches_oneshot(const Codec& codec,
                                const std::vector<std::vector<uint8_t>>& frags,
                                const std::vector<uint32_t>& erased) {
  const size_t frag_len = frags[0].size();
  const std::vector<uint32_t> available = survivors_of(codec, erased);
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());

  std::vector<std::vector<uint8_t>> direct(erased.size(),
                                           std::vector<uint8_t>(frag_len, 0xAA));
  std::vector<uint8_t*> direct_ptrs;
  for (auto& d : direct) direct_ptrs.push_back(d.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, direct_ptrs.data(), frag_len);

  const auto plan = codec.plan_reconstruct(available, erased);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->available(), available);
  EXPECT_EQ(plan->erased(), erased);
  std::vector<std::vector<uint8_t>> planned(erased.size(),
                                            std::vector<uint8_t>(frag_len, 0x55));
  std::vector<uint8_t*> planned_ptrs;
  for (auto& p : planned) planned_ptrs.push_back(p.data());
  plan->execute(avail_ptrs.data(), planned_ptrs.data(), frag_len);

  for (size_t i = 0; i < erased.size(); ++i) {
    ASSERT_EQ(direct[i], frags[erased[i]]) << "one-shot fragment " << erased[i];
    ASSERT_EQ(planned[i], frags[erased[i]]) << "planned fragment " << erased[i];
  }
}

std::string sanitize_spec_name(const std::string& spec) {
  std::string name;
  for (char c : spec)
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return name;
}

}  // namespace

class PlanEveryFamily : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanEveryFamily, PlanMatchesOneShotAcrossPatterns) {
  const auto codec = make_codec(GetParam());
  const size_t n = codec->data_fragments(), p = codec->parity_fragments();
  const size_t frag_len = codec->fragment_multiple() * 24;
  const auto frags = random_cluster(*codec, frag_len, 0xF00D);

  // >= 3 erasure patterns per family: lone data, lone parity, maximum
  // data-only loss, and (p >= 2) a data + parity mix.
  check_plan_matches_oneshot(*codec, frags, {0});
  check_plan_matches_oneshot(*codec, frags, {static_cast<uint32_t>(n)});
  std::vector<uint32_t> data_loss;
  for (uint32_t i = 0; i < std::min(p, n); ++i) data_loss.push_back(i);
  check_plan_matches_oneshot(*codec, frags, data_loss);
  if (p >= 2) {
    check_plan_matches_oneshot(*codec, frags,
                               {1, static_cast<uint32_t>(n + p - 1)});
  }
}

TEST_P(PlanEveryFamily, OnePlanServes128Stripes) {
  const auto codec = make_codec(GetParam());
  const size_t n = codec->data_fragments(), p = codec->parity_fragments();
  const size_t frag_len = codec->fragment_multiple() * 16;
  const std::vector<uint32_t> erased =
      p >= 2 ? std::vector<uint32_t>{0, static_cast<uint32_t>(n)}
             : std::vector<uint32_t>{0};
  const std::vector<uint32_t> available = survivors_of(*codec, erased);

  std::shared_ptr<const ReconstructPlan> plan;  // solved once, reused 128x
  for (uint32_t stripe = 0; stripe < 128; ++stripe) {
    const auto frags = random_cluster(*codec, frag_len, 0xBEEF + stripe);
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());

    if (!plan) plan = codec->plan_reconstruct(available, erased);
    std::vector<std::vector<uint8_t>> planned(erased.size(),
                                              std::vector<uint8_t>(frag_len));
    std::vector<uint8_t*> planned_ptrs;
    for (auto& x : planned) planned_ptrs.push_back(x.data());
    plan->execute(avail_ptrs.data(), planned_ptrs.data(), frag_len);

    std::vector<std::vector<uint8_t>> direct(erased.size(),
                                             std::vector<uint8_t>(frag_len));
    std::vector<uint8_t*> direct_ptrs;
    for (auto& x : direct) direct_ptrs.push_back(x.data());
    codec->reconstruct(available, avail_ptrs.data(), erased, direct_ptrs.data(), frag_len);

    for (size_t i = 0; i < erased.size(); ++i) {
      ASSERT_EQ(planned[i], frags[erased[i]]) << "stripe " << stripe;
      ASSERT_EQ(planned[i], direct[i]) << "stripe " << stripe;
    }
  }
}

TEST_P(PlanEveryFamily, IntrospectionMatchesEngineKind) {
  const auto codec = make_codec(GetParam());
  const std::vector<uint32_t> erased{0};
  const auto plan = codec->plan_reconstruct(survivors_of(*codec, erased), erased);
  const bool slp_engine = codec->encode_pipeline() != nullptr;
  if (slp_engine) {
    // Bitmatrix codecs report real XOR counts and expose the decode pipeline.
    EXPECT_GT(plan->xor_count(), 0u) << codec->name();
    EXPECT_EQ(plan->schedule_stats().steps, 1u);
    EXPECT_NE(plan->decode_pipeline(), nullptr);
  } else {
    // The GF-table baseline is not an XOR SLP: stats stay zero by contract.
    EXPECT_EQ(plan->xor_count(), 0u) << codec->name();
    EXPECT_EQ(plan->decode_pipeline(), nullptr);
  }

  // A parity-only pattern has no data-decode pipeline.
  const std::vector<uint32_t> parity_only{
      static_cast<uint32_t>(codec->data_fragments())};
  const auto pplan =
      codec->plan_reconstruct(survivors_of(*codec, parity_only), parity_only);
  EXPECT_EQ(pplan->decode_pipeline(), nullptr);
  if (slp_engine) EXPECT_GT(pplan->xor_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Specs, PlanEveryFamily,
                         ::testing::Values("rs(6,3)", "vand(6,2)", "cauchy(6,3)",
                                           "rs16(5,2)", "evenodd(6,2)", "rdp(6)",
                                           "star(7)", "naive_xor(6,2)", "isal(6,3)"),
                         [](const auto& info) { return sanitize_spec_name(info.param); });

// ---- lifetime --------------------------------------------------------------

TEST(Plan, OutlivesItsCodec) {
  // Built-in plans are self-contained: co-own the compiled programs, copy
  // the maps — destroying the codec must not invalidate them.
  for (const char* spec : {"rs(5,2)", "evenodd(5,2)", "isal(5,2)"}) {
    auto codec = std::shared_ptr<const Codec>(make_codec(spec));
    const size_t frag_len = codec->fragment_multiple() * 8;
    const auto frags = random_cluster(*codec, frag_len, 31);
    const std::vector<uint32_t> erased{0};
    const auto available = survivors_of(*codec, erased);
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());

    auto plan = codec->plan_reconstruct(available, erased);
    codec.reset();  // the plan is now the only thing left

    std::vector<uint8_t> out(frag_len, 0);
    uint8_t* outp = out.data();
    plan->execute(avail_ptrs.data(), &outp, frag_len);
    EXPECT_EQ(out, frags[0]) << spec;
  }
}

// ---- plan-time validation --------------------------------------------------

TEST(Plan, ValidationHappensAtPlanTime) {
  const auto codec = make_codec("rs(4,2)");
  // Unrecoverable pattern: fewer than n survivors.
  EXPECT_THROW(codec->plan_reconstruct({0, 1, 2}, {3}), std::invalid_argument);
  // Overlapping / out-of-range ids.
  EXPECT_THROW(codec->plan_reconstruct({0, 1, 2, 3}, {3}), std::invalid_argument);
  EXPECT_THROW(codec->plan_reconstruct({0, 1, 2, 99}, {4}), std::out_of_range);
  // Parity repair with a data fragment neither available nor erased.
  EXPECT_THROW(codec->plan_reconstruct({1, 2, 3, 5}, {4}), std::invalid_argument);
  // Same contract for the GF-table engine.
  const auto isal = make_codec("isal(4,2)");
  EXPECT_THROW(isal->plan_reconstruct({0, 1, 2}, {3}), std::invalid_argument);
  EXPECT_THROW(isal->plan_reconstruct({1, 2, 3, 5}, {4}), std::invalid_argument);
}

TEST(Plan, ExecuteValidatesFragLenAndEmptyErasedIsNoop) {
  const auto codec = make_codec("rs(4,2)");
  const size_t frag_len = codec->fragment_multiple() * 8;
  const auto frags = random_cluster(*codec, frag_len, 7);
  const std::vector<uint32_t> erased{4};
  const auto available = survivors_of(*codec, erased);
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());
  const auto plan = codec->plan_reconstruct(available, erased);

  std::vector<uint8_t> out(frag_len, 0);
  uint8_t* outp = out.data();
  EXPECT_THROW(plan->execute(avail_ptrs.data(), &outp, 0), std::invalid_argument);
  EXPECT_THROW(plan->execute(avail_ptrs.data(), &outp, frag_len + 3),
               std::invalid_argument);
  // frag_len may legitimately vary call to call (geometry-, not
  // length-bound): half the length must still match a direct reconstruct.
  const size_t half = frag_len / 2;
  if (half > 0 && half % codec->fragment_multiple() == 0) {
    plan->execute(avail_ptrs.data(), &outp, half);
    std::vector<uint8_t> direct(half);
    uint8_t* directp = direct.data();
    codec->reconstruct(available, avail_ptrs.data(), erased, &directp, half);
    EXPECT_TRUE(std::equal(direct.begin(), direct.end(), out.begin()));
  }

  // Empty erased: legal plan, execute is a no-op.
  const auto noop = codec->plan_reconstruct(available, {});
  EXPECT_NO_THROW(noop->execute(avail_ptrs.data(), nullptr, frag_len));
}

// ---- base-class fallback ---------------------------------------------------

namespace {

/// A deliberately plan-less codec: 2+1 XOR mirror that only implements the
/// one-shot hooks, to exercise the ReconstructPlan fallback path.
class TinyMirrorCodec : public Codec {
 public:
  size_t data_fragments() const override { return 2; }
  size_t parity_fragments() const override { return 1; }
  size_t fragment_multiple() const override { return 1; }
  std::string name() const override { return "tiny_mirror"; }

 protected:
  void encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                   size_t frag_len) const override {
    for (size_t b = 0; b < frag_len; ++b) parity[0][b] = data[0][b] ^ data[1][b];
  }
  void reconstruct_impl(const std::vector<uint32_t>& available,
                        const uint8_t* const* available_frags,
                        const std::vector<uint32_t>& erased, uint8_t* const* out,
                        size_t frag_len) const override {
    if (erased.size() != 1 || available.size() != 2)
      throw std::invalid_argument("tiny_mirror: exactly one erasure supported");
    for (size_t b = 0; b < frag_len; ++b)
      out[0][b] = available_frags[0][b] ^ available_frags[1][b];
  }
};

}  // namespace

TEST(Plan, FallbackPlanCoversPlanlessCodecs) {
  TinyMirrorCodec codec;
  std::vector<uint8_t> a(32, 0x5A), b(32, 0x33), parity(32, 0);
  const uint8_t* data[] = {a.data(), b.data()};
  uint8_t* pptr = parity.data();
  codec.encode(data, &pptr, 32);

  const auto plan = codec.plan_reconstruct({1, 2}, {0});
  EXPECT_EQ(plan->xor_count(), 0u);  // fallback: no compiled program
  std::vector<uint8_t> out(32, 0);
  uint8_t* outp = out.data();
  const uint8_t* avail[] = {b.data(), parity.data()};
  plan->execute(avail, &outp, 32);
  EXPECT_EQ(out, a);
}

// ---- read sets (repair traffic) --------------------------------------------

TEST(PlanReadSet, RsSingleRepairReadsKFullFragments) {
  const auto codec = make_codec("rs(6,3)");
  const uint32_t w = static_cast<uint32_t>(codec->fragment_multiple());
  const auto plan = codec->plan_reconstruct(survivors_of(*codec, {0}), {0});
  const PlanReadSet& reads = plan->read_set();
  // Plain RS decodes from exactly k survivors, every strip of each.
  EXPECT_EQ(reads.fragments.size(), codec->data_fragments());
  EXPECT_TRUE(std::is_sorted(reads.fragments.begin(), reads.fragments.end()));
  ASSERT_EQ(reads.fragment_strips.size(), reads.fragments.size());
  for (uint32_t strips : reads.fragment_strips) EXPECT_EQ(strips, w);
  EXPECT_EQ(reads.strips, codec->data_fragments() * w);
  // Every read fragment is one of the plan's survivors.
  for (uint32_t f : reads.fragments)
    EXPECT_TRUE(std::find(plan->available().begin(), plan->available().end(), f) !=
                plan->available().end());
}

TEST(PlanReadSet, ParityRepairReadsTheDataFragments) {
  const auto codec = make_codec("rs(6,3)");
  const uint32_t parity_id = 6;
  const auto plan =
      codec->plan_reconstruct(survivors_of(*codec, {parity_id}), {parity_id});
  const PlanReadSet& reads = plan->read_set();
  // Re-encoding a parity reads exactly the k data fragments, never itself.
  const std::vector<uint32_t> expect{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(reads.fragments, expect);
  EXPECT_EQ(reads.strips, codec->data_fragments() * codec->fragment_multiple());
}

TEST(PlanReadSet, LrcSingleRepairStaysInsideTheGroup) {
  // lrc(6,2,2): 6 data in 2 groups of 3, one local parity each + 2 globals.
  // Repairing one data block must read only its group (2 siblings + local),
  // not the k fragments plain RS would.
  const auto lrc = make_codec("lrc(6,2,2)");
  const uint32_t w = static_cast<uint32_t>(lrc->fragment_multiple());
  const auto plan = lrc->plan_reconstruct(survivors_of(*lrc, {0}), {0});
  const PlanReadSet& reads = plan->read_set();
  EXPECT_LE(reads.fragments.size(), 3u);
  EXPECT_LT(reads.strips, lrc->data_fragments() * w);
  EXPECT_GT(reads.strips, 0u);
}

TEST(PlanReadSet, PiggybackSingleRepairReadsFewerStripsThanRs) {
  // piggyback(6,4,2) embeds sub-stripe piggybacks: single-block repair reads
  // strictly fewer strips than the k full fragments an MDS decode needs.
  const auto pb = make_codec("piggyback(6,4,2)");
  const uint32_t w = static_cast<uint32_t>(pb->fragment_multiple());
  const auto plan = pb->plan_reconstruct(survivors_of(*pb, {0}), {0});
  const PlanReadSet& reads = plan->read_set();
  EXPECT_LT(reads.strips, pb->data_fragments() * w);
  EXPECT_GT(reads.strips, 0u);
  // Partial-fragment reads are the point: at least one survivor contributes
  // fewer than all of its strips.
  EXPECT_TRUE(std::any_of(reads.fragment_strips.begin(), reads.fragment_strips.end(),
                          [&](uint32_t s) { return s < w; }));
}

TEST(PlanReadSet, FallbackChargesEverySurvivorInFull) {
  TinyMirrorCodec codec;
  const auto plan = codec.plan_reconstruct({1, 2}, {0});
  const PlanReadSet& reads = plan->read_set();
  const std::vector<uint32_t> expect{1, 2};
  EXPECT_EQ(reads.fragments, expect);  // no compiled program: assume all reads
  EXPECT_EQ(reads.strips, 2u);
  EXPECT_EQ(plan->fragment_multiple(), 1u);
}

TEST(PlanReadSet, EmptyErasedReadsNothing) {
  const auto codec = make_codec("rs(4,2)");
  const auto plan = codec->plan_reconstruct({0, 1, 2, 3}, {});
  EXPECT_TRUE(plan->read_set().fragments.empty());
  EXPECT_EQ(plan->read_set().strips, 0u);
}
