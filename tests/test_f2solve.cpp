// F2 Gaussian elimination: inversion, rank, and the generic strip-erasure
// solver every specialized XOR code decodes through.
#include <gtest/gtest.h>

#include <random>

#include "bitmatrix/f2solve.hpp"

namespace bm = xorec::bitmatrix;

namespace {

bm::BitMatrix random_invertible(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  for (;;) {
    bm::BitMatrix m(n, n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) m.set(i, j, rng() & 1);
    if (bm::f2_rank(m) == n) return m;
  }
}

/// Tiny systematic code: 3 inputs, outputs = identity + (x0^x1) + (x1^x2) +
/// (x0^x1^x2).
bm::BitMatrix tiny_code() {
  bm::BitMatrix c(6, 3);
  for (size_t i = 0; i < 3; ++i) c.set(i, i, true);
  c.set(3, 0, true);
  c.set(3, 1, true);
  c.set(4, 1, true);
  c.set(4, 2, true);
  c.set(5, 0, true);
  c.set(5, 1, true);
  c.set(5, 2, true);
  return c;
}

}  // namespace

TEST(F2Solve, InverseRoundTrip) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const bm::BitMatrix m = random_invertible(12, seed);
    const auto inv = bm::f2_inverse(m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(m * *inv, bm::BitMatrix::identity(12));
    EXPECT_EQ(*inv * m, bm::BitMatrix::identity(12));
  }
}

TEST(F2Solve, SingularHasNoInverse) {
  bm::BitMatrix m(4, 4);
  m.set(0, 0, true);
  m.set(1, 0, true);  // rank 1
  EXPECT_FALSE(bm::f2_inverse(m).has_value());
  EXPECT_EQ(bm::f2_rank(m), 1u);
}

TEST(F2Solve, RankBasics) {
  EXPECT_EQ(bm::f2_rank(bm::BitMatrix::identity(17)), 17u);
  EXPECT_EQ(bm::f2_rank(bm::BitMatrix(5, 9)), 0u);
}

TEST(F2Solve, SolveSingleErasure) {
  const bm::BitMatrix code = tiny_code();
  // Input 1 erased; survivors: systematic 0, 2 and parity 3 (x0^x1).
  const auto sol = bm::f2_solve_erasures(code, {1}, {0, 2, 3});
  ASSERT_TRUE(sol.has_value());
  ASSERT_EQ(sol->size(), 1u);
  // x1 = out3 ^ out0.
  const bm::BitRow& r = (*sol)[0];
  EXPECT_TRUE(r.get(0));   // out 0
  EXPECT_FALSE(r.get(1));  // out 2
  EXPECT_TRUE(r.get(2));   // out 3
}

TEST(F2Solve, SolveDoubleErasure) {
  const bm::BitMatrix code = tiny_code();
  // Inputs 0 and 2 erased; survivors: systematic 1, parities 3, 4, 5.
  const auto sol = bm::f2_solve_erasures(code, {0, 2}, {1, 3, 4, 5});
  ASSERT_TRUE(sol.has_value());
  ASSERT_EQ(sol->size(), 2u);
  // Verify semantically: reconstruct on concrete values.
  const std::array<int, 3> x{1, 0, 1};
  std::array<int, 6> out{};
  for (size_t o = 0; o < 6; ++o) {
    int v = 0;
    for (size_t i = 0; i < 3; ++i)
      if (code.get(o, i)) v ^= x[i];
    out[o] = v;
  }
  const std::vector<uint32_t> avail{1, 3, 4, 5};
  const std::array<uint32_t, 2> erased{0, 2};
  for (size_t e = 0; e < 2; ++e) {
    int v = 0;
    for (size_t a = 0; a < avail.size(); ++a)
      if ((*sol)[e].get(a)) v ^= out[avail[a]];
    EXPECT_EQ(v, x[erased[e]]) << "erased input " << erased[e];
  }
}

TEST(F2Solve, UnderdeterminedReturnsNullopt) {
  const bm::BitMatrix code = tiny_code();
  // Erase inputs 0 and 2 but only offer systematic 1 and parity 3: parity 3
  // doesn't even mention x2.
  EXPECT_EQ(bm::f2_solve_erasures(code, {0, 2}, {1, 3}), std::nullopt);
}

TEST(F2Solve, NoErasuresIsTrivial) {
  const auto sol = bm::f2_solve_erasures(tiny_code(), {}, {0, 1, 2});
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sol->empty());
}

TEST(F2Solve, RejectsNonSystematicCode) {
  bm::BitMatrix code(4, 3);  // top rows not identity
  code.set(0, 0, true);
  code.set(0, 1, true);
  EXPECT_THROW(bm::f2_solve_erasures(code, {1}, {0, 2, 3}), std::invalid_argument);
}

TEST(F2Solve, RejectsMissingSystematicSurvivor) {
  const bm::BitMatrix code = tiny_code();
  // Input 2 is not erased, but its systematic strip is not listed available.
  EXPECT_THROW(bm::f2_solve_erasures(code, {1}, {0, 3, 4}), std::invalid_argument);
}

TEST(F2Solve, OutOfRangeIdsThrow) {
  const bm::BitMatrix code = tiny_code();
  EXPECT_THROW(bm::f2_solve_erasures(code, {9}, {0, 1, 2}), std::out_of_range);
  EXPECT_THROW(bm::f2_solve_erasures(code, {0}, {1, 2, 99}), std::out_of_range);
}
