// GF(2^8) field axioms and table consistency. The field underlies every
// coding matrix, so these sweep exhaustively where feasible.
#include <gtest/gtest.h>

#include "gf/gf256.hpp"

namespace gf = xorec::gf;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf::sub(0x57, 0x83), gf::add(0x57, 0x83));
}

TEST(Gf256, MulMatchesSlowOracleExhaustively) {
  for (int a = 0; a < 256; ++a)
    for (int b = 0; b < 256; ++b)
      ASSERT_EQ(gf::mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                gf::mul_slow(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
}

TEST(Gf256, KnownProducts) {
  // 0x57 * 0x83 = 0xc1 under poly 0x11d (classic AES-adjacent check differs:
  // this is the 0x11d field, verified against mul_slow and ISA-L's tables).
  EXPECT_EQ(gf::mul(2, 0x80), 0x1d);  // x * x^7 = x^8 = poly tail
  EXPECT_EQ(gf::mul(1, 0xab), 0xab);
  EXPECT_EQ(gf::mul(0, 0xab), 0);
}

TEST(Gf256, MultiplicationCommutes) {
  for (int a = 0; a < 256; ++a)
    for (int b = a; b < 256; ++b)
      ASSERT_EQ(gf::mul(a, b), gf::mul(b, a));
}

TEST(Gf256, MultiplicationAssociatesSampled) {
  // Full triple sweep is 16M ops — use a coarse lattice plus boundaries.
  for (int a = 0; a < 256; a += 7)
    for (int b = 0; b < 256; b += 11)
      for (int c = 0; c < 256; c += 13)
        ASSERT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
}

TEST(Gf256, DistributesOverAddition) {
  for (int a = 0; a < 256; a += 5)
    for (int b = 0; b < 256; b += 9)
      for (int c = 0; c < 256; c += 17)
        ASSERT_EQ(gf::mul(a, b ^ c), gf::mul(a, b) ^ gf::mul(a, c));
}

TEST(Gf256, InverseRoundTripsForAllNonzero) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = gf::inv(static_cast<uint8_t>(a));
    ASSERT_EQ(gf::mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW(gf::inv(0), std::domain_error);
  EXPECT_THROW(gf::div(1, 0), std::domain_error);
  EXPECT_THROW(gf::log(0), std::domain_error);
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 3)
    for (int b = 1; b < 256; b += 5)
      ASSERT_EQ(gf::div(gf::mul(a, b), b), a);
}

TEST(Gf256, LogExpConsistency) {
  for (int a = 1; a < 256; ++a)
    ASSERT_EQ(gf::alpha_pow(gf::log(static_cast<uint8_t>(a))), a);
}

TEST(Gf256, AlphaIsPrimitive) {
  // alpha^i must enumerate all 255 nonzero elements before repeating.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const uint8_t v = gf::alpha_pow(i);
    ASSERT_FALSE(seen[v]) << "alpha^" << i << " repeats";
    seen[v] = true;
  }
  EXPECT_EQ(gf::alpha_pow(255), 1);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 6) {
    uint8_t acc = 1;
    for (unsigned e = 0; e < 300; ++e) {
      ASSERT_EQ(gf::pow(static_cast<uint8_t>(a), e), acc) << "a=" << a << " e=" << e;
      acc = gf::mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256, PowZeroConventions) {
  EXPECT_EQ(gf::pow(0, 0), 1);
  EXPECT_EQ(gf::pow(0, 5), 0);
  EXPECT_EQ(gf::pow(7, 0), 1);
}

TEST(Gf256, GFValueTypeAlgebra) {
  const gf::GF a(0x53), b(0xca), c(0x01);
  EXPECT_EQ((a + b) + a, b);  // char-2: x + x = 0
  EXPECT_EQ(a * c, a);
  EXPECT_EQ((a / b) * b, a);
  EXPECT_TRUE(gf::GF(0).is_zero());
  gf::GF acc(0x11);
  acc += gf::GF(0x11);
  EXPECT_TRUE(acc.is_zero());
}
