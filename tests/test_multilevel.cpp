// Multilevel cache model (§8 extension): consistency with the single-level
// model, inclusion/monotonicity properties, and weighted-latency costs.
#include <gtest/gtest.h>

#include "slp/cache_model.hpp"
#include "slp/multilevel_cache.hpp"
#include "slp/pipeline.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(Multilevel, SingleLevelMatchesLoadCountOfLruModel) {
  // With one level of capacity c, memory_loads must equal the loads of the
  // §6.2 simulator minus variable allocations (the multilevel model loads
  // fresh variables into cache without a memory transfer on their first
  // touch? No: it counts every full miss, so compare against loads +
  // first-touch variable allocations).
  const Program p = make_peg();
  for (size_t cap : {4, 8, 10, 16}) {
    const auto single = simulate_lru(p, cap, ExecForm::Fused);
    const auto multi = simulate_multilevel(p, {cap}, ExecForm::Fused);
    // Multilevel counts *all* first touches (constants and variables) plus
    // reloads; the single-level model doesn't charge variable allocations.
    EXPECT_EQ(multi.memory_loads, single.loads + 5u) << "cap " << cap;  // 5 variables
  }
}

TEST(Multilevel, SecondLevelAbsorbsL1Misses) {
  const Program p = random_flat(40, 16, 7);
  const auto one = simulate_multilevel(p, {8}, ExecForm::Fused);
  const auto two = simulate_multilevel(p, {8, 512}, ExecForm::Fused);
  // Same L1 behaviour, strictly fewer memory loads with a big L2 behind it.
  EXPECT_EQ(one.levels[0].hits, two.levels[0].hits);
  EXPECT_LE(two.memory_loads, one.memory_loads);
  EXPECT_GT(two.levels[1].hits, 0u);
}

TEST(Multilevel, HugeL1MakesL2Irrelevant) {
  const Program p = random_flat(30, 10, 8);
  const auto r = simulate_multilevel(p, {10000, 20000}, ExecForm::Fused);
  EXPECT_EQ(r.levels[1].hits, 0u);  // everything hits L1 after first touch
  // Memory loads = distinct blocks (cold misses only).
  EXPECT_EQ(r.memory_loads, 30u + 10u);
}

TEST(Multilevel, MemoryLoadsMonotoneInL1Capacity) {
  const Program p = random_flat(48, 20, 9);
  size_t prev = SIZE_MAX;
  for (size_t cap : {4, 8, 16, 32, 64, 128}) {
    const auto r = simulate_multilevel(p, {cap}, ExecForm::Fused);
    EXPECT_LE(r.memory_loads, prev);
    prev = r.memory_loads;
  }
}

TEST(Multilevel, WeightedCostUsesLatencies) {
  const Program p = make_peg();
  const auto r = simulate_multilevel(p, {4, 16}, ExecForm::Fused, {4.0, 12.0, 150.0});
  const double expect = 4.0 * static_cast<double>(r.levels[0].hits) +
                        12.0 * static_cast<double>(r.levels[1].hits) +
                        150.0 * static_cast<double>(r.memory_loads);
  EXPECT_DOUBLE_EQ(r.weighted_cost, expect);
}

TEST(Multilevel, ValidatesArguments) {
  const Program p = make_peg();
  EXPECT_THROW(simulate_multilevel(p, {}, ExecForm::Fused), std::invalid_argument);
  EXPECT_THROW(simulate_multilevel(p, {16, 8}, ExecForm::Fused), std::invalid_argument);
  EXPECT_THROW(simulate_multilevel(p, {8, 16}, ExecForm::Fused, {1.0}),
               std::invalid_argument);
}

TEST(Multilevel, SchedulingReducesMemoryTrafficOnRealCodec) {
  // The §6 claim restated on the two-level model: the scheduled program
  // moves less data from memory than the merely-fused one at L1 scale.
  const auto m = xorec::bitmatrix::expand(
      xorec::gf::rs_isal_matrix(10, 4).select_rows({10, 11, 12, 13}));
  const Program base = from_bitmatrix(m);
  const Program fu = [&] {
    PipelineOptions opt;
    opt.schedule = ScheduleKind::None;
    return *optimize_program(base, opt).fused;
  }();
  const Program sched = [&] {
    PipelineOptions opt;
    return *optimize_program(base, opt).scheduled;
  }();
  const auto a = simulate_multilevel(fu, {64, 1024}, ExecForm::Fused);
  const auto b = simulate_multilevel(sched, {64, 1024}, ExecForm::Fused);
  EXPECT_LE(b.memory_loads, a.memory_loads);
}
