// Multilevel cache model (§8 extension): consistency with the single-level
// model, inclusion/monotonicity properties, and weighted-latency costs.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <fstream>
#include <string>

#include "slp/cache_model.hpp"
#include "slp/cache_topology.hpp"
#include "slp/multilevel_cache.hpp"
#include "slp/pipeline.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(Multilevel, SingleLevelMatchesLoadCountOfLruModel) {
  // With one level of capacity c, memory_loads must equal the loads of the
  // §6.2 simulator minus variable allocations (the multilevel model loads
  // fresh variables into cache without a memory transfer on their first
  // touch? No: it counts every full miss, so compare against loads +
  // first-touch variable allocations).
  const Program p = make_peg();
  for (size_t cap : {4, 8, 10, 16}) {
    const auto single = simulate_lru(p, cap, ExecForm::Fused);
    const auto multi = simulate_multilevel(p, {cap}, ExecForm::Fused);
    // Multilevel counts *all* first touches (constants and variables) plus
    // reloads; the single-level model doesn't charge variable allocations.
    EXPECT_EQ(multi.memory_loads, single.loads + 5u) << "cap " << cap;  // 5 variables
  }
}

TEST(Multilevel, SecondLevelAbsorbsL1Misses) {
  const Program p = random_flat(40, 16, 7);
  const auto one = simulate_multilevel(p, {8}, ExecForm::Fused);
  const auto two = simulate_multilevel(p, {8, 512}, ExecForm::Fused);
  // Same L1 behaviour, strictly fewer memory loads with a big L2 behind it.
  EXPECT_EQ(one.levels[0].hits, two.levels[0].hits);
  EXPECT_LE(two.memory_loads, one.memory_loads);
  EXPECT_GT(two.levels[1].hits, 0u);
}

TEST(Multilevel, HugeL1MakesL2Irrelevant) {
  const Program p = random_flat(30, 10, 8);
  const auto r = simulate_multilevel(p, {10000, 20000}, ExecForm::Fused);
  EXPECT_EQ(r.levels[1].hits, 0u);  // everything hits L1 after first touch
  // Memory loads = distinct blocks (cold misses only).
  EXPECT_EQ(r.memory_loads, 30u + 10u);
}

TEST(Multilevel, MemoryLoadsMonotoneInL1Capacity) {
  const Program p = random_flat(48, 20, 9);
  size_t prev = SIZE_MAX;
  for (size_t cap : {4, 8, 16, 32, 64, 128}) {
    const auto r = simulate_multilevel(p, {cap}, ExecForm::Fused);
    EXPECT_LE(r.memory_loads, prev);
    prev = r.memory_loads;
  }
}

TEST(Multilevel, WeightedCostUsesLatencies) {
  const Program p = make_peg();
  const auto r = simulate_multilevel(p, {4, 16}, ExecForm::Fused, {4.0, 12.0, 150.0});
  const double expect = 4.0 * static_cast<double>(r.levels[0].hits) +
                        12.0 * static_cast<double>(r.levels[1].hits) +
                        150.0 * static_cast<double>(r.memory_loads);
  EXPECT_DOUBLE_EQ(r.weighted_cost, expect);
}

TEST(Multilevel, ValidatesArguments) {
  const Program p = make_peg();
  EXPECT_THROW(simulate_multilevel(p, {}, ExecForm::Fused), std::invalid_argument);
  EXPECT_THROW(simulate_multilevel(p, {16, 8}, ExecForm::Fused), std::invalid_argument);
  EXPECT_THROW(simulate_multilevel(p, {8, 16}, ExecForm::Fused, {1.0}),
               std::invalid_argument);
}

TEST(Multilevel, SchedulingReducesMemoryTrafficOnRealCodec) {
  // The §6 claim restated on the two-level model: the scheduled program
  // moves less data from memory than the merely-fused one at L1 scale.
  const auto m = xorec::bitmatrix::expand(
      xorec::gf::rs_isal_matrix(10, 4).select_rows({10, 11, 12, 13}));
  const Program base = from_bitmatrix(m);
  const Program fu = [&] {
    PipelineOptions opt;
    opt.schedule = ScheduleKind::None;
    return *optimize_program(base, opt).fused;
  }();
  const Program sched = [&] {
    PipelineOptions opt;
    return *optimize_program(base, opt).scheduled;
  }();
  const auto a = simulate_multilevel(fu, {64, 1024}, ExecForm::Fused);
  const auto b = simulate_multilevel(sched, {64, 1024}, ExecForm::Fused);
  EXPECT_LE(b.memory_loads, a.memory_loads);
}

// ---- real-machine topology calibration (slp/cache_topology.hpp) ------------

TEST(CacheTopology, ParsesSysfsStyleDirectories) {
  // Build a fake sysfs cache dir: L1 data 32K + L1 instruction 32K (skipped)
  // + L2 unified 1M + a malformed index (skipped).
  const std::string dir = ::testing::TempDir() + "xorec_fake_cache_" +
                          std::to_string(::getpid());
  const auto write = [&](const std::string& rel, const std::string& content) {
    const std::string sub = dir + "/" + rel.substr(0, rel.find('/'));
    (void)::mkdir(dir.c_str(), 0755);
    (void)::mkdir(sub.c_str(), 0755);
    std::ofstream(dir + "/" + rel) << content << "\n";
  };
  write("index0/level", "1");
  write("index0/type", "Data");
  write("index0/size", "32K");
  write("index1/level", "1");
  write("index1/type", "Instruction");
  write("index1/size", "32K");
  write("index2/level", "2");
  write("index2/type", "Unified");
  write("index2/size", "1M");
  write("index3/level", "bogus");
  write("index3/type", "Unified");
  write("index3/size", "8M");

  const std::vector<size_t> sizes = parse_cache_dir(dir);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 32u << 10);
  EXPECT_EQ(sizes[1], 1u << 20);
}

TEST(CacheTopology, MissingDirectoryYieldsEmpty) {
  EXPECT_TRUE(parse_cache_dir("/nonexistent/xorec/cache/dir").empty());
}

TEST(CacheTopology, DetectedSizesAreStrictlyIncreasing) {
  // Whatever this machine reports (possibly nothing in a container), the
  // contract holds: strictly increasing byte sizes.
  const auto& sizes = detected_cache_sizes();
  for (size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(CacheTopology, EffectiveLevelsCalibrateFromTopology) {
  PipelineOptions opt;
  opt.schedule = ScheduleKind::Multilevel;
  // Explicit levels always win.
  opt.cache_levels = {8, 128};
  EXPECT_EQ(effective_cache_levels(opt, 2048), (std::vector<size_t>{8, 128}));
  // cap= drives the derived pair.
  opt.cache_levels.clear();
  opt.greedy_capacity = 16;
  EXPECT_EQ(effective_cache_levels(opt, 2048), (std::vector<size_t>{16, 512}));
  // No knobs + no block size: the historical constant.
  opt.greedy_capacity = 0;
  EXPECT_EQ(effective_cache_levels(opt), (std::vector<size_t>{32, 512}));
  // No knobs + a block size: topology-calibrated when sysfs is readable,
  // the constant otherwise — either way strictly increasing and >= 2.
  const auto levels = effective_cache_levels(opt, 2048);
  ASSERT_GE(levels.size(), 2u);
  EXPECT_GE(levels.front(), 2u);
  for (size_t i = 1; i < levels.size(); ++i) EXPECT_GT(levels[i], levels[i - 1]);
  if (!detected_cache_sizes().empty())
    EXPECT_EQ(levels.front(), detected_cache_sizes().front() / 2048);
}
