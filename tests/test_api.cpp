// The unified public API: spec parsing, the codec registry, the generic
// round-trip driver every family must pass, boundary validation, and
// ObjectCodec over non-RS codecs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>

#include "altcodes/xor_code.hpp"
#include "api/xorec.hpp"
#include "ec/object_codec.hpp"
#include "ec/rs_codec.hpp"

using namespace xorec;

namespace {

std::vector<std::vector<uint8_t>> random_cluster(const Codec& codec, size_t frag_len,
                                                 uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> frags(codec.total_fragments(),
                                          std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < codec.data_fragments(); ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < codec.data_fragments(); ++i) data.push_back(frags[i].data());
  for (size_t i = 0; i < codec.parity_fragments(); ++i)
    parity.push_back(frags[codec.data_fragments() + i].data());
  codec.encode(data.data(), parity.data(), frag_len);
  return frags;
}

/// Erase `erased`, reconstruct through the generic interface, byte-compare.
void check_reconstruct(const Codec& codec, const std::vector<std::vector<uint8_t>>& frags,
                       const std::vector<uint32_t>& erased) {
  const size_t frag_len = frags[0].size();
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id) {
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available.push_back(id);
      avail_ptrs.push_back(frags[id].data());
    }
  }
  std::vector<std::vector<uint8_t>> rebuilt(erased.size(),
                                            std::vector<uint8_t>(frag_len, 0xCD));
  std::vector<uint8_t*> out_ptrs;
  for (auto& r : rebuilt) out_ptrs.push_back(r.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, out_ptrs.data(), frag_len);
  for (size_t i = 0; i < erased.size(); ++i)
    ASSERT_EQ(rebuilt[i], frags[erased[i]]) << "fragment " << erased[i];
}

std::string sanitize_spec_name(const std::string& spec) {
  std::string name;
  for (char c : spec)
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return name;
}

}  // namespace

// ---- the generic round-trip suite: every registered spec must pass --------

class RegistryRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistryRoundTrip, EncodeEraseReconstruct) {
  const auto codec = make_codec(GetParam());
  const size_t n = codec->data_fragments(), p = codec->parity_fragments();
  const size_t frag_len = codec->fragment_multiple() * 24;
  const auto frags = random_cluster(*codec, frag_len, 0xC0DEC);

  // Single data loss, single parity loss.
  check_reconstruct(*codec, frags, {0});
  check_reconstruct(*codec, frags, {static_cast<uint32_t>(n)});

  // Maximum data-only loss.
  std::vector<uint32_t> data_loss;
  for (uint32_t i = 0; i < std::min(p, n); ++i) data_loss.push_back(i);
  check_reconstruct(*codec, frags, data_loss);

  // Parity-only loss (every parity).
  std::vector<uint32_t> parity_loss;
  for (uint32_t i = 0; i < p; ++i) parity_loss.push_back(static_cast<uint32_t>(n + i));
  check_reconstruct(*codec, frags, parity_loss);

  // Mixed data + parity loss.
  if (p >= 2) {
    std::vector<uint32_t> mixed{1, static_cast<uint32_t>(n + p - 1)};
    for (uint32_t i = 2; mixed.size() < p; ++i) mixed.push_back(i);
    std::sort(mixed.begin(), mixed.end());
    check_reconstruct(*codec, frags, mixed);
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, RegistryRoundTrip,
                         ::testing::Values("rs(6,3)", "rs(10,4)", "cauchy(12,3)",
                                           "vand(8,2)", "evenodd(6,2)", "evenodd(11)",
                                           "rdp(8)", "star(9)", "naive_xor(8)",
                                           "isal(10,4)", "rs16(6,3)",
                                           "rs(6,3)@block=512,isa=word64,passes=fuse",
                                           "rs(5,2)@threads=2,sched=greedy",
                                           "rs(10,4)@sched=multilevel,levels=32:512",
                                           "rs(6,3)@sched=multilevel",
                                           "rs(6,3)@sched=greedy,cap=16",
                                           "rs(6,3)@cache=private",
                                           "cauchy(8,3)@sched=multilevel,cap=24,levels=24:96:768"),
                         [](const auto& info) { return sanitize_spec_name(info.param); });

// ---- spec parsing ----------------------------------------------------------

TEST(SpecParsing, ParsesFamilyArgsAndOptions) {
  const CodecSpec cs = parse_spec(" cauchy ( 12 , 3 ) @ block = 512 , isa = word64 ");
  EXPECT_EQ(cs.family, "cauchy");
  ASSERT_EQ(cs.args.size(), 2u);
  EXPECT_EQ(cs.args[0], 12u);
  EXPECT_EQ(cs.args[1], 3u);
  EXPECT_EQ(cs.options.exec.block_size, 512u);
  EXPECT_EQ(cs.options.exec.isa, kernel::Isa::Word64);
  EXPECT_EQ(cs.spec, "cauchy(12,3)@block=512,isa=word64");
}

TEST(SpecParsing, DefaultsAreUntouched) {
  const CodecSpec cs = parse_spec("rs(10,4)");
  const ec::CodecOptions defaults;
  EXPECT_EQ(cs.options.exec.block_size, defaults.exec.block_size);
  EXPECT_EQ(cs.options.pipeline.fuse, defaults.pipeline.fuse);
  EXPECT_EQ(cs.options.decode_cache_capacity, defaults.decode_cache_capacity);
}

TEST(SpecParsing, MalformedSpecsThrow) {
  for (const char* bad :
       {"", "(10,4)", "rs(", "rs(10,4", "rs(10,4))", "rs(10,4)x", "rs(ten,4)",
        "rs(10,4)@", "rs(10,4)@block", "rs(10,4)@=5", "rs(10,4)@bogus=1",
        "rs(10,4)@block=0", "rs(10,4)@isa=quantum", "rs(10,4)@passes=mystery",
        "rs(-1,4)", "rs(99999999999999999999,4)"}) {
    EXPECT_THROW(parse_spec(bad), std::invalid_argument) << "spec: " << bad;
  }
}

TEST(SpecParsing, SchedulerAndCacheKeyErrorsQuoteTheSpec) {
  // Every bad sched=/cap=/levels=/cache= value must throw AND name the
  // offending spec in the message (the documented fail() contract).
  for (const char* bad :
       {"rs(10,4)@sched=pebble",                       // unknown scheduler
        "rs(10,4)@sched=multilevel,cap=1",             // cap below the minimum
        "rs(10,4)@sched=multilevel,cap=zero",          // cap not a number
        "rs(10,4)@sched=multilevel,levels=",           // empty level list
        "rs(10,4)@sched=multilevel,levels=32:abc",     // non-numeric level
        "rs(10,4)@sched=multilevel,levels=1:64",       // first level too small
        "rs(10,4)@sched=multilevel,levels=512:32",     // not increasing
        "rs(10,4)@sched=multilevel,levels=32:32",      // not strictly increasing
        "rs(10,4)@levels=32:512",                      // levels without multilevel
        "rs(10,4)@cap=64",                             // cap without greedy/multilevel
        "rs(10,4)@sched=dfs,cap=64",                   // cap with the wrong scheduler
        "rs(10,4)@cache=maybe",                        // bad cache mode
        "naive_xor(8,4)@sched=multilevel",             // pipeline-less family
        "naive_xor(8,4)@cap=32",
        "naive_xor(8,4)@levels=32:512"}) {
    try {
      make_codec(bad);
      FAIL() << "spec accepted: " << bad;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      // The message quotes the (whitespace-stripped) offending spec.
      EXPECT_NE(what.find(bad), std::string::npos) << "spec not quoted: " << what;
    }
  }
}

TEST(SpecParsing, SchedulerKeysLandInPipelineOptions) {
  const CodecSpec cs = parse_spec("rs(10,4)@sched=multilevel,cap=24,levels=24:96");
  EXPECT_EQ(cs.options.pipeline.schedule, slp::ScheduleKind::Multilevel);
  EXPECT_EQ(cs.options.pipeline.greedy_capacity, 24u);
  EXPECT_EQ(cs.options.pipeline.cache_levels, (std::vector<size_t>{24, 96}));

  const CodecSpec shared = parse_spec("rs(10,4)@cache=shared");
  EXPECT_TRUE(shared.options.shared_cache);
  const CodecSpec priv = parse_spec("rs(10,4)@cache=private");
  EXPECT_FALSE(priv.options.shared_cache);
  const CodecSpec sized = parse_spec("rs(10,4)@cache=64");
  EXPECT_FALSE(sized.options.shared_cache);
  EXPECT_EQ(sized.options.decode_cache_capacity, 64u);
}

TEST(Registry, UnknownFamilyAndBadArityThrow) {
  EXPECT_THROW(make_codec("bogus(3,2)"), std::invalid_argument);
  EXPECT_THROW(make_codec("rs()"), std::invalid_argument);
  EXPECT_THROW(make_codec("rs(1,2,3)"), std::invalid_argument);
  EXPECT_THROW(make_codec("rs(0,4)"), std::invalid_argument);
  EXPECT_THROW(make_codec("evenodd(6,3)"), std::invalid_argument);  // EVENODD has 2 parities
  EXPECT_THROW(make_codec("star(9,2)"), std::invalid_argument);     // STAR has 3
  EXPECT_THROW(make_codec("evenodd(0)"), std::invalid_argument);
  // isal has no SLP pipeline/executor: execution options must not silently
  // parse into nothing.
  EXPECT_THROW(make_codec("isal(10,4)@threads=8"), std::invalid_argument);
  EXPECT_THROW(make_codec("isal(10,4)@block=1024"), std::invalid_argument);
  EXPECT_NO_THROW(make_codec("isal(10,4)@matrix=cauchy"));
  // Registry geometry caps: fail fast instead of compiling astronomically
  // large SLPs / exhausting memory.
  EXPECT_THROW(make_codec("evenodd(100000)"), std::invalid_argument);
  EXPECT_THROW(make_codec("star(129)"), std::invalid_argument);
  EXPECT_THROW(make_codec("rs16(200,56)"), std::invalid_argument);
  // Inapplicable options are rejected, never silently ignored.
  EXPECT_THROW(make_codec("naive_xor(8,4)@passes=full"), std::invalid_argument);
  EXPECT_THROW(make_codec("naive_xor(8,4)@sched=dfs"), std::invalid_argument);
  EXPECT_THROW(make_codec("evenodd(6,2)@matrix=cauchy"), std::invalid_argument);
}

TEST(Registry, ListsBuiltinFamilies) {
  const auto families = registered_families();
  for (const char* want : {"rs", "vand", "cauchy", "evenodd", "rdp", "star", "rs16",
                           "naive_xor", "isal", "lrc"}) {
    EXPECT_NE(std::find(families.begin(), families.end(), want), families.end())
        << "missing family " << want;
  }
}

TEST(Registry, NamesRoundTripToEquivalentSpecs) {
  // matrix= is honored as an override, and naive_xor identifies itself as
  // the disabled-pipeline base — name() must not rebuild a different codec.
  EXPECT_EQ(make_codec("rs(10,4)")->name(), "rs(10,4)");
  EXPECT_EQ(make_codec("rs(6,3)@matrix=cauchy")->name(), "cauchy(6,3)");
  EXPECT_EQ(make_codec("naive_xor(8,4)")->name(), "rs(8,4)@passes=base");
  EXPECT_EQ(make_codec("rs(8,4)@passes=base")->name(), "rs(8,4)@passes=base");
  EXPECT_EQ(make_codec("rs(8,4)@passes=compress")->name(), "rs(8,4)@passes=compress");
  EXPECT_EQ(make_codec("rs(8,4)@passes=fuse")->name(), "rs(8,4)@passes=fuse");
  EXPECT_EQ(make_codec("rs(8,4)@sched=greedy")->name(), "rs(8,4)@sched=greedy");
  EXPECT_EQ(make_codec("rs(8,4)@sched=greedy,cap=64")->name(), "rs(8,4)@sched=greedy,cap=64");
  EXPECT_EQ(make_codec("rs(8,4)@sched=multilevel")->name(), "rs(8,4)@sched=multilevel");
  EXPECT_EQ(make_codec("rs(8,4)@sched=multilevel,levels=32:512")->name(),
            "rs(8,4)@sched=multilevel,levels=32:512");
  EXPECT_EQ(make_codec("isal(10,4)@matrix=cauchy")->name(), "isal(10,4)@matrix=cauchy");
  EXPECT_EQ(make_codec("isal(10,4)")->name(), "isal(10,4)");
  EXPECT_THROW(make_codec("rs16(6,3)@matrix=vand"), std::invalid_argument);
}

TEST(Registry, ParityRepairWithAbsentDataThrowsInvalidArgument) {
  // Data fragment 0 is absent but not listed as erased: the parity-repair
  // path must reject with invalid_argument (the documented contract), not
  // logic_error, for both SLP and GF-table codecs.
  for (const char* spec : {"rs(4,2)", "isal(4,2)"}) {
    const auto codec = make_codec(spec);
    const size_t frag_len = codec->fragment_multiple() * 8;
    const auto frags = random_cluster(*codec, frag_len, 5);
    const std::vector<uint32_t> available{1, 2, 3, 5};
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());
    std::vector<uint8_t> out(frag_len);
    uint8_t* outp = out.data();
    EXPECT_THROW(codec->reconstruct(available, avail_ptrs.data(), {4}, &outp, frag_len),
                 std::invalid_argument)
        << spec;
  }
}

TEST(ObjectCodecGenericExtra, OversizedObjectSizeHeaderYieldsNullopt) {
  ec::ObjectCodec blobs(4, 2);
  std::vector<uint8_t> blob(1000, 0x11);
  auto enc = blobs.encode(blob.data(), blob.size());
  // Corrupt every header's object_size (bytes 12..19) to an absurd value.
  const uint64_t huge = uint64_t(1) << 40;
  for (auto& f : enc.fragments) std::memcpy(f.data() + 12, &huge, 8);
  std::optional<std::vector<uint8_t>> dec;
  EXPECT_NO_THROW(dec = blobs.decode(enc.fragments));
  EXPECT_FALSE(dec.has_value());
}

TEST(Registry, GeometryMatchesSpec) {
  EXPECT_EQ(make_codec("evenodd(11)")->data_fragments(), 11u);  // native prime layout
  EXPECT_EQ(make_codec("evenodd(6,2)")->data_fragments(), 6u);  // shortened
  EXPECT_EQ(make_codec("rdp(8)")->parity_fragments(), 2u);
  EXPECT_EQ(make_codec("star(9)")->parity_fragments(), 3u);
  EXPECT_EQ(make_codec("rs(7)")->parity_fragments(), 4u);   // p defaults to 4
  EXPECT_EQ(make_codec("rs16(6,3)")->fragment_multiple(), 16u);
  EXPECT_EQ(make_codec("isal(10,4)")->fragment_multiple(), 1u);
}

TEST(Registry, NaiveXorDisablesEveryPass) {
  const auto codec = make_codec("naive_xor(6,2)");
  const slp::PipelineResult* pipe = codec->encode_pipeline();
  ASSERT_NE(pipe, nullptr);
  EXPECT_FALSE(pipe->compressed.has_value());
  EXPECT_FALSE(pipe->fused.has_value());
}

TEST(Registry, CustomFamilyRegistration) {
  register_codec_family("test_mirror", [](const CodecSpec& cs) -> std::unique_ptr<Codec> {
    // A 2+1 flat XOR code: parity = a ^ b.
    altcodes::XorCodeSpec spec;
    spec.name = "test_mirror";
    spec.data_blocks = 2;
    spec.parity_blocks = 1;
    spec.strips_per_block = 1;
    spec.code = bitmatrix::BitMatrix(3, 2);
    spec.code.set(0, 0, true);
    spec.code.set(1, 1, true);
    spec.code.set(2, 0, true);
    spec.code.set(2, 1, true);
    return std::make_unique<altcodes::XorCodec>(std::move(spec), cs.options);
  });
  const auto codec = make_codec("test_mirror()");
  const auto frags = random_cluster(*codec, 64, 9);
  check_reconstruct(*codec, frags, {0});
  check_reconstruct(*codec, frags, {1});
  check_reconstruct(*codec, frags, {2});
}

TEST(Registry, SurvivorPolicyIsTheCodecsAuthority) {
  // The generic boundary checks ids, not survivor counts: whether a pattern
  // is recoverable is the codec's call (MDS codecs demand k survivors; XOR
  // codes defer to their F2 solver; future locally-repairable codes may
  // accept fewer). A 2+1 code whose single parity mirrors block 0:
  altcodes::XorCodeSpec spec;
  spec.name = "mirror0";
  spec.data_blocks = 2;
  spec.parity_blocks = 1;
  spec.strips_per_block = 1;
  spec.code = bitmatrix::BitMatrix(3, 2);
  spec.code.set(0, 0, true);
  spec.code.set(1, 1, true);
  spec.code.set(2, 0, true);  // parity = a
  const altcodes::XorCodec codec(std::move(spec));

  std::vector<uint8_t> a(64, 0x5A), b(64, 0x33), parity(64, 0);
  const uint8_t* data[] = {a.data(), b.data()};
  uint8_t* pptr = parity.data();
  codec.encode(data, &pptr, 64);
  ASSERT_EQ(parity, a);

  // Block 0 from its mirror (plus block 1, which the solver requires to be
  // present for any non-erased data block): recoverable.
  std::vector<uint8_t> rebuilt(64, 0);
  uint8_t* out = rebuilt.data();
  const std::vector<const uint8_t*> avail{b.data(), parity.data()};
  codec.reconstruct({1, 2}, avail.data(), {0}, &out, 64);
  EXPECT_EQ(rebuilt, a);

  // Block 1 has no parity coverage: the *solver* rejects the pattern with
  // invalid_argument — not a generic survivor-count gate.
  std::vector<uint8_t> rebuilt2(64, 0);
  uint8_t* outs2[] = {out, rebuilt2.data()};
  const uint8_t* just_parity = parity.data();
  EXPECT_THROW(codec.reconstruct({2}, &just_parity, {0, 1}, outs2, 64),
               std::invalid_argument);
}

// ---- boundary validation ---------------------------------------------------

class ApiValidation : public ::testing::Test {
 protected:
  void SetUp() override {
    codec_ = std::shared_ptr<const Codec>(make_codec("rs(4,2)"));
    frag_len_ = codec_->fragment_multiple() * 10;
    frags_ = random_cluster(*codec_, frag_len_, 77);
    for (const auto& f : frags_) ptrs_.push_back(f.data());
    out_.assign(frag_len_, 0);
    outp_ = out_.data();
  }

  std::shared_ptr<const Codec> codec_;
  size_t frag_len_ = 0;
  std::vector<std::vector<uint8_t>> frags_;
  std::vector<const uint8_t*> ptrs_;
  std::vector<uint8_t> out_;
  uint8_t* outp_ = nullptr;
};

TEST_F(ApiValidation, RejectsBadFragLen) {
  std::vector<const uint8_t*> data(ptrs_.begin(), ptrs_.begin() + 4);
  std::vector<uint8_t> p0(frag_len_), p1(frag_len_);
  std::vector<uint8_t*> parity{p0.data(), p1.data()};
  EXPECT_THROW(codec_->encode(data.data(), parity.data(), 0), std::invalid_argument);
  EXPECT_THROW(codec_->encode(data.data(), parity.data(), frag_len_ + 3),
               std::invalid_argument);
  EXPECT_THROW(codec_->reconstruct({0, 1, 2, 3}, ptrs_.data(), {4}, &outp_, 13),
               std::invalid_argument);
}

TEST_F(ApiValidation, RejectsOutOfRangeIds) {
  EXPECT_THROW(codec_->reconstruct({0, 1, 2, 99}, ptrs_.data(), {4}, &outp_, frag_len_),
               std::out_of_range);
  EXPECT_THROW(codec_->reconstruct({0, 1, 2, 3}, ptrs_.data(), {17}, &outp_, frag_len_),
               std::out_of_range);
}

TEST_F(ApiValidation, RejectsDuplicateAndOverlappingIds) {
  EXPECT_THROW(codec_->reconstruct({0, 1, 1, 3}, ptrs_.data(), {4}, &outp_, frag_len_),
               std::invalid_argument);
  std::vector<uint8_t> out2(frag_len_);
  std::vector<uint8_t*> outs{outp_, out2.data()};
  EXPECT_THROW(
      codec_->reconstruct({0, 1, 2, 3}, ptrs_.data(), {4, 4}, outs.data(), frag_len_),
      std::invalid_argument);
  EXPECT_THROW(codec_->reconstruct({0, 1, 2, 3}, ptrs_.data(), {3}, &outp_, frag_len_),
               std::invalid_argument);
}

TEST_F(ApiValidation, RejectsTooFewSurvivors) {
  EXPECT_THROW(codec_->reconstruct({0, 1, 2}, ptrs_.data(), {3}, &outp_, frag_len_),
               std::invalid_argument);
}

TEST_F(ApiValidation, SpanOverloadsCheckExtents) {
  std::vector<const uint8_t*> data(ptrs_.begin(), ptrs_.begin() + 4);
  std::vector<uint8_t> p0(frag_len_), p1(frag_len_);
  std::vector<uint8_t*> parity{p0.data(), p1.data()};
  EXPECT_NO_THROW(codec_->encode(std::span(data), std::span(parity), frag_len_));

  std::vector<const uint8_t*> short_data(data.begin(), data.begin() + 3);
  EXPECT_THROW(codec_->encode(std::span(short_data), std::span(parity), frag_len_),
               std::invalid_argument);

  const std::vector<uint32_t> available{0, 1, 2, 3};
  const std::vector<uint32_t> erased{4};
  std::vector<uint8_t*> outs{outp_};
  std::vector<const uint8_t*> avail(ptrs_.begin(), ptrs_.begin() + 3);  // too short
  EXPECT_THROW(codec_->reconstruct(std::span(available), std::span(avail),
                                   std::span(erased), std::span(outs), frag_len_),
               std::invalid_argument);
}

// ---- blob storage over non-RS codecs ---------------------------------------

class ObjectCodecGeneric : public ::testing::TestWithParam<const char*> {};

TEST_P(ObjectCodecGeneric, BlobRoundTripsThroughErasures) {
  ec::ObjectCodec blobs{std::shared_ptr<const Codec>(make_codec(GetParam()))};
  const size_t n = blobs.data_fragments(), p = blobs.parity_fragments();

  std::mt19937 rng(123);
  for (size_t size : {0u, 1u, 1000u, 100000u}) {
    std::vector<uint8_t> blob(size);
    for (auto& b : blob) b = static_cast<uint8_t>(rng());
    auto enc = blobs.encode(blob.data(), blob.size());
    ASSERT_EQ(enc.fragments.size(), n + p);

    // Lose the last data fragment and all but the first parity (p total
    // would also work; keep one data + one parity loss for every family).
    std::vector<std::vector<uint8_t>> survivors;
    for (size_t id = 0; id < n + p; ++id)
      if (id != n - 1 && id != n + p - 1) survivors.push_back(enc.fragments[id]);
    const auto dec = blobs.decode(survivors);
    ASSERT_TRUE(dec.has_value()) << "size " << size;
    EXPECT_EQ(*dec, blob) << "size " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(NonRsCodecs, ObjectCodecGeneric,
                         ::testing::Values("evenodd(6,2)", "rdp(8)", "star(9)",
                                           "rs16(6,3)"),
                         [](const auto& info) { return sanitize_spec_name(info.param); });

TEST(ObjectCodecGenericExtra, UnrecoverablePatternYieldsNulloptNotThrow) {
  // A non-MDS codec can reject a pattern even with >= n survivors; decode's
  // failure channel must stay nullopt. 2+1 code whose parity mirrors block 0:
  altcodes::XorCodeSpec spec;
  spec.name = "mirror0";
  spec.data_blocks = 2;
  spec.parity_blocks = 1;
  spec.strips_per_block = 1;
  spec.code = bitmatrix::BitMatrix(3, 2);
  spec.code.set(0, 0, true);
  spec.code.set(1, 1, true);
  spec.code.set(2, 0, true);  // parity = a; block 1 has no coverage
  ec::ObjectCodec blobs{std::make_shared<altcodes::XorCodec>(std::move(spec))};

  std::vector<uint8_t> blob(100, 0x42);
  auto enc = blobs.encode(blob.data(), blob.size());
  enc.fragments.erase(enc.fragments.begin() + 1);  // lose the uncovered block
  std::optional<std::vector<uint8_t>> dec;
  EXPECT_NO_THROW(dec = blobs.decode(enc.fragments));
  EXPECT_FALSE(dec.has_value());
}

TEST(ObjectCodecGenericExtra, RebuildAllOverEvenodd) {
  ec::ObjectCodec blobs{std::shared_ptr<const Codec>(make_codec("evenodd(6,2)"))};
  std::vector<uint8_t> blob(5000, 0xA5);
  auto enc = blobs.encode(blob.data(), blob.size());
  enc.fragments.erase(enc.fragments.begin() + 2);  // drop a data fragment
  const auto rebuilt = blobs.rebuild_all(enc.fragments);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->fragments.size(), 8u);
  const auto dec = blobs.decode(rebuilt->fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);
}

TEST(Registry, BlockAutoResolvesToAMeasuredByteCount) {
  // block=auto resolves through the memoized machine sweep: a real codec
  // comes back, its block size is one of the §7.4 candidates, and a second
  // auto spec (memoized) agrees with the direct accessor.
  const size_t measured = auto_block_size();
  const std::vector<size_t> candidates{512, 1024, 2048, 4096, 8192};
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), measured),
            candidates.end());

  const auto codec = make_codec("rs(6,3)@block=auto");
  const auto& rs = dynamic_cast<const ec::RsCodec&>(*codec);
  EXPECT_EQ(rs.options().exec.block_size, measured);
  // A later explicit block= overrides auto, and vice versa (last wins).
  const auto explicit_codec = make_codec("rs(6,3)@block=auto,block=512");
  EXPECT_EQ(dynamic_cast<const ec::RsCodec&>(*explicit_codec).options().exec.block_size,
            512u);
  const auto auto_codec = make_codec("rs(6,3)@block=512,block=auto");
  EXPECT_EQ(dynamic_cast<const ec::RsCodec&>(*auto_codec).options().exec.block_size,
            measured);
  // canonical_spec pins the resolved byte count, so auto and its resolution
  // share one service pool.
  EXPECT_EQ(canonical_spec("rs(6,3)@block=auto"),
            canonical_spec("rs(6,3)@block=" + std::to_string(measured)));
}
