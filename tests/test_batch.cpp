// BatchCoder sessions, the runtime::TaskQueue underneath them, and the
// deterministic ThreadPool::shared grow-only semantics. The headline test
// round-trips 64+ mixed encode/reconstruct jobs concurrently (the batch
// acceptance bar) and byte-verifies every stripe.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "api/xorec.hpp"
#include "ec/object_codec.hpp"
#include "runtime/task_queue.hpp"
#include "runtime/thread_pool.hpp"

using namespace xorec;

// ---- TaskQueue -------------------------------------------------------------

TEST(TaskQueue, RunsEverySubmittedTask) {
  runtime::TaskQueue q(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) futs.push_back(q.submit([&] { ++count; }));
  q.wait_idle();
  EXPECT_EQ(count.load(), 100);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
}

TEST(TaskQueue, FutureCarriesTheException) {
  runtime::TaskQueue q(2);
  auto ok = q.submit([] {});
  auto bad = q.submit([] { throw std::runtime_error("job failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  q.wait_idle();  // the failure must not wedge the queue
  auto after = q.submit([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(TaskQueue, DestructorDrainsTheQueue) {
  std::atomic<int> count{0};
  {
    runtime::TaskQueue q(2);
    for (int i = 0; i < 50; ++i) q.submit([&] { ++count; });
  }  // destructor: drain, then join
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskQueue, ZeroThreadsClampsToOne) {
  runtime::TaskQueue q(0);
  EXPECT_EQ(q.threads(), 1u);
  auto f = q.submit([] {});
  EXPECT_NO_THROW(f.get());
}

// ---- ThreadPool shared semantics -------------------------------------------

TEST(ThreadPool, SharedGrowsMonotonicallyAndIsOneInstance) {
  runtime::ThreadPool& a = runtime::ThreadPool::shared(2);
  EXPECT_GE(a.size(), 2u);
  runtime::ThreadPool& b = runtime::ThreadPool::shared(4);
  EXPECT_EQ(&a, &b);  // one process-wide pool, not one per size
  EXPECT_GE(b.size(), 4u);
  const size_t grown = b.size();
  runtime::ThreadPool& c = runtime::ThreadPool::shared(1);
  EXPECT_EQ(&a, &c);
  EXPECT_EQ(c.size(), grown);  // smaller requests never shrink it
}

TEST(ThreadPool, ResizeGrowsAndCoversNewIndices) {
  runtime::ThreadPool pool(2);
  ASSERT_EQ(pool.size(), 2u);

  std::mutex mu;
  std::set<size_t> seen;
  const auto collect = [&](size_t w) {
    std::lock_guard lk(mu);
    seen.insert(w);
  };
  pool.run_on_all(collect);
  EXPECT_EQ(seen, (std::set<size_t>{0, 1}));

  pool.resize(4);
  EXPECT_EQ(pool.size(), 4u);
  seen.clear();
  pool.run_on_all(collect);
  EXPECT_EQ(seen, (std::set<size_t>{0, 1, 2, 3}));

  pool.resize(1);  // grow-only: a no-op
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ConcurrentRunOnAllCallsSerialize) {
  runtime::ThreadPool pool(3);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::atomic<int> total{0};
  const auto job = [&](size_t) {
    if (inside.fetch_add(1) >= static_cast<int>(pool.size())) overlapped = true;
    ++total;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    --inside;
  };
  std::thread t1([&] { for (int i = 0; i < 5; ++i) pool.run_on_all(job); });
  std::thread t2([&] { for (int i = 0; i < 5; ++i) pool.run_on_all(job); });
  t1.join();
  t2.join();
  EXPECT_FALSE(overlapped.load());  // never two fork-join jobs interleaved
  EXPECT_EQ(total.load(), 10 * static_cast<int>(pool.size()));
}

// ---- BatchCoder ------------------------------------------------------------

namespace {

struct Stripe {
  std::vector<std::vector<uint8_t>> frags;  // n + p, encoded ground truth
  std::vector<const uint8_t*> data_ptrs;
  std::vector<uint8_t*> parity_ptrs;
};

Stripe make_stripe(const Codec& codec, size_t frag_len, uint32_t seed) {
  std::mt19937 rng(seed);
  Stripe s;
  s.frags.assign(codec.total_fragments(), std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < codec.data_fragments(); ++i)
    for (auto& b : s.frags[i]) b = static_cast<uint8_t>(rng());
  for (size_t i = 0; i < codec.data_fragments(); ++i)
    s.data_ptrs.push_back(s.frags[i].data());
  for (size_t i = 0; i < codec.parity_fragments(); ++i)
    s.parity_ptrs.push_back(s.frags[codec.data_fragments() + i].data());
  codec.encode(s.data_ptrs.data(), s.parity_ptrs.data(), frag_len);
  return s;
}

}  // namespace

TEST(BatchCoder, RoundTrips64MixedJobsConcurrently) {
  auto codec = std::shared_ptr<const Codec>(make_codec("rs(6,3)@block=512"));
  const size_t n = codec->data_fragments(), frag_len = codec->fragment_multiple() * 64;
  BatchCoder batch(codec, 4);
  EXPECT_EQ(batch.threads(), 4u);

  constexpr size_t kEncodes = 32, kRepairs = 32;
  // Encode jobs: ground truth computed inline first, parity zeroed, the
  // session must rebuild it bit-for-bit.
  std::vector<Stripe> enc(kEncodes);
  std::vector<std::vector<std::vector<uint8_t>>> truth(kEncodes);
  // Repair jobs: one data + one parity erasure, half through a shared plan,
  // half through the plan-less path.
  const std::vector<uint32_t> erased{0, static_cast<uint32_t>(n)};
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec->total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end())
      available.push_back(id);
  const auto plan = codec->plan_reconstruct(available, erased);
  std::vector<Stripe> rep(kRepairs);
  std::vector<std::vector<const uint8_t*>> rep_avail(kRepairs);
  std::vector<std::vector<std::vector<uint8_t>>> rep_out(kRepairs);
  std::vector<std::vector<uint8_t*>> rep_out_ptrs(kRepairs);

  std::vector<std::future<void>> futs;
  for (size_t j = 0; j < kEncodes; ++j) {  // interleave the two job kinds
    {
      enc[j] = make_stripe(*codec, frag_len, static_cast<uint32_t>(j));
      for (size_t i = 0; i < codec->parity_fragments(); ++i) {
        truth[j].push_back(enc[j].frags[n + i]);
        std::fill(enc[j].frags[n + i].begin(), enc[j].frags[n + i].end(), 0);
      }
      futs.push_back(
          batch.submit_encode(enc[j].data_ptrs.data(), enc[j].parity_ptrs.data(), frag_len));
    }
    {
      rep[j] = make_stripe(*codec, frag_len, static_cast<uint32_t>(1000 + j));
      for (uint32_t id : available) rep_avail[j].push_back(rep[j].frags[id].data());
      rep_out[j].assign(erased.size(), std::vector<uint8_t>(frag_len));
      for (auto& o : rep_out[j]) rep_out_ptrs[j].push_back(o.data());
      if (j % 2 == 0)
        futs.push_back(batch.submit_reconstruct(plan, rep_avail[j].data(),
                                                rep_out_ptrs[j].data(), frag_len));
      else
        futs.push_back(batch.submit_reconstruct(available, rep_avail[j].data(), erased,
                                                rep_out_ptrs[j].data(), frag_len));
    }
  }
  EXPECT_EQ(batch.submitted(), kEncodes + kRepairs);
  batch.flush();
  for (auto& f : futs) ASSERT_NO_THROW(f.get());

  for (size_t j = 0; j < kEncodes; ++j)
    for (size_t i = 0; i < codec->parity_fragments(); ++i)
      ASSERT_EQ(enc[j].frags[n + i], truth[j][i]) << "encode stripe " << j;
  for (size_t j = 0; j < kRepairs; ++j)
    for (size_t i = 0; i < erased.size(); ++i)
      ASSERT_EQ(rep_out[j][i], rep[j].frags[erased[i]]) << "repair stripe " << j;
}

TEST(BatchCoder, SpecStringConstruction) {
  BatchCoder two("rs(5,2)@batch=2");
  EXPECT_EQ(two.threads(), 2u);
  EXPECT_EQ(two.codec().name(), "rs(5,2)");

  BatchCoder aut("rs(5,2)@block=512,batch=auto");
  EXPECT_GE(aut.threads(), 1u);

  // Codec options still apply alongside batch=.
  BatchCoder tuned("cauchy(5,2)@block=512,batch=3");
  EXPECT_EQ(tuned.threads(), 3u);
  EXPECT_EQ(tuned.codec().name(), "cauchy(5,2)");

  // batch= is a session key: plain make_codec must reject, not ignore it.
  EXPECT_THROW(make_codec("rs(5,2)@batch=2"), std::invalid_argument);
  EXPECT_THROW(BatchCoder("rs(5,2)@batch=0"), std::invalid_argument);
  EXPECT_THROW(BatchCoder("rs(5,2)@batch=many"), std::invalid_argument);
  EXPECT_THROW(BatchCoder(std::shared_ptr<const Codec>(), 2), std::invalid_argument);
}

TEST(BatchCoder, JobFailureArrivesThroughTheFuture) {
  auto codec = std::shared_ptr<const Codec>(make_codec("rs(4,2)"));
  BatchCoder batch(codec, 2);
  const size_t frag_len = codec->fragment_multiple() * 8;
  auto s = make_stripe(*codec, frag_len, 9);
  // Too few survivors: the plan-less job throws inside the worker.
  std::vector<const uint8_t*> avail{s.frags[0].data(), s.frags[1].data(),
                                    s.frags[2].data()};
  std::vector<uint8_t> out(frag_len);
  uint8_t* outp = out.data();
  auto fut = batch.submit_reconstruct({0, 1, 2}, avail.data(), {3}, &outp, frag_len);
  EXPECT_THROW(fut.get(), std::invalid_argument);
  batch.flush();  // session stays usable
  EXPECT_THROW(batch.submit_reconstruct(nullptr, avail.data(), &outp, frag_len),
               std::invalid_argument);
}

TEST(BatchCoder, ObjectCodecRoutesThroughTheSession) {
  auto codec = std::shared_ptr<const Codec>(make_codec("evenodd(4,2)"));
  ec::ObjectCodec blobs(codec);
  BatchCoder session(codec, 3);

  std::vector<uint8_t> blob(10000);
  std::mt19937 rng(17);
  for (auto& b : blob) b = static_cast<uint8_t>(rng());

  auto enc = blobs.encode(blob.data(), blob.size(), &session);
  auto plain = blobs.encode(blob.data(), blob.size());
  EXPECT_EQ(enc.fragments, plain.fragments);

  // Drop one data + one parity fragment; decode through the session.
  std::vector<std::vector<uint8_t>> survivors;
  for (size_t id = 0; id < enc.fragments.size(); ++id)
    if (id != 1 && id != 5) survivors.push_back(enc.fragments[id]);
  const auto dec = blobs.decode(survivors, &session);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, blob);

  const auto rebuilt = blobs.rebuild_all(survivors, &session);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->fragments, enc.fragments);

  // A session over a different codec instance is refused.
  auto other = std::shared_ptr<const Codec>(make_codec("evenodd(4,2)"));
  BatchCoder wrong(other, 1);
  EXPECT_THROW(blobs.decode(survivors, &wrong), std::invalid_argument);
}

TEST(BatchCoder, ManyStripesOverOnePlanByteIdentical) {
  // The acceptance shape end to end: one plan, >= 100 stripes, byte parity
  // with one-shot reconstruct, all through a concurrent session.
  auto codec = std::shared_ptr<const Codec>(make_codec("star(5)"));
  const size_t frag_len = codec->fragment_multiple() * 8;
  const std::vector<uint32_t> erased{0, 1};
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec->total_fragments(); ++id)
    if (id != 0 && id != 1) available.push_back(id);
  const auto plan = codec->plan_reconstruct(available, erased);

  BatchCoder batch(codec, 4);
  constexpr size_t kStripes = 120;
  std::vector<Stripe> stripes(kStripes);
  std::vector<std::vector<const uint8_t*>> avail(kStripes);
  std::vector<std::vector<std::vector<uint8_t>>> outs(kStripes);
  std::vector<std::vector<uint8_t*>> out_ptrs(kStripes);
  for (size_t s = 0; s < kStripes; ++s) {
    stripes[s] = make_stripe(*codec, frag_len, static_cast<uint32_t>(7000 + s));
    for (uint32_t id : available) avail[s].push_back(stripes[s].frags[id].data());
    outs[s].assign(erased.size(), std::vector<uint8_t>(frag_len));
    for (auto& o : outs[s]) out_ptrs[s].push_back(o.data());
    batch.submit_reconstruct(plan, avail[s].data(), out_ptrs[s].data(), frag_len);
  }
  batch.flush();
  for (size_t s = 0; s < kStripes; ++s)
    for (size_t i = 0; i < erased.size(); ++i)
      ASSERT_EQ(outs[s][i], stripes[s].frags[erased[i]]) << "stripe " << s;
}

TEST(BatchCoder, AutoWorkerCountIsMeasuredOnceAndMemoized) {
  // batch=auto runs a one-shot calibration sweep; the result is a sane
  // worker count, memoized for the process (two auto sessions agree).
  const size_t measured = auto_batch_workers();
  EXPECT_GE(measured, 1u);
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(measured, hw);
  EXPECT_EQ(auto_batch_workers(), measured);  // memoized, not re-measured

  BatchCoder a("rs(4,2)@batch=auto");
  BatchCoder b(std::shared_ptr<const Codec>(make_codec("rs(4,2)")), 0);
  EXPECT_EQ(a.threads(), measured);
  EXPECT_EQ(b.threads(), measured);
}
