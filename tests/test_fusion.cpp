// XOR fusion (§5.2): semantic preservation, Theorem 2 (#M strictly
// decreases), the single-use fixpoint, and the §5.2 compress-vs-fuse example.
#include <gtest/gtest.h>

#include "slp/fusion.hpp"
#include "slp/metrics.hpp"
#include "slp/repair.hpp"
#include "slp/semantics.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(Fusion, ChainCollapsesToOneInstruction) {
  // §5's example: ((a^b)^c)^d becomes Xor4(a,b,c,d).
  Program p;
  p.num_consts = 4;
  p.num_vars = 3;
  p.body = {{0, {C(0), C(1)}}, {1, {V(0), C(2)}}, {2, {V(1), C(3)}}};
  p.outputs = {2};
  const Program q = fuse(p);
  q.validate();
  EXPECT_TRUE(equivalent(p, q));
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].args.size(), 4u);
  EXPECT_EQ(mem_accesses(q, ExecForm::Fused), 5u);
}

TEST(Fusion, SharedVariableIsKept) {
  // §5.2's B program: v0 used twice must NOT unfold (it would raise #M).
  Program b;
  b.num_consts = 7;
  b.num_vars = 3;
  b.body = {{0, {C(0), C(1), C(2), C(3), C(4)}}, {1, {V(0), C(5)}}, {2, {V(0), C(6)}}};
  b.outputs = {1, 2};
  const Program q = fuse(b);
  EXPECT_TRUE(equivalent(b, q));
  EXPECT_EQ(q.body.size(), 3u);  // unchanged
  EXPECT_EQ(mem_accesses(q, ExecForm::Fused), 12u);
}

TEST(Fusion, OutputVariablesAreNeverInlined) {
  // v0 is used once by v1 but also returned: it must survive.
  Program p;
  p.num_consts = 3;
  p.num_vars = 2;
  p.body = {{0, {C(0), C(1)}}, {1, {V(0), C(2)}}};
  p.outputs = {0, 1};
  const Program q = fuse(p);
  EXPECT_TRUE(equivalent(p, q));
  EXPECT_EQ(q.body.size(), 2u);
}

TEST(Fusion, Theorem2MemAccessStrictlyDecreases) {
  // Whenever fusion fires at least once, #M strictly drops (Theorem 2).
  for (uint32_t seed = 0; seed < 12; ++seed) {
    const Program flat = random_flat(32, 12, 200 + seed);
    const Program co = xor_repair_compress(flat);
    const Program fu = fuse(co);
    fu.validate();
    ASSERT_TRUE(equivalent(co, fu)) << "seed " << seed;
    if (fu.body.size() < co.body.size()) {
      EXPECT_LT(mem_accesses(fu, ExecForm::Fused), mem_accesses(co, ExecForm::Fused))
          << "seed " << seed;
    }
    EXPECT_EQ(xor_ops(fu), xor_ops(co)) << "fusion must not change XOR work";
  }
}

TEST(Fusion, FixpointHasNoSingleUseTemporaries) {
  const Program fu = fuse(xor_repair_compress(random_flat(48, 20, 77)));
  std::vector<uint32_t> uses(fu.num_vars, 0);
  for (const Instruction& ins : fu.body)
    for (const Term& t : ins.args)
      if (t.is_var()) ++uses[t.id];
  std::vector<bool> is_out(fu.num_vars, false);
  for (uint32_t o : fu.outputs) is_out[o] = true;
  for (uint32_t v = 0; v < fu.num_vars; ++v) {
    if (!is_out[v]) {
      EXPECT_NE(uses[v], 1u) << "v" << v << " should have been inlined";
    }
  }
}

TEST(Fusion, CancellationOnInline) {
  // v0 = a^b; v1 = v0^a (single use): inlining cancels `a`, leaving v1 = b.
  Program p;
  p.num_consts = 2;
  p.num_vars = 2;
  p.body = {{0, {C(0), C(1)}}, {1, {V(0), C(0)}}};
  p.outputs = {1};
  const Program q = fuse(p);
  EXPECT_TRUE(equivalent(p, q));
  ASSERT_EQ(q.body.size(), 1u);
  ASSERT_EQ(q.body[0].args.size(), 1u);
  EXPECT_EQ(q.body[0].args[0], C(1));
}

TEST(Fusion, FlatProgramsAreAlreadyFixpoints) {
  const Program flat = random_flat(20, 8, 31);
  const Program q = fuse(flat);
  EXPECT_EQ(q.body.size(), flat.body.size());
  EXPECT_TRUE(equivalent(flat, q));
}

TEST(Fusion, RejectsNonSsa) {
  EXPECT_THROW(fuse(make_preg()), std::invalid_argument);
}

TEST(Fusion, PegFusesV1IntoNothingButKeepsShared) {
  // In P_eg, v0 and v2 are used twice (kept); nothing is single-use except
  // none — the program is already a fixpoint.
  const Program q = fuse(make_peg());
  EXPECT_EQ(q.body.size(), 5u);
  EXPECT_TRUE(equivalent(make_peg(), q));
}
