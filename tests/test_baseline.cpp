// Baselines: the ISA-L-style GF dot-product codec (against oracles and
// against the XOR-SLP codec — both implement the same matrix), and the
// Zhou-Tian-style scheduler (semantics + reduction regime).
#include <gtest/gtest.h>

#include <random>

#include "baseline/isal_style.hpp"
#include "baseline/naive_xor.hpp"
#include "baseline/zhou_tian.hpp"
#include "ec/layout.hpp"
#include "ec/rs_codec.hpp"
#include "slp/metrics.hpp"
#include "slp/semantics.hpp"

using namespace xorec;

namespace {

std::vector<std::vector<uint8_t>> random_frags(size_t n, size_t len, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> f(n, std::vector<uint8_t>(len));
  for (auto& frag : f)
    for (auto& b : frag) b = static_cast<uint8_t>(rng());
  return f;
}

}  // namespace

TEST(IsalStyle, DotProdMatchesScalarOracle) {
  std::mt19937 rng(3);
  gf::Matrix coeffs(3, 5);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 5; ++j) coeffs.at(i, j) = static_cast<uint8_t>(rng());
  const auto tables = baseline::build_gf_tables(coeffs);

  for (size_t len : {1u, 31u, 32u, 33u, 100u, 4096u, 5000u}) {
    const auto in = random_frags(5, len, static_cast<uint32_t>(len));
    std::vector<const uint8_t*> in_ptrs;
    for (const auto& f : in) in_ptrs.push_back(f.data());
    std::vector<std::vector<uint8_t>> out(3, std::vector<uint8_t>(len, 1)),
        want(3, std::vector<uint8_t>(len, 2));
    std::vector<uint8_t*> out_ptrs, want_ptrs;
    for (auto& f : out) out_ptrs.push_back(f.data());
    for (auto& f : want) want_ptrs.push_back(f.data());

    baseline::gf_dot_prod(tables, 5, 3, in_ptrs.data(), out_ptrs.data(), len);
    baseline::gf_dot_prod_scalar(coeffs, in_ptrs.data(), want_ptrs.data(), len);
    EXPECT_EQ(out, want) << "len " << len;
  }
}

TEST(IsalStyle, TableShapeIsValidated) {
  std::vector<uint8_t> bad(10);
  EXPECT_THROW(baseline::gf_dot_prod(bad, 5, 3, nullptr, nullptr, 0), std::invalid_argument);
}

TEST(IsalStyle, EncodeAgreesWithXorSlpCodecThroughLayout) {
  // The decisive cross-validation: two entirely different execution paths
  // (GF table MM vs optimized XOR SLPs) over the same systematic matrix.
  // Fragments differ only in symbol layout: the SLP engine works on the
  // bit-plane view, ISA-L style on the byte stream; converting data to the
  // symbol domain must produce identical parity (ec/layout.hpp).
  for (auto [n, p] : {std::pair<size_t, size_t>{10, 4}, {8, 3}, {6, 2}, {4, 4}}) {
    ec::RsCodec slp_codec(n, p);
    baseline::IsalStyleCodec isal(n, p);
    ASSERT_EQ(slp_codec.code_matrix(), isal.code_matrix());

    const size_t frag_len = 1 << 12;
    const auto data = random_frags(n, frag_len, static_cast<uint32_t>(n * 31 + p));
    std::vector<const uint8_t*> data_ptrs;
    for (const auto& f : data) data_ptrs.push_back(f.data());

    // XOR-SLP path on the raw fragments (bit-plane semantics).
    std::vector<std::vector<uint8_t>> par_slp(p, std::vector<uint8_t>(frag_len));
    std::vector<uint8_t*> pa;
    for (auto& f : par_slp) pa.push_back(f.data());
    slp_codec.encode(data_ptrs.data(), pa.data(), frag_len);

    // ISA-L path on the symbol view of the same fragments.
    std::vector<std::vector<uint8_t>> data_sym(n);
    std::vector<const uint8_t*> ds_ptrs;
    for (size_t i = 0; i < n; ++i) {
      data_sym[i] = ec::fragment_to_symbols(data[i].data(), frag_len);
      ds_ptrs.push_back(data_sym[i].data());
    }
    std::vector<std::vector<uint8_t>> par_sym(p, std::vector<uint8_t>(frag_len));
    std::vector<uint8_t*> pb;
    for (auto& f : par_sym) pb.push_back(f.data());
    isal.encode(ds_ptrs.data(), pb.data(), frag_len);

    for (size_t i = 0; i < p; ++i)
      EXPECT_EQ(ec::fragment_to_symbols(par_slp[i].data(), frag_len), par_sym[i])
          << "RS(" << n << "," << p << ") parity " << i;
  }
}

TEST(IsalStyle, ReconstructRoundTrip) {
  const size_t n = 10, p = 4, frag_len = 512;
  baseline::IsalStyleCodec codec(n, p);
  auto frags = random_frags(n, frag_len, 17);
  frags.resize(n + p, std::vector<uint8_t>(frag_len));
  {
    std::vector<const uint8_t*> d;
    std::vector<uint8_t*> par;
    for (size_t i = 0; i < n; ++i) d.push_back(frags[i].data());
    for (size_t i = 0; i < p; ++i) par.push_back(frags[n + i].data());
    codec.encode(d.data(), par.data(), frag_len);
  }
  const std::vector<uint32_t> erased{1, 3, 4, 12};
  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id = 0; id < n + p; ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
      available.push_back(id);
      avail_ptrs.push_back(frags[id].data());
    }
  std::vector<std::vector<uint8_t>> rebuilt(erased.size(), std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> outs;
  for (auto& r : rebuilt) outs.push_back(r.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, outs.data(), frag_len);
  for (size_t i = 0; i < erased.size(); ++i) EXPECT_EQ(rebuilt[i], frags[erased[i]]);
}

TEST(ZhouTian, IncrementalScheduleIsSemanticallyCorrect) {
  const auto m = bitmatrix::expand(gf::rs_isal_matrix(10, 4).select_rows({10, 11, 12, 13}));
  const slp::Program base = slp::from_bitmatrix(m);
  const slp::Program zt = baseline::incremental_schedule(m, "zt");
  zt.validate();
  EXPECT_TRUE(slp::equivalent(base, zt));
}

TEST(ZhouTian, ReductionLandsInTheirRegimeNotOurs) {
  // §3/§7.3: non-SLP row heuristics reduce to ~65% on average; RePair ~42%.
  // The incremental scheduler must clearly beat "no reduction" but clearly
  // lose to XorRePair on the same matrix.
  const auto m = bitmatrix::expand(gf::rs_isal_matrix(10, 4).select_rows({10, 11, 12, 13}));
  const slp::Program base = slp::from_bitmatrix(m);
  const slp::Program zt = baseline::incremental_schedule(m);
  const size_t base_x = slp::xor_ops(base), zt_x = slp::xor_ops(zt);
  EXPECT_LT(zt_x, base_x);
  const double ratio = static_cast<double>(zt_x) / static_cast<double>(base_x);
  EXPECT_GT(ratio, 0.45) << "suspiciously strong for a non-SLP heuristic: " << ratio;
}

TEST(ZhouTian, ReorderPreservesSemanticsAndCounts) {
  const auto m = bitmatrix::expand(gf::rs_isal_matrix(8, 3).select_rows({8, 9, 10}));
  const slp::Program zt = baseline::incremental_schedule(m);
  const slp::Program re = baseline::reorder_for_locality(zt);
  re.validate();
  EXPECT_TRUE(slp::equivalent(zt, re));
  EXPECT_EQ(slp::xor_ops(re), slp::xor_ops(zt));
  EXPECT_EQ(re.body.size(), zt.body.size());
}

TEST(NaiveXor, OptionsDisableEverything) {
  const auto opt = baseline::naive_xor_options(512);
  EXPECT_EQ(opt.pipeline.compress, slp::CompressKind::None);
  EXPECT_FALSE(opt.pipeline.fuse);
  EXPECT_EQ(opt.pipeline.schedule, slp::ScheduleKind::None);
  const ec::RsCodec codec = baseline::make_naive_codec(6, 2, 512);
  EXPECT_FALSE(codec.encode_pipeline()->compressed.has_value());
  EXPECT_FALSE(codec.encode_pipeline()->fused.has_value());
}

TEST(NaiveXor, EncodesIdenticallyToOptimizedCodec) {
  const ec::RsCodec naive = baseline::make_naive_codec(8, 2);
  const ec::RsCodec opt(8, 2);
  const size_t frag_len = 2048;
  const auto data = random_frags(8, frag_len, 77);
  std::vector<const uint8_t*> d;
  for (const auto& f : data) d.push_back(f.data());
  std::vector<std::vector<uint8_t>> pa(2, std::vector<uint8_t>(frag_len)),
      pb(2, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> a, b;
  for (auto& f : pa) a.push_back(f.data());
  for (auto& f : pb) b.push_back(f.data());
  naive.encode(d.data(), a.data(), frag_len);
  opt.encode(d.data(), b.data(), frag_len);
  EXPECT_EQ(pa, pb);
}
