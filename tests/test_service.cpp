// CodecService: canonical-spec pool sharing, routed multi-tenant traffic,
// warmup round-trips (save -> fresh service -> warm lookups), and
// stats-snapshot consistency under concurrent load.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/xorec.hpp"
#include "ec/object_codec.hpp"
#include "ec/plan_cache.hpp"
#include "ec/plan_cache_io.hpp"

using namespace xorec;

namespace {

/// A service with its own plan cache: an isolated compilation domain, so
/// warmup tests see cold/warm transitions regardless of what other tests
/// left in the process-shared cache.
CodecService::Options isolated(size_t shards = 2, size_t workers = 1) {
  CodecService::Options opt;
  opt.shards = shards;
  opt.workers_per_shard = workers;
  opt.plan_cache = std::make_shared<ec::PlanCache>(0, 4);
  return opt;
}

std::vector<uint32_t> all_but(const Codec& codec, const std::vector<uint32_t>& erased) {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec.total_fragments(); ++id)
    if (std::find(erased.begin(), erased.end(), id) == erased.end())
      available.push_back(id);
  return available;
}

std::string temp_profile_path(const char* tag) {
  return testing::TempDir() + "xorec_profile_" + tag + "_" +
         std::to_string(::getpid()) + ".txt";
}

/// Encode random data through `handle`, erase `erased`, repair through the
/// service, and check the rebuilt bytes — the routed end-to-end loop.
void roundtrip(const ServiceHandle& handle, const std::vector<uint32_t>& erased,
               uint32_t seed) {
  const Codec& codec = handle.codec();
  const size_t frag_len = codec.fragment_multiple() * 32;
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> frags(codec.total_fragments(),
                                          std::vector<uint8_t>(frag_len));
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < codec.data_fragments(); ++i) {
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
    data.push_back(frags[i].data());
  }
  for (size_t i = codec.data_fragments(); i < codec.total_fragments(); ++i)
    parity.push_back(frags[i].data());
  handle.encode(data.data(), parity.data(), frag_len).get();

  const auto available = all_but(codec, erased);
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(frags[id].data());
  std::vector<std::vector<uint8_t>> rebuilt(erased.size(),
                                            std::vector<uint8_t>(frag_len, 0xEE));
  std::vector<uint8_t*> out_ptrs;
  for (auto& r : rebuilt) out_ptrs.push_back(r.data());

  const auto plan = handle.plan_reconstruct(available, erased);
  handle.reconstruct(plan, avail_ptrs.data(), out_ptrs.data(), frag_len).get();
  for (size_t i = 0; i < erased.size(); ++i)
    ASSERT_EQ(rebuilt[i], frags[erased[i]]) << "fragment " << erased[i];
}

}  // namespace

// ---- canonical-spec normalization ------------------------------------------

TEST(CanonicalSpec, NormalizesSpellings) {
  // Key reordering and whitespace collapse to one spelling.
  EXPECT_EQ(canonical_spec("rs(6,3)@threads=2,block=1024"),
            canonical_spec("rs(6, 3) @ block = 1024, threads = 2"));
  // Options at their defaults are dropped.
  EXPECT_EQ(canonical_spec("rs(10,4)@block=2048,threads=1"), "rs(10,4)");
  // Default-able positional args are filled in.
  EXPECT_EQ(canonical_spec("rs(10)"), "rs(10,4)");
  EXPECT_EQ(canonical_spec("evenodd(6)"), "evenodd(6,2)");
  EXPECT_EQ(canonical_spec("star(9)"), "star(9,3)");
  // matrix= folds into the RS family name, both directions.
  EXPECT_EQ(canonical_spec("rs(9,3)@matrix=cauchy"), "cauchy(9,3)");
  EXPECT_EQ(canonical_spec("cauchy(9,3)@matrix=isal"), "rs(9,3)");
  EXPECT_EQ(canonical_spec("cauchy(9,3)"), "cauchy(9,3)");
  // Session/service keys never name a codec.
  EXPECT_EQ(canonical_spec("rs(8,2)@batch=4"), "rs(8,2)");
  EXPECT_EQ(canonical_spec("rs(8,2)@warmup=/tmp/p.txt,block=512"), "rs(8,2)@block=512");
  // Pipeline presets and scheduler knobs keep a stable order.
  EXPECT_EQ(canonical_spec("rs(8,2)@sched=multilevel,levels=4:64,block=1024,cap=4"),
            "rs(8,2)@block=1024,sched=multilevel,cap=4,levels=4:64");
  EXPECT_EQ(canonical_spec("rs(8,2)@passes=base"), "rs(8,2)@passes=base");
  EXPECT_EQ(canonical_spec("rs(8,2)@cache=private"), "rs(8,2)@cache=private");
  EXPECT_EQ(canonical_spec("rs(8,2)@cache=64"), "rs(8,2)@cache=64");
  EXPECT_EQ(canonical_spec("rs(8,2)@prefetch=1"), "rs(8,2)@prefetch=1");
}

TEST(CanonicalSpec, IsIdempotent) {
  for (const char* spec :
       {"rs(10,4)", "rs(6,3)@block=1024,threads=2", "cauchy(9,3)",
        "rs(8,2)@sched=multilevel,cap=4,levels=4:64", "rs(8,2)@passes=base",
        "lrc(6,2,2)", "rdp(4)", "isal(8,2)"}) {
    const std::string canon = canonical_spec(spec);
    EXPECT_EQ(canonical_spec(canon), canon) << spec;
  }
}

// ---- pool sharing -----------------------------------------------------------

TEST(CodecService, EquivalentSpecsShareOnePool) {
  CodecService service(isolated());
  const auto a = service.acquire("rs(6,3)@block=1024,threads=2");
  const auto b = service.acquire("rs(6, 3) @ threads=2, block=1024");
  const auto c = service.acquire("rs(6,3)@block=1024,threads=2,prefetch=0");
  EXPECT_EQ(&a.codec(), &b.codec());
  EXPECT_EQ(&a.codec(), &c.codec());
  EXPECT_EQ(a.spec(), "rs(6,3)@block=1024,threads=2");

  const auto d = service.acquire("rs(6,3)@block=512,threads=2");  // different codec
  EXPECT_NE(&a.codec(), &d.codec());

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.pools.size(), 2u);
  EXPECT_EQ(stats.pools[0].clients, 3u);
  EXPECT_EQ(stats.pools[1].clients, 1u);
  // Pools pin round-robin across shards.
  EXPECT_NE(stats.pools[0].shard, stats.pools[1].shard);
}

TEST(CodecService, RejectsBatchKeyAndBadSpecs) {
  CodecService service(isolated());
  EXPECT_THROW(service.acquire("rs(6,3)@batch=4"), std::invalid_argument);
  EXPECT_THROW(service.acquire("nope(6,3)"), std::invalid_argument);
  // make_codec rejects the service/session keys outright.
  EXPECT_THROW((void)make_codec("rs(6,3)@warmup=/tmp/p.txt"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("rs(6,3)@batch=2"), std::invalid_argument);
}

// ---- routed traffic ---------------------------------------------------------

TEST(CodecService, RoutedTrafficRepairsCorrectly) {
  CodecService service(isolated());
  roundtrip(service.acquire("rs(6,3)"), {0, 7}, 11);
  roundtrip(service.acquire("cauchy(5,2)"), {1}, 12);
  roundtrip(service.acquire("evenodd(4,2)"), {0, 3}, 13);
}

TEST(CodecService, ConcurrentMixedSpecTraffic) {
  CodecService service(isolated(3, 2));
  const std::vector<std::string> specs{"rs(6,3)", "cauchy(5,2)", "rs(6,3)@block=1024"};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      try {
        const auto handle = service.acquire(specs[t % specs.size()]);
        for (uint32_t round = 0; round < 3; ++round)
          roundtrip(handle, {static_cast<uint32_t>((t + round) % 5)},
                    static_cast<uint32_t>(100 + t * 10 + round));
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_FALSE(failed.load());

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.pools.size(), specs.size());
  size_t clients_total = 0, jobs_routed = 0, pool_jobs = 0;
  for (const PoolStats& p : stats.pools) {
    clients_total += p.clients;
    pool_jobs += p.encodes + p.reconstructs;
  }
  for (const ShardStats& s : stats.shards) {
    jobs_routed += s.submitted;
    EXPECT_EQ(s.queue_depth, 0u);  // everything flushed
  }
  EXPECT_EQ(clients_total, 6u);
  // 6 clients x 3 rounds x (1 encode + 1 reconstruct).
  EXPECT_EQ(pool_jobs, 36u);
  EXPECT_EQ(jobs_routed, pool_jobs);  // per-shard and per-pool views agree
}

TEST(CodecService, StatsSnapshotsStayConsistentUnderLoad) {
  CodecService service(isolated(2, 2));
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread watcher([&] {
    while (!stop.load()) {
      const ServiceStats s = service.stats();
      size_t shard_jobs = 0, pool_jobs = 0;
      for (const ShardStats& sh : s.shards) {
        shard_jobs += sh.submitted;
        if (sh.queue_depth > sh.submitted) torn = true;
      }
      for (const PoolStats& p : s.pools) pool_jobs += p.encodes + p.reconstructs;
      // Counters are bumped pool-first, then shard: a snapshot may catch a
      // job between the two, so the shard total can only trail.
      if (shard_jobs > pool_jobs) torn = true;
    }
  });
  const auto handle = service.acquire("rs(6,3)");
  for (uint32_t round = 0; round < 8; ++round)
    roundtrip(handle, {round % 4, 6}, 200 + round);
  stop = true;
  watcher.join();
  EXPECT_FALSE(torn.load());

  const ServiceStats s = service.stats();
  size_t shard_jobs = 0;
  for (const ShardStats& sh : s.shards) shard_jobs += sh.submitted;
  EXPECT_EQ(shard_jobs, s.pools[0].encodes + s.pools[0].reconstructs);
  EXPECT_GT(s.uptime_s, 0.0);
}

// ---- warmup round-trip ------------------------------------------------------

TEST(CodecService, WarmupRoundTripServesHotPatternsFromCache) {
  const std::string path = temp_profile_path("roundtrip");
  const std::vector<std::vector<uint32_t>> patterns{{0, 1}, {2, 7}, {9}};

  {  // Process 1: serve cold, persist the key set.
    CodecService service(isolated());
    const auto handle = service.acquire("rs(8,2)@block=1024");
    for (size_t i = 0; i < patterns.size(); ++i) roundtrip(handle, patterns[i], 40 + i);
    EXPECT_GT(service.save_profile(path), patterns.size());  // + parity/encoder keys
    const ServiceStats cold = service.stats();
    EXPECT_EQ(cold.warm_hits, 0u);  // everything compiled inside the window
    EXPECT_GT(cold.warm_misses, 0u);
  }

  // "Process 2": a fresh service over a fresh cache — nothing compiled yet.
  CodecService service(isolated());
  const auto report = service.warmup(path);
  EXPECT_EQ(report.codecs, 1u);
  EXPECT_GE(report.patterns, patterns.size());
  EXPECT_GT(report.compiled, 0u);  // the replay did the compiling
  EXPECT_EQ(report.skipped, 0u);

  // Client traffic on the replayed patterns is now pure cache hits.
  const auto handle = service.acquire("rs(8,2)@block=1024");
  for (size_t i = 0; i < patterns.size(); ++i)
    (void)handle.plan_reconstruct(all_but(handle.codec(), patterns[i]), patterns[i]);
  const ServiceStats warm = service.stats();
  EXPECT_EQ(warm.warm_misses, 0u);
  EXPECT_GE(warm.warm_hits, patterns.size());
  EXPECT_GE(warm.warm_hit_rate(), 0.9);

  // And the warmed programs still decode correct bytes.
  roundtrip(handle, patterns[0], 77);
  std::remove(path.c_str());
}

TEST(CodecService, WarmupSpecKeyReplaysProfile) {
  const std::string path = temp_profile_path("speckey");
  {
    CodecService service(isolated());
    const auto handle = service.acquire("rs(6,3)");
    (void)handle.plan_reconstruct(all_but(handle.codec(), {1, 2}), {1, 2});
    service.save_profile(path);
  }
  CodecService service(isolated());
  // warmup= runs the replay before the lease; a missing file would be a
  // quiet cold start instead.
  const auto handle = service.acquire("rs(6,3)@warmup=" + path);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.warm_misses, 0u);
  (void)handle.plan_reconstruct(all_but(handle.codec(), {1, 2}), {1, 2});
  EXPECT_GE(service.stats().warm_hits, 1u);

  // Re-acquiring the same warmup= path must NOT re-replay or reset the
  // serving window (the hits counted above survive a second acquire).
  const auto again = service.acquire("rs(6,3)@warmup=" + path);
  EXPECT_GE(service.stats().warm_hits, 1u);

  CodecService cold(isolated());
  const auto h2 = cold.acquire("rs(6,3)@warmup=" + path + ".does-not-exist");
  EXPECT_EQ(&h2.codec(), &h2.codec());  // quiet cold start still serves

  // A corrupt profile is NOT quiet — the operator must learn the warm
  // start they asked for cannot happen.
  {
    std::ofstream garbage(path + ".corrupt");
    garbage << "not a profile\n";
  }
  CodecService strict(isolated());
  EXPECT_THROW(strict.acquire("rs(6,3)@warmup=" + path + ".corrupt"),
               std::runtime_error);
  std::remove((path + ".corrupt").c_str());
  std::remove(path.c_str());
}

TEST(PlanProfileIo, RoundTripsAndRejectsGarbage) {
  const std::string path = temp_profile_path("io");
  ec::PlanProfile profile;
  profile.entries.push_back(
      {"rs(6,3)", 1, 2, 3, {{0, 1, UINT32_MAX, 2, 3, 4, 5}, {}, {7, UINT32_MAX, UINT32_MAX}}});
  ec::save_plan_profile(path, profile);
  const ec::PlanProfile loaded = ec::load_plan_profile(path);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].spec, "rs(6,3)");
  EXPECT_EQ(loaded.entries[0].matrix_fp, 1u);
  EXPECT_EQ(loaded.entries[0].config_fp, 3u);
  EXPECT_EQ(loaded.entries[0].patterns, profile.entries[0].patterns);
  EXPECT_EQ(loaded.pattern_count(), 3u);

  EXPECT_THROW(ec::load_plan_profile(path + ".missing"), std::runtime_error);
  {
    std::ofstream bad(path);
    bad << "not a profile\n";
  }
  EXPECT_THROW(ec::load_plan_profile(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- ObjectCodec over a service lease ---------------------------------------

TEST(CodecService, ObjectCodecRoutesThroughTheLeaseShard) {
  CodecService service(isolated());
  const auto handle = service.acquire("rs(4,2)");
  ec::ObjectCodec blobs(handle);

  std::vector<uint8_t> object(10000);
  for (size_t i = 0; i < object.size(); ++i) object[i] = static_cast<uint8_t>(i * 31);
  auto enc = blobs.encode(object.data(), object.size());
  ASSERT_EQ(enc.fragments.size(), 6u);
  enc.fragments[0].clear();
  enc.fragments[5].clear();
  enc.fragments.erase(
      std::remove_if(enc.fragments.begin(), enc.fragments.end(),
                     [](const std::vector<uint8_t>& f) { return f.empty(); }),
      enc.fragments.end());
  const auto dec = blobs.decode(enc.fragments);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, object);
  // The blob jobs really went through the shard session.
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.shards[handle.shard()].submitted, 0u);
}

TEST(CodecService, PoolStatsAccountRepairTraffic) {
  CodecService service(isolated());
  const ServiceHandle handle = service.acquire("rs(6,3)");
  const Codec& codec = handle.codec();
  const size_t frag_len = codec.fragment_multiple() * 32;

  roundtrip(handle, {0}, 21);  // one plan-routed repair of one fragment

  ServiceStats stats = service.stats();
  ASSERT_EQ(stats.pools.size(), 1u);
  const PoolStats& pool = stats.pools[0];
  // The plan read k survivors in full: k * w strips, k fragments of bytes
  // in, one rebuilt fragment out.
  const size_t k = codec.data_fragments();
  const size_t w = codec.fragment_multiple();
  EXPECT_EQ(pool.strips_read, k * w);
  EXPECT_EQ(pool.repair_bytes_in, k * frag_len);
  EXPECT_EQ(pool.repair_bytes_out, frag_len);

  // A reduced-read family charges LESS than survivors x full strips: the
  // whole point of exposing read_set() at the service boundary.
  const ServiceHandle lrc = service.acquire("lrc(6,2,2)");
  roundtrip(lrc, {0}, 22);
  stats = service.stats();
  ASSERT_EQ(stats.pools.size(), 2u);
  const PoolStats& lrc_pool = stats.pools[1];
  const size_t survivors = lrc.codec().total_fragments() - 1;
  EXPECT_GT(lrc_pool.strips_read, 0u);
  EXPECT_LT(lrc_pool.strips_read, survivors * lrc.codec().fragment_multiple());
  EXPECT_LT(lrc_pool.repair_bytes_in, survivors * frag_len);
}
