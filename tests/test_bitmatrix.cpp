// BitRow/BitMatrix mechanics and the GF(2^8) -> F2 expansion (§1's ˜V):
// the homomorphism  companion(x) · bits(y) == bits(x·y)  is the correctness
// core of XOR-based EC, checked exhaustively.
#include <gtest/gtest.h>

#include <random>

#include "bitmatrix/bitmatrix.hpp"

namespace bm = xorec::bitmatrix;
namespace gf = xorec::gf;

namespace {

bm::BitRow bits_of_byte(uint8_t b) {
  bm::BitRow r(8);
  for (int i = 0; i < 8; ++i)
    if ((b >> i) & 1) r.set(i, true);
  return r;
}

uint8_t byte_of_bits(const bm::BitRow& r) {
  uint8_t b = 0;
  for (int i = 0; i < 8; ++i)
    if (r.get(i)) b |= static_cast<uint8_t>(1u << i);
  return b;
}

}  // namespace

TEST(BitRow, SetGetFlip) {
  bm::BitRow r(130);
  EXPECT_EQ(r.size(), 130u);
  r.set(0, true);
  r.set(64, true);
  r.set(129, true);
  EXPECT_TRUE(r.get(0));
  EXPECT_TRUE(r.get(64));
  EXPECT_TRUE(r.get(129));
  EXPECT_FALSE(r.get(1));
  r.flip(129);
  EXPECT_FALSE(r.get(129));
  EXPECT_EQ(r.popcount(), 2u);
}

TEST(BitRow, XorIsSymmetricDifference) {
  bm::BitRow a(100), b(100);
  a.set(3, true);
  a.set(50, true);
  b.set(50, true);
  b.set(99, true);
  const bm::BitRow c = a ^ b;
  EXPECT_TRUE(c.get(3));
  EXPECT_FALSE(c.get(50));
  EXPECT_TRUE(c.get(99));
  EXPECT_EQ(c.popcount(), 2u);
  EXPECT_EQ(a.xor_popcount(b), 2u);
}

TEST(BitRow, OnesEnumeratesAscending) {
  bm::BitRow r(200);
  const std::vector<uint32_t> want{0, 63, 64, 127, 128, 199};
  for (uint32_t i : want) r.set(i, true);
  EXPECT_EQ(r.ones(), want);
}

TEST(BitRow, XorPopcountMatchesMaterialized) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    bm::BitRow a(173), b(173);
    for (int i = 0; i < 173; ++i) {
      if (rng() & 1) a.flip(i);
      if (rng() & 1) b.flip(i);
    }
    EXPECT_EQ(a.xor_popcount(b), (a ^ b).popcount());
  }
}

TEST(BitMatrix, IdentityApply) {
  const bm::BitMatrix i = bm::BitMatrix::identity(40);
  bm::BitRow x(40);
  x.set(0, true);
  x.set(39, true);
  EXPECT_EQ(i.apply(x), x);
}

TEST(BitMatrix, MultiplyMatchesApplyComposition) {
  std::mt19937 rng(13);
  bm::BitMatrix a(9, 12), b(12, 7);
  for (size_t i = 0; i < 9; ++i)
    for (size_t j = 0; j < 12; ++j) a.set(i, j, rng() & 1);
  for (size_t i = 0; i < 12; ++i)
    for (size_t j = 0; j < 7; ++j) b.set(i, j, rng() & 1);
  bm::BitRow x(7);
  for (size_t j = 0; j < 7; ++j) x.set(j, rng() & 1);
  EXPECT_EQ((a * b).apply(x), a.apply(b.apply(x)));
}

TEST(BitMatrix, CompanionHomomorphismExhaustive) {
  // companion(x) * bits(y) == bits(x*y) for all 65536 pairs (§1 property ii).
  for (int x = 0; x < 256; ++x) {
    const bm::BitMatrix m = bm::companion(static_cast<uint8_t>(x));
    for (int y = 0; y < 256; ++y) {
      const uint8_t want = gf::mul(static_cast<uint8_t>(x), static_cast<uint8_t>(y));
      ASSERT_EQ(byte_of_bits(m.apply(bits_of_byte(static_cast<uint8_t>(y)))), want)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(BitMatrix, CompanionOfOneIsIdentity) {
  EXPECT_EQ(bm::companion(1), bm::BitMatrix::identity(8));
}

TEST(BitMatrix, CompanionIsMultiplicative) {
  // companion(a)*companion(b) == companion(a*b): ˜· is a ring homomorphism.
  for (int a = 1; a < 256; a += 37)
    for (int b = 1; b < 256; b += 41)
      ASSERT_EQ(bm::companion(a) * bm::companion(b),
                bm::companion(gf::mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b))));
}

TEST(BitMatrix, ExpandAgreesWithGfApply) {
  // ˜V · bits(D) == bits(V ·_{F2^8} D) on random data (§1's key equation).
  std::mt19937 rng(17);
  const gf::Matrix v = gf::rs_parity_matrix(6, 3);
  const bm::BitMatrix ve = bm::expand(v);
  EXPECT_EQ(ve.rows(), 3u * 8);
  EXPECT_EQ(ve.cols(), 6u * 8);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<uint8_t> d(6);
    for (auto& x : d) x = static_cast<uint8_t>(rng());
    const std::vector<uint8_t> coded = v.apply(d);
    const bm::BitRow coded_bits = ve.apply(bm::pack_bytes(d));
    EXPECT_EQ(bm::unpack_bytes(coded_bits), coded);
  }
}

TEST(BitMatrix, PackUnpackRoundTrip) {
  std::vector<uint8_t> bytes{0x00, 0xff, 0x5a, 0x01, 0x80};
  EXPECT_EQ(bm::unpack_bytes(bm::pack_bytes(bytes)), bytes);
}

TEST(BitMatrix, XorCostCountsChainXors) {
  bm::BitMatrix m(3, 8);
  m.set(0, 0, true);  // 1 one  -> 0 xors
  m.set(1, 0, true);
  m.set(1, 3, true);
  m.set(1, 7, true);  // 3 ones -> 2 xors
  EXPECT_EQ(m.xor_cost(), 2u);
  EXPECT_EQ(m.total_ones(), 4u);
}

TEST(BitMatrix, ToStringRendersRows) {
  bm::BitMatrix m(2, 3);
  m.set(0, 0, true);
  m.set(1, 2, true);
  EXPECT_EQ(m.to_string(), "100\n001\n");
}
