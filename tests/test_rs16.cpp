// GF(2^16) field and the wide-symbol RS codec (w = 16 strips) built on the
// generic XOR-code machinery.
#include <gtest/gtest.h>

#include <random>

#include "altcodes/rs16.hpp"
#include "bitmatrix/f2solve.hpp"
#include "gf/gf65536.hpp"

using namespace xorec;

TEST(Gf65536, MulMatchesSlowOracleSampled) {
  std::mt19937 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const uint16_t a = static_cast<uint16_t>(rng());
    const uint16_t b = static_cast<uint16_t>(rng());
    ASSERT_EQ(gf16::mul(a, b), gf16::mul_slow(a, b)) << a << "*" << b;
  }
}

TEST(Gf65536, FieldAxiomsSampled) {
  std::mt19937 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const uint16_t a = static_cast<uint16_t>(rng());
    const uint16_t b = static_cast<uint16_t>(rng());
    const uint16_t c = static_cast<uint16_t>(rng());
    ASSERT_EQ(gf16::mul(a, b), gf16::mul(b, a));
    ASSERT_EQ(gf16::mul(gf16::mul(a, b), c), gf16::mul(a, gf16::mul(b, c)));
    ASSERT_EQ(gf16::mul(a, static_cast<uint16_t>(b ^ c)),
              gf16::mul(a, b) ^ gf16::mul(a, c));
  }
}

TEST(Gf65536, InverseRoundTripsSampled) {
  std::mt19937 rng(3);
  for (int i = 0; i < 20000; ++i) {
    uint16_t a = static_cast<uint16_t>(rng());
    if (a == 0) a = 1;
    ASSERT_EQ(gf16::mul(a, gf16::inv(a)), 1u);
  }
  EXPECT_THROW(gf16::inv(0), std::domain_error);
}

TEST(Gf65536, AlphaHasFullOrder) {
  // alpha^65535 == 1 and alpha^k != 1 for proper divisors of 65535
  // (3 * 5 * 17 * 257): checking the maximal proper divisors suffices.
  EXPECT_EQ(gf16::alpha_pow(65535), 1u);
  for (unsigned d : {21845u, 13107u, 3855u, 255u}) EXPECT_NE(gf16::alpha_pow(d), 1u);
}

TEST(Rs16, SpecIsSystematicAndWellFormed) {
  const auto spec = altcodes::rs16_spec(6, 3);
  EXPECT_EQ(spec.strips_per_block, 16u);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_THROW(altcodes::rs16_spec(0, 3), std::invalid_argument);
}

TEST(Rs16, CompanionBlocksAreNonsingular) {
  // Every parity coefficient is nonzero in a Cauchy matrix, so each 16x16
  // companion block must have full F2 rank.
  const auto spec = altcodes::rs16_spec(4, 2);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      bitmatrix::BitMatrix block(16, 16);
      for (size_t r = 0; r < 16; ++r)
        for (size_t c = 0; c < 16; ++c)
          block.set(r, c, spec.code.get((4 + i) * 16 + r, j * 16 + c));
      EXPECT_EQ(bitmatrix::f2_rank(block), 16u) << "block " << i << "," << j;
    }
  }
}

TEST(Rs16, EncodeDecodeRoundTripAllMaxErasures) {
  altcodes::XorCodec codec(altcodes::rs16_spec(5, 2));
  const size_t frag_len = 16 * 64;
  std::mt19937_64 rng(7);
  std::vector<std::vector<uint8_t>> frags(7, std::vector<uint8_t>(frag_len));
  for (size_t i = 0; i < 5; ++i)
    for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
  {
    std::vector<const uint8_t*> data;
    std::vector<uint8_t*> parity;
    for (size_t i = 0; i < 5; ++i) data.push_back(frags[i].data());
    for (size_t i = 0; i < 2; ++i) parity.push_back(frags[5 + i].data());
    codec.encode(data.data(), parity.data(), frag_len);
  }
  for (uint32_t a = 0; a < 7; ++a) {
    for (uint32_t b = a + 1; b < 7; ++b) {
      std::vector<uint32_t> erased{a, b};
      std::vector<uint32_t> available;
      std::vector<const uint8_t*> avail;
      for (uint32_t id = 0; id < 7; ++id)
        if (id != a && id != b) {
          available.push_back(id);
          avail.push_back(frags[id].data());
        }
      std::vector<std::vector<uint8_t>> out(2, std::vector<uint8_t>(frag_len));
      std::vector<uint8_t*> outs{out[0].data(), out[1].data()};
      codec.reconstruct(available, avail.data(), erased, outs.data(), frag_len);
      ASSERT_EQ(out[0], frags[a]) << a << "," << b;
      ASSERT_EQ(out[1], frags[b]) << a << "," << b;
    }
  }
}

TEST(Rs16, OptimizerShrinksWideSymbolPrograms) {
  // The 16x16 companions are denser than 8x8 ones; XorRePair should still
  // find heavy sharing.
  altcodes::XorCodec codec(altcodes::rs16_spec(6, 3));
  const auto& pipe = *codec.encode_pipeline();
  ASSERT_TRUE(pipe.compressed.has_value());
  EXPECT_LT(slp::xor_ops(*pipe.compressed), slp::xor_ops(pipe.base));
}
