// Matrices over GF(2^8): algebra, inversion, the paper's systematic
// Vandermonde construction (§7.1), and the MDS property decoding relies on.
#include <gtest/gtest.h>

#include <random>

#include "gf/gfmat.hpp"

namespace gf = xorec::gf;

namespace {

gf::Matrix random_matrix(size_t r, size_t c, uint32_t seed) {
  std::mt19937 rng(seed);
  gf::Matrix m(r, c);
  for (size_t i = 0; i < r; ++i)
    for (size_t j = 0; j < c; ++j) m.at(i, j) = static_cast<uint8_t>(rng());
  return m;
}

}  // namespace

TEST(GfMat, IdentityIsNeutral) {
  const gf::Matrix a = random_matrix(6, 6, 1);
  const gf::Matrix i = gf::Matrix::identity(6);
  EXPECT_EQ(a * i, a);
  EXPECT_EQ(i * a, a);
}

TEST(GfMat, MultiplicationAssociates) {
  const gf::Matrix a = random_matrix(4, 5, 2);
  const gf::Matrix b = random_matrix(5, 3, 3);
  const gf::Matrix c = random_matrix(3, 6, 4);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(GfMat, ShapeMismatchThrows) {
  const gf::Matrix a = random_matrix(4, 5, 5);
  const gf::Matrix b = random_matrix(4, 5, 6);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a.apply(std::vector<uint8_t>(4)), std::invalid_argument);
}

TEST(GfMat, ApplyMatchesMatrixProduct) {
  const gf::Matrix a = random_matrix(7, 5, 7);
  std::vector<uint8_t> x{1, 22, 133, 0, 250};
  gf::Matrix xm(5, 1);
  for (size_t i = 0; i < 5; ++i) xm.at(i, 0) = x[i];
  const gf::Matrix y = a * xm;
  const std::vector<uint8_t> ya = a.apply(x);
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(y.at(i, 0), ya[i]);
}

TEST(GfMat, InverseRoundTrip) {
  for (uint32_t seed = 0; seed < 20; ++seed) {
    gf::Matrix a = random_matrix(8, 8, 100 + seed);
    const auto inv = a.inverse();
    if (!inv) continue;  // singular random matrix: rare but legal
    EXPECT_EQ(a * *inv, gf::Matrix::identity(8));
    EXPECT_EQ(*inv * a, gf::Matrix::identity(8));
  }
}

TEST(GfMat, SingularMatrixHasNoInverse) {
  gf::Matrix a(3, 3);
  a.at(0, 0) = 1;
  a.at(1, 0) = 1;  // duplicate rows
  a.at(0, 1) = 7;
  a.at(1, 1) = 7;
  EXPECT_FALSE(a.inverse().has_value());
  EXPECT_LT(a.rank(), 3u);
}

TEST(GfMat, RankOfProducts) {
  const gf::Matrix a = random_matrix(6, 4, 42);
  EXPECT_LE(a.rank(), 4u);
  EXPECT_EQ(gf::Matrix::identity(9).rank(), 9u);
}

TEST(GfMat, VandermondeShapeAndFirstColumn) {
  const gf::Matrix v = gf::vandermonde(14, 10);
  EXPECT_EQ(v.rows(), 14u);
  EXPECT_EQ(v.cols(), 10u);
  for (size_t i = 0; i < 14; ++i) EXPECT_EQ(v.at(i, 0), 1);  // x^0
  // Row i is powers of alpha^(i+1).
  EXPECT_EQ(v.at(0, 1), gf::kAlpha);
  EXPECT_EQ(v.at(1, 1), gf::alpha_pow(2));
  EXPECT_EQ(v.at(0, 2), gf::mul(gf::kAlpha, gf::kAlpha));
}

TEST(GfMat, SystematicMatrixHasIdentityTop) {
  const gf::Matrix v = gf::rs_systematic_matrix(10, 4);
  EXPECT_EQ(v.rows(), 14u);
  EXPECT_EQ(v.cols(), 10u);
  for (size_t i = 0; i < 10; ++i)
    for (size_t j = 0; j < 10; ++j)
      EXPECT_EQ(v.at(i, j), (i == j) ? 1 : 0) << i << "," << j;
}

TEST(GfMat, ParityMatrixIsBottomOfSystematic) {
  const gf::Matrix v = gf::rs_systematic_matrix(10, 4);
  const gf::Matrix parity = gf::rs_parity_matrix(10, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 10; ++j) EXPECT_EQ(parity.at(i, j), v.at(10 + i, j));
}

// The decoding guarantee: every n-row submatrix of the systematic matrix is
// invertible (MDS). Exhaustive over all C(14,4) = 1001 survivor patterns.
TEST(GfMat, SystematicVandermondeIsMdsForRs10_4) {
  const gf::Matrix v = gf::rs_systematic_matrix(10, 4);
  std::vector<size_t> erased(4);
  size_t checked = 0;
  for (size_t a = 0; a < 14; ++a)
    for (size_t b = a + 1; b < 14; ++b)
      for (size_t c = b + 1; c < 14; ++c)
        for (size_t d = c + 1; d < 14; ++d) {
          std::vector<size_t> survivors;
          for (size_t r = 0; r < 14; ++r)
            if (r != a && r != b && r != c && r != d) survivors.push_back(r);
          ASSERT_TRUE(gf::decode_matrix(v, survivors).has_value())
              << "erased {" << a << "," << b << "," << c << "," << d << "}";
          ++checked;
        }
  EXPECT_EQ(checked, 1001u);
}

TEST(GfMat, CauchyIsMdsSampled) {
  const gf::Matrix v = gf::rs_cauchy_matrix(8, 3);
  for (size_t a = 0; a < 11; ++a)
    for (size_t b = a + 1; b < 11; ++b)
      for (size_t c = b + 1; c < 11; ++c) {
        std::vector<size_t> survivors;
        for (size_t r = 0; r < 11; ++r)
          if (r != a && r != b && r != c) survivors.push_back(r);
        ASSERT_TRUE(gf::decode_matrix(v, survivors).has_value());
      }
}

TEST(GfMat, DecodeMatrixRecoversData) {
  const gf::Matrix v = gf::rs_systematic_matrix(6, 3);
  std::vector<uint8_t> data{10, 200, 3, 44, 0, 255};
  const std::vector<uint8_t> coded = v.apply(data);
  const std::vector<size_t> survivors{0, 2, 4, 6, 7, 8};  // lose rows 1,3,5
  const auto minv = gf::decode_matrix(v, survivors);
  ASSERT_TRUE(minv.has_value());
  std::vector<uint8_t> gathered;
  for (size_t s : survivors) gathered.push_back(coded[s]);
  EXPECT_EQ(minv->apply(gathered), data);
}

TEST(GfMat, BadParametersThrow) {
  EXPECT_THROW(gf::rs_systematic_matrix(0, 4), std::invalid_argument);
  EXPECT_THROW(gf::rs_systematic_matrix(10, 0), std::invalid_argument);
  EXPECT_THROW(gf::rs_systematic_matrix(200, 100), std::invalid_argument);
  EXPECT_THROW(gf::rs_cauchy_matrix(250, 20), std::invalid_argument);
}

TEST(GfMat, SelectRowsAndVstack) {
  const gf::Matrix a = random_matrix(5, 3, 9);
  const gf::Matrix top = a.select_rows({0, 1});
  const gf::Matrix rest = a.select_rows({2, 3, 4});
  EXPECT_EQ(top.vstack(rest), a);
  EXPECT_THROW(a.select_rows({99}), std::out_of_range);
}
