// Differential suite for the execution-backend layer: every exec= backend x
// isa= kernel family must be byte-identical to the scalar interpreter (and
// to the original payload) across the conformance harness's erasure
// patterns, at strip lengths chosen to stress the kernels' tail paths —
// odd lengths far from any SIMD width, and a short final block.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/codec.hpp"
#include "api/registry.hpp"
#include "conformance/codec_conformance.hpp"
#include "ec/plan_cache.hpp"
#include "ec/rs_codec.hpp"
#include "kernel/xor_kernel.hpp"
#include "runtime/executor.hpp"

namespace xorec {
namespace {

struct Stripe {
  std::vector<std::vector<uint8_t>> frags;  // data then parity, encoded
  size_t frag_len = 0;
};

Stripe encoded_stripe(const Codec& c, size_t frag_len, uint32_t seed) {
  Stripe s;
  s.frag_len = frag_len;
  s.frags.resize(c.total_fragments());
  std::mt19937 rng(seed);
  for (size_t f = 0; f < c.total_fragments(); ++f) s.frags[f].resize(frag_len);
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t f = 0; f < c.data_fragments(); ++f) {
    for (uint8_t& b : s.frags[f]) b = static_cast<uint8_t>(rng());
    data.push_back(s.frags[f].data());
  }
  for (size_t f = c.data_fragments(); f < c.total_fragments(); ++f)
    parity.push_back(s.frags[f].data());
  c.encode(data.data(), parity.data(), frag_len);
  return s;
}

/// Encode + every C(n, <= m) reconstruct of `spec` must be byte-identical
/// to `ref` (the scalar interpreter codec over the same family/geometry).
void expect_identical(const std::string& spec, const Codec& ref, const Stripe& ref_stripe,
                      size_t max_erased, uint32_t seed) {
  SCOPED_TRACE(spec);
  const auto codec = make_codec(spec);
  ASSERT_EQ(codec->total_fragments(), ref.total_fragments());

  const Stripe st = encoded_stripe(*codec, ref_stripe.frag_len, seed);
  for (size_t f = 0; f < ref.total_fragments(); ++f)
    ASSERT_EQ(st.frags[f], ref_stripe.frags[f]) << "encode mismatch, fragment " << f;

  for (const auto& erased :
       conformance::erasure_patterns(codec->total_fragments(), max_erased)) {
    SCOPED_TRACE(::testing::Message() << "erased n=" << erased.size()
                                      << " first=" << erased.front());
    const auto available = conformance::all_but(*codec, erased);
    std::vector<const uint8_t*> in;
    for (uint32_t id : available) in.push_back(st.frags[id].data());

    std::shared_ptr<const ReconstructPlan> ref_plan, plan;
    try {
      ref_plan = ref.plan_reconstruct(available, erased);
    } catch (const std::invalid_argument&) {
      // Unrecoverable under the reference (non-MDS families): every backend
      // must agree.
      EXPECT_THROW(codec->plan_reconstruct(available, erased), std::invalid_argument);
      continue;
    }
    ASSERT_NO_THROW(plan = codec->plan_reconstruct(available, erased));

    std::vector<std::vector<uint8_t>> rebuilt(erased.size());
    std::vector<uint8_t*> out;
    for (auto& b : rebuilt) {
      b.assign(st.frag_len, 0xCD);  // poison: a skipped write must fail
      out.push_back(b.data());
    }
    plan->execute(in.data(), out.data(), st.frag_len);
    for (size_t e = 0; e < erased.size(); ++e)
      ASSERT_EQ(rebuilt[e], st.frags[erased[e]]) << "fragment " << erased[e];
  }
}

// Strip lengths exercising the kernels' tails. The conformance families use
// small geometries, so a fragment is fragment_multiple() strips; 49-byte
// strips sit below every SIMD width and are no multiple of 8, and block=384
// against 1000-byte strips leaves a 232-byte final block.
constexpr size_t kOddStrip = 49;
constexpr size_t kLongStrip = 1000;

class ExecBackendDifferential : public ::testing::Test {};

TEST(ExecBackendDifferential, RsFullSweepOddStrips) {
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp");
  const size_t frag_len = ref->fragment_multiple() * kOddStrip;
  const Stripe st = encoded_stripe(*ref, frag_len, /*seed=*/1);
  for (const char* isa : {"scalar", "word64", "avx2", "avx512", "neon", "auto"})
    for (const char* exec : {"interp", "lowered"})
      expect_identical("rs(6,3)@isa=" + std::string(isa) + ",exec=" + exec, *ref, st,
                       ref->parity_fragments(), /*seed=*/1);
}

TEST(ExecBackendDifferential, RsShortFinalBlock) {
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp,block=384");
  const size_t frag_len = ref->fragment_multiple() * kLongStrip;
  const Stripe st = encoded_stripe(*ref, frag_len, /*seed=*/2);
  for (const char* exec : {"interp", "lowered"})
    expect_identical("rs(6,3)@block=384,exec=" + std::string(exec), *ref, st,
                     ref->parity_fragments(), /*seed=*/2);
}

TEST(ExecBackendDifferential, OtherFamiliesBestIsaBothBackends) {
  struct Fam {
    const char* spec;
    size_t max_erased;
  };
  for (const Fam& fam : {Fam{"cauchy(5,3)", 3}, Fam{"lrc(6,2,2)", 4}, Fam{"evenodd(4)", 2}}) {
    const std::string base(fam.spec);
    const auto ref = make_codec(base + "@isa=scalar,exec=interp");
    const size_t frag_len = ref->fragment_multiple() * kOddStrip;
    const Stripe st = encoded_stripe(*ref, frag_len, /*seed=*/3);
    for (const char* exec : {"interp", "lowered"})
      expect_identical(base + "@exec=" + exec, *ref, st, fam.max_erased, /*seed=*/3);
  }
}

TEST(ExecBackendDifferential, NtStoresByteIdentical) {
  // Force the non-temporal path: nt_threshold <= block so every dead-store
  // output streams. The spec grammar deliberately has no nt= knob (it is a
  // tuning constant), so build through the registry-parallel ExecOptions.
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp");
  const size_t frag_len = ref->fragment_multiple() * kLongStrip;
  const Stripe ref_st = encoded_stripe(*ref, frag_len, /*seed=*/4);

  ec::CodecOptions opt;
  opt.exec.backend = runtime::ExecBackend::Lowered;
  opt.exec.nt_threshold = 1;  // every block qualifies
  const ec::RsCodec codec(6, 3, opt);
  const Stripe st = encoded_stripe(codec, frag_len, /*seed=*/4);
  for (size_t f = 0; f < ref->total_fragments(); ++f)
    ASSERT_EQ(st.frags[f], ref_st.frags[f]) << "NT encode mismatch, fragment " << f;

  const std::vector<uint32_t> available{0, 1, 2, 6, 7, 8};
  const std::vector<uint32_t> erased{3, 4, 5};
  std::vector<const uint8_t*> in;
  for (uint32_t id : available) in.push_back(st.frags[id].data());
  std::vector<std::vector<uint8_t>> rebuilt(erased.size());
  std::vector<uint8_t*> out;
  for (auto& b : rebuilt) {
    b.assign(frag_len, 0xCD);
    out.push_back(b.data());
  }
  codec.plan_reconstruct(available, erased)->execute(in.data(), out.data(), frag_len);
  for (size_t e = 0; e < erased.size(); ++e)
    ASSERT_EQ(rebuilt[e], st.frags[erased[e]]) << "NT fragment " << erased[e];
}

TEST(ExecBackendGrammar, SpecKeysRoundTrip) {
  // exec=interp is the only backend token canonical form keeps: auto IS the
  // default and lowered is what auto resolves to.
  EXPECT_EQ(canonical_spec("rs(6,3)@exec=interp"), "rs(6,3)@exec=interp");
  EXPECT_EQ(canonical_spec("rs(6,3)@exec=lowered"), "rs(6,3)");
  EXPECT_EQ(canonical_spec("rs(6,3)@exec=auto"), "rs(6,3)");
  EXPECT_EQ(canonical_spec("rs(6,3)@isa=avx512"), "rs(6,3)@isa=avx512");
  EXPECT_EQ(canonical_spec("rs(6,3)@isa=neon,exec=interp"), "rs(6,3)@isa=neon,exec=interp");
  EXPECT_THROW(make_codec("rs(6,3)@exec=jit"), std::invalid_argument);
  EXPECT_THROW(make_codec("rs(6,3)@isa=sse2"), std::invalid_argument);
}

TEST(ExecBackendGrammar, ExecInfoReportsResolvedBackend) {
  const auto lowered = make_codec("rs(6,3)");
  EXPECT_EQ(lowered->exec_info().backend, "lowered");
  EXPECT_FALSE(lowered->exec_info().isa.empty());
  EXPECT_NE(lowered->exec_info().isa, "auto");  // resolved, not requested

  const auto interp = make_codec("rs(6,3)@exec=interp");
  EXPECT_EQ(interp->exec_info().backend, "interp");

  // Explicit isa= requests resolve verbatim — unless the process runs under
  // XOREC_FORCE_ISA (the CI force-isa legs), which clamps every resolution.
  const auto scalar = make_codec("rs(6,3)@isa=scalar");
  if (const auto forced = kernel::forced_isa())
    EXPECT_EQ(scalar->exec_info().isa, kernel::isa_name(kernel::kernel_table(*forced).isa));
  else
    EXPECT_EQ(scalar->exec_info().isa, "scalar");
}

TEST(ExecBackendGrammar, FingerprintSeparatesBackends) {
  const slp::PipelineOptions pl;
  runtime::ExecOptions interp, lowered, auto_b;
  interp.backend = runtime::ExecBackend::Interp;
  lowered.backend = runtime::ExecBackend::Lowered;
  auto_b.backend = runtime::ExecBackend::Auto;
  // interp and lowered must never collide in the shared plan cache; auto
  // resolves to lowered and shares its entries.
  EXPECT_NE(ec::PlanCache::fingerprint_config(pl, interp),
            ec::PlanCache::fingerprint_config(pl, lowered));
  EXPECT_EQ(ec::PlanCache::fingerprint_config(pl, auto_b),
            ec::PlanCache::fingerprint_config(pl, lowered));

  runtime::ExecOptions nt = lowered;
  nt.nt_threshold = 64;  // different lowered instruction stream
  EXPECT_NE(ec::PlanCache::fingerprint_config(pl, nt),
            ec::PlanCache::fingerprint_config(pl, lowered));
}

TEST(ExecBackendForceIsa, OverrideClampsEveryResolution) {
  kernel::set_forced_isa_for_testing(kernel::Isa::Scalar);
  struct Restore {
    ~Restore() { kernel::set_forced_isa_for_testing(std::nullopt); }
  } restore;

  EXPECT_EQ(kernel::kernel_table(kernel::Isa::Auto).isa, kernel::Isa::Scalar);
  EXPECT_EQ(kernel::kernel_table(kernel::Isa::Avx2).isa, kernel::Isa::Scalar);

  // A codec built under the override runs (and reports) the forced kernels,
  // and stays byte-identical.
  const auto forced = make_codec("rs(6,3)@isa=avx2");
  EXPECT_EQ(forced->exec_info().isa, "scalar");
  const Stripe st = encoded_stripe(*forced, forced->fragment_multiple() * kOddStrip,
                                   /*seed=*/5);
  kernel::set_forced_isa_for_testing(std::nullopt);
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp");
  const Stripe ref_st = encoded_stripe(*ref, st.frag_len, /*seed=*/5);
  for (size_t f = 0; f < ref->total_fragments(); ++f)
    EXPECT_EQ(st.frags[f], ref_st.frags[f]) << "fragment " << f;
}

TEST(ExecBackendForceIsa, ForcedIsaDegradesToHost) {
  // Forcing an ISA the host cannot run degrades instead of crashing (the CI
  // force matrix relies on this to be host-agnostic).
  kernel::set_forced_isa_for_testing(kernel::Isa::Neon);
  struct Restore {
    ~Restore() { kernel::set_forced_isa_for_testing(std::nullopt); }
  } restore;
  const kernel::KernelTable& kt = kernel::kernel_table(kernel::Isa::Auto);
  if (kernel::cpu_has_neon())
    EXPECT_EQ(kt.isa, kernel::Isa::Neon);
  else
    EXPECT_EQ(kt.isa, kernel::Isa::Word64);
  // And the kernels still compute XOR.
  const uint8_t a[3] = {1, 2, 3}, b[3] = {4, 5, 6};
  uint8_t d[3] = {0, 0, 0};
  const uint8_t* srcs[2] = {a, b};
  kt.many(d, srcs, 2, 3);
  EXPECT_EQ(d[0], 5);
  EXPECT_EQ(d[1], 7);
  EXPECT_EQ(d[2], 5);
}

}  // namespace
}  // namespace xorec
