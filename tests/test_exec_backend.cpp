// Differential suite for the execution-backend layer: every exec= backend x
// isa= kernel family must be byte-identical to the scalar interpreter (and
// to the original payload) across the conformance harness's erasure
// patterns, at strip lengths chosen to stress the kernels' tail paths —
// odd lengths far from any SIMD width, and a short final block.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.hpp"
#include "api/registry.hpp"
#include "conformance/codec_conformance.hpp"
#include "ec/plan_cache.hpp"
#include "ec/rs_codec.hpp"
#include "kernel/xor_kernel.hpp"
#include "runtime/executor.hpp"
#include "runtime/jit_cache.hpp"

namespace xorec {
namespace {

struct Stripe {
  std::vector<std::vector<uint8_t>> frags;  // data then parity, encoded
  size_t frag_len = 0;
};

Stripe encoded_stripe(const Codec& c, size_t frag_len, uint32_t seed) {
  Stripe s;
  s.frag_len = frag_len;
  s.frags.resize(c.total_fragments());
  std::mt19937 rng(seed);
  for (size_t f = 0; f < c.total_fragments(); ++f) s.frags[f].resize(frag_len);
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t f = 0; f < c.data_fragments(); ++f) {
    for (uint8_t& b : s.frags[f]) b = static_cast<uint8_t>(rng());
    data.push_back(s.frags[f].data());
  }
  for (size_t f = c.data_fragments(); f < c.total_fragments(); ++f)
    parity.push_back(s.frags[f].data());
  c.encode(data.data(), parity.data(), frag_len);
  return s;
}

/// Encode + every C(n, <= m) reconstruct of `spec` must be byte-identical
/// to `ref` (the scalar interpreter codec over the same family/geometry).
/// `pattern_cap` > 0 stride-samples the pattern set down to roughly that
/// many entries — used for the exec=jit rows, where every reconstruct plan
/// is a fresh host-compiler invocation; the stride still visits every
/// erasure size because the combination enumeration interleaves them.
void expect_identical(const std::string& spec, const Codec& ref, const Stripe& ref_stripe,
                      size_t max_erased, uint32_t seed, size_t pattern_cap = 0) {
  SCOPED_TRACE(spec);
  const auto codec = make_codec(spec);
  ASSERT_EQ(codec->total_fragments(), ref.total_fragments());

  const Stripe st = encoded_stripe(*codec, ref_stripe.frag_len, seed);
  for (size_t f = 0; f < ref.total_fragments(); ++f)
    ASSERT_EQ(st.frags[f], ref_stripe.frags[f]) << "encode mismatch, fragment " << f;

  auto patterns = conformance::erasure_patterns(codec->total_fragments(), max_erased);
  if (pattern_cap > 0 && patterns.size() > pattern_cap) {
    const size_t stride = (patterns.size() + pattern_cap - 1) / pattern_cap;
    std::vector<std::vector<uint32_t>> sampled;
    for (size_t i = 0; i < patterns.size(); i += stride) sampled.push_back(patterns[i]);
    patterns = std::move(sampled);
  }
  for (const auto& erased : patterns) {
    SCOPED_TRACE(::testing::Message() << "erased n=" << erased.size()
                                      << " first=" << erased.front());
    const auto available = conformance::all_but(*codec, erased);
    std::vector<const uint8_t*> in;
    for (uint32_t id : available) in.push_back(st.frags[id].data());

    std::shared_ptr<const ReconstructPlan> ref_plan, plan;
    try {
      ref_plan = ref.plan_reconstruct(available, erased);
    } catch (const std::invalid_argument&) {
      // Unrecoverable under the reference (non-MDS families): every backend
      // must agree.
      EXPECT_THROW(codec->plan_reconstruct(available, erased), std::invalid_argument);
      continue;
    }
    ASSERT_NO_THROW(plan = codec->plan_reconstruct(available, erased));

    std::vector<std::vector<uint8_t>> rebuilt(erased.size());
    std::vector<uint8_t*> out;
    for (auto& b : rebuilt) {
      b.assign(st.frag_len, 0xCD);  // poison: a skipped write must fail
      out.push_back(b.data());
    }
    plan->execute(in.data(), out.data(), st.frag_len);
    for (size_t e = 0; e < erased.size(); ++e)
      ASSERT_EQ(rebuilt[e], st.frags[erased[e]]) << "fragment " << erased[e];
  }
}

// Strip lengths exercising the kernels' tails. The conformance families use
// small geometries, so a fragment is fragment_multiple() strips; 49-byte
// strips sit below every SIMD width and are no multiple of 8, and block=384
// against 1000-byte strips leaves a 232-byte final block.
constexpr size_t kOddStrip = 49;
constexpr size_t kLongStrip = 1000;

class ExecBackendDifferential : public ::testing::Test {};

TEST(ExecBackendDifferential, RsFullSweepOddStrips) {
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp");
  const size_t frag_len = ref->fragment_multiple() * kOddStrip;
  const Stripe st = encoded_stripe(*ref, frag_len, /*seed=*/1);
  // exec=jit rides along unconditionally: without a host compiler it
  // degrades to lowered, which this sweep covers anyway. Its pattern set is
  // capped (each jit plan is a compiler invocation).
  for (const char* isa : {"scalar", "word64", "avx2", "avx512", "neon", "auto"})
    for (const char* exec : {"interp", "lowered", "jit"})
      expect_identical("rs(6,3)@isa=" + std::string(isa) + ",exec=" + exec, *ref, st,
                       ref->parity_fragments(), /*seed=*/1,
                       std::strcmp(exec, "jit") == 0 ? 12 : 0);
}

TEST(ExecBackendDifferential, RsShortFinalBlock) {
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp,block=384");
  const size_t frag_len = ref->fragment_multiple() * kLongStrip;
  const Stripe st = encoded_stripe(*ref, frag_len, /*seed=*/2);
  for (const char* exec : {"interp", "lowered", "jit"})
    expect_identical("rs(6,3)@block=384,exec=" + std::string(exec), *ref, st,
                     ref->parity_fragments(), /*seed=*/2,
                     std::strcmp(exec, "jit") == 0 ? 12 : 0);
}

TEST(ExecBackendDifferential, OtherFamiliesBestIsaBothBackends) {
  struct Fam {
    const char* spec;
    size_t max_erased;
  };
  for (const Fam& fam : {Fam{"cauchy(5,3)", 3}, Fam{"lrc(6,2,2)", 4}, Fam{"evenodd(4)", 2}}) {
    const std::string base(fam.spec);
    const auto ref = make_codec(base + "@isa=scalar,exec=interp");
    const size_t frag_len = ref->fragment_multiple() * kOddStrip;
    const Stripe st = encoded_stripe(*ref, frag_len, /*seed=*/3);
    for (const char* exec : {"interp", "lowered", "jit"})
      expect_identical(base + "@exec=" + exec, *ref, st, fam.max_erased, /*seed=*/3,
                       std::strcmp(exec, "jit") == 0 ? 12 : 0);
  }
}

TEST(ExecBackendDifferential, NtStoresByteIdentical) {
  // Force the non-temporal path: nt_threshold <= block so every dead-store
  // output streams. The spec grammar deliberately has no nt= knob (it is a
  // tuning constant), so build through the registry-parallel ExecOptions.
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp");
  const size_t frag_len = ref->fragment_multiple() * kLongStrip;
  const Stripe ref_st = encoded_stripe(*ref, frag_len, /*seed=*/4);

  ec::CodecOptions opt;
  opt.exec.backend = runtime::ExecBackend::Lowered;
  opt.exec.nt_threshold = 1;  // every block qualifies
  const ec::RsCodec codec(6, 3, opt);
  const Stripe st = encoded_stripe(codec, frag_len, /*seed=*/4);
  for (size_t f = 0; f < ref->total_fragments(); ++f)
    ASSERT_EQ(st.frags[f], ref_st.frags[f]) << "NT encode mismatch, fragment " << f;

  const std::vector<uint32_t> available{0, 1, 2, 6, 7, 8};
  const std::vector<uint32_t> erased{3, 4, 5};
  std::vector<const uint8_t*> in;
  for (uint32_t id : available) in.push_back(st.frags[id].data());
  std::vector<std::vector<uint8_t>> rebuilt(erased.size());
  std::vector<uint8_t*> out;
  for (auto& b : rebuilt) {
    b.assign(frag_len, 0xCD);
    out.push_back(b.data());
  }
  codec.plan_reconstruct(available, erased)->execute(in.data(), out.data(), frag_len);
  for (size_t e = 0; e < erased.size(); ++e)
    ASSERT_EQ(rebuilt[e], st.frags[erased[e]]) << "NT fragment " << erased[e];
}

TEST(ExecBackendGrammar, SpecKeysRoundTrip) {
  // Canonical form keeps the backend tokens that differ from the default:
  // exec=interp and exec=jit survive, exec=lowered is the default and drops,
  // and exec=auto resolves BY MEASUREMENT to one concrete backend.
  EXPECT_EQ(canonical_spec("rs(6,3)@exec=interp"), "rs(6,3)@exec=interp");
  EXPECT_EQ(canonical_spec("rs(6,3)@exec=lowered"), "rs(6,3)");
  EXPECT_EQ(canonical_spec("rs(6,3)@exec=jit"), "rs(6,3)@exec=jit");
  const std::string resolved = canonical_spec("rs(6,3)@exec=auto");
  EXPECT_TRUE(resolved == "rs(6,3)" || resolved == "rs(6,3)@exec=interp" ||
              resolved == "rs(6,3)@exec=jit")
      << "exec=auto resolved to " << resolved;
  EXPECT_EQ(canonical_spec("rs(6,3)@isa=avx512"), "rs(6,3)@isa=avx512");
  EXPECT_EQ(canonical_spec("rs(6,3)@isa=neon,exec=interp"), "rs(6,3)@isa=neon,exec=interp");
  // exec=jit always constructs: without a host compiler the executor
  // degrades to lowered rather than failing codec creation.
  EXPECT_NO_THROW(make_codec("rs(6,3)@exec=jit"));
  EXPECT_THROW(make_codec("rs(6,3)@exec=bogus"), std::invalid_argument);
  EXPECT_THROW(make_codec("rs(6,3)@isa=sse2"), std::invalid_argument);
}

TEST(ExecBackendGrammar, ExecInfoReportsResolvedBackend) {
  if (runtime::forced_exec_backend())
    GTEST_SKIP() << "XOREC_FORCE_EXEC clamps every resolution";
  const auto lowered = make_codec("rs(6,3)");
  EXPECT_EQ(lowered->exec_info().backend, "lowered");
  EXPECT_FALSE(lowered->exec_info().isa.empty());
  EXPECT_NE(lowered->exec_info().isa, "auto");  // resolved, not requested

  const auto interp = make_codec("rs(6,3)@exec=interp");
  EXPECT_EQ(interp->exec_info().backend, "interp");

  if (runtime::JitCache::available()) {
    const auto jit = make_codec("rs(6,3)@exec=jit");
    EXPECT_EQ(jit->exec_info().backend, "jit");
  }

  // Explicit isa= requests resolve verbatim — unless the process runs under
  // XOREC_FORCE_ISA (the CI force-isa legs), which clamps every resolution.
  const auto scalar = make_codec("rs(6,3)@isa=scalar");
  if (const auto forced = kernel::forced_isa())
    EXPECT_EQ(scalar->exec_info().isa, kernel::isa_name(kernel::kernel_table(*forced).isa));
  else
    EXPECT_EQ(scalar->exec_info().isa, "scalar");
}

TEST(ExecBackendGrammar, FingerprintSeparatesBackends) {
  const slp::PipelineOptions pl;
  runtime::ExecOptions interp, lowered, auto_b;
  interp.backend = runtime::ExecBackend::Interp;
  lowered.backend = runtime::ExecBackend::Lowered;
  auto_b.backend = runtime::ExecBackend::Auto;
  // interp and lowered must never collide in the shared plan cache; auto
  // resolves to lowered and shares its entries.
  EXPECT_NE(ec::PlanCache::fingerprint_config(pl, interp),
            ec::PlanCache::fingerprint_config(pl, lowered));
  EXPECT_EQ(ec::PlanCache::fingerprint_config(pl, auto_b),
            ec::PlanCache::fingerprint_config(pl, lowered));

  runtime::ExecOptions nt = lowered;
  nt.nt_threshold = 64;  // different lowered instruction stream
  EXPECT_NE(ec::PlanCache::fingerprint_config(pl, nt),
            ec::PlanCache::fingerprint_config(pl, lowered));

  // jit is a third distinct resolved backend, never sharing plan entries
  // with interp or lowered.
  runtime::ExecOptions jit_b;
  jit_b.backend = runtime::ExecBackend::Jit;
  EXPECT_NE(ec::PlanCache::fingerprint_config(pl, jit_b),
            ec::PlanCache::fingerprint_config(pl, lowered));
  EXPECT_NE(ec::PlanCache::fingerprint_config(pl, jit_b),
            ec::PlanCache::fingerprint_config(pl, interp));
}

TEST(ExecBackendForceIsa, OverrideClampsEveryResolution) {
  kernel::set_forced_isa_for_testing(kernel::Isa::Scalar);
  struct Restore {
    ~Restore() { kernel::set_forced_isa_for_testing(std::nullopt); }
  } restore;

  EXPECT_EQ(kernel::kernel_table(kernel::Isa::Auto).isa, kernel::Isa::Scalar);
  EXPECT_EQ(kernel::kernel_table(kernel::Isa::Avx2).isa, kernel::Isa::Scalar);

  // A codec built under the override runs (and reports) the forced kernels,
  // and stays byte-identical.
  const auto forced = make_codec("rs(6,3)@isa=avx2");
  EXPECT_EQ(forced->exec_info().isa, "scalar");
  const Stripe st = encoded_stripe(*forced, forced->fragment_multiple() * kOddStrip,
                                   /*seed=*/5);
  kernel::set_forced_isa_for_testing(std::nullopt);
  const auto ref = make_codec("rs(6,3)@isa=scalar,exec=interp");
  const Stripe ref_st = encoded_stripe(*ref, st.frag_len, /*seed=*/5);
  for (size_t f = 0; f < ref->total_fragments(); ++f)
    EXPECT_EQ(st.frags[f], ref_st.frags[f]) << "fragment " << f;
}

// ---- jit artifact-cache concurrency & integrity --------------------------
//
// These tests exercise the cross-process single-compile protocol: N threads
// and multiple processes racing the same content fingerprint must produce
// exactly one compiler invocation, byte-identical outputs, and never observe
// a torn .so. `cache=private` keeps the shared plan cache from handing every
// racer the same already-jitted Executor, so each construction really walks
// the jit cache. Each test gets a fresh artifact dir via XOREC_JIT_CACHE_DIR
// (resolved per call), restored on scope exit.

constexpr char kJitRaceSpec[] = "rs(5,2)@exec=jit,cache=private";

/// Pins the process-wide exec override to real interp for a scope. The jit
/// battery builds "@exec=interp" reference codecs before measuring compile
/// counters; under the CI exec=jit force leg those references would silently
/// resolve to jit and pre-populate the very artifact dir the stats window is
/// about to measure, collapsing every "exactly one compile" delta to zero.
struct InterpRefPin {
  std::optional<runtime::ExecBackend> saved = runtime::forced_exec_backend();
  InterpRefPin() {
    runtime::set_forced_exec_backend_for_testing(runtime::ExecBackend::Interp);
  }
  ~InterpRefPin() { runtime::set_forced_exec_backend_for_testing(saved); }
};

/// Skip rule for the jit battery: no host compiler, or the process is
/// force-clamped to a non-jit backend (the CI force legs other than jit).
bool jit_tests_enabled() {
  if (!runtime::JitCache::available()) return false;
  const auto forced = runtime::forced_exec_backend();
  return !forced || *forced == runtime::ExecBackend::Jit;
}

struct JitDirGuard {
  std::string dir;
  std::string saved;
  bool had = false;

  JitDirGuard() {
    char tmpl[] = "/tmp/xorec_jittest_XXXXXX";
    if (const char* d = mkdtemp(tmpl)) dir = d;
    if (const char* p = std::getenv("XOREC_JIT_CACHE_DIR")) {
      had = true;
      saved = p;
    }
    if (!dir.empty()) setenv("XOREC_JIT_CACHE_DIR", dir.c_str(), 1);
  }
  ~JitDirGuard() {
    if (had)
      setenv("XOREC_JIT_CACHE_DIR", saved.c_str(), 1);
    else
      unsetenv("XOREC_JIT_CACHE_DIR");
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

uint64_t stripe_hash(const Stripe& st) {
  uint64_t h = 1469598103934665603ull;
  for (const auto& f : st.frags)
    for (uint8_t b : f) h = (h ^ b) * 1099511628211ull;
  return h;
}

TEST(JitArtifactCache, ThreadsRaceOneCompile) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());

  Stripe ref_st;
  size_t frag_len = 0, total_frags = 0;
  {
    InterpRefPin pin;
    const auto ref = make_codec("rs(5,2)@exec=interp");
    frag_len = ref->fragment_multiple() * kOddStrip;
    total_frags = ref->total_fragments();
    ref_st = encoded_stripe(*ref, frag_len, /*seed=*/11);
  }

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();

  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<Codec>> codecs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&codecs, t] { codecs[t] = make_codec(kJitRaceSpec); });
  for (auto& th : threads) th.join();

  const auto s1 = runtime::jit_cache_stats();
  EXPECT_EQ(s1.compiles - s0.compiles, 1u) << "racers must collapse onto one compile";
  EXPECT_EQ(s1.fallbacks, s0.fallbacks) << "no racer may silently degrade to lowered";

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(codecs[t]);
    EXPECT_EQ(codecs[t]->exec_info().backend, "jit") << "thread " << t;
    const Stripe st = encoded_stripe(*codecs[t], frag_len, /*seed=*/11);
    for (size_t f = 0; f < total_frags; ++f)
      ASSERT_EQ(st.frags[f], ref_st.frags[f]) << "thread " << t << " fragment " << f;
  }
}

TEST(JitArtifactCache, WarmRebuildLoadsWithoutCompiler) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());

  Stripe ref_st;
  size_t frag_len = 0, total_frags = 0;
  {
    InterpRefPin pin;
    const auto ref = make_codec("rs(5,2)@exec=interp");
    frag_len = ref->fragment_multiple() * kOddStrip;
    total_frags = ref->total_fragments();
    ref_st = encoded_stripe(*ref, frag_len, /*seed=*/12);
  }

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();
  const auto cold = make_codec(kJitRaceSpec);
  const auto s1 = runtime::jit_cache_stats();
  EXPECT_EQ(s1.compiles - s0.compiles, 1u);

  // Drop the in-process memo: the rebuild must take the on-disk artifact
  // path — dlopen only, ZERO compiler invocations (the warmed-process
  // acceptance claim, without the fork).
  jc.clear_memory_cache();
  const auto s2 = runtime::jit_cache_stats();
  const auto warm = make_codec(kJitRaceSpec);
  const auto s3 = runtime::jit_cache_stats();
  EXPECT_EQ(s3.compiles, s2.compiles) << "warm activation must not invoke the compiler";
  EXPECT_GE(s3.artifact_loads - s2.artifact_loads, 1u);
  EXPECT_EQ(warm->exec_info().backend, "jit");

  const Stripe cold_st = encoded_stripe(*cold, frag_len, /*seed=*/12);
  const Stripe warm_st = encoded_stripe(*warm, frag_len, /*seed=*/12);
  for (size_t f = 0; f < total_frags; ++f) {
    ASSERT_EQ(cold_st.frags[f], ref_st.frags[f]) << "cold fragment " << f;
    ASSERT_EQ(warm_st.frags[f], ref_st.frags[f]) << "warm fragment " << f;
  }
}

TEST(JitArtifactCache, CorruptArtifactRejectedAndRebuilt) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());

  Stripe ref_st;
  size_t frag_len = 0, total_frags = 0;
  {
    InterpRefPin pin;
    const auto ref = make_codec("rs(5,2)@exec=interp");
    frag_len = ref->fragment_multiple() * kOddStrip;
    total_frags = ref->total_fragments();
    ref_st = encoded_stripe(*ref, frag_len, /*seed=*/13);
  }

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  { const auto cold = make_codec(kJitRaceSpec); }

  // Replace every artifact in the fresh dir (there is exactly one) with a
  // garbage file, published by rename exactly like a buggy writer that
  // skipped the compile step would. Rename-over (not truncate-in-place)
  // matters: the original inode is still mapped by the codec we just built,
  // and shrinking a live mapping's backing file makes any refault of its
  // pages SIGBUS — that's memory corruption, which no cache protocol can
  // detect; on-disk corruption is what the reject path defends against.
  std::vector<std::filesystem::path> artifacts;
  for (const auto& entry : std::filesystem::directory_iterator(guard.dir))
    if (entry.path().extension() == ".so") artifacts.push_back(entry.path());
  ASSERT_GE(artifacts.size(), 1u);
  for (const auto& so : artifacts) {
    const std::filesystem::path bogus = so.string() + ".bogus";
    std::ofstream(bogus) << "not an ELF";
    std::filesystem::rename(bogus, so);
  }

  jc.clear_memory_cache();
  const auto s2 = runtime::jit_cache_stats();
  const auto rebuilt = make_codec(kJitRaceSpec);
  const auto s3 = runtime::jit_cache_stats();
  EXPECT_GE(s3.rejected - s2.rejected, 1u) << "corrupt artifact must be detected";
  EXPECT_EQ(s3.compiles - s2.compiles, 1u) << "and rebuilt via one fresh compile";
  EXPECT_EQ(rebuilt->exec_info().backend, "jit");

  const Stripe st = encoded_stripe(*rebuilt, frag_len, /*seed=*/13);
  for (size_t f = 0; f < total_frags; ++f)
    ASSERT_EQ(st.frags[f], ref_st.frags[f]) << "fragment " << f;
}

// The artifact dir is a trust boundary (it feeds dlopen): a symlinked dir is
// refused outright, a lax mode on a dir we own is tightened to 0700 before
// use, shell metacharacters in the path are inert (the compiler is spawned
// with an argv vector, not a shell), and an artifact whose baked fingerprint
// symbol disagrees with its filename is rejected before any of it runs.

TEST(JitArtifactCache, SymlinkCacheDirRefused) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());
  const std::string real = guard.dir + "/real";
  const std::string link = guard.dir + "/link";
  std::filesystem::create_directory(real);
  std::filesystem::create_directory_symlink(real, link);
  setenv("XOREC_JIT_CACHE_DIR", link.c_str(), 1);

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();
  const auto codec = make_codec(kJitRaceSpec);
  const auto s1 = runtime::jit_cache_stats();
  EXPECT_EQ(codec->exec_info().backend, "lowered")
      << "a symlinked artifact dir must make jit unavailable";
  EXPECT_GE(s1.fallbacks - s0.fallbacks, 1u);
  EXPECT_EQ(s1.compiles, s0.compiles) << "nothing may be compiled into a symlinked dir";
}

TEST(JitArtifactCache, LaxDirModeTightenedBeforeUse) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());
  namespace fs = std::filesystem;
  fs::permissions(guard.dir, fs::perms::owner_all | fs::perms::group_all |
                                 fs::perms::others_read | fs::perms::others_exec);

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  const auto codec = make_codec(kJitRaceSpec);
  EXPECT_EQ(codec->exec_info().backend, "jit");
  const fs::perms mode = fs::status(guard.dir).permissions();
  EXPECT_EQ(mode & (fs::perms::group_all | fs::perms::others_all), fs::perms::none)
      << "group/other access must be chmod'd away before artifacts are written";
}

TEST(JitArtifactCache, CacheDirWithShellMetacharacters) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());
  // Valid POSIX directory name, lethal if it ever reaches a shell.
  const std::string tricky = guard.dir + "/jit dir;$(echo pwned)&";
  ASSERT_TRUE(std::filesystem::create_directory(tricky));
  setenv("XOREC_JIT_CACHE_DIR", tricky.c_str(), 1);

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();
  const auto codec = make_codec(kJitRaceSpec);
  const auto s1 = runtime::jit_cache_stats();
  EXPECT_EQ(codec->exec_info().backend, "jit")
      << "metacharacter paths must compile cleanly (argv exec, no shell)";
  EXPECT_EQ(s1.compiles - s0.compiles, 1u);
  EXPECT_EQ(s1.fallbacks, s0.fallbacks);
}

TEST(JitArtifactCache, SwappedArtifactRejectedByFingerprint) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());

  Stripe ref_st;
  size_t frag_len = 0, total_frags = 0;
  {
    InterpRefPin pin;
    const auto ref = make_codec("rs(5,2)@exec=interp");
    frag_len = ref->fragment_multiple() * kOddStrip;
    total_frags = ref->total_fragments();
    ref_st = encoded_stripe(*ref, frag_len, /*seed=*/15);
  }

  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  {
    // Two distinct plans -> two artifacts, each a perfectly valid .so.
    const auto a = make_codec(kJitRaceSpec);
    const auto b = make_codec("rs(6,3)@exec=jit,cache=private");
  }
  std::vector<std::filesystem::path> artifacts;
  for (const auto& entry : std::filesystem::directory_iterator(guard.dir))
    if (entry.path().extension() == ".so") artifacts.push_back(entry.path());
  ASSERT_GE(artifacts.size(), 2u);
  // Publish artifact 0's bytes under artifact 1's name (rename, like a real
  // writer): a loadable .so whose baked fingerprint disagrees with the name
  // it was served under.
  const std::filesystem::path clone = artifacts[1].string() + ".clone";
  std::filesystem::copy_file(artifacts[0], clone);
  std::filesystem::rename(clone, artifacts[1]);

  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();
  const auto a = make_codec(kJitRaceSpec);
  const auto b = make_codec("rs(6,3)@exec=jit,cache=private");
  const auto s1 = runtime::jit_cache_stats();
  EXPECT_GE(s1.rejected - s0.rejected, 1u)
      << "the fingerprint symbol must catch a swapped artifact";
  EXPECT_EQ(s1.compiles - s0.compiles, 1u) << "only the swapped artifact recompiles";
  EXPECT_EQ(a->exec_info().backend, "jit");
  EXPECT_EQ(b->exec_info().backend, "jit");

  const Stripe st = encoded_stripe(*a, frag_len, /*seed=*/15);
  for (size_t f = 0; f < total_frags; ++f)
    ASSERT_EQ(st.frags[f], ref_st.frags[f]) << "fragment " << f;
}

// Child-process probe for the cross-process tests: when re-exec'd with
// XOREC_JIT_PROBE_OUT set, builds the race-spec codec against the inherited
// XOREC_JIT_CACHE_DIR and reports "<compiles> <loads> <fallbacks> <hash>".
TEST(JitCacheProbe, CompileAndReport) {
  const char* out_path = std::getenv("XOREC_JIT_PROBE_OUT");
  if (!out_path) GTEST_SKIP() << "probe runs only when re-exec'd by JitArtifactCache";
  ASSERT_TRUE(runtime::JitCache::available());
  const auto codec = make_codec(kJitRaceSpec);
  const size_t frag_len = codec->fragment_multiple() * kOddStrip;
  const Stripe st = encoded_stripe(*codec, frag_len, /*seed=*/14);
  const auto s = runtime::jit_cache_stats();
  std::ofstream(out_path) << s.compiles << " " << s.artifact_loads << " " << s.fallbacks
                          << " " << stripe_hash(st) << "\n";
}

struct ProbeReport {
  size_t compiles = 0, loads = 0, fallbacks = 0;
  uint64_t hash = 0;
  bool ok = false;
};

ProbeReport read_probe(const std::string& path) {
  ProbeReport r;
  std::ifstream in(path);
  r.ok = static_cast<bool>(in >> r.compiles >> r.loads >> r.fallbacks >> r.hash);
  return r;
}

std::string probe_command(const std::string& out_path) {
  const std::string exe = std::filesystem::read_symlink("/proc/self/exe").string();
  return "XOREC_JIT_PROBE_OUT=" + out_path + " '" + exe +
         "' --gtest_filter=JitCacheProbe.CompileAndReport >/dev/null 2>&1";
}

TEST(JitArtifactCache, TwoProcessesRaceOneCompile) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());

  // Expected bytes, computed in-process against the interpreter.
  uint64_t ref_hash = 0;
  {
    InterpRefPin pin;
    const auto ref = make_codec("rs(5,2)@exec=interp");
    ref_hash =
        stripe_hash(encoded_stripe(*ref, ref->fragment_multiple() * kOddStrip, /*seed=*/14));
  }

  const std::string f1 = guard.dir + "/probe1.txt", f2 = guard.dir + "/probe2.txt";
  // Two fresh processes race the same fingerprint concurrently; the .lock
  // flock serializes the build, the loser dlopens the winner's artifact.
  const std::string cmd = probe_command(f1) + " & " + probe_command(f2) + " & wait";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  const ProbeReport r1 = read_probe(f1), r2 = read_probe(f2);
  ASSERT_TRUE(r1.ok) << "probe 1 wrote no report";
  ASSERT_TRUE(r2.ok) << "probe 2 wrote no report";
  EXPECT_EQ(r1.compiles + r2.compiles, 1u)
      << "exactly one process may invoke the compiler";
  EXPECT_EQ(r1.fallbacks + r2.fallbacks, 0u);
  EXPECT_EQ(r1.hash, ref_hash) << "process 1 output diverged";
  EXPECT_EQ(r2.hash, ref_hash) << "process 2 output diverged";
}

TEST(JitArtifactCache, SecondProcessZeroCompiles) {
  if (!jit_tests_enabled()) GTEST_SKIP() << "jit unavailable or force-clamped away";
  JitDirGuard guard;
  ASSERT_FALSE(guard.dir.empty());

  // This process populates the artifact cache...
  auto& jc = runtime::JitCache::instance();
  jc.clear_memory_cache();
  const auto s0 = runtime::jit_cache_stats();
  const auto cold = make_codec(kJitRaceSpec);
  const auto s1 = runtime::jit_cache_stats();
  ASSERT_EQ(s1.compiles - s0.compiles, 1u);
  const uint64_t ref_hash =
      stripe_hash(encoded_stripe(*cold, cold->fragment_multiple() * kOddStrip, /*seed=*/14));

  // ...and a second process against the populated cache must perform ZERO
  // compiler invocations: pure dlopen activation.
  const std::string f = guard.dir + "/probe_warm.txt";
  ASSERT_EQ(std::system(probe_command(f).c_str()), 0);
  const ProbeReport r = read_probe(f);
  ASSERT_TRUE(r.ok) << "warm probe wrote no report";
  EXPECT_EQ(r.compiles, 0u) << "warmed process must not invoke the compiler";
  EXPECT_GE(r.loads, 1u);
  EXPECT_EQ(r.fallbacks, 0u);
  EXPECT_EQ(r.hash, ref_hash) << "warm-process output diverged";
}

TEST(ExecBackendForceIsa, ForcedIsaDegradesToHost) {
  // Forcing an ISA the host cannot run degrades instead of crashing (the CI
  // force matrix relies on this to be host-agnostic).
  kernel::set_forced_isa_for_testing(kernel::Isa::Neon);
  struct Restore {
    ~Restore() { kernel::set_forced_isa_for_testing(std::nullopt); }
  } restore;
  const kernel::KernelTable& kt = kernel::kernel_table(kernel::Isa::Auto);
  if (kernel::cpu_has_neon())
    EXPECT_EQ(kt.isa, kernel::Isa::Neon);
  else
    EXPECT_EQ(kt.isa, kernel::Isa::Word64);
  // And the kernels still compute XOR.
  const uint8_t a[3] = {1, 2, 3}, b[3] = {4, 5, 6};
  uint8_t d[3] = {0, 0, 0};
  const uint8_t* srcs[2] = {a, b};
  kt.many(d, srcs, 2, 3);
  EXPECT_EQ(d[0], 5);
  EXPECT_EQ(d[1], 7);
  EXPECT_EQ(d[2], 5);
}

}  // namespace
}  // namespace xorec
