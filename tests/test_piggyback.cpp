// The piggyback(k,m,sub) family: layout arithmetic, encode semantics (clean
// base RS on every substripe except the piggybacked last-substripe
// parities), MDS round-trips, the reduced-read single-block repair plan,
// and registry integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "altcodes/piggyback.hpp"
#include "api/xorec.hpp"
#include "conformance/codec_conformance.hpp"
#include "slp/pipeline.hpp"

using namespace xorec;
using altcodes::PiggybackLayout;
using conformance::Stripe;
using conformance::all_but;
using conformance::encoded_stripe;
using conformance::plan_touched_input_strips;

namespace {

void expect_reconstructs(const Codec& codec, const Stripe& c,
                         std::vector<uint32_t> available, std::vector<uint32_t> erased) {
  std::sort(available.begin(), available.end());
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(c.frags[id].data());
  std::vector<std::vector<uint8_t>> out(erased.size(),
                                        std::vector<uint8_t>(c.frag_len, 0xCD));
  std::vector<uint8_t*> out_ptrs;
  for (auto& o : out) out_ptrs.push_back(o.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, out_ptrs.data(), c.frag_len);
  for (size_t i = 0; i < erased.size(); ++i)
    ASSERT_EQ(out[i], c.frags[erased[i]]) << "fragment " << erased[i];
}

}  // namespace

TEST(Piggyback, LayoutArithmetic) {
  const PiggybackLayout l(6, 3, 2);  // 2 carrier groups of 3 blocks
  EXPECT_EQ(l.strips_per_block(), 16u);
  EXPECT_EQ(l.group_of(0), 0u);
  EXPECT_EQ(l.group_of(2), 0u);
  EXPECT_EQ(l.group_of(3), 1u);
  EXPECT_EQ(l.group_of(5), 1u);
  EXPECT_EQ(l.carrier_parity(0, 0), 1u);
  EXPECT_EQ(l.carrier_parity(3, 0), 2u);
  // Every carried symbol lands on exactly one carrier, and a block's
  // substripe symbols land on DISTINCT carriers (sub-1 <= m-1).
  const PiggybackLayout l3(10, 4, 3);
  std::set<std::pair<size_t, size_t>> seen;
  for (size_t p = 1; p < l3.m; ++p)
    for (const auto& sym : l3.carried_by(p)) EXPECT_TRUE(seen.insert(sym).second);
  EXPECT_EQ(seen.size(), l3.k * (l3.sub - 1));
  for (size_t b = 0; b < l3.k; ++b) {
    std::set<size_t> carriers;
    for (size_t s = 0; s + 1 < l3.sub; ++s)
      EXPECT_TRUE(carriers.insert(l3.carrier_parity(b, s)).second);
  }

  EXPECT_THROW(PiggybackLayout(0, 3, 2), std::invalid_argument);
  EXPECT_THROW(PiggybackLayout(6, 1, 2), std::invalid_argument);  // m < 2
  EXPECT_THROW(PiggybackLayout(6, 3, 1), std::invalid_argument);  // sub < 2
  EXPECT_THROW(PiggybackLayout(6, 3, 4), std::invalid_argument);  // sub > m
  EXPECT_THROW(PiggybackLayout(200, 60, 2), std::invalid_argument);  // k+m > 255
}

TEST(Piggyback, GeometryAndSpecValidation) {
  const auto spec = altcodes::piggyback_spec(6, 3, 2);
  EXPECT_EQ(spec.name, "piggyback(6,3,2)");
  EXPECT_EQ(spec.data_blocks, 6u);
  EXPECT_EQ(spec.parity_blocks, 3u);
  EXPECT_EQ(spec.strips_per_block, 16u);  // 8 * sub
  EXPECT_NO_THROW(altcodes::piggyback_spec(3, 4, 4));
  EXPECT_THROW(altcodes::piggyback_spec(6, 3, 5), std::invalid_argument);
}

TEST(Piggyback, FirstSubstripesAreCleanRs) {
  // Substripes 0..sub-2 of every parity — and the last substripe of parity
  // 0 — are the plain per-substripe Cauchy RS: encoding the same payload
  // through cauchy(k,m) per substripe must reproduce those bytes.
  const size_t k = 5, m = 3, sub = 2;
  const auto pb = make_codec("piggyback(5,3,2)");
  const auto rs = make_codec("cauchy(5,3)");
  const Stripe c = encoded_stripe(*pb, 0xFEED, 1);  // frag_len = 16, 8 per substripe
  const size_t half = c.frag_len / sub;

  std::vector<std::vector<uint8_t>> sub0(k, std::vector<uint8_t>(half));
  std::vector<const uint8_t*> data;
  for (size_t i = 0; i < k; ++i) {
    std::copy(c.frags[i].begin(), c.frags[i].begin() + half, sub0[i].begin());
    data.push_back(sub0[i].data());
  }
  std::vector<std::vector<uint8_t>> par(m, std::vector<uint8_t>(half));
  std::vector<uint8_t*> parity;
  for (auto& p : par) parity.push_back(p.data());
  rs->encode(data.data(), parity.data(), half);
  for (size_t p = 0; p < m; ++p)
    EXPECT_TRUE(std::equal(par[p].begin(), par[p].end(), c.frags[k + p].begin()))
        << "substripe 0 of parity " << p << " is not clean RS";

  // Parity 0's LAST substripe is clean too (it carries no piggybacks).
  std::vector<std::vector<uint8_t>> sub1(k, std::vector<uint8_t>(half));
  data.clear();
  for (size_t i = 0; i < k; ++i) {
    std::copy(c.frags[i].begin() + half, c.frags[i].end(), sub1[i].begin());
    data.push_back(sub1[i].data());
  }
  rs->encode(data.data(), parity.data(), half);
  EXPECT_TRUE(std::equal(par[0].begin(), par[0].end(), c.frags[k].begin() + half));
  // And parity 1's last substripe is NOT clean — the piggyback is real.
  EXPECT_FALSE(std::equal(par[1].begin(), par[1].end(), c.frags[k + 1].begin() + half));
}

TEST(Piggyback, MdsRoundTrips) {
  const auto codec = make_codec("piggyback(6,3,2)");
  const Stripe c = encoded_stripe(*codec, 0xBEEF);
  const uint32_t n = static_cast<uint32_t>(codec->total_fragments());
  for (std::vector<uint32_t> erased :
       {std::vector<uint32_t>{0}, {5}, {6}, {8}, {0, 3}, {0, 6}, {7, 8},
        {0, 1, 2}, {3, 6, 8}, {6, 7, 8}}) {
    std::vector<uint32_t> available;
    for (uint32_t id = 0; id < n; ++id)
      if (std::find(erased.begin(), erased.end(), id) == erased.end())
        available.push_back(id);
    expect_reconstructs(*codec, c, available, erased);
  }
}

TEST(Piggyback, SingleBlockRepairReadsReducedStripSet) {
  const auto codec = make_codec("piggyback(6,3,2)");
  const size_t k = 6, w = codec->fragment_multiple();
  for (uint32_t b = 0; b < k; ++b) {
    std::vector<uint32_t> available;
    for (uint32_t id = 0; id < codec->total_fragments(); ++id)
      if (id != b) available.push_back(id);
    const auto plan = codec->plan_reconstruct(available, {b});
    const auto designed = altcodes::piggyback_repair_reads(6, 3, 2, b);
    const size_t touched = plan_touched_input_strips(*plan);
    EXPECT_LE(touched, designed.size());
    EXPECT_LT(touched, k * w) << "repair plan reads as much as plain RS";
  }
  // And the reduced plan still reconstructs correctly (checked vs truth).
  const Stripe c = encoded_stripe(*codec, 0xACE5);
  for (uint32_t b : {0u, 2u, 5u}) {
    std::vector<uint32_t> available;
    for (uint32_t id = 0; id < codec->total_fragments(); ++id)
      if (id != b) available.push_back(id);
    expect_reconstructs(*codec, c, available, {b});
  }
}

TEST(Piggyback, RepairReadSetShrinksAgainstNaive) {
  // The design bound itself: reads < sub*k sub-symbols whenever there is
  // more than one carrier (m >= 3); equal for m == 2 (documented no-win).
  EXPECT_LT(altcodes::piggyback_repair_reads(6, 3, 2, 0).size(), 6u * 16u);
  EXPECT_LT(altcodes::piggyback_repair_reads(10, 4, 3, 4).size(), 10u * 24u);
  EXPECT_EQ(altcodes::piggyback_repair_reads(8, 2, 2, 0).size(), 8u * 16u);
  EXPECT_THROW(altcodes::piggyback_repair_reads(6, 3, 2, 6), std::invalid_argument);
}

TEST(Piggyback, FallsBackToFullSolveWhenReadSetUnavailable) {
  // Knock out a fragment the designed read set needs (parity 0): the repair
  // must still succeed through the generic full solve.
  const auto codec = make_codec("piggyback(6,3,2)");
  const Stripe c = encoded_stripe(*codec, 0x50FA);
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec->total_fragments(); ++id)
    if (id != 0 && id != 6) available.push_back(id);  // lose data 0 AND parity 0
  expect_reconstructs(*codec, c, available, {0});
}

TEST(Piggyback, ReducedReadStrategyHasItsOwnCacheIdentity) {
  // A bare XorCodec over the same bitmatrix derives full-read programs; the
  // two must never share plan-cache entries for the same pattern key.
  const altcodes::PiggybackCodec pb(6, 3, 2);
  const altcodes::XorCodec plain(altcodes::piggyback_spec(6, 3, 2));
  const auto pb_fp = pb.plan_footprint();
  const auto plain_fp = plain.plan_footprint();
  EXPECT_EQ(pb_fp.matrix_fp, plain_fp.matrix_fp) << "same bitmatrix";
  EXPECT_NE(pb_fp.config_fp, plain_fp.config_fp) << "different plan derivation";

  // Order-independence of the reduced-read guarantee: even with the plain
  // codec planning the same pattern FIRST on the shared cache, the
  // piggyback plan still touches only the designed read set.
  std::vector<uint32_t> available;
  for (uint32_t id = 1; id < pb.total_fragments(); ++id) available.push_back(id);
  (void)plain.plan_reconstruct(available, {0});
  const auto plan = pb.plan_reconstruct(available, {0});
  EXPECT_LE(plan_touched_input_strips(*plan),
            altcodes::piggyback_repair_reads(6, 3, 2, 0).size());
}

TEST(Piggyback, RegistryIntegration) {
  const auto families = registered_families();
  EXPECT_NE(std::find(families.begin(), families.end(), "piggyback"), families.end());

  const auto codec = make_codec("piggyback(10,4)");  // sub defaults to 2
  EXPECT_EQ(codec->name(), "piggyback(10,4,2)");
  EXPECT_EQ(codec->data_fragments(), 10u);
  EXPECT_EQ(codec->parity_fragments(), 4u);
  EXPECT_EQ(codec->fragment_multiple(), 16u);
  EXPECT_NO_THROW((void)make_codec(codec->name()));
  EXPECT_EQ(canonical_spec("piggyback(10,4)"), "piggyback(10,4,2)");

  EXPECT_THROW((void)make_codec("piggyback(6,3,9)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("piggyback(129,3,2)"), std::invalid_argument);
}
