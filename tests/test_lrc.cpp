// The lrc(k,l,g) locality-group family: grouping arithmetic, encode
// semantics (local parities are group XORs), reconstruct-one-from-GROUP
// (the locality win: ~k/l reads instead of k), global-parity repair, and
// registry integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "altcodes/lrc.hpp"
#include "api/xorec.hpp"

using namespace xorec;
using altcodes::lrc_group_of;
using altcodes::LrcGroup;

namespace {

struct Cluster {
  std::vector<std::vector<uint8_t>> frags;
  size_t frag_len = 0;
};

Cluster encoded_cluster(const Codec& codec, uint32_t seed, size_t mult = 16) {
  Cluster c;
  c.frag_len = codec.fragment_multiple() * mult;
  c.frags.assign(codec.total_fragments(), std::vector<uint8_t>(c.frag_len));
  std::mt19937 rng(seed);
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < codec.data_fragments(); ++i) {
    for (auto& b : c.frags[i]) b = static_cast<uint8_t>(rng());
    data.push_back(c.frags[i].data());
  }
  for (size_t i = codec.data_fragments(); i < codec.total_fragments(); ++i)
    parity.push_back(c.frags[i].data());
  codec.encode(data.data(), parity.data(), c.frag_len);
  return c;
}

/// Reconstruct `erased` from exactly `available`, byte-compare to truth.
void expect_reconstructs(const Codec& codec, const Cluster& c,
                         std::vector<uint32_t> available, std::vector<uint32_t> erased) {
  std::sort(available.begin(), available.end());
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(c.frags[id].data());
  std::vector<std::vector<uint8_t>> out(erased.size(),
                                        std::vector<uint8_t>(c.frag_len, 0xCD));
  std::vector<uint8_t*> out_ptrs;
  for (auto& o : out) out_ptrs.push_back(o.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, out_ptrs.data(), c.frag_len);
  for (size_t i = 0; i < erased.size(); ++i)
    ASSERT_EQ(out[i], c.frags[erased[i]]) << "fragment " << erased[i];
}

}  // namespace

TEST(Lrc, GroupArithmetic) {
  // k=10, l=3: group sizes 4, 3, 3 (first k%l groups get the extra member).
  EXPECT_EQ(lrc_group_of(10, 3, 0).first, 0u);
  EXPECT_EQ(lrc_group_of(10, 3, 0).count, 4u);
  EXPECT_EQ(lrc_group_of(10, 3, 3).local_parity, 10u);
  EXPECT_EQ(lrc_group_of(10, 3, 4).first, 4u);
  EXPECT_EQ(lrc_group_of(10, 3, 4).count, 3u);
  EXPECT_EQ(lrc_group_of(10, 3, 6).local_parity, 11u);
  EXPECT_EQ(lrc_group_of(10, 3, 7).first, 7u);
  EXPECT_EQ(lrc_group_of(10, 3, 9).local_parity, 12u);
  EXPECT_THROW(lrc_group_of(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(lrc_group_of(10, 11, 0), std::invalid_argument);
  EXPECT_THROW(lrc_group_of(10, 3, 10), std::invalid_argument);
}

TEST(Lrc, GeometryAndSpecValidation) {
  const auto spec = altcodes::lrc_spec(6, 2, 2);
  EXPECT_EQ(spec.name, "lrc(6,2,2)");
  EXPECT_EQ(spec.data_blocks, 6u);
  EXPECT_EQ(spec.parity_blocks, 4u);  // 2 locals + 2 globals
  EXPECT_EQ(spec.strips_per_block, 8u);

  EXPECT_THROW(altcodes::lrc_spec(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(altcodes::lrc_spec(6, 0, 1), std::invalid_argument);
  EXPECT_THROW(altcodes::lrc_spec(6, 7, 1), std::invalid_argument);
  EXPECT_THROW(altcodes::lrc_spec(200, 2, 60), std::invalid_argument);  // k+g > 255
  EXPECT_NO_THROW(altcodes::lrc_spec(4, 2, 0));  // locals only is legal
}

TEST(Lrc, LocalParityIsTheGroupXor) {
  const auto codec = make_codec("lrc(7,2,2)");
  const auto c = encoded_cluster(*codec, 0xF00D);
  const size_t k = codec->data_fragments();
  for (uint32_t b = 0; b < k; ++b) {
    const LrcGroup g = lrc_group_of(7, 2, b);
    std::vector<uint8_t> expected(c.frag_len, 0);
    for (size_t m = g.first; m < g.first + g.count; ++m)
      for (size_t i = 0; i < c.frag_len; ++i) expected[i] ^= c.frags[m][i];
    ASSERT_EQ(c.frags[g.local_parity], expected) << "group of block " << b;
  }
}

TEST(Lrc, ReconstructsOneBlockFromItsGroupAlone) {
  // The locality property: a single lost data block needs only its group
  // members + the group's local parity — far fewer than k survivors.
  const auto codec = make_codec("lrc(9,3,2)");
  const auto c = encoded_cluster(*codec, 0xBEEF);
  for (uint32_t lost : {0u, 4u, 8u}) {
    const LrcGroup g = lrc_group_of(9, 3, lost);
    std::vector<uint32_t> group_survivors;
    for (uint32_t m = g.first; m < g.first + g.count; ++m)
      if (m != lost) group_survivors.push_back(m);
    group_survivors.push_back(static_cast<uint32_t>(g.local_parity));
    ASSERT_LT(group_survivors.size(), codec->data_fragments());
    expect_reconstructs(*codec, c, group_survivors, {lost});
  }
}

TEST(Lrc, RebuildsLocalParityFromItsGroup) {
  const auto codec = make_codec("lrc(6,2,2)");
  const auto c = encoded_cluster(*codec, 0xCAFE);
  const LrcGroup g = lrc_group_of(6, 2, 0);
  std::vector<uint32_t> members;
  for (uint32_t m = g.first; m < g.first + g.count; ++m) members.push_back(m);
  expect_reconstructs(*codec, c, members, {static_cast<uint32_t>(g.local_parity)});
}

TEST(Lrc, GlobalParitiesCoverMultiErasureInOneGroup) {
  // Two losses in ONE group exceed the local parity; the Cauchy globals
  // (all other fragments available) cover it.
  const auto codec = make_codec("lrc(6,2,2)");
  const auto c = encoded_cluster(*codec, 0xD00D);
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < codec->total_fragments(); ++id)
    if (id != 0 && id != 1) available.push_back(id);
  expect_reconstructs(*codec, c, available, {0, 1});
}

TEST(Lrc, RebuildsGlobalAndMixedErasures) {
  const auto codec = make_codec("lrc(6,2,2)");
  const auto c = encoded_cluster(*codec, 0xABBA);
  const uint32_t global0 = 6 + 2;  // first global parity id
  // Lost global parity alone.
  {
    std::vector<uint32_t> available;
    for (uint32_t id = 0; id < codec->total_fragments(); ++id)
      if (id != global0) available.push_back(id);
    expect_reconstructs(*codec, c, available, {global0});
  }
  // Data + local + global lost together.
  {
    const std::vector<uint32_t> erased{1, 6, global0};
    std::vector<uint32_t> available;
    for (uint32_t id = 0; id < codec->total_fragments(); ++id)
      if (std::find(erased.begin(), erased.end(), id) == erased.end())
        available.push_back(id);
    expect_reconstructs(*codec, c, available, erased);
  }
}

TEST(Lrc, GroupAloneCannotCoverTwoGroupLosses) {
  const auto codec = make_codec("lrc(6,2,2)");
  const auto c = encoded_cluster(*codec, 0x1CED);
  // Only the damaged group survives (member 2 + local parity 6): blocks 0, 1
  // are not recoverable from it — the F2 solver must say so.
  const std::vector<uint32_t> available{2, 6};
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(c.frags[id].data());
  std::vector<std::vector<uint8_t>> out(2, std::vector<uint8_t>(c.frag_len));
  std::vector<uint8_t*> out_ptrs{out[0].data(), out[1].data()};
  EXPECT_THROW(
      codec->reconstruct(available, avail_ptrs.data(), {0, 1}, out_ptrs.data(), c.frag_len),
      std::invalid_argument);
}

TEST(Lrc, RegistryIntegration) {
  const auto families = registered_families();
  EXPECT_NE(std::find(families.begin(), families.end(), "lrc"), families.end());

  const auto codec = make_codec("lrc(6,2,2)");
  EXPECT_EQ(codec->data_fragments(), 6u);
  EXPECT_EQ(codec->parity_fragments(), 4u);
  EXPECT_EQ(codec->name(), "lrc(6,2,2)");
  EXPECT_NO_THROW(make_codec(codec->name()));  // names round-trip

  EXPECT_THROW(make_codec("lrc(6,2)"), std::invalid_argument);    // arity is 3
  EXPECT_THROW(make_codec("lrc(6,0,2)"), std::invalid_argument);
  EXPECT_THROW(make_codec("lrc(6,7,2)"), std::invalid_argument);
  EXPECT_THROW(make_codec("lrc(200,2,60)"), std::invalid_argument);
  EXPECT_THROW(make_codec("lrc(6,2,2)@matrix=cauchy"), std::invalid_argument);
  EXPECT_THROW(make_codec("lrc(129,3,2)"), std::invalid_argument);  // registry cap
}
