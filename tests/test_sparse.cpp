// The sparse(k,m,d,seed) family: seed determinism, density shaping, the
// rank-check certificate (best-certified draw, MDS at near-full density,
// partial tolerance at genuinely sparse density), round-trips at the
// certified tolerance, and registry integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "altcodes/sparse.hpp"
#include "api/xorec.hpp"
#include "conformance/codec_conformance.hpp"

using namespace xorec;
using conformance::Stripe;
using conformance::all_but;
using conformance::encoded_stripe;

namespace {

void expect_reconstructs(const Codec& codec, const Stripe& c,
                         const std::vector<uint32_t>& erased) {
  const std::vector<uint32_t> available = all_but(codec, erased);
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id : available) avail_ptrs.push_back(c.frags[id].data());
  std::vector<std::vector<uint8_t>> out(erased.size(),
                                        std::vector<uint8_t>(c.frag_len, 0xCD));
  std::vector<uint8_t*> out_ptrs;
  for (auto& o : out) out_ptrs.push_back(o.data());
  codec.reconstruct(available, avail_ptrs.data(), erased, out_ptrs.data(), c.frag_len);
  for (size_t i = 0; i < erased.size(); ++i)
    ASSERT_EQ(out[i], c.frags[erased[i]]) << "fragment " << erased[i];
}

}  // namespace

TEST(Sparse, DeterministicFromSeed) {
  const auto a = altcodes::sparse_spec(6, 3, 45, 7);
  const auto b = altcodes::sparse_spec(6, 3, 45, 7);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.name, "sparse(6,3,45,7)");
  // A different seed (or density) draws a different matrix.
  EXPECT_NE(a.code, altcodes::sparse_spec(6, 3, 45, 8).code);
  EXPECT_NE(a.code, altcodes::sparse_spec(6, 3, 60, 7).code);
  // Identical instances share one plan-cache identity end to end.
  const auto c1 = make_codec("sparse(6,3,45,7)");
  const auto c2 = make_codec("sparse(6,3,45,7)");
  EXPECT_EQ(c1->plan_footprint().matrix_fp, c2->plan_footprint().matrix_fp);
}

TEST(Sparse, DensityShapesTheParityRows) {
  // Bit density of the parity side grows with d (companions are ~half
  // ones, so block density d maps to roughly d/2 bit density).
  const auto lo = altcodes::sparse_spec(10, 3, 20, 1);
  const auto hi = altcodes::sparse_spec(10, 3, 95, 1);
  const size_t kw = 10 * 8;
  size_t lo_ones = 0, hi_ones = 0;
  for (size_t r = kw; r < lo.code.rows(); ++r) lo_ones += lo.code.row(r).popcount();
  for (size_t r = kw; r < hi.code.rows(); ++r) hi_ones += hi.code.row(r).popcount();
  EXPECT_LT(lo_ones * 2, hi_ones) << "low-density draw is not actually sparser";
}

TEST(Sparse, CertificateMatchesDensityRegime) {
  // Near-full density: rejection finds a true MDS draw (t* == m). A
  // genuinely sparse draw certifies less but never 0 (single-block repair
  // is the acceptance bar).
  EXPECT_TRUE(altcodes::sparse_mds_checked(6, 3));
  EXPECT_EQ(altcodes::sparse_certified_tolerance(6, 3, 90, 1), 3u);
  const size_t t_sparse = altcodes::sparse_certified_tolerance(8, 3, 45, 1);
  EXPECT_GE(t_sparse, 1u);
  EXPECT_LE(t_sparse, 3u);
  // Huge shapes skip the certificate entirely.
  EXPECT_FALSE(altcodes::sparse_mds_checked(100, 28));
  EXPECT_EQ(altcodes::sparse_certified_tolerance(100, 28, 50, 1), 0u);
}

TEST(Sparse, RoundTripsAtCertifiedTolerance) {
  for (const char* spec : {"sparse(6,3,90,1)", "sparse(8,3,45,1)"}) {
    SCOPED_TRACE(spec);
    const auto codec = make_codec(spec);
    const auto args = parse_spec(spec).args;
    const size_t t = altcodes::sparse_certified_tolerance(args[0], args[1], args[2],
                                                          args[3]);
    ASSERT_GE(t, 1u);
    const Stripe c = encoded_stripe(*codec, 0x5EED);
    const uint32_t n = static_cast<uint32_t>(codec->total_fragments());
    // Every single erasure, plus a sweep of size-t patterns.
    for (uint32_t id = 0; id < n; ++id) expect_reconstructs(*codec, c, {id});
    if (t >= 2) {
      for (uint32_t a = 0; a < n; ++a)
        for (uint32_t b = a + 1; b < n && t >= 2; ++b)
          expect_reconstructs(*codec, c, {a, b});
    }
    if (t >= 3) expect_reconstructs(*codec, c, {0, 4, n - 1});
  }
}

TEST(Sparse, EvenMinimalDensityCertifiesSingleBlockRepair) {
  // The draw repair forces every data block under at least one nonzero
  // GF(2^8) coefficient (invertible companion), so even a d=1 draw must
  // certify t >= 1 — the floor any storage code needs.
  EXPECT_GE(altcodes::sparse_certified_tolerance(12, 1, 1, 1), 1u);
  EXPECT_GE(altcodes::sparse_certified_tolerance(8, 3, 5, 2), 1u);
  const auto codec = make_codec("sparse(8,3,5,2)");
  const Stripe c = encoded_stripe(*codec, 0x10D);
  for (uint32_t id = 0; id < codec->total_fragments(); ++id)
    expect_reconstructs(*codec, c, {id});
}

TEST(Sparse, RegistryIntegration) {
  const auto families = registered_families();
  EXPECT_NE(std::find(families.begin(), families.end(), "sparse"), families.end());

  const auto codec = make_codec("sparse(8,3,45)");  // seed defaults to 1
  EXPECT_EQ(codec->name(), "sparse(8,3,45,1)");
  EXPECT_EQ(codec->data_fragments(), 8u);
  EXPECT_EQ(codec->parity_fragments(), 3u);
  EXPECT_EQ(codec->fragment_multiple(), 8u);
  EXPECT_NO_THROW((void)make_codec(codec->name()));
  EXPECT_EQ(canonical_spec("sparse(8,3,45)"), "sparse(8,3,45,1)");

  EXPECT_THROW((void)make_codec("sparse(6,3,0,1)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(6,3,101,1)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(129,3,50,1)"), std::invalid_argument);
  EXPECT_THROW((void)make_codec("sparse(6,3,50,1)@matrix=isal"), std::invalid_argument);
}
