// The cluster repair subsystem: topology id math, placement determinism,
// failure-storm determinism, and the repair orchestrator end to end — the
// XORing-Elephants assertions (lrc/piggyback move fewer cross-rack bytes
// than rs on the SAME failure trace), scheduler ordering (lowest remaining
// redundancy first), bandwidth throttling, and byte-identical reports under
// a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "api/service.hpp"
#include "cluster/failure.hpp"
#include "cluster/placement.hpp"
#include "cluster/repair.hpp"
#include "cluster/topology.hpp"

using namespace xorec;
using namespace xorec::cluster;

// ---- topology --------------------------------------------------------------

TEST(ClusterTopology, IdMathIsHierarchical) {
  const Topology topo(4, 3, 2);  // 4 racks x 3 nodes x 2 disks
  EXPECT_EQ(topo.node_count(), 12u);
  EXPECT_EQ(topo.disk_count(), 24u);
  EXPECT_EQ(topo.node_of_disk(0), 0u);
  EXPECT_EQ(topo.node_of_disk(5), 2u);
  EXPECT_EQ(topo.rack_of_node(2), 0u);
  EXPECT_EQ(topo.rack_of_node(3), 1u);
  EXPECT_EQ(topo.rack_of_disk(23), 3u);
  EXPECT_EQ(topo.first_disk_of_node(2), 4u);
  EXPECT_EQ(topo.first_node_of_rack(2), 6u);
  EXPECT_THROW(Topology(0, 1, 1), std::invalid_argument);
}

TEST(ClusterTopology, HealthMapAccumulatesFailures) {
  const Topology topo(2, 2, 2);  // 8 disks
  HealthMap health(topo);
  EXPECT_EQ(health.healthy_disks(), 8u);
  EXPECT_EQ(health.fail_disk(3), 1u);
  EXPECT_EQ(health.fail_disk(3), 0u);  // idempotent
  EXPECT_FALSE(health.disk_ok(3));
  EXPECT_TRUE(health.node_ok(1));  // disk 2 still alive
  EXPECT_EQ(health.fail_node(1), 1u);  // only disk 2 newly fails
  EXPECT_FALSE(health.node_ok(1));
  EXPECT_EQ(health.fail_rack(0), 2u);  // disks 0,1 (2,3 already dead)
  EXPECT_EQ(health.failed_disks(), 4u);
  EXPECT_THROW(health.fail_disk(99), std::out_of_range);
}

TEST(ClusterTopology, HealthMapRestoresDevices) {
  const Topology topo(2, 2, 2);  // 8 disks
  HealthMap health(topo);
  health.fail_rack(0);  // disks 0..3
  EXPECT_EQ(health.failed_disks(), 4u);

  EXPECT_EQ(health.restore_disk(0), 1u);
  EXPECT_EQ(health.restore_disk(0), 0u);  // idempotent
  EXPECT_TRUE(health.disk_ok(0));
  EXPECT_EQ(health.restore_node(1), 2u);  // disks 2,3 come back
  EXPECT_EQ(health.restore_rack(0), 1u);  // only disk 1 was still down
  EXPECT_EQ(health.failed_disks(), 0u);
  EXPECT_THROW(health.restore_disk(99), std::out_of_range);
}

// ---- placement -------------------------------------------------------------

TEST(ClusterPlacement, EveryPolicyUsesDistinctNodesPerStripe) {
  const Topology topo(4, 4, 2);
  for (PlacementPolicy policy :
       {PlacementPolicy::RoundRobin, PlacementPolicy::RackAware, PlacementPolicy::Random}) {
    PlacementRegistry reg(topo, 6, policy, 42);
    reg.add_stripes(20);
    for (size_t s = 0; s < reg.stripe_count(); ++s) {
      std::set<uint32_t> nodes;
      for (uint32_t i = 0; i < 6; ++i) nodes.insert(reg.node_of(s, i));
      EXPECT_EQ(nodes.size(), 6u) << policy_name(policy) << " stripe " << s;
    }
  }
}

TEST(ClusterPlacement, RackAwareSpreadsOneChunkPerRack) {
  // racks >= chunks_per_stripe: a stripe never doubles up in a rack, so one
  // rack failure costs it at most one chunk (the CI-smoke safety property).
  const Topology topo(10, 2, 2);
  PlacementRegistry reg(topo, 8, PlacementPolicy::RackAware, 1);
  reg.add_stripes(50);
  for (size_t s = 0; s < reg.stripe_count(); ++s)
    for (uint32_t per_rack : reg.rack_profile(s)) EXPECT_LE(per_rack, 1u);
}

TEST(ClusterPlacement, PlacementIsDeterministicPerSeed) {
  const Topology topo(5, 3, 2);
  PlacementRegistry a(topo, 6, PlacementPolicy::Random, 99);
  PlacementRegistry b(topo, 6, PlacementPolicy::Random, 99);
  a.add_stripes(64);
  b.add_stripes(32);
  b.add_stripes(32);  // incremental growth must not change earlier stripes
  for (size_t s = 0; s < 64; ++s)
    for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(a.disk_of(s, i), b.disk_of(s, i));
}

TEST(ClusterPlacement, ReplacementAvoidsStripeNodesAndDeadDisks) {
  const Topology topo(4, 4, 2);
  PlacementRegistry reg(topo, 6, PlacementPolicy::RackAware, 7);
  reg.add_stripes(4);
  HealthMap health(topo);
  health.fail_disk(reg.disk_of(0, 2));

  const uint32_t disk = reg.pick_replacement(0, 2, health);
  ASSERT_NE(disk, UINT32_MAX);
  EXPECT_TRUE(health.disk_ok(disk));
  for (uint32_t i = 0; i < 6; ++i)
    EXPECT_NE(topo.node_of_disk(disk), reg.node_of(0, i));

  // for_each_lost finds exactly the chunk on the failed disk.
  size_t hits = 0;
  reg.for_each_lost(health, [&](size_t s, uint32_t idx) {
    EXPECT_FALSE(health.disk_ok(reg.disk_of(s, idx)));
    ++hits;
  });
  EXPECT_GE(hits, 1u);
}

// ---- failure traces --------------------------------------------------------

TEST(ClusterFailure, TraceKeepsTimeOrderAndFingerprints) {
  FailureTrace trace;
  trace.add_node(5.0, 1).add_disk(1.0, 3).add_rack(2.5, 0);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events[0].kind, FailureKind::Disk);
  EXPECT_EQ(trace.events[1].kind, FailureKind::Rack);
  EXPECT_EQ(trace.events[2].kind, FailureKind::Node);
  EXPECT_DOUBLE_EQ(trace.duration(), 5.0);

  FailureTrace same;
  same.add_rack(2.5, 0).add_node(5.0, 1).add_disk(1.0, 3);
  EXPECT_EQ(trace.fingerprint(), same.fingerprint());
  same.add_disk(6.0, 0);
  EXPECT_NE(trace.fingerprint(), same.fingerprint());
}

TEST(ClusterFailure, PoissonStormIsDeterministicPerSeed) {
  const Topology topo(8, 4, 4);
  const FailureTrace a = FailureTrace::poisson_storm(topo, 0.5, 300.0, 1234);
  const FailureTrace b = FailureTrace::poisson_storm(topo, 0.5, 300.0, 1234);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_GT(a.size(), 10u);  // ~150 expected events

  const FailureTrace c = FailureTrace::poisson_storm(topo, 0.5, 300.0, 1235);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  // Sanity on the mix: with default fractions a long storm has all kinds.
  std::set<FailureKind> kinds;
  for (const auto& ev : a.events) {
    kinds.insert(ev.kind);
    EXPECT_LT(ev.time_s, 300.0);
    EXPECT_GE(ev.time_s, 0.0);
  }
  EXPECT_EQ(kinds.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.events.begin(), a.events.end(),
                             [](const FailureEvent& x, const FailureEvent& y) {
                               return x.time_s < y.time_s;
                             }));
}

TEST(ClusterFailure, RestoreEventsSortAfterFailuresAndApply) {
  FailureTrace trace;
  trace.add_disk_restore(1.0, 3).add_disk(1.0, 3).add_node_restore(2.0, 0);
  ASSERT_EQ(trace.size(), 3u);
  // Same timestamp: the failure (kind 0) sorts before the restore (kind 3),
  // so replaying the trace leaves the disk healthy again.
  EXPECT_EQ(trace.events[0].kind, FailureKind::Disk);
  EXPECT_EQ(trace.events[1].kind, FailureKind::DiskRestore);
  EXPECT_TRUE(is_restore(FailureKind::RackRestore));
  EXPECT_FALSE(is_restore(FailureKind::Rack));

  const Topology topo(2, 2, 2);
  HealthMap health(topo);
  for (const auto& ev : trace.events) FailureTrace::apply(ev, health);
  EXPECT_EQ(health.failed_disks(), 0u);
}

TEST(ClusterFailure, StormRestoreDelaySpawnsMatchingRestores) {
  const Topology topo(8, 4, 4);
  // delay 0 must reproduce the historical failure-only trace bit for bit.
  const FailureTrace plain = FailureTrace::poisson_storm(topo, 0.5, 100.0, 9);
  const FailureTrace zero =
      FailureTrace::poisson_storm(topo, 0.5, 100.0, 9, 0.25, 0.05, 0.0);
  EXPECT_EQ(plain.fingerprint(), zero.fingerprint());

  const FailureTrace with =
      FailureTrace::poisson_storm(topo, 0.5, 100.0, 9, 0.25, 0.05, 30.0);
  EXPECT_EQ(with.size(), 2 * plain.size());  // one restore per failure
  EXPECT_NE(with.fingerprint(), plain.fingerprint());

  // Every failure has its restore exactly 30 virtual seconds later, same
  // target; replaying the whole trace ends with a fully healthy fleet.
  size_t failures = 0, restores = 0;
  for (const auto& ev : with.events) (is_restore(ev.kind) ? restores : failures)++;
  EXPECT_EQ(failures, restores);
  HealthMap health(topo);
  for (const auto& ev : with.events) FailureTrace::apply(ev, health);
  EXPECT_EQ(health.failed_disks(), 0u);

  EXPECT_THROW(FailureTrace::poisson_storm(topo, 0.5, 100.0, 9, 0.25, 0.05, -1.0),
               std::invalid_argument);
}

// ---- orchestrator ----------------------------------------------------------

namespace {

RepairOptions small_options(const std::string& spec) {
  RepairOptions opt;
  opt.spec = spec;
  opt.chunk_bytes = 1ull << 20;
  opt.node_bandwidth = 64ull << 20;
  opt.execute_stripes = 3;
  opt.exec_frag_len = 2048;
  opt.seed = 11;
  return opt;
}

}  // namespace

TEST(ClusterRepair, GeometryMismatchAndWideStripesThrow) {
  const Topology topo(4, 4, 2);
  CodecService service;
  PlacementRegistry reg(topo, 9, PlacementPolicy::RackAware, 1);
  EXPECT_THROW(RepairOrchestrator(reg, service, small_options("rs(6,4)")),
               std::invalid_argument);  // 9 != 10
}

TEST(ClusterRepair, RepairsEveryLostChunkAndVerifiesPayload) {
  const Topology topo(12, 2, 2);
  CodecService service;
  PlacementRegistry reg(topo, 10, PlacementPolicy::RackAware, 5);
  reg.add_stripes(24);

  FailureTrace trace;
  trace.add_node(0.0, 7).add_rack(1.5, 2);

  RepairOrchestrator orch(reg, service, small_options("rs(6,4)"));
  const RepairReport report = orch.run(trace);

  EXPECT_GT(report.chunks_lost, 0u);
  EXPECT_EQ(report.chunks_repaired, report.chunks_lost);
  EXPECT_EQ(report.stripes_unrecoverable, 0u);
  EXPECT_EQ(report.chunks_unplaced, 0u);
  EXPECT_GT(report.repair_jobs, 0u);
  EXPECT_GT(report.strips_read, 0u);
  EXPECT_EQ(report.strips_read, report.cross_rack_strips + report.intra_rack_strips);
  EXPECT_EQ(report.bytes_written,
            static_cast<uint64_t>(report.chunks_repaired) * (1ull << 20));
  EXPECT_GT(report.time_to_safe_ticks, 0u);
  // Real payload ran through the CodecService and matched byte for byte.
  EXPECT_EQ(report.executed_stripes, 3u);
  EXPECT_EQ(report.verified_stripes, 3u);
  EXPECT_EQ(report.verify_failures, 0u);

  // After the run the placement holds no chunk on a failed disk.
  HealthMap health(topo);
  for (const auto& ev : trace.events) FailureTrace::apply(ev, health);
  size_t still_lost = 0;
  reg.for_each_lost(health, [&](size_t, uint32_t) { ++still_lost; });
  EXPECT_EQ(still_lost, 0u);

  // The service-level repair counters saw this traffic (executed stripes).
  size_t strips = 0;
  for (const auto& pool : service.stats().pools) strips += pool.strips_read;
  EXPECT_GT(strips, 0u);
}

TEST(ClusterRepair, LowestRedundancyStripeRepairsFirst) {
  const Topology topo(12, 2, 2);
  CodecService service;
  PlacementRegistry reg(topo, 10, PlacementPolicy::RackAware, 5);
  reg.add_stripes(6);

  // Stripe 0 loses two chunks, some other stripe loses one — all at t = 0.
  // The double-loss stripe is closest to data loss and must dispatch first.
  FailureTrace trace;
  trace.add_disk(0.0, reg.disk_of(0, 0)).add_disk(0.0, reg.disk_of(0, 1));
  uint32_t extra = UINT32_MAX;
  for (uint32_t i = 0; i < 10 && extra == UINT32_MAX; ++i) {
    const uint32_t d = reg.disk_of(1, i);
    bool in_stripe0 = false;
    for (uint32_t j = 0; j < 10; ++j) in_stripe0 = in_stripe0 || reg.disk_of(0, j) == d;
    if (!in_stripe0) extra = d;
  }
  ASSERT_NE(extra, UINT32_MAX);
  trace.add_disk(0.0, extra);

  RepairOptions opt = small_options("rs(6,4)");
  opt.record_jobs = true;
  opt.execute_stripes = 0;
  RepairOrchestrator orch(reg, service, opt);
  const RepairReport report = orch.run(trace);

  ASSERT_GE(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].stripe, 0u);
  EXPECT_EQ(report.jobs[0].erased.size(), 2u);
  EXPECT_EQ(report.jobs[0].redundancy_left, 2u);  // 4 parities - 2 lost
  // Within one tick, dispatch order never goes from fewer to more losses.
  for (size_t j = 1; j < report.jobs.size(); ++j)
    if (report.jobs[j].tick == report.jobs[j - 1].tick)
      EXPECT_LE(report.jobs[j].erased.size(), report.jobs[j - 1].erased.size());
}

TEST(ClusterRepair, BandwidthThrottleSpreadsRepairsOverTicks) {
  const Topology topo(12, 2, 2);
  CodecService service;
  FailureTrace trace;
  trace.add_node(0.0, 3).add_node(0.0, 20);

  const auto run_with_bandwidth = [&](uint64_t bandwidth) {
    PlacementRegistry reg(topo, 10, PlacementPolicy::RackAware, 5);
    reg.add_stripes(24);
    RepairOptions opt = small_options("rs(6,4)");
    opt.node_bandwidth = bandwidth;
    opt.record_jobs = true;
    opt.execute_stripes = 0;
    RepairOrchestrator orch(reg, service, opt);
    return orch.run(trace);
  };

  const RepairReport fat = run_with_bandwidth(1ull << 40);
  const RepairReport thin = run_with_bandwidth(1ull << 20);  // one chunk/tick/node

  // Unthrottled: everything dispatches the moment it is lost.
  for (const auto& job : fat.jobs) EXPECT_EQ(job.tick, 0u);
  EXPECT_EQ(fat.time_to_safe_ticks, 1u);

  // Throttled: the same repairs exist but are rationed across ticks.
  EXPECT_EQ(thin.chunks_repaired, fat.chunks_repaired);
  EXPECT_GT(thin.time_to_safe_ticks, fat.time_to_safe_ticks);
  EXPECT_GT(thin.jobs.back().tick, 0u);
}

TEST(ClusterRepair, ExceedingCodeToleranceIsReportedNotRepaired) {
  const Topology topo(4, 2, 1);  // 8 nodes, 8 disks
  CodecService service;
  PlacementRegistry reg(topo, 6, PlacementPolicy::RackAware, 3);
  reg.add_stripes(2);

  // rs(4,2) dies at 3 losses: fail rack 0 (two of stripe 0's chunks) plus a
  // third disk of stripe 0 in another rack, all before the first tick ends.
  FailureTrace trace;
  trace.add_rack(0.0, 0);
  for (uint32_t i = 0; i < 6; ++i)
    if (topo.rack_of_disk(reg.disk_of(0, i)) != 0) {
      trace.add_disk(0.0, reg.disk_of(0, i));
      break;
    }

  RepairOptions opt = small_options("rs(4,2)");
  opt.execute_stripes = 0;
  RepairOrchestrator orch(reg, service, opt);
  const RepairReport report = orch.run(trace);
  EXPECT_GE(report.stripes_unrecoverable, 1u);
  EXPECT_LT(report.chunks_repaired, report.chunks_lost);
}

TEST(ClusterRepair, RestoreBeforeDispatchReadmitsChunksForFree) {
  const Topology topo(12, 2, 2);
  CodecService service;
  PlacementRegistry reg(topo, 10, PlacementPolicy::RackAware, 5);
  reg.add_stripes(24);

  // The node fails and is re-admitted within the same virtual tick — both
  // events are absorbed before the scheduler dispatches anything, so every
  // lost chunk comes back without a single byte of repair traffic.
  FailureTrace trace;
  trace.add_node(0.0, 7).add_node_restore(0.5, 7);

  RepairOrchestrator orch(reg, service, small_options("rs(6,4)"));
  const RepairReport report = orch.run(trace);

  EXPECT_GT(report.chunks_lost, 0u);
  EXPECT_EQ(report.chunks_readmitted, report.chunks_lost);
  EXPECT_EQ(report.chunks_repaired, 0u);
  EXPECT_EQ(report.repair_jobs, 0u);
  EXPECT_EQ(report.bytes_read, 0u);
  EXPECT_EQ(report.disks_restored, report.disks_failed);
  EXPECT_EQ(report.stripes_unrecoverable, 0u);
}

TEST(ClusterRepair, RestoreRevivesUnrecoverableStripe) {
  const Topology topo(4, 2, 1);  // 8 nodes, 8 disks
  CodecService service;
  PlacementRegistry reg(topo, 6, PlacementPolicy::RackAware, 3);
  reg.add_stripes(2);

  // Same overload as ExceedingCodeTolerance: rs(4,2) loses 3 chunks of
  // stripe 0 at t = 0 and must declare data loss — but here the rack comes
  // back at t = 5, making the "lost" chunks readable again. The final report
  // must show no unrecoverable stripes and full accounting:
  // every lost chunk was either repaired or readmitted.
  FailureTrace trace;
  trace.add_rack(0.0, 0).add_rack_restore(5.0, 0);
  for (uint32_t i = 0; i < 6; ++i)
    if (topo.rack_of_disk(reg.disk_of(0, i)) != 0) {
      trace.add_disk(0.0, reg.disk_of(0, i));
      trace.add_disk_restore(5.0, reg.disk_of(0, i));
      break;
    }

  RepairOptions opt = small_options("rs(4,2)");
  opt.execute_stripes = 0;
  RepairOrchestrator orch(reg, service, opt);
  const RepairReport report = orch.run(trace);

  EXPECT_GT(report.chunks_lost, 2u);
  EXPECT_EQ(report.stripes_unrecoverable, 0u);
  EXPECT_GT(report.chunks_readmitted, 0u);
  // Full accounting: every lost chunk was repaired, readmitted by the
  // restore, or (this fleet is tiny — 8 single-disk nodes) had no eligible
  // replacement disk left at repair time.
  EXPECT_EQ(report.chunks_lost, report.chunks_repaired + report.chunks_readmitted +
                                    report.chunks_unplaced);

  // Replaying the full trace leaves the fleet healthy and the placement
  // holds no chunk on a failed disk.
  HealthMap health(topo);
  for (const auto& ev : trace.events) FailureTrace::apply(ev, health);
  size_t still_lost = 0;
  reg.for_each_lost(health, [&](size_t, uint32_t) { ++still_lost; });
  EXPECT_EQ(still_lost, 0u);
}

TEST(ClusterRepair, ReadmissionRunsAreDeterministic) {
  const Topology topo(10, 2, 2);
  CodecService service;
  const FailureTrace trace =
      FailureTrace::poisson_storm(topo, 0.3, 20.0, 77, 0.25, 0.05, /*restore_delay_s=*/8.0);

  const auto run_once = [&] {
    PlacementRegistry reg(topo, 10, PlacementPolicy::RackAware, 9);
    reg.add_stripes(16);
    RepairOptions opt = small_options("rs(6,4)");
    opt.execute_stripes = 0;
    RepairOrchestrator orch(reg, service, opt);
    return orch.run(trace);
  };
  const RepairReport a = run_once();
  const RepairReport b = run_once();
  EXPECT_EQ(a.decision_fingerprint, b.decision_fingerprint);
  std::ostringstream ja, jb;
  a.write_json(ja);
  b.write_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(ja.str().find("\"disks_restored\""), std::string::npos);
  EXPECT_NE(ja.str().find("\"chunks_readmitted\""), std::string::npos);
  // Every failure gets a restore, so after the trace drains no chunk can
  // still be lost: everything was repaired or readmitted (no stripe was so
  // deep in a hole that a repair had nowhere to land, on this seed).
  EXPECT_EQ(a.chunks_unplaced, 0u);
  EXPECT_EQ(a.chunks_lost, a.chunks_repaired + a.chunks_readmitted);
}

// ---- the controlled experiment ---------------------------------------------

TEST(ClusterRepair, LocalityFamiliesBeatRsOnTheSameTrace) {
  const Topology topo(12, 2, 2);
  CodecService service;
  const std::vector<std::string> specs{"rs(6,4)", "lrc(6,2,2)", "piggyback(6,4,2)"};

  FailureTrace trace;
  trace.add_node(0.0, 7).add_rack(2.5, 4).add_disk(5.0, 40);

  RepairOptions base = small_options("rs(6,4)");
  const auto reports = compare_families(topo, PlacementPolicy::RackAware, 24, specs,
                                        trace, service, base, /*placement_seed=*/5);
  ASSERT_EQ(reports.size(), 3u);
  const RepairReport& rs = reports[0];
  const RepairReport& lrc = reports[1];
  const RepairReport& pb = reports[2];

  for (const RepairReport& r : reports) {
    EXPECT_EQ(r.trace_fingerprint, trace.fingerprint());
    EXPECT_EQ(r.stripes_unrecoverable, 0u) << r.spec;
    EXPECT_EQ(r.chunks_repaired, r.chunks_lost) << r.spec;
    EXPECT_EQ(r.verify_failures, 0u) << r.spec;
    EXPECT_GT(r.repair_jobs, 0u) << r.spec;
  }
  // Identical placement seed + equal n: the same chunks are lost everywhere.
  EXPECT_EQ(rs.chunks_lost, lrc.chunks_lost);
  EXPECT_EQ(rs.chunks_lost, pb.chunks_lost);

  // The XORing-Elephants claim, asserted: locality-aware families move
  // strictly fewer strips and bytes — total and cross-rack — than plain RS
  // repairing the same failures.
  EXPECT_LT(lrc.strips_read, rs.strips_read);
  EXPECT_LT(lrc.bytes_read, rs.bytes_read);
  EXPECT_LT(lrc.cross_rack_bytes, rs.cross_rack_bytes);
  EXPECT_LT(pb.bytes_read, rs.bytes_read);
  EXPECT_LT(pb.cross_rack_bytes, rs.cross_rack_bytes);
}

TEST(ClusterRepair, ReportsAreByteIdenticalPerSeed) {
  const Topology topo(10, 2, 2);
  CodecService service;
  const std::vector<std::string> specs{"rs(6,4)", "lrc(6,2,2)"};
  const FailureTrace trace = FailureTrace::poisson_storm(topo, 0.2, 20.0, 77);

  RepairOptions base = small_options("rs(6,4)");
  base.execute_stripes = 1;
  const auto first = compare_families(topo, PlacementPolicy::RackAware, 16, specs, trace,
                                      service, base, 9);
  const auto second = compare_families(topo, PlacementPolicy::RackAware, 16, specs, trace,
                                       service, base, 9);

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].decision_fingerprint, second[i].decision_fingerprint);
    std::ostringstream a, b;
    first[i].write_json(a);
    second[i].write_json(b);
    EXPECT_EQ(a.str(), b.str()) << specs[i];
  }

  std::ostringstream doc;
  write_comparison_json(doc, topo, PlacementPolicy::RackAware, 16, trace, first);
  EXPECT_NE(doc.str().find("\"bench\": \"repair_traffic\""), std::string::npos);
  EXPECT_NE(doc.str().find("\"spec\": \"rs(6,4)\""), std::string::npos);
}
