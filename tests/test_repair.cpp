// RePair / XorRePair (§4.3-4.4): the paper's P0 walkthrough, semantic
// preservation on random matrices, and the structural invariants of the
// compressed output (binary temporals, no dead code).
#include <gtest/gtest.h>

#include "slp/metrics.hpp"
#include "slp/repair.hpp"
#include "slp/semantics.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec::slp;
using namespace xorec::slp::testing;

TEST(RePair, PaperP0CompressesTo5Xors) {
  // §4.3 walks P0 (8 XORs) to P1 (5 XORs) without cancellation.
  const Program p0 = make_p0();
  EXPECT_EQ(xor_ops(p0), 8u);
  const Program q = repair_compress(p0);
  q.validate();
  EXPECT_TRUE(equivalent(p0, q));
  EXPECT_EQ(xor_ops(q), 5u);
}

TEST(XorRePair, PaperP0CompressesTo4Xors) {
  // §4.4: Rebuild finds v4 = a ^ t3; the optimum is 4 XORs (§4.2).
  const Program p0 = make_p0();
  const Program q = xor_repair_compress(p0);
  q.validate();
  EXPECT_TRUE(equivalent(p0, q));
  EXPECT_EQ(xor_ops(q), 4u);
}

TEST(RePair, OutputIsBinarySsa) {
  const Program q = repair_compress(random_flat(30, 12, 3));
  EXPECT_TRUE(q.is_ssa());
  for (const Instruction& ins : q.body) EXPECT_LE(ins.args.size(), 2u);
}

TEST(XorRePair, OutputIsBinarySsa) {
  const Program q = xor_repair_compress(random_flat(30, 12, 4));
  EXPECT_TRUE(q.is_ssa());
  for (const Instruction& ins : q.body) EXPECT_LE(ins.args.size(), 2u);
}

TEST(RePair, NoDeadCode) {
  // Every instruction must be reachable from the outputs.
  const Program q = xor_repair_compress(random_flat(40, 16, 9));
  std::vector<bool> live(q.num_vars, false);
  for (uint32_t o : q.outputs) live[o] = true;
  for (auto it = q.body.rbegin(); it != q.body.rend(); ++it) {
    if (!live[it->target]) ADD_FAILURE() << "dead instruction v" << it->target;
    for (const Term& t : it->args)
      if (t.is_var()) live[t.id] = true;
  }
}

struct RepairParam {
  uint32_t consts, rows, seed;
};

class RepairProperty : public ::testing::TestWithParam<RepairParam> {};

TEST_P(RepairProperty, SemanticsPreservedAndNeverLarger) {
  const auto [consts, rows, seed] = GetParam();
  const Program flat = random_flat(consts, rows, seed);
  for (bool rebuild : {false, true}) {
    const Program q = repair_compress(flat, {.use_rebuild = rebuild});
    q.validate();
    ASSERT_TRUE(equivalent(flat, q)) << "rebuild=" << rebuild;
    EXPECT_LE(xor_ops(q), xor_ops(flat)) << "rebuild=" << rebuild;
  }
}

TEST_P(RepairProperty, RebuildNeverWorseThanPlainRePair) {
  const auto [consts, rows, seed] = GetParam();
  const Program flat = random_flat(consts, rows, seed);
  // Not a theorem in general (different pair orders), but holds on this
  // corpus and guards against regressions that break Rebuild's accounting.
  const size_t plain = xor_ops(repair_compress(flat));
  const size_t with_rebuild = xor_ops(xor_repair_compress(flat));
  EXPECT_LE(with_rebuild, plain + plain / 10 + 1);
}

INSTANTIATE_TEST_SUITE_P(Corpus, RepairProperty,
                         ::testing::Values(RepairParam{8, 4, 1}, RepairParam{8, 4, 2},
                                           RepairParam{16, 8, 3}, RepairParam{16, 8, 4},
                                           RepairParam{24, 8, 5}, RepairParam{32, 16, 6},
                                           RepairParam{40, 16, 7}, RepairParam{48, 24, 8},
                                           RepairParam{64, 32, 9}, RepairParam{80, 32, 10},
                                           RepairParam{80, 32, 11}, RepairParam{13, 5, 12}));

TEST(RePair, HandlesUnaryAndDuplicateRows) {
  Program p;
  p.num_consts = 4;
  p.num_vars = 3;
  p.body = {
      {0, {C(2)}},              // alias of a constant
      {1, {C(0), C(1)}},        //
      {2, {C(0), C(1)}},        // duplicate of row 1
  };
  p.outputs = {0, 1, 2};
  const Program q = xor_repair_compress(p);
  q.validate();
  EXPECT_TRUE(equivalent(p, q));
  // The duplicate rows share one temporal; the constant row is a copy.
  EXPECT_EQ(xor_ops(q), 1u);
  EXPECT_EQ(q.outputs[1], q.outputs[2]);
}

TEST(RePair, DuplicateConstantsInARowCancel) {
  Program p;
  p.num_consts = 3;
  p.num_vars = 1;
  p.body = {{0, {C(0), C(1), C(0), C(2)}}};  // a^b^a^c = b^c
  p.outputs = {0};
  const Program q = xor_repair_compress(p);
  EXPECT_TRUE(equivalent(p, q));
  EXPECT_EQ(xor_ops(q), 1u);
}

TEST(RePair, RejectsNonFlatInput) {
  Program p;
  p.num_consts = 2;
  p.num_vars = 2;
  p.body = {{0, {C(0), C(1)}}, {1, {V(0), C(1)}}};
  p.outputs = {1};
  EXPECT_THROW(repair_compress(p), std::invalid_argument);
}

TEST(RePair, RejectsZeroValueOutput) {
  Program p;
  p.num_consts = 2;
  p.num_vars = 1;
  p.body = {{0, {C(0), C(0)}}};  // value cancels to the empty set
  p.outputs = {0};
  EXPECT_THROW(repair_compress(p), std::invalid_argument);
}

TEST(XorRePair, CancellationBeatsPlainRePairOnTheMotivatingShape) {
  // §4.2's essence: v3 = a^b^c^d computed, then v4 = b^c^d is v3 ^ a.
  Program p;
  p.num_consts = 8;
  p.num_vars = 4;
  p.body = {
      {0, {C(0), C(1), C(2), C(3), C(4), C(5), C(6), C(7)}},
      {1, {C(1), C(2), C(3), C(4), C(5), C(6), C(7)}},  // row0 minus c0
      {2, {C(0), C(2), C(3), C(4), C(5), C(6), C(7)}},  // row0 minus c1
      {3, {C(0), C(1), C(3), C(4), C(5), C(6), C(7)}},  // row0 minus c2
  };
  p.outputs = {0, 1, 2, 3};
  const size_t plain = xor_ops(repair_compress(p));
  const size_t xr = xor_ops(xor_repair_compress(p));
  // Dense overlapping rows compress heavily either way; cancellation must
  // never lose (the strict win is pinned down by the P0 test above).
  EXPECT_LE(xr, plain);
  EXPECT_LE(xr, 11u);  // base has 27 XORs
  EXPECT_TRUE(equivalent(p, xor_repair_compress(p)));
}

TEST(RePair, RealCodingMatrixReductionRatioIsInPaperRegime) {
  // §7.3 reports ~42% average for RS(10,4); any healthy implementation lands
  // well under the 65% of the non-SLP heuristics on the encode matrix.
  const auto m = xorec::bitmatrix::expand(
      xorec::gf::rs_isal_matrix(10, 4).select_rows({10, 11, 12, 13}));
  const Program base = from_bitmatrix(m);
  const Program co = xor_repair_compress(base);
  EXPECT_TRUE(equivalent(base, co));
  const double ratio = static_cast<double>(xor_ops(co)) / static_cast<double>(xor_ops(base));
  EXPECT_LT(ratio, 0.60) << "xor ratio " << ratio;
  EXPECT_GT(ratio, 0.25) << "xor ratio " << ratio;
}
