// Specialized XOR array codes (EVENODD / RDP / STAR) expressed as
// bitmatrices and run through the generic XorCodec: spec well-formedness,
// hand-checked parity equations, and full erasure sweeps up to each code's
// tolerance — which simultaneously proves the constructions are MDS at the
// block level.
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "altcodes/evenodd.hpp"
#include "altcodes/rdp.hpp"
#include "altcodes/star.hpp"
#include "bitmatrix/f2solve.hpp"

using namespace xorec;
using altcodes::XorCodec;
using altcodes::XorCodeSpec;

namespace {

struct ArrayCluster {
  std::vector<std::vector<uint8_t>> frags;
  size_t k, m, frag_len;

  ArrayCluster(const XorCodec& codec, size_t frag_len_, uint32_t seed)
      : k(codec.data_blocks()), m(codec.parity_blocks()), frag_len(frag_len_) {
    std::mt19937 rng(seed);
    frags.assign(k + m, std::vector<uint8_t>(frag_len));
    for (size_t i = 0; i < k; ++i)
      for (auto& b : frags[i]) b = static_cast<uint8_t>(rng());
    std::vector<const uint8_t*> data;
    std::vector<uint8_t*> parity;
    for (size_t i = 0; i < k; ++i) data.push_back(frags[i].data());
    for (size_t i = 0; i < m; ++i) parity.push_back(frags[k + i].data());
    codec.encode(data.data(), parity.data(), frag_len);
  }

  void check_reconstruct(const XorCodec& codec, const std::vector<uint32_t>& erased) const {
    std::vector<uint32_t> available;
    std::vector<const uint8_t*> avail_ptrs;
    for (uint32_t id = 0; id < k + m; ++id)
      if (std::find(erased.begin(), erased.end(), id) == erased.end()) {
        available.push_back(id);
        avail_ptrs.push_back(frags[id].data());
      }
    std::vector<std::vector<uint8_t>> rebuilt(erased.size(),
                                              std::vector<uint8_t>(frag_len, 0xEF));
    std::vector<uint8_t*> outs;
    for (auto& r : rebuilt) outs.push_back(r.data());
    codec.reconstruct(available, avail_ptrs.data(), erased, outs.data(), frag_len);
    for (size_t i = 0; i < erased.size(); ++i)
      ASSERT_EQ(rebuilt[i], frags[erased[i]]) << "block " << erased[i];
  }
};

void all_patterns(size_t total, size_t c,
                  const std::function<void(std::vector<uint32_t>&)>& f) {
  std::vector<uint32_t> pattern(c);
  std::function<void(size_t, size_t)> rec = [&](size_t start, size_t depth) {
    if (depth == c) {
      f(pattern);
      return;
    }
    for (size_t v = start; v < total; ++v) {
      pattern[depth] = static_cast<uint32_t>(v);
      rec(v + 1, depth + 1);
    }
  };
  rec(0, 0);
}

}  // namespace

TEST(Primes, IsPrime) {
  EXPECT_TRUE(altcodes::is_prime(2));
  EXPECT_TRUE(altcodes::is_prime(3));
  EXPECT_TRUE(altcodes::is_prime(17));
  EXPECT_FALSE(altcodes::is_prime(1));
  EXPECT_FALSE(altcodes::is_prime(9));
  EXPECT_FALSE(altcodes::is_prime(15));
}

TEST(EvenOdd, SpecShapeAndValidation) {
  const XorCodeSpec s = altcodes::evenodd_spec(5);
  EXPECT_EQ(s.data_blocks, 5u);
  EXPECT_EQ(s.parity_blocks, 2u);
  EXPECT_EQ(s.strips_per_block, 4u);
  EXPECT_NO_THROW(s.validate());
  EXPECT_THROW(altcodes::evenodd_spec(4), std::invalid_argument);
  EXPECT_THROW(altcodes::evenodd_spec(2), std::invalid_argument);
}

TEST(EvenOdd, HorizontalParityRowIsFullRow) {
  const XorCodeSpec s = altcodes::evenodd_spec(3);  // 3 disks, 2 strips each
  // P_0 = a(0,0) ^ a(0,1) ^ a(0,2): input ids 0, 2, 4 (block-major).
  const auto ones = s.code.row(3 * 2 + 0).ones();
  EXPECT_EQ(ones, (std::vector<uint32_t>{0, 2, 4}));
}

TEST(EvenOdd, KnownSmallDiagonal) {
  // p=3: S = a(1,1) ^ a(0,2)  (cells with r+j == 2, j>=1).
  // Q_0 = S ^ a(0,0) ^ a(1,2) (diagonal r+j ≡ 0 mod 3, skipping r=2).
  const XorCodeSpec s = altcodes::evenodd_spec(3);
  const auto in = [](size_t i, size_t j) { return static_cast<uint32_t>(j * 2 + i); };
  bitmatrix::BitRow want(6);
  want.flip(in(1, 1));
  want.flip(in(0, 2));
  want.flip(in(0, 0));
  // (i=0, j=1): r = (0-1) mod 3 = 2 -> skipped (imaginary row).
  want.flip(in(1, 2));  // (i=0, j=2): r = (0-2) mod 3 = 1
  EXPECT_EQ(s.code.row(3 * 2 + 2 + 0), want);
}

TEST(EvenOdd, AllDoubleErasuresDecode) {
  for (size_t p : {3, 5, 7}) {
    XorCodec codec{altcodes::evenodd_spec(p)};
    ArrayCluster c(codec, (p - 1) * 16, static_cast<uint32_t>(p));
    all_patterns(p + 2, 2, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
    all_patterns(p + 2, 1, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
  }
}

TEST(Rdp, SpecShape) {
  const XorCodeSpec s = altcodes::rdp_spec(5);
  EXPECT_EQ(s.data_blocks, 4u);
  EXPECT_EQ(s.parity_blocks, 2u);
  EXPECT_EQ(s.strips_per_block, 4u);
  EXPECT_NO_THROW(s.validate());
}

TEST(Rdp, AllDoubleErasuresDecode) {
  for (size_t p : {3, 5, 7}) {
    XorCodec codec{altcodes::rdp_spec(p)};
    ArrayCluster c(codec, (p - 1) * 8, static_cast<uint32_t>(10 + p));
    all_patterns(p + 1, 2, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
  }
}

TEST(Star, SpecShapeExtendsEvenOdd) {
  const XorCodeSpec star = altcodes::star_spec(5);
  const XorCodeSpec eo = altcodes::evenodd_spec(5);
  EXPECT_EQ(star.parity_blocks, 3u);
  EXPECT_NO_THROW(star.validate());
  // First two parity disks are exactly EVENODD's.
  for (size_t r = 0; r < (5 + 2) * 4; ++r) EXPECT_EQ(star.code.row(r), eo.code.row(r));
}

TEST(Star, AllTripleErasuresDecode) {
  for (size_t p : {5, 7}) {
    XorCodec codec{altcodes::star_spec(p)};
    ArrayCluster c(codec, (p - 1) * 8, static_cast<uint32_t>(20 + p));
    all_patterns(p + 3, 3, [&](std::vector<uint32_t>& e) { c.check_reconstruct(codec, e); });
  }
}

TEST(XorCode, BeyondToleranceThrows) {
  XorCodec codec{altcodes::evenodd_spec(5)};
  ArrayCluster c(codec, 64, 1);
  EXPECT_THROW(c.check_reconstruct(codec, {0, 1, 2}), std::invalid_argument);
}

TEST(XorCode, FragLenMustBeMultipleOfStrips) {
  XorCodec codec{altcodes::evenodd_spec(5)};  // w = 4
  std::vector<std::vector<uint8_t>> bufs(7, std::vector<uint8_t>(10));
  std::vector<const uint8_t*> data(5);
  std::vector<uint8_t*> parity(2);
  for (size_t i = 0; i < 5; ++i) data[i] = bufs[i].data();
  for (size_t i = 0; i < 2; ++i) parity[i] = bufs[5 + i].data();
  EXPECT_THROW(codec.encode(data.data(), parity.data(), 10), std::invalid_argument);
}

TEST(XorCode, SpecValidationCatchesBrokenCodes) {
  XorCodeSpec s = altcodes::evenodd_spec(3);
  s.code.set(0, 1, true);  // break systematic top
  EXPECT_THROW(s.validate(), std::invalid_argument);
  XorCodeSpec s2 = altcodes::evenodd_spec(3);
  s2.data_blocks = 99;
  EXPECT_THROW(s2.validate(), std::invalid_argument);
}

TEST(XorCode, OptimizedPipelineMatchesNaive) {
  // Same spec, optimizer on vs off: identical parity bytes.
  ec::CodecOptions off;
  off.pipeline = {slp::CompressKind::None, false, slp::ScheduleKind::None, 0};
  XorCodec a{altcodes::rdp_spec(5)};
  XorCodec b{altcodes::rdp_spec(5), off};
  ArrayCluster ca(a, 128, 9), cb(b, 128, 9);
  EXPECT_EQ(ca.frags, cb.frags);
}

TEST(XorCode, EvenOddAgainstManualEncoding) {
  // p=3, one byte per strip: hand-compute P and Q.
  XorCodec codec{altcodes::evenodd_spec(3)};
  const size_t frag_len = 2;  // w = 2 strips of 1 byte
  std::vector<std::vector<uint8_t>> data{{0x11, 0x22}, {0x33, 0x44}, {0x55, 0x66}};
  std::vector<const uint8_t*> d{data[0].data(), data[1].data(), data[2].data()};
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(frag_len));
  std::vector<uint8_t*> pp{parity[0].data(), parity[1].data()};
  codec.encode(d.data(), pp.data(), frag_len);

  // a(i,j) = data[j][i]. P_i = a(i,0)^a(i,1)^a(i,2).
  EXPECT_EQ(parity[0][0], 0x11 ^ 0x33 ^ 0x55);
  EXPECT_EQ(parity[0][1], 0x22 ^ 0x44 ^ 0x66);
  // S = a(1,1) ^ a(0,2) = 0x44 ^ 0x55.
  const uint8_t S = 0x44 ^ 0x55;
  // Q_0 = S ^ a(0,0) ^ a(1,2); Q_1 = S ^ a(1,0) ^ a(0,1).
  EXPECT_EQ(parity[1][0], S ^ 0x11 ^ 0x66);
  EXPECT_EQ(parity[1][1], S ^ 0x22 ^ 0x33);
}
