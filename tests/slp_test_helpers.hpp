// Shared builders for SLP tests: the paper's worked examples and random
// flat programs (bitmatrix SLPs) for property sweeps.
#pragma once

#include <random>

#include "slp/program.hpp"

namespace xorec::slp::testing {

inline Term C(uint32_t id) { return Term::constant(id); }
inline Term V(uint32_t id) { return Term::var(id); }

/// §6.2's running example P_eg over constants A..G = c0..c6:
///   v0 <- A ^ B;  v1 <- C ^ D;  v2 <- (v0, E, F);
///   v3 <- (v2, G, A);  v4 <- (v0, v2, v3);  ret(v1, v3, v4)
inline Program make_peg() {
  Program p;
  p.num_consts = 7;
  p.num_vars = 5;
  p.body = {
      {0, {C(0), C(1)}},
      {1, {C(2), C(3)}},
      {2, {V(0), C(4), C(5)}},
      {3, {V(2), C(6), C(0)}},
      {4, {V(0), V(2), V(3)}},
  };
  p.outputs = {1, 3, 4};
  p.name = "peg";
  return p;
}

/// §6.3's register-assigned variant P_reg: instruction 5 stores into v0.
inline Program make_preg() {
  Program p = make_peg();
  p.body[4].target = 0;
  p.outputs = {1, 3, 0};
  p.name = "preg";
  return p;
}

/// §4.2's P0 (the RePair/XorRePair running example) over a..d = c0..c3.
inline Program make_p0() {
  Program p;
  p.num_consts = 4;
  p.num_vars = 4;
  p.body = {
      {0, {C(0), C(1)}},
      {1, {C(0), C(1), C(2)}},
      {2, {C(0), C(1), C(2), C(3)}},
      {3, {C(1), C(2), C(3)}},
  };
  p.outputs = {0, 1, 2, 3};
  p.name = "p0";
  return p;
}

/// Random flat SLP: `rows` outputs over `consts` inputs, each row a random
/// nonzero subset (density ~1/2) — the shape bitmatrix coding produces.
inline Program random_flat(uint32_t consts, uint32_t rows, uint32_t seed) {
  std::mt19937 rng(seed);
  Program p;
  p.num_consts = consts;
  p.num_vars = rows;
  for (uint32_t r = 0; r < rows; ++r) {
    Instruction ins;
    ins.target = r;
    for (uint32_t c = 0; c < consts; ++c)
      if (rng() & 1) ins.args.push_back(C(c));
    if (ins.args.empty()) ins.args.push_back(C(rng() % consts));
    p.body.push_back(std::move(ins));
    p.outputs.push_back(r);
  }
  p.name = "rand" + std::to_string(seed);
  return p;
}

}  // namespace xorec::slp::testing
