// C code generation: structural checks on the emitted source, plus a full
// compile-and-run validation — the generated TU is built with the system C
// compiler, loaded via dlopen, and must produce byte-identical output to the
// interpreter on the same program.
#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>

#include "runtime/codegen_c.hpp"
#include "runtime/executor.hpp"
#include "slp/fusion.hpp"
#include "slp/repair.hpp"
#include "slp/schedule_dfs.hpp"
#include "slp_test_helpers.hpp"

using namespace xorec;
using namespace xorec::slp::testing;

namespace {

using CodedFn = void (*)(const uint8_t* const*, uint8_t* const*, size_t, size_t);

/// Compiles `source` into a shared object and returns the named symbol.
/// Returns nullptr (and logs) when no C compiler is available.
CodedFn compile_and_load(const std::string& source, const std::string& fn_name,
                         void** handle_out) {
  char dir_template[] = "/tmp/xorec_codegen_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (!dir) return nullptr;
  const std::string c_path = std::string(dir) + "/gen.c";
  const std::string so_path = std::string(dir) + "/gen.so";
  {
    std::ofstream out(c_path);
    out << source;
  }
  const std::string cmd = "cc -O2 -shared -fPIC -o " + so_path + " " + c_path + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return nullptr;
  void* handle = dlopen(so_path.c_str(), RTLD_NOW);
  if (!handle) return nullptr;
  *handle_out = handle;
  return reinterpret_cast<CodedFn>(dlsym(handle, fn_name.c_str()));
}

}  // namespace

TEST(CodegenC, EmitsWellFormedSource) {
  const auto prog = runtime::compile(make_peg());
  const std::string src = runtime::generate_c(prog, {.function_name = "peg_run"});
  EXPECT_NE(src.find("void peg_run(const uint8_t* const* in"), std::string::npos);
  EXPECT_NE(src.find("static void xor2("), std::string::npos);
  EXPECT_NE(src.find("static void xor3("), std::string::npos);
  // Two scratch pebbles for P_eg (v0 and v2 are not returned).
  EXPECT_NE(src.find("uint8_t scratch0["), std::string::npos);
  EXPECT_NE(src.find("uint8_t scratch1["), std::string::npos);
  EXPECT_EQ(src.find("scratch2["), std::string::npos);
}

TEST(CodegenC, CompiledCodeMatchesInterpreter) {
  // Full pipeline on a random code, then AOT-compile and compare.
  const slp::Program base = random_flat(32, 12, 404);
  const slp::Program sched = slp::schedule_dfs(slp::fuse(slp::xor_repair_compress(base)));
  const auto exec_prog = runtime::compile(sched);
  const std::string src =
      runtime::generate_c(exec_prog, {.function_name = "coded_run", .max_block_size = 2048});

  void* handle = nullptr;
  CodedFn fn = compile_and_load(src, "coded_run", &handle);
  if (!fn) GTEST_SKIP() << "no working C compiler / dlopen in this environment";

  const size_t strip_len = 10000;
  std::mt19937_64 rng(77);
  std::vector<std::vector<uint8_t>> in(32, std::vector<uint8_t>(strip_len));
  for (auto& s : in)
    for (auto& b : s) b = static_cast<uint8_t>(rng());
  std::vector<const uint8_t*> in_ptrs;
  for (const auto& s : in) in_ptrs.push_back(s.data());

  std::vector<std::vector<uint8_t>> out_aot(sched.outputs.size(),
                                            std::vector<uint8_t>(strip_len, 1));
  std::vector<std::vector<uint8_t>> out_interp(sched.outputs.size(),
                                               std::vector<uint8_t>(strip_len, 2));
  std::vector<uint8_t*> aot_ptrs, interp_ptrs;
  for (auto& s : out_aot) aot_ptrs.push_back(s.data());
  for (auto& s : out_interp) interp_ptrs.push_back(s.data());

  fn(in_ptrs.data(), aot_ptrs.data(), strip_len, 1024);
  runtime::Executor exec(exec_prog, {.block_size = 1024});
  exec.run(in_ptrs.data(), interp_ptrs.data(), strip_len);

  EXPECT_EQ(out_aot, out_interp);
  dlclose(handle);
}

TEST(CodegenC, BlockSizeIsClampedToScratchCapacity) {
  const auto prog = runtime::compile(make_peg());
  const std::string src =
      runtime::generate_c(prog, {.function_name = "f", .max_block_size = 512});
  EXPECT_NE(src.find("block_size > 512"), std::string::npos);
  EXPECT_NE(src.find("scratch0[512]"), std::string::npos);
}

TEST(CodegenC, UnaryCopyUsesXor1Helper) {
  slp::Program p;
  p.num_consts = 1;
  p.num_vars = 1;
  p.body = {{0, {slp::Term::constant(0)}}};
  p.outputs = {0};
  const std::string src = runtime::generate_c(runtime::compile(p));
  EXPECT_NE(src.find("static void xor1("), std::string::npos);
}
