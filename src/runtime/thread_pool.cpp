#include "runtime/thread_pool.hpp"

#include <memory>

namespace xorec::runtime {

void ThreadPool::spawn_worker_locked() {
  const size_t w = workers_.size();
  const uint64_t born_at = epoch_;  // never run jobs dispatched before spawn
  workers_.emplace_back([this, w, born_at] {
    uint64_t seen = born_at;
    for (;;) {
      const std::function<void(size_t)>* fn = nullptr;
      {
        std::unique_lock lk(mu_);
        cv_start_.wait(lk, [&] { return stop_ || epoch_ > seen; });
        if (stop_) return;
        seen = epoch_;
        fn = fn_;
      }
      try {
        (*fn)(w);
      } catch (...) {
        std::lock_guard lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard lk(mu_);
        if (--pending_ == 0) cv_done_.notify_all();
      }
    }
  });
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t n_workers = threads > 0 ? threads - 1 : 0;
  std::lock_guard lk(mu_);
  workers_.reserve(n_workers);
  for (size_t w = 0; w < n_workers; ++w) spawn_worker_locked();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

size_t ThreadPool::size() const {
  std::lock_guard lk(mu_);
  return workers_.size() + 1;
}

void ThreadPool::run_on_all(const std::function<void(size_t)>& fn) {
  std::lock_guard run_lk(run_mu_);
  size_t n_workers;
  {
    std::lock_guard lk(mu_);
    fn_ = &fn;
    error_ = nullptr;
    n_workers = workers_.size();
    pending_ = n_workers;
    ++epoch_;
  }
  cv_start_.notify_all();
  // The caller participates as the last index.
  try {
    fn(n_workers);
  } catch (...) {
    std::lock_guard lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::resize(size_t threads) {
  std::lock_guard run_lk(run_mu_);  // wait out any in-flight job
  const size_t want = threads > 0 ? threads - 1 : 0;
  std::lock_guard lk(mu_);
  while (workers_.size() < want) spawn_worker_locked();
}

ThreadPool& ThreadPool::shared(size_t threads) {
  static std::mutex m;
  // unique_ptr (not a leak) so workers join cleanly at process exit.
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard lk(m);
  if (!pool) pool = std::make_unique<ThreadPool>(threads);
  else if (threads > pool->size()) pool->resize(threads);
  return *pool;
}

}  // namespace xorec::runtime
