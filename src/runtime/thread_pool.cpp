#include "runtime/thread_pool.hpp"

#include <map>
#include <memory>

namespace xorec::runtime {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n_workers = threads > 0 ? threads - 1 : 0;
  workers_.reserve(n_workers);
  for (size_t w = 0; w < n_workers; ++w) {
    workers_.emplace_back([this, w] {
      uint64_t seen = 0;
      for (;;) {
        const std::function<void(size_t)>* fn = nullptr;
        {
          std::unique_lock lk(mu_);
          cv_start_.wait(lk, [&] { return stop_ || epoch_ > seen; });
          if (stop_) return;
          seen = epoch_;
          fn = fn_;
        }
        try {
          (*fn)(w);
        } catch (...) {
          std::lock_guard lk(mu_);
          if (!error_) error_ = std::current_exception();
        }
        {
          std::lock_guard lk(mu_);
          if (--pending_ == 0) cv_done_.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_on_all(const std::function<void(size_t)>& fn) {
  {
    std::lock_guard lk(mu_);
    fn_ = &fn;
    error_ = nullptr;
    pending_ = workers_.size();
    ++epoch_;
  }
  cv_start_.notify_all();
  // The caller participates as the last index.
  try {
    fn(workers_.size());
  } catch (...) {
    std::lock_guard lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  if (error_) std::rethrow_exception(error_);
}

ThreadPool& ThreadPool::shared(size_t threads) {
  static std::mutex m;
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard lk(m);
  auto& p = pools[threads];
  if (!p) p = std::make_unique<ThreadPool>(threads);
  return *p;
}

}  // namespace xorec::runtime
