// Minimal blocking thread pool for data-parallel strip ranges.
//
// The blocked executor splits the strip length into contiguous chunks; each
// worker runs the whole SLP over its chunk with private scratch buffers
// (§8's parallelism direction; fragments are row-wise independent).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xorec::runtime {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size() + 1; }  // + calling thread

  /// Runs fn(worker_index) on indices 0..size()-1 (index size()-1 executes on
  /// the calling thread) and blocks until all are done. Exceptions in workers
  /// are rethrown on the caller (first one wins).
  void run_on_all(const std::function<void(size_t)>& fn);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& shared(size_t threads);

 private:
  struct Task {
    const std::function<void(size_t)>* fn = nullptr;
    uint64_t epoch = 0;
  };

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(size_t)>* fn_ = nullptr;
  uint64_t epoch_ = 0;
  size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace xorec::runtime
