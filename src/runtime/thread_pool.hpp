// Minimal blocking thread pool for data-parallel strip ranges.
//
// The blocked executor splits the strip length into contiguous chunks; each
// worker runs the whole SLP over its chunk with private scratch buffers
// (§8's parallelism direction; fragments are row-wise independent).
//
// ThreadPool is a fork-join primitive. For queued, future-returning
// stripe-level parallelism (api/batch.hpp's BatchCoder sessions) see
// runtime/task_queue.hpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xorec::runtime {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const;  // worker threads + the calling thread

  /// Runs fn(worker_index) on indices 0..size()-1 (index size()-1 executes on
  /// the calling thread) and blocks until all are done. Exceptions in workers
  /// are rethrown on the caller (first one wins). Concurrent calls from
  /// different threads are serialized internally, so a process-wide pool can
  /// back several executors at once.
  void run_on_all(const std::function<void(size_t)>& fn);

  /// Grow the pool so size() >= threads. Never shrinks; a no-op for smaller
  /// requests. Safe to call concurrently with run_on_all (the resize waits
  /// for the running job to finish).
  void resize(size_t threads);

  /// The process-wide pool. The first call creates it sized to `threads`;
  /// later calls grow it to the largest request seen so far and never shrink
  /// it (deterministic resize-or-reuse — callers are guaranteed
  /// size() >= threads on return, never a different-sized pool than they
  /// asked for because someone else got there first).
  ///
  /// Deliberate tradeoff vs the old pool-per-size map: one bounded worker
  /// group instead of unbounded thread growth, at the cost that concurrent
  /// multi-threaded (`threads>1`) coding calls across the process take
  /// turns on this pool's fork-join. Workloads that want concurrent
  /// *stripes* should use threads=1 codecs under a BatchCoder session
  /// (api/batch.hpp), whose TaskQueue workers run independently.
  static ThreadPool& shared(size_t threads);

 private:
  void spawn_worker_locked();

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::mutex run_mu_;  // serializes run_on_all / excludes resize mid-run
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(size_t)>* fn_ = nullptr;
  uint64_t epoch_ = 0;
  size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace xorec::runtime
