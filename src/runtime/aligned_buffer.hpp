// Cache-conscious buffer allocation (§7.4).
//
// The paper's anti-conflict strategy: with a 32 KB / 8-way / 64 B-line L1,
// addresses congruent mod 4 KB compete for the same cache set. Laying
// strip i at  A(strip_i) ≡ i·B (mod 4 KB)  staggers the strips across sets
// so blocks of different strips never all collide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace xorec::runtime {

inline constexpr size_t kCachePage = 4096;  // set-conflict period on x86 L1

/// A slab of `count` equally sized strips with the staggered layout:
/// strip(i) starts at offset_i with offset_i ≡ i*block_size (mod 4K).
/// With stagger disabled every strip is 4K-aligned (the adversarial layout
/// §7.4 warns about) — kept for the alignment ablation benchmark.
class StripArena {
 public:
  StripArena(size_t count, size_t strip_len, size_t block_size, bool stagger = true);

  uint8_t* strip(size_t i) { return base_ + offsets_[i]; }
  const uint8_t* strip(size_t i) const { return base_ + offsets_[i]; }
  size_t count() const { return offsets_.size(); }
  size_t strip_len() const { return strip_len_; }

  std::vector<uint8_t*> pointers();
  std::vector<const uint8_t*> const_pointers() const;

 private:
  size_t strip_len_;
  std::unique_ptr<uint8_t[]> storage_;
  uint8_t* base_ = nullptr;  // 4K-aligned start inside storage_
  std::vector<size_t> offsets_;
};

}  // namespace xorec::runtime
