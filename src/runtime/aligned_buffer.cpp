#include "runtime/aligned_buffer.hpp"

#include <cstring>

namespace xorec::runtime {

StripArena::StripArena(size_t count, size_t strip_len, size_t block_size, bool stagger)
    : strip_len_(strip_len) {
  offsets_.resize(count);
  // Per-strip stride: strip length rounded up to 4K, plus the stagger shift.
  const size_t base_stride = (strip_len + kCachePage - 1) / kCachePage * kCachePage;
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t shift = stagger ? (i * block_size) % kCachePage : 0;
    offsets_[i] = total + shift;
    total += base_stride + (stagger ? kCachePage : 0);
  }
  storage_ = std::make_unique<uint8_t[]>(total + kCachePage);
  const uintptr_t raw = reinterpret_cast<uintptr_t>(storage_.get());
  base_ = storage_.get() + ((kCachePage - raw % kCachePage) % kCachePage);
  std::memset(base_, 0, total);
}

std::vector<uint8_t*> StripArena::pointers() {
  std::vector<uint8_t*> p(count());
  for (size_t i = 0; i < count(); ++i) p[i] = strip(i);
  return p;
}

std::vector<const uint8_t*> StripArena::const_pointers() const {
  std::vector<const uint8_t*> p(count());
  for (size_t i = 0; i < count(); ++i) p[i] = strip(i);
  return p;
}

}  // namespace xorec::runtime
