// The JIT artifact cache (exec=jit): runtime-compiled native plans shared
// across processes through a persistent on-disk store.
//
// PR 8's LoweredProgram removed per-op operand resolution but every call
// still goes through a KernelTable function pointer. The logical endpoint of
// the paper's "EC as program optimization" framing is to emit real machine
// code per cached plan: the Executor prints its ExecProgram through
// runtime/codegen_c (offsets, arities, block size and NT-store decisions all
// baked into the source), drives the host C compiler
// (`cc -O2 -shared -fPIC`), and dlopens the result — one flat function, no
// slot table, no dispatch.
//
// Compiling costs tens of milliseconds, so artifacts persist on disk and are
// content-addressed: the 128-bit fingerprint (two independent 64-bit folds,
// same discipline as ec/PlanCache::fingerprint_matrix) covers the generated
// C source (which already encodes the plan, the codegen version banner and
// every baked decision), the ISA compile flags, and the compiler identity.
// A fleet of worker processes therefore pays ONE compile per (plan, block
// size class, ISA): the first process builds `<dir>/xorec_<fp>.so.tmp.<pid>`
// and rename(2)s it into place (atomic on POSIX — readers never observe a
// torn .so), racing processes serialize on a flock(2)'d `<fp>.lock` and find
// the artifact already present when they get the lock. A later process just
// dlopens. Artifacts that fail to load (truncated/corrupted files) are
// unlinked and rebuilt, counted in `rejected`.
//
// The cache feeds dlopen(), so its directory is treated as a trust boundary:
// before any artifact is read or written the directory must lstat as a real
// directory (not a symlink) owned by the current uid with no group/other
// access (mode 0700; lax modes on a dir we own are chmod'd down, anything
// else makes jit unavailable for the call). Each artifact additionally
// exports its own fingerprint as the `xorec_jit_fp` symbol, verified after
// dlopen — a swapped, stale, or hash-colliding .so is rejected and rebuilt
// rather than silently executed. The compiler runs via posix_spawnp with an
// argv vector (no shell), so cache paths are never shell-interpreted.
//
// Environment knobs:
//   XOREC_JIT_CACHE_DIR  artifact directory (default: $XDG_CACHE_HOME or
//                        $HOME/.cache + "/xorec-jit", falling back to
//                        $TMPDIR-or-/tmp + "/xorec-jit-<uid>"; created on
//                        demand, subject to the ownership checks above)
//   XOREC_JIT_DISABLE    non-empty: jit reports unavailable; exec=jit
//                        executors fall back to exec=lowered
//   XOREC_JIT_CC         host compiler command (default: first of cc, gcc,
//                        clang that answers --version)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kernel/xor_kernel.hpp"

namespace xorec::runtime {

/// The generated entry point's baked-mode signature (runtime/codegen_c.hpp):
/// run the whole plan over `strip_len` bytes of every strip. Jit modules
/// bake their block size, so `block_size` is accepted and ignored;
/// `scratch_arena` is the caller-owned arena of codegen_arena_bytes()
/// (ignored — may be null — when the baked scratch fits the stack).
using JitFn = void (*)(const uint8_t* const* in, uint8_t* const* out,
                       size_t strip_len, size_t block_size, uint8_t* scratch_arena);

/// 128-bit artifact identity: two independent 64-bit content folds. Both
/// halves appear in the artifact filename (32 hex digits) and in the
/// artifact's exported `xorec_jit_fp` symbol, so serving the wrong native
/// plan requires a simultaneous collision in two unrelated hash families
/// AND an on-disk file that bakes the colliding hex.
struct JitFingerprint {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  std::string hex() const;
};

/// Process-wide jit counters (snapshot via jit_cache_stats(); surfaced in
/// ServiceStats). `compiles` counts compiler invocations BY THIS PROCESS —
/// a warmed fleet member serves entirely out of `artifact_loads`.
struct JitCacheStats {
  size_t compiles = 0;        // compiler invocations (cold artifacts built)
  size_t artifact_loads = 0;  // on-disk .so dlopened (warm, no compiler)
  size_t memory_hits = 0;     // in-process memo hits (already dlopened)
  size_t fallbacks = 0;       // exec=jit requests degraded to exec=lowered
  size_t rejected = 0;        // corrupt/unloadable artifacts discarded
  uint64_t compile_ns = 0;    // wall time inside the host compiler
  uint64_t load_ns = 0;       // wall time in dlopen/dlsym of artifacts
};

/// One loaded artifact: owns the dlopen handle for its lifetime. Executors
/// hold these shared, so clearing the cache never unloads running code.
class JitModule {
 public:
  JitModule(void* handle, JitFn fn, std::string fp_hex, std::string path)
      : handle_(handle), fn_(fn), fp_hex_(std::move(fp_hex)), path_(std::move(path)) {}
  ~JitModule();

  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  JitFn fn() const { return fn_; }
  /// The 32-hex-digit content fingerprint this artifact was verified against.
  const std::string& fingerprint_hex() const { return fp_hex_; }
  /// The on-disk artifact this module was loaded from.
  const std::string& path() const { return path_; }

 private:
  void* handle_ = nullptr;
  JitFn fn_ = nullptr;
  std::string fp_hex_;
  std::string path_;
};

class JitCache {
 public:
  /// The process-wide instance every Executor compiles through.
  static JitCache& instance();

  /// A host compiler was found and XOREC_JIT_DISABLE is not set. The
  /// compiler probe runs once; the disable switch is consulted per call so
  /// tests can flip it.
  static bool available();
  /// The probed compiler command ("" when none) and its identity line (the
  /// first line of `--version`, folded into every fingerprint so artifacts
  /// from a different toolchain never collide).
  static const std::string& compiler_command();
  static const std::string& compiler_id();

  /// The artifact directory (XOREC_JIT_CACHE_DIR, else $XDG_CACHE_HOME /
  /// $HOME/.cache, else the per-uid tmp fallback), resolved per call and
  /// created on demand. get_or_compile refuses to use it unless it passes
  /// the ownership/mode/symlink checks in the header comment.
  static std::string cache_dir();

  /// Content fingerprint of one artifact: generated source x ISA compile
  /// flags x compiler id. The source text already bakes the plan, the
  /// codegen version and the block/NT decisions, so equal fingerprints mean
  /// byte-equivalent artifacts.
  static JitFingerprint fingerprint(const std::string& source, kernel::Isa isa);

  /// The compiled artifact for `source`: in-process memo, else dlopen of the
  /// on-disk artifact, else compile-and-publish under the cross-process
  /// lock. Returns nullptr when jit is unavailable or the compile fails
  /// (callers fall back to the lowered backend and note_fallback()).
  std::shared_ptr<const JitModule> get_or_compile(const std::string& source,
                                                  kernel::Isa isa,
                                                  const std::string& symbol);

  JitCacheStats stats() const;
  /// Called by the Executor when an exec=jit request degrades to lowered.
  void note_fallback();

  /// Drop the in-process memo (loaded modules stay alive through their
  /// shared owners). The next lookup re-loads from disk — how tests and
  /// bench_exec_backend measure the warm cross-process path without forking.
  void clear_memory_cache();
  void reset_stats_for_testing();

 private:
  JitCache() = default;

  std::shared_ptr<const JitModule> load_artifact(const std::string& path,
                                                 const std::string& fp_hex,
                                                 const std::string& symbol);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const JitModule>> memo_;
  // Per-fingerprint build serialization: same-process racers collapse onto
  // one compile without serializing unrelated plans.
  std::unordered_map<std::string, std::shared_ptr<std::mutex>> building_;

  std::atomic<size_t> compiles_{0}, artifact_loads_{0}, memory_hits_{0};
  std::atomic<size_t> fallbacks_{0}, rejected_{0};
  std::atomic<uint64_t> compile_ns_{0}, load_ns_{0};
};

/// JitCache::instance().stats() — the ServiceStats/bench accessor.
JitCacheStats jit_cache_stats();

}  // namespace xorec::runtime
