// The blocked SLP interpreter (§6.1): runs an ExecProgram over strips in
// B-byte blocks so all the pebbles of one iteration stay cache-resident,
// with optional thread-level parallelism over the strip length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "kernel/xor_kernel.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/exec_program.hpp"

namespace xorec::runtime {

struct ExecOptions {
  size_t block_size = 2048;               // B of the blocking technique
  kernel::Isa isa = kernel::Isa::Auto;
  size_t threads = 1;                      // 1 = run on the calling thread
  bool stagger_scratch = true;             // §7.4 anti-conflict layout
  /// §8's software-prefetch direction: while executing block i, issue
  /// prefetches for the *input* strips of block i+1 so loads overlap the
  /// in-cache XOR work. 0 disables.
  bool prefetch_next_block = false;
};

/// Owns the scratch pebble arenas for one compiled program at one block
/// size; reusable across calls. run() is thread-safe: with threads == 1
/// concurrent callers draw private scratch from a freelist (the BatchCoder
/// stripe-parallel path), with threads > 1 concurrent calls serialize on
/// the fork-join pool's per-worker arenas.
class Executor {
 public:
  Executor(ExecProgram program, ExecOptions opt = {});

  const ExecProgram& program() const { return prog_; }
  const ExecOptions& options() const { return opt_; }

  /// inputs:  num_inputs strip pointers, each strip_len bytes.
  /// outputs: num_outputs strip pointers, each strip_len bytes.
  /// Any strip_len is accepted (the last block may be short).
  void run(const uint8_t* const* inputs, uint8_t* const* outputs, size_t strip_len) const;

 private:
  /// One worker's private pebble storage.
  struct Scratch {
    StripArena arena;
    std::vector<uint8_t*> ptrs;
    Scratch(const ExecProgram& prog, const ExecOptions& opt)
        : arena(prog.num_scratch, opt.block_size, opt.block_size, opt.stagger_scratch),
          ptrs(arena.pointers()) {}
  };

  void run_range(const uint8_t* const* inputs, uint8_t* const* outputs, size_t begin,
                 size_t end, uint8_t* const* scratch) const;
  std::unique_ptr<Scratch> acquire_scratch() const;
  void release_scratch(std::unique_ptr<Scratch> s) const;

  ExecProgram prog_;
  ExecOptions opt_;
  kernel::XorManyFn kernel_;
  std::vector<std::unique_ptr<Scratch>> worker_scratch_;  // threads > 1 path
  mutable std::mutex scratch_mu_;                          // guards the freelist
  mutable std::vector<std::unique_ptr<Scratch>> free_scratch_;
};

}  // namespace xorec::runtime
