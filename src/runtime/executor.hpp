// The blocked SLP execution engine (§6.1): runs a compiled program over
// strips in B-byte blocks so all the pebbles of one iteration stay
// cache-resident, with optional thread-level parallelism over the strip
// length. Two backends share the blocking loop:
//   exec=interp   — walk the ExecProgram, resolving operands per instruction
//                   per block through the variadic xor_many kernel;
//   exec=lowered  — run the straight-line LoweredProgram of pre-resolved
//                   fixed-arity/accumulate kernel calls (lowered once, in
//                   this constructor; see runtime/lowered_program.hpp);
//   exec=jit      — call one flat native function compiled at construction
//                   from the program's generated C source through the host
//                   compiler and the cross-process artifact cache
//                   (runtime/jit_cache.hpp); falls back to lowered when no
//                   compiler is available.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "kernel/xor_kernel.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/codegen_c.hpp"
#include "runtime/exec_program.hpp"
#include "runtime/jit_cache.hpp"
#include "runtime/lowered_program.hpp"

namespace xorec::runtime {

/// Execution backend (spec key exec=). Plain Auto resolves to Lowered at
/// Executor level (the measured three-way autotune lives in api/autotune);
/// the interpreter survives as the reference semantics and for differential
/// testing. Jit is appended after Auto so the pre-existing numeric values —
/// baked into plan-cache fingerprints — are unchanged.
enum class ExecBackend : uint8_t { Interp, Lowered, Auto, Jit };

const char* exec_backend_name(ExecBackend b);
/// "interp"/"lowered"/"auto"/"jit" -> backend; nullopt for anything else.
std::optional<ExecBackend> parse_exec_backend(const char* name);

/// The XOREC_FORCE_EXEC override (mirror of kernel::forced_isa): when set to
/// a parseable backend name, every Executor runs that backend regardless of
/// its options. The environment is consulted once; the test hook replaces
/// the resolved value.
std::optional<ExecBackend> forced_exec_backend();
void set_forced_exec_backend_for_testing(std::optional<ExecBackend> b);

struct ExecOptions {
  size_t block_size = 2048;               // B of the blocking technique
  kernel::Isa isa = kernel::Isa::Auto;
  size_t threads = 1;                      // 1 = run on the calling thread
  bool stagger_scratch = true;             // §7.4 anti-conflict layout
  /// §8's software-prefetch direction: while executing block i, issue
  /// prefetches for the *input* strips of block i+1 so loads overlap the
  /// in-cache XOR work. 0 disables.
  bool prefetch_next_block = false;
  ExecBackend backend = ExecBackend::Auto;
  /// Lowered backend only: blocks at least this large may use non-temporal
  /// stores for output strips no later instruction re-reads. The default
  /// keeps NT off for cache-blocked sizes (streaming past the cache only
  /// pays once a block outgrows it).
  size_t nt_threshold = 256 * 1024;
};

/// Executor scratch-freelist counters (see Executor::scratch_stats).
struct ScratchStats {
  size_t free = 0;        // arenas parked in the freelist now
  size_t high_water = 0;  // max concurrently-running run() callers seen
  size_t allocated = 0;   // total arenas ever constructed
  size_t dropped = 0;     // arenas freed instead of parked (freelist at cap)
};

/// Owns the scratch pebble arenas for one compiled program at one block
/// size; reusable across calls. run() is thread-safe: with threads == 1
/// concurrent callers draw private scratch from a freelist (the BatchCoder
/// stripe-parallel path), with threads > 1 concurrent calls serialize on
/// the fork-join pool's per-worker arenas. The freelist is bounded by the
/// high-water concurrency actually observed, so a burst of callers cannot
/// permanently pin burst-many arenas.
class Executor {
 public:
  Executor(ExecProgram program, ExecOptions opt = {});

  const ExecProgram& program() const { return prog_; }
  const ExecOptions& options() const { return opt_; }

  /// The backend/ISA this executor actually runs (after Auto resolution,
  /// host capability degrade, and the XOREC_FORCE_ISA override).
  ExecBackend backend() const { return backend_; }
  kernel::Isa isa() const { return isa_; }
  /// The lowered form, when backend() == Lowered (instruction-mix
  /// introspection for tests/benches).
  const LoweredProgram* lowered() const { return lowered_.get(); }
  /// The loaded jit artifact, when backend() == Jit (fingerprint/path
  /// introspection for tests/benches). Null for empty programs.
  const JitModule* jit_module() const { return jit_.get(); }

  ScratchStats scratch_stats() const;

  /// inputs:  num_inputs strip pointers, each strip_len bytes.
  /// outputs: num_outputs strip pointers, each strip_len bytes.
  /// Any strip_len is accepted (the last block may be short).
  void run(const uint8_t* const* inputs, uint8_t* const* outputs, size_t strip_len) const;

 private:
  /// One worker's private pebble storage (plus the lowered backend's slot
  /// and argument tables, so run() never allocates).
  struct Scratch {
    StripArena arena;
    std::vector<uint8_t*> ptrs;
    std::unique_ptr<LoweredProgram::State> lowered_state;
    // Jit path: per-worker shifted strip-pointer tables, plus the baked
    // form's caller-owned scratch arena when the pebbles outgrow the
    // generated function's stack (codegen_arena_bytes; empty otherwise).
    // Allocating here, not inside the generated code, means an allocation
    // failure throws like any other — it can never be swallowed mid-encode.
    std::vector<const uint8_t*> jit_in;
    std::vector<uint8_t*> jit_out;
    std::vector<uint8_t> jit_arena;
    Scratch(const ExecProgram& prog, const ExecOptions& opt, const LoweredProgram* lp,
            bool jit)
        : arena(jit ? 0 : prog.num_scratch, opt.block_size, opt.block_size,
                opt.stagger_scratch),
          ptrs(arena.pointers()) {
      if (lp) lowered_state = std::make_unique<LoweredProgram::State>(*lp);
      if (jit) {
        jit_in.resize(prog.num_inputs);
        jit_out.resize(prog.num_outputs);
        jit_arena.resize(codegen_arena_bytes(prog.num_scratch, opt.block_size));
      }
    }
  };

  void run_range(const uint8_t* const* inputs, uint8_t* const* outputs, size_t begin,
                 size_t end, Scratch& scratch) const;
  std::unique_ptr<Scratch> acquire_scratch() const;
  void release_scratch(std::unique_ptr<Scratch> s) const;

  ExecProgram prog_;
  ExecOptions opt_;
  kernel::XorManyFn kernel_;
  ExecBackend backend_ = ExecBackend::Interp;
  kernel::Isa isa_ = kernel::Isa::Scalar;
  std::unique_ptr<const LoweredProgram> lowered_;
  std::shared_ptr<const JitModule> jit_;  // shared: cache eviction never unloads us
  JitFn jit_fn_ = nullptr;
  std::vector<std::unique_ptr<Scratch>> worker_scratch_;  // threads > 1 path
  mutable std::mutex scratch_mu_;  // guards the freelist + counters below
  mutable std::vector<std::unique_ptr<Scratch>> free_scratch_;
  mutable size_t scratch_in_use_ = 0;
  mutable size_t scratch_high_water_ = 0;
  mutable size_t scratch_allocated_ = 0;
  mutable size_t scratch_dropped_ = 0;
};

}  // namespace xorec::runtime
