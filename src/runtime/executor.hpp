// The blocked SLP interpreter (§6.1): runs an ExecProgram over strips in
// B-byte blocks so all the pebbles of one iteration stay cache-resident,
// with optional thread-level parallelism over the strip length.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernel/xor_kernel.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/exec_program.hpp"

namespace xorec::runtime {

struct ExecOptions {
  size_t block_size = 2048;               // B of the blocking technique
  kernel::Isa isa = kernel::Isa::Auto;
  size_t threads = 1;                      // 1 = run on the calling thread
  bool stagger_scratch = true;             // §7.4 anti-conflict layout
  /// §8's software-prefetch direction: while executing block i, issue
  /// prefetches for the *input* strips of block i+1 so loads overlap the
  /// in-cache XOR work. 0 disables.
  bool prefetch_next_block = false;
};

/// Owns the scratch pebble arenas (one per worker) for one compiled program
/// at one block size; reusable across calls, not thread-safe per instance.
class Executor {
 public:
  Executor(ExecProgram program, ExecOptions opt = {});

  const ExecProgram& program() const { return prog_; }
  const ExecOptions& options() const { return opt_; }

  /// inputs:  num_inputs strip pointers, each strip_len bytes.
  /// outputs: num_outputs strip pointers, each strip_len bytes.
  /// Any strip_len is accepted (the last block may be short).
  void run(const uint8_t* const* inputs, uint8_t* const* outputs, size_t strip_len) const;

 private:
  void run_range(const uint8_t* const* inputs, uint8_t* const* outputs, size_t begin,
                 size_t end, uint8_t* const* scratch) const;

  ExecProgram prog_;
  ExecOptions opt_;
  kernel::XorManyFn kernel_;
  std::vector<StripArena> scratch_arenas_;          // one per worker
  std::vector<std::vector<uint8_t*>> scratch_ptrs_;  // cached pointer tables
};

}  // namespace xorec::runtime
