#include "runtime/jit_cache.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <spawn.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

extern char** environ;

namespace xorec::runtime {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t elapsed_ns(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv_bytes(uint64_t h, const char* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The fingerprint's second, structurally unrelated fold (splitmix over
/// 64-bit words + a length-salted tail): a source pair colliding under FNV-1a
/// stays separated here, so the combined 128-bit identity never serves the
/// wrong native plan.
uint64_t splitmix_bytes(uint64_t h, const char* data, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = splitmix(h ^ w);
  }
  uint64_t tail = 0;
  for (size_t j = 0; i < len; ++i, ++j)
    tail |= static_cast<uint64_t>(static_cast<uint8_t>(data[i])) << (8 * j);
  h = splitmix(h ^ tail);
  return splitmix(h ^ static_cast<uint64_t>(len));
}

/// Compile flags matching one kernel ISA family, so the generated source's
/// `#if defined(__AVX2__)` NT-store bodies resolve the way the plan assumed.
/// Scalar/Word64 share the portable flag set (and thus artifacts — the C
/// source is identical; the compiler's vectorizer decides the rest).
const char* isa_cflags(kernel::Isa isa) {
  switch (isa) {
    case kernel::Isa::Avx2: return "-mavx2";
    case kernel::Isa::Avx512: return "-mavx512f -mavx512bw";
    default: return "";
  }
}

/// Whitespace-split into argv tokens (XOREC_JIT_CC may be "ccache gcc"; the
/// avx512 flag set is two flags in one string).
void split_args(const std::string& s, std::vector<std::string>& out) {
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == ' ') ++i;
    size_t j = i;
    while (j < s.size() && s[j] != ' ') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
}

/// First line of `cmd --version`, empty when the command fails. Used both as
/// the availability probe and the fingerprint's compiler identity.
std::string version_line(const std::string& cmd) {
  FILE* pipe = ::popen((cmd + " --version 2>/dev/null").c_str(), "r");
  if (!pipe) return {};
  char buf[256] = {0};
  std::string line;
  if (std::fgets(buf, sizeof(buf), pipe)) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
  }
  // Drain so pclose sees a clean exit status.
  while (std::fgets(buf, sizeof(buf), pipe)) {
  }
  if (::pclose(pipe) != 0) return {};
  return line;
}

struct CompilerProbe {
  std::string command;  // "" = no working compiler
  std::string id;
};

/// XOREC_JIT_CC, else the first of cc/gcc/clang answering --version.
/// Memoized: the toolchain does not change under a running process.
const CompilerProbe& compiler_probe() {
  static const CompilerProbe probe = [] {
    CompilerProbe p;
    const char* forced = std::getenv("XOREC_JIT_CC");
    if (forced && *forced) {
      p.id = version_line(forced);
      if (!p.id.empty()) p.command = forced;
      return p;
    }
    for (const char* cand : {"cc", "gcc", "clang"}) {
      p.id = version_line(cand);
      if (!p.id.empty()) {
        p.command = cand;
        return p;
      }
    }
    return p;
  }();
  return probe;
}

bool jit_disabled() {
  const char* v = std::getenv("XOREC_JIT_DISABLE");
  return v && *v;
}

bool make_dirs(const std::string& path) {
  // mkdir -p: each prefix in turn; EEXIST is success. 0700 throughout — the
  // artifact dir is private to this uid by construction.
  for (size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    const std::string prefix = path.substr(0, pos);
    if (::mkdir(prefix.c_str(), 0700) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// The artifact dir feeds dlopen(), so it is a trust boundary: a real
/// directory (lstat — a planted symlink is rejected even if its target
/// passes every other check), owned by this uid, with no group/other access.
/// A lax mode on a dir we own is chmod'd down to 0700; anything else —
/// foreign owner, symlink, unfixable mode — makes the call fail (callers
/// fall back to lowered). Under a sticky /tmp no other user can replace a
/// directory that passed this check, and 0700 means nobody else can plant or
/// swap .so files inside it.
bool secure_dir(const std::string& path) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) return false;
  if (!S_ISDIR(st.st_mode) || st.st_uid != ::getuid()) return false;
  if ((st.st_mode & 077) == 0) return true;
  if (::chmod(path.c_str(), 0700) != 0) return false;
  return ::lstat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode) &&
         st.st_uid == ::getuid() && (st.st_mode & 077) == 0;
}

/// argv-vector compiler invocation via posix_spawnp: no shell between us and
/// the compiler, so cache paths with spaces or metacharacters are plain
/// arguments. Child stdout/stderr go to /dev/null.
bool run_compiler(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  posix_spawn_file_actions_t fa;
  if (::posix_spawn_file_actions_init(&fa) != 0) return false;
  ::posix_spawn_file_actions_addopen(&fa, STDOUT_FILENO, "/dev/null", O_WRONLY, 0);
  ::posix_spawn_file_actions_addopen(&fa, STDERR_FILENO, "/dev/null", O_WRONLY, 0);
  pid_t pid = 0;
  const int rc = ::posix_spawnp(&pid, argv[0], &fa, nullptr, argv.data(), environ);
  ::posix_spawn_file_actions_destroy(&fa);
  if (rc != 0) return false;

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return false;
  }
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// The exported self-identity definition appended to every compiled TU (the
/// fingerprint is computed over the source WITHOUT this suffix, so there is
/// no circularity). load_artifact dlsym's it back and compares.
constexpr char kFpSymbol[] = "xorec_jit_fp";

std::string fp_guard_suffix(const std::string& fp_hex) {
  return "\nconst char " + std::string(kFpSymbol) + "[] = \"" + fp_hex + "\";\n";
}

/// RAII flock on `<dir>/xorec_<fp>.lock`: the cross-process single-compile
/// guarantee. flock serializes distinct open file descriptions, so it also
/// covers threads that raced past the in-process memo.
struct ArtifactLock {
  int fd = -1;
  explicit ArtifactLock(const std::string& lock_path) {
    fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC | O_NOFOLLOW, 0600);
    if (fd >= 0 && ::flock(fd, LOCK_EX) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~ArtifactLock() {
    if (fd >= 0) ::close(fd);  // closing releases the flock
  }
  bool held() const { return fd >= 0; }
};

}  // namespace

std::string JitFingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx", static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

JitModule::~JitModule() {
  if (handle_) ::dlclose(handle_);
}

JitCache& JitCache::instance() {
  static JitCache* cache = new JitCache;  // leaky: outlives static codecs
  return *cache;
}

bool JitCache::available() {
  return !jit_disabled() && !compiler_probe().command.empty();
}

const std::string& JitCache::compiler_command() { return compiler_probe().command; }
const std::string& JitCache::compiler_id() { return compiler_probe().id; }

std::string JitCache::cache_dir() {
  if (const char* dir = std::getenv("XOREC_JIT_CACHE_DIR"); dir && *dir) return dir;
  const auto join = [](std::string base, const std::string& leaf) {
    while (!base.empty() && base.back() == '/') base.pop_back();
    return base + leaf;
  };
  // Home-anchored cache first: unlike /tmp it is not a shared world-writable
  // namespace, so nobody can have pre-claimed the path.
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
    return join(xdg, "/xorec-jit");
  if (const char* home = std::getenv("HOME"); home && *home)
    return join(home, "/.cache/xorec-jit");
  const char* tmp = std::getenv("TMPDIR");
  return join(tmp && *tmp ? tmp : "/tmp",
              "/xorec-jit-" + std::to_string(static_cast<unsigned long>(::getuid())));
}

JitFingerprint JitCache::fingerprint(const std::string& source, kernel::Isa isa) {
  JitFingerprint fp;
  fp.h1 = kFnvOffset;
  fp.h2 = 0x6a09e667f3bcc908ull;  // arbitrary non-FNV seed
  const auto fold = [&fp](const char* data, size_t len) {
    fp.h1 = fnv_bytes(fp.h1, data, len);
    fp.h2 = splitmix_bytes(fp.h2, data, len);
  };
  fold(source.data(), source.size());
  const char* flags = isa_cflags(isa);
  fold(flags, std::char_traits<char>::length(flags));
  const std::string& id = compiler_probe().id;
  fold(id.data(), id.size());
  return fp;
}

std::shared_ptr<const JitModule> JitCache::load_artifact(const std::string& path,
                                                         const std::string& fp_hex,
                                                         const std::string& symbol) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) return nullptr;
  void* sym = ::dlsym(handle, symbol.c_str());
  // Self-identity check: the artifact's baked fingerprint must match what we
  // asked for. Catches a swapped/planted .so and any residual filename-hash
  // collision before a single instruction of it runs.
  const char* baked = reinterpret_cast<const char*>(::dlsym(handle, kFpSymbol));
  if (!sym || !baked || fp_hex != baked) {
    ::dlclose(handle);
    return nullptr;
  }
  return std::make_shared<JitModule>(handle, reinterpret_cast<JitFn>(sym), fp_hex, path);
}

std::shared_ptr<const JitModule> JitCache::get_or_compile(const std::string& source,
                                                          kernel::Isa isa,
                                                          const std::string& symbol) {
  if (!available()) return nullptr;
  const std::string fp = fingerprint(source, isa).hex();

  std::shared_ptr<std::mutex> build_mu;
  {
    std::lock_guard lk(mu_);
    if (auto it = memo_.find(fp); it != memo_.end()) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    auto& slot = building_[fp];
    if (!slot) slot = std::make_shared<std::mutex>();
    build_mu = slot;
  }
  // One builder per fingerprint per process; losers of this lock find the
  // memo populated when they re-check.
  std::lock_guard build_lk(*build_mu);
  {
    std::lock_guard lk(mu_);
    if (auto it = memo_.find(fp); it != memo_.end()) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  const std::string dir = cache_dir();
  if (!make_dirs(dir) || !secure_dir(dir)) return nullptr;
  const std::string stem = dir + "/xorec_" + fp;
  const std::string so_path = stem + ".so";

  // Fast path: another process already published the artifact. Artifacts
  // only ever appear via rename(2), so a visible file is complete; a file
  // that still fails to load is corruption, handled under the lock below.
  auto t0 = Clock::now();
  if (auto m = load_artifact(so_path, fp, symbol)) {
    load_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
    artifact_loads_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lk(mu_);
    memo_[fp] = m;
    return m;
  }

  ArtifactLock flk(stem + ".lock");
  if (!flk.held()) return nullptr;

  // Re-check under the cross-process lock: a racing process may have
  // finished the compile while we waited.
  struct stat st{};
  const bool existed = ::stat(so_path.c_str(), &st) == 0;
  t0 = Clock::now();
  if (existed) {
    if (auto m = load_artifact(so_path, fp, symbol)) {
      load_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
      artifact_loads_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lk(mu_);
      memo_[fp] = m;
      return m;
    }
    // Present but unloadable: truncated or damaged. Discard and rebuild.
    ::unlink(so_path.c_str());
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  const std::string c_path = stem + "." + pid + ".c";
  const std::string tmp_so = so_path + ".tmp." + pid;
  {
    std::ofstream out(c_path, std::ios::trunc);
    out << source << fp_guard_suffix(fp);
    if (!out) {
      ::unlink(c_path.c_str());
      return nullptr;
    }
  }
  std::vector<std::string> args;
  split_args(compiler_probe().command, args);
  args.insert(args.end(), {"-O2", "-shared", "-fPIC"});
  split_args(isa_cflags(isa), args);
  args.insert(args.end(), {"-o", tmp_so, c_path});
  t0 = Clock::now();
  const bool compiled = run_compiler(args);
  compile_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  compiles_.fetch_add(1, std::memory_order_relaxed);
  ::unlink(c_path.c_str());
  if (!compiled) {
    ::unlink(tmp_so.c_str());
    return nullptr;
  }
  // Atomic publish: concurrent readers see either no artifact or a whole one.
  if (::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    ::unlink(tmp_so.c_str());
    return nullptr;
  }

  t0 = Clock::now();
  auto m = load_artifact(so_path, fp, symbol);
  if (!m) {
    ::unlink(so_path.c_str());
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  load_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  std::lock_guard lk(mu_);
  memo_[fp] = m;
  return m;
}

JitCacheStats JitCache::stats() const {
  JitCacheStats s;
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.artifact_loads = artifact_loads_.load(std::memory_order_relaxed);
  s.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.compile_ns = compile_ns_.load(std::memory_order_relaxed);
  s.load_ns = load_ns_.load(std::memory_order_relaxed);
  return s;
}

void JitCache::note_fallback() { fallbacks_.fetch_add(1, std::memory_order_relaxed); }

void JitCache::clear_memory_cache() {
  std::lock_guard lk(mu_);
  memo_.clear();
}

void JitCache::reset_stats_for_testing() {
  compiles_.store(0);
  artifact_loads_.store(0);
  memory_hits_.store(0);
  fallbacks_.store(0);
  rejected_.store(0);
  compile_ns_.store(0);
  load_ns_.store(0);
}

JitCacheStats jit_cache_stats() { return JitCache::instance().stats(); }

}  // namespace xorec::runtime
