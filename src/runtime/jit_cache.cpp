#include "runtime/jit_cache.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace xorec::runtime {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t elapsed_ns(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv_bytes(uint64_t h, const char* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Compile flags matching one kernel ISA family, so the generated source's
/// `#if defined(__AVX2__)` NT-store bodies resolve the way the plan assumed.
/// Scalar/Word64 share the portable flag set (and thus artifacts — the C
/// source is identical; the compiler's vectorizer decides the rest).
const char* isa_cflags(kernel::Isa isa) {
  switch (isa) {
    case kernel::Isa::Avx2: return "-mavx2";
    case kernel::Isa::Avx512: return "-mavx512f -mavx512bw";
    default: return "";
  }
}

/// First line of `cmd --version`, empty when the command fails. Used both as
/// the availability probe and the fingerprint's compiler identity.
std::string version_line(const std::string& cmd) {
  FILE* pipe = ::popen((cmd + " --version 2>/dev/null").c_str(), "r");
  if (!pipe) return {};
  char buf[256] = {0};
  std::string line;
  if (std::fgets(buf, sizeof(buf), pipe)) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
  }
  // Drain so pclose sees a clean exit status.
  while (std::fgets(buf, sizeof(buf), pipe)) {
  }
  if (::pclose(pipe) != 0) return {};
  return line;
}

struct CompilerProbe {
  std::string command;  // "" = no working compiler
  std::string id;
};

/// XOREC_JIT_CC, else the first of cc/gcc/clang answering --version.
/// Memoized: the toolchain does not change under a running process.
const CompilerProbe& compiler_probe() {
  static const CompilerProbe probe = [] {
    CompilerProbe p;
    const char* forced = std::getenv("XOREC_JIT_CC");
    if (forced && *forced) {
      p.id = version_line(forced);
      if (!p.id.empty()) p.command = forced;
      return p;
    }
    for (const char* cand : {"cc", "gcc", "clang"}) {
      p.id = version_line(cand);
      if (!p.id.empty()) {
        p.command = cand;
        return p;
      }
    }
    return p;
  }();
  return probe;
}

bool jit_disabled() {
  const char* v = std::getenv("XOREC_JIT_DISABLE");
  return v && *v;
}

std::string fp_hex(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

bool make_dirs(const std::string& path) {
  // mkdir -p: each prefix in turn; EEXIST is success.
  for (size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    const std::string prefix = path.substr(0, pos);
    if (::mkdir(prefix.c_str(), 0700) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// RAII flock on `<dir>/xorec_<fp>.lock`: the cross-process single-compile
/// guarantee. flock serializes distinct open file descriptions, so it also
/// covers threads that raced past the in-process memo.
struct ArtifactLock {
  int fd = -1;
  explicit ArtifactLock(const std::string& lock_path) {
    fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd >= 0 && ::flock(fd, LOCK_EX) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~ArtifactLock() {
    if (fd >= 0) ::close(fd);  // closing releases the flock
  }
  bool held() const { return fd >= 0; }
};

}  // namespace

JitModule::~JitModule() {
  if (handle_) ::dlclose(handle_);
}

JitCache& JitCache::instance() {
  static JitCache* cache = new JitCache;  // leaky: outlives static codecs
  return *cache;
}

bool JitCache::available() {
  return !jit_disabled() && !compiler_probe().command.empty();
}

const std::string& JitCache::compiler_command() { return compiler_probe().command; }
const std::string& JitCache::compiler_id() { return compiler_probe().id; }

std::string JitCache::cache_dir() {
  if (const char* dir = std::getenv("XOREC_JIT_CACHE_DIR"); dir && *dir) return dir;
  const char* tmp = std::getenv("TMPDIR");
  std::string base = tmp && *tmp ? tmp : "/tmp";
  if (!base.empty() && base.back() == '/') base.pop_back();
  return base + "/xorec-jit-" + std::to_string(static_cast<unsigned long>(::getuid()));
}

uint64_t JitCache::fingerprint(const std::string& source, kernel::Isa isa) {
  uint64_t h = kFnvOffset;
  h = fnv_bytes(h, source.data(), source.size());
  const char* flags = isa_cflags(isa);
  h = fnv_bytes(h, flags, std::char_traits<char>::length(flags));
  const std::string& id = compiler_probe().id;
  h = fnv_bytes(h, id.data(), id.size());
  return h;
}

std::shared_ptr<const JitModule> JitCache::load_artifact(const std::string& path,
                                                         uint64_t fp,
                                                         const std::string& symbol) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) return nullptr;
  void* sym = ::dlsym(handle, symbol.c_str());
  if (!sym) {
    ::dlclose(handle);
    return nullptr;
  }
  return std::make_shared<JitModule>(handle, reinterpret_cast<JitFn>(sym), fp, path);
}

std::shared_ptr<const JitModule> JitCache::get_or_compile(const std::string& source,
                                                          kernel::Isa isa,
                                                          const std::string& symbol) {
  if (!available()) return nullptr;
  const uint64_t fp = fingerprint(source, isa);

  std::shared_ptr<std::mutex> build_mu;
  {
    std::lock_guard lk(mu_);
    if (auto it = memo_.find(fp); it != memo_.end()) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    auto& slot = building_[fp];
    if (!slot) slot = std::make_shared<std::mutex>();
    build_mu = slot;
  }
  // One builder per fingerprint per process; losers of this lock find the
  // memo populated when they re-check.
  std::lock_guard build_lk(*build_mu);
  {
    std::lock_guard lk(mu_);
    if (auto it = memo_.find(fp); it != memo_.end()) {
      memory_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  const std::string dir = cache_dir();
  if (!make_dirs(dir)) return nullptr;
  const std::string stem = dir + "/xorec_" + fp_hex(fp);
  const std::string so_path = stem + ".so";

  // Fast path: another process already published the artifact. Artifacts
  // only ever appear via rename(2), so a visible file is complete; a file
  // that still fails to load is corruption, handled under the lock below.
  auto t0 = Clock::now();
  if (auto m = load_artifact(so_path, fp, symbol)) {
    load_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
    artifact_loads_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lk(mu_);
    memo_[fp] = m;
    return m;
  }

  ArtifactLock flk(stem + ".lock");
  if (!flk.held()) return nullptr;

  // Re-check under the cross-process lock: a racing process may have
  // finished the compile while we waited.
  struct stat st{};
  const bool existed = ::stat(so_path.c_str(), &st) == 0;
  t0 = Clock::now();
  if (existed) {
    if (auto m = load_artifact(so_path, fp, symbol)) {
      load_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
      artifact_loads_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lk(mu_);
      memo_[fp] = m;
      return m;
    }
    // Present but unloadable: truncated or damaged. Discard and rebuild.
    ::unlink(so_path.c_str());
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  const std::string c_path = stem + "." + pid + ".c";
  const std::string tmp_so = so_path + ".tmp." + pid;
  {
    std::ofstream out(c_path, std::ios::trunc);
    out << source;
    if (!out) {
      ::unlink(c_path.c_str());
      return nullptr;
    }
  }
  const std::string cmd = compiler_probe().command + " -O2 -shared -fPIC " +
                          isa_cflags(isa) + " -o " + tmp_so + " " + c_path +
                          " 2>/dev/null";
  t0 = Clock::now();
  const int rc = std::system(cmd.c_str());
  compile_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  compiles_.fetch_add(1, std::memory_order_relaxed);
  ::unlink(c_path.c_str());
  if (rc != 0) {
    ::unlink(tmp_so.c_str());
    return nullptr;
  }
  // Atomic publish: concurrent readers see either no artifact or a whole one.
  if (::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    ::unlink(tmp_so.c_str());
    return nullptr;
  }

  t0 = Clock::now();
  auto m = load_artifact(so_path, fp, symbol);
  if (!m) {
    ::unlink(so_path.c_str());
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  load_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
  std::lock_guard lk(mu_);
  memo_[fp] = m;
  return m;
}

JitCacheStats JitCache::stats() const {
  JitCacheStats s;
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.artifact_loads = artifact_loads_.load(std::memory_order_relaxed);
  s.memory_hits = memory_hits_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.compile_ns = compile_ns_.load(std::memory_order_relaxed);
  s.load_ns = load_ns_.load(std::memory_order_relaxed);
  return s;
}

void JitCache::note_fallback() { fallbacks_.fetch_add(1, std::memory_order_relaxed); }

void JitCache::clear_memory_cache() {
  std::lock_guard lk(mu_);
  memo_.clear();
}

void JitCache::reset_stats_for_testing() {
  compiles_.store(0);
  artifact_loads_.store(0);
  memory_hits_.store(0);
  fallbacks_.store(0);
  rejected_.store(0);
  compile_ns_.store(0);
  load_ns_.store(0);
}

JitCacheStats jit_cache_stats() { return JitCache::instance().stats(); }

}  // namespace xorec::runtime
