#include "runtime/codegen_c.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

namespace xorec::runtime {

namespace {

std::string operand_expr(const Operand& s, bool block_relative) {
  std::ostringstream os;
  switch (s.space) {
    case Space::In:
      os << "in[" << s.index << "]";
      if (block_relative) os << " + off";
      break;
    case Space::Out:
      os << "out[" << s.index << "]";
      if (block_relative) os << " + off";
      break;
    case Space::Scratch:
      os << "scratch" << s.index;
      break;
  }
  return os.str();
}

bool same_operand(const Operand& a, const Operand& b) {
  return a.space == b.space && a.index == b.index;
}

/// The byte-granular XOR expression `s0[i] ^ s1[i] ^ ...` for arity k.
std::string byte_xor_expr(size_t k) {
  std::ostringstream os;
  for (size_t j = 0; j < k; ++j) {
    if (j) os << " ^ ";
    os << "s" << j << "[i]";
  }
  return os.str();
}

/// Emit the XOR helper for one arity: an explicitly vectorized body (AVX-512
/// / AVX2, matching whatever -m flags the jit cache compiled this TU with)
/// over a word-64 + byte tail. Explicit intrinsics rather than
/// auto-vectorization keep the generated plans competitive with the
/// hand-written AOT kernels at -O2. No `restrict`: accumulate ops may pass
/// dst as one of the sources (exact aliasing, which per-chunk
/// load-all-then-store handles).
void emit_xor_helper(std::ostringstream& os, size_t k) {
  os << "static void xor" << k << "(uint8_t* dst";
  for (size_t j = 0; j < k; ++j) os << ", const uint8_t* s" << j;
  os << ", size_t len) {\n";
  os << "  size_t i = 0;\n";
  os << "#if defined(__AVX512F__)\n";
  os << "  for (; i + 64 <= len; i += 64) {\n";
  os << "    __m512i acc = _mm512_loadu_si512((const void*)(s0 + i));\n";
  for (size_t j = 1; j < k; ++j) {
    os << "    acc = _mm512_xor_si512(acc, _mm512_loadu_si512((const void*)(s" << j
       << " + i)));\n";
  }
  os << "    _mm512_storeu_si512((void*)(dst + i), acc);\n";
  os << "  }\n";
  os << "#elif defined(__AVX2__)\n";
  os << "  for (; i + 32 <= len; i += 32) {\n";
  os << "    __m256i acc = _mm256_loadu_si256((const __m256i*)(s0 + i));\n";
  for (size_t j = 1; j < k; ++j) {
    os << "    acc = _mm256_xor_si256(acc, _mm256_loadu_si256((const __m256i*)(s" << j
       << " + i)));\n";
  }
  os << "    _mm256_storeu_si256((__m256i*)(dst + i), acc);\n";
  os << "  }\n";
  os << "#endif\n";
  os << "  for (; i + 8 <= len; i += 8) {\n";
  os << "    uint64_t acc" << (k > 1 ? ", w" : "") << ";\n";
  os << "    memcpy(&acc, s0 + i, 8);\n";
  for (size_t j = 1; j < k; ++j) {
    os << "    memcpy(&w, s" << j << " + i, 8); acc ^= w;\n";
  }
  os << "    memcpy(dst + i, &acc, 8);\n";
  os << "  }\n";
  os << "  for (; i < len; ++i) {\n";
  os << "    uint8_t acc = s0[i];\n";
  for (size_t j = 1; j < k; ++j) os << "    acc ^= s" << j << "[i];\n";
  os << "    dst[i] = acc;\n";
  os << "  }\n";
  os << "}\n\n";
}

/// Emit the streaming-store variant for one arity: AVX2 non-temporal stores
/// when the translation unit is compiled with -mavx2 (the jit cache passes
/// ISA-matched flags), else a call into the plain helper. Mirrors the
/// alignment discipline of the lowered backend's xor_many_nt kernels: scalar
/// head until dst is 32-byte aligned, streamed body, sfence, byte tail.
void emit_xor_nt_helper(std::ostringstream& os, size_t k) {
  os << "static void xor" << k << "_nt(uint8_t* dst";
  for (size_t j = 0; j < k; ++j) os << ", const uint8_t* s" << j;
  os << ", size_t len) {\n";
  os << "#if defined(__AVX2__)\n";
  os << "  size_t i = 0;\n";
  os << "  while (i < len && (((uintptr_t)(dst + i)) & 31u)) {\n";
  os << "    dst[i] = " << byte_xor_expr(k) << ";\n";
  os << "    ++i;\n";
  os << "  }\n";
  os << "  for (; i + 32 <= len; i += 32) {\n";
  os << "    __m256i acc = _mm256_loadu_si256((const __m256i*)(s0 + i));\n";
  for (size_t j = 1; j < k; ++j) {
    os << "    acc = _mm256_xor_si256(acc, _mm256_loadu_si256((const __m256i*)(s" << j
       << " + i)));\n";
  }
  os << "    _mm256_stream_si256((__m256i*)(dst + i), acc);\n";
  os << "  }\n";
  os << "  _mm_sfence();\n";
  os << "  for (; i < len; ++i) dst[i] = " << byte_xor_expr(k) << ";\n";
  os << "#else\n";
  os << "  xor" << k << "(dst";
  for (size_t j = 0; j < k; ++j) os << ", s" << j;
  os << ", len);\n";
  os << "#endif\n";
  os << "}\n\n";
}

/// Dead-store scan, same rule as LoweredProgram: an Out destination no later
/// instruction reads, with no self-reference, is write-only for the rest of
/// the block and may stream past the cache.
std::vector<bool> dead_store_ops(const ExecProgram& prog) {
  std::vector<bool> dead(prog.ops.size(), false);
  for (size_t i = 0; i < prog.ops.size(); ++i) {
    const ExecOp& op = prog.ops[i];
    if (op.dst.space != Space::Out) continue;
    bool self_ref = false;
    for (const Operand& s : op.srcs) self_ref = self_ref || same_operand(s, op.dst);
    if (self_ref) continue;
    bool is_dead = true;
    for (size_t j = i + 1; j < prog.ops.size() && is_dead; ++j)
      for (const Operand& s : prog.ops[j].srcs)
        if (same_operand(s, op.dst)) {
          is_dead = false;
          break;
        }
    dead[i] = is_dead;
  }
  return dead;
}

}  // namespace

std::string generate_c(const ExecProgram& prog, const CodegenOptions& opt) {
  const bool baked = opt.block_size != 0;
  const size_t block = baked ? opt.block_size : opt.max_block_size;
  const bool nt = baked && opt.nt_threshold != 0 && opt.block_size >= opt.nt_threshold;
  const bool arena_scratch = baked && codegen_arena_bytes(prog.num_scratch, block) != 0;

  // Which ops stream (NT emission): the dead-store outputs, only when the
  // baked block is at least the NT threshold.
  std::vector<bool> streams(prog.ops.size(), false);
  if (nt) streams = dead_store_ops(prog);

  std::ostringstream os;
  os << "/* Generated by xorslp_ec (runtime/codegen_c v" << kCodegenVersion
     << "). Do not edit. */\n";
  if (baked) {
    os << "/* baked: block_size=" << block << " nt_threshold=" << opt.nt_threshold
       << " scratch=" << (arena_scratch ? "arena" : "stack") << " */\n";
  }
  os << "#include <stddef.h>\n#include <stdint.h>\n#include <string.h>\n";
  // __AVX512F__ implies __AVX2__ under both gcc and clang, so one guard
  // covers every vectorized helper body.
  os << "#if defined(__AVX2__)\n#include <immintrin.h>\n#endif\n";
  os << "\n";

  // One n-ary XOR helper per arity used keeps the inner loops monomorphic
  // so the host compiler can vectorize each independently. Streaming ops
  // additionally get an NT variant (which falls back to the plain helper on
  // non-AVX2 builds, so the plain form is always emitted).
  std::set<size_t> arities, nt_arities;
  for (size_t i = 0; i < prog.ops.size(); ++i) {
    arities.insert(prog.ops[i].srcs.size());
    if (streams[i]) nt_arities.insert(prog.ops[i].srcs.size());
  }
  for (size_t k : arities) emit_xor_helper(os, k);
  for (size_t k : nt_arities) emit_xor_nt_helper(os, k);

  os << "void " << opt.function_name
     << "(const uint8_t* const* in, uint8_t* const* out, size_t strip_len, "
        "size_t block_size"
     << (baked ? ", uint8_t* scratch_arena" : "") << ") {\n";
  if (baked) {
    // The block size is a compile-time constant; the parameter survives only
    // for signature compatibility with the AOT form.
    os << "  (void)block_size;\n";
    if (!arena_scratch) os << "  (void)scratch_arena;\n";
  } else {
    os << "  if (block_size == 0 || block_size > " << opt.max_block_size
       << ") block_size = " << opt.max_block_size << ";\n";
  }
  if (arena_scratch) {
    // Scratch lives in the caller-owned arena (codegen_arena_bytes): the
    // generated code performs no allocation, so there is no failure path for
    // it to swallow silently.
    for (uint32_t s = 0; s < prog.num_scratch; ++s) {
      os << "  uint8_t* const scratch" << s << " = scratch_arena + "
         << static_cast<size_t>(s) * block << ";\n";
    }
  } else {
    for (uint32_t s = 0; s < prog.num_scratch; ++s) {
      os << "  uint8_t scratch" << s << "[" << block << "];\n";
    }
  }
  const auto emit_ops = [&](const char* len_expr) {
    for (size_t i = 0; i < prog.ops.size(); ++i) {
      const ExecOp& op = prog.ops[i];
      os << "    xor" << op.srcs.size() << (streams[i] ? "_nt" : "") << "("
         << operand_expr(op.dst, true);
      for (const Operand& s : op.srcs) os << ", " << operand_expr(s, true);
      os << ", " << len_expr << ");\n";
    }
  };
  if (baked) {
    // Full blocks run with the block size as a literal length, so the host
    // compiler sees constant trip counts in every helper; only the final
    // partial block (if any) takes a variable length.
    const std::string block_lit = std::to_string(block);
    os << "  size_t off = 0;\n";
    os << "  for (; off + " << block << " <= strip_len; off += " << block << ") {\n";
    emit_ops(block_lit.c_str());
    os << "  }\n";
    os << "  if (off < strip_len) {\n";
    os << "    const size_t len = strip_len - off;\n";
    emit_ops("len");
    os << "  }\n";
  } else {
    os << "  for (size_t off = 0; off < strip_len; off += block_size) {\n";
    os << "    const size_t len = (strip_len - off < block_size) ? strip_len - off "
          ": block_size;\n";
    emit_ops("len");
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace xorec::runtime
