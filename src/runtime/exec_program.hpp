// Compilation of an SLP into a pointer-space execution program.
//
// Address spaces:
//   In      — input strips (the SLP's constants),
//   Out     — output strips (goal values are written straight to the user's
//             buffers; no final copy),
//   Scratch — per-run B-byte buffers backing non-goal pebbles.
//
// A variable that appears in `outputs` is pinned to its output strip for
// *every* assignment (pebble programs may stage dead temporaries through an
// output buffer before the final value lands there — harmless, the last
// write wins and intermediate reads are resolved consistently).
#pragma once

#include <cstdint>
#include <vector>

#include "slp/program.hpp"

namespace xorec::runtime {

enum class Space : uint8_t { In = 0, Out = 1, Scratch = 2 };

struct Operand {
  Space space;
  uint32_t index;
};

struct ExecOp {
  Operand dst;
  std::vector<Operand> srcs;
};

struct ExecProgram {
  std::vector<ExecOp> ops;
  uint32_t num_inputs = 0;
  uint32_t num_outputs = 0;
  uint32_t num_scratch = 0;

  /// Largest instruction arity (sizing the pointer array in the executor).
  size_t max_arity() const;
};

/// Lower an SLP (any stage/form) to the execution program. A variable listed
/// several times in outputs is rejected (the runtime cannot write one value
/// to two strips without a copy; callers never need this).
ExecProgram compile(const slp::Program& p);

}  // namespace xorec::runtime
