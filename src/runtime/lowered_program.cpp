#include "runtime/lowered_program.hpp"

#include <algorithm>
#include <stdexcept>

namespace xorec::runtime {

namespace {

uint32_t slot_of(const Operand& o, uint32_t num_inputs, uint32_t num_outputs) {
  switch (o.space) {
    case Space::In: return o.index;
    case Space::Out: return num_inputs + o.index;
    case Space::Scratch: return num_inputs + num_outputs + o.index;
  }
  throw std::logic_error("LoweredProgram: bad operand space");
}

}  // namespace

LoweredProgram::LoweredProgram(const ExecProgram& prog, const kernel::KernelTable& kernels,
                               size_t block_size, size_t nt_threshold)
    : num_inputs_(prog.num_inputs),
      num_outputs_(prog.num_outputs),
      num_slots_(prog.num_inputs + prog.num_outputs + prog.num_scratch),
      isa_(kernels.isa) {
  const bool nt_capable = kernels.many_nt && kernels.many_nt != kernels.many &&
                          block_size >= nt_threshold;
  ops_.reserve(prog.ops.size());

  // Per-op source slots, precomputed once so the dead-store scan below is a
  // flat walk instead of re-deriving slots per candidate.
  std::vector<std::vector<uint32_t>> src_slots(prog.ops.size());
  for (size_t i = 0; i < prog.ops.size(); ++i) {
    src_slots[i].reserve(prog.ops[i].srcs.size());
    for (const Operand& s : prog.ops[i].srcs)
      src_slots[i].push_back(slot_of(s, num_inputs_, num_outputs_));
  }

  for (size_t i = 0; i < prog.ops.size(); ++i) {
    const ExecOp& op = prog.ops[i];
    const uint32_t dst = slot_of(op.dst, num_inputs_, num_outputs_);
    const std::vector<uint32_t>& srcs = src_slots[i];

    if (srcs.size() == 1 && srcs[0] == dst) continue;  // self-copy: no-op

    const size_t self_refs =
        static_cast<size_t>(std::count(srcs.begin(), srcs.end(), dst));

    // Dead-store detection: an output strip no later instruction reads is
    // write-only for the rest of the block — at NT-capable block sizes it
    // streams past the cache. Only the variadic kernel has a non-temporal
    // form, and it forbids dst/src aliasing, hence self_refs == 0.
    bool dead_store = false;
    if (nt_capable && self_refs == 0 && dst >= num_inputs_ &&
        dst < num_inputs_ + num_outputs_) {
      dead_store = true;
      for (size_t j = i + 1; j < prog.ops.size() && dead_store; ++j)
        dead_store = std::find(src_slots[j].begin(), src_slots[j].end(), dst) ==
                     src_slots[j].end();
    }

    if (dead_store) {
      Op out;
      out.dst = dst;
      out.arg_base = static_cast<uint32_t>(arg_slots_.size());
      arg_slots_.insert(arg_slots_.end(), srcs.begin(), srcs.end());
      out.arity = static_cast<uint32_t>(srcs.size());
      out.many = kernels.many_nt;
      ++nt_ops_;
      max_arity_ = std::max<size_t>(max_arity_, out.arity);
      ops_.push_back(out);
      continue;
    }

    // `rest`: the sources with one self-reference removed — what the
    // accumulate forms take. For self_refs == 0 it is just `srcs`.
    const size_t rest = srcs.size() - self_refs;

    if (self_refs <= 1 && rest > kernel::kMaxFixedArity &&
        block_size <= kSegmentedBlockMax) {
      // Wide instruction on a cache-resident block: decompose into a chain
      // of fully unrolled segments. The first overwrites dst (fixed[k])
      // unless dst is also a source; every later segment accumulates.
      bool overwrite = self_refs == 0;
      size_t pos = 0;
      std::vector<uint32_t> pending;
      pending.reserve(rest);
      for (uint32_t s : srcs)
        if (self_refs == 0 || s != dst) pending.push_back(s);
      while (pos < pending.size()) {
        const size_t take = std::min<size_t>(kernel::kMaxFixedArity, pending.size() - pos);
        Op seg;
        seg.dst = dst;
        seg.arg_base = static_cast<uint32_t>(arg_slots_.size());
        arg_slots_.insert(arg_slots_.end(), pending.begin() + static_cast<long>(pos),
                          pending.begin() + static_cast<long>(pos + take));
        seg.arity = static_cast<uint32_t>(take);
        if (overwrite) {
          seg.fn = kernels.fixed[take];
          ++fixed_ops_;
        } else {
          seg.fn = kernels.accum[take];
          ++accum_ops_;
        }
        overwrite = false;
        max_arity_ = std::max<size_t>(max_arity_, seg.arity);
        ops_.push_back(seg);
        pos += take;
      }
      ++segmented_ops_;
      continue;
    }

    Op out;
    out.dst = dst;
    out.arg_base = static_cast<uint32_t>(arg_slots_.size());

    if (self_refs == 1 && srcs.size() >= 2 && rest <= kernel::kMaxFixedArity) {
      // dst = dst ^ rest...  ->  fused accumulate over `rest` (dst becomes
      // the kernel's implicit extra source, read once).
      for (uint32_t s : srcs)
        if (s != dst) arg_slots_.push_back(s);
      out.arity = static_cast<uint32_t>(rest);
      out.fn = kernels.accum[out.arity];
      ++accum_ops_;
    } else if (self_refs == 0 && srcs.size() <= kernel::kMaxFixedArity) {
      arg_slots_.insert(arg_slots_.end(), srcs.begin(), srcs.end());
      out.arity = static_cast<uint32_t>(srcs.size());
      out.fn = kernels.fixed[out.arity];
      ++fixed_ops_;
    } else {
      // Wide-on-huge-blocks or multiply-aliased instruction: the variadic
      // kernel handles exact dst/src aliasing positionally (reads precede
      // the write at every byte), so the original operand list runs
      // unchanged.
      arg_slots_.insert(arg_slots_.end(), srcs.begin(), srcs.end());
      out.arity = static_cast<uint32_t>(srcs.size());
      out.many = kernels.many;
    }

    max_arity_ = std::max<size_t>(max_arity_, out.arity);
    ops_.push_back(out);
  }
}

void LoweredProgram::run_range(State& st, const uint8_t* const* inputs,
                               uint8_t* const* outputs, uint8_t* const* scratch,
                               size_t begin, size_t end, size_t block_size,
                               bool prefetch_next_block) const {
  const size_t B = block_size;
  uint8_t** slots = st.slots.data();
  const uint8_t** args = st.args.data();
  const uint32_t* arg_slots = arg_slots_.data();
  const uint32_t n_moving = num_inputs_ + num_outputs_;

  // Input slots are never written (ExecProgram rejects In destinations); the
  // const_cast only unifies the table type.
  for (uint32_t i = 0; i < num_inputs_; ++i)
    slots[i] = const_cast<uint8_t*>(inputs[i]) + begin;
  for (uint32_t o = 0; o < num_outputs_; ++o) slots[num_inputs_ + o] = outputs[o] + begin;
  for (uint32_t s = n_moving; s < num_slots_; ++s) slots[s] = scratch[s - n_moving];

  for (size_t off = begin; off < end; off += B) {
    const size_t len = std::min(B, end - off);
    if (prefetch_next_block && off + B < end) {
      for (uint32_t i = 0; i < num_inputs_; ++i) {
        const uint8_t* next = slots[i] + B;
        for (size_t l = 0; l < len; l += 64) __builtin_prefetch(next + l, 0, 1);
      }
    }
    for (const Op& op : ops_) {
      const uint32_t* as = arg_slots + op.arg_base;
      for (uint32_t j = 0; j < op.arity; ++j) args[j] = slots[as[j]];
      if (op.fn)
        op.fn(slots[op.dst], args, len);
      else
        op.many(slots[op.dst], args, op.arity, len);
    }
    for (uint32_t s = 0; s < n_moving; ++s) slots[s] += B;
  }
}

}  // namespace xorec::runtime
