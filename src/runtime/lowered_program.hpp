// The lowered execution backend (exec=lowered): an ExecProgram compiled one
// step further, into a straight-line program of pre-resolved kernel calls.
//
// The interpreter (executor.cpp) re-resolves every instruction on every
// block: a switch over each operand's address space, a heap-backed source
// pointer array, and a variadic kernel whose inner loop carries the source
// count as a runtime parameter. Lowering hoists all of that to compile time:
//
//   - operands become indices into one flat slot table
//     [inputs][outputs][scratch]; per instruction the runner resolves its
//     argument pointers from a flattened slot-index array into one small
//     reused buffer (no space switch, no per-op allocation — and the buffer
//     stays L1-hot, unlike a full per-block gather), then advances the
//     in/out slots by the block size after each block (scratch stays put);
//   - each instruction is bound to a fixed-arity kernel specialization
//     (kernel::KernelTable::fixed[k]) so the source count is baked into the
//     function pointer and its inner loop is fully unrolled;
//   - instructions of the form dst = dst ^ a ^ b (one exact self-reference)
//     are folded into the fused accumulate kernel (accum[k-1]), dropping one
//     stream from the loop;
//   - wide instructions (post-fusion arity beyond kMaxFixedArity) are
//     decomposed into a straight-line chain of fixed/accumulate calls —
//     fixed[8] then accum[8]... — trading the variadic kernel's runtime
//     source loop (an add/compare/branch per 64 bytes per source) for fully
//     unrolled segments. The destination is re-read between segments, but at
//     cache-blocked sizes it stays L1-resident, so the extra passes are
//     nearly free; past kSegmentedBlockMax the one-pass variadic form wins
//     and decomposition is skipped;
//   - instructions whose destination is an output strip that no later
//     instruction reads are *dead stores* for the rest of the block; when
//     the block size is at or past ExecOptions::nt_threshold they use the
//     non-temporal-store kernel so the final writes skip the cache.
//
// Lowering happens once, in the Executor constructor, and the Executor lives
// inside the PlanCache's CompiledProgram — so hot plans pay it once per
// process, and every subsequent execution runs the straight-line form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernel/xor_kernel.hpp"
#include "runtime/exec_program.hpp"

namespace xorec::runtime {

class LoweredProgram {
 public:
  /// One pre-resolved call. `fn` set: fixed-arity or accumulate kernel over
  /// `arity` gathered argument pointers. `fn` null: variadic fallback
  /// through `many` (generic wide/aliased instructions, or the non-temporal
  /// variant for dead-store destinations).
  struct Op {
    kernel::XorFixedFn fn = nullptr;
    kernel::XorManyFn many = nullptr;
    uint32_t dst = 0;       // slot index
    uint32_t arg_base = 0;  // offset into the flattened arg-slot array
    uint32_t arity = 0;     // argument count (excludes the accumulate dst)
  };

  /// Per-caller mutable state, sized for one program: the slot table and the
  /// per-instruction argument buffer (widest arity, reused by every call so
  /// it stays cache-hot). Lives in the Executor's per-worker Scratch so
  /// run_range() never allocates.
  struct State {
    std::vector<uint8_t*> slots;
    std::vector<const uint8_t*> args;
    explicit State(const LoweredProgram& lp)
        : slots(lp.num_slots()), args(lp.max_arity()) {}
  };

  /// Bind `prog` to one kernel family. `block_size`/`nt_threshold` decide
  /// statically whether dead-store instructions may use non-temporal stores.
  LoweredProgram(const ExecProgram& prog, const kernel::KernelTable& kernels,
                 size_t block_size, size_t nt_threshold);

  kernel::Isa isa() const { return isa_; }
  size_t num_slots() const { return num_slots_; }
  size_t total_args() const { return arg_slots_.size(); }
  size_t max_arity() const { return max_arity_; }
  const std::vector<Op>& ops() const { return ops_; }
  /// Instruction-mix counters (tests/benches introspection).
  size_t fixed_ops() const { return fixed_ops_; }
  size_t accum_ops() const { return accum_ops_; }
  size_t nt_ops() const { return nt_ops_; }
  /// Source instructions split into fixed/accum segment chains.
  size_t segmented_ops() const { return segmented_ops_; }

  /// Blocks at or below this stay decomposable: the destination strip is
  /// re-read once per extra segment, which only pays off while a block is
  /// L1/L2-resident.
  static constexpr size_t kSegmentedBlockMax = 32 * 1024;

  /// Execute strip bytes [begin, end) in `block_size`-byte blocks. Pointer
  /// counts must match the source ExecProgram; `scratch` buffers must hold
  /// at least min(block_size, end - begin) bytes each.
  void run_range(State& st, const uint8_t* const* inputs, uint8_t* const* outputs,
                 uint8_t* const* scratch, size_t begin, size_t end, size_t block_size,
                 bool prefetch_next_block) const;

 private:
  std::vector<Op> ops_;
  std::vector<uint32_t> arg_slots_;  // all ops' argument slots, concatenated
  uint32_t num_inputs_ = 0;
  uint32_t num_outputs_ = 0;
  uint32_t num_slots_ = 0;
  size_t max_arity_ = 1;
  kernel::Isa isa_ = kernel::Isa::Scalar;
  size_t fixed_ops_ = 0;
  size_t accum_ops_ = 0;
  size_t nt_ops_ = 0;
  size_t segmented_ops_ = 0;
};

}  // namespace xorec::runtime
