// Ahead-of-time code generation: emit a compiled SLP as a self-contained C
// translation unit instead of running it through the interpreter.
//
// The paper treats XOR-based EC as *program generation*; this module closes
// the loop by pretty-printing the pointer-resolved execution program as a C
// function a toolchain can compile to native code (useful for embedding a
// fixed codec with zero interpreter overhead, or for inspecting exactly what
// the optimizer produced).
//
// Generated signature:
//   void NAME(const uint8_t* const* in,   // num_inputs strips
//             uint8_t* const* out,        // num_outputs strips
//             size_t strip_len,           // bytes per strip
//             size_t block_size);         // §6.1 blocking parameter
//
// The emitted code is plain C99 (byte loops with a word-64 fast path); it
// relies on the compiler's vectorizer rather than intrinsics so it builds
// anywhere.
#pragma once

#include <string>

#include "runtime/exec_program.hpp"

namespace xorec::runtime {

struct CodegenOptions {
  std::string function_name = "xorec_coded_run";
  /// Scratch pebbles are stack buffers of this many bytes; must be >= the
  /// block_size passed at runtime. 4096 covers every paper configuration.
  size_t max_block_size = 4096;
};

/// Emit the C source for one execution program.
std::string generate_c(const ExecProgram& prog, const CodegenOptions& opt = {});

}  // namespace xorec::runtime
