// Ahead-of-time code generation: emit a compiled SLP as a self-contained C
// translation unit instead of running it through the interpreter.
//
// The paper treats XOR-based EC as *program generation*; this module closes
// the loop by pretty-printing the pointer-resolved execution program as a C
// function a toolchain can compile to native code (useful for embedding a
// fixed codec with zero interpreter overhead, or for inspecting exactly what
// the optimizer produced).
//
// Generated signature:
//   void NAME(const uint8_t* const* in,   // num_inputs strips
//             uint8_t* const* out,        // num_outputs strips
//             size_t strip_len,           // bytes per strip
//             size_t block_size);         // §6.1 blocking parameter
// Baked mode appends a fifth parameter:
//             uint8_t* scratch_arena      // codegen_arena_bytes() bytes of
//                                         // caller-owned scratch (ignored —
//                                         // may be NULL — when 0)
//
// The emitted code is plain C99 (byte loops with a word-64 fast path); it
// relies on the compiler's vectorizer rather than intrinsics so it builds
// anywhere.
//
// Two emission modes:
//   default (block_size == 0) — the historical AOT form: block_size is a
//     runtime parameter clamped to max_block_size, scratch is stack storage.
//   baked (block_size != 0) — the exec=jit form (runtime/jit_cache.hpp):
//     the block size is a compile-time constant, the runtime parameter is
//     ignored, scratch falls back to the caller-provided arena when the
//     stack footprint would be unreasonable (the generated code never
//     allocates, so it has no failure path to swallow — the caller's
//     allocation fails loudly), and — when block_size >= nt_threshold — output
//     strips no later instruction reads are written through non-temporal
//     streaming stores (AVX2 intrinsics under __AVX2__, plain code
//     elsewhere), mirroring the lowered backend's dead-store rule.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/exec_program.hpp"

namespace xorec::runtime {

/// Bumped whenever the emission changes shape. The version is stamped into
/// the generated banner, so on-disk jit artifacts (content-addressed over
/// the source text) can never be served across a codegen change.
inline constexpr int kCodegenVersion = 4;

struct CodegenOptions {
  std::string function_name = "xorec_coded_run";
  /// Scratch pebbles are stack buffers of this many bytes; must be >= the
  /// block_size passed at runtime. 4096 covers every paper configuration.
  /// Ignored in baked mode (scratch is sized by the baked block).
  size_t max_block_size = 4096;
  /// Nonzero: bake this block size as a compile-time constant (the jit
  /// path); the function's block_size parameter is accepted and ignored.
  size_t block_size = 0;
  /// Baked mode only: with block_size >= nt_threshold, dead-store output
  /// instructions use streaming stores. 0 disables.
  size_t nt_threshold = 0;
};

/// Baked-mode scratch above this total lives in the caller-provided arena
/// instead of the stack (large NT-class blocks would otherwise overflow it).
inline constexpr size_t kCodegenStackScratchMax = 256 * 1024;

/// Bytes of caller-owned scratch arena the BAKED form of a program requires
/// through its fifth parameter (single source of truth for the stack/arena
/// split — the Executor sizes its per-worker arenas with this). 0 means the
/// scratch fits the generated function's stack and the parameter is ignored.
inline constexpr size_t codegen_arena_bytes(uint32_t num_scratch, size_t block_size) {
  const size_t total = static_cast<size_t>(num_scratch) * block_size;
  return total > kCodegenStackScratchMax ? total : 0;
}

/// Emit the C source for one execution program.
std::string generate_c(const ExecProgram& prog, const CodegenOptions& opt = {});

}  // namespace xorec::runtime
