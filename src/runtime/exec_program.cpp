#include "runtime/exec_program.hpp"

#include <stdexcept>

namespace xorec::runtime {

size_t ExecProgram::max_arity() const {
  size_t m = 0;
  for (const ExecOp& op : ops) m = std::max(m, op.srcs.size());
  return m;
}

ExecProgram compile(const slp::Program& p) {
  p.validate();
  ExecProgram e;
  e.num_inputs = p.num_consts;
  e.num_outputs = static_cast<uint32_t>(p.outputs.size());

  // Variable -> fixed location. Outputs pin their variable; the rest get a
  // scratch slot on first assignment.
  constexpr uint32_t kUnset = UINT32_MAX;
  std::vector<uint32_t> out_slot(p.num_vars, kUnset);
  for (uint32_t i = 0; i < p.outputs.size(); ++i) {
    if (out_slot[p.outputs[i]] != kUnset)
      throw std::invalid_argument("compile: variable returned twice");
    out_slot[p.outputs[i]] = i;
  }
  std::vector<uint32_t> scratch_slot(p.num_vars, kUnset);

  auto loc_of = [&](uint32_t var) -> Operand {
    if (out_slot[var] != kUnset) return {Space::Out, out_slot[var]};
    if (scratch_slot[var] == kUnset) scratch_slot[var] = e.num_scratch++;
    return {Space::Scratch, scratch_slot[var]};
  };

  e.ops.reserve(p.body.size());
  for (const slp::Instruction& ins : p.body) {
    ExecOp op;
    op.srcs.reserve(ins.args.size());
    for (const slp::Term& t : ins.args) {
      if (t.is_const()) {
        op.srcs.push_back({Space::In, t.id});
      } else {
        op.srcs.push_back(loc_of(t.id));
      }
    }
    op.dst = loc_of(ins.target);
    e.ops.push_back(std::move(op));
  }
  return e;
}

}  // namespace xorec::runtime
