#include "runtime/task_queue.hpp"

#include <algorithm>

namespace xorec::runtime {

TaskQueue::TaskQueue(size_t threads) {
  const size_t n = std::max<size_t>(threads, 1);
  workers_.reserve(n);
  for (size_t w = 0; w < n; ++w) {
    workers_.emplace_back([this] {
      for (;;) {
        std::packaged_task<void()> task;
        {
          std::unique_lock lk(mu_);
          cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
          if (queue_.empty()) return;  // stop_ && drained
          task = std::move(queue_.front());
          queue_.pop_front();
          ++active_;
        }
        task();  // packaged_task captures exceptions into the future
        {
          std::lock_guard lk(mu_);
          if (--active_ == 0 && queue_.empty()) cv_idle_.notify_all();
        }
      }
    });
  }
}

TaskQueue::~TaskQueue() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

std::future<void> TaskQueue::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
  return fut;
}

size_t TaskQueue::depth() const {
  std::lock_guard lk(mu_);
  return queue_.size() + active_;
}

void TaskQueue::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
}

}  // namespace xorec::runtime
