#include "runtime/executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace xorec::runtime {

const char* exec_backend_name(ExecBackend b) {
  switch (b) {
    case ExecBackend::Interp: return "interp";
    case ExecBackend::Lowered: return "lowered";
    case ExecBackend::Auto: return "auto";
  }
  return "?";
}

Executor::Executor(ExecProgram program, ExecOptions opt)
    : prog_(std::move(program)), opt_(opt) {
  if (opt_.block_size == 0) throw std::invalid_argument("Executor: block_size == 0");
  if (opt_.threads == 0) opt_.threads = 1;

  const kernel::KernelTable& kt = kernel::kernel_table(opt_.isa);
  kernel_ = kt.many;
  isa_ = kt.isa;
  backend_ = opt_.backend == ExecBackend::Auto ? ExecBackend::Lowered : opt_.backend;
  if (backend_ == ExecBackend::Lowered)
    lowered_ = std::make_unique<const LoweredProgram>(prog_, kt, opt_.block_size,
                                                      opt_.nt_threshold);

  if (opt_.threads > 1) {
    worker_scratch_.reserve(opt_.threads);
    for (size_t w = 0; w < opt_.threads; ++w)
      worker_scratch_.push_back(std::make_unique<Scratch>(prog_, opt_, lowered_.get()));
  } else {
    // Pre-warm one freelist entry so the common single-caller case never
    // allocates inside run().
    free_scratch_.push_back(std::make_unique<Scratch>(prog_, opt_, lowered_.get()));
    scratch_allocated_ = 1;
  }
}

std::unique_ptr<Executor::Scratch> Executor::acquire_scratch() const {
  {
    std::lock_guard lk(scratch_mu_);
    ++scratch_in_use_;
    scratch_high_water_ = std::max(scratch_high_water_, scratch_in_use_);
    if (!free_scratch_.empty()) {
      auto s = std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return s;
    }
    ++scratch_allocated_;
  }
  return std::make_unique<Scratch>(prog_, opt_, lowered_.get());
}

void Executor::release_scratch(std::unique_ptr<Scratch> s) const {
  std::lock_guard lk(scratch_mu_);
  --scratch_in_use_;
  // Keep at most high-water arenas parked: a one-off burst of concurrent
  // callers must not pin burst-many arenas for the executor's lifetime.
  if (free_scratch_.size() < std::max<size_t>(scratch_high_water_, 1))
    free_scratch_.push_back(std::move(s));
  else
    ++scratch_dropped_;  // s frees on scope exit
}

ScratchStats Executor::scratch_stats() const {
  std::lock_guard lk(scratch_mu_);
  return {free_scratch_.size(), scratch_high_water_, scratch_allocated_, scratch_dropped_};
}

void Executor::run_range(const uint8_t* const* inputs, uint8_t* const* outputs, size_t begin,
                         size_t end, Scratch& scratch) const {
  if (lowered_) {
    lowered_->run_range(*scratch.lowered_state, inputs, outputs, scratch.ptrs.data(), begin,
                        end, opt_.block_size, opt_.prefetch_next_block);
    return;
  }

  const size_t B = opt_.block_size;
  uint8_t* const* scr = scratch.ptrs.data();
  std::vector<const uint8_t*> srcs(std::max<size_t>(prog_.max_arity(), 1));

  for (size_t off = begin; off < end; off += B) {
    const size_t len = std::min(B, end - off);
    if (opt_.prefetch_next_block && off + B < end) {
      // Pull the next block's input cache lines while this block computes.
      for (uint32_t i = 0; i < prog_.num_inputs; ++i) {
        const uint8_t* next = inputs[i] + off + B;
        for (size_t l = 0; l < len; l += 64) __builtin_prefetch(next + l, 0, 1);
      }
    }
    for (const ExecOp& op : prog_.ops) {
      for (size_t j = 0; j < op.srcs.size(); ++j) {
        const Operand& s = op.srcs[j];
        switch (s.space) {
          case Space::In: srcs[j] = inputs[s.index] + off; break;
          case Space::Out: srcs[j] = outputs[s.index] + off; break;
          case Space::Scratch: srcs[j] = scr[s.index]; break;
        }
      }
      uint8_t* dst;
      switch (op.dst.space) {
        case Space::Out: dst = outputs[op.dst.index] + off; break;
        case Space::Scratch: dst = scr[op.dst.index]; break;
        case Space::In:
        default:
          throw std::logic_error("Executor: write to input space");
      }
      kernel_(dst, srcs.data(), op.srcs.size(), len);
    }
  }
}

void Executor::run(const uint8_t* const* inputs, uint8_t* const* outputs,
                   size_t strip_len) const {
  if (strip_len == 0 || prog_.ops.empty()) return;
  const size_t B = opt_.block_size;

  if (opt_.threads <= 1) {
    auto s = acquire_scratch();
    try {
      run_range(inputs, outputs, 0, strip_len, *s);
    } catch (...) {
      release_scratch(std::move(s));
      throw;
    }
    release_scratch(std::move(s));
    return;
  }

  // Split the strip into per-worker spans of whole blocks. The shared pool
  // serializes overlapping run_on_all calls, so the per-worker arenas are
  // never used by two outer calls at once.
  const size_t n_blocks = (strip_len + B - 1) / B;
  const size_t workers = std::min(opt_.threads, n_blocks);
  const size_t per = (n_blocks + workers - 1) / workers;
  ThreadPool& pool = ThreadPool::shared(workers);
  pool.run_on_all([&](size_t w) {
    if (w >= workers) return;
    const size_t begin = std::min(w * per * B, strip_len);
    const size_t end = std::min((w + 1) * per * B, strip_len);
    if (begin < end) run_range(inputs, outputs, begin, end, *worker_scratch_[w]);
  });
}

}  // namespace xorec::runtime
