#include "runtime/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "runtime/codegen_c.hpp"
#include "runtime/thread_pool.hpp"

namespace xorec::runtime {

namespace {

// XOREC_FORCE_EXEC override state (mirror of kernel/dispatch.cpp's
// ForceState for XOREC_FORCE_ISA): parsed lazily exactly once, replaceable
// by the test hook. Mutex-guarded — Executors are constructed from many
// threads at once (and the test hook can race them), so the lazy parse must
// not be a plain non-atomic flag.
struct ExecForceState {
  std::mutex mu;
  bool parsed = false;
  std::optional<ExecBackend> value;
};

ExecForceState& exec_force_state() {
  static ExecForceState s;
  return s;
}

}  // namespace

const char* exec_backend_name(ExecBackend b) {
  switch (b) {
    case ExecBackend::Interp: return "interp";
    case ExecBackend::Lowered: return "lowered";
    case ExecBackend::Auto: return "auto";
    case ExecBackend::Jit: return "jit";
  }
  return "?";
}

std::optional<ExecBackend> parse_exec_backend(const char* name) {
  if (!name) return std::nullopt;
  const std::string_view v = name;
  if (v == "interp") return ExecBackend::Interp;
  if (v == "lowered") return ExecBackend::Lowered;
  if (v == "auto") return ExecBackend::Auto;
  if (v == "jit") return ExecBackend::Jit;
  return std::nullopt;
}

std::optional<ExecBackend> forced_exec_backend() {
  ExecForceState& s = exec_force_state();
  std::lock_guard lk(s.mu);
  if (!s.parsed) {
    // Unknown names silently mean "no override", like XOREC_FORCE_ISA.
    s.value = parse_exec_backend(std::getenv("XOREC_FORCE_EXEC"));
    s.parsed = true;
  }
  return s.value;
}

void set_forced_exec_backend_for_testing(std::optional<ExecBackend> b) {
  ExecForceState& s = exec_force_state();
  std::lock_guard lk(s.mu);
  s.parsed = true;
  s.value = b;
}

Executor::Executor(ExecProgram program, ExecOptions opt)
    : prog_(std::move(program)), opt_(opt) {
  if (opt_.block_size == 0) throw std::invalid_argument("Executor: block_size == 0");
  if (opt_.threads == 0) opt_.threads = 1;

  const kernel::KernelTable& kt = kernel::kernel_table(opt_.isa);
  kernel_ = kt.many;
  isa_ = kt.isa;
  backend_ = opt_.backend;
  if (auto f = forced_exec_backend()) backend_ = *f;
  if (backend_ == ExecBackend::Auto) backend_ = ExecBackend::Lowered;

  if (backend_ == ExecBackend::Jit && !prog_.ops.empty()) {
    // Print the program with every decision baked (block size, NT stores)
    // and fetch the native artifact through the cross-process cache: memo
    // hit, warm dlopen, or one compile for the whole fleet.
    CodegenOptions co;
    co.function_name = "xorec_jit_run";
    co.block_size = opt_.block_size;
    co.nt_threshold = opt_.nt_threshold;
    jit_ = JitCache::instance().get_or_compile(generate_c(prog_, co), isa_,
                                               co.function_name);
    if (jit_) {
      jit_fn_ = jit_->fn();
    } else {
      // No compiler, disabled, or the compile failed: degrade to lowered.
      JitCache::instance().note_fallback();
      backend_ = ExecBackend::Lowered;
    }
  }
  if (backend_ == ExecBackend::Lowered)
    lowered_ = std::make_unique<const LoweredProgram>(prog_, kt, opt_.block_size,
                                                      opt_.nt_threshold);

  const bool jit_active = backend_ == ExecBackend::Jit;
  if (opt_.threads > 1) {
    worker_scratch_.reserve(opt_.threads);
    for (size_t w = 0; w < opt_.threads; ++w)
      worker_scratch_.push_back(
          std::make_unique<Scratch>(prog_, opt_, lowered_.get(), jit_active));
  } else {
    // Pre-warm one freelist entry so the common single-caller case never
    // allocates inside run().
    free_scratch_.push_back(
        std::make_unique<Scratch>(prog_, opt_, lowered_.get(), jit_active));
    scratch_allocated_ = 1;
  }
}

std::unique_ptr<Executor::Scratch> Executor::acquire_scratch() const {
  {
    std::lock_guard lk(scratch_mu_);
    ++scratch_in_use_;
    scratch_high_water_ = std::max(scratch_high_water_, scratch_in_use_);
    if (!free_scratch_.empty()) {
      auto s = std::move(free_scratch_.back());
      free_scratch_.pop_back();
      return s;
    }
    ++scratch_allocated_;
  }
  return std::make_unique<Scratch>(prog_, opt_, lowered_.get(),
                                   backend_ == ExecBackend::Jit);
}

void Executor::release_scratch(std::unique_ptr<Scratch> s) const {
  std::lock_guard lk(scratch_mu_);
  --scratch_in_use_;
  // Keep at most high-water arenas parked: a one-off burst of concurrent
  // callers must not pin burst-many arenas for the executor's lifetime.
  if (free_scratch_.size() < std::max<size_t>(scratch_high_water_, 1))
    free_scratch_.push_back(std::move(s));
  else
    ++scratch_dropped_;  // s frees on scope exit
}

ScratchStats Executor::scratch_stats() const {
  std::lock_guard lk(scratch_mu_);
  return {free_scratch_.size(), scratch_high_water_, scratch_allocated_, scratch_dropped_};
}

void Executor::run_range(const uint8_t* const* inputs, uint8_t* const* outputs, size_t begin,
                         size_t end, Scratch& scratch) const {
  if (jit_fn_) {
    // One flat native call for the whole range: the artifact bakes the block
    // loop, scratch and NT decisions, so only the strip bases shift.
    // (prefetch_next_block has no hook here — the compiled loop body is
    // opaque to us.)
    for (uint32_t i = 0; i < prog_.num_inputs; ++i) scratch.jit_in[i] = inputs[i] + begin;
    for (uint32_t i = 0; i < prog_.num_outputs; ++i)
      scratch.jit_out[i] = outputs[i] + begin;
    jit_fn_(scratch.jit_in.data(), scratch.jit_out.data(), end - begin, opt_.block_size,
            scratch.jit_arena.data());
    return;
  }
  if (lowered_) {
    lowered_->run_range(*scratch.lowered_state, inputs, outputs, scratch.ptrs.data(), begin,
                        end, opt_.block_size, opt_.prefetch_next_block);
    return;
  }

  const size_t B = opt_.block_size;
  uint8_t* const* scr = scratch.ptrs.data();
  std::vector<const uint8_t*> srcs(std::max<size_t>(prog_.max_arity(), 1));

  for (size_t off = begin; off < end; off += B) {
    const size_t len = std::min(B, end - off);
    if (opt_.prefetch_next_block && off + B < end) {
      // Pull the next block's input cache lines while this block computes.
      for (uint32_t i = 0; i < prog_.num_inputs; ++i) {
        const uint8_t* next = inputs[i] + off + B;
        for (size_t l = 0; l < len; l += 64) __builtin_prefetch(next + l, 0, 1);
      }
    }
    for (const ExecOp& op : prog_.ops) {
      for (size_t j = 0; j < op.srcs.size(); ++j) {
        const Operand& s = op.srcs[j];
        switch (s.space) {
          case Space::In: srcs[j] = inputs[s.index] + off; break;
          case Space::Out: srcs[j] = outputs[s.index] + off; break;
          case Space::Scratch: srcs[j] = scr[s.index]; break;
        }
      }
      uint8_t* dst;
      switch (op.dst.space) {
        case Space::Out: dst = outputs[op.dst.index] + off; break;
        case Space::Scratch: dst = scr[op.dst.index]; break;
        case Space::In:
        default:
          throw std::logic_error("Executor: write to input space");
      }
      kernel_(dst, srcs.data(), op.srcs.size(), len);
    }
  }
}

void Executor::run(const uint8_t* const* inputs, uint8_t* const* outputs,
                   size_t strip_len) const {
  if (strip_len == 0 || prog_.ops.empty()) return;
  const size_t B = opt_.block_size;

  if (opt_.threads <= 1) {
    auto s = acquire_scratch();
    try {
      run_range(inputs, outputs, 0, strip_len, *s);
    } catch (...) {
      release_scratch(std::move(s));
      throw;
    }
    release_scratch(std::move(s));
    return;
  }

  // Split the strip into per-worker spans of whole blocks. The shared pool
  // serializes overlapping run_on_all calls, so the per-worker arenas are
  // never used by two outer calls at once.
  const size_t n_blocks = (strip_len + B - 1) / B;
  const size_t workers = std::min(opt_.threads, n_blocks);
  const size_t per = (n_blocks + workers - 1) / workers;
  ThreadPool& pool = ThreadPool::shared(workers);
  pool.run_on_all([&](size_t w) {
    if (w >= workers) return;
    const size_t begin = std::min(w * per * B, strip_len);
    const size_t end = std::min((w + 1) * per * B, strip_len);
    if (begin < end) run_range(inputs, outputs, begin, end, *worker_scratch_[w]);
  });
}

}  // namespace xorec::runtime
