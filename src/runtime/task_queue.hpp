// FIFO task queue over dedicated worker threads: the stripe-level
// parallelism complement to ThreadPool's fork-join strip splitting (§8
// parallelizes *within* one coding call; this parallelizes *across* calls).
//
// api/batch.hpp's BatchCoder sessions submit whole encode/reconstruct jobs
// here and hand futures back to the caller; wait_idle() is the flush
// barrier. Tasks run in submission order (FIFO pop) but complete in any
// order across workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace xorec::runtime {

class TaskQueue {
 public:
  /// `threads` dedicated workers (clamped to >= 1).
  explicit TaskQueue(size_t threads);
  /// Drains the queue (every submitted task still runs), then joins.
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  size_t threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + executing) — the queue
  /// depth a service scheduler balances shards by. Exact at the instant of
  /// the lock; naturally stale the moment it returns.
  size_t depth() const;

  /// Enqueue fn; the future completes when it has run. An exception thrown
  /// by fn is captured in the future (wait_idle does not rethrow it).
  std::future<void> submit(std::function<void()> fn);

  /// Block until the queue is empty and no task is executing.
  void wait_idle();

 private:
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_, cv_idle_;
  std::deque<std::packaged_task<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace xorec::runtime
