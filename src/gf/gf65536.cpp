#include "gf/gf65536.hpp"

#include <array>
#include <stdexcept>
#include <vector>

namespace xorec::gf16 {

namespace {

struct Tables {
  std::vector<uint16_t> exp_;  // 65536 entries (wraparound at 65535)
  std::vector<uint16_t> log_;  // 65536 entries

  Tables() : exp_(65536), log_(65536) {
    uint16_t x = 1;
    for (unsigned i = 0; i < 65535; ++i) {
      exp_[i] = x;
      log_[x] = static_cast<uint16_t>(i);
      x = mul_slow(x, kAlpha);
    }
    if (x != 1) throw std::logic_error("gf16: 0x1100B is not primitive?");
    exp_[65535] = exp_[0];
    log_[0] = 0;  // never read
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint16_t mul(uint16_t a, uint16_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  const unsigned s = static_cast<unsigned>(t.log_[a]) + t.log_[b];
  return t.exp_[s % 65535u];
}

uint16_t inv(uint16_t a) {
  if (a == 0) throw std::domain_error("gf16::inv(0)");
  const auto& t = tables();
  return t.exp_[(65535u - t.log_[a]) % 65535u];
}

uint16_t alpha_pow(unsigned e) { return tables().exp_[e % 65535u]; }

}  // namespace xorec::gf16
