#include "gf/gfmat.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace xorec::gf {

Matrix::Matrix(size_t rows, size_t cols, std::initializer_list<uint8_t> vals)
    : Matrix(rows, cols) {
  if (vals.size() != rows * cols) throw std::invalid_argument("Matrix: initializer size");
  std::copy(vals.begin(), vals.end(), a_.begin());
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const uint8_t aik = at(i, k);
      if (aik == 0) continue;
      for (size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) ^= mul(aik, rhs.at(k, j));
      }
    }
  }
  return out;
}

std::vector<uint8_t> Matrix::apply(const std::vector<uint8_t>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::apply: size mismatch");
  std::vector<uint8_t> y(rows_, 0);
  for (size_t i = 0; i < rows_; ++i) {
    uint8_t acc = 0;
    for (size_t j = 0; j < cols_; ++j) acc ^= mul(at(i, j), x[j]);
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::select_rows(const std::vector<size_t>& which) const {
  Matrix out(which.size(), cols_);
  for (size_t i = 0; i < which.size(); ++i) {
    if (which[i] >= rows_) throw std::out_of_range("Matrix::select_rows");
    for (size_t j = 0; j < cols_; ++j) out.at(i, j) = at(which[i], j);
  }
  return out;
}

Matrix Matrix::vstack(const Matrix& below) const {
  if (cols_ != below.cols_) throw std::invalid_argument("Matrix::vstack: cols mismatch");
  Matrix out(rows_ + below.rows_, cols_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out.at(i, j) = at(i, j);
  for (size_t i = 0; i < below.rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out.at(rows_ + i, j) = below.at(i, j);
  return out;
}

std::optional<Matrix> Matrix::inverse() const {
  if (rows_ != cols_) return std::nullopt;
  const size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (size_t col = 0; col < n; ++col) {
    // Find pivot.
    size_t piv = col;
    while (piv < n && a.at(piv, col) == 0) ++piv;
    if (piv == n) return std::nullopt;
    if (piv != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(a.at(piv, j), a.at(col, j));
        std::swap(inv.at(piv, j), inv.at(col, j));
      }
    }
    // Scale pivot row to 1.
    const uint8_t pv = a.at(col, col);
    const uint8_t pv_inv = gf::inv(pv);
    for (size_t j = 0; j < n; ++j) {
      a.at(col, j) = mul(a.at(col, j), pv_inv);
      inv.at(col, j) = mul(inv.at(col, j), pv_inv);
    }
    // Eliminate all other rows.
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t f = a.at(r, col);
      if (f == 0) continue;
      for (size_t j = 0; j < n; ++j) {
        a.at(r, j) ^= mul(f, a.at(col, j));
        inv.at(r, j) ^= mul(f, inv.at(col, j));
      }
    }
  }
  return inv;
}

size_t Matrix::rank() const {
  Matrix a = *this;
  size_t rank = 0;
  for (size_t col = 0; col < cols_ && rank < rows_; ++col) {
    size_t piv = rank;
    while (piv < rows_ && a.at(piv, col) == 0) ++piv;
    if (piv == rows_) continue;
    for (size_t j = 0; j < cols_; ++j) std::swap(a.at(piv, j), a.at(rank, j));
    const uint8_t pv_inv = gf::inv(a.at(rank, col));
    for (size_t j = 0; j < cols_; ++j) a.at(rank, j) = mul(a.at(rank, j), pv_inv);
    for (size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const uint8_t f = a.at(r, col);
      if (f == 0) continue;
      for (size_t j = 0; j < cols_; ++j) a.at(r, j) ^= mul(f, a.at(rank, j));
    }
    ++rank;
  }
  return rank;
}

Matrix vandermonde(size_t n_plus_p, size_t n) {
  Matrix v(n_plus_p, n);
  for (size_t i = 0; i < n_plus_p; ++i) {
    const uint8_t base = alpha_pow(static_cast<unsigned>(i + 1));  // alpha^(i+1), rows 1..n+p
    uint8_t x = 1;
    for (size_t j = 0; j < n; ++j) {
      v.at(i, j) = x;
      x = mul(x, base);
    }
  }
  return v;
}

Matrix rs_systematic_matrix(size_t n, size_t p) {
  if (n == 0 || p == 0 || n + p > 255) throw std::invalid_argument("rs_systematic_matrix: bad (n,p)");
  Matrix v = vandermonde(n + p, n);
  std::vector<size_t> top(n);
  for (size_t i = 0; i < n; ++i) top[i] = i;
  Matrix vtop = v.select_rows(top);
  auto vtop_inv = vtop.inverse();
  // Top block of a Vandermonde with distinct evaluation points is invertible.
  assert(vtop_inv.has_value());
  return v * *vtop_inv;
}

Matrix rs_parity_matrix(size_t n, size_t p) {
  Matrix sys = rs_systematic_matrix(n, p);
  std::vector<size_t> bottom(p);
  for (size_t i = 0; i < p; ++i) bottom[i] = n + i;
  return sys.select_rows(bottom);
}

Matrix rs_cauchy_matrix(size_t n, size_t p) {
  if (n == 0 || p == 0 || n + p > 255) throw std::invalid_argument("rs_cauchy_matrix: bad (n,p)");
  Matrix m(n + p, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  for (size_t i = 0; i < p; ++i) {
    const uint8_t xi = alpha_pow(static_cast<unsigned>(n + i));
    for (size_t j = 0; j < n; ++j) {
      const uint8_t yj = alpha_pow(static_cast<unsigned>(j));
      m.at(n + i, j) = inv(static_cast<uint8_t>(xi ^ yj));
    }
  }
  return m;
}

namespace {
/// Total ones of the 8x8 companion expansion of a coefficient (the XOR mass
/// this coefficient contributes per occurrence).
size_t companion_ones(uint8_t coeff) {
  size_t ones = 0;
  for (int c = 0; c < 8; ++c) ones += static_cast<size_t>(std::popcount(static_cast<unsigned>(mul(coeff, static_cast<uint8_t>(1u << c)))));
  return ones;
}
}  // namespace

Matrix rs_cauchy_good_matrix(size_t n, size_t p) {
  Matrix m = rs_cauchy_matrix(n, p);
  for (size_t i = 0; i < p; ++i) {
    const size_t row = n + i;
    // Try dividing the row by each of its elements; keep the best bit count.
    size_t best_ones = SIZE_MAX;
    uint8_t best_div = 1;
    for (size_t cand = 0; cand < n; ++cand) {
      const uint8_t d = m.at(row, cand);
      if (d == 0) continue;
      size_t ones = 0;
      for (size_t j = 0; j < n; ++j) ones += companion_ones(div(m.at(row, j), d));
      if (ones < best_ones) {
        best_ones = ones;
        best_div = d;
      }
    }
    for (size_t j = 0; j < n; ++j) m.at(row, j) = div(m.at(row, j), best_div);
  }
  return m;
}

Matrix rs_isal_matrix(size_t n, size_t p) {
  if (n == 0 || p == 0 || n + p > 255) throw std::invalid_argument("rs_isal_matrix: bad (n,p)");
  Matrix m(n + p, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  uint8_t gen = 1;
  for (size_t i = 0; i < p; ++i) {
    uint8_t x = 1;
    for (size_t j = 0; j < n; ++j) {
      m.at(n + i, j) = x;
      x = mul(x, gen);
    }
    gen = mul(gen, kAlpha);
  }
  return m;
}

std::optional<Matrix> decode_matrix(const Matrix& code, const std::vector<size_t>& survivors) {
  if (survivors.size() != code.cols()) return std::nullopt;
  Matrix sub = code.select_rows(survivors);
  return sub.inverse();
}

}  // namespace xorec::gf
