// Dense matrices over GF(2^8): the coding-matrix algebra of §1/§7.1.
//
// Provides the Vandermonde construction, the "reduced" (systematic) form the
// paper and ISA-L use as the actual RS(n,p) encoding matrix, Gauss-Jordan
// inversion for decoding, and Cauchy matrices as an alternative MDS family.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <vector>

#include "gf/gf256.hpp"

namespace xorec::gf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), a_(rows * cols, 0) {}
  Matrix(size_t rows, size_t cols, std::initializer_list<uint8_t> vals);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  uint8_t& at(size_t r, size_t c) { return a_[r * cols_ + c]; }
  uint8_t at(size_t r, size_t c) const { return a_[r * cols_ + c]; }
  const uint8_t* row(size_t r) const { return a_.data() + r * cols_; }

  bool operator==(const Matrix&) const = default;

  static Matrix identity(size_t n);

  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product y = A x (x.size() == cols()).
  std::vector<uint8_t> apply(const std::vector<uint8_t>& x) const;

  /// Rows `which` of this matrix as a new matrix.
  Matrix select_rows(const std::vector<size_t>& which) const;

  /// Vertical stack [this; below]; column counts must match.
  Matrix vstack(const Matrix& below) const;

  /// Gauss-Jordan inverse; nullopt if singular.
  std::optional<Matrix> inverse() const;

  /// Rank via Gaussian elimination (useful for MDS property checks).
  size_t rank() const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<uint8_t> a_;
};

/// Raw (n+p) x n Vandermonde matrix of the "standard construction" in §7.1:
/// row i (1-based) = [1, alpha^i, (alpha^i)^2, ..., (alpha^i)^(n-1)].
Matrix vandermonde(size_t n_plus_p, size_t n);

/// The paper's / ISA-L's reduced (systematic) form: V * V_top^{-1}, which is
/// [I_n ; M] with M = bottom p rows. Every n x n submatrix stays invertible.
Matrix rs_systematic_matrix(size_t n, size_t p);

/// Only the parity part M (p x n) of rs_systematic_matrix.
Matrix rs_parity_matrix(size_t n, size_t p);

/// Systematic Cauchy construction [I_n ; C] with C[i][j] = 1/(x_i + y_j),
/// x_i = alpha^(n+i), y_j = alpha^j. MDS for n+p <= 255. Alternative family.
Matrix rs_cauchy_matrix(size_t n, size_t p);

/// Jerasure-style "good" Cauchy: each parity row of the Cauchy block is
/// divided by the row element whose companion expansion minimizes the row's
/// total bit count (division by a constant preserves the MDS property).
/// Fewer ones = fewer XORs before RePair even starts.
Matrix rs_cauchy_good_matrix(size_t n, size_t p);

/// ISA-L's gf_gen_rs_matrix construction: [I_n ; G] with G[i][j] = (2^i)^j —
/// parity row 0 is all-ones, row i uses powers of alpha^i. This is the exact
/// encoding matrix the paper's §7 evaluation uses (its parity bitmatrix for
/// RS(10,4) has 787 ones = 755 XORs, matching §7.5's P_enc), and it is much
/// sparser as a bitmatrix than the reduced Vandermonde. NOT guaranteed MDS
/// for arbitrary (n, p); verified MDS for the paper's grid RS(8..10, 2..4)
/// (see tests). Use Cauchy when a provable MDS guarantee is needed.
Matrix rs_isal_matrix(size_t n, size_t p);

/// For a failure pattern: given the systematic (n+p) x n matrix and the list
/// of surviving row ids (size n), returns the n x n inverse used for decode;
/// nullopt if the survivors are not decodable (never happens for MDS).
std::optional<Matrix> decode_matrix(const Matrix& code, const std::vector<size_t>& survivors);

}  // namespace xorec::gf
