// GF(2^16) arithmetic over the primitive polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
// Used to build wide-symbol (w = 16) coding matrices: the XOR-based method
// of §1 works for any GF(2^w) — a coefficient becomes a w x w bitmatrix over
// strips — and larger fields admit far more fragments (n + p <= 65535).
// Log/exp tables (256 KB) are built on first use.
#pragma once

#include <cstdint>

namespace xorec::gf16 {

inline constexpr uint32_t kPoly = 0x1100B;
inline constexpr uint16_t kAlpha = 0x0002;

/// Shift-and-reduce oracle (slow; table builder + tests).
constexpr uint16_t mul_slow(uint16_t a, uint16_t b) {
  uint32_t acc = 0;
  uint32_t aa = a;
  for (int bit = 0; bit < 16; ++bit) {
    if (b & (1u << bit)) acc ^= aa << bit;
  }
  for (int bit = 31; bit >= 16; --bit) {
    if (acc & (1u << bit)) acc ^= kPoly << (bit - 16);
  }
  return static_cast<uint16_t>(acc);
}

uint16_t mul(uint16_t a, uint16_t b);
uint16_t inv(uint16_t a);  // a != 0
uint16_t alpha_pow(unsigned e);

}  // namespace xorec::gf16
