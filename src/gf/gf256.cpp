#include "gf/gf256.hpp"

#include <stdexcept>

namespace xorec::gf {
namespace detail {

namespace {
Tables build_tables() {
  Tables t{};
  // exp/log via repeated multiplication by alpha.
  uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp_[i] = x;
    t.log_[x] = static_cast<uint8_t>(i);
    x = mul_slow(x, kAlpha);
  }
  t.exp_[255] = t.exp_[0];  // convenience wraparound
  t.log_[0] = 0;            // never read; keep deterministic

  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      t.mul_[a][b] = mul_slow(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
    }
  }
  t.inv_[0] = 0;  // never read
  for (int a = 1; a < 256; ++a) {
    t.inv_[a] = t.exp_[(255 - t.log_[a]) % 255];
  }
  return t;
}
}  // namespace

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

}  // namespace detail

uint8_t inv(uint8_t a) {
  if (a == 0) throw std::domain_error("gf::inv(0)");
  return detail::tables().inv_[a];
}

uint8_t div(uint8_t a, uint8_t b) {
  if (b == 0) throw std::domain_error("gf::div by zero");
  return mul(a, detail::tables().inv_[b]);
}

uint8_t pow(uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  unsigned l = t.log_[a];
  return t.exp_[(l * (e % 255u)) % 255u];
}

uint8_t alpha_pow(unsigned e) { return detail::tables().exp_[e % 255u]; }

uint8_t log(uint8_t a) {
  if (a == 0) throw std::domain_error("gf::log(0)");
  return detail::tables().log_[a];
}

}  // namespace xorec::gf
