// GF(2^8) arithmetic over the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1
// (0x11D), the same field ISA-L and the paper (§7.1) use.
//
// The field is exposed both as free functions on raw bytes (hot paths) and as
// a tiny value type `GF` for algebraic code (matrix routines, tests).
#pragma once

#include <array>
#include <cstdint>

namespace xorec::gf {

// Reduction polynomial without the leading x^8 term: x^4+x^3+x^2+1.
inline constexpr uint16_t kPoly = 0x11D;
// alpha = x (== 2) is a primitive element for 0x11D.
inline constexpr uint8_t kAlpha = 0x02;

namespace detail {
struct Tables {
  std::array<uint8_t, 256> exp_;       // exp_[i] = alpha^i (exp_[255] == exp_[0])
  std::array<uint8_t, 256> log_;       // log_[x] for x != 0; log_[0] unused
  std::array<std::array<uint8_t, 256>, 256> mul_;  // full product table
  std::array<uint8_t, 256> inv_;       // multiplicative inverse; inv_[0] unused
};
// Built once at first use; immutable afterwards.
const Tables& tables();
}  // namespace detail

/// Carry-less "schoolbook" multiply with polynomial reduction. Slow; used to
/// build the tables and as an independent oracle in tests.
constexpr uint8_t mul_slow(uint8_t a, uint8_t b) {
  uint16_t acc = 0;
  uint16_t aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) acc ^= static_cast<uint16_t>(aa << bit);
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1u << bit)) acc ^= static_cast<uint16_t>(kPoly << (bit - 8));
  }
  return static_cast<uint8_t>(acc);
}

inline uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
inline uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

inline uint8_t mul(uint8_t a, uint8_t b) { return detail::tables().mul_[a][b]; }

/// a / b; b must be nonzero.
uint8_t div(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be nonzero.
uint8_t inv(uint8_t a);

/// a^e with a^0 == 1 (including 0^0 == 1 by convention).
uint8_t pow(uint8_t a, unsigned e);

/// alpha^e for arbitrary e (reduced mod 255).
uint8_t alpha_pow(unsigned e);

/// Discrete log base alpha; a must be nonzero.
uint8_t log(uint8_t a);

/// Value-type wrapper so matrix code reads like linear algebra.
class GF {
 public:
  constexpr GF() = default;
  constexpr explicit GF(uint8_t v) : v_(v) {}
  constexpr uint8_t value() const { return v_; }

  friend GF operator+(GF a, GF b) { return GF(static_cast<uint8_t>(a.v_ ^ b.v_)); }
  friend GF operator-(GF a, GF b) { return a + b; }
  friend GF operator*(GF a, GF b) { return GF(mul(a.v_, b.v_)); }
  friend GF operator/(GF a, GF b) { return GF(div(a.v_, b.v_)); }
  GF& operator+=(GF o) { v_ ^= o.v_; return *this; }
  GF& operator*=(GF o) { v_ = mul(v_, o.v_); return *this; }
  friend bool operator==(GF a, GF b) = default;

  bool is_zero() const { return v_ == 0; }

 private:
  uint8_t v_ = 0;
};

}  // namespace xorec::gf
