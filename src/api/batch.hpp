// BatchCoder: an async multi-stripe coding session over one codec.
//
// The ROADMAP's scale direction: one-shot encode()/reconstruct() calls
// cannot express "repair a million stripes"; a session can. Jobs are
// submitted (returning std::future<void>), run FIFO across a dedicated
// runtime::TaskQueue worker group — stripe-level parallelism, complementing
// the executor's §8 intra-stripe block parallelism — and flush() (or the
// destructor) is the completion barrier.
//
//   xorec::BatchCoder batch("rs(10,4)@block=1024,batch=8");
//   auto plan = batch.codec().plan_reconstruct(available_ids, erased_ids);
//   for (auto& stripe : stripes)
//     futures.push_back(batch.submit_reconstruct(plan, stripe.avail, stripe.out,
//                                                stripe.frag_len));
//   batch.flush();   // or futures[i].get() individually
//
// The `batch=` spec key sizes the session: `batch=auto` (or omitting it)
// picks the worker count from a one-shot measured calibration
// (auto_batch_workers below), `batch=N` uses N workers. Everything else
// in the spec builds the codec as usual (api/registry.hpp) — plain
// make_codec() rejects `batch=` so the key can't be silently dropped.
//
// Buffer ownership: the pointer ARRAYS passed to submit_* are copied at
// submission; the fragment BUFFERS they point to stay caller-owned and must
// outlive the job (future ready / flush() returned). Jobs never touch two
// stripes' buffers at once, so submitting disjoint stripes is data-race
// free; submitting overlapping buffers is the caller's race to lose.
//
// Exceptions thrown by a job (e.g. unrecoverable pattern on the plan-less
// reconstruct path) are captured in that job's future; flush() itself never
// throws for job failures.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/codec.hpp"
#include "runtime/task_queue.hpp"

namespace xorec {

/// The `batch=auto` worker count: measured, not guessed. The first call
/// runs a tiny encode sweep (a small disabled-pipeline RS codec, a fixed
/// job batch per candidate worker count up to the hardware concurrency) and
/// picks the count with the best wall-clock throughput; the result is
/// memoized for the process, so every later auto session starts instantly.
/// Ties favor fewer workers (oversubscribed machines and single-core
/// containers stop pretending to have parallelism).
size_t auto_batch_workers();

class BatchCoder {
 public:
  /// Session over an existing codec. threads == 0 runs the measured
  /// calibration ("auto", see auto_batch_workers).
  explicit BatchCoder(std::shared_ptr<const Codec> codec, size_t threads = 0);

  /// Spec-string construction: "rs(10,4)@block=1024,batch=8". The batch=
  /// key (auto | N >= 1) sizes this session; the rest builds the codec.
  explicit BatchCoder(const std::string& spec);

  /// A codec-LESS session: the shard-affinity shape CodecService routes
  /// mixed-codec traffic through. Every submit must carry its own codec
  /// (the explicit-codec overloads below) or a plan; the codec-bound
  /// conveniences throw std::logic_error. threads == 0 is "auto" again.
  explicit BatchCoder(size_t threads);

  /// Destructor is a flush(): blocks until every submitted job has run.
  ~BatchCoder() = default;

  BatchCoder(const BatchCoder&) = delete;
  BatchCoder& operator=(const BatchCoder&) = delete;

  /// False for codec-less shard sessions, where codec() throws.
  bool has_codec() const { return codec_ != nullptr; }
  const Codec& codec() const;
  std::shared_ptr<const Codec> codec_ptr() const { return codec_; }
  size_t threads() const { return queue_.threads(); }
  size_t submitted() const { return submitted_; }
  /// Jobs submitted but not yet finished (the shard queue depth).
  size_t pending() const { return queue_.depth(); }

  /// Encode one stripe: data_fragments() input pointers, parity_fragments()
  /// output pointers, frag_len as in Codec::encode.
  std::future<void> submit_encode(const uint8_t* const* data, uint8_t* const* parity,
                                  size_t frag_len);

  /// Explicit-codec encode: the multi-codec shard path (CodecService) —
  /// this session's own codec, if any, is bypassed.
  std::future<void> submit_encode(std::shared_ptr<const Codec> codec,
                                  const uint8_t* const* data, uint8_t* const* parity,
                                  size_t frag_len);

  /// Repair one stripe with a prepared plan (the degraded-read fast path —
  /// plan once, submit per stripe). available_frags is parallel to
  /// plan->available(), out to plan->erased().
  std::future<void> submit_reconstruct(std::shared_ptr<const ReconstructPlan> plan,
                                       const uint8_t* const* available_frags,
                                       uint8_t* const* out, size_t frag_len);

  /// Plan-less convenience: the plan lookup happens inside the job (memoized
  /// per codec); bad ids / unrecoverable patterns surface via the future.
  std::future<void> submit_reconstruct(std::vector<uint32_t> available,
                                       const uint8_t* const* available_frags,
                                       std::vector<uint32_t> erased, uint8_t* const* out,
                                       size_t frag_len);

  /// Explicit-codec plan-less reconstruct (multi-codec shard path).
  std::future<void> submit_reconstruct(std::shared_ptr<const Codec> codec,
                                       std::vector<uint32_t> available,
                                       const uint8_t* const* available_frags,
                                       std::vector<uint32_t> erased, uint8_t* const* out,
                                       size_t frag_len);

  /// Barrier: returns when every job submitted so far has finished.
  void flush() { queue_.wait_idle(); }

 private:
  struct Session {
    std::shared_ptr<const Codec> codec;
    size_t threads;
  };
  explicit BatchCoder(Session s) : BatchCoder(std::move(s.codec), s.threads) {}
  static Session parse_session(const std::string& spec);

  std::shared_ptr<const Codec> codec_;
  runtime::TaskQueue queue_;
  std::atomic<size_t> submitted_{0};
};

}  // namespace xorec
