// CodecService: the process-level serving façade over everything below it —
// the ROADMAP's "sharded multi-codec service" scale step.
//
// A storage frontend serving many tenants does not want to hand-assemble
// make_codec + BatchCoder + plan wiring per request; it wants a pool:
//
//   xorec::CodecService service;                     // N-way sharded
//   auto h = service.acquire("rs(10,4)@block=1024"); // pooled codec lease
//   h.encode(data_ptrs, parity_ptrs, frag_len);      // routed to h's shard
//   auto plan = h.plan_reconstruct(available, erased);
//   h.reconstruct(plan, avail_ptrs, out_ptrs, frag_len).get();
//   xorec::ServiceStats s = service.stats();         // per-shard + per-pool
//
// Pooling: specs are canonicalized (canonical_spec) before lookup, so
// "rs(10,4)@block=1024,threads=1" and "rs(10, 4) @ threads=1, block=1024"
// lease ONE codec instance — and, through the shared PlanCache, one set of
// compiled programs. Each pool entry is pinned round-robin to a shard; a
// shard is a codec-less BatchCoder session (dedicated TaskQueue workers),
// so traffic for different pools proceeds in parallel while one pool's jobs
// stay FIFO on their shard.
//
// Warmup/persistence: the plan cache amortizes compilation only when reused,
// and a fresh process starts cold. save_profile(path) persists the service's
// plan-cache KEY SET (specs + erasure patterns — ec/plan_cache_io.hpp, not
// compiled code); warmup(path) replays it at startup, recompiling every hot
// pattern before traffic arrives. A spec can also carry `warmup=PATH` —
// acquire() runs the replay when the profile exists and skips it quietly
// when it does not (first boot). stats() reports the plan-cache hit rate
// since the warmup point, which is the serving-time metric: a warmed
// process serves its replayed patterns at ~100% hits.
//
// Threading: every member is thread-safe. Handles are value types; they
// remain valid for the service's lifetime (pools are never dropped) and
// must not outlive it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "api/batch.hpp"
#include "api/codec.hpp"
#include "runtime/jit_cache.hpp"

namespace xorec::ec {
class PlanCache;
}

namespace xorec {

class CodecService;
struct CodecSpec;  // api/registry.hpp

/// One shard's routing counters. Throughput is averaged over the service's
/// uptime (bytes of payload moved by routed jobs / seconds alive) — a
/// windowed rate lives in obs::Sampler, not here.
struct ShardStats {
  size_t shard = 0;
  size_t workers = 0;
  size_t pools = 0;        // pools currently pinned to this shard
  size_t submitted = 0;    // jobs routed to this shard so far
  size_t queue_depth = 0;  // jobs submitted but not yet finished, right now
  uint64_t bytes_coded = 0;  // payload bytes of routed jobs (data in + rebuilt out)
  /// GigaBYTES per second (bytes_coded / uptime / 1e9). The capital B is
  /// load-bearing: an earlier revision shipped this as `throughput_gbps`,
  /// a gigaBIT name over a gigabyte value.
  double throughput_gBps = 0;
};

/// One pool entry's counters: a pooled codec and the clients leasing it.
struct PoolStats {
  std::string spec;  // canonical pool key
  size_t shard = 0;  // the shard carrying this pool's traffic
  size_t clients = 0;       // acquire() calls resolved to this pool
  size_t encodes = 0;       // routed encode jobs
  size_t plans = 0;         // plan_reconstruct calls through handles
  size_t reconstructs = 0;  // routed reconstruct/rebuild jobs
  size_t cached_programs = 0;  // plan-cache entries for this codec identity
  /// Repair traffic of the routed reconstruct/rebuild jobs — what a repair
  /// orchestrator moves over the network. `strips_read` and bytes-in follow
  /// each plan's read_set() (reduced-read families charge less than plain
  /// RS); plan-less rebuild() jobs charge every survivor in full.
  size_t strips_read = 0;        // survivor strips read by repair jobs
  uint64_t repair_bytes_in = 0;  // survivor bytes read by repair jobs
  uint64_t repair_bytes_out = 0; // rebuilt bytes written by repair jobs
  /// Wire traffic attributed to this pool by the network front-end
  /// (net::NetServer / DatagramReceiver call note_net_request per served
  /// request or stripe group); zero for purely in-process pools.
  size_t net_requests = 0;
  uint64_t net_bytes_in = 0;
  uint64_t net_bytes_out = 0;
  /// The execution backend/ISA this pool's codec resolved to (Codec::
  /// exec_info) — e.g. "lowered"/"avx512". Empty for non-SLP codecs.
  std::string exec_backend;
  std::string exec_isa;
};

struct ServiceStats {
  std::vector<ShardStats> shards;
  std::vector<PoolStats> pools;  // in pool-creation order
  /// The service's plan-cache view: the injected cache's counters, else the
  /// process-shared instance's (NOT the all-caches aggregate — a private
  /// codec elsewhere must not pollute the serving hit rate).
  CacheStats cache;
  /// Plan-cache traffic since the warmup point (end of the last warmup(),
  /// else service construction): the serving-time hit rate. A warmed
  /// process replays its profile before this window opens, so client
  /// lookups land ~100% hits; a cold one compiles inside the window.
  /// Scope caveat: the window is a delta of the service's cache view, so
  /// with the default process-shared cache OTHER shared-cache codecs in
  /// the process (a second service, bare make_codec traffic) land in it
  /// too; inject Options::plan_cache for an exact per-service window.
  size_t warm_hits = 0, warm_misses = 0;
  /// Per-level simulated miss totals of the multilevel-scheduled programs
  /// the service's cache view currently holds (ec::PlanCache::
  /// level_miss_totals — last level = memory loads). Empty when nothing
  /// cached was multilevel-scheduled.
  std::vector<size_t> cache_level_misses;
  double uptime_s = 0;
  /// Process-wide jit artifact-cache counters (runtime/jit_cache.hpp):
  /// compiles vs warm artifact loads vs lowered fallbacks. A warmed fleet
  /// member should show compiles == 0 — every exec=jit pool activated by
  /// dlopen'ing a shared artifact. Zero-valued for services with no jit
  /// pools.
  runtime::JitCacheStats jit;

  double warm_hit_rate() const {
    const size_t total = warm_hits + warm_misses;
    return total ? static_cast<double>(warm_hits) / static_cast<double>(total) : 0.0;
  }
};

/// A client's lease on one pooled codec: cheap to copy, routed through the
/// pool's shard session. Obtain from CodecService::acquire.
class ServiceHandle {
 public:
  const Codec& codec() const;
  std::shared_ptr<const Codec> codec_ptr() const;
  /// Canonical pool key this lease resolved to.
  const std::string& spec() const;
  size_t shard() const;

  /// Encode one stripe on the pool's shard (buffer rules as BatchCoder).
  std::future<void> encode(const uint8_t* const* data, uint8_t* const* parity,
                           size_t frag_len) const;

  /// Solve an erasure pattern once (counted in PoolStats::plans); share the
  /// plan across stripes and submit executions below.
  std::shared_ptr<const ReconstructPlan> plan_reconstruct(
      const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const;

  /// Execute a prepared plan over one stripe on the pool's shard.
  std::future<void> reconstruct(std::shared_ptr<const ReconstructPlan> plan,
                                const uint8_t* const* available_frags,
                                uint8_t* const* out, size_t frag_len) const;

  /// Plan-less repair of one stripe (lookup memoized inside the job);
  /// unrecoverable patterns surface via the future.
  std::future<void> rebuild(std::vector<uint32_t> available,
                            const uint8_t* const* available_frags,
                            std::vector<uint32_t> erased, uint8_t* const* out,
                            size_t frag_len) const;

  /// The shard session carrying this pool's traffic (ObjectCodec routing).
  BatchCoder& session() const;

  /// Attribute one served network request's wire bytes to this pool
  /// (PoolStats::net_*) — called by the net front-end, not by codecs.
  void note_net_request(uint64_t bytes_in, uint64_t bytes_out) const;

 private:
  friend class CodecService;
  ServiceHandle(CodecService* service, void* pool) : service_(service), pool_(pool) {}
  CodecService* service_;
  void* pool_;  // CodecService::Pool — opaque to keep the layout private
};

class CodecService {
 public:
  static constexpr size_t kDefaultShards = 4;

  struct Options {
    size_t shards = 0;             // 0 = kDefaultShards
    size_t workers_per_shard = 1;  // BatchCoder workers per shard; 0 = auto
    /// Plan-cache the pooled codecs compile through: null = honor each
    /// spec's own cache= choice (process-shared by default). Injecting a
    /// cache gives the service an isolated compilation domain — tests and
    /// multi-tenant isolation use this.
    std::shared_ptr<ec::PlanCache> plan_cache;
  };

  CodecService() : CodecService(Options()) {}
  explicit CodecService(Options opt);
  /// Drains every shard (all routed jobs finish), then joins the workers.
  ~CodecService();

  CodecService(const CodecService&) = delete;
  CodecService& operator=(const CodecService&) = delete;

  /// Lease the pooled codec for `spec` (canonicalized; pool created on
  /// first use, pinned round-robin to a shard). A `warmup=PATH` key replays
  /// that profile first and is stripped from the pool key; each path
  /// replays at most once per service, a missing file is a quiet cold
  /// start (first boot), and a corrupt one throws like warmup() does.
  /// Throws std::invalid_argument on bad specs.
  ServiceHandle acquire(const std::string& spec);

  struct WarmupReport {
    size_t codecs = 0;          // profile entries replayed (pools touched)
    size_t patterns = 0;        // pattern keys replayed
    size_t compiled = 0;        // cache misses the replay paid (cold entries)
    size_t already_cached = 0;  // replayed patterns that were already warm
    size_t skipped = 0;         // unparseable/unsolvable records (version drift)
  };

  /// Replay a saved profile: acquire each recorded spec and precompile each
  /// recorded erasure pattern, then reset the warm-hit-rate window (stats()
  /// measures serving traffic from here). Throws std::runtime_error when
  /// the file cannot be read or parsed; records that no longer apply are
  /// counted in `skipped`, not fatal.
  WarmupReport warmup(const std::string& path);

  /// Persist every pool's plan-cache footprint (specs + pattern keys, not
  /// code) for the next process's warmup(). Returns patterns written.
  size_t save_profile(const std::string& path) const;

  /// Barrier: every job routed so far has finished.
  void flush();

  size_t shard_count() const { return shards_.size(); }

  /// Measured per-shard load, indexed by shard id — what depth-driven
  /// placement consumes (obs::Sampler::drive_placement installs its
  /// window-mean TaskQueue depths here).
  using ShardLoadProvider = std::function<std::vector<double>()>;

  /// Route NEW pools to the least-loaded shard per `provider` instead of
  /// round-robin. Called OUTSIDE the service lock, so a provider may take
  /// its own locks (and even call stats()); a throwing provider, an empty
  /// one ({}), or a load vector of the wrong size falls back to
  /// round-robin. Existing pools keep their pins.
  void set_shard_load_provider(ShardLoadProvider provider);

  /// A consistent-enough snapshot under load: per-counter atomic reads —
  /// totals may trail in-flight traffic by a job, never tear.
  ServiceStats stats() const;

 private:
  friend class ServiceHandle;
  struct Pool;
  struct Shard;

  Pool& pool_for(const CodecSpec& parsed);  // acquire minus the warmup= side effect
  /// The shard for the next new pool: argmin of `loads` (tie-broken by
  /// fewest pools, then lowest index), or round-robin when `loads` is
  /// absent/mis-sized. Caller holds mu_.
  size_t pick_shard_locked(const std::vector<double>& loads) const;

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex mu_;  // guards pools_ / by_spec_ / baseline_ / shard_pools_ / shard_load_
  std::vector<std::unique_ptr<Pool>> pools_;  // creation order; never erased
  std::vector<size_t> shard_pools_;  // pools pinned per shard (placement tie-break)
  ShardLoadProvider shard_load_;     // copied out of mu_ before invocation
  std::unordered_map<std::string, Pool*> by_spec_;
  std::unordered_set<std::string> warmed_paths_;  // warmup= replays once per path
  std::chrono::steady_clock::time_point start_;
  size_t baseline_hits_ = 0, baseline_misses_ = 0;  // warm-window origin

  CacheStats cache_view() const;
};

}  // namespace xorec
