// The unified erasure-coding interface: every codec in the library — RS as
// an optimized XOR SLP, the array codes (EVENODD / RDP / STAR), wide-symbol
// RS over GF(2^16), the GF-table ISA-L-style baseline — implements this one
// contract, so blob storage, benches and tests are written once against it.
//
// Data model: an object is split into data_fragments() equal fragments;
// encode() fills parity_fragments() parity fragments; reconstruct() rebuilds
// any erased fragments (data and/or parity) from the survivors. Fragment
// lengths must be positive multiples of fragment_multiple() — the number of
// strips a codec slices each fragment into (8 for RS over GF(2^8), p-1 for
// the array codes, 1 for byte-oriented codecs).
//
// Argument validation happens here, at the API boundary: bad fragment
// lengths, out-of-range ids, and duplicated or overlapping id sets all
// throw before any codec touches a buffer. Survivor-count policy is the
// codec's own job (MDS codecs require data_fragments() survivors; XOR codes
// defer to their F2 solver) — implementations must reject patterns they
// cannot recover with std::invalid_argument, and may otherwise assume
// validated inputs in the *_impl hooks.
//
// Instances are obtained from the string-spec registry (api/registry.hpp):
//   auto codec = xorec::make_codec("rs(10,4)");
// or constructed directly (ec::RsCodec, altcodes::XorCodec, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace xorec::slp {
struct PipelineResult;
}

namespace xorec {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual size_t data_fragments() const = 0;
  virtual size_t parity_fragments() const = 0;
  size_t total_fragments() const { return data_fragments() + parity_fragments(); }

  /// Fragment lengths must be positive multiples of this.
  virtual size_t fragment_multiple() const = 0;

  /// Normalized spec of this codec, e.g. "rs(10,4)" or "evenodd(p=11)".
  virtual std::string name() const = 0;

  /// Optimizer artifacts of the encoding SLP, for inspection/benches.
  /// Null for codecs that do not run through the SLP pipeline.
  virtual const slp::PipelineResult* encode_pipeline() const { return nullptr; }

  /// data: data_fragments() pointers; parity: parity_fragments() pointers
  /// (written). frag_len must be a positive multiple of fragment_multiple().
  void encode(const uint8_t* const* data, uint8_t* const* parity, size_t frag_len) const;

  /// Rebuild erased fragments (data and/or parity).
  ///   available: surviving fragment ids; buffers parallel to it.
  ///   erased:    fragment ids to rebuild; `out` parallel writable buffers.
  /// The id sets must be duplicate-free and disjoint. MDS codecs require at
  /// least data_fragments() survivors; non-MDS XOR codes accept any pattern
  /// their F2 solver finds solvable. Unrecoverable patterns throw
  /// std::invalid_argument.
  void reconstruct(const std::vector<uint32_t>& available,
                   const uint8_t* const* available_frags,
                   const std::vector<uint32_t>& erased, uint8_t* const* out,
                   size_t frag_len) const;

  /// Span views: same semantics, plus the span extents are checked against
  /// the codec geometry (data/parity counts, parallel id/buffer lists).
  void encode(std::span<const uint8_t* const> data, std::span<uint8_t* const> parity,
              size_t frag_len) const;
  void reconstruct(std::span<const uint32_t> available,
                   std::span<const uint8_t* const> available_frags,
                   std::span<const uint32_t> erased, std::span<uint8_t* const> out,
                   size_t frag_len) const;

 protected:
  virtual void encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                           size_t frag_len) const = 0;
  virtual void reconstruct_impl(const std::vector<uint32_t>& available,
                                const uint8_t* const* available_frags,
                                const std::vector<uint32_t>& erased, uint8_t* const* out,
                                size_t frag_len) const = 0;

 private:
  void check_frag_len(size_t frag_len) const;
  void check_id_sets(const std::vector<uint32_t>& available,
                     const std::vector<uint32_t>& erased) const;
};

}  // namespace xorec
