// The unified erasure-coding interface: every codec in the library — RS as
// an optimized XOR SLP, the array codes (EVENODD / RDP / STAR), wide-symbol
// RS over GF(2^16), the GF-table ISA-L-style baseline — implements this one
// contract, so blob storage, benches and tests are written once against it.
//
// Data model: an object is split into data_fragments() equal fragments;
// encode() fills parity_fragments() parity fragments; reconstruct() rebuilds
// any erased fragments (data and/or parity) from the survivors. Fragment
// lengths must be positive multiples of fragment_multiple() — the number of
// strips a codec slices each fragment into (8 for RS over GF(2^8), p-1 for
// the array codes, 1 for byte-oriented codecs).
//
// Plan/execute: repair is two phases. plan_reconstruct() solves an erasure
// pattern ONCE — deriving and compiling the repair program — and returns an
// immutable, shareable ReconstructPlan; ReconstructPlan::execute() then runs
// that program over any number of stripes with zero re-solving. The one-shot
// reconstruct() below is a thin plan-lookup-and-execute over the same
// machinery (compiled programs are memoized per codec, so repeated one-shot
// calls stay fast too — the plan object additionally skips the per-call
// pattern canonicalization and is the handle batch sessions take).
//
// Argument validation happens here, at the API boundary: bad fragment
// lengths, out-of-range ids, and duplicated or overlapping id sets all
// throw before any codec touches a buffer. Survivor-count policy is the
// codec's own job (MDS codecs require data_fragments() survivors; XOR codes
// defer to their F2 solver) — implementations must reject patterns they
// cannot recover with std::invalid_argument, and may otherwise assume
// validated inputs in the *_impl hooks.
//
// Instances are obtained from the string-spec registry (api/registry.hpp):
//   auto codec = xorec::make_codec("rs(10,4)");
// or constructed directly (ec::RsCodec, altcodes::XorCodec, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace xorec::slp {
struct PipelineResult;
}

namespace xorec {

/// Static cost measures of the compiled repair program(s) a plan executes,
/// in the paper's accounting (slp/metrics.hpp). All-zero for plans that do
/// not run through the SLP pipeline (the GF-table baseline, fallbacks).
struct PlanStats {
  size_t xor_ops = 0;       // Σ real XORs across steps (#⊕)
  size_t instructions = 0;  // Σ SLP instructions across steps
  size_t mem_accesses = 0;  // Σ #M across steps
  size_t nvar = 0;          // max live variables over any step
  size_t ccap = 0;          // max abstract-cache demand over any step
  size_t steps = 0;         // compiled programs this plan executes (0..2)
};

/// Counters of the plan-compilation cache a codec draws its compiled
/// programs from (ec::PlanCache). When the codec uses the process-shared
/// cache (the default), the counters are service-wide — every codec
/// instance contributes; `shared` says which view this is. All-zero for
/// codecs that do not compile programs (the GF-table baseline).
struct CacheStats {
  size_t entries = 0;      // programs currently cached
  size_t hits = 0;         // lookups served without compiling
  size_t misses = 0;       // lookups that compiled
  size_t evictions = 0;    // entries LRU-evicted (capacity pressure)
  uint64_t compile_ns = 0; // total wall time spent compiling on misses
  /// True for a process-wide view (the shared service cache, or the
  /// all-instances aggregate xorec::plan_cache_stats() returns); false for
  /// one private codec cache's counters.
  bool shared = false;
};

/// What a plan's execute() actually READS from the survivor buffers — the
/// repair-traffic measure of a recovery plan. A plain RS repair reads k full
/// fragments; the reduced-read families (lrc, piggyback) compile plans that
/// touch fewer fragments and/or fewer strips per fragment, and this is where
/// that saving becomes visible to a caller (the cluster repair orchestrator
/// prices network moves with it). Derived from the compiled programs' flat
/// base SLPs, which are a safe superset of every optimized form — so the set
/// is an upper bound on actual reads, never an undercount.
struct PlanReadSet {
  /// Survivor fragment ids the plan dereferences, sorted ascending —
  /// a subset of ReconstructPlan::available().
  std::vector<uint32_t> fragments;
  /// Strips read per entry of `fragments` (parallel). Each fragment holds
  /// fragment_multiple() strips, so a partial read of a fragment (piggyback
  /// reads only the last substripe of most blocks) counts < that.
  std::vector<uint32_t> fragment_strips;
  /// Total distinct input strips read across all steps (Σ fragment_strips).
  size_t strips = 0;
};

/// The execution backend a codec's compiled programs actually run on, after
/// exec=auto resolution, host-capability degrade and the XOREC_FORCE_ISA
/// override — e.g. {"lowered", "avx512"}. Empty strings for codecs without
/// a blocked executor (the GF-table baseline, custom codecs).
struct ExecInfo {
  std::string backend;
  std::string isa;
};

/// A codec's footprint in its plan-compilation cache: the fingerprints its
/// programs are keyed under and the pattern keys currently cached
/// (MRU-first per cache shard). All-zero fingerprints mean the codec does
/// not compile programs (the GF-table baseline, custom fallbacks).
/// CodecService persists footprints as a warmup profile (ec/plan_cache_io)
/// and replays them at startup to precompile the hot patterns.
struct PlanFootprint {
  uint64_t matrix_fp = 0;
  uint64_t matrix_fp2 = 0;
  uint64_t config_fp = 0;
  std::vector<std::vector<uint32_t>> patterns;

  bool has_identity() const { return matrix_fp || matrix_fp2 || config_fp; }
};

/// A validated, immutable, cacheable repair program for ONE erasure pattern
/// of ONE codec geometry: the available/erased id sets are fixed at plan
/// time, all solving and compiling is done, and execute() only moves bytes.
/// Obtain from Codec::plan_reconstruct; share freely across threads and
/// stripes (execute is const and thread-safe).
///
/// Lifetime: plans produced by the built-in codecs are self-contained (they
/// hold shared ownership of their compiled programs) and may outlive the
/// codec. The base-class fallback plan (used only by Codec subclasses that
/// do not override plan_reconstruct_impl) borrows the codec and must not
/// outlive it.
class ReconstructPlan {
 public:
  virtual ~ReconstructPlan() = default;

  /// Name of the codec this plan was derived from, e.g. "rs(10,4)".
  const std::string& codec_name() const { return codec_name_; }
  /// The surviving fragment ids execute() expects buffers for, in order.
  const std::vector<uint32_t>& available() const { return available_; }
  /// The fragment ids execute() writes, parallel to its `out` array.
  const std::vector<uint32_t>& erased() const { return erased_; }

  /// Real XOR count of the compiled repair program (the paper's #⊕);
  /// 0 for non-SLP plans. Shorthand for schedule_stats().xor_ops.
  size_t xor_count() const { return schedule_stats().xor_ops; }

  /// Full static cost measures (computed lazily on first call, then cached).
  const PlanStats& schedule_stats() const;

  /// Strips a codec slices each fragment into (the codec's
  /// fragment_multiple() at plan time) — the strip granularity of read_set().
  size_t fragment_multiple() const { return fragment_multiple_; }

  /// The survivor fragments/strips this plan reads (computed lazily, then
  /// cached). Default: every fragment of available(), all strips — correct
  /// for fallback and non-SLP plans; the compiled bitmatrix plans override
  /// compute_read_set() with the true (reduced) set.
  const PlanReadSet& read_set() const;

  /// Optimizer artifacts of the data-decode step, where applicable (null
  /// for parity-only plans, non-SLP codecs and fallbacks).
  virtual const slp::PipelineResult* decode_pipeline() const { return nullptr; }

  /// Run the repair: `available_frags` parallel to available(), `out`
  /// writable buffers parallel to erased(). frag_len must be a positive
  /// multiple of the codec's fragment_multiple() (it may differ from call
  /// to call — the plan is geometry-, not length-bound). No re-solving.
  void execute(const uint8_t* const* available_frags, uint8_t* const* out,
               size_t frag_len) const;

 protected:
  ReconstructPlan(std::string codec_name, size_t fragment_multiple,
                  std::vector<uint32_t> available, std::vector<uint32_t> erased);

  virtual void execute_impl(const uint8_t* const* available_frags, uint8_t* const* out,
                            size_t frag_len) const = 0;
  /// Compute the stats once; called lazily under a once-flag.
  virtual PlanStats compute_stats() const { return {}; }
  /// Compute the read set once; called lazily under a once-flag. The default
  /// charges every survivor in full (no compiled program to inspect).
  virtual PlanReadSet compute_read_set() const;

 private:
  std::string codec_name_;
  size_t fragment_multiple_;
  std::vector<uint32_t> available_, erased_;
  mutable std::once_flag stats_once_;
  mutable PlanStats stats_;
  mutable std::once_flag read_set_once_;
  mutable PlanReadSet read_set_;
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual size_t data_fragments() const = 0;
  virtual size_t parity_fragments() const = 0;
  size_t total_fragments() const { return data_fragments() + parity_fragments(); }

  /// Fragment lengths must be positive multiples of this.
  virtual size_t fragment_multiple() const = 0;

  /// Normalized spec of this codec, e.g. "rs(10,4)" or "evenodd(p=11)".
  virtual std::string name() const = 0;

  /// Optimizer artifacts of the encoding SLP, for inspection/benches.
  /// Null for codecs that do not run through the SLP pipeline.
  virtual const slp::PipelineResult* encode_pipeline() const { return nullptr; }

  /// Counters of the plan cache this codec compiles through (process-shared
  /// by default — see xorec::plan_cache_stats() for the all-caches view).
  /// All-zero for codecs without an SLP compile path.
  virtual CacheStats cache_stats() const { return {}; }

  /// This codec's plan-cache footprint (identity fingerprints + cached
  /// pattern keys) — what a warmup profile records. Default: no footprint.
  virtual PlanFootprint plan_footprint() const { return {}; }

  /// Just the number of programs cached for this codec's identity — the
  /// cheap counterpart of plan_footprint() for stats polling (no pattern
  /// materialization). Default: none.
  virtual size_t cached_program_count() const { return 0; }

  /// The resolved execution backend + ISA this codec runs (ServiceStats
  /// surfaces it per pool). Default: no executor.
  virtual ExecInfo exec_info() const { return {}; }

  /// data: data_fragments() pointers; parity: parity_fragments() pointers
  /// (written). frag_len must be a positive multiple of fragment_multiple().
  void encode(const uint8_t* const* data, uint8_t* const* parity, size_t frag_len) const;

  /// Solve `erased` given `available` once and return the compiled repair
  /// plan. The id sets must be duplicate-free and disjoint (checked here).
  /// Every built-in codec solves at plan time, so unrecoverable patterns
  /// throw std::invalid_argument from this call; a custom codec still on
  /// the base-class fallback defers solving to execute(), where the same
  /// exception surfaces instead. An empty `erased` yields a no-op plan.
  /// Reuse the plan across stripes/objects with the same erasure pattern —
  /// degraded-read-heavy workloads amortize the solver this way (and
  /// BatchCoder sessions take plans directly).
  std::shared_ptr<const ReconstructPlan> plan_reconstruct(
      const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const;

  /// Rebuild erased fragments (data and/or parity).
  ///   available: surviving fragment ids; buffers parallel to it.
  ///   erased:    fragment ids to rebuild; `out` parallel writable buffers.
  /// The id sets must be duplicate-free and disjoint. MDS codecs require at
  /// least data_fragments() survivors; non-MDS XOR codes accept any pattern
  /// their F2 solver finds solvable. Unrecoverable patterns throw
  /// std::invalid_argument. Equivalent to plan_reconstruct(...)->execute(...).
  void reconstruct(const std::vector<uint32_t>& available,
                   const uint8_t* const* available_frags,
                   const std::vector<uint32_t>& erased, uint8_t* const* out,
                   size_t frag_len) const;

  /// Span views: same semantics, plus the span extents are checked against
  /// the codec geometry (data/parity counts, parallel id/buffer lists).
  void encode(std::span<const uint8_t* const> data, std::span<uint8_t* const> parity,
              size_t frag_len) const;
  void reconstruct(std::span<const uint32_t> available,
                   std::span<const uint8_t* const> available_frags,
                   std::span<const uint32_t> erased, std::span<uint8_t* const> out,
                   size_t frag_len) const;

 protected:
  virtual void encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                           size_t frag_len) const = 0;
  virtual void reconstruct_impl(const std::vector<uint32_t>& available,
                                const uint8_t* const* available_frags,
                                const std::vector<uint32_t>& erased, uint8_t* const* out,
                                size_t frag_len) const = 0;
  /// Default: a fallback plan that re-runs reconstruct_impl on every
  /// execute() and borrows this codec (must not outlive it). The built-in
  /// codecs override with real compiled plans; overriding is strongly
  /// recommended for any codec used with plan caching or BatchCoder.
  virtual std::shared_ptr<const ReconstructPlan> plan_reconstruct_impl(
      const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const;

 private:
  void check_frag_len(size_t frag_len) const;
  void check_id_sets(const std::vector<uint32_t>& available,
                     const std::vector<uint32_t>& erased) const;
};

}  // namespace xorec
