// Measured machine calibration behind the `block=auto` and `exec=auto` spec
// keys: §7.4 as a library utility. The paper tuned the executor block size B
// by hand per machine (B=1K on its intel box, B=2K on amd);
// auto_block_size() runs that sweep once per process — compile one encode
// SLP, time it at each candidate B, keep the winner — and memoizes the
// result, so every later `make_codec("...@block=auto")` resolves instantly.
// auto_exec_backend() applies the same treatment to the execution backend
// choice (interp vs lowered vs jit). examples/block_tuner remains the
// verbose, interactive version of the same experiment.
#pragma once

#include <cstddef>

#include "runtime/executor.hpp"

namespace xorec {

/// This machine's best executor block size in bytes, measured once and
/// memoized for the process. Candidates are the paper's §7.4 sweep
/// (512..8192); ties keep the smaller block (denser cache residency).
size_t auto_block_size();

/// This machine's best execution backend, measured once and memoized for
/// the process: interp vs lowered vs jit timed on the same RS(8,3) encode
/// workload as auto_block_size(). A challenger must beat lowered by 5% to
/// displace it (hysteresis keeps the no-compiler-needed default on machines
/// where the difference is noise), and jit only competes when a host
/// compiler is available — so the result is always runnable. Never returns
/// Auto.
runtime::ExecBackend auto_exec_backend();

}  // namespace xorec
