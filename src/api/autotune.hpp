// Measured machine calibration behind the `block=auto` spec key: §7.4 as a
// library utility. The paper tuned the executor block size B by hand per
// machine (B=1K on its intel box, B=2K on amd); auto_block_size() runs that
// sweep once per process — compile one encode SLP, time it at each candidate
// B, keep the winner — and memoizes the result, so every later
// `make_codec("...@block=auto")` resolves instantly. examples/block_tuner
// remains the verbose, interactive version of the same experiment.
#pragma once

#include <cstddef>

namespace xorec {

/// This machine's best executor block size in bytes, measured once and
/// memoized for the process. Candidates are the paper's §7.4 sweep
/// (512..8192); ties keep the smaller block (denser cache residency).
size_t auto_block_size();

}  // namespace xorec
