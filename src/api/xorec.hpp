// Umbrella public header: the Codec interface plus the string-spec registry.
// Applications normally need nothing else:
//
//   #include "api/xorec.hpp"
//   auto codec = xorec::make_codec("rs(10,4)");
#pragma once

#include "api/codec.hpp"      // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
