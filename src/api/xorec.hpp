// Umbrella public header: the Codec interface (with plan_reconstruct), the
// string-spec registry, BatchCoder sessions and the CodecService serving
// façade. Applications normally need nothing else:
//
//   #include "api/xorec.hpp"
//   auto codec = xorec::make_codec("rs(10,4)");
//   auto plan  = codec->plan_reconstruct(available_ids, erased_ids);
//   xorec::BatchCoder batch("rs(10,4)@batch=8");
//   xorec::CodecService service;
//   auto lease = service.acquire("rs(10,4)@warmup=plans.profile");
#pragma once

#include "api/autotune.hpp"   // IWYU pragma: export
#include "api/batch.hpp"      // IWYU pragma: export
#include "api/codec.hpp"      // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
#include "api/service.hpp"    // IWYU pragma: export
