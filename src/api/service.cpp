#include "api/service.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "ec/bitmatrix_codec_core.hpp"
#include "ec/plan_cache.hpp"
#include "ec/plan_cache_io.hpp"

namespace xorec {

struct CodecService::Pool {
  std::string spec;  // canonical key
  std::shared_ptr<const Codec> codec;
  size_t shard = 0;
  std::atomic<size_t> clients{0};
  std::atomic<size_t> encodes{0};
  std::atomic<size_t> plans{0};
  std::atomic<size_t> reconstructs{0};
  std::atomic<size_t> strips_read{0};
  std::atomic<uint64_t> repair_bytes_in{0};
  std::atomic<uint64_t> repair_bytes_out{0};
  std::atomic<size_t> net_requests{0};
  std::atomic<uint64_t> net_bytes_in{0};
  std::atomic<uint64_t> net_bytes_out{0};
};

struct CodecService::Shard {
  explicit Shard(size_t workers) : session(workers) {}
  BatchCoder session;  // codec-less: every submit names its pool's codec
  // Payload bytes of handle-routed jobs (ObjectCodec blob jobs ride the
  // session too but size their own buffers; the session's submitted()
  // counter covers both).
  std::atomic<uint64_t> bytes{0};
};

// ---- ServiceHandle ---------------------------------------------------------
// ServiceHandle is a friend of CodecService, so it may name the private
// Pool/Shard types the opaque pool_ pointer hides from the header.

#define XOREC_POOL(p) (*static_cast<CodecService::Pool*>(p))

const Codec& ServiceHandle::codec() const { return *XOREC_POOL(pool_).codec; }
std::shared_ptr<const Codec> ServiceHandle::codec_ptr() const {
  return XOREC_POOL(pool_).codec;
}
const std::string& ServiceHandle::spec() const { return XOREC_POOL(pool_).spec; }
size_t ServiceHandle::shard() const { return XOREC_POOL(pool_).shard; }

BatchCoder& ServiceHandle::session() const {
  return service_->shards_[XOREC_POOL(pool_).shard]->session;
}

std::future<void> ServiceHandle::encode(const uint8_t* const* data,
                                        uint8_t* const* parity, size_t frag_len) const {
  CodecService::Pool& pool = XOREC_POOL(pool_);
  CodecService::Shard& shard = *service_->shards_[pool.shard];
  pool.encodes.fetch_add(1, std::memory_order_relaxed);
  shard.bytes.fetch_add(static_cast<uint64_t>(pool.codec->data_fragments()) * frag_len,
                        std::memory_order_relaxed);
  return shard.session.submit_encode(pool.codec, data, parity, frag_len);
}

std::shared_ptr<const ReconstructPlan> ServiceHandle::plan_reconstruct(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const {
  CodecService::Pool& pool = XOREC_POOL(pool_);
  pool.plans.fetch_add(1, std::memory_order_relaxed);
  return pool.codec->plan_reconstruct(available, erased);
}

std::future<void> ServiceHandle::reconstruct(std::shared_ptr<const ReconstructPlan> plan,
                                             const uint8_t* const* available_frags,
                                             uint8_t* const* out, size_t frag_len) const {
  if (!plan) throw std::invalid_argument("ServiceHandle: null plan");
  CodecService::Pool& pool = XOREC_POOL(pool_);
  CodecService::Shard& shard = *service_->shards_[pool.shard];
  pool.reconstructs.fetch_add(1, std::memory_order_relaxed);
  shard.bytes.fetch_add(static_cast<uint64_t>(plan->erased().size()) * frag_len,
                        std::memory_order_relaxed);
  // Repair-traffic accounting at the plan's true read granularity: strips
  // the compiled programs dereference, priced in bytes of this job.
  const PlanReadSet& reads = plan->read_set();
  pool.strips_read.fetch_add(reads.strips, std::memory_order_relaxed);
  pool.repair_bytes_in.fetch_add(
      static_cast<uint64_t>(reads.strips) * (frag_len / plan->fragment_multiple()),
      std::memory_order_relaxed);
  pool.repair_bytes_out.fetch_add(static_cast<uint64_t>(plan->erased().size()) * frag_len,
                                  std::memory_order_relaxed);
  return shard.session.submit_reconstruct(std::move(plan), available_frags, out, frag_len);
}

std::future<void> ServiceHandle::rebuild(std::vector<uint32_t> available,
                                         const uint8_t* const* available_frags,
                                         std::vector<uint32_t> erased, uint8_t* const* out,
                                         size_t frag_len) const {
  CodecService::Pool& pool = XOREC_POOL(pool_);
  CodecService::Shard& shard = *service_->shards_[pool.shard];
  pool.reconstructs.fetch_add(1, std::memory_order_relaxed);
  shard.bytes.fetch_add(static_cast<uint64_t>(erased.size()) * frag_len,
                        std::memory_order_relaxed);
  // Plan-less rebuild: no compiled program to inspect, so every survivor is
  // charged in full (the conservative ceiling — route plans for less).
  pool.strips_read.fetch_add(available.size() * pool.codec->fragment_multiple(),
                             std::memory_order_relaxed);
  pool.repair_bytes_in.fetch_add(static_cast<uint64_t>(available.size()) * frag_len,
                                 std::memory_order_relaxed);
  pool.repair_bytes_out.fetch_add(static_cast<uint64_t>(erased.size()) * frag_len,
                                  std::memory_order_relaxed);
  return shard.session.submit_reconstruct(pool.codec, std::move(available),
                                          available_frags, std::move(erased), out,
                                          frag_len);
}

void ServiceHandle::note_net_request(uint64_t bytes_in, uint64_t bytes_out) const {
  CodecService::Pool& pool = XOREC_POOL(pool_);
  pool.net_requests.fetch_add(1, std::memory_order_relaxed);
  pool.net_bytes_in.fetch_add(bytes_in, std::memory_order_relaxed);
  pool.net_bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
}

#undef XOREC_POOL

// ---- CodecService ----------------------------------------------------------

CodecService::CodecService(Options opt)
    : opt_(std::move(opt)), start_(std::chrono::steady_clock::now()) {
  const size_t n = opt_.shards ? opt_.shards : kDefaultShards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(opt_.workers_per_shard));
  shard_pools_.assign(n, 0);
  const CacheStats s = cache_view();
  baseline_hits_ = s.hits;
  baseline_misses_ = s.misses;
}

CodecService::~CodecService() { flush(); }

CacheStats CodecService::cache_view() const {
  return opt_.plan_cache ? opt_.plan_cache->stats()
                         : ec::PlanCache::process_shared()->stats();
}

CodecService::Pool& CodecService::pool_for(const CodecSpec& parsed) {
  CodecSpec cs = parsed;
  if (cs.batch_threads != 0 ||
      std::find(cs.option_keys.begin(), cs.option_keys.end(), "batch") !=
          cs.option_keys.end())
    throw std::invalid_argument("CodecService: batch= sizes a standalone BatchCoder; "
                                "service shards are sized by CodecService::Options");
  // batch=/warmup= configure the session/service, never the pooled codec.
  cs.option_keys.erase(std::remove_if(cs.option_keys.begin(), cs.option_keys.end(),
                                      [](const std::string& k) {
                                        return k == "batch" || k == "warmup";
                                      }),
                       cs.option_keys.end());
  cs.warmup_path.clear();
  const std::string key = canonical_spec(cs);

  ShardLoadProvider load_provider;
  {
    std::lock_guard lk(mu_);
    const auto it = by_spec_.find(key);
    if (it != by_spec_.end()) return *it->second;
    load_provider = shard_load_;
  }
  // Build outside the lock (construction may compile the encoder —
  // milliseconds); racing builders are harmless, first insert wins and the
  // loser's codec is dropped (its compiled programs stay cached anyway).
  CodecSpec build = cs;
  if (opt_.plan_cache) build.options.plan_cache = opt_.plan_cache;
  std::shared_ptr<const Codec> codec(make_codec(build));

  // The load provider also runs OUTSIDE mu_: a sampler-backed provider
  // reads under its own lock, and its sampling thread takes mu_ through
  // stats() — invoking it under mu_ would order those locks both ways.
  std::vector<double> loads;
  if (load_provider) {
    try {
      loads = load_provider();
    } catch (...) {
      loads.clear();  // a broken provider degrades to round-robin
    }
  }

  std::lock_guard lk(mu_);
  const auto it = by_spec_.find(key);
  if (it != by_spec_.end()) return *it->second;
  auto pool = std::make_unique<Pool>();
  pool->spec = key;
  pool->codec = std::move(codec);
  pool->shard = pick_shard_locked(loads);
  ++shard_pools_[pool->shard];
  Pool& ref = *pool;
  by_spec_.emplace(key, &ref);
  pools_.push_back(std::move(pool));
  return ref;
}

size_t CodecService::pick_shard_locked(const std::vector<double>& loads) const {
  if (loads.size() != shards_.size()) return pools_.size() % shards_.size();
  size_t best = 0;
  for (size_t i = 1; i < loads.size(); ++i) {
    if (loads[i] < loads[best]) {
      best = i;
    } else if (loads[i] == loads[best] && shard_pools_[i] < shard_pools_[best]) {
      // Equal measured load (e.g. an idle service, all zeros) must not pile
      // every new pool on shard 0 — spread by current pool count instead.
      best = i;
    }
  }
  return best;
}

void CodecService::set_shard_load_provider(ShardLoadProvider provider) {
  std::lock_guard lk(mu_);
  shard_load_ = std::move(provider);
}

ServiceHandle CodecService::acquire(const std::string& spec) {
  const CodecSpec cs = parse_spec(spec);
  if (!cs.warmup_path.empty()) {
    // Each profile path replays at most once per service: repeated
    // acquires must not re-scan the file or reset the serving window the
    // first tenant's traffic is being measured in.
    bool replay = false;
    {
      std::lock_guard lk(mu_);
      replay = warmed_paths_.insert(cs.warmup_path).second;
    }
    if (replay) {
      // First boot has no profile yet: a missing file is a quiet cold
      // start; an unreadable or corrupt one still throws from warmup().
      if (std::ifstream(cs.warmup_path).good()) {
        try {
          warmup(cs.warmup_path);
        } catch (...) {
          // A failed replay must not poison the path: un-claim it so the
          // next acquire retries once the profile is fixed.
          std::lock_guard lk(mu_);
          warmed_paths_.erase(cs.warmup_path);
          throw;
        }
      }
    }
  }
  Pool& pool = pool_for(cs);
  pool.clients.fetch_add(1, std::memory_order_relaxed);
  return ServiceHandle(this, &pool);
}

CodecService::WarmupReport CodecService::warmup(const std::string& path) {
  const ec::PlanProfile profile = ec::load_plan_profile(path);
  WarmupReport report;
  const CacheStats before = cache_view();
  for (const ec::PlanProfile::Entry& entry : profile.entries) {
    Pool* pool = nullptr;
    try {
      pool = &pool_for(parse_spec(entry.spec));
    } catch (const std::invalid_argument&) {
      report.skipped += entry.patterns.size();  // family/option drift
      continue;
    }
    ++report.codecs;
    const Codec& codec = *pool->codec;
    std::vector<uint32_t> available, erased;
    for (const std::vector<uint32_t>& pattern : entry.patterns) {
      // Decode keys replay against exactly the recorded survivor set, so
      // the recompile lands on the original cache key; encoder keys were
      // compiled at pool construction.
      if (!ec::BitmatrixCodecCore::pattern_ids(pattern, codec.total_fragments(),
                                               available, erased))
        continue;
      ++report.patterns;
      try {
        (void)codec.plan_reconstruct(available, erased);
      } catch (const std::exception&) {
        ++report.skipped;  // pattern no longer solvable under this config
      }
    }
  }
  const CacheStats after = cache_view();
  report.compiled = after.misses - before.misses;
  report.already_cached = after.hits - before.hits;
  // Serving traffic is measured from the end of the replay.
  std::lock_guard lk(mu_);
  baseline_hits_ = after.hits;
  baseline_misses_ = after.misses;
  return report;
}

size_t CodecService::save_profile(const std::string& path) const {
  ec::PlanProfile profile;
  {
    std::lock_guard lk(mu_);
    for (const auto& pool : pools_) {
      PlanFootprint fp = pool->codec->plan_footprint();
      if (!fp.has_identity()) continue;  // no compile path (isal, customs)
      profile.entries.push_back({pool->spec, fp.matrix_fp, fp.matrix_fp2, fp.config_fp,
                                 std::move(fp.patterns)});
    }
  }
  ec::save_plan_profile(path, profile);
  return profile.pattern_count();
}

void CodecService::flush() {
  for (const auto& shard : shards_) shard->session.flush();
}

ServiceStats CodecService::stats() const {
  ServiceStats out;
  out.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                     .count();
  out.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    ShardStats ss;
    ss.shard = i;
    ss.workers = s.session.threads();
    // Depth BEFORE submitted: depth never exceeds the jobs submitted by the
    // time it is read, and submitted only grows — read the other way, a job
    // landing between the loads makes the snapshot show depth > submitted.
    ss.queue_depth = s.session.pending();
    ss.submitted = s.session.submitted();  // handle-routed + ObjectCodec blob jobs
    ss.bytes_coded = s.bytes.load(std::memory_order_relaxed);
    ss.throughput_gBps =
        out.uptime_s > 0 ? static_cast<double>(ss.bytes_coded) / out.uptime_s / 1e9 : 0;
    out.shards.push_back(ss);
  }
  out.cache_level_misses = (opt_.plan_cache ? opt_.plan_cache
                                            : ec::PlanCache::process_shared())
                               ->level_miss_totals();
  {
    std::lock_guard lk(mu_);
    for (size_t i = 0; i < shards_.size(); ++i)
      out.shards[i].pools = shard_pools_[i];
    // Snapshot the cache under the same lock that guards the baseline —
    // a concurrent warmup() resetting the window cannot push the baseline
    // past this snapshot (the clamp below guards belt-and-braces anyway,
    // since size_t underflow would report absurd hit counts).
    out.cache = cache_view();
    out.pools.reserve(pools_.size());
    for (const auto& pool : pools_) {
      PoolStats ps;
      ps.spec = pool->spec;
      ps.shard = pool->shard;
      ps.clients = pool->clients.load(std::memory_order_relaxed);
      ps.encodes = pool->encodes.load(std::memory_order_relaxed);
      ps.plans = pool->plans.load(std::memory_order_relaxed);
      ps.reconstructs = pool->reconstructs.load(std::memory_order_relaxed);
      ps.cached_programs = pool->codec->cached_program_count();
      ExecInfo ei = pool->codec->exec_info();
      ps.exec_backend = std::move(ei.backend);
      ps.exec_isa = std::move(ei.isa);
      ps.strips_read = pool->strips_read.load(std::memory_order_relaxed);
      ps.repair_bytes_in = pool->repair_bytes_in.load(std::memory_order_relaxed);
      ps.repair_bytes_out = pool->repair_bytes_out.load(std::memory_order_relaxed);
      ps.net_requests = pool->net_requests.load(std::memory_order_relaxed);
      ps.net_bytes_in = pool->net_bytes_in.load(std::memory_order_relaxed);
      ps.net_bytes_out = pool->net_bytes_out.load(std::memory_order_relaxed);
      out.pools.push_back(std::move(ps));
    }
    out.warm_hits = out.cache.hits > baseline_hits_ ? out.cache.hits - baseline_hits_ : 0;
    out.warm_misses =
        out.cache.misses > baseline_misses_ ? out.cache.misses - baseline_misses_ : 0;
  }
  out.jit = runtime::jit_cache_stats();
  return out;
}

}  // namespace xorec
