// The string-spec codec registry: every scenario the library supports is
// nameable from a flag.
//
//   auto codec = xorec::make_codec("rs(10,4)");
//   auto tuned = xorec::make_codec("cauchy(12,3)@block=1024,threads=4,isa=avx2");
//   auto array = xorec::make_codec("evenodd(6,2)");
//
// Spec grammar (whitespace is ignored):
//   spec    := family '(' args ')' [ '@' options ]
//   family  := identifier           e.g. rs, vand, cauchy, evenodd, rdp,
//                                        star, rs16, naive_xor, isal
//   args    := unsigned integers, comma-separated (family-specific arity)
//   options := key '=' value pairs, comma-separated:
//     block=N|auto   executor block size B in bytes (default 2048); auto
//                    resolves to a one-shot measured sweep of this machine
//                    (api/autotune.hpp, memoized per process)
//     threads=N      worker threads                          (default 1)
//     isa=K          scalar | word64 | avx2 | auto           (default auto)
//     exec=K         interp | lowered | jit | auto — execution backend
//                    (default auto). lowered runs pre-resolved kernel calls;
//                    jit compiles the plan to native code through the host
//                    compiler + cross-process artifact cache
//                    (runtime/jit_cache.hpp), falling back to lowered when
//                    no compiler is available; an explicit exec=auto resolves
//                    to a one-shot measured interp/lowered/jit race on this
//                    machine (api/autotune.hpp, memoized per process)
//     passes=K       base | compress | fuse | full — optimizer preset
//     sched=K        none | dfs | greedy | multilevel — scheduling pass
//     cap=N          abstract-cache capacity override in blocks (>= 2);
//                    greedy capacity / multilevel L1 (sched=greedy|multilevel)
//     levels=L       l1:l2:... per-level block capacities, strictly
//                    increasing (sched=multilevel; default derives from cap)
//     cache=K        shared (process-wide PlanCache, default) | private
//                    (per-codec) | N (private with LRU capacity N, 0 = unbounded)
//     matrix=K       isal | vand | cauchy — RS matrix family override
//     prefetch=0|1   software-prefetch the next block's inputs
//     batch=K        auto | N — BatchCoder session workers (api/batch.hpp);
//                    auto runs a one-shot measured calibration. Only
//                    meaningful to BatchCoder(spec) — plain make_codec
//                    rejects it rather than silently dropping it
//     warmup=PATH    plan-profile file to replay before serving (no commas
//                    or whitespace in PATH). Only meaningful to
//                    CodecService::acquire (api/service.hpp) — plain
//                    make_codec rejects it rather than silently dropping it
//
// Built-in families (k data + m parity fragments):
//   rs(n[,p])        RS over GF(2^8), ISA-L Vandermonde matrix (p default 4)
//   vand(n[,p])      RS, reduced-Vandermonde matrix
//   cauchy(n[,p])    RS, systematic Cauchy matrix
//   rs16(n[,p])      RS over GF(2^16) (w = 16 strips), Cauchy
//   evenodd(k[,2])   EVENODD array code, shortened to k data disks
//   rdp(k[,2])       Row-Diagonal Parity, shortened to k data disks
//   star(k[,3])      STAR (3 parities), shortened to k data disks
//   lrc(k,l,g)       locality code: l local XOR groups + g Cauchy globals
//   piggyback(k,m[,sub])  piggybacked RS: sub (default 2) Cauchy substripes
//                    with last-substripe parity piggybacks — reduced-read
//                    single-block repair once m >= 3 (w = 8*sub strips)
//   sparse(k,m,d[,seed])  random sparse parity bitmatrix at density d%,
//                    regenerated from seed (default 1); small shapes reject
//                    non-MDS draws via rank checks
//   naive_xor(n[,p]) RS with every optimizer pass disabled (the "Base")
//   isal(n[,p])      GF-table ISA-L-style baseline (no SLP pipeline)
//
// New families can be registered at runtime (register_codec_family), which
// is how user-defined XOR codes join the same surface — see
// examples/custom_code.cpp.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/codec.hpp"
#include "ec/bitmatrix_codec_core.hpp"

namespace xorec {

/// A parsed spec string: family, positional arguments, execution options.
struct CodecSpec {
  std::string family;
  std::vector<size_t> args;
  ec::CodecOptions options;
  std::vector<std::string> option_keys;  // which '@' keys were given, in order
  std::string spec;  // the original string, whitespace-stripped
  /// batch= value: 0 = auto; only meaningful when "batch" is in option_keys.
  size_t batch_threads = 0;
  /// block=auto given: make_codec / canonical_spec resolve it through the
  /// measured auto_block_size() sweep (api/autotune.hpp).
  bool block_auto = false;
  /// exec=auto given explicitly: make_codec / canonical_spec resolve it
  /// through the measured auto_exec_backend() race (api/autotune.hpp). A
  /// spec with no exec= key keeps the cheap static Auto -> Lowered default.
  bool exec_auto = false;
  /// warmup= value: the plan-profile path CodecService::acquire replays.
  std::string warmup_path;

  /// The positional arg at `i`, or `fallback` when fewer were given.
  size_t arg(size_t i, size_t fallback) const {
    return i < args.size() ? args[i] : fallback;
  }
};

/// Parse a spec string. Throws std::invalid_argument (with the offending
/// spec quoted) on malformed input, unknown option keys or bad values.
/// Does not check the family exists — make_codec does that.
CodecSpec parse_spec(const std::string& spec);

/// The canonical spelling of a spec — ONE string per semantic codec
/// configuration, so equivalent spellings share a CodecService pool entry:
/// key order is fixed, options equal to their defaults are dropped,
/// default-able positional args are filled in ("rs(10)" -> "rs(10,4)"),
/// matrix= folds into the RS family name ("rs(9,3)@matrix=cauchy" ->
/// "cauchy(9,3)"), block=auto resolves to the measured byte count, an
/// explicit exec=auto resolves to the measured backend race, and the
/// session/service keys batch=/warmup= are stripped (they configure a
/// session or service, not the codec). Idempotent; round-trips through
/// parse_spec. Throws std::invalid_argument on malformed input.
std::string canonical_spec(const std::string& spec);
std::string canonical_spec(const CodecSpec& spec);

/// Build a codec from a spec string or a parsed spec.
/// Throws std::invalid_argument for unknown families or bad arguments.
std::unique_ptr<Codec> make_codec(const std::string& spec);
std::unique_ptr<Codec> make_codec(const CodecSpec& spec);

/// Builds the codec from a parsed spec; registered per family.
using CodecBuilder = std::function<std::unique_ptr<Codec>(const CodecSpec&)>;

/// Register (or replace) a codec family under `family`.
void register_codec_family(const std::string& family, CodecBuilder builder);

/// Sorted names of all registered families.
std::vector<std::string> registered_families();

/// The '@' option keys the spec grammar accepts, in documentation order —
/// the single source for help text and error messages (grammar above).
const std::vector<std::string>& spec_option_keys();

/// Process-global plan-compilation counters: the SUM over every live
/// ec::PlanCache instance — the shared service cache plus all private and
/// injected ones. Counters are scoped per cache instance, so this accessor
/// aggregates without letting a private codec's traffic pollute the shared
/// service's own hit rate: for the shared-cache-only view use
/// Codec::cache_stats() on a shared-cache codec (or
/// ec::PlanCache::process_shared()->stats()).
CacheStats plan_cache_stats();

}  // namespace xorec
