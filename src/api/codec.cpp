#include "api/codec.hpp"

#include <algorithm>
#include <stdexcept>

namespace xorec {

// ---- ReconstructPlan -------------------------------------------------------

ReconstructPlan::ReconstructPlan(std::string codec_name, size_t fragment_multiple,
                                 std::vector<uint32_t> available,
                                 std::vector<uint32_t> erased)
    : codec_name_(std::move(codec_name)),
      fragment_multiple_(fragment_multiple),
      available_(std::move(available)),
      erased_(std::move(erased)) {}

const PlanStats& ReconstructPlan::schedule_stats() const {
  std::call_once(stats_once_, [&] { stats_ = compute_stats(); });
  return stats_;
}

const PlanReadSet& ReconstructPlan::read_set() const {
  std::call_once(read_set_once_, [&] { read_set_ = compute_read_set(); });
  return read_set_;
}

PlanReadSet ReconstructPlan::compute_read_set() const {
  PlanReadSet rs;
  if (erased_.empty()) return rs;  // no-op plan reads nothing
  rs.fragments = available_;
  std::sort(rs.fragments.begin(), rs.fragments.end());
  rs.fragment_strips.assign(rs.fragments.size(),
                            static_cast<uint32_t>(fragment_multiple_));
  rs.strips = rs.fragments.size() * fragment_multiple_;
  return rs;
}

void ReconstructPlan::execute(const uint8_t* const* available_frags, uint8_t* const* out,
                              size_t frag_len) const {
  if (frag_len == 0 || frag_len % fragment_multiple_ != 0)
    throw std::invalid_argument(codec_name_ + " plan: frag_len " +
                                std::to_string(frag_len) +
                                " is not a positive multiple of " +
                                std::to_string(fragment_multiple_));
  if (erased_.empty()) return;
  execute_impl(available_frags, out, frag_len);
}

namespace {

/// The base-class fallback: no compiled program, every execute() re-runs the
/// codec's one-shot reconstruct. Borrows the codec — see api/codec.hpp.
class FallbackPlan final : public ReconstructPlan {
 public:
  FallbackPlan(const Codec* codec, std::vector<uint32_t> available,
               std::vector<uint32_t> erased)
      : ReconstructPlan(codec->name(), codec->fragment_multiple(), std::move(available),
                        std::move(erased)),
        codec_(codec) {}

 protected:
  void execute_impl(const uint8_t* const* available_frags, uint8_t* const* out,
                    size_t frag_len) const override {
    codec_->reconstruct(available(), available_frags, erased(), out, frag_len);
  }

 private:
  const Codec* codec_;
};

}  // namespace

// ---- Codec -----------------------------------------------------------------

void Codec::check_frag_len(size_t frag_len) const {
  const size_t m = fragment_multiple();
  if (frag_len == 0 || frag_len % m != 0)
    throw std::invalid_argument(name() + ": frag_len " + std::to_string(frag_len) +
                                " is not a positive multiple of " + std::to_string(m));
}

void Codec::check_id_sets(const std::vector<uint32_t>& available,
                          const std::vector<uint32_t>& erased) const {
  const size_t total = total_fragments();
  // 0 = unseen, 1 = available, 2 = erased.
  std::vector<uint8_t> seen(total, 0);
  for (uint32_t id : available) {
    if (id >= total)
      throw std::out_of_range(name() + ": available id " + std::to_string(id) +
                              " out of range [0, " + std::to_string(total) + ")");
    if (seen[id] != 0)
      throw std::invalid_argument(name() + ": duplicate available id " + std::to_string(id));
    seen[id] = 1;
  }
  for (uint32_t id : erased) {
    if (id >= total)
      throw std::out_of_range(name() + ": erased id " + std::to_string(id) +
                              " out of range [0, " + std::to_string(total) + ")");
    if (seen[id] == 1)
      throw std::invalid_argument(name() + ": fragment " + std::to_string(id) +
                                  " both available and erased");
    if (seen[id] == 2)
      throw std::invalid_argument(name() + ": duplicate erased id " + std::to_string(id));
    seen[id] = 2;
  }
  // No survivor-count check here: MDS codecs need data_fragments() survivors
  // and enforce that themselves, but non-MDS XOR codes can recover solvable
  // patterns from fewer (their F2 solver is the authority).
}

void Codec::encode(const uint8_t* const* data, uint8_t* const* parity,
                   size_t frag_len) const {
  check_frag_len(frag_len);
  encode_impl(data, parity, frag_len);
}

std::shared_ptr<const ReconstructPlan> Codec::plan_reconstruct(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const {
  check_id_sets(available, erased);
  return plan_reconstruct_impl(available, erased);
}

std::shared_ptr<const ReconstructPlan> Codec::plan_reconstruct_impl(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const {
  return std::make_shared<FallbackPlan>(this, available, erased);
}

void Codec::reconstruct(const std::vector<uint32_t>& available,
                        const uint8_t* const* available_frags,
                        const std::vector<uint32_t>& erased, uint8_t* const* out,
                        size_t frag_len) const {
  check_frag_len(frag_len);
  check_id_sets(available, erased);
  if (erased.empty()) return;
  reconstruct_impl(available, available_frags, erased, out, frag_len);
}

void Codec::encode(std::span<const uint8_t* const> data, std::span<uint8_t* const> parity,
                   size_t frag_len) const {
  if (data.size() != data_fragments() || parity.size() != parity_fragments())
    throw std::invalid_argument(name() + ": encode expects " +
                                std::to_string(data_fragments()) + " data and " +
                                std::to_string(parity_fragments()) +
                                " parity buffers, got " + std::to_string(data.size()) +
                                " and " + std::to_string(parity.size()));
  encode(data.data(), parity.data(), frag_len);
}

void Codec::reconstruct(std::span<const uint32_t> available,
                        std::span<const uint8_t* const> available_frags,
                        std::span<const uint32_t> erased, std::span<uint8_t* const> out,
                        size_t frag_len) const {
  if (available.size() != available_frags.size())
    throw std::invalid_argument(name() + ": available ids and buffers differ in length");
  if (erased.size() != out.size())
    throw std::invalid_argument(name() + ": erased ids and output buffers differ in length");
  reconstruct(std::vector<uint32_t>(available.begin(), available.end()),
              available_frags.data(),
              std::vector<uint32_t>(erased.begin(), erased.end()), out.data(), frag_len);
}

}  // namespace xorec
