#include "api/registry.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>
#include <stdexcept>

#include "altcodes/evenodd.hpp"
#include "api/autotune.hpp"
#include "altcodes/lrc.hpp"
#include "altcodes/piggyback.hpp"
#include "altcodes/rdp.hpp"
#include "altcodes/rs16.hpp"
#include "altcodes/sparse.hpp"
#include "altcodes/star.hpp"
#include "altcodes/xor_code.hpp"
#include "baseline/isal_style.hpp"
#include "ec/rs_codec.hpp"

namespace xorec {

namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("make_codec: " + why + " in spec \"" + spec + "\"");
}

size_t parse_uint(const std::string& spec, const std::string& tok, const std::string& what) {
  if (tok.empty()) fail(spec, "empty " + what);
  size_t v = 0;
  for (char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      fail(spec, what + " \"" + tok + "\" is not a non-negative integer");
    v = v * 10 + static_cast<size_t>(c - '0');
    if (v > (1u << 30)) fail(spec, what + " \"" + tok + "\" is out of range");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

void apply_option(CodecSpec& cs, const std::string& key, const std::string& value) {
  auto& opt = cs.options;
  const auto uint_value = [&] { return parse_uint(cs.spec, value, "option " + key); };
  if (key == "block") {
    // block=auto defers to the measured per-machine sweep; resolution
    // happens in make_codec / canonical_spec so parsing stays cheap.
    if (value == "auto") {
      cs.block_auto = true;
    } else {
      const size_t b = uint_value();
      if (b == 0) fail(cs.spec, "block size must be positive");
      opt.exec.block_size = b;
      cs.block_auto = false;  // a later explicit block= overrides block=auto
    }
  } else if (key == "warmup") {
    // Plan-profile replay for CodecService::acquire; make_codec refuses
    // specs carrying it (below) so the key is never silently ignored.
    if (value.empty()) fail(cs.spec, "warmup needs a profile path");
    cs.warmup_path = value;
  } else if (key == "threads") {
    const size_t t = uint_value();
    if (t == 0) fail(cs.spec, "threads must be positive");
    opt.exec.threads = t;
  } else if (key == "cache") {
    // Plan-cache placement: the process-shared service (default), a private
    // per-codec cache, or a private cache with an explicit LRU capacity.
    if (value == "shared") {
      opt.shared_cache = true;
    } else if (value == "private") {
      opt.shared_cache = false;
    } else {
      opt.shared_cache = false;
      opt.decode_cache_capacity = uint_value();
    }
  } else if (key == "cap") {
    const size_t c = uint_value();
    if (c < 2) fail(cs.spec, "cap must be at least 2 blocks, got \"" + value + "\"");
    opt.pipeline.greedy_capacity = c;
  } else if (key == "levels") {
    std::vector<size_t> caps;
    for (const std::string& tok : split(value, ':'))
      caps.push_back(parse_uint(cs.spec, tok, "levels entry"));
    if (caps.front() < 2)
      fail(cs.spec, "levels: first level must hold at least 2 blocks");
    for (size_t i = 1; i < caps.size(); ++i)
      if (caps[i] <= caps[i - 1])
        fail(cs.spec, "levels \"" + value + "\" must be strictly increasing");
    opt.pipeline.cache_levels = std::move(caps);
  } else if (key == "prefetch") {
    opt.exec.prefetch_next_block = uint_value() != 0;
  } else if (key == "batch") {
    // Session sizing for BatchCoder(spec); make_codec refuses specs carrying
    // it (below) so the key is never silently ignored.
    if (value == "auto") {
      cs.batch_threads = 0;
    } else {
      const size_t b = uint_value();
      if (b == 0) fail(cs.spec, "batch must be auto or a positive worker count");
      cs.batch_threads = b;
    }
  } else if (key == "isa") {
    if (auto isa = kernel::parse_isa(value.c_str())) opt.exec.isa = *isa;
    else fail(cs.spec, "isa must be scalar|word64|avx2|avx512|neon|auto, got \"" + value + "\"");
  } else if (key == "exec") {
    // An explicit exec=auto asks for the measured backend race; resolution
    // happens in make_codec / canonical_spec so parsing stays cheap.
    if (auto b = runtime::parse_exec_backend(value.c_str())) {
      opt.exec.backend = *b;
      cs.exec_auto = *b == runtime::ExecBackend::Auto;
    } else {
      fail(cs.spec, "exec must be interp|lowered|jit|auto, got \"" + value + "\"");
    }
  } else if (key == "passes") {
    // Preset -> pipeline mapping; rs_codec.cpp rs_name() is its inverse —
    // keep the two in sync.
    if (value == "base") {
      opt.pipeline.compress = slp::CompressKind::None;
      opt.pipeline.fuse = false;
      opt.pipeline.schedule = slp::ScheduleKind::None;
    } else if (value == "compress") {
      opt.pipeline.compress = slp::CompressKind::XorRePair;
      opt.pipeline.fuse = false;
      opt.pipeline.schedule = slp::ScheduleKind::None;
    } else if (value == "fuse") {
      opt.pipeline.compress = slp::CompressKind::XorRePair;
      opt.pipeline.fuse = true;
      opt.pipeline.schedule = slp::ScheduleKind::None;
    } else if (value == "full") {
      opt.pipeline.compress = slp::CompressKind::XorRePair;
      opt.pipeline.fuse = true;
      opt.pipeline.schedule = slp::ScheduleKind::Dfs;
    } else {
      fail(cs.spec, "passes must be base|compress|fuse|full, got \"" + value + "\"");
    }
  } else if (key == "sched") {
    if (value == "none") opt.pipeline.schedule = slp::ScheduleKind::None;
    else if (value == "dfs") opt.pipeline.schedule = slp::ScheduleKind::Dfs;
    else if (value == "greedy") opt.pipeline.schedule = slp::ScheduleKind::Greedy;
    else if (value == "multilevel") opt.pipeline.schedule = slp::ScheduleKind::Multilevel;
    else fail(cs.spec, "sched must be none|dfs|greedy|multilevel, got \"" + value + "\"");
  } else if (key == "matrix") {
    if (value == "isal") opt.family = ec::MatrixFamily::IsalVandermonde;
    else if (value == "vand") opt.family = ec::MatrixFamily::ReducedVandermonde;
    else if (value == "cauchy") opt.family = ec::MatrixFamily::Cauchy;
    else fail(cs.spec, "matrix must be isal|vand|cauchy, got \"" + value + "\"");
  } else {
    std::string valid;
    for (const std::string& k : spec_option_keys()) valid += (valid.empty() ? "" : ", ") + k;
    fail(cs.spec, "unknown option \"" + key + "\" (valid: " + valid + ")");
  }
}

// ---- builders --------------------------------------------------------------

void need_args(const CodecSpec& cs, size_t min, size_t max) {
  if (cs.args.size() < min || cs.args.size() > max)
    fail(cs.spec, "family \"" + cs.family + "\" takes " + std::to_string(min) +
                      (min == max ? "" : ".." + std::to_string(max)) + " argument(s), got " +
                      std::to_string(cs.args.size()));
}

constexpr size_t kDefaultParity = 4;

bool has_option(const CodecSpec& cs, const std::string& key) {
  return std::find(cs.option_keys.begin(), cs.option_keys.end(), key) !=
         cs.option_keys.end();
}

std::unique_ptr<Codec> build_rs(const CodecSpec& cs, ec::MatrixFamily family) {
  need_args(cs, 1, 2);
  ec::CodecOptions opt = cs.options;
  // The family name picks the matrix; an explicit matrix= override wins
  // (documented as the RS matrix family override).
  if (!has_option(cs, "matrix")) opt.family = family;
  return std::make_unique<ec::RsCodec>(cs.args[0], cs.arg(1, kDefaultParity), opt);
}

std::unique_ptr<Codec> build_naive_xor(const CodecSpec& cs) {
  need_args(cs, 1, 2);
  // naive_xor IS the disabled pipeline; a passes=/sched= request (or the
  // scheduler knobs cap=/levels=) contradicts the family rather than
  // configuring it.
  for (const char* key : {"passes", "sched", "cap", "levels"})
    if (has_option(cs, key))
      fail(cs.spec, std::string("family \"naive_xor\" is the disabled pipeline; \"") +
                        key + "\" does not apply (use the rs family to pick passes)");
  ec::CodecOptions opt = cs.options;  // keep block/isa/threads overrides
  opt.pipeline.compress = slp::CompressKind::None;
  opt.pipeline.fuse = false;
  opt.pipeline.schedule = slp::ScheduleKind::None;
  return std::make_unique<ec::RsCodec>(cs.args[0], cs.arg(1, kDefaultParity), opt);
}

std::unique_ptr<Codec> build_isal(const CodecSpec& cs) {
  need_args(cs, 1, 2);
  // The GF-table baseline has no SLP pipeline or blocked executor: every
  // execution option except matrix= would be silently meaningless.
  for (const std::string& key : cs.option_keys)
    if (key != "matrix")
      fail(cs.spec, "family \"isal\" has no SLP pipeline/executor; option \"" + key +
                        "\" does not apply (only matrix= does)");
  return std::make_unique<baseline::IsalStyleCodec>(cs.args[0], cs.arg(1, kDefaultParity),
                                                    cs.options.family);
}

std::unique_ptr<Codec> build_rs16(const CodecSpec& cs) {
  need_args(cs, 1, 2);
  const size_t n = cs.args[0], p = cs.arg(1, kDefaultParity);
  // GF(2^16) Cauchy supports n + p <= 65535, but SLP compile time and the
  // bitmatrix size grow fast; keep the registry to sane storage geometries
  // (construct XorCodec(rs16_spec(...)) directly for bigger experiments).
  if (n + p > 255)
    fail(cs.spec, "rs16 via the registry is limited to n + p <= 255");
  if (has_option(cs, "matrix"))
    fail(cs.spec, "rs16 is Cauchy by construction; matrix= does not apply");
  return std::make_unique<altcodes::XorCodec>(altcodes::rs16_spec(n, p), cs.options);
}

std::unique_ptr<Codec> build_lrc(const CodecSpec& cs) {
  need_args(cs, 3, 3);
  if (has_option(cs, "matrix"))
    fail(cs.spec, "family \"lrc\" fixes its matrices (XOR locals + Cauchy globals); "
                  "matrix= does not apply");
  const size_t k = cs.args[0], l = cs.args[1], g = cs.args[2];
  if (k == 0 || l == 0 || l > k)
    fail(cs.spec, "lrc(k,l,g) needs 1 <= l <= k data blocks per group split");
  if (l + g == 0 || (g > 0 && k + g > 255))
    fail(cs.spec, "lrc(k,l,g) needs k + g <= 255 for the Cauchy globals");
  if (k > 128) fail(cs.spec, "lrc via the registry is limited to k <= 128 data blocks");
  return std::make_unique<altcodes::XorCodec>(altcodes::lrc_spec(k, l, g), cs.options);
}

constexpr size_t kDefaultSubstripes = 2;
constexpr size_t kDefaultSparseSeed = 1;

std::unique_ptr<Codec> build_piggyback(const CodecSpec& cs) {
  need_args(cs, 2, 3);
  if (has_option(cs, "matrix"))
    fail(cs.spec, "family \"piggyback\" fixes its base matrix (Cauchy per substripe); "
                  "matrix= does not apply");
  const size_t k = cs.args[0], m = cs.args[1], sub = cs.arg(2, kDefaultSubstripes);
  if (k > 128)
    fail(cs.spec, "piggyback via the registry is limited to k <= 128 data blocks");
  if (sub > 8)
    fail(cs.spec, "piggyback via the registry is limited to sub <= 8 substripes "
                  "(w = 8*sub strips scales SLP compile time fast)");
  try {
    return std::make_unique<altcodes::PiggybackCodec>(k, m, sub, cs.options);
  } catch (const std::invalid_argument& e) {
    fail(cs.spec, e.what());
  }
}

std::unique_ptr<Codec> build_sparse(const CodecSpec& cs) {
  need_args(cs, 3, 4);
  if (has_option(cs, "matrix"))
    fail(cs.spec, "family \"sparse\" draws its own random bitmatrix; matrix= does not "
                  "apply");
  const size_t k = cs.args[0], m = cs.args[1], d = cs.args[2];
  const size_t seed = cs.arg(3, kDefaultSparseSeed);
  try {
    return std::make_unique<altcodes::XorCodec>(altcodes::sparse_spec(k, m, d, seed),
                                                cs.options);
  } catch (const std::invalid_argument& e) {
    fail(cs.spec, e.what());
  }
}

/// Array-code layouts need a prime parameter; deployments ask for k data
/// disks. Pick the smallest legal prime and shorten (altcodes::shorten_spec).
std::unique_ptr<Codec> build_array(const CodecSpec& cs, size_t parities,
                                   altcodes::XorCodeSpec (*make)(size_t),
                                   size_t prime_for_k(size_t)) {
  need_args(cs, 1, 2);
  if (has_option(cs, "matrix"))
    fail(cs.spec, "family \"" + cs.family +
                      "\" is a fixed XOR construction; matrix= does not apply");
  const size_t k = cs.args[0];
  if (k == 0) fail(cs.spec, "need at least one data disk");
  // The layout prime scales the bitmatrix as ~(k^2)^2 bits; beyond real
  // storage-array widths that means minutes of SLP compile or OOM. Fail
  // fast instead (construct XorCodec(evenodd_spec(...)) directly to go big).
  if (k > 128)
    fail(cs.spec, "array codes via the registry are limited to k <= 128 data disks");
  if (cs.args.size() == 2 && cs.args[1] != parities)
    fail(cs.spec, "family \"" + cs.family + "\" has exactly " + std::to_string(parities) +
                      " parity disks, got " + std::to_string(cs.args[1]));
  size_t prime = prime_for_k(k);
  while (!altcodes::is_prime(prime)) ++prime;
  return std::make_unique<altcodes::XorCodec>(altcodes::shorten_spec(make(prime), k),
                                              cs.options);
}

struct Registry {
  std::mutex mu;
  std::map<std::string, CodecBuilder> families;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    auto& f = reg->families;
    f["rs"] = [](const CodecSpec& cs) { return build_rs(cs, ec::MatrixFamily::IsalVandermonde); };
    f["vand"] = [](const CodecSpec& cs) {
      return build_rs(cs, ec::MatrixFamily::ReducedVandermonde);
    };
    f["cauchy"] = [](const CodecSpec& cs) { return build_rs(cs, ec::MatrixFamily::Cauchy); };
    f["naive_xor"] = build_naive_xor;
    f["isal"] = build_isal;
    f["rs16"] = build_rs16;
    f["lrc"] = build_lrc;
    f["piggyback"] = build_piggyback;
    f["sparse"] = build_sparse;
    f["evenodd"] = [](const CodecSpec& cs) {
      // EVENODD(p) has p data disks: smallest prime >= max(k, 3).
      return build_array(cs, 2, altcodes::evenodd_spec,
                         [](size_t k) { return std::max<size_t>(k, 3); });
    };
    f["rdp"] = [](const CodecSpec& cs) {
      // RDP(p) has p - 1 data disks: smallest prime >= max(k + 1, 3).
      return build_array(cs, 2, altcodes::rdp_spec,
                         [](size_t k) { return std::max<size_t>(k + 1, 3); });
    };
    f["star"] = [](const CodecSpec& cs) {
      // STAR(p) has p data disks: smallest prime >= max(k, 3).
      return build_array(cs, 3, altcodes::star_spec,
                         [](size_t k) { return std::max<size_t>(k, 3); });
    };
    return reg;
  }();
  return *r;
}

}  // namespace

CodecSpec parse_spec(const std::string& raw) {
  CodecSpec cs;
  for (char c : raw)
    if (!std::isspace(static_cast<unsigned char>(c))) cs.spec += c;
  const std::string& s = cs.spec;
  if (s.empty()) fail(raw, "empty spec");

  size_t i = 0;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) ++i;
  cs.family = s.substr(0, i);
  if (cs.family.empty()) fail(s, "missing family name");

  if (i < s.size() && s[i] == '(') {
    const size_t close = s.find(')', i);
    if (close == std::string::npos) fail(s, "unbalanced '('");
    const std::string inner = s.substr(i + 1, close - i - 1);
    if (!inner.empty())
      for (const std::string& tok : split(inner, ','))
        cs.args.push_back(parse_uint(s, tok, "argument"));
    i = close + 1;
  }

  if (i < s.size()) {
    if (s[i] != '@') fail(s, std::string("unexpected character '") + s[i] + "'");
    const std::string opts = s.substr(i + 1);
    if (opts.empty()) fail(s, "empty option list after '@'");
    for (const std::string& kv : split(opts, ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0)
        fail(s, "option \"" + kv + "\" is not key=value");
      apply_option(cs, kv.substr(0, eq), kv.substr(eq + 1));
      cs.option_keys.push_back(kv.substr(0, eq));
    }
  }
  // Cross-key validation on the final pipeline shape (keys apply in order,
  // so a later passes= can legally reset an earlier sched=).
  const auto& pl = cs.options.pipeline;
  if (!pl.cache_levels.empty() && pl.schedule != slp::ScheduleKind::Multilevel)
    fail(s, "levels= requires sched=multilevel");
  if (pl.greedy_capacity != 0 && pl.schedule != slp::ScheduleKind::Greedy &&
      pl.schedule != slp::ScheduleKind::Multilevel)
    fail(s, "cap= requires sched=greedy or sched=multilevel");
  return cs;
}

std::unique_ptr<Codec> make_codec(const CodecSpec& spec) {
  if (std::find(spec.option_keys.begin(), spec.option_keys.end(), "batch") !=
      spec.option_keys.end())
    fail(spec.spec, "batch= configures a session, not a codec; construct "
                    "xorec::BatchCoder(spec) instead");
  if (std::find(spec.option_keys.begin(), spec.option_keys.end(), "warmup") !=
      spec.option_keys.end())
    fail(spec.spec, "warmup= names a service profile, not a codec option; acquire "
                    "through xorec::CodecService instead");
  if (spec.block_auto || spec.exec_auto) {
    CodecSpec resolved = spec;
    if (resolved.block_auto) {
      resolved.options.exec.block_size = auto_block_size();
      resolved.block_auto = false;
    }
    if (resolved.exec_auto) {
      resolved.options.exec.backend = auto_exec_backend();
      resolved.exec_auto = false;
    }
    return make_codec(resolved);
  }
  CodecBuilder builder;
  {
    Registry& r = registry();
    std::lock_guard lk(r.mu);
    const auto it = r.families.find(spec.family);
    if (it == r.families.end()) {
      std::string known;
      for (const auto& [name, _] : r.families) known += (known.empty() ? "" : ", ") + name;
      fail(spec.spec.empty() ? spec.family : spec.spec,
           "unknown codec family \"" + spec.family + "\" (registered: " + known + ")");
    }
    builder = it->second;
  }
  return builder(spec);
}

std::unique_ptr<Codec> make_codec(const std::string& spec) {
  return make_codec(parse_spec(spec));
}

std::string canonical_spec(const CodecSpec& given) {
  CodecSpec cs = given;
  if (cs.block_auto) {
    cs.options.exec.block_size = auto_block_size();
    cs.block_auto = false;
  }
  if (cs.exec_auto) {
    cs.options.exec.backend = auto_exec_backend();
    cs.exec_auto = false;
  }
  const ec::CodecOptions def;  // the defaults every canonical token is measured against
  const auto& o = cs.options;

  // The RS matrix families are one family with a matrix= override; the
  // canonical form names the effective matrix through the family, so
  // "rs(9,3)@matrix=cauchy" and "cauchy(9,3)" share a pool entry. Note the
  // parsed options carry the matrix only when matrix= was spelled out — the
  // family name itself implies it otherwise (build_rs applies it later).
  std::string family = cs.family;
  bool emit_matrix = has_option(cs, "matrix") && o.family != def.family;
  if (family == "rs" || family == "vand" || family == "cauchy") {
    if (has_option(cs, "matrix")) {
      switch (o.family) {
        case ec::MatrixFamily::IsalVandermonde: family = "rs"; break;
        case ec::MatrixFamily::ReducedVandermonde: family = "vand"; break;
        case ec::MatrixFamily::Cauchy: family = "cauchy"; break;
      }
    }
    emit_matrix = false;
  }

  // Fill in the default-able positional args ("rs(10)" -> "rs(10,4)").
  std::vector<size_t> args = cs.args;
  if (args.size() == 1) {
    if (family == "rs" || family == "vand" || family == "cauchy" ||
        family == "naive_xor" || family == "isal" || family == "rs16")
      args.push_back(kDefaultParity);
    else if (family == "evenodd" || family == "rdp")
      args.push_back(2);
    else if (family == "star")
      args.push_back(3);
  }
  // The families with a trailing default-able arg ("piggyback(10,3)" ->
  // "piggyback(10,3,2)", "sparse(8,3,30)" -> "sparse(8,3,30,1)").
  if (family == "piggyback" && args.size() == 2) args.push_back(kDefaultSubstripes);
  if (family == "sparse" && args.size() == 3) args.push_back(kDefaultSparseSeed);

  // Pipeline spelling: invert the passes=/sched= presets (the same mapping
  // rs_name() in ec/rs_codec.cpp uses — keep the three in sync). Shapes the
  // grammar cannot spell (hand-built CodecOptions) keep the original
  // spelling rather than canonicalize wrongly.
  const auto& pl = o.pipeline;
  const auto sched_name = [](slp::ScheduleKind k) {
    switch (k) {
      case slp::ScheduleKind::None: return "none";
      case slp::ScheduleKind::Dfs: return "dfs";
      case slp::ScheduleKind::Greedy: return "greedy";
      case slp::ScheduleKind::Multilevel: return "multilevel";
    }
    return "none";
  };
  std::string passes_tok, sched_tok;
  const bool xrp = pl.compress == slp::CompressKind::XorRePair;
  if (xrp && pl.fuse) {
    if (pl.schedule == slp::ScheduleKind::None)
      passes_tok = "passes=fuse";
    else if (pl.schedule != slp::ScheduleKind::Dfs)
      sched_tok = std::string("sched=") + sched_name(pl.schedule);
  } else if (pl.compress == slp::CompressKind::None && !pl.fuse) {
    passes_tok = "passes=base";
    if (pl.schedule != slp::ScheduleKind::None)
      sched_tok = std::string("sched=") + sched_name(pl.schedule);
  } else if (xrp && !pl.fuse) {
    passes_tok = "passes=compress";
    if (pl.schedule != slp::ScheduleKind::None)
      sched_tok = std::string("sched=") + sched_name(pl.schedule);
  } else {
    return cs.spec;  // not grammar-expressible
  }
  const bool sched_takes_cap = pl.schedule == slp::ScheduleKind::Greedy ||
                               pl.schedule == slp::ScheduleKind::Multilevel;
  if ((pl.greedy_capacity != 0 && !sched_takes_cap) ||
      (!pl.cache_levels.empty() && pl.schedule != slp::ScheduleKind::Multilevel))
    return cs.spec;  // cap=/levels= would not re-parse under this schedule

  // Option tokens in spec_option_keys() order; defaults are dropped, and
  // the session/service keys (batch=, warmup=) never name a codec.
  std::vector<std::string> opts;
  if (o.exec.block_size != def.exec.block_size)
    opts.push_back("block=" + std::to_string(o.exec.block_size));
  if (o.exec.threads != def.exec.threads)
    opts.push_back("threads=" + std::to_string(o.exec.threads));
  if (o.exec.isa != def.exec.isa)
    opts.push_back(std::string("isa=") + kernel::isa_name(o.exec.isa));
  if (o.exec.backend != def.exec.backend &&
      // Auto resolves to Lowered: the two produce identical executors (and
      // share plan-cache entries), so only the backends that differ from
      // that resolution — interp and jit — earn a token.
      (o.exec.backend == runtime::ExecBackend::Interp ||
       o.exec.backend == runtime::ExecBackend::Jit))
    opts.push_back(std::string("exec=") + runtime::exec_backend_name(o.exec.backend));
  if (!passes_tok.empty()) opts.push_back(passes_tok);
  if (!sched_tok.empty()) opts.push_back(sched_tok);
  if (pl.greedy_capacity != 0 && sched_takes_cap)
    opts.push_back("cap=" + std::to_string(pl.greedy_capacity));
  if (!pl.cache_levels.empty()) {
    std::string levels = "levels=";
    for (size_t i = 0; i < pl.cache_levels.size(); ++i)
      levels += (i ? ":" : "") + std::to_string(pl.cache_levels[i]);
    opts.push_back(std::move(levels));
  }
  if (!o.shared_cache && !o.plan_cache) {
    opts.push_back(o.decode_cache_capacity == def.decode_cache_capacity
                       ? "cache=private"
                       : "cache=" + std::to_string(o.decode_cache_capacity));
  }
  if (emit_matrix) {
    const char* m = o.family == ec::MatrixFamily::ReducedVandermonde ? "vand" : "cauchy";
    opts.push_back(std::string("matrix=") + m);
  }
  if (o.exec.prefetch_next_block) opts.push_back("prefetch=1");

  std::string out = family + "(";
  for (size_t i = 0; i < args.size(); ++i)
    out += (i ? "," : "") + std::to_string(args[i]);
  out += ")";
  for (size_t i = 0; i < opts.size(); ++i) out += (i ? "," : "@") + opts[i];
  return out;
}

std::string canonical_spec(const std::string& spec) {
  return canonical_spec(parse_spec(spec));
}

void register_codec_family(const std::string& family, CodecBuilder builder) {
  if (family.empty() || !builder)
    throw std::invalid_argument("register_codec_family: empty family or builder");
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  r.families[family] = std::move(builder);
}

const std::vector<std::string>& spec_option_keys() {
  // Keep in sync with apply_option above and the grammar in registry.hpp —
  // this list is what help text and error messages print.
  static const std::vector<std::string> keys = {"block", "threads",  "isa",      "exec",
                                                "passes", "sched",   "cap",      "levels",
                                                "cache",  "matrix",  "prefetch", "batch",
                                                "warmup"};
  return keys;
}

CacheStats plan_cache_stats() { return ec::PlanCache::aggregate_stats(); }

std::vector<std::string> registered_families() {
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  std::vector<std::string> out;
  out.reserve(r.families.size());
  for (const auto& [name, _] : r.families) out.push_back(name);
  return out;  // std::map iterates sorted
}

}  // namespace xorec
