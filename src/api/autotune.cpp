#include "api/autotune.hpp"

#include <chrono>
#include <cstdint>
#include <numeric>
#include <vector>

#include "ec/bitmatrix_codec_core.hpp"
#include "ec/rs_codec.hpp"
#include "runtime/exec_program.hpp"
#include "runtime/executor.hpp"
#include "slp/pipeline.hpp"

namespace xorec {

namespace {

size_t measure_auto_block() {
  // One representative workload: the fully optimized RS(8,3) encode SLP.
  // The compiled program is block-size independent (B only shapes the
  // Executor), so the sweep compiles ONCE and times cheap Executor rebuilds.
  constexpr size_t n = 8, p = 3, w = ec::RsCodec::kStripsPerFragment;
  const gf::Matrix code = ec::make_code_matrix(ec::MatrixFamily::IsalVandermonde, n, p);
  std::vector<size_t> parity_rows(p);
  std::iota(parity_rows.begin(), parity_rows.end(), n);
  const slp::PipelineResult pipe =
      slp::optimize(bitmatrix::expand(code.select_rows(parity_rows)), {}, "block-auto");
  const runtime::ExecProgram prog =
      runtime::compile(pipe.final_form() == slp::ExecForm::Binary
                           ? pipe.final_program().binary_expanded()
                           : pipe.final_program());

  // 8 x 256 KiB fragments: the working set dwarfs L2, so the blocking
  // choice is what the measurement sees.
  const size_t strip_len = 32u << 10;
  const size_t frag_len = w * strip_len;
  std::vector<std::vector<uint8_t>> data_bufs(n, std::vector<uint8_t>(frag_len));
  std::vector<std::vector<uint8_t>> parity_bufs(p, std::vector<uint8_t>(frag_len));
  uint64_t fill = 0x9e3779b97f4a7c15ull;
  for (auto& f : data_bufs)
    for (auto& b : f) b = static_cast<uint8_t>(fill = fill * 6364136223846793005ull + 1);
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (const auto& f : data_bufs) data.push_back(f.data());
  for (auto& f : parity_bufs) parity.push_back(f.data());
  const auto in = ec::BitmatrixCodecCore::strip_pointers(data.data(), n, w, frag_len);
  const auto out = ec::BitmatrixCodecCore::strip_pointers(parity.data(), p, w, frag_len);

  using Clock = std::chrono::steady_clock;
  size_t best = 2048;  // overwritten by the first candidate below
  double best_time = 1e300;
  for (size_t block : {512u, 1024u, 2048u, 4096u, 8192u}) {
    runtime::ExecOptions eo;
    eo.block_size = block;
    const runtime::Executor exec(prog, eo);
    exec.run(in.data(), out.data(), strip_len);  // warm caches + scratch
    // Run enough repetitions for a stable reading (~10 ms per candidate).
    size_t reps = 2;
    double elapsed = 0;
    for (;;) {
      const auto t0 = Clock::now();
      for (size_t r = 0; r < reps; ++r) exec.run(in.data(), out.data(), strip_len);
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count() / reps;
      if (elapsed * reps > 0.01) break;
      reps *= 2;
    }
    // A candidate must beat the incumbent by 5% to displace it: filters
    // timing noise and keeps the default on machines where B barely matters.
    if (elapsed < best_time * 0.95) {
      best_time = elapsed;
      best = block;
    } else if (elapsed < best_time) {
      best_time = elapsed;
    }
  }
  return best;
}

}  // namespace

size_t auto_block_size() {
  static const size_t measured = measure_auto_block();
  return measured;
}

}  // namespace xorec
