#include "api/autotune.hpp"

#include <chrono>
#include <cstdint>
#include <numeric>
#include <vector>

#include "ec/bitmatrix_codec_core.hpp"
#include "ec/rs_codec.hpp"
#include "runtime/exec_program.hpp"
#include "runtime/executor.hpp"
#include "runtime/jit_cache.hpp"
#include "slp/pipeline.hpp"

namespace xorec {

namespace {

using Clock = std::chrono::steady_clock;

/// The shared calibration workload: the fully optimized RS(8,3) encode SLP
/// over 8 x 256 KiB fragments (the working set dwarfs L2, so the blocking /
/// backend choice is what the measurement sees). The compiled program is
/// independent of both knobs, so it compiles ONCE per workload instance and
/// the sweeps time cheap Executor rebuilds.
struct CalibrationWorkload {
  runtime::ExecProgram prog;
  std::vector<std::vector<uint8_t>> data_bufs, parity_bufs;
  std::vector<const uint8_t*> in;
  std::vector<uint8_t*> out_mut;
  std::vector<const uint8_t*> strip_in;
  std::vector<uint8_t*> strip_out;
  size_t strip_len = 32u << 10;

  CalibrationWorkload() {
    constexpr size_t n = 8, p = 3, w = ec::RsCodec::kStripsPerFragment;
    const gf::Matrix code =
        ec::make_code_matrix(ec::MatrixFamily::IsalVandermonde, n, p);
    std::vector<size_t> parity_rows(p);
    std::iota(parity_rows.begin(), parity_rows.end(), n);
    const slp::PipelineResult pipe = slp::optimize(
        bitmatrix::expand(code.select_rows(parity_rows)), {}, "autotune");
    prog = runtime::compile(pipe.final_form() == slp::ExecForm::Binary
                                ? pipe.final_program().binary_expanded()
                                : pipe.final_program());

    const size_t frag_len = w * strip_len;
    data_bufs.assign(n, std::vector<uint8_t>(frag_len));
    parity_bufs.assign(p, std::vector<uint8_t>(frag_len));
    uint64_t fill = 0x9e3779b97f4a7c15ull;
    for (auto& f : data_bufs)
      for (auto& b : f)
        b = static_cast<uint8_t>(fill = fill * 6364136223846793005ull + 1);
    for (const auto& f : data_bufs) in.push_back(f.data());
    for (auto& f : parity_bufs) out_mut.push_back(f.data());
    strip_in = ec::BitmatrixCodecCore::strip_pointers(in.data(), n, w, frag_len);
    strip_out =
        ec::BitmatrixCodecCore::strip_pointers(out_mut.data(), p, w, frag_len);
  }

  /// Seconds per run() of `exec`, repeated until the reading is stable
  /// (~10 ms per candidate).
  double time_executor(const runtime::Executor& exec) const {
    exec.run(strip_in.data(), strip_out.data(), strip_len);  // warm caches
    size_t reps = 2;
    double elapsed = 0;
    for (;;) {
      const auto t0 = Clock::now();
      for (size_t r = 0; r < reps; ++r)
        exec.run(strip_in.data(), strip_out.data(), strip_len);
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count() / reps;
      if (elapsed * reps > 0.01) break;
      reps *= 2;
    }
    return elapsed;
  }
};

size_t measure_auto_block() {
  const CalibrationWorkload w;
  size_t best = 2048;  // overwritten by the first candidate below
  double best_time = 1e300;
  for (size_t block : {512u, 1024u, 2048u, 4096u, 8192u}) {
    runtime::ExecOptions eo;
    eo.block_size = block;
    const runtime::Executor exec(w.prog, eo);
    const double elapsed = w.time_executor(exec);
    // A candidate must beat the incumbent by 5% to displace it: filters
    // timing noise and keeps the default on machines where B barely matters.
    if (elapsed < best_time * 0.95) {
      best_time = elapsed;
      best = block;
    } else if (elapsed < best_time) {
      best_time = elapsed;
    }
  }
  return best;
}

runtime::ExecBackend measure_auto_exec() {
  const CalibrationWorkload w;
  auto time_backend = [&](runtime::ExecBackend b, runtime::ExecBackend& actual) {
    runtime::ExecOptions eo;
    eo.backend = b;
    const runtime::Executor exec(w.prog, eo);
    actual = exec.backend();  // jit may have degraded to lowered
    return w.time_executor(exec);
  };

  runtime::ExecBackend actual;
  runtime::ExecBackend best = runtime::ExecBackend::Lowered;
  double best_time = time_backend(runtime::ExecBackend::Lowered, actual);
  // Challengers must beat the incumbent lowered backend by 5%; jit only
  // counts when the executor really ran the artifact (no silent fallback).
  if (runtime::JitCache::available()) {
    const double t = time_backend(runtime::ExecBackend::Jit, actual);
    if (actual == runtime::ExecBackend::Jit && t < best_time * 0.95) {
      best_time = t;
      best = runtime::ExecBackend::Jit;
    }
  }
  const double t = time_backend(runtime::ExecBackend::Interp, actual);
  if (t < best_time * 0.95) best = runtime::ExecBackend::Interp;
  return best;
}

}  // namespace

size_t auto_block_size() {
  static const size_t measured = measure_auto_block();
  return measured;
}

runtime::ExecBackend auto_exec_backend() {
  static const runtime::ExecBackend measured = measure_auto_exec();
  return measured;
}

}  // namespace xorec
