#include "api/batch.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "api/registry.hpp"
#include "ec/rs_codec.hpp"

namespace xorec {

namespace {

/// One calibration candidate: run the prepared encode jobs through a
/// TaskQueue with `workers` threads, return the wall time. Each job owns
/// its parity buffers (disjoint writes; inputs are shared read-only).
double time_encode_batch(const Codec& codec, size_t workers, size_t frag_len,
                         const std::vector<const uint8_t*>& data,
                         std::vector<std::vector<uint8_t*>>& parity_ptrs) {
  runtime::TaskQueue q(workers);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& p : parity_ptrs)
    q.submit([&codec, &data, &p, frag_len] { codec.encode(data.data(), p.data(), frag_len); });
  q.wait_idle();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

size_t measure_auto_workers() {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  if (hw == 1) return 1;

  // A tiny, compile-cheap workload: RS(4,2) with the optimizer disabled
  // (naive pipeline — we are measuring the machine's appetite for stripe
  // parallelism, not the SLP).
  ec::CodecOptions opt;
  opt.pipeline.compress = slp::CompressKind::None;
  opt.pipeline.fuse = false;
  opt.pipeline.schedule = slp::ScheduleKind::None;
  opt.shared_cache = false;  // calibration must not pollute the shared cache
  const ec::RsCodec codec(4, 2, opt);
  const size_t frag_len = codec.fragment_multiple() * 2048;  // 16 KiB fragments

  constexpr size_t kJobs = 64;
  std::vector<std::vector<uint8_t>> data_bufs(codec.data_fragments(),
                                              std::vector<uint8_t>(frag_len, 0xA5));
  std::vector<const uint8_t*> data;
  for (const auto& f : data_bufs) data.push_back(f.data());
  std::vector<std::vector<std::vector<uint8_t>>> parity_bufs(
      kJobs, std::vector<std::vector<uint8_t>>(codec.parity_fragments(),
                                               std::vector<uint8_t>(frag_len)));
  std::vector<std::vector<uint8_t*>> parity_ptrs(kJobs);
  for (size_t j = 0; j < kJobs; ++j)
    for (auto& f : parity_bufs[j]) parity_ptrs[j].push_back(f.data());

  std::vector<size_t> candidates{1};
  for (size_t c = 2; c < hw; c *= 2) candidates.push_back(c);
  if (candidates.back() != hw) candidates.push_back(hw);

  time_encode_batch(codec, 1, frag_len, data, parity_ptrs);  // warmup
  size_t best = 1;
  double best_time = 1e300;
  for (size_t c : candidates) {
    const double t = time_encode_batch(codec, c, frag_len, data, parity_ptrs);
    // Require a real win over fewer workers: 10% slack filters timing noise
    // and keeps the count low on machines where scaling is flat.
    if (t < best_time * 0.9) {
      best_time = t;
      best = c;
    } else if (t < best_time) {
      best_time = t;
    }
  }
  return best;
}

size_t resolve_threads(size_t threads) {
  return threads > 0 ? threads : auto_batch_workers();
}

std::shared_ptr<const Codec> checked(std::shared_ptr<const Codec> codec) {
  if (!codec) throw std::invalid_argument("BatchCoder: null codec");
  return codec;
}

}  // namespace

size_t auto_batch_workers() {
  static const size_t measured = measure_auto_workers();
  return measured;
}

BatchCoder::BatchCoder(std::shared_ptr<const Codec> codec, size_t threads)
    : codec_(checked(std::move(codec))), queue_(resolve_threads(threads)) {}

BatchCoder::BatchCoder(size_t threads) : queue_(resolve_threads(threads)) {}

const Codec& BatchCoder::codec() const {
  if (!codec_)
    throw std::logic_error(
        "BatchCoder: codec-less shard session — submits must name their codec");
  return *codec_;
}

BatchCoder::Session BatchCoder::parse_session(const std::string& spec) {
  CodecSpec cs = parse_spec(spec);
  const size_t threads = cs.batch_threads;
  // batch= belongs to this session, not the codec — strip it so the family
  // builders (which reject the key) accept the rest of the spec.
  cs.option_keys.erase(std::remove(cs.option_keys.begin(), cs.option_keys.end(), "batch"),
                       cs.option_keys.end());
  return {std::shared_ptr<const Codec>(make_codec(cs)), threads};
}

BatchCoder::BatchCoder(const std::string& spec) : BatchCoder(parse_session(spec)) {}

std::future<void> BatchCoder::submit_encode(const uint8_t* const* data,
                                            uint8_t* const* parity, size_t frag_len) {
  return submit_encode(codec_ptr(), data, parity, frag_len);
}

std::future<void> BatchCoder::submit_encode(std::shared_ptr<const Codec> codec,
                                            const uint8_t* const* data,
                                            uint8_t* const* parity, size_t frag_len) {
  if (!codec)
    throw std::logic_error("BatchCoder: submit_encode on a session with no codec");
  std::vector<const uint8_t*> d(data, data + codec->data_fragments());
  std::vector<uint8_t*> p(parity, parity + codec->parity_fragments());
  ++submitted_;
  return queue_.submit(
      [codec = std::move(codec), d = std::move(d), p = std::move(p), frag_len] {
        codec->encode(d.data(), p.data(), frag_len);
      });
}

std::future<void> BatchCoder::submit_reconstruct(std::shared_ptr<const ReconstructPlan> plan,
                                                 const uint8_t* const* available_frags,
                                                 uint8_t* const* out, size_t frag_len) {
  if (!plan) throw std::invalid_argument("BatchCoder: null plan");
  std::vector<const uint8_t*> avail(available_frags,
                                    available_frags + plan->available().size());
  std::vector<uint8_t*> o(out, out + plan->erased().size());
  ++submitted_;
  return queue_.submit(
      [plan = std::move(plan), avail = std::move(avail), o = std::move(o), frag_len] {
        plan->execute(avail.data(), o.data(), frag_len);
      });
}

std::future<void> BatchCoder::submit_reconstruct(std::vector<uint32_t> available,
                                                 const uint8_t* const* available_frags,
                                                 std::vector<uint32_t> erased,
                                                 uint8_t* const* out, size_t frag_len) {
  return submit_reconstruct(codec_ptr(), std::move(available), available_frags,
                            std::move(erased), out, frag_len);
}

std::future<void> BatchCoder::submit_reconstruct(std::shared_ptr<const Codec> codec,
                                                 std::vector<uint32_t> available,
                                                 const uint8_t* const* available_frags,
                                                 std::vector<uint32_t> erased,
                                                 uint8_t* const* out, size_t frag_len) {
  if (!codec)
    throw std::logic_error("BatchCoder: submit_reconstruct on a session with no codec");
  std::vector<const uint8_t*> avail(available_frags, available_frags + available.size());
  std::vector<uint8_t*> o(out, out + erased.size());
  ++submitted_;
  return queue_.submit([codec = std::move(codec), available = std::move(available),
                        erased = std::move(erased), avail = std::move(avail),
                        o = std::move(o), frag_len] {
    codec->reconstruct(available, avail.data(), erased, o.data(), frag_len);
  });
}

}  // namespace xorec
