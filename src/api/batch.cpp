#include "api/batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "api/registry.hpp"

namespace xorec {

namespace {

size_t resolve_threads(size_t threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::shared_ptr<const Codec> checked(std::shared_ptr<const Codec> codec) {
  if (!codec) throw std::invalid_argument("BatchCoder: null codec");
  return codec;
}

}  // namespace

BatchCoder::BatchCoder(std::shared_ptr<const Codec> codec, size_t threads)
    : codec_(checked(std::move(codec))), queue_(resolve_threads(threads)) {}

BatchCoder::Session BatchCoder::parse_session(const std::string& spec) {
  CodecSpec cs = parse_spec(spec);
  const size_t threads = cs.batch_threads;
  // batch= belongs to this session, not the codec — strip it so the family
  // builders (which reject the key) accept the rest of the spec.
  cs.option_keys.erase(std::remove(cs.option_keys.begin(), cs.option_keys.end(), "batch"),
                       cs.option_keys.end());
  return {std::shared_ptr<const Codec>(make_codec(cs)), threads};
}

BatchCoder::BatchCoder(const std::string& spec) : BatchCoder(parse_session(spec)) {}

std::future<void> BatchCoder::submit_encode(const uint8_t* const* data,
                                            uint8_t* const* parity, size_t frag_len) {
  std::vector<const uint8_t*> d(data, data + codec_->data_fragments());
  std::vector<uint8_t*> p(parity, parity + codec_->parity_fragments());
  ++submitted_;
  return queue_.submit(
      [codec = codec_, d = std::move(d), p = std::move(p), frag_len] {
        codec->encode(d.data(), p.data(), frag_len);
      });
}

std::future<void> BatchCoder::submit_reconstruct(std::shared_ptr<const ReconstructPlan> plan,
                                                 const uint8_t* const* available_frags,
                                                 uint8_t* const* out, size_t frag_len) {
  if (!plan) throw std::invalid_argument("BatchCoder: null plan");
  std::vector<const uint8_t*> avail(available_frags,
                                    available_frags + plan->available().size());
  std::vector<uint8_t*> o(out, out + plan->erased().size());
  ++submitted_;
  return queue_.submit(
      [plan = std::move(plan), avail = std::move(avail), o = std::move(o), frag_len] {
        plan->execute(avail.data(), o.data(), frag_len);
      });
}

std::future<void> BatchCoder::submit_reconstruct(std::vector<uint32_t> available,
                                                 const uint8_t* const* available_frags,
                                                 std::vector<uint32_t> erased,
                                                 uint8_t* const* out, size_t frag_len) {
  std::vector<const uint8_t*> avail(available_frags, available_frags + available.size());
  std::vector<uint8_t*> o(out, out + erased.size());
  ++submitted_;
  return queue_.submit([codec = codec_, available = std::move(available),
                        erased = std::move(erased), avail = std::move(avail),
                        o = std::move(o), frag_len] {
    codec->reconstruct(available, avail.data(), erased, o.data(), frag_len);
  });
}

}  // namespace xorec
