#include "bitmatrix/f2solve.hpp"

#include <stdexcept>

namespace xorec::bitmatrix {

std::optional<BitMatrix> f2_inverse(const BitMatrix& m) {
  if (m.rows() != m.cols()) return std::nullopt;
  const size_t n = m.rows();
  BitMatrix a = m;
  BitMatrix inv = BitMatrix::identity(n);
  for (size_t col = 0; col < n; ++col) {
    size_t piv = col;
    while (piv < n && !a.get(piv, col)) ++piv;
    if (piv == n) return std::nullopt;
    if (piv != col) {
      std::swap(a.row(piv), a.row(col));
      std::swap(inv.row(piv), inv.row(col));
    }
    for (size_t r = 0; r < n; ++r) {
      if (r != col && a.get(r, col)) {
        a.row(r) ^= a.row(col);
        inv.row(r) ^= inv.row(col);
      }
    }
  }
  return inv;
}

size_t f2_rank(const BitMatrix& m) {
  BitMatrix a = m;
  size_t rank = 0;
  for (size_t col = 0; col < a.cols() && rank < a.rows(); ++col) {
    size_t piv = rank;
    while (piv < a.rows() && !a.get(piv, col)) ++piv;
    if (piv == a.rows()) continue;
    std::swap(a.row(piv), a.row(rank));
    for (size_t r = 0; r < a.rows(); ++r)
      if (r != rank && a.get(r, col)) a.row(r) ^= a.row(rank);
    ++rank;
  }
  return rank;
}

std::optional<std::vector<BitRow>> f2_solve_erasures(
    const BitMatrix& code,
    const std::vector<uint32_t>& erased_inputs,
    const std::vector<uint32_t>& available_outputs) {
  return f2_solve_erasures(code, erased_inputs, available_outputs, {});
}

std::optional<std::vector<BitRow>> f2_solve_erasures(
    const BitMatrix& code,
    const std::vector<uint32_t>& erased_inputs,
    const std::vector<uint32_t>& available_outputs,
    const std::vector<uint32_t>& absent_inputs) {
  const size_t n_in = code.cols();
  const size_t n_av = available_outputs.size();
  const size_t n_er = erased_inputs.size();
  const size_t n_unknown = n_er + absent_inputs.size();
  if (n_er == 0) return std::vector<BitRow>{};

  // Unknown columns: the wanted (erased) inputs first, then the absent
  // don't-care inputs.
  std::vector<bool> is_unknown(n_in, false);
  std::vector<uint32_t> unknown_col(n_in, UINT32_MAX);
  for (size_t i = 0; i < n_er; ++i) {
    const uint32_t e = erased_inputs[i];
    if (e >= n_in) throw std::out_of_range("f2_solve_erasures: erased id");
    is_unknown[e] = true;
    unknown_col[e] = static_cast<uint32_t>(i);
  }
  for (size_t i = 0; i < absent_inputs.size(); ++i) {
    const uint32_t e = absent_inputs[i];
    if (e >= n_in) throw std::out_of_range("f2_solve_erasures: absent id");
    if (is_unknown[e])
      throw std::invalid_argument("f2_solve_erasures: absent input also listed as erased");
    is_unknown[e] = true;
    unknown_col[e] = static_cast<uint32_t>(n_er + i);
  }

  // Requires a systematic code: row j (j < n_in) must be the identity row, so
  // that a non-erased input is itself a surviving output strip.
  for (size_t j = 0; j < n_in; ++j) {
    if (code.row(j).popcount() != 1 || !code.get(j, j))
      throw std::invalid_argument("f2_solve_erasures: code is not systematic");
  }

  // Position of each surviving output within available_outputs.
  std::vector<uint32_t> out_pos(code.rows(), UINT32_MAX);
  for (size_t i = 0; i < n_av; ++i) {
    const uint32_t o = available_outputs[i];
    if (o >= code.rows()) throw std::out_of_range("f2_solve_erasures: output id");
    out_pos[o] = static_cast<uint32_t>(i);
  }
  for (size_t j = 0; j < n_in; ++j) {
    if (!is_unknown[j] && out_pos[j] == UINT32_MAX)
      throw std::invalid_argument(
          "f2_solve_erasures: non-erased input's systematic strip missing from survivors "
          "(list truly missing inputs as absent)");
  }

  // Each surviving output o yields:  sum_{j in row(o), unknown} x_j =
  //   out_o  XOR  sum_{j in row(o), known} out_j.
  // A: coefficients over the unknowns.  B: which surviving strips feed the
  // right-hand side of each equation.
  BitMatrix a(n_av, n_unknown);
  BitMatrix b(n_av, n_av);
  for (size_t i = 0; i < n_av; ++i) {
    const uint32_t o = available_outputs[i];
    b.set(i, i, true);
    for (uint32_t j : code.row(o).ones()) {
      if (is_unknown[j]) {
        a.flip(i, unknown_col[j]);
      } else {
        b.flip(i, out_pos[j]);
      }
    }
  }

  // Gauss-Jordan on [A | B]. Wanted columns must pivot; absent columns may
  // stay free (their value is never produced).
  std::vector<size_t> pivot_row(n_unknown, SIZE_MAX);
  size_t next_row = 0;
  for (size_t col = 0; col < n_unknown; ++col) {
    size_t piv = next_row;
    while (piv < n_av && !a.get(piv, col)) ++piv;
    if (piv == n_av) {
      if (col < n_er) return std::nullopt;  // wanted unknown underdetermined
      continue;                             // free don't-care column
    }
    if (piv != next_row) {
      std::swap(a.row(piv), a.row(next_row));
      std::swap(b.row(piv), b.row(next_row));
    }
    for (size_t r = 0; r < n_av; ++r) {
      if (r != next_row && a.get(r, col)) {
        a.row(r) ^= a.row(next_row);
        b.row(r) ^= b.row(next_row);
      }
    }
    pivot_row[col] = next_row;
    ++next_row;
  }

  std::vector<BitRow> out;
  out.reserve(n_er);
  for (size_t col = 0; col < n_er; ++col) {
    // A wanted solution contaminated by a free don't-care column depends on
    // strips nobody has: unsolvable from these survivors.
    if (a.row(pivot_row[col]).popcount() != 1) return std::nullopt;
    out.push_back(b.row(pivot_row[col]));
  }
  return out;
}

}  // namespace xorec::bitmatrix
