#include "bitmatrix/bitmatrix.hpp"

#include <bit>
#include <stdexcept>

namespace xorec::bitmatrix {

size_t BitRow::popcount() const {
  size_t n = 0;
  for (uint64_t w : w_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

size_t BitRow::xor_popcount(const BitRow& o) const {
  size_t n = 0;
  const size_t k = std::min(w_.size(), o.w_.size());
  for (size_t i = 0; i < k; ++i) n += static_cast<size_t>(std::popcount(w_[i] ^ o.w_[i]));
  for (size_t i = k; i < w_.size(); ++i) n += static_cast<size_t>(std::popcount(w_[i]));
  for (size_t i = k; i < o.w_.size(); ++i) n += static_cast<size_t>(std::popcount(o.w_[i]));
  return n;
}

bool BitRow::any() const {
  for (uint64_t w : w_) if (w) return true;
  return false;
}

std::vector<uint32_t> BitRow::ones() const {
  std::vector<uint32_t> out;
  for (size_t wi = 0; wi < w_.size(); ++wi) {
    uint64_t w = w_[wi];
    while (w) {
      const int b = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>(wi * 64 + b));
      w &= w - 1;
    }
  }
  return out;
}

size_t BitRow::hash() const {
  // FNV-1a over the words; good enough for dedup maps in the optimizer.
  size_t h = 1469598103934665603ull;
  for (uint64_t w : w_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

BitMatrix BitMatrix::identity(size_t n) {
  BitMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

BitMatrix BitMatrix::operator*(const BitMatrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("BitMatrix::operator*: shape");
  BitMatrix out(rows_, rhs.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      if (get(i, k)) out.r_[i] ^= rhs.r_[k];
    }
  }
  return out;
}

BitRow BitMatrix::apply(const BitRow& x) const {
  if (x.size() != cols_) throw std::invalid_argument("BitMatrix::apply: size");
  BitRow y(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    // Dot product over F2 = parity of AND.
    size_t par = 0;
    const auto& rw = r_[i].words();
    const auto& xw = x.words();
    for (size_t w = 0; w < rw.size(); ++w) par ^= static_cast<size_t>(std::popcount(rw[w] & xw[w]));
    if (par & 1) y.set(i, true);
  }
  return y;
}

size_t BitMatrix::total_ones() const {
  size_t n = 0;
  for (const auto& r : r_) n += r.popcount();
  return n;
}

size_t BitMatrix::xor_cost() const {
  size_t n = 0;
  for (const auto& r : r_) {
    const size_t pc = r.popcount();
    if (pc > 0) n += pc - 1;
  }
  return n;
}

std::string BitMatrix::to_string() const {
  std::string s;
  s.reserve(rows_ * (cols_ + 1));
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) s += get(i, j) ? '1' : '0';
    s += '\n';
  }
  return s;
}

BitMatrix companion(uint8_t coeff) {
  BitMatrix m(8, 8);
  for (int c = 0; c < 8; ++c) {
    const uint8_t col = gf::mul(coeff, static_cast<uint8_t>(1u << c));
    for (int r = 0; r < 8; ++r) m.set(r, c, (col >> r) & 1u);
  }
  return m;
}

BitMatrix expand(const gf::Matrix& m) {
  BitMatrix out(m.rows() * 8, m.cols() * 8);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      const uint8_t coeff = m.at(i, j);
      if (coeff == 0) continue;
      const BitMatrix c = companion(coeff);
      for (size_t r = 0; r < 8; ++r)
        for (size_t cc = 0; cc < 8; ++cc)
          if (c.get(r, cc)) out.set(i * 8 + r, j * 8 + cc, true);
    }
  }
  return out;
}

BitRow pack_bytes(const std::vector<uint8_t>& bytes) {
  BitRow r(bytes.size() * 8);
  for (size_t i = 0; i < bytes.size(); ++i)
    for (int b = 0; b < 8; ++b)
      if ((bytes[i] >> b) & 1u) r.set(i * 8 + b, true);
  return r;
}

std::vector<uint8_t> unpack_bytes(const BitRow& bits) {
  std::vector<uint8_t> out(bits.size() / 8, 0);
  for (size_t i = 0; i < out.size(); ++i)
    for (int b = 0; b < 8; ++b)
      if (bits.get(i * 8 + b)) out[i] |= static_cast<uint8_t>(1u << b);
  return out;
}

}  // namespace xorec::bitmatrix
