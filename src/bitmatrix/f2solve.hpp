// Gaussian elimination over F2: inversion and erased-unknown solving.
//
// This is the generic decoder substrate for *any* XOR-based code (EVENODD,
// RDP, STAR, or a user-supplied parity bitmatrix): given the equations of the
// surviving strips, solve for the erased ones.
#pragma once

#include <optional>
#include <vector>

#include "bitmatrix/bitmatrix.hpp"

namespace xorec::bitmatrix {

/// Gauss-Jordan inverse over F2; nullopt if singular.
std::optional<BitMatrix> f2_inverse(const BitMatrix& m);

/// Rank over F2.
size_t f2_rank(const BitMatrix& m);

/// Solve a strip-erasure problem.
///
/// The code maps `n_in` input strips to `n_out` output strips via `code`
/// (n_out x n_in; typically [I; parity]). `erased_inputs` lists input-strip
/// ids whose value was lost, `available_outputs` lists output-strip ids that
/// survive. On success returns, for each erased input (in the given order), a
/// BitRow over the available outputs (in the given order) telling which
/// surviving strips XOR to the lost strip.
///
/// Returns nullopt when the survivors do not determine the erased strips.
std::optional<std::vector<BitRow>> f2_solve_erasures(
    const BitMatrix& code,
    const std::vector<uint32_t>& erased_inputs,
    const std::vector<uint32_t>& available_outputs);

/// Partial-knowledge variant for locality codes: inputs in `absent_inputs`
/// are neither available nor wanted. They join the elimination as free
/// unknowns, and an erased input is solvable only if its solution does not
/// depend on any of them — so a locally repairable code can rebuild one
/// block from its group while the rest of the stripe stays unread.
std::optional<std::vector<BitRow>> f2_solve_erasures(
    const BitMatrix& code,
    const std::vector<uint32_t>& erased_inputs,
    const std::vector<uint32_t>& available_outputs,
    const std::vector<uint32_t>& absent_inputs);

}  // namespace xorec::bitmatrix
