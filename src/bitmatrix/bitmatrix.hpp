// Matrices over F2 and the byte -> 8x8 companion-matrix expansion that turns
// a GF(2^8) coding matrix into the "bitmatrix" ˜V of §1 (Mastrovito / VLSI
// construction, refs [74][13] in the paper).
//
// Rows are stored packed, 64 columns per word, so row XOR / popcount — the
// inner operations of every optimizer pass — are word ops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gf/gfmat.hpp"

namespace xorec::bitmatrix {

/// Packed row of F2 entries. Also reused by the SLP layer as a "value"
/// (a set of constants under symmetric difference, §4.1).
class BitRow {
 public:
  BitRow() = default;
  explicit BitRow(size_t nbits) : nbits_(nbits), w_((nbits + 63) / 64, 0) {}

  size_t size() const { return nbits_; }
  bool get(size_t i) const { return (w_[i >> 6] >> (i & 63)) & 1u; }
  void set(size_t i, bool v) {
    const uint64_t m = 1ull << (i & 63);
    if (v) w_[i >> 6] |= m; else w_[i >> 6] &= ~m;
  }
  void flip(size_t i) { w_[i >> 6] ^= 1ull << (i & 63); }

  BitRow& operator^=(const BitRow& o) {
    for (size_t i = 0; i < w_.size(); ++i) w_[i] ^= o.w_[i];
    return *this;
  }
  friend BitRow operator^(BitRow a, const BitRow& b) { a ^= b; return a; }

  size_t popcount() const;
  /// popcount(*this ^ o) without materializing the XOR.
  size_t xor_popcount(const BitRow& o) const;
  bool any() const;
  bool operator==(const BitRow&) const = default;

  /// Indices of set bits, ascending.
  std::vector<uint32_t> ones() const;

  const std::vector<uint64_t>& words() const { return w_; }
  size_t hash() const;

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> w_;
};

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), r_(rows, BitRow(cols)) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  bool get(size_t r, size_t c) const { return r_[r].get(c); }
  void set(size_t r, size_t c, bool v) { r_[r].set(c, v); }
  void flip(size_t r, size_t c) { r_[r].flip(c); }
  BitRow& row(size_t r) { return r_[r]; }
  const BitRow& row(size_t r) const { return r_[r]; }

  bool operator==(const BitMatrix&) const = default;

  static BitMatrix identity(size_t n);

  BitMatrix operator*(const BitMatrix& rhs) const;

  /// y = A x over F2 where x is a packed bit vector.
  BitRow apply(const BitRow& x) const;

  size_t total_ones() const;

  /// Total XOR count of evaluating each row as a chain: sum(popcount - 1)
  /// over nonzero rows (the #⊕ of the unoptimized SLP of this matrix).
  size_t xor_cost() const;

  std::string to_string() const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<BitRow> r_;
};

/// 8x8 companion bitmatrix of a GF(2^8) coefficient: column j holds the bits
/// of coeff * alpha^j, so that M * bits(y) == bits(coeff * y) for all y.
BitMatrix companion(uint8_t coeff);

/// Expand an a x b matrix over GF(2^8) into the 8a x 8b bitmatrix ˜V.
/// Bit layout: row 8*i+r / col 8*j+c maps strip r of output block i to strip
/// c of input block j.
BitMatrix expand(const gf::Matrix& m);

/// Oracle used by tests: apply `m` over GF(2^8) to bytes, bit-by-bit
/// equivalent to expand(m).apply on the bit representation.
BitRow pack_bytes(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> unpack_bytes(const BitRow& bits);

}  // namespace xorec::bitmatrix
