// Fragment layout transforms.
//
// XOR-based EC operates on fragments in *bit-plane* layout: a fragment of L
// bytes is 8 strips of L/8 bytes, and GF(2^8) symbol t of the fragment has
// bit c equal to bit t of strip c. Byte-stream codecs (ISA-L and friends)
// instead treat byte t as symbol t.
//
// Both engines apply the same coding matrix — over different symbol
// orderings of the same fragment. These transforms convert between the two
// views, enabling byte-exact cross-validation (tests) and data interchange
// with byte-stream RS implementations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xorec::ec {

/// Gather the frag_len GF(2^8) symbols of a bit-plane fragment
/// (symbol t bit c = bit t of strip c).
std::vector<uint8_t> fragment_to_symbols(const uint8_t* frag, size_t frag_len);

/// Scatter symbols back into bit-plane layout (inverse of the above).
std::vector<uint8_t> symbols_to_fragment(const std::vector<uint8_t>& symbols);

}  // namespace xorec::ec
