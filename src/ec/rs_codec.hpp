// Public erasure-coding API: RS(n, p) over GF(2^8) executed as optimized
// XOR SLPs (the paper's system, end to end).
//
// Data model (§1): a stored object is split into n data fragments; encode
// produces p parity fragments; any n surviving fragments reconstruct the
// data. Each fragment is internally 8 strips (w = 8 bit-planes of the
// GF(2^8) bitmatrix view), so fragment lengths must be multiples of 8.
//
// Usage:
//   ec::RsCodec codec(10, 4);
//   codec.encode(data_ptrs, parity_ptrs, frag_len);
//   ...
//   codec.reconstruct(available_ids, available_ptrs, erased_ids, out_ptrs,
//                     frag_len);
#pragma once

#include <memory>
#include <vector>

#include "ec/decode_cache.hpp"
#include "gf/gfmat.hpp"
#include "runtime/executor.hpp"
#include "slp/pipeline.hpp"

namespace xorec::ec {

enum class MatrixFamily {
  /// ISA-L's gf_gen_rs_matrix construction — the paper's evaluation matrix
  /// (verified MDS for RS(8..10, 2..4) and similar small codecs). Default.
  IsalVandermonde,
  /// Reduced Vandermonde [I ; M V_top^{-1}] — §7.1's textbook construction,
  /// provably MDS, denser as a bitmatrix.
  ReducedVandermonde,
  /// Systematic Cauchy — provably MDS for any n + p <= 255.
  Cauchy,
};

/// The systematic coding matrix of a family.
gf::Matrix make_code_matrix(MatrixFamily family, size_t n, size_t p);

struct CodecOptions {
  slp::PipelineOptions pipeline;
  runtime::ExecOptions exec;
  MatrixFamily family = MatrixFamily::IsalVandermonde;
  /// Max cached decode programs (distinct erasure patterns); 0 = unbounded.
  size_t decode_cache_capacity = 256;
};

/// An optimized SLP ready to run: the pipeline artifacts (for inspection)
/// plus the blocked executor.
struct CompiledProgram {
  slp::PipelineResult pipeline;
  runtime::Executor exec;

  /// Pre-fusion stages execute as binary XOR chains (the paper's Base/Co
  /// accounting: 3 memory accesses per XOR); fused/scheduled stages run
  /// n-ary single-pass kernels.
  CompiledProgram(slp::PipelineResult pipe, const runtime::ExecOptions& opt)
      : pipeline(std::move(pipe)),
        exec(runtime::compile(pipeline.final_form() == slp::ExecForm::Binary
                                  ? pipeline.final_program().binary_expanded()
                                  : pipeline.final_program()),
             opt) {}
};

namespace detail {
using DecodeCache = LruCache<CompiledProgram>;
}

class RsCodec {
 public:
  static constexpr size_t kStripsPerFragment = 8;

  RsCodec(size_t n, size_t p, CodecOptions opt = {});

  size_t data_fragments() const { return n_; }
  size_t parity_fragments() const { return p_; }
  size_t total_fragments() const { return n_ + p_; }
  const CodecOptions& options() const { return opt_; }

  /// The systematic (n+p) x n coding matrix (rows 0..n-1 are the identity).
  const gf::Matrix& code_matrix() const { return code_; }

  /// The optimizer artifacts of the encoding SLP (for inspection/benches).
  const slp::PipelineResult& encode_pipeline() const { return enc_->pipeline; }

  /// data: n fragment pointers; parity: p fragment pointers (written).
  /// frag_len must be a positive multiple of 8.
  void encode(const uint8_t* const* data, uint8_t* const* parity, size_t frag_len) const;

  /// Rebuild any erased fragments (data and/or parity).
  ///   available: surviving fragment ids, ascending; buffers parallel to it.
  ///   erased:    fragment ids to rebuild; `out` parallel writable buffers.
  /// Requires |available| >= n and the two id sets to be disjoint. Erased
  /// data fragments are decoded via the inverse-submatrix SLP; erased parity
  /// is then re-encoded from the (re)complete data.
  void reconstruct(const std::vector<uint32_t>& available,
                   const uint8_t* const* available_frags,
                   const std::vector<uint32_t>& erased, uint8_t* const* out,
                   size_t frag_len) const;

  /// Decode-side pipeline for a specific erasure pattern of data fragments,
  /// exposed so benches can measure the paper's P_dec tables offline.
  /// Survivors = choose_survivors(all fragments minus `erased_data`).
  std::shared_ptr<const CompiledProgram> decode_program(
      const std::vector<uint32_t>& erased_data) const;

  /// Survivor selection policy (deterministic): all surviving data fragments
  /// plus the lowest-id surviving parities, n total.
  std::vector<uint32_t> choose_survivors(const std::vector<uint32_t>& available) const;

 private:
  std::shared_ptr<CompiledProgram> decoder_for(const std::vector<uint32_t>& survivors,
                                               const std::vector<uint32_t>& erased_data) const;
  std::shared_ptr<CompiledProgram> parity_subset_program(
      const std::vector<uint32_t>& parity_ids) const;

  size_t n_ = 0, p_ = 0;
  CodecOptions opt_;
  gf::Matrix code_;
  std::shared_ptr<CompiledProgram> enc_;
  std::unique_ptr<detail::DecodeCache> cache_;
};

/// Helper: the strip pointers of a fragment buffer (8 sub-arrays).
std::vector<const uint8_t*> fragment_strips(const uint8_t* frag, size_t frag_len);
std::vector<uint8_t*> fragment_strips(uint8_t* frag, size_t frag_len);

}  // namespace xorec::ec
