// RS(n, p) over GF(2^8) executed as optimized XOR SLPs (the paper's system,
// end to end), implementing the unified xorec::Codec interface.
//
// Data model (§1): a stored object is split into n data fragments; encode
// produces p parity fragments; any n surviving fragments reconstruct the
// data. Each fragment is internally 8 strips (w = 8 bit-planes of the
// GF(2^8) bitmatrix view), so fragment lengths must be multiples of 8.
//
// Usage (or via the registry: xorec::make_codec("rs(10,4)")):
//   ec::RsCodec codec(10, 4);
//   codec.encode(data_ptrs, parity_ptrs, frag_len);
//   ...
//   codec.reconstruct(available_ids, available_ptrs, erased_ids, out_ptrs,
//                     frag_len);
#pragma once

#include <memory>
#include <vector>

#include "api/codec.hpp"
#include "ec/bitmatrix_codec_core.hpp"
#include "gf/gfmat.hpp"

namespace xorec::ec {

/// The systematic coding matrix of a family.
gf::Matrix make_code_matrix(MatrixFamily family, size_t n, size_t p);

class RsCodec : public Codec {
 public:
  static constexpr size_t kStripsPerFragment = 8;

  RsCodec(size_t n, size_t p, CodecOptions opt = {});

  size_t data_fragments() const override { return core_.data_blocks(); }
  size_t parity_fragments() const override { return core_.parity_blocks(); }
  size_t fragment_multiple() const override { return kStripsPerFragment; }
  std::string name() const override { return core_.name(); }
  const CodecOptions& options() const { return core_.options(); }

  /// The systematic (n+p) x n coding matrix (rows 0..n-1 are the identity).
  const gf::Matrix& code_matrix() const { return code_; }

  /// The optimizer artifacts of the encoding SLP (for inspection/benches).
  const slp::PipelineResult* encode_pipeline() const override {
    return &core_.encoder().pipeline;
  }

  /// Plan-cache counters (service-wide when on the shared cache).
  CacheStats cache_stats() const override { return core_.cache_stats(); }

  /// Cache identity + cached patterns, for warmup profiles.
  PlanFootprint plan_footprint() const override { return core_.footprint(); }
  size_t cached_program_count() const override { return core_.cache_size(); }
  ExecInfo exec_info() const override { return core_.exec_info(); }

  /// Decode-side pipeline for a specific erasure pattern of data fragments,
  /// exposed so benches can measure the paper's P_dec tables offline.
  /// Survivors = choose_survivors(all fragments minus `erased_data`).
  std::shared_ptr<const CompiledProgram> decode_program(
      const std::vector<uint32_t>& erased_data) const;

  /// Survivor selection policy (deterministic): all surviving data fragments
  /// plus the lowest-id surviving parities, n total.
  std::vector<uint32_t> choose_survivors(const std::vector<uint32_t>& available) const;

 protected:
  void encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                   size_t frag_len) const override;
  /// Thin plan-and-execute over plan_reconstruct_impl (programs memoized).
  void reconstruct_impl(const std::vector<uint32_t>& available,
                        const uint8_t* const* available_frags,
                        const std::vector<uint32_t>& erased, uint8_t* const* out,
                        size_t frag_len) const override;
  std::shared_ptr<const ReconstructPlan> plan_reconstruct_impl(
      const std::vector<uint32_t>& available,
      const std::vector<uint32_t>& erased) const override;

 private:
  std::shared_ptr<CompiledProgram> decoder_for(const std::vector<uint32_t>& survivors,
                                               const std::vector<uint32_t>& erased_data) const;
  std::shared_ptr<CompiledProgram> parity_subset_program(
      const std::vector<uint32_t>& parity_ids) const;

  gf::Matrix code_;
  BitmatrixCodecCore core_;
};

}  // namespace xorec::ec
