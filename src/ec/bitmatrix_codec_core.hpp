// Shared machinery of every bitmatrix-driven SLP codec (ec::RsCodec and
// altcodes::XorCodec): pipeline options, compiled programs, the shared
// plan-compilation cache (ec::PlanCache), strip-pointer expansion, and the
// generic plan builder (decode erased data, then re-encode erased parity)
// behind xorec::ReconstructPlan.
//
// The two codecs differ only in how they *derive* matrices for a given
// erasure pattern (GF(2^8) inverse submatrix vs F2 Gaussian elimination)
// and which survivors feed the decoder; they inject that via RecoveryPlan
// callbacks and share everything else here. make_plan() resolves those
// callbacks ONCE — the returned plan is self-contained (it co-owns the
// compiled programs, not the codec) and its execute() does zero re-solving.
//
// Compiled programs — the encoder included — are memoized in a PlanCache
// keyed by (matrix fingerprint, config fingerprint, pattern): by default the
// process-shared instance, so RS(10,4) compiled once serves every codec
// instance and every BatchCoder session (CodecOptions picks private/injected
// caches for isolation).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/codec.hpp"
#include "bitmatrix/bitmatrix.hpp"
#include "ec/plan_cache.hpp"
#include "runtime/executor.hpp"
#include "slp/pipeline.hpp"

namespace xorec::ec {

enum class MatrixFamily {
  /// ISA-L's gf_gen_rs_matrix construction — the paper's evaluation matrix
  /// (verified MDS for RS(8..10, 2..4) and similar small codecs). Default.
  IsalVandermonde,
  /// Reduced Vandermonde [I ; M V_top^{-1}] — §7.1's textbook construction,
  /// provably MDS, denser as a bitmatrix.
  ReducedVandermonde,
  /// Systematic Cauchy — provably MDS for any n + p <= 255.
  Cauchy,
};

struct CodecOptions {
  slp::PipelineOptions pipeline;
  runtime::ExecOptions exec;
  MatrixFamily family = MatrixFamily::IsalVandermonde;
  /// Capacity of a PRIVATE plan cache (shared_cache == false and no
  /// explicit plan_cache); 0 = unbounded. The process-shared cache has its
  /// own service-wide capacity.
  size_t decode_cache_capacity = 256;
  /// Compile through the process-shared PlanCache (default) or a private
  /// per-codec one (spec key cache=shared|private|<capacity>).
  bool shared_cache = true;
  /// Explicit cache injection (services running their own cache sharding,
  /// tests needing isolation); wins over shared_cache when set.
  std::shared_ptr<PlanCache> plan_cache;
};

class BitmatrixCodecCore {
 public:
  /// `parity` is the (m·w) x (k·w) parity bitmatrix; the encoding SLP is
  /// compiled through the configured pipeline immediately (a plan-cache hit
  /// when an identical codec already compiled it). `strategy_salt` is
  /// folded into the config fingerprint for codecs whose plan DERIVATION
  /// differs from the plain bitmatrix solve over the same matrix (the
  /// piggyback reduced-read repair): two codecs that would compile
  /// different programs for the same pattern key must never share cache
  /// entries.
  BitmatrixCodecCore(size_t data_blocks, size_t parity_blocks, size_t strips_per_block,
                     const bitmatrix::BitMatrix& parity, CodecOptions opt,
                     std::string name, uint64_t strategy_salt = 0);

  size_t data_blocks() const { return k_; }
  size_t parity_blocks() const { return m_; }
  size_t strips_per_block() const { return w_; }
  const CodecOptions& options() const { return opt_; }
  const std::string& name() const { return name_; }
  const CompiledProgram& encoder() const { return *enc_; }

  /// Compile a bitmatrix through this codec's pipeline/executor options.
  std::shared_ptr<CompiledProgram> compile(const bitmatrix::BitMatrix& m,
                                           const std::string& tag) const;

  /// Memoized program lookup — a view onto the plan cache scoped to this
  /// codec's (matrix, config) identity. Thread-safe, LRU-bounded.
  std::shared_ptr<CompiledProgram> cached(
      const std::vector<uint32_t>& key,
      const std::function<std::shared_ptr<CompiledProgram>()>& build) const;
  /// Programs the plan cache currently holds for this codec identity.
  size_t cache_size() const { return cache_->size_for(matrix_fp_, config_fp_); }
  /// Counters of the underlying cache (service-wide when shared).
  CacheStats cache_stats() const { return cache_->stats(); }
  const std::shared_ptr<PlanCache>& plan_cache() const { return cache_; }
  /// This identity's cache footprint (xorec::Codec::plan_footprint).
  PlanFootprint footprint() const {
    return {matrix_fp_, matrix_fp2_, config_fp_, cache_->patterns_for(matrix_fp_, config_fp_)};
  }
  /// The resolved backend/ISA this codec's executors run
  /// (xorec::Codec::exec_info) — read off the encoder, which every program
  /// of this codec shares options with.
  ExecInfo exec_info() const {
    return {runtime::exec_backend_name(enc_->exec.backend()),
            kernel::isa_name(enc_->exec.isa())};
  }

  /// Canonical cache keys: {erased ++ SEP ++ inputs} for decoders,
  /// {parity_ids ++ SEP ++ SEP} for parity re-encode subsets. (The encoder
  /// uses the empty pattern internally.) kPatternSep is the SEP marker —
  /// the single source of truth for the key format; profile serialization
  /// (ec/plan_cache_io) and warmup replay (pattern_ids below) build on it.
  static constexpr uint32_t kPatternSep = UINT32_MAX;
  static std::vector<uint32_t> decode_key(const std::vector<uint32_t>& erased,
                                          const std::vector<uint32_t>& inputs);
  static std::vector<uint32_t> parity_key(const std::vector<uint32_t>& parity_ids);

  /// Inverse of the key builders, for warmup replay: rebuild the
  /// (available, erased) id sets a cached pattern key was planned under.
  /// Decode keys replay against exactly the recorded inputs (reproducing
  /// the original key for every codec family); parity keys against every
  /// id outside the erased set. Returns false for the encoder key (empty —
  /// nothing to replay) and malformed patterns.
  static bool pattern_ids(const std::vector<uint32_t>& pattern, size_t total_fragments,
                          std::vector<uint32_t>& available, std::vector<uint32_t>& erased);

  void encode(const uint8_t* const* data, uint8_t* const* parity, size_t frag_len) const;

  /// A compiled recovery step: run `program` over the strips of fragments
  /// `inputs` (in order) to produce the erased fragments' strips.
  struct RecoveryPlan {
    std::shared_ptr<const CompiledProgram> program;
    std::vector<uint32_t> inputs;
  };
  /// Called with the sorted available ids and the sorted erased *data* ids.
  using DataPlanFn = std::function<RecoveryPlan(const std::vector<uint32_t>& available,
                                                const std::vector<uint32_t>& erased_data)>;
  /// Called with the erased *parity* ids; the program's inputs are numbered
  /// over all k data fragments in order (make_plan only demands buffers for
  /// the blocks the compiled program actually reads, so locality codes can
  /// re-encode a local parity from its group alone).
  using ParityPlanFn = std::function<std::shared_ptr<const CompiledProgram>(
      const std::vector<uint32_t>& erased_parity)>;

  /// Build the compiled repair plan for one erasure pattern: split erased
  /// into data/parity, resolve both steps through the callbacks (which
  /// normally hit the plan cache), and freeze the id -> buffer index maps.
  /// Inputs are assumed validated (xorec::Codec does that at the API
  /// boundary); unrecoverable patterns throw here, at plan time.
  std::shared_ptr<const ReconstructPlan> make_plan(
      const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased,
      const DataPlanFn& plan_data, const ParityPlanFn& plan_parity) const;

  /// Strip pointers of `count` fragments, fragment-major: fragment f's strips
  /// occupy indices w·f .. w·f+w-1 (the constant numbering of the SLPs).
  static std::vector<const uint8_t*> strip_pointers(const uint8_t* const* frags,
                                                    size_t count, size_t w, size_t frag_len);
  static std::vector<uint8_t*> strip_pointers(uint8_t* const* frags, size_t count, size_t w,
                                              size_t frag_len);

 private:
  size_t k_, m_, w_;
  CodecOptions opt_;
  std::string name_;
  uint64_t matrix_fp_ = 0, matrix_fp2_ = 0, config_fp_ = 0;
  std::shared_ptr<PlanCache> cache_;
  std::shared_ptr<CompiledProgram> enc_;
};

}  // namespace xorec::ec
