// Warmup-profile persistence for the plan-compilation service: a profile is
// the plan cache's KEY SET — which (codec spec, erasure pattern) pairs were
// compiled — NOT the compiled code. Replaying a profile (CodecService::
// warmup) re-derives and recompiles every program on the current machine
// and configuration, which keeps the file tiny, human-readable, portable
// across architectures, and immune to codegen-version drift.
//
// The COMPILED-artifact side of persistence lives in runtime/jit_cache.hpp:
// exec=jit plans replayed from a profile resolve their native .so through
// the content-addressed on-disk artifact cache, so a warmup() replay on a
// warmed machine activates plans by dlopen, without invoking the compiler.
// The two layers compose — profiles name WHAT to warm, the artifact cache
// makes warming cheap — and stay separate so profiles remain portable.
//
// Text format, one record per line ('#' starts a comment):
//   xorec-plan-profile v1
//   codec <canonical-spec> fp <matrix_fp> <matrix_fp2> <config_fp>
//   pattern <ids...>            # key of one cached program; the key's
//                               # UINT32_MAX separators are written as '|'
//
// Pattern shapes (BitmatrixCodecCore::decode_key / parity_key):
//   (empty)            the encoder — recompiled when the pool codec is built
//   E... | I...        decode program: erased data ids E from input ids I
//   P... | |           parity re-encode subset P
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xorec::ec {

struct PlanProfile {
  struct Entry {
    std::string spec;  // canonical codec spec (xorec::canonical_spec)
    uint64_t matrix_fp = 0, matrix_fp2 = 0, config_fp = 0;  // identity at save time
    std::vector<std::vector<uint32_t>> patterns;  // raw cache-key patterns
  };
  std::vector<Entry> entries;

  size_t pattern_count() const;
};

/// Write the profile; throws std::runtime_error when the file cannot be
/// written. Atomicity is best-effort (write to `path` directly).
void save_plan_profile(const std::string& path, const PlanProfile& profile);

/// Parse a profile; throws std::runtime_error on IO failure, a missing or
/// wrong header, or a malformed record (with the line quoted).
PlanProfile load_plan_profile(const std::string& path);

}  // namespace xorec::ec
