#include "ec/object_codec.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "api/batch.hpp"
#include "api/service.hpp"
#include "ec/rs_codec.hpp"

namespace xorec::ec {

namespace {
constexpr char kMagic[4] = {'X', 'S', 'L', 'P'};
constexpr uint16_t kVersion = 1;

/// A codec-bound session may only route work for the codec it wraps —
/// anything else would silently code with the wrong matrix. Codec-less
/// shard sessions (CodecService) carry any codec: every submit below names
/// this ObjectCodec's codec explicitly.
void check_session(const BatchCoder* session, const Codec* codec) {
  if (session && session->has_codec() && &session->codec() != codec)
    throw std::invalid_argument(
        "ObjectCodec: session wraps a different codec instance (" +
        session->codec().name() + " vs " + codec->name() + ")");
}
}  // namespace

ObjectCodec::ObjectCodec(std::shared_ptr<const Codec> codec) : codec_(std::move(codec)) {
  if (!codec_) throw std::invalid_argument("ObjectCodec: null codec");
  if (codec_->total_fragments() > UINT16_MAX)
    throw std::invalid_argument("ObjectCodec: too many fragments for the wire header");
}

ObjectCodec::ObjectCodec(const xorec::ServiceHandle& handle)
    : ObjectCodec(handle.codec_ptr()) {
  default_session_ = &handle.session();
}

ObjectCodec::ObjectCodec(size_t n, size_t p, CodecOptions opt)
    : ObjectCodec(std::make_shared<RsCodec>(n, p, std::move(opt))) {}

BatchCoder* ObjectCodec::session_or_default(BatchCoder* session) const {
  return session ? session : default_session_;
}

size_t ObjectCodec::payload_len_for(size_t object_size) const {
  const size_t n = codec_->data_fragments();
  const size_t mult = codec_->fragment_multiple();
  // ceil(size / n), padded to the codec's fragment multiple (minimum one
  // unit so the runtime always has work even for empty objects).
  const size_t per = (object_size + n - 1) / n;
  const size_t aligned = (per + mult - 1) / mult * mult;
  return std::max<size_t>(aligned, mult);
}

void ObjectCodec::write_header(uint8_t* dst, const Header& h) {
  std::memset(dst, 0, kHeaderSize);
  std::memcpy(dst, kMagic, 4);
  std::memcpy(dst + 4, &h.version, 2);
  std::memcpy(dst + 6, &h.frag_id, 2);
  std::memcpy(dst + 8, &h.n, 2);
  std::memcpy(dst + 10, &h.p, 2);
  std::memcpy(dst + 12, &h.object_size, 8);
  std::memcpy(dst + 20, &h.payload_len, 8);
}

std::optional<ObjectCodec::Header> ObjectCodec::read_header(
    const std::vector<uint8_t>& frag) {
  if (frag.size() < kHeaderSize) return std::nullopt;
  if (std::memcmp(frag.data(), kMagic, 4) != 0) return std::nullopt;
  Header h{};
  std::memcpy(&h.version, frag.data() + 4, 2);
  std::memcpy(&h.frag_id, frag.data() + 6, 2);
  std::memcpy(&h.n, frag.data() + 8, 2);
  std::memcpy(&h.p, frag.data() + 10, 2);
  std::memcpy(&h.object_size, frag.data() + 12, 8);
  std::memcpy(&h.payload_len, frag.data() + 20, 8);
  if (h.version != kVersion) return std::nullopt;
  if (frag.size() != kHeaderSize + h.payload_len) return std::nullopt;
  return h;
}

EncodedObject ObjectCodec::encode(const uint8_t* object, size_t size,
                                  BatchCoder* session) const {
  session = session_or_default(session);
  check_session(session, codec_.get());
  const size_t n = codec_->data_fragments();
  const size_t p = codec_->parity_fragments();
  const size_t payload = payload_len_for(size);

  EncodedObject out;
  out.fragments.assign(n + p, std::vector<uint8_t>(kHeaderSize + payload, 0));
  for (size_t i = 0; i < n + p; ++i) {
    write_header(out.fragments[i].data(),
                 {kVersion, static_cast<uint16_t>(i), static_cast<uint16_t>(n),
                  static_cast<uint16_t>(p), size, payload});
  }
  // Scatter the object across the data payloads (zero padding at the tail).
  for (size_t i = 0; i < n; ++i) {
    const size_t off = i * payload;
    if (off < size)
      std::memcpy(out.fragments[i].data() + kHeaderSize, object + off,
                  std::min(payload, size - off));
  }
  std::vector<const uint8_t*> data;
  std::vector<uint8_t*> parity;
  for (size_t i = 0; i < n; ++i) data.push_back(out.fragments[i].data() + kHeaderSize);
  for (size_t i = 0; i < p; ++i)
    parity.push_back(out.fragments[n + i].data() + kHeaderSize);
  if (session)
    session->submit_encode(codec_, data.data(), parity.data(), payload).get();
  else
    codec_->encode(data.data(), parity.data(), payload);
  return out;
}

std::optional<std::vector<uint8_t>> ObjectCodec::decode(
    const std::vector<std::vector<uint8_t>>& fragments, BatchCoder* session) const {
  session = session_or_default(session);
  check_session(session, codec_.get());
  const size_t n = codec_->data_fragments();
  const size_t p = codec_->parity_fragments();

  // Validate and index the survivors.
  std::optional<Header> geo;
  std::vector<const std::vector<uint8_t>*> by_id(n + p, nullptr);
  for (const auto& f : fragments) {
    const auto h = read_header(f);
    if (!h) continue;  // skip corrupt fragments
    if (h->n != n || h->p != p || h->frag_id >= n + p) continue;
    if (geo && (geo->object_size != h->object_size || geo->payload_len != h->payload_len))
      return std::nullopt;  // fragments from different objects
    if (!geo) geo = h;
    by_id[h->frag_id] = &f;
  }
  if (!geo) return std::nullopt;
  const size_t payload = geo->payload_len;
  if (payload == 0 || payload % codec_->fragment_multiple() != 0)
    return std::nullopt;  // geometry from a different / corrupted codec
  if (geo->object_size > n * payload)
    return std::nullopt;  // header claims more bytes than the fragments hold

  std::vector<uint32_t> available;
  std::vector<const uint8_t*> avail_ptrs;
  for (uint32_t id = 0; id < n + p; ++id) {
    if (by_id[id]) {
      available.push_back(id);
      avail_ptrs.push_back(by_id[id]->data() + kHeaderSize);
    }
  }
  if (available.size() < n) return std::nullopt;

  // Reconstruct any missing data payloads.
  std::vector<uint32_t> erased_data;
  for (uint32_t id = 0; id < n; ++id)
    if (!by_id[id]) erased_data.push_back(id);
  std::vector<std::vector<uint8_t>> rebuilt(erased_data.size(),
                                            std::vector<uint8_t>(payload));
  if (!erased_data.empty()) {
    std::vector<uint8_t*> outs;
    for (auto& r : rebuilt) outs.push_back(r.data());
    try {
      if (session)
        session
            ->submit_reconstruct(codec_, available, avail_ptrs.data(), erased_data,
                                 outs.data(), payload)
            .get();  // get() rethrows a job failure here
      else
        codec_->reconstruct(available, avail_ptrs.data(), erased_data, outs.data(), payload);
    } catch (const std::invalid_argument&) {
      // Non-MDS codecs may reject patterns even with >= n survivors; this
      // API's failure channel is nullopt, not exceptions.
      return std::nullopt;
    }
  }

  // Gather the object bytes.
  std::vector<uint8_t> object(geo->object_size);
  size_t rebuilt_idx = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t off = i * payload;
    if (off >= object.size()) break;
    const size_t len = std::min(payload, object.size() - off);
    const uint8_t* src = by_id[i] ? by_id[i]->data() + kHeaderSize
                                  : rebuilt[rebuilt_idx].data();
    std::memcpy(object.data() + off, src, len);
    if (!by_id[i]) ++rebuilt_idx;
  }
  return object;
}

std::optional<EncodedObject> ObjectCodec::rebuild_all(
    const std::vector<std::vector<uint8_t>>& fragments, BatchCoder* session) const {
  const auto object = decode(fragments, session);
  if (!object) return std::nullopt;
  return encode(object->data(), object->size(), session);
}

}  // namespace xorec::ec
