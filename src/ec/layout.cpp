#include "ec/layout.hpp"

#include <stdexcept>

namespace xorec::ec {

std::vector<uint8_t> fragment_to_symbols(const uint8_t* frag, size_t frag_len) {
  if (frag_len % 8 != 0)
    throw std::invalid_argument("fragment_to_symbols: frag_len must be a multiple of 8");
  const size_t strip_len = frag_len / 8;
  std::vector<uint8_t> symbols(frag_len, 0);
  for (size_t c = 0; c < 8; ++c) {
    const uint8_t* strip = frag + c * strip_len;
    for (size_t t = 0; t < frag_len; ++t) {
      const uint8_t bit = (strip[t >> 3] >> (t & 7)) & 1u;
      symbols[t] |= static_cast<uint8_t>(bit << c);
    }
  }
  return symbols;
}

std::vector<uint8_t> symbols_to_fragment(const std::vector<uint8_t>& symbols) {
  const size_t frag_len = symbols.size();
  if (frag_len % 8 != 0)
    throw std::invalid_argument("symbols_to_fragment: size must be a multiple of 8");
  const size_t strip_len = frag_len / 8;
  std::vector<uint8_t> frag(frag_len, 0);
  for (size_t c = 0; c < 8; ++c) {
    uint8_t* strip = frag.data() + c * strip_len;
    for (size_t t = 0; t < frag_len; ++t) {
      if ((symbols[t] >> c) & 1u) strip[t >> 3] |= static_cast<uint8_t>(1u << (t & 7));
    }
  }
  return frag;
}

}  // namespace xorec::ec
