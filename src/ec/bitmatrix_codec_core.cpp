#include "ec/bitmatrix_codec_core.hpp"

#include <algorithm>
#include <stdexcept>

namespace xorec::ec {

namespace {

template <typename Byte>
std::vector<Byte*> strips_of(Byte* const* frags, size_t count, size_t w, size_t frag_len) {
  const size_t strip_len = frag_len / w;
  std::vector<Byte*> out(count * w);
  for (size_t f = 0; f < count; ++f)
    for (size_t s = 0; s < w; ++s) out[f * w + s] = frags[f] + s * strip_len;
  return out;
}

}  // namespace

std::vector<const uint8_t*> BitmatrixCodecCore::strip_pointers(const uint8_t* const* frags,
                                                               size_t count, size_t w,
                                                               size_t frag_len) {
  return strips_of<const uint8_t>(frags, count, w, frag_len);
}

std::vector<uint8_t*> BitmatrixCodecCore::strip_pointers(uint8_t* const* frags, size_t count,
                                                         size_t w, size_t frag_len) {
  return strips_of<uint8_t>(frags, count, w, frag_len);
}

BitmatrixCodecCore::BitmatrixCodecCore(size_t data_blocks, size_t parity_blocks,
                                       size_t strips_per_block,
                                       const bitmatrix::BitMatrix& parity, CodecOptions opt,
                                       std::string name)
    : k_(data_blocks),
      m_(parity_blocks),
      w_(strips_per_block),
      opt_(std::move(opt)),
      name_(std::move(name)) {
  enc_ = compile(parity, "enc");
  cache_ = std::make_unique<detail::DecodeCache>(opt_.decode_cache_capacity);
}

std::shared_ptr<CompiledProgram> BitmatrixCodecCore::compile(const bitmatrix::BitMatrix& m,
                                                             const std::string& tag) const {
  return std::make_shared<CompiledProgram>(
      slp::optimize(m, opt_.pipeline, name_ + "-" + tag), opt_.exec);
}

std::shared_ptr<CompiledProgram> BitmatrixCodecCore::cached(
    const std::vector<uint32_t>& key,
    const std::function<std::shared_ptr<CompiledProgram>()>& build) const {
  return cache_->get_or_build(key, build);
}

std::vector<uint32_t> BitmatrixCodecCore::decode_key(const std::vector<uint32_t>& erased,
                                                     const std::vector<uint32_t>& inputs) {
  std::vector<uint32_t> key = erased;
  key.push_back(UINT32_MAX);
  key.insert(key.end(), inputs.begin(), inputs.end());
  return key;
}

std::vector<uint32_t> BitmatrixCodecCore::parity_key(const std::vector<uint32_t>& parity_ids) {
  std::vector<uint32_t> key = parity_ids;
  key.push_back(UINT32_MAX);
  key.push_back(UINT32_MAX);
  return key;
}

void BitmatrixCodecCore::encode(const uint8_t* const* data, uint8_t* const* parity,
                                size_t frag_len) const {
  const auto in = strip_pointers(data, k_, w_, frag_len);
  const auto out = strip_pointers(parity, m_, w_, frag_len);
  enc_->exec.run(in.data(), out.data(), frag_len / w_);
}

void BitmatrixCodecCore::reconstruct(const std::vector<uint32_t>& available,
                                     const uint8_t* const* available_frags,
                                     const std::vector<uint32_t>& erased, uint8_t* const* out,
                                     size_t frag_len, const DataPlanFn& plan_data,
                                     const ParityPlanFn& plan_parity) const {
  const size_t strip_len = frag_len / w_;

  std::vector<const uint8_t*> frag_by_id(k_ + m_, nullptr);
  for (size_t i = 0; i < available.size(); ++i)
    frag_by_id[available[i]] = available_frags[i];

  std::vector<uint32_t> erased_data, erased_parity;
  std::vector<uint8_t*> out_data, out_parity;
  for (size_t i = 0; i < erased.size(); ++i) {
    if (erased[i] < k_) {
      erased_data.push_back(erased[i]);
      out_data.push_back(out[i]);
    } else {
      erased_parity.push_back(erased[i]);
      out_parity.push_back(out[i]);
    }
  }

  if (!erased_data.empty()) {
    std::vector<uint32_t> avail_sorted = available;
    std::sort(avail_sorted.begin(), avail_sorted.end());

    // Canonical (sorted) erased order for the cache key and output mapping.
    std::vector<size_t> perm(erased_data.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(),
              [&](size_t a, size_t b) { return erased_data[a] < erased_data[b]; });
    std::vector<uint32_t> erased_sorted(perm.size());
    std::vector<uint8_t*> out_sorted(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      erased_sorted[i] = erased_data[perm[i]];
      out_sorted[i] = out_data[perm[i]];
    }

    const RecoveryPlan plan = plan_data(avail_sorted, erased_sorted);
    std::vector<const uint8_t*> in_frags(plan.inputs.size());
    for (size_t i = 0; i < plan.inputs.size(); ++i) {
      in_frags[i] = frag_by_id[plan.inputs[i]];
      if (in_frags[i] == nullptr)
        throw std::logic_error(name_ + ": recovery plan selected unavailable fragment " +
                               std::to_string(plan.inputs[i]));
    }
    const auto in = strip_pointers(in_frags.data(), in_frags.size(), w_, frag_len);
    const auto outs = strip_pointers(out_sorted.data(), out_sorted.size(), w_, frag_len);
    plan.program->exec.run(in.data(), outs.data(), strip_len);

    // The rebuilt data is now available for parity repair.
    for (size_t i = 0; i < erased_sorted.size(); ++i)
      frag_by_id[erased_sorted[i]] = out_sorted[i];
  }

  if (!erased_parity.empty()) {
    const auto prog = plan_parity(erased_parity);
    std::vector<const uint8_t*> data_frags(k_);
    for (size_t d = 0; d < k_; ++d) {
      if (frag_by_id[d] == nullptr)
        // The contract (api/codec.hpp) promises invalid_argument for
        // patterns a codec rejects; callers can retry with the fragment
        // listed in `erased` so it gets decoded first.
        throw std::invalid_argument(name_ + ": data fragment " + std::to_string(d) +
                                    " unavailable for parity repair; list it in erased");
      data_frags[d] = frag_by_id[d];
    }
    const auto in = strip_pointers(data_frags.data(), k_, w_, frag_len);
    const auto outs = strip_pointers(out_parity.data(), out_parity.size(), w_, frag_len);
    prog->exec.run(in.data(), outs.data(), strip_len);
  }
}

}  // namespace xorec::ec
