#include "ec/bitmatrix_codec_core.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "ec/repair_layout.hpp"
#include "slp/metrics.hpp"

namespace xorec::ec {

namespace {

template <typename Byte>
std::vector<Byte*> strips_of(Byte* const* frags, size_t count, size_t w, size_t frag_len) {
  const size_t strip_len = frag_len / w;
  std::vector<Byte*> out(count * w);
  for (size_t f = 0; f < count; ++f)
    for (size_t s = 0; s < w; ++s) out[f * w + s] = frags[f] + s * strip_len;
  return out;
}

/// Fill `dst` with the strip pointers of `count` fragments (fragment-major,
/// like strips_of) reusing dst's capacity — the execute() hot path runs one
/// plan over millions of stripes and must stay allocation-free after warmup.
template <typename Byte>
void strips_into(std::vector<Byte*>& dst, Byte* const* frags, size_t count, size_t w,
                 size_t frag_len) {
  const size_t strip_len = frag_len / w;
  dst.resize(count * w);
  for (size_t f = 0; f < count; ++f)
    for (size_t s = 0; s < w; ++s) dst[f * w + s] = frags[f] + s * strip_len;
}

/// The compiled two-step repair plan: a decode program over a fixed subset
/// of the survivors, then a parity re-encode over the (partly rebuilt) data.
/// Self-contained: co-owns the programs, copies the index maps — the codec
/// may be destroyed while the plan keeps serving stripes.
class BitmatrixReconstructPlan final : public ReconstructPlan {
 public:
  struct DataStep {
    std::shared_ptr<const CompiledProgram> program;
    std::vector<size_t> in_pos;   // indices into available()
    std::vector<size_t> out_pos;  // indices into `out` (canonical sorted order)
  };
  struct ParityStep {
    std::shared_ptr<const CompiledProgram> program;
    std::vector<RepairLayout::Source> data_src;  // k entries, data frags in order
    std::vector<size_t> out_pos;                 // indices into `out`
  };

  BitmatrixReconstructPlan(std::string codec_name, size_t w,
                           std::vector<uint32_t> available, std::vector<uint32_t> erased,
                           std::optional<DataStep> data, std::optional<ParityStep> parity)
      : ReconstructPlan(std::move(codec_name), w, std::move(available), std::move(erased)),
        w_(w),
        data_(std::move(data)),
        parity_(std::move(parity)) {}

  const slp::PipelineResult* decode_pipeline() const override {
    return data_ ? &data_->program->pipeline : nullptr;
  }

 protected:
  void execute_impl(const uint8_t* const* available_frags, uint8_t* const* out,
                    size_t frag_len) const override {
    // Pointer tables are per thread and reused across calls: thread-safe,
    // and allocation-free once warm (sizes are fixed per plan).
    thread_local std::vector<const uint8_t*> in_frags;
    thread_local std::vector<uint8_t*> out_frags;
    thread_local std::vector<const uint8_t*> in_strips;
    thread_local std::vector<uint8_t*> out_strips;

    const size_t strip_len = frag_len / w_;
    if (data_) {
      in_frags.resize(data_->in_pos.size());
      for (size_t i = 0; i < in_frags.size(); ++i)
        in_frags[i] = available_frags[data_->in_pos[i]];
      out_frags.resize(data_->out_pos.size());
      for (size_t i = 0; i < out_frags.size(); ++i) out_frags[i] = out[data_->out_pos[i]];
      strips_into(in_strips, in_frags.data(), in_frags.size(), w_, frag_len);
      strips_into(out_strips, out_frags.data(), out_frags.size(), w_, frag_len);
      data_->program->exec.run(in_strips.data(), out_strips.data(), strip_len);
    }
    if (parity_) {
      in_frags.resize(parity_->data_src.size());
      for (size_t d = 0; d < in_frags.size(); ++d) {
        const RepairLayout::Source& src = parity_->data_src[d];
        in_frags[d] = src.from_out ? out[src.pos] : available_frags[src.pos];
      }
      out_frags.resize(parity_->out_pos.size());
      for (size_t i = 0; i < out_frags.size(); ++i) out_frags[i] = out[parity_->out_pos[i]];
      strips_into(in_strips, in_frags.data(), in_frags.size(), w_, frag_len);
      strips_into(out_strips, out_frags.data(), out_frags.size(), w_, frag_len);
      parity_->program->exec.run(in_strips.data(), out_strips.data(), strip_len);
    }
  }

  /// The true repair read set, from the flat base SLPs (a safe superset of
  /// every optimized form — the optimizer never introduces constants). Data
  /// step constants index the strips of its input subset; parity step
  /// constants index the k·w data strips, where from_out sources are the
  /// plan's own outputs (already local to the repairing caller) and survivor
  /// sources are real reads.
  PlanReadSet compute_read_set() const override {
    // Collect (survivor fragment id, strip) pairs as flat codes so one
    // sort/unique dedupes strips read by both steps.
    std::vector<uint64_t> codes;
    if (data_) {
      for (const slp::Instruction& ins : data_->program->pipeline.base.body)
        for (const slp::Term& t : ins.args)
          if (t.is_const() && t.id / w_ < data_->in_pos.size())
            codes.push_back(static_cast<uint64_t>(available()[data_->in_pos[t.id / w_]]) *
                                w_ +
                            t.id % w_);
    }
    if (parity_) {
      for (const slp::Instruction& ins : parity_->program->pipeline.base.body)
        for (const slp::Term& t : ins.args) {
          if (!t.is_const() || t.id / w_ >= parity_->data_src.size()) continue;
          const RepairLayout::Source& src = parity_->data_src[t.id / w_];
          if (src.from_out) continue;  // rebuilt by this plan — no survivor read
          codes.push_back(static_cast<uint64_t>(available()[src.pos]) * w_ + t.id % w_);
        }
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    PlanReadSet rs;
    rs.strips = codes.size();
    for (uint64_t code : codes) {
      const uint32_t frag = static_cast<uint32_t>(code / w_);
      if (rs.fragments.empty() || rs.fragments.back() != frag) {
        rs.fragments.push_back(frag);
        rs.fragment_strips.push_back(0);
      }
      ++rs.fragment_strips.back();
    }
    return rs;
  }

  PlanStats compute_stats() const override {
    PlanStats s;
    for (const CompiledProgram* prog :
         {data_ ? data_->program.get() : nullptr, parity_ ? parity_->program.get() : nullptr}) {
      if (!prog) continue;
      const auto m =
          slp::measure(prog->pipeline.final_program(), prog->pipeline.final_form());
      s.xor_ops += m.xor_ops;
      s.instructions += m.instructions;
      s.mem_accesses += m.mem_accesses;
      s.nvar = std::max(s.nvar, m.nvar);
      s.ccap = std::max(s.ccap, m.ccap);
      ++s.steps;
    }
    return s;
  }

 private:
  size_t w_;
  std::optional<DataStep> data_;
  std::optional<ParityStep> parity_;
};

}  // namespace

std::vector<const uint8_t*> BitmatrixCodecCore::strip_pointers(const uint8_t* const* frags,
                                                               size_t count, size_t w,
                                                               size_t frag_len) {
  return strips_of<const uint8_t>(frags, count, w, frag_len);
}

std::vector<uint8_t*> BitmatrixCodecCore::strip_pointers(uint8_t* const* frags, size_t count,
                                                         size_t w, size_t frag_len) {
  return strips_of<uint8_t>(frags, count, w, frag_len);
}

BitmatrixCodecCore::BitmatrixCodecCore(size_t data_blocks, size_t parity_blocks,
                                       size_t strips_per_block,
                                       const bitmatrix::BitMatrix& parity, CodecOptions opt,
                                       std::string name, uint64_t strategy_salt)
    : k_(data_blocks),
      m_(parity_blocks),
      w_(strips_per_block),
      opt_(std::move(opt)),
      name_(std::move(name)) {
  // Pin the multilevel default hierarchy NOW, while the executor block size
  // is in hand: levels= unset means "this machine's cache topology divided
  // by B" (sysfs-calibrated, 32:512 fallback). Resolving before the config
  // fingerprint keeps cache identity honest — two codecs that would pebble
  // different hierarchies never share compiled programs.
  if (opt_.pipeline.schedule == slp::ScheduleKind::Multilevel &&
      opt_.pipeline.cache_levels.empty())
    opt_.pipeline.cache_levels =
        slp::effective_cache_levels(opt_.pipeline, opt_.exec.block_size);
  config_fp_ = PlanCache::fingerprint_config(opt_.pipeline, opt_.exec) ^ strategy_salt;
  std::tie(matrix_fp_, matrix_fp2_) = PlanCache::fingerprint_matrix(parity, k_, m_, w_);
  // Private caches are single-shard so cache=N keeps exact LRU capacity
  // semantics; the shared service spreads over PlanCache::kDefaultShards.
  cache_ = opt_.plan_cache    ? opt_.plan_cache
           : opt_.shared_cache ? PlanCache::process_shared()
                               : std::make_shared<PlanCache>(opt_.decode_cache_capacity, 1);
  // The encoder is a cached artifact too: building a second codec instance
  // of the same identity reuses the compiled encoding SLP.
  enc_ = cached({}, [&] { return compile(parity, "enc"); });
}

std::shared_ptr<CompiledProgram> BitmatrixCodecCore::compile(const bitmatrix::BitMatrix& m,
                                                             const std::string& tag) const {
  return std::make_shared<CompiledProgram>(
      slp::optimize(m, opt_.pipeline, name_ + "-" + tag), opt_.exec);
}

std::shared_ptr<CompiledProgram> BitmatrixCodecCore::cached(
    const std::vector<uint32_t>& key,
    const std::function<std::shared_ptr<CompiledProgram>()>& build) const {
  return cache_->get_or_build(PlanKey{matrix_fp_, matrix_fp2_, config_fp_, key}, build);
}

std::vector<uint32_t> BitmatrixCodecCore::decode_key(const std::vector<uint32_t>& erased,
                                                     const std::vector<uint32_t>& inputs) {
  std::vector<uint32_t> key = erased;
  key.push_back(kPatternSep);
  key.insert(key.end(), inputs.begin(), inputs.end());
  return key;
}

std::vector<uint32_t> BitmatrixCodecCore::parity_key(const std::vector<uint32_t>& parity_ids) {
  std::vector<uint32_t> key = parity_ids;
  key.push_back(kPatternSep);
  key.push_back(kPatternSep);
  return key;
}

bool BitmatrixCodecCore::pattern_ids(const std::vector<uint32_t>& pattern,
                                     size_t total_fragments,
                                     std::vector<uint32_t>& available,
                                     std::vector<uint32_t>& erased) {
  available.clear();
  erased.clear();
  const auto sep = std::find(pattern.begin(), pattern.end(), kPatternSep);
  if (sep == pattern.end()) return false;  // encoder key or foreign format
  erased.assign(pattern.begin(), sep);
  if (erased.empty()) return false;
  const auto rest = sep + 1;
  if (rest != pattern.end() && *rest == kPatternSep) {
    // Parity subset: everything not erased is a survivor.
    if (rest + 1 != pattern.end()) return false;
    for (uint32_t id = 0; id < total_fragments; ++id)
      if (std::find(erased.begin(), erased.end(), id) == erased.end())
        available.push_back(id);
    return true;
  }
  available.assign(rest, pattern.end());
  return !available.empty();
}

void BitmatrixCodecCore::encode(const uint8_t* const* data, uint8_t* const* parity,
                                size_t frag_len) const {
  const auto in = strip_pointers(data, k_, w_, frag_len);
  const auto out = strip_pointers(parity, m_, w_, frag_len);
  enc_->exec.run(in.data(), out.data(), frag_len / w_);
}

std::shared_ptr<const ReconstructPlan> BitmatrixCodecCore::make_plan(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased,
    const DataPlanFn& plan_data, const ParityPlanFn& plan_parity) const {
  const RepairLayout layout(k_, k_ + m_, available, erased);

  // Canonical (sorted) erased-data order for the cache key and output map.
  std::vector<uint32_t> erased_sorted;
  std::vector<size_t> out_pos_sorted;
  std::optional<BitmatrixReconstructPlan::DataStep> data_step;
  if (!layout.erased_data.empty()) {
    std::vector<uint32_t> avail_sorted = available;
    std::sort(avail_sorted.begin(), avail_sorted.end());

    std::vector<size_t> perm(layout.erased_data.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      return layout.erased_data[a] < layout.erased_data[b];
    });
    for (size_t i : perm) {
      erased_sorted.push_back(layout.erased_data[i]);
      out_pos_sorted.push_back(layout.out_pos_data[i]);
    }

    const RecoveryPlan rp = plan_data(avail_sorted, erased_sorted);
    BitmatrixReconstructPlan::DataStep step;
    step.program = rp.program;
    step.in_pos.reserve(rp.inputs.size());
    for (uint32_t id : rp.inputs) {
      if (layout.pos_of_id[id] == RepairLayout::kAbsent)
        throw std::logic_error(name_ + ": recovery plan selected unavailable fragment " +
                               std::to_string(id));
      step.in_pos.push_back(layout.pos_of_id[id]);
    }
    step.out_pos = out_pos_sorted;
    data_step = std::move(step);
  }

  std::optional<BitmatrixReconstructPlan::ParityStep> parity_step;
  if (!layout.erased_parity.empty()) {
    BitmatrixReconstructPlan::ParityStep step;
    step.program = plan_parity(layout.erased_parity);
    // Which data blocks the compiled program actually reads: the optimizer
    // never introduces constants, so the flat base SLP's constant set is a
    // safe superset. Locality codes (LRC) rebuild a local parity from its
    // group alone — unread blocks need no source buffer (they get a valid
    // but never-dereferenced placeholder).
    std::vector<bool> touched(k_, false);
    for (const slp::Instruction& ins : step.program->pipeline.base.body)
      for (const slp::Term& t : ins.args)
        if (t.is_const() && t.id < k_ * w_) touched[t.id / w_] = true;
    step.data_src.reserve(k_);
    for (size_t d = 0; d < k_; ++d)
      step.data_src.push_back(touched[d]
                                  ? layout.data_source(d, erased_sorted, out_pos_sorted, name_)
                                  : RepairLayout::Source{/*from_out=*/true, /*pos=*/0});
    step.out_pos = layout.out_pos_parity;
    parity_step = std::move(step);
  }

  return std::make_shared<BitmatrixReconstructPlan>(name_, w_, available, erased,
                                                    std::move(data_step),
                                                    std::move(parity_step));
}

}  // namespace xorec::ec
