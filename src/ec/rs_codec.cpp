#include "ec/rs_codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitmatrix/bitmatrix.hpp"

namespace xorec::ec {

namespace {

gf::Matrix checked_code_matrix(MatrixFamily family, size_t n, size_t p) {
  if (n == 0 || p == 0 || n + p > 255)
    throw std::invalid_argument("RsCodec: need n >= 1, p >= 1, n + p <= 255");
  return make_code_matrix(family, n, p);
}

/// Encoding SLP input: the parity rows only (data fragments are stored
/// verbatim), expanded to the w = 8 bitmatrix view.
bitmatrix::BitMatrix parity_bitmatrix(const gf::Matrix& code, size_t n, size_t p) {
  std::vector<size_t> parity_rows(p);
  for (size_t i = 0; i < p; ++i) parity_rows[i] = n + i;
  return bitmatrix::expand(code.select_rows(parity_rows));
}

std::string rs_name(const CodecOptions& opt, size_t n, size_t p) {
  const char* fam = "rs";
  switch (opt.family) {
    case MatrixFamily::IsalVandermonde: fam = "rs"; break;
    case MatrixFamily::ReducedVandermonde: fam = "vand"; break;
    case MatrixFamily::Cauchy: fam = "cauchy"; break;
  }
  std::string name =
      std::string(fam) + "(" + std::to_string(n) + "," + std::to_string(p) + ")";
  // Name the pipeline configuration too, or the name would rebuild a
  // differently-optimized codec. Non-default shapes with no spec token get
  // an invalid suffix on purpose: failing loudly in make_codec beats
  // silently rebuilding the wrong pipeline. Inverse of the passes=/sched=
  // presets in api/registry.cpp apply_option — keep the two in sync.
  const auto& pl = opt.pipeline;
  const bool xrp = pl.compress == slp::CompressKind::XorRePair;
  const auto cap_suffix = [&] {
    return pl.greedy_capacity ? ",cap=" + std::to_string(pl.greedy_capacity)
                              : std::string();
  };
  if (xrp && pl.fuse && pl.schedule == slp::ScheduleKind::Dfs)
    ;  // the default full pipeline
  else if (pl.compress == slp::CompressKind::None && !pl.fuse &&
           pl.schedule == slp::ScheduleKind::None)
    name += "@passes=base";
  else if (xrp && !pl.fuse && pl.schedule == slp::ScheduleKind::None)
    name += "@passes=compress";
  else if (xrp && pl.fuse && pl.schedule == slp::ScheduleKind::None)
    name += "@passes=fuse";
  else if (xrp && pl.fuse && pl.schedule == slp::ScheduleKind::Greedy)
    name += "@sched=greedy" + cap_suffix();
  else if (xrp && pl.fuse && pl.schedule == slp::ScheduleKind::Multilevel) {
    name += "@sched=multilevel" + cap_suffix();
    if (!pl.cache_levels.empty()) {
      name += ",levels=";
      for (size_t i = 0; i < pl.cache_levels.size(); ++i)
        name += (i ? ":" : "") + std::to_string(pl.cache_levels[i]);
    }
  } else
    name += "@passes=custom";
  return name;
}

}  // namespace

gf::Matrix make_code_matrix(MatrixFamily family, size_t n, size_t p) {
  switch (family) {
    case MatrixFamily::IsalVandermonde: return gf::rs_isal_matrix(n, p);
    case MatrixFamily::ReducedVandermonde: return gf::rs_systematic_matrix(n, p);
    case MatrixFamily::Cauchy: return gf::rs_cauchy_matrix(n, p);
  }
  throw std::invalid_argument("make_code_matrix: unknown family");
}

RsCodec::RsCodec(size_t n, size_t p, CodecOptions opt)
    : code_(checked_code_matrix(opt.family, n, p)),
      core_(n, p, kStripsPerFragment, parity_bitmatrix(code_, n, p), opt,
            rs_name(opt, n, p)) {}

void RsCodec::encode_impl(const uint8_t* const* data, uint8_t* const* parity,
                          size_t frag_len) const {
  core_.encode(data, parity, frag_len);
}

std::vector<uint32_t> RsCodec::choose_survivors(const std::vector<uint32_t>& available) const {
  const size_t n = data_fragments();
  std::vector<uint32_t> sorted = available;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> survivors;
  survivors.reserve(n);
  for (uint32_t id : sorted)
    if (id < n && survivors.size() < n) survivors.push_back(id);
  for (uint32_t id : sorted)
    if (id >= n && survivors.size() < n) survivors.push_back(id);
  if (survivors.size() < n)
    throw std::invalid_argument("RsCodec: not enough surviving fragments to decode");
  std::sort(survivors.begin(), survivors.end());
  return survivors;
}

std::shared_ptr<CompiledProgram> RsCodec::decoder_for(
    const std::vector<uint32_t>& survivors, const std::vector<uint32_t>& erased_data) const {
  return core_.cached(
      BitmatrixCodecCore::decode_key(erased_data, survivors),
      [&]() -> std::shared_ptr<CompiledProgram> {
        std::vector<size_t> rows(survivors.begin(), survivors.end());
        auto minv = gf::decode_matrix(code_, rows);
        if (!minv) throw std::logic_error("RsCodec: singular decode submatrix (non-MDS?)");
        std::vector<size_t> recover_rows(erased_data.begin(), erased_data.end());
        return core_.compile(bitmatrix::expand(minv->select_rows(recover_rows)), "dec");
      });
}

std::shared_ptr<CompiledProgram> RsCodec::parity_subset_program(
    const std::vector<uint32_t>& parity_ids) const {
  return core_.cached(BitmatrixCodecCore::parity_key(parity_ids),
                      [&]() -> std::shared_ptr<CompiledProgram> {
                        std::vector<size_t> rows(parity_ids.begin(), parity_ids.end());
                        return core_.compile(bitmatrix::expand(code_.select_rows(rows)),
                                             "parity-subset");
                      });
}

std::shared_ptr<const CompiledProgram> RsCodec::decode_program(
    const std::vector<uint32_t>& erased_data) const {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < total_fragments(); ++id)
    if (std::find(erased_data.begin(), erased_data.end(), id) == erased_data.end())
      available.push_back(id);
  std::vector<uint32_t> erased_sorted = erased_data;
  std::sort(erased_sorted.begin(), erased_sorted.end());
  return decoder_for(choose_survivors(available), erased_sorted);
}

std::shared_ptr<const ReconstructPlan> RsCodec::plan_reconstruct_impl(
    const std::vector<uint32_t>& available, const std::vector<uint32_t>& erased) const {
  return core_.make_plan(
      available, erased,
      [&](const std::vector<uint32_t>& avail_sorted,
          const std::vector<uint32_t>& erased_data) -> BitmatrixCodecCore::RecoveryPlan {
        const std::vector<uint32_t> survivors = choose_survivors(avail_sorted);
        return {decoder_for(survivors, erased_data), survivors};
      },
      [&](const std::vector<uint32_t>& erased_parity) {
        return parity_subset_program(erased_parity);
      });
}

void RsCodec::reconstruct_impl(const std::vector<uint32_t>& available,
                               const uint8_t* const* available_frags,
                               const std::vector<uint32_t>& erased, uint8_t* const* out,
                               size_t frag_len) const {
  plan_reconstruct_impl(available, erased)->execute(available_frags, out, frag_len);
}

}  // namespace xorec::ec
