#include "ec/rs_codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitmatrix/bitmatrix.hpp"

namespace xorec::ec {

namespace {

void check_frag_len(size_t frag_len) {
  if (frag_len == 0 || frag_len % RsCodec::kStripsPerFragment != 0)
    throw std::invalid_argument("RsCodec: frag_len must be a positive multiple of 8");
}

/// Strip pointers for a set of fragments, fragment-major (fragment f's
/// strips occupy indices 8f..8f+7 — the constant numbering of the SLPs).
template <typename Byte>
std::vector<Byte*> strips_of(Byte* const* frags, size_t count, size_t frag_len) {
  const size_t w = RsCodec::kStripsPerFragment;
  const size_t strip_len = frag_len / w;
  std::vector<Byte*> out(count * w);
  for (size_t f = 0; f < count; ++f)
    for (size_t s = 0; s < w; ++s) out[f * w + s] = frags[f] + s * strip_len;
  return out;
}

}  // namespace

std::vector<const uint8_t*> fragment_strips(const uint8_t* frag, size_t frag_len) {
  check_frag_len(frag_len);
  return strips_of<const uint8_t>(&frag, 1, frag_len);
}
std::vector<uint8_t*> fragment_strips(uint8_t* frag, size_t frag_len) {
  check_frag_len(frag_len);
  return strips_of<uint8_t>(&frag, 1, frag_len);
}

gf::Matrix make_code_matrix(MatrixFamily family, size_t n, size_t p) {
  switch (family) {
    case MatrixFamily::IsalVandermonde: return gf::rs_isal_matrix(n, p);
    case MatrixFamily::ReducedVandermonde: return gf::rs_systematic_matrix(n, p);
    case MatrixFamily::Cauchy: return gf::rs_cauchy_matrix(n, p);
  }
  throw std::invalid_argument("make_code_matrix: unknown family");
}

RsCodec::RsCodec(size_t n, size_t p, CodecOptions opt)
    : n_(n), p_(p), opt_(std::move(opt)) {
  if (n == 0 || p == 0 || n + p > 255)
    throw std::invalid_argument("RsCodec: need n >= 1, p >= 1, n + p <= 255");
  code_ = make_code_matrix(opt_.family, n, p);

  // Encoding SLP: the parity rows only (data fragments are stored verbatim).
  std::vector<size_t> parity_rows(p);
  for (size_t i = 0; i < p; ++i) parity_rows[i] = n + i;
  const gf::Matrix parity = code_.select_rows(parity_rows);
  enc_ = std::make_shared<CompiledProgram>(
      slp::optimize(bitmatrix::expand(parity), opt_.pipeline, "enc"), opt_.exec);

  cache_ = std::make_unique<detail::DecodeCache>(opt_.decode_cache_capacity);
}

void RsCodec::encode(const uint8_t* const* data, uint8_t* const* parity,
                     size_t frag_len) const {
  check_frag_len(frag_len);
  const auto in = strips_of<const uint8_t>(data, n_, frag_len);
  const auto out = strips_of<uint8_t>(parity, p_, frag_len);
  enc_->exec.run(in.data(), out.data(), frag_len / kStripsPerFragment);
}

std::vector<uint32_t> RsCodec::choose_survivors(const std::vector<uint32_t>& available) const {
  std::vector<uint32_t> sorted = available;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> survivors;
  survivors.reserve(n_);
  for (uint32_t id : sorted)
    if (id < n_ && survivors.size() < n_) survivors.push_back(id);
  for (uint32_t id : sorted)
    if (id >= n_ && survivors.size() < n_) survivors.push_back(id);
  if (survivors.size() < n_)
    throw std::invalid_argument("RsCodec: not enough surviving fragments to decode");
  std::sort(survivors.begin(), survivors.end());
  return survivors;
}

std::shared_ptr<CompiledProgram> RsCodec::decoder_for(
    const std::vector<uint32_t>& survivors, const std::vector<uint32_t>& erased_data) const {
  std::vector<uint32_t> key = erased_data;
  key.push_back(UINT32_MAX);
  key.insert(key.end(), survivors.begin(), survivors.end());
  return cache_->get_or_build(key, [&]() -> std::shared_ptr<CompiledProgram> {
    std::vector<size_t> rows(survivors.begin(), survivors.end());
    auto minv = gf::decode_matrix(code_, rows);
    if (!minv) throw std::logic_error("RsCodec: singular decode submatrix (non-MDS?)");
    std::vector<size_t> recover_rows(erased_data.begin(), erased_data.end());
    const gf::Matrix recovery = minv->select_rows(recover_rows);
    return std::make_shared<CompiledProgram>(
        slp::optimize(bitmatrix::expand(recovery), opt_.pipeline, "dec"), opt_.exec);
  });
}

std::shared_ptr<CompiledProgram> RsCodec::parity_subset_program(
    const std::vector<uint32_t>& parity_ids) const {
  std::vector<uint32_t> key = parity_ids;
  key.push_back(UINT32_MAX);
  key.push_back(UINT32_MAX);  // distinct key-space from decoders
  return cache_->get_or_build(key, [&]() -> std::shared_ptr<CompiledProgram> {
    std::vector<size_t> rows(parity_ids.begin(), parity_ids.end());
    const gf::Matrix parity = code_.select_rows(rows);
    return std::make_shared<CompiledProgram>(
        slp::optimize(bitmatrix::expand(parity), opt_.pipeline, "parity-subset"), opt_.exec);
  });
}

std::shared_ptr<const CompiledProgram> RsCodec::decode_program(
    const std::vector<uint32_t>& erased_data) const {
  std::vector<uint32_t> available;
  for (uint32_t id = 0; id < n_ + p_; ++id)
    if (std::find(erased_data.begin(), erased_data.end(), id) == erased_data.end())
      available.push_back(id);
  std::vector<uint32_t> erased_sorted = erased_data;
  std::sort(erased_sorted.begin(), erased_sorted.end());
  return decoder_for(choose_survivors(available), erased_sorted);
}

void RsCodec::reconstruct(const std::vector<uint32_t>& available,
                          const uint8_t* const* available_frags,
                          const std::vector<uint32_t>& erased, uint8_t* const* out,
                          size_t frag_len) const {
  check_frag_len(frag_len);
  const size_t strip_len = frag_len / kStripsPerFragment;

  // Index the surviving buffers by fragment id.
  std::vector<const uint8_t*> frag_by_id(n_ + p_, nullptr);
  for (size_t i = 0; i < available.size(); ++i) {
    if (available[i] >= n_ + p_) throw std::out_of_range("RsCodec: available id");
    frag_by_id[available[i]] = available_frags[i];
  }
  std::vector<uint32_t> erased_data, erased_parity;
  std::vector<uint8_t*> out_data, out_parity;
  for (size_t i = 0; i < erased.size(); ++i) {
    if (erased[i] >= n_ + p_) throw std::out_of_range("RsCodec: erased id");
    if (frag_by_id[erased[i]] != nullptr)
      throw std::invalid_argument("RsCodec: fragment both available and erased");
    if (erased[i] < n_) {
      erased_data.push_back(erased[i]);
      out_data.push_back(out[i]);
    } else {
      erased_parity.push_back(erased[i]);
      out_parity.push_back(out[i]);
    }
  }

  if (!erased_data.empty()) {
    const std::vector<uint32_t> survivors = choose_survivors(available);
    // Sort erased data ids (with their buffers) for a canonical cache key.
    std::vector<size_t> perm(erased_data.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(),
              [&](size_t a, size_t b) { return erased_data[a] < erased_data[b]; });
    std::vector<uint32_t> erased_sorted(perm.size());
    std::vector<uint8_t*> out_sorted(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      erased_sorted[i] = erased_data[perm[i]];
      out_sorted[i] = out_data[perm[i]];
    }
    const auto dec = decoder_for(survivors, erased_sorted);

    std::vector<const uint8_t*> surv_frags(survivors.size());
    for (size_t i = 0; i < survivors.size(); ++i) surv_frags[i] = frag_by_id[survivors[i]];
    const auto in = strips_of<const uint8_t>(surv_frags.data(), survivors.size(), frag_len);
    const auto outs = strips_of<uint8_t>(out_sorted.data(), out_sorted.size(), frag_len);
    dec->exec.run(in.data(), outs.data(), strip_len);

    // The rebuilt data is now available for parity repair.
    for (size_t i = 0; i < erased_sorted.size(); ++i)
      frag_by_id[erased_sorted[i]] = out_sorted[i];
  }

  if (!erased_parity.empty()) {
    std::vector<const uint8_t*> data_frags(n_);
    for (size_t d = 0; d < n_; ++d) {
      if (frag_by_id[d] == nullptr)
        throw std::logic_error("RsCodec: data fragment unavailable for parity repair");
      data_frags[d] = frag_by_id[d];
    }
    const auto prog = parity_subset_program(erased_parity);
    const auto in = strips_of<const uint8_t>(data_frags.data(), n_, frag_len);
    const auto outs = strips_of<uint8_t>(out_parity.data(), out_parity.size(), frag_len);
    prog->exec.run(in.data(), outs.data(), strip_len);
  }
}

}  // namespace xorec::ec
