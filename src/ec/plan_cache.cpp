#include "ec/plan_cache.hpp"

#include <algorithm>
#include <chrono>

namespace xorec::ec {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

/// Second, independent mixer (splitmix64 finalizer) so matrix identity
/// rests on 128 bits of unrelated hash, not one FNV stream.
uint64_t splitmix_mix(uint64_t h, uint64_t v) {
  h += 0x9e3779b97f4a7c15ull + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Default capacity of the process-shared cache: generous enough that a
/// multi-codec service never recompiles its hot patterns (RS(10,4)'s full
/// decode space is 1001 programs), small enough to bound memory.
constexpr size_t kSharedCapacity = 4096;

/// Every live PlanCache, so aggregate_stats() can sum the per-instance
/// counters. Leaky singleton: it must outlive the process_shared() static
/// and any cache destroyed during static teardown.
struct InstanceRegistry {
  std::mutex mu;
  std::vector<const PlanCache*> caches;
};

InstanceRegistry& instances() {
  static InstanceRegistry* r = new InstanceRegistry;
  return *r;
}

}  // namespace

size_t PlanKey::hash() const {
  uint64_t h = kFnvOffset;
  h = fnv_mix(h, matrix_fp);
  h = fnv_mix(h, matrix_fp2);
  h = fnv_mix(h, config_fp);
  for (uint32_t v : pattern) h = fnv_mix(h, v);
  return static_cast<size_t>(h);
}

PlanCache::PlanCache(size_t capacity, size_t shards) {
  const size_t n = shards ? shards : 1;
  per_shard_cap_ = capacity == 0 ? 0 : std::max<size_t>(1, (capacity + n - 1) / n);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  InstanceRegistry& reg = instances();
  std::lock_guard lk(reg.mu);
  reg.caches.push_back(this);
}

PlanCache::~PlanCache() {
  InstanceRegistry& reg = instances();
  std::lock_guard lk(reg.mu);
  reg.caches.erase(std::find(reg.caches.begin(), reg.caches.end(), this));
}

std::shared_ptr<CompiledProgram> PlanCache::get_or_build(const PlanKey& key,
                                                         const Builder& build) {
  Shard& s = shard_of(key);
  {
    std::lock_guard lk(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.order.splice(s.order.begin(), s.order, it->second.second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.first;
    }
  }
  // Compile outside the lock (milliseconds of RePair + scheduling); racing
  // builders are harmless — first insert wins and both results are valid.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<CompiledProgram> built = build();
  compile_ns_.fetch_add(static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                  std::chrono::steady_clock::now() - t0)
                                                  .count()),
                        std::memory_order_relaxed);

  std::lock_guard lk(s.mu);
  auto it = s.map.find(key);
  if (it != s.map.end()) return it->second.first;
  s.order.push_front(key);
  s.map.emplace(key, std::make_pair(built, s.order.begin()));
  if (per_shard_cap_ != 0 && s.map.size() > per_shard_cap_) {
    s.map.erase(s.order.back());
    s.order.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return built;
}

CacheStats PlanCache::stats() const {
  CacheStats cs;
  cs.entries = size();
  cs.hits = hits_.load(std::memory_order_relaxed);
  cs.misses = misses_.load(std::memory_order_relaxed);
  cs.evictions = evictions_.load(std::memory_order_relaxed);
  cs.compile_ns = compile_ns_.load(std::memory_order_relaxed);
  cs.shared = this == process_shared().get();
  return cs;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    n += s->map.size();
  }
  return n;
}

CacheStats PlanCache::aggregate_stats() {
  // stats() compares against process_shared(); construct it now so its
  // registration does not re-enter the registry mutex held below.
  (void)process_shared();
  // Registry mutex, then each cache's shard mutexes (inside stats());
  // nothing locks in the other order.
  CacheStats total;
  total.shared = true;  // the process-wide view
  InstanceRegistry& reg = instances();
  std::lock_guard lk(reg.mu);
  for (const PlanCache* c : reg.caches) {
    const CacheStats s = c->stats();
    total.entries += s.entries;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.compile_ns += s.compile_ns;
  }
  return total;
}

size_t PlanCache::size_for(uint64_t matrix_fp, uint64_t config_fp) const {
  size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    for (const auto& [key, _] : s->map)
      if (key.matrix_fp == matrix_fp && key.config_fp == config_fp) ++n;
  }
  return n;
}

std::vector<std::vector<uint32_t>> PlanCache::patterns_for(uint64_t matrix_fp,
                                                           uint64_t config_fp) const {
  std::vector<std::vector<uint32_t>> out;
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    for (const PlanKey& key : s->order)  // front = MRU
      if (key.matrix_fp == matrix_fp && key.config_fp == config_fp)
        out.push_back(key.pattern);
  }
  return out;
}

std::vector<size_t> PlanCache::level_miss_totals() const {
  // Levels come from MultilevelResult::levels plus one trailing slot for
  // memory_loads; entries simulated with fewer levels just leave the deeper
  // slots untouched.
  std::vector<size_t> totals;
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    for (const auto& [key, entry] : s->map) {
      const auto& ml = entry.first->pipeline.multilevel;
      if (!ml) continue;
      if (totals.size() < ml->levels.size() + 1) totals.resize(ml->levels.size() + 1, 0);
      for (size_t i = 0; i < ml->levels.size(); ++i) totals[i] += ml->levels[i].misses;
      totals[ml->levels.size()] += ml->memory_loads;
    }
  }
  return totals;
}

void PlanCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard lk(s->mu);
    s->map.clear();
    s->order.clear();
  }
}

const std::shared_ptr<PlanCache>& PlanCache::process_shared() {
  static const std::shared_ptr<PlanCache> cache =
      std::make_shared<PlanCache>(kSharedCapacity, kDefaultShards);
  return cache;
}

std::pair<uint64_t, uint64_t> PlanCache::fingerprint_matrix(const bitmatrix::BitMatrix& m,
                                                            size_t data_blocks,
                                                            size_t parity_blocks,
                                                            size_t strips_per_block) {
  uint64_t h1 = kFnvOffset;
  uint64_t h2 = 0x6a09e667f3bcc908ull;  // arbitrary non-FNV seed
  const auto mix = [&](uint64_t v) {
    h1 = fnv_mix(h1, v);
    h2 = splitmix_mix(h2, v);
  };
  mix(data_blocks);
  mix(parity_blocks);
  mix(strips_per_block);
  mix(m.rows());
  mix(m.cols());
  for (size_t r = 0; r < m.rows(); ++r)
    for (uint64_t w : m.row(r).words()) mix(w);
  return {h1, h2};
}

uint64_t PlanCache::fingerprint_config(const slp::PipelineOptions& pipeline,
                                       const runtime::ExecOptions& exec) {
  uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<uint64_t>(pipeline.compress));
  h = fnv_mix(h, pipeline.fuse ? 1 : 0);
  h = fnv_mix(h, static_cast<uint64_t>(pipeline.schedule));
  h = fnv_mix(h, pipeline.greedy_capacity);
  h = fnv_mix(h, pipeline.cache_levels.size());
  for (size_t c : pipeline.cache_levels) h = fnv_mix(h, c);
  h = fnv_mix(h, exec.block_size);
  h = fnv_mix(h, static_cast<uint64_t>(exec.isa));
  h = fnv_mix(h, exec.threads);
  h = fnv_mix(h, exec.stagger_scratch ? 1 : 0);
  h = fnv_mix(h, exec.prefetch_next_block ? 1 : 0);
  // The RESOLVED backend (Auto -> Lowered), so exec=auto and exec=lowered
  // share entries while interp / lowered / jit executors never collide in
  // the shared cache (a jit codec's plans carry dlopen'd modules); the
  // measured exec=auto is resolved earlier, in make_codec, so it arrives
  // here concrete. nt_threshold changes the lowered/jit instruction stream.
  const auto backend = exec.backend == runtime::ExecBackend::Auto
                           ? runtime::ExecBackend::Lowered
                           : exec.backend;
  h = fnv_mix(h, static_cast<uint64_t>(backend));
  h = fnv_mix(h, exec.nt_threshold);
  return h;
}

}  // namespace xorec::ec
