#include "ec/plan_cache_io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ec/bitmatrix_codec_core.hpp"

namespace xorec::ec {

namespace {

constexpr char kHeader[] = "xorec-plan-profile v1";
// The key format's separator marker, written as '|' in the text form.
constexpr uint32_t kSep = BitmatrixCodecCore::kPatternSep;

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("plan profile \"" + path + "\": " + why);
}

}  // namespace

size_t PlanProfile::pattern_count() const {
  size_t n = 0;
  for (const Entry& e : entries) n += e.patterns.size();
  return n;
}

void save_plan_profile(const std::string& path, const PlanProfile& profile) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) fail(path, "cannot open for writing");
  out << kHeader << "\n";
  for (const PlanProfile::Entry& e : profile.entries) {
    out << "codec " << e.spec << " fp " << e.matrix_fp << " " << e.matrix_fp2 << " "
        << e.config_fp << "\n";
    for (const std::vector<uint32_t>& pat : e.patterns) {
      out << "pattern";
      for (uint32_t v : pat) {
        if (v == kSep)
          out << " |";
        else
          out << " " << v;
      }
      out << "\n";
    }
  }
  out.flush();
  if (!out) fail(path, "write failed");
}

PlanProfile load_plan_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    fail(path, "missing header \"" + std::string(kHeader) + "\"");

  PlanProfile profile;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "codec") {
      PlanProfile::Entry e;
      std::string fp_tag;
      if (!(ls >> e.spec >> fp_tag >> e.matrix_fp >> e.matrix_fp2 >> e.config_fp) ||
          fp_tag != "fp")
        fail(path, "malformed codec record \"" + line + "\"");
      profile.entries.push_back(std::move(e));
    } else if (tag == "pattern") {
      if (profile.entries.empty())
        fail(path, "pattern record before any codec record");
      std::vector<uint32_t> pat;
      std::string tok;
      while (ls >> tok) {
        if (tok == "|") {
          pat.push_back(kSep);
          continue;
        }
        uint32_t v = 0;
        for (char c : tok) {
          if (c < '0' || c > '9') fail(path, "malformed pattern record \"" + line + "\"");
          const uint64_t next = uint64_t{v} * 10 + static_cast<uint64_t>(c - '0');
          if (next >= kSep) fail(path, "pattern id out of range in \"" + line + "\"");
          v = static_cast<uint32_t>(next);
        }
        if (tok.empty()) fail(path, "malformed pattern record \"" + line + "\"");
        pat.push_back(v);
      }
      profile.entries.back().patterns.push_back(std::move(pat));
    } else {
      fail(path, "unknown record \"" + line + "\"");
    }
  }
  return profile;
}

}  // namespace xorec::ec
