// Bounded LRU cache of compiled decode programs, keyed by erasure pattern.
//
// RS(10, 4) alone has 1001 decode matrices (§7.1); compiling one costs
// milliseconds (RePair + scheduling), so codecs memoize them. Thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace xorec::ec::detail {

/// Key: arbitrary id sequence (we use erased ids ++ 0xFFFFFFFF ++ survivors).
struct KeyHash {
  size_t operator()(const std::vector<uint32_t>& k) const {
    size_t h = 1469598103934665603ull;
    for (uint32_t v : k) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }
};

template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : cap_(capacity) {}

  /// Returns the cached value or builds, stores and returns it.
  std::shared_ptr<V> get_or_build(const std::vector<uint32_t>& key,
                                  const std::function<std::shared_ptr<V>()>& build) {
    {
      std::lock_guard lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        order_.splice(order_.begin(), order_, it->second.second);
        return it->second.first;
      }
    }
    // Build outside the lock (compilation is slow); racing builders are
    // harmless — last insert wins and both results are valid.
    std::shared_ptr<V> v = build();
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second.first;
    order_.push_front(key);
    map_.emplace(key, std::make_pair(v, order_.begin()));
    if (cap_ != 0 && map_.size() > cap_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    return v;
  }

  size_t size() const {
    std::lock_guard lk(mu_);
    return map_.size();
  }

 private:
  size_t cap_;
  mutable std::mutex mu_;
  std::list<std::vector<uint32_t>> order_;  // front = MRU
  std::unordered_map<std::vector<uint32_t>,
                     std::pair<std::shared_ptr<V>, std::list<std::vector<uint32_t>>::iterator>,
                     KeyHash>
      map_;
};

}  // namespace xorec::ec::detail
