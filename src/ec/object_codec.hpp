// Blob-level convenience API on top of any xorec::Codec.
//
// Codecs work on equal-length fragments the caller manages; real objects
// are single buffers of arbitrary size. ObjectCodec handles the bookkeeping:
// it pads the object to n equal fragments (recording the true length in a
// small per-fragment header), encodes parity, and reassembles the original
// bytes from any n surviving fragments. Works over every registered codec —
// RS, EVENODD, RDP, STAR, GF(2^16) RS — because it only speaks the generic
// Codec interface:
//   ec::ObjectCodec blobs(xorec::make_codec("evenodd(6,2)"));
//
// Fragment wire format (self-describing, fixed 32-byte header):
//   magic "XSLP" | version u16 | fragment id u16 | n u16 | p u16 |
//   object size u64 | fragment payload length u64 | reserved
// followed by the payload. Headers make fragments safe to store and
// reshuffle: decode validates ids and geometry before touching payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "api/codec.hpp"
#include "ec/bitmatrix_codec_core.hpp"

namespace xorec {
class BatchCoder;
class ServiceHandle;
}

namespace xorec::ec {

struct EncodedObject {
  /// n data fragments followed by p parity fragments, each header + payload.
  std::vector<std::vector<uint8_t>> fragments;
};

class ObjectCodec {
 public:
  static constexpr size_t kHeaderSize = 32;

  /// Wrap any codec (shared so callers can keep using it directly too).
  explicit ObjectCodec(std::shared_ptr<const Codec> codec);

  /// Wrap a CodecService lease: the pooled codec plus its shard session as
  /// the default routing — blob traffic joins the service's bounded worker
  /// groups without per-call session plumbing. The service must outlive
  /// this ObjectCodec.
  explicit ObjectCodec(const xorec::ServiceHandle& handle);

  /// Convenience: RS(n, p) over GF(2^8), the default engine.
  ObjectCodec(size_t n, size_t p, CodecOptions opt = {});

  size_t data_fragments() const { return codec_->data_fragments(); }
  size_t parity_fragments() const { return codec_->parity_fragments(); }
  const Codec& codec() const { return *codec_; }

  /// Split + pad + encode. Empty objects are legal (fragments carry only
  /// headers plus minimal padding). With a session, the parity computation
  /// runs as a submitted job on the session's workers — concurrent callers
  /// share its bounded worker group instead of each coding inline. A
  /// codec-bound session must wrap the SAME codec instance (throws
  /// invalid_argument otherwise); codec-less shard sessions (CodecService)
  /// route any codec. Passing no session uses the service-handle default
  /// when constructed from one, else codes inline. The call still returns
  /// synchronously.
  EncodedObject encode(const uint8_t* object, size_t size,
                       BatchCoder* session = nullptr) const;

  /// Reassemble the object from any >= n fragments (data or parity, any
  /// order). Returns nullopt when the fragments are inconsistent (mixed
  /// objects, bad magic, not enough survivors). Optional session as above
  /// (routes the reconstruct job).
  std::optional<std::vector<uint8_t>> decode(
      const std::vector<std::vector<uint8_t>>& fragments,
      BatchCoder* session = nullptr) const;

  /// Rebuild the full fragment set (e.g. to re-populate failed nodes).
  /// Optional session as above.
  std::optional<EncodedObject> rebuild_all(
      const std::vector<std::vector<uint8_t>>& fragments,
      BatchCoder* session = nullptr) const;

 private:
  struct Header {
    uint16_t version;
    uint16_t frag_id;
    uint16_t n, p;
    uint64_t object_size;
    uint64_t payload_len;
  };
  static void write_header(uint8_t* dst, const Header& h);
  static std::optional<Header> read_header(const std::vector<uint8_t>& frag);

  size_t payload_len_for(size_t object_size) const;
  BatchCoder* session_or_default(BatchCoder* session) const;

  std::shared_ptr<const Codec> codec_;
  /// Default routing from the ServiceHandle constructor (shard session
  /// owned by the service); null when constructed from a bare codec.
  BatchCoder* default_session_ = nullptr;
};

}  // namespace xorec::ec
