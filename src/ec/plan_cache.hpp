// The process-wide plan-compilation service: a sharded LRU cache of
// compiled SLP programs keyed by (bitmatrix fingerprint, pipeline/executor
// config fingerprint, erasure-pattern key).
//
// The paper's central observation is that decode programs are *compiled
// artifacts* — RS(10, 4) alone has 1001 decode matrices (§7.1) and compiling
// one costs milliseconds (RePair + fusion + scheduling). Per-codec memoization
// (the old ec::detail::DecodeCache) re-paid that cost for every codec
// instance; keying on the *content* of the code matrix instead makes the
// cache process-shared by default: every `make_codec("rs(10,4)")`, every
// BatchCoder session and every shard of a multi-codec service hits the same
// compiled entries. Entries are shared_ptr-owned, so eviction never
// invalidates a plan that is still executing.
//
// Sharding: keys hash to one of N shards, each with its own mutex and LRU
// list, so concurrent planners on different patterns do not serialize.
// Compilation runs outside the shard lock; racing builders are harmless
// (first insert wins, both results are valid).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/codec.hpp"
#include "bitmatrix/bitmatrix.hpp"
#include "runtime/executor.hpp"
#include "slp/pipeline.hpp"

namespace xorec::ec {

/// An optimized SLP ready to run: the pipeline artifacts (for inspection)
/// plus the blocked executor.
struct CompiledProgram {
  slp::PipelineResult pipeline;
  runtime::Executor exec;

  /// Pre-fusion stages execute as binary XOR chains (the paper's Base/Co
  /// accounting: 3 memory accesses per XOR); fused/scheduled stages run
  /// n-ary single-pass kernels.
  CompiledProgram(slp::PipelineResult pipe, const runtime::ExecOptions& opt)
      : pipeline(std::move(pipe)),
        exec(runtime::compile(pipeline.final_form() == slp::ExecForm::Binary
                                  ? pipeline.final_program().binary_expanded()
                                  : pipeline.final_program()),
             opt) {}
};

/// Cache key. `matrix_fp`/`matrix_fp2` are two independent content
/// fingerprints of the codec's parity bitmatrix (plus its geometry) — a
/// shared-cache hit serves another codec's compiled program, so identity
/// rests on 128 bits of independent hash, not 64. `config_fp` fingerprints
/// the pipeline + executor options, and `pattern` is the per-program role:
/// {erased ++ SEP ++ inputs} for decoders, {parity_ids ++ SEP ++ SEP} for
/// parity re-encode subsets, {} for the encoder itself
/// (BitmatrixCodecCore builds these).
struct PlanKey {
  uint64_t matrix_fp = 0;
  uint64_t matrix_fp2 = 0;
  uint64_t config_fp = 0;
  std::vector<uint32_t> pattern;

  bool operator==(const PlanKey&) const = default;
  size_t hash() const;
};

class PlanCache {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// `capacity` bounds the total entry count (0 = unbounded); it is split
  /// evenly across `shards` independent LRU shards, so eviction order is
  /// exact per shard and approximate cache-wide. Use shards = 1 when exact
  /// global LRU order matters (tests, tiny private caches).
  explicit PlanCache(size_t capacity, size_t shards = kDefaultShards);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  using Builder = std::function<std::shared_ptr<CompiledProgram>()>;

  /// Returns the cached program or builds, stores and returns it. The build
  /// runs outside the shard lock; its wall time lands in stats().compile_ns.
  std::shared_ptr<CompiledProgram> get_or_build(const PlanKey& key, const Builder& build);

  /// Cache-wide counters (entries, hits, misses, evictions, compile time).
  /// Counters are scoped to THIS instance — a private codec cache's traffic
  /// never leaks into the shared service's hit rate, or vice versa.
  CacheStats stats() const;
  /// Sum of stats() over every live PlanCache in the process (the shared
  /// service and all private/injected caches): the truly global view
  /// xorec::plan_cache_stats() reports. Caches that have been destroyed
  /// take their counters with them.
  static CacheStats aggregate_stats();
  size_t size() const;
  /// Entries belonging to one codec identity — the per-codec "cache size"
  /// view onto the shared cache.
  size_t size_for(uint64_t matrix_fp, uint64_t config_fp) const;
  /// The pattern keys cached for one codec identity, MRU-first per shard —
  /// the replayable half of a warmup profile (ec/plan_cache_io.hpp).
  std::vector<std::vector<uint32_t>> patterns_for(uint64_t matrix_fp,
                                                  uint64_t config_fp) const;
  /// Per-cache-level simulated miss totals summed over every entry that was
  /// multilevel-scheduled (slp::MultilevelResult::levels; index = level,
  /// last = memory loads). Entries without multilevel stats contribute
  /// nothing; empty when none have them. This is the paper's §6 cache-cost
  /// model surfaced as an operable metric (ServiceStats::cache_level_misses
  /// → xorec_plan_cache_level_misses{level}).
  std::vector<size_t> level_miss_totals() const;
  /// Drop every entry (counters keep accumulating). In-flight plans keep
  /// their programs alive via shared ownership.
  void clear();

  /// The process-shared default instance every codec uses unless configured
  /// `cache=private` / given an explicit cache.
  static const std::shared_ptr<PlanCache>& process_shared();

  /// Content fingerprint of a codec identity: the parity bitmatrix words
  /// plus the (k, m, w) geometry — the same packed dimensions can arise
  /// from different block/strip splits, and pattern keys are block ids.
  /// Returns two independent 64-bit hashes (PlanKey::matrix_fp/matrix_fp2).
  static std::pair<uint64_t, uint64_t> fingerprint_matrix(const bitmatrix::BitMatrix& m,
                                                          size_t data_blocks,
                                                          size_t parity_blocks,
                                                          size_t strips_per_block);
  static uint64_t fingerprint_config(const slp::PipelineOptions& pipeline,
                                     const runtime::ExecOptions& exec);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<PlanKey> order;  // front = MRU
    struct Hash {
      size_t operator()(const PlanKey& k) const { return k.hash(); }
    };
    std::unordered_map<PlanKey,
                       std::pair<std::shared_ptr<CompiledProgram>, std::list<PlanKey>::iterator>,
                       Hash>
        map;
  };

  Shard& shard_of(const PlanKey& key) const { return *shards_[key.hash() % shards_.size()]; }

  size_t per_shard_cap_;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;  // stable addresses for the mutexes
  std::atomic<size_t> hits_{0}, misses_{0}, evictions_{0};
  std::atomic<uint64_t> compile_ns_{0};
};

}  // namespace xorec::ec
