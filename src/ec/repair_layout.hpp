// Shared id -> buffer-index resolution for two-step repair plans (decode
// the erased data, then re-encode the erased parity). Both plan builders —
// BitmatrixCodecCore::make_plan for the SLP codecs and the GF-table
// baseline's plan — derive their frozen index maps from this one place, so
// the split/lookup semantics cannot drift between engines.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace xorec::ec {

struct RepairLayout {
  static constexpr size_t kAbsent = std::numeric_limits<size_t>::max();

  std::vector<size_t> pos_of_id;      // fragment id -> index into `available`
  std::vector<uint32_t> erased_data;  // in submission order
  std::vector<uint32_t> erased_parity;
  std::vector<size_t> out_pos_data;   // parallel to erased_data: index into `out`
  std::vector<size_t> out_pos_parity;

  RepairLayout(size_t data_fragments, size_t total_fragments,
               const std::vector<uint32_t>& available,
               const std::vector<uint32_t>& erased) {
    pos_of_id.assign(total_fragments, kAbsent);
    for (size_t i = 0; i < available.size(); ++i) pos_of_id[available[i]] = i;
    for (size_t i = 0; i < erased.size(); ++i) {
      if (erased[i] < data_fragments) {
        erased_data.push_back(erased[i]);
        out_pos_data.push_back(i);
      } else {
        erased_parity.push_back(erased[i]);
        out_pos_parity.push_back(i);
      }
    }
  }

  /// Where a repair step reads a fragment from at execute time.
  struct Source {
    bool from_out = false;  // a data fragment this plan itself rebuilds
    size_t pos = 0;         // index into `available` buffers or into `out`
  };

  /// Resolve where the parity step reads data fragment `d`: a survivor
  /// buffer, or one of the plan's own data outputs. The rebuilt lookup goes
  /// through (erased_order, out_pos_order) so each engine keeps its output
  /// ordering (sorted decode rows for the SLP codecs, submission order for
  /// the GF-table engine). Throws the documented invalid_argument when `d`
  /// is neither available nor erased.
  Source data_source(size_t d, const std::vector<uint32_t>& erased_order,
                     const std::vector<size_t>& out_pos_order,
                     const std::string& codec_name) const {
    if (pos_of_id[d] != kAbsent) return {false, pos_of_id[d]};
    for (size_t i = 0; i < erased_order.size(); ++i)
      if (erased_order[i] == d) return {true, out_pos_order[i]};
    // The contract (api/codec.hpp) promises invalid_argument for patterns a
    // codec rejects; callers can retry with the fragment listed in `erased`
    // so it gets decoded first.
    throw std::invalid_argument(codec_name + ": data fragment " + std::to_string(d) +
                                " unavailable for parity repair; list it in erased");
  }
};

}  // namespace xorec::ec
