#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace xorec::net {

namespace {

void write_all(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) throw std::runtime_error("net::Client: connection write failed");
    off += static_cast<size_t>(n);
  }
}

void read_all(int fd, uint8_t* data, size_t len, int timeout_ms) {
  size_t off = 0;
  while (off < len) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) throw std::runtime_error("net::Client: response timeout");
    const ssize_t n = ::read(fd, data + off, len - off);
    if (n <= 0) throw std::runtime_error("net::Client: connection closed by server");
    off += static_cast<size_t>(n);
  }
}

}  // namespace

Client::Client(const std::string& host, uint16_t port, int timeout_ms)
    : timeout_ms_(timeout_ms) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("net::Client: socket() failed");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("net::Client: not a dotted-quad IPv4 host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd_);
    throw std::runtime_error("net::Client: connect to " + host + " failed");
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

FrameView Client::roundtrip(const std::vector<uint8_t>& frame,
                            std::vector<uint8_t>& body) {
  write_all(fd_, frame.data(), frame.size());

  uint8_t header_buf[wire::kFrameHeaderSize];
  read_all(fd_, header_buf, sizeof(header_buf), timeout_ms_);
  FrameHeader header;
  if (const FrameError err = decode_frame_header(header_buf, sizeof(header_buf), header);
      err != FrameError::Ok)
    throw std::runtime_error(std::string("net::Client: bad response header: ") +
                             frame_error_name(err));
  body.assign(header.body_size(), 0);
  read_all(fd_, body.data(), body.size(), timeout_ms_);
  FrameView view;
  if (const FrameError err = bind_frame_body(header, body.data(), body.size(), view);
      err != FrameError::Ok)
    throw std::runtime_error(std::string("net::Client: bad response body: ") +
                             frame_error_name(err));
  if (view.header.type == FrameType::Error)
    throw std::runtime_error("net::Client: server error: " + std::string(view.spec));
  return view;
}

void Client::encode(const std::string& spec, const uint8_t* const* data, uint32_t k,
                    uint8_t* const* parity, uint32_t m, size_t frag_len) {
  FrameHeader h;
  h.type = FrameType::EncodeRequest;
  h.request_id = ++next_request_id_;
  h.k = k;
  h.frag_len = static_cast<uint32_t>(frag_len);
  h.present_bitmap = k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
  h.payload_count = static_cast<uint16_t>(k);
  const std::vector<uint8_t> frame = build_frame(h, spec, data);

  std::vector<uint8_t> body;
  const FrameView view = roundtrip(frame, body);
  if (view.header.request_id != h.request_id)
    throw std::runtime_error("net::Client: response id mismatch");
  if (view.payloads.size() != m)
    throw std::runtime_error("net::Client: parity count disagrees with spec geometry");
  for (uint32_t i = 0; i < m; ++i)
    std::memcpy(parity[i], view.payloads[i].data(), frag_len);
}

void Client::reconstruct(const std::string& spec, const std::vector<uint32_t>& available,
                         const uint8_t* const* available_frags,
                         const std::vector<uint32_t>& erased, uint8_t* const* out,
                         size_t frag_len) {
  FrameHeader h;
  h.type = FrameType::ReconstructRequest;
  h.request_id = ++next_request_id_;
  h.frag_len = static_cast<uint32_t>(frag_len);
  for (uint32_t id : available) {
    if (id >= 64) throw std::invalid_argument("net::Client: fragment id >= 64");
    h.present_bitmap |= uint64_t{1} << id;
  }
  for (uint32_t id : erased) {
    if (id >= 64) throw std::invalid_argument("net::Client: fragment id >= 64");
    h.erased_bitmap |= uint64_t{1} << id;
  }
  h.payload_count = static_cast<uint16_t>(available.size());
  // build_frame gathers payloads in present-bitmap (ascending id) order.
  std::vector<const uint8_t*> ordered(available.size());
  {
    std::vector<std::pair<uint32_t, const uint8_t*>> by_id;
    by_id.reserve(available.size());
    for (size_t i = 0; i < available.size(); ++i)
      by_id.emplace_back(available[i], available_frags[i]);
    std::sort(by_id.begin(), by_id.end());
    for (size_t i = 0; i < by_id.size(); ++i) ordered[i] = by_id[i].second;
  }
  const std::vector<uint8_t> frame = build_frame(h, spec, ordered.data());

  std::vector<uint8_t> body;
  const FrameView view = roundtrip(frame, body);
  if (view.header.request_id != h.request_id)
    throw std::runtime_error("net::Client: response id mismatch");
  if (view.payloads.size() != erased.size())
    throw std::runtime_error("net::Client: rebuilt fragment count mismatch");
  // Response payloads are in ascending erased-id order; map back to the
  // caller's `erased` order.
  std::vector<uint32_t> sorted(erased);
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < erased.size(); ++i) {
    const size_t pos =
        static_cast<size_t>(std::lower_bound(sorted.begin(), sorted.end(), erased[i]) -
                            sorted.begin());
    std::memcpy(out[i], view.payloads[pos].data(), frag_len);
  }
}

void Client::ping() {
  FrameHeader h;
  h.type = FrameType::Ping;
  h.request_id = ++next_request_id_;
  std::vector<uint8_t> body;
  const FrameView view = roundtrip(build_frame(h, {}, nullptr), body);
  if (view.header.type != FrameType::Pong || view.header.request_id != h.request_id)
    throw std::runtime_error("net::Client: unexpected ping response");
}

}  // namespace xorec::net
