// NetServer: the serving front-end — a poll()-driven event loop that turns
// wire frames into CodecService work without ever blocking network I/O on
// codec execution.
//
// Threading model (two threads, one direction of flow each):
//
//   event-loop thread                completion thread
//   -----------------                -----------------
//   accept / read frames             waits on submitted futures in FIFO
//   validate + submit to service --> {future, finalize-callback}
//   write queued responses       <-- finalized response pushed to the
//   send queued UDP acks             loop's completed-queue + wake pipe
//
// The loop parses a request, points the codec DIRECTLY at the receive
// buffer (FrameView payload spans) and at the preallocated response frame
// (parity/rebuilt strips are computed in place in the bytes that will be
// written to the socket), submits through a shared ServiceHandle, and goes
// back to polling. Each connection runs a state machine
// reading-header -> reading-body -> (executing on the service) -> writing;
// because responses carry the request id, a connection may have several
// requests in flight and receive responses out of order.
//
// Flow control, two levels:
//   per-connection: at most max_inflight_per_conn submitted-but-unanswered
//     requests; beyond that the loop stops POLLIN-ing that socket (TCP
//     backpressure reaches the peer).
//   global: before submitting, the loop checks the pool shard's queue depth
//     (BatchCoder::pending(), i.e. TaskQueue::depth()); at max_queue_depth
//     the parsed request parks in the connection's deferred slot and reads
//     pause until the queue drains — counted in stats().backpressure_stalls.
//
// The UDP socket shares the loop: strip packets feed a per-peer
// GroupAssembler; a completed group with losses takes the same
// plan_reconstruct degraded-read path (submitted, not inline), and the
// receipt (GroupAck) is sent when the rebuild lands. This is how cluster
// repair traffic is served over the wire: a repair client ships survivor
// strips in a ReconstructRequest (or strip packets) and gets rebuilt strips
// back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "api/service.hpp"

namespace xorec::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t tcp_port = 0;  // 0 = ephemeral (read back via tcp_port())
  uint16_t udp_port = 0;
  size_t max_inflight_per_conn = 8;
  size_t max_queue_depth = 256;  // shard-queue depth that parks new requests
  size_t max_connections = 64;
};

struct NetServerStats {
  size_t connections_accepted = 0;
  size_t connections_open = 0;
  size_t requests = 0;        // well-formed TCP requests dispatched
  size_t responses = 0;       // Response frames written (incl. Pong)
  size_t errors = 0;          // Error frames written + fatal parse closes
  size_t backpressure_stalls = 0;
  uint64_t tcp_bytes_in = 0;
  uint64_t tcp_bytes_out = 0;
  /// Scatter/gather send-path counters: responses leave as (header, body)
  /// segment pairs through one writev(2) per loop pass, batching across all
  /// frames queued on a connection. `gather_bytes_saved` counts body bytes
  /// that were handed to the socket where they were computed instead of
  /// being memcpy'd into a contiguous header+body frame first.
  size_t writev_calls = 0;
  size_t writev_segments = 0;       // iovec entries across all writev calls
  uint64_t gather_bytes_saved = 0;  // response-body bytes never re-copied
  size_t udp_groups = 0;           // stripe groups completed
  size_t udp_degraded_reads = 0;   // groups that needed reconstruction
  size_t udp_unrecoverable = 0;
};

class NetServer {
 public:
  /// Binds both sockets immediately (so the ports are known) but serves
  /// nothing until start(). Throws std::runtime_error on bind failure.
  NetServer(CodecService& service, ServerOptions opt = {});
  ~NetServer();  // stop()s if still running

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  void start();
  /// Stops accepting, drains in-flight service jobs, joins both threads.
  void stop();

  uint16_t tcp_port() const;
  uint16_t udp_port() const;
  NetServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xorec::net
