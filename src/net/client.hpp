// net::Client — the blocking TCP counterpart of NetServer: one request on
// the wire at a time, responses matched by request id. This is the simple
// integration surface (examples, tests, CI smoke); high-rate callers can
// speak the frame protocol directly and pipeline, which the server already
// supports.
//
// Every call either returns with the outputs written or throws:
//   std::runtime_error    - transport failure / server Error frame (the
//                           server's message is the exception text)
//   std::invalid_argument - arguments that cannot form a valid frame
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace xorec::net {

class Client {
 public:
  /// Connects immediately (blocking); throws std::runtime_error on failure.
  Client(const std::string& host, uint16_t port, int timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Remote encode: ship k data fragments, receive the m parity fragments
  /// into `parity` (caller-sized from the spec's geometry; mismatch throws).
  void encode(const std::string& spec, const uint8_t* const* data, uint32_t k,
              uint8_t* const* parity, uint32_t m, size_t frag_len);

  /// Remote degraded read / repair: ship the survivors, receive the
  /// fragments named by `erased` into `out` (parallel, ascending order).
  void reconstruct(const std::string& spec, const std::vector<uint32_t>& available,
                   const uint8_t* const* available_frags,
                   const std::vector<uint32_t>& erased, uint8_t* const* out,
                   size_t frag_len);

  /// Liveness round-trip.
  void ping();

  uint64_t requests_sent() const { return next_request_id_; }

 private:
  /// Send one frame, block for its response; returns the response view with
  /// `body` holding the bytes the view points into.
  FrameView roundtrip(const std::vector<uint8_t>& frame, std::vector<uint8_t>& body);

  int fd_ = -1;
  int timeout_ms_;
  uint64_t next_request_id_ = 0;
};

}  // namespace xorec::net
