#include "net/frame.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace xorec::net {

// ---- CRC-32 ----------------------------------------------------------------

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1)));
      t[i] = c;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t crc32(const uint8_t* data, size_t len, uint32_t seed) {
  const Crc32Table& table = crc_table();
  uint32_t c = ~seed;
  for (size_t i = 0; i < len; ++i) c = (c >> 8) ^ table.t[(c ^ data[i]) & 0xff];
  return ~c;
}

// ---- little-endian field I/O -----------------------------------------------
// Byte-explicit so the wire format is identical on every host; the compiler
// folds these into plain loads/stores on little-endian targets.

namespace {

template <typename T>
void put(uint8_t*& p, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) *p++ = static_cast<uint8_t>(v >> (8 * i));
}

template <typename T>
T get(const uint8_t*& p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) v |= static_cast<T>(*p++) << (8 * i);
  return v;
}

}  // namespace

const char* frame_error_name(FrameError err) {
  switch (err) {
    case FrameError::Ok: return "ok";
    case FrameError::Truncated: return "truncated";
    case FrameError::BadMagic: return "bad_magic";
    case FrameError::BadVersion: return "bad_version";
    case FrameError::BadType: return "bad_type";
    case FrameError::BadCrc: return "bad_crc";
    case FrameError::LimitExceeded: return "limit_exceeded";
    case FrameError::Inconsistent: return "inconsistent";
  }
  return "unknown";
}

// ---- TCP stripe frames -----------------------------------------------------

void encode_frame_header(const FrameHeader& h, uint8_t* out) {
  uint8_t* p = out;
  put<uint32_t>(p, wire::kFrameMagic);
  put<uint16_t>(p, h.version);
  put<uint16_t>(p, static_cast<uint16_t>(h.type));
  put<uint64_t>(p, h.request_id);
  put<uint32_t>(p, h.k);
  put<uint32_t>(p, h.m);
  put<uint32_t>(p, h.frag_len);
  put<uint64_t>(p, h.erased_bitmap);
  put<uint64_t>(p, h.present_bitmap);
  put<uint16_t>(p, h.spec_len);
  put<uint16_t>(p, h.payload_count);
  put<uint32_t>(p, h.body_crc);
  put<uint32_t>(p, crc32(out, static_cast<size_t>(p - out)));
}

namespace {

/// The validation shared by decode and build: everything beyond magic +
/// header CRC (which only a real decode sees).
FrameError validate_frame_header(const FrameHeader& h) {
  if (h.version != wire::kVersion) return FrameError::BadVersion;
  const auto t = static_cast<uint16_t>(h.type);
  if (t < static_cast<uint16_t>(FrameType::EncodeRequest) ||
      t > static_cast<uint16_t>(FrameType::Pong))
    return FrameError::BadType;
  if (h.spec_len > wire::kMaxSpecLen) return FrameError::LimitExceeded;
  if (h.frag_len > wire::kMaxFragLen) return FrameError::LimitExceeded;
  if (h.payload_count > wire::kMaxFragments) return FrameError::LimitExceeded;
  if (h.k > wire::kMaxFragments || h.m > wire::kMaxFragments ||
      h.k + h.m > wire::kMaxFragments)
    return FrameError::LimitExceeded;
  if (h.body_size() > wire::kMaxBody) return FrameError::LimitExceeded;
  if (static_cast<size_t>(std::popcount(h.present_bitmap)) != h.payload_count)
    return FrameError::Inconsistent;
  if (h.payload_count > 0 && h.frag_len == 0) return FrameError::Inconsistent;
  if (h.erased_bitmap & h.present_bitmap) return FrameError::Inconsistent;
  return FrameError::Ok;
}

std::vector<uint32_t> ids_of_bitmap(uint64_t bitmap) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; bitmap; ++i, bitmap >>= 1)
    if (bitmap & 1) ids.push_back(i);
  return ids;
}

}  // namespace

FrameError decode_frame_header(const uint8_t* data, size_t len, FrameHeader& out) {
  if (len < wire::kFrameHeaderSize) return FrameError::Truncated;
  const uint8_t* p = data;
  if (get<uint32_t>(p) != wire::kFrameMagic) return FrameError::BadMagic;
  out.version = get<uint16_t>(p);
  out.type = static_cast<FrameType>(get<uint16_t>(p));
  out.request_id = get<uint64_t>(p);
  out.k = get<uint32_t>(p);
  out.m = get<uint32_t>(p);
  out.frag_len = get<uint32_t>(p);
  out.erased_bitmap = get<uint64_t>(p);
  out.present_bitmap = get<uint64_t>(p);
  out.spec_len = get<uint16_t>(p);
  out.payload_count = get<uint16_t>(p);
  out.body_crc = get<uint32_t>(p);
  const uint32_t declared = get<uint32_t>(p);
  // CRC before semantics: a garbled header must not produce a semantic
  // error that leaks which field landed where.
  if (crc32(data, wire::kFrameHeaderSize - 4) != declared) return FrameError::BadCrc;
  return validate_frame_header(out);
}

FrameError bind_frame_body(const FrameHeader& header, const uint8_t* body,
                           size_t body_len, FrameView& out) {
  if (body_len != header.body_size()) return FrameError::Truncated;
  if (crc32(body, body_len) != header.body_crc) return FrameError::BadCrc;
  out.header = header;
  out.spec = std::string_view(reinterpret_cast<const char*>(body), header.spec_len);
  out.present_ids = ids_of_bitmap(header.present_bitmap);
  out.erased_ids = ids_of_bitmap(header.erased_bitmap);
  out.payloads.clear();
  out.payloads.reserve(header.payload_count);
  const uint8_t* frag = body + header.spec_len;
  for (size_t i = 0; i < header.payload_count; ++i, frag += header.frag_len)
    out.payloads.emplace_back(frag, header.frag_len);
  return FrameError::Ok;
}

std::vector<uint8_t> build_frame(FrameHeader header, std::string_view spec,
                                 const uint8_t* const* payloads) {
  header.spec_len = static_cast<uint16_t>(spec.size());
  if (spec.size() > wire::kMaxSpecLen)
    throw std::invalid_argument("build_frame: spec/message exceeds kMaxSpecLen");
  if (const FrameError err = validate_frame_header(header); err != FrameError::Ok)
    throw std::invalid_argument(std::string("build_frame: invalid header: ") +
                                frame_error_name(err));

  std::vector<uint8_t> frame(wire::kFrameHeaderSize + header.body_size());
  uint8_t* body = frame.data() + wire::kFrameHeaderSize;
  std::memcpy(body, spec.data(), spec.size());
  uint8_t* frag = body + spec.size();
  for (size_t i = 0; i < header.payload_count; ++i, frag += header.frag_len)
    std::memcpy(frag, payloads[i], header.frag_len);
  header.body_crc = crc32(body, header.body_size());
  encode_frame_header(header, frame.data());
  return frame;
}

// ---- UDP stripe packets ----------------------------------------------------

void encode_packet_header(const PacketHeader& h, uint8_t* out) {
  uint8_t* p = out;
  put<uint32_t>(p, wire::kPacketMagic);
  put<uint16_t>(p, h.version);
  put<uint16_t>(p, h.flags);
  put<uint64_t>(p, h.group);
  put<uint32_t>(p, h.strip);
  put<uint32_t>(p, h.k);
  put<uint32_t>(p, h.m);
  put<uint32_t>(p, h.payload_len);
  put<uint16_t>(p, h.spec_len);
  put<uint16_t>(p, 0);  // reserved
  put<uint32_t>(p, h.body_crc);
  put<uint32_t>(p, crc32(out, static_cast<size_t>(p - out)));
}

namespace {

FrameError validate_packet_header(const PacketHeader& h) {
  if (h.version != wire::kVersion) return FrameError::BadVersion;
  if (h.spec_len > wire::kMaxSpecLen) return FrameError::LimitExceeded;
  if (h.k > wire::kMaxFragments || h.m > wire::kMaxFragments ||
      h.k + h.m > wire::kMaxFragments)
    return FrameError::LimitExceeded;
  if (wire::kPacketHeaderSize + h.spec_len + static_cast<size_t>(h.payload_len) >
      wire::kMaxDatagram)
    return FrameError::LimitExceeded;
  // Strips address the stripe; markers/acks repurpose the field (marker:
  // strips sent, ack: strips received) and skip the range check.
  if (!(h.flags & (kPacketFlagGroupEnd | kPacketFlagAck)) &&
      h.strip >= h.k + h.m)
    return FrameError::Inconsistent;
  return FrameError::Ok;
}

}  // namespace

FrameError decode_packet(const uint8_t* data, size_t len, PacketView& out) {
  if (len < wire::kPacketHeaderSize) return FrameError::Truncated;
  const uint8_t* p = data;
  if (get<uint32_t>(p) != wire::kPacketMagic) return FrameError::BadMagic;
  PacketHeader& h = out.header;
  h.version = get<uint16_t>(p);
  h.flags = get<uint16_t>(p);
  h.group = get<uint64_t>(p);
  h.strip = get<uint32_t>(p);
  h.k = get<uint32_t>(p);
  h.m = get<uint32_t>(p);
  h.payload_len = get<uint32_t>(p);
  h.spec_len = get<uint16_t>(p);
  (void)get<uint16_t>(p);  // reserved
  h.body_crc = get<uint32_t>(p);
  const uint32_t declared = get<uint32_t>(p);
  if (crc32(data, wire::kPacketHeaderSize - 4) != declared) return FrameError::BadCrc;
  if (const FrameError err = validate_packet_header(h); err != FrameError::Ok)
    return err;
  // A datagram is one message: its length must match the header exactly.
  if (len != wire::kPacketHeaderSize + h.spec_len + static_cast<size_t>(h.payload_len))
    return FrameError::Truncated;
  const uint8_t* body = data + wire::kPacketHeaderSize;
  if (crc32(body, h.spec_len + static_cast<size_t>(h.payload_len)) != h.body_crc)
    return FrameError::BadCrc;
  out.spec = std::string_view(reinterpret_cast<const char*>(body), h.spec_len);
  out.payload = std::span<const uint8_t>(body + h.spec_len, h.payload_len);
  return FrameError::Ok;
}

std::vector<uint8_t> build_packet(PacketHeader header, std::string_view spec,
                                  std::span<const uint8_t> payload) {
  header.spec_len = static_cast<uint16_t>(spec.size());
  header.payload_len = static_cast<uint32_t>(payload.size());
  if (spec.size() > wire::kMaxSpecLen)
    throw std::invalid_argument("build_packet: spec exceeds kMaxSpecLen");
  if (const FrameError err = validate_packet_header(header); err != FrameError::Ok)
    throw std::invalid_argument(std::string("build_packet: invalid header: ") +
                                frame_error_name(err));

  std::vector<uint8_t> packet(wire::kPacketHeaderSize + spec.size() + payload.size());
  uint8_t* body = packet.data() + wire::kPacketHeaderSize;
  std::memcpy(body, spec.data(), spec.size());
  if (!payload.empty()) std::memcpy(body + spec.size(), payload.data(), payload.size());
  header.body_crc = crc32(body, spec.size() + payload.size());
  encode_packet_header(header, packet.data());
  return packet;
}

}  // namespace xorec::net
