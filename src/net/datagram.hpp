// UDP stripe transport with EC loss recovery: stripes fan out as
// one-packet-per-strip groups; the receiver reassembles each group and, when
// packets were lost, issues a DEGRADED READ — reconstructing the missing
// data strips through a compiled ReconstructPlan instead of asking for a
// retransmission. This is the packet-EC regime the paper's compile-once
// pipeline finally reaches over a wire: small blocks, setup-time-critical,
// every distinct loss pattern compiled once and then executed for every
// later group that loses the same strips (the PlanCache serves the pattern
// warm).
//
// Transfer model (mirroring the SDR-UDP reference's EC reliability mode):
//
//   sender                                receiver
//   ------                                --------
//   encode parity via CodecService
//   k+m strip packets  --(seeded loss)->  GroupAssembler collects strips
//   group-end marker   ---------------->  group completes -> recover_group()
//                                         all data there?  deliver as-is
//                                         strips missing?  plan_reconstruct +
//                                                          execute (degraded)
//                      <----------------  optional GroupAck receipt
//
// Loss is injected at the SENDER from a seeded deterministic policy
// (splitmix64 per eligible packet), so a loss sweep is reproducible
// bit-for-bit and the receiver genuinely never sees the dropped strips. The
// group-end marker and ACKs model the reliable control channel and are
// never dropped; in selective-repeat comparisons the marker is what
// triggers the NAK instead.
//
// Strips land in a per-group arena (strip-major slots); recovery reads
// survivor slots and writes rebuilt strips in place, so the codec touches
// the received bytes directly — no per-strip copies after reassembly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "net/frame.hpp"

namespace xorec::net {

// ---- loopback socket helpers -----------------------------------------------

/// A resolved IPv4 endpoint (host byte order) — keeps <netinet/in.h> out of
/// this header. Only dotted-quad hosts are accepted (the loopback use case).
struct UdpAddress {
  uint32_t ip = 0;
  uint16_t port = 0;
};
UdpAddress udp_address(const std::string& host, uint16_t port);

/// Open + bind a UDP socket (port 0 = ephemeral). Throws std::runtime_error
/// on failure. Caller owns the fd (close_socket below).
int open_udp_socket(const std::string& host, uint16_t port);
uint16_t local_udp_port(int fd);
void close_socket(int fd);

// ---- deterministic loss injection ------------------------------------------

/// Seeded i.i.d. packet loss: packet `index` drops iff a splitmix64 draw of
/// (seed, index) lands under `rate`. Pure function — the same policy always
/// drops the same packets, which is what makes a loss sweep a controlled
/// experiment.
struct LossPolicy {
  double rate = 0.0;  // [0, 1)
  uint64_t seed = 1;

  bool drop(uint64_t packet_index) const;
};

// ---- group assembly (receiver side) ----------------------------------------

/// One reassembled stripe group, pre-recovery: the arena holds k+m
/// strip-major slots of frag_len bytes; `have` marks which arrived.
struct StripeGroup {
  uint64_t group = 0;
  std::string spec;
  uint32_t k = 0, m = 0;
  uint32_t frag_len = 0;
  uint64_t have = 0;             // bitmap of strips present (rebuilt ones added later)
  uint32_t strips_received = 0;  // distinct strips that actually arrived
  uint32_t strips_sent = 0;      // sender's count from the group-end marker
  std::vector<uint8_t> arena;    // (k+m) * frag_len, strip-major

  uint8_t* slot(uint32_t id) { return arena.data() + static_cast<size_t>(id) * frag_len; }
  const uint8_t* slot(uint32_t id) const {
    return arena.data() + static_cast<size_t>(id) * frag_len;
  }
  bool has(uint32_t id) const { return (have >> id) & 1; }
  std::vector<uint32_t> missing_data() const;
  std::vector<uint32_t> present_ids() const;  // data + parity, ascending
};

struct AssemblerStats {
  size_t packets_received = 0;  // datagrams that parsed clean
  size_t bytes_received = 0;
  size_t crc_drops = 0;         // datagrams rejected by decode_packet
  size_t mismatch_drops = 0;    // strip disagreed with its group's geometry
  size_t duplicate_strips = 0;
  size_t groups_completed = 0;
};

/// Collects strip packets into per-group arenas; a group completes when its
/// group-end marker arrives (the marker is the stripe boundary — UDP
/// reorders, so "all packets seen" is not knowable without it). Damaged or
/// inconsistent datagrams are counted and dropped, never fatal.
class GroupAssembler {
 public:
  /// Feed one raw datagram. Returns the completed group when `data` was its
  /// group-end marker, else nullopt.
  std::optional<StripeGroup> feed(const uint8_t* data, size_t len);

  const AssemblerStats& stats() const { return stats_; }
  size_t pending_groups() const { return pending_.size(); }

 private:
  std::map<uint64_t, StripeGroup> pending_;
  AssemblerStats stats_;
};

// ---- degraded read ----------------------------------------------------------

struct RecoveryResult {
  bool complete = false;      // all k data strips present after recovery
  bool degraded = false;      // a reconstruct plan had to run
  uint32_t reconstructed = 0; // data strips rebuilt
  std::string error;          // non-empty when unrecoverable / geometry bad
};

/// The degraded read: rebuild the group's missing DATA strips in place from
/// whatever survivors arrived, routed through the service (plan compiled
/// once per loss pattern, then served warm by the PlanCache). `handle` must
/// be a lease on the group's spec. Returns complete=false with a reason when
/// the losses exceed the code's tolerance — the caller's signal that only a
/// retransmission (or a wider code) could save this group.
RecoveryResult recover_group(StripeGroup& group, const ServiceHandle& handle);

// ---- sender ------------------------------------------------------------------

struct SenderStats {
  size_t stripes_sent = 0;
  size_t packets_sent = 0;     // strip packets that reached the socket
  size_t packets_dropped = 0;  // strip packets eaten by the loss policy
  size_t markers_sent = 0;
  size_t retransmissions = 0;  // strip packets re-sent on request (SR mode)
  uint64_t bytes_sent = 0;     // wire bytes of everything that was sent
};

/// Fans stripes out as strip packets toward `dest`, encoding parity through
/// the service lease first. The loss policy applies to strip packets
/// (including retransmissions) — markers always go through.
class DatagramSender {
 public:
  DatagramSender(int fd, UdpAddress dest, ServiceHandle handle, LossPolicy loss = {});

  const ServiceHandle& handle() const { return handle_; }

  /// Send one stripe as a group: encode m parity strips from the k data
  /// fragments (when with_parity), then one packet per strip + the group-end
  /// marker. Returns the group id used (monotonic per sender). frag_len must
  /// satisfy the codec and fit one datagram.
  uint64_t send_stripe(const uint8_t* const* data, size_t frag_len,
                       bool with_parity = true);

  /// Re-send one strip of an earlier group (selective-repeat mode); still
  /// subject to the loss policy, counted as a retransmission.
  void resend_strip(uint64_t group, uint32_t strip, const uint8_t* payload,
                    size_t frag_len);

  /// The stripe-boundary marker (never dropped).
  void send_group_end(uint64_t group, uint32_t strips_sent);

  const SenderStats& stats() const { return stats_; }

 private:
  void send_packet(const std::vector<uint8_t>& packet);
  void send_strip_packet(uint64_t group, uint32_t strip, const uint8_t* payload,
                         size_t frag_len, bool retransmit);

  int fd_;
  UdpAddress dest_;
  ServiceHandle handle_;
  LossPolicy loss_;
  uint64_t next_group_ = 0;
  uint64_t eligible_index_ = 0;  // loss-policy packet counter
  SenderStats stats_;
};

// ---- receiver ----------------------------------------------------------------

struct GroupResult {
  StripeGroup group;        // arena holds received + rebuilt strips
  RecoveryResult recovery;
};

struct ReceiverStats {
  size_t groups = 0;
  size_t degraded_reads = 0;
  size_t strips_reconstructed = 0;
  size_t groups_unrecoverable = 0;
};

/// Blocking receive pump: socket -> GroupAssembler -> recover_group, with a
/// per-spec ServiceHandle cache. One receiver serves any mix of specs.
class DatagramReceiver {
 public:
  DatagramReceiver(int fd, CodecService& service);

  /// Block until the next group completes; nullopt when `timeout_ms` passes
  /// without any datagram arriving.
  std::optional<GroupResult> receive_group(int timeout_ms = 1000);

  const AssemblerStats& assembler_stats() const { return assembler_.stats(); }
  const ReceiverStats& stats() const { return stats_; }

 private:
  int fd_;
  CodecService& service_;
  GroupAssembler assembler_;
  std::map<std::string, ServiceHandle> handles_;
  ReceiverStats stats_;
};

// ---- receipts ----------------------------------------------------------------

/// A receiver's per-group receipt (kPacketFlagAck payload): what arrived,
/// what the degraded read rebuilt, and whether the group was delivered.
struct GroupAck {
  uint64_t group = 0;
  uint32_t strips_received = 0;
  uint32_t strips_reconstructed = 0;
  uint32_t status = 0;  // 0 = complete, 1 = unrecoverable, 2 = error

  static constexpr uint32_t kComplete = 0, kUnrecoverable = 1, kError = 2;
};

std::vector<uint8_t> build_ack_packet(const GroupAck& ack, uint32_t k, uint32_t m);
/// Parse an ack from a decoded packet view; false when `view` is not an ack.
bool parse_ack(const PacketView& view, GroupAck& out);
/// Blocking ack wait on `fd` (nullopt on timeout); non-ack datagrams are
/// skipped.
std::optional<GroupAck> recv_ack(int fd, int timeout_ms = 1000);

}  // namespace xorec::net
